type rng = { mutable s : int }

let rng seed = { s = (seed * 2654435761) land 0x7FFF_FFFF lor 1 }

let next r =
  let s = r.s in
  let s = s lxor (s lsl 13) land 0x7FFF_FFFF in
  let s = s lxor (s lsr 17) in
  let s = s lxor (s lsl 5) land 0x7FFF_FFFF in
  r.s <- s;
  s

let range r n = if n <= 0 then 0 else next r mod n

let word_string words =
  let b = Buffer.create (4 * List.length words) in
  List.iter
    (fun w ->
      let w = w land 0xFFFF_FFFF in
      Buffer.add_char b (Char.chr (w land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 8) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 16) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 24) land 0xFF)))
    words;
  Buffer.contents b

let words_of_string s =
  let n = String.length s / 4 in
  List.init n (fun i ->
      let b j = Char.code s.[(4 * i) + j] in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

(* Integer sine via a 64-entry quarter-wave table, amplitude 1024. *)
let sin_table =
  [| 0; 25; 50; 75; 100; 125; 150; 175; 199; 223; 247; 270; 292; 314; 336; 357;
     377; 397; 416; 434; 452; 468; 484; 499; 514; 527; 539; 551; 561; 571; 580;
     587; 594; 600; 604; 608; 611; 612; 613; 612; 611; 608; 604; 600; 594; 587;
     580; 571; 561; 551; 539; 527; 514; 499; 484; 468; 452; 434; 416; 397; 377;
     357; 336; 314 |]

let isin phase =
  (* phase in [0, 256) covers a full period; amplitude ~613. *)
  let p = phase land 255 in
  if p < 64 then sin_table.(p)
  else if p < 128 then sin_table.(127 - p)
  else if p < 192 then -sin_table.(p - 128)
  else -sin_table.(255 - p)

let clamp16 v = if v > 32767 then 32767 else if v < -32768 then -32768 else v

let speech ~seed ~samples =
  let r = rng seed in
  let out = ref [] in
  let produced = ref 0 in
  while !produced < samples do
    let seg = min (200 + range r 400) (samples - !produced) in
    let kind = range r 10 in
    if kind < 4 then begin
      (* Voiced: fundamental + harmonics, slowly varying pitch. *)
      let pitch = 2 + range r 6 in
      let amp = 4 + range r 24 in
      for i = 0 to seg - 1 do
        let v =
          (amp * isin (i * pitch))
          + (amp / 2 * isin (i * pitch * 2))
          + (amp / 3 * isin ((i * pitch * 3) + 17))
          + (range r 64 - 32)
        in
        out := clamp16 v :: !out
      done
    end
    else if kind < 7 then
      (* Unvoiced: shaped noise. *)
      let amp = 1 + range r 6 in
      let prev = ref 0 in
      for _ = 1 to seg do
        let v = ((!prev * 3) + (amp * (range r 2048 - 1024))) / 4 in
        prev := v;
        out := clamp16 v :: !out
      done
    else if kind < 9 then
      (* Near-silence. *)
      for _ = 1 to seg do
        out := (range r 17 - 8) :: !out
      done
    else
      (* Loud burst (exercises clipping paths). *)
      for i = 0 to seg - 1 do
        out := clamp16 (60 * isin (i * 11) * 9 / 10) :: !out
      done;
    produced := !produced + seg
  done;
  List.rev !out |> List.map (fun v -> v land 0xFFFF_FFFF)

let image ~seed ~width ~height =
  let r = rng seed in
  let edge_x = width / 3 and edge_y = (2 * height) / 3 in
  List.concat
    (List.init height (fun y ->
         List.init width (fun x ->
             let smooth = (x * 160 / width) + (y * 60 / height) in
             let texture = range r 24 in
             let edge = if x > edge_x && y < edge_y then 48 else 0 in
             let blob =
               let dx = x - (width / 2) and dy = y - (height / 2) in
               if (dx * dx) + (dy * dy) < width * height / 24 then 30 else 0
             in
             (smooth + texture + edge + blob) land 0xFF)))

let video ~seed ~width ~height ~frames =
  let r = rng seed in
  let base = Array.of_list (image ~seed:(seed + 1) ~width ~height) in
  let out = ref [] in
  for f = 0 to frames - 1 do
    let dx = (f * 2) mod 7 and dy = f mod 5 in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        let sx = (x + dx) mod width and sy = (y + dy) mod height in
        let noise = range r 8 in
        out := ((base.((sy * width) + sx) + noise) land 0xFF) :: !out
      done
    done
  done;
  List.rev !out

let document ~seed ~bytes =
  let r = rng seed in
  let b = Buffer.create bytes in
  let vocab =
    [| "the"; "compression"; "profile"; "guided"; "region"; "buffer"; "stub";
       "decompress"; "huffman"; "canonical"; "embedded"; "memory"; "footprint";
       "threshold"; "cold"; "code" |]
  in
  while Buffer.length b < bytes do
    Buffer.add_string b vocab.(range r (Array.length vocab));
    (match range r 12 with
    | 0 -> Buffer.add_string b ".\n"
    | 1 -> Buffer.add_string b ", "
    | _ -> Buffer.add_char b ' ')
  done;
  String.sub (Buffer.contents b) 0 bytes
