(* The MiniC runtime library linked into every workload.

   The paper's benchmarks are statically linked Alpha executables, so a
   large share of their text is C library code that rarely runs — prime
   cold-code material.  This module plays libc: formatted output, string
   and word-block utilities, integer math, a table-driven CRC, a PRNG and
   sorting.  Workloads append [source] to their own program text; squeeze's
   unreachable-function elimination then plays the linker, keeping exactly
   the functions a workload references. *)

let source =
  {|
// ------------------------------------------------------------------
// lib: output formatting
// ------------------------------------------------------------------

int lib_out_count;

int out_char(int c) {
  putc(c);
  lib_out_count = lib_out_count + 1;
  return c;
}

int out_str(int s) {
  int c;
  while (1) {
    c = loadb(s);
    if (c == 0) break;
    out_char(c);
    s = s + 1;
  }
  return 0;
}

int out_dec(int v) {
  int digits[12];
  int n; int neg;
  neg = 0;
  if (v < 0) {
    // INT_MIN has no positive counterpart; special-case it.
    if (v == 0 - 2147483647 - 1) { out_str("-2147483648"); return 0; }
    neg = 1; v = -v;
  }
  n = 0;
  do {
    digits[n] = v % 10;
    v = v / 10;
    n = n + 1;
  } while (v != 0);
  if (neg) out_char('-');
  while (n > 0) {
    n = n - 1;
    out_char('0' + digits[n]);
  }
  return 0;
}

int out_dec_pad(int v, int width) {
  int w; int t;
  w = 1;
  t = v;
  if (t < 0) { w = w + 1; t = -t; }
  while (t >= 10) { w = w + 1; t = t / 10; }
  while (w < width) { out_char(' '); w = w + 1; }
  out_dec(v);
  return 0;
}

int out_hex(int v) {
  int i; int d;
  out_str("0x");
  for (i = 7; i >= 0; i = i - 1) {
    d = (v >>> (i * 4)) & 15;
    if (d < 10) out_char('0' + d);
    else out_char('a' + d - 10);
  }
  return 0;
}

int out_nl() { out_char(10); return 0; }

int out_kv(int key, int v) {
  out_str(key);
  out_str(": ");
  out_dec(v);
  out_nl();
  return 0;
}

int lib_panic(int msg, int code) {
  out_str("panic: ");
  out_str(msg);
  out_str(" (");
  out_dec(code);
  out_str(")");
  out_nl();
  lib_diagnostics(code);
  exit(code & 255);
  return 0;
}

int lib_assert(int cond, int msg) {
  if (!cond) lib_panic(msg, 99);
  return 0;
}

// ------------------------------------------------------------------
// lib: word-block and string utilities
// ------------------------------------------------------------------

int wcopy(int dst, int src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) dst[i] = src[i];
  return dst;
}

int wfill(int dst, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) dst[i] = v;
  return dst;
}

int wcmp(int a, int b, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

int wsum(int a, int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) s = s + a[i];
  return s;
}

int wmax_index(int a, int n) {
  int i; int best;
  best = 0;
  for (i = 1; i < n; i = i + 1) if (a[i] > a[best]) best = i;
  return best;
}

int wreverse(int a, int n) {
  int i; int t;
  for (i = 0; i < n / 2; i = i + 1) {
    t = a[i];
    a[i] = a[n - 1 - i];
    a[n - 1 - i] = t;
  }
  return 0;
}

int str_len(int s) {
  int n;
  n = 0;
  while (loadb(s + n) != 0) n = n + 1;
  return n;
}

int str_eq(int a, int b) {
  int i; int ca; int cb;
  i = 0;
  while (1) {
    ca = loadb(a + i);
    cb = loadb(b + i);
    if (ca != cb) return 0;
    if (ca == 0) return 1;
    i = i + 1;
  }
  return 0;
}

// ------------------------------------------------------------------
// lib: integer math
// ------------------------------------------------------------------

int iabs(int v) { if (v < 0) return -v; return v; }
int imin(int a, int b) { if (a < b) return a; return b; }
int imax(int a, int b) { if (a > b) return a; return b; }

int iclamp(int v, int lo, int hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int isqrt(int v) {
  // Integer square root by binary search; v must be non-negative.
  int lo; int hi; int mid;
  if (v < 0) lib_panic("isqrt of negative", 41);
  if (v < 2) return v;
  lo = 1;
  hi = 46341;               // floor(sqrt(2^31)) + 1
  while (lo + 1 < hi) {
    mid = (lo + hi) / 2;
    if (mid * mid <= v) lo = mid;
    else hi = mid;
  }
  return lo;
}

int ilog2(int v) {
  int n;
  if (v <= 0) lib_panic("ilog2 of non-positive", 42);
  n = 0;
  while (v > 1) { v = v >>> 1; n = n + 1; }
  return n;
}

int ipow(int base, int e) {
  int r;
  r = 1;
  while (e > 0) {
    if (e & 1) r = r * base;
    base = base * base;
    e = e >> 1;
  }
  return r;
}

int igcd(int a, int b) {
  int t;
  a = iabs(a); b = iabs(b);
  while (b != 0) { t = a % (b + (b == 0)); a = b; b = t; }
  return a;
}

int idiv_round(int a, int b) {
  // Rounded division; b must be positive.
  if (b <= 0) lib_panic("idiv_round by non-positive", 43);
  if (a >= 0) return (a + b / 2) / b;
  return -((-a + b / 2) / b);
}

// ------------------------------------------------------------------
// lib: pseudo-random numbers (deterministic LCG)
// ------------------------------------------------------------------

int lib_rand_state;

int lib_srand(int seed) {
  lib_rand_state = (seed ^ 2463534242) | 1;
  return 0;
}

int lib_rand() {
  lib_rand_state = (lib_rand_state * 1103515245 + 12345) & 2147483647;
  return lib_rand_state >>> 7;
}

int lib_rand_range(int n) {
  if (n <= 0) return 0;
  return lib_rand() % n;
}

// ------------------------------------------------------------------
// lib: CRC-32 (table driven; the table is built on first use)
// ------------------------------------------------------------------

int crc_table[256];
int crc_table_ready;

int crc_init() {
  int i; int j; int c;
  for (i = 0; i < 256; i = i + 1) {
    c = i;
    for (j = 0; j < 8; j = j + 1) {
      if (c & 1) c = (c >>> 1) ^ (0 - 306674912);  // 0xEDB88320
      else c = c >>> 1;
    }
    crc_table[i] = c;
  }
  crc_table_ready = 1;
  return 0;
}

int crc_word(int crc, int w) {
  if (!crc_table_ready) crc_init();
  crc = crc_table[(crc ^ w) & 255] ^ (crc >>> 8);
  crc = crc_table[(crc ^ (w >>> 8)) & 255] ^ (crc >>> 8);
  crc = crc_table[(crc ^ (w >>> 16)) & 255] ^ (crc >>> 8);
  crc = crc_table[(crc ^ (w >>> 24)) & 255] ^ (crc >>> 8);
  return crc;
}

int crc_block(int a, int n) {
  int i; int crc;
  crc = 0 - 1;
  for (i = 0; i < n; i = i + 1) crc = crc_word(crc, a[i]);
  return crc ^ (0 - 1);
}

// ------------------------------------------------------------------
// lib: sorting (iterative quicksort with insertion-sort finish)
// ------------------------------------------------------------------

int wsort(int a, int n) {
  int stack[64];
  int sp; int lo; int hi; int i; int j; int p; int t;
  if (n < 2) return 0;
  sp = 0;
  stack[0] = 0;
  stack[1] = n - 1;
  sp = 2;
  while (sp > 0) {
    hi = stack[sp - 1];
    lo = stack[sp - 2];
    sp = sp - 2;
    if (hi - lo < 8) {
      for (i = lo + 1; i <= hi; i = i + 1) {
        t = a[i];
        j = i - 1;
        while (j >= lo && a[j] > t) { a[j + 1] = a[j]; j = j - 1; }
        a[j + 1] = t;
      }
    } else {
      p = a[(lo + hi) / 2];
      i = lo; j = hi;
      while (i <= j) {
        while (a[i] < p) i = i + 1;
        while (a[j] > p) j = j - 1;
        if (i <= j) {
          t = a[i]; a[i] = a[j]; a[j] = t;
          i = i + 1; j = j - 1;
        }
      }
      if (sp > 60) lib_panic("wsort stack overflow", 44);
      if (lo < j) { stack[sp] = lo; stack[sp + 1] = j; sp = sp + 2; }
      if (i < hi) { stack[sp] = i; stack[sp + 1] = hi; sp = sp + 2; }
    }
  }
  return 0;
}

// ------------------------------------------------------------------
// lib: histogram and simple statistics (used by verbose/debug paths)
// ------------------------------------------------------------------

int lib_hist[32];

int hist_reset() { wfill(lib_hist, 0, 32); return 0; }

int hist_add(int v) {
  int bucket;
  bucket = iclamp(ilog2(iabs(v) + 1), 0, 31);
  lib_hist[bucket] = lib_hist[bucket] + 1;
  return bucket;
}

int hist_dump(int label) {
  int i;
  out_str(label);
  out_nl();
  for (i = 0; i < 32; i = i + 1) {
    if (lib_hist[i] != 0) {
      out_str("  2^");
      out_dec(i);
      out_str(" ");
      out_dec(lib_hist[i]);
      out_nl();
    }
  }
  return 0;
}
|}

let source = source ^ Wl_lib2.source ^ Wl_lib3.source
