let all =
  [
    Wl_adpcm.workload;
    Wl_epic.workload;
    Wl_g721_dec.workload;
    Wl_g721_enc.workload;
    Wl_gsm.workload;
    Wl_jpeg_dec.workload;
    Wl_jpeg_enc.workload;
    Wl_mpeg2_dec.workload;
    Wl_mpeg2_enc.workload;
    Wl_pgp.workload;
    Wl_rasta.workload;
  ]

let find name = List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all
let names = List.map (fun (w : Workload.t) -> w.Workload.name) all
