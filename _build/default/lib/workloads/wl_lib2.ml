(* The second half of the MiniC runtime library: a printf-style formatter,
   a free-list heap allocator, fixed-point trigonometry, emulated 64-bit
   arithmetic, bit-level I/O, string buffers and a self-test battery.

   Real statically-linked binaries carry all of this whether or not a given
   run touches it; the panic/diagnostic paths of every workload reference
   these entry points, so the code is linked (reachable) but cold — the
   situation squash exploits. *)

let source =
  {|
// ------------------------------------------------------------------
// lib2: printf-style formatter
//   directives: %d %u %x %c %s %b (binary) %% with optional width and
//   zero padding, e.g. %08x.  Arguments come from a word array.
// ------------------------------------------------------------------

int fmt_emit_dec_u(int v, int width, int zero) {
  // Unsigned decimal; negative signed values are the range [2^31, 2^32).
  int digits[12];
  int n;
  n = 0;
  if (v >= 0) {
    do { digits[n] = v % 10; v = v / 10; n = n + 1; } while (v != 0);
  } else {
    // v in [2^31, 2^32): v = q*10 + r computed via halving.
    int half; int q; int r;
    half = v >>> 1;
    q = half / 5;
    r = v - q * 10;
    if (r >= 10) { r = r - 10; q = q + 1; }
    digits[0] = r;
    n = 1;
    v = q;
    while (v != 0) { digits[n] = v % 10; v = v / 10; n = n + 1; }
  }
  while (width > n) {
    if (zero) out_char('0'); else out_char(' ');
    width = width - 1;
  }
  while (n > 0) { n = n - 1; out_char('0' + digits[n]); }
  return 0;
}

int fmt_emit_dec(int v, int width, int zero) {
  if (v < 0) {
    out_char('-');
    if (v == 0 - 2147483647 - 1) { out_str("2147483648"); return 0; }
    return fmt_emit_dec_u(-v, width - 1, zero);
  }
  return fmt_emit_dec_u(v, width, zero);
}

int fmt_emit_hex(int v, int width, int zero) {
  int digits[8];
  int n; int d;
  n = 0;
  do {
    d = v & 15;
    if (d < 10) digits[n] = '0' + d;
    else digits[n] = 'a' + d - 10;
    v = v >>> 4;
    n = n + 1;
  } while (v != 0);
  while (width > n) {
    if (zero) out_char('0'); else out_char(' ');
    width = width - 1;
  }
  while (n > 0) { n = n - 1; out_char(digits[n]); }
  return 0;
}

int fmt_emit_bin(int v, int width, int zero) {
  int digits[32];
  int n;
  n = 0;
  do { digits[n] = '0' + (v & 1); v = v >>> 1; n = n + 1; } while (v != 0);
  while (width > n) {
    if (zero) out_char('0'); else out_char(' ');
    width = width - 1;
  }
  while (n > 0) { n = n - 1; out_char(digits[n]); }
  return 0;
}

// out_fmt("x=%d hex=%08x s=%s\n", args) with args a word array.
int out_fmt(int fmt, int args) {
  int i; int ai; int c; int width; int zero;
  i = 0; ai = 0;
  while (1) {
    c = loadb(fmt + i);
    if (c == 0) break;
    if (c != '%') { out_char(c); i = i + 1; continue; }
    i = i + 1;
    c = loadb(fmt + i);
    zero = 0; width = 0;
    if (c == '0') { zero = 1; i = i + 1; c = loadb(fmt + i); }
    while (c >= '0' && c <= '9') {
      width = width * 10 + c - '0';
      i = i + 1;
      c = loadb(fmt + i);
    }
    if (c == 'd') fmt_emit_dec(args[ai], width, zero);
    else if (c == 'u') fmt_emit_dec_u(args[ai], width, zero);
    else if (c == 'x') fmt_emit_hex(args[ai], width, zero);
    else if (c == 'b') fmt_emit_bin(args[ai], width, zero);
    else if (c == 'c') out_char(args[ai]);
    else if (c == 's') out_str(args[ai]);
    else if (c == '%') { out_char('%'); i = i + 1; continue; }
    else lib_panic("out_fmt: unknown directive", 51);
    ai = ai + 1;
    i = i + 1;
  }
  return ai;
}

int fmt1[1];
int fmt2[2];
int fmt3[3];

int out_fmt1(int fmt, int a) { fmt1[0] = a; return out_fmt(fmt, fmt1); }
int out_fmt2(int fmt, int a, int b) { fmt2[0] = a; fmt2[1] = b; return out_fmt(fmt, fmt2); }
int out_fmt3(int fmt, int a, int b, int c) {
  fmt3[0] = a; fmt3[1] = b; fmt3[2] = c;
  return out_fmt(fmt, fmt3);
}

// ------------------------------------------------------------------
// lib2: free-list heap allocator over sbrk
//   blocks carry a one-word header: size in words (header included),
//   low bit set when free.  Free blocks form a singly-linked list and
//   adjacent free blocks are coalesced on free.
// ------------------------------------------------------------------

int heap_base; int heap_limit; int heap_free_list;
int heap_allocs; int heap_frees; int heap_failures;

int heap_init(int words) {
  if (words < 16) lib_panic("heap_init: too small", 52);
  heap_base = sbrk(words * 4 + 8);
  heap_limit = heap_base + words * 4;
  heap_base[0] = (words << 1) | 1;          // one big free block
  heap_base[1] = 0;                         // next free
  heap_free_list = heap_base;
  heap_allocs = 0; heap_frees = 0; heap_failures = 0;
  return heap_base;
}

int heap_alloc(int words) {
  int need; int p; int prev; int size; int rest;
  if (heap_base == 0) heap_init(4096);
  if (words < 1) words = 1;
  need = words + 1;                         // header
  prev = 0;
  p = heap_free_list;
  while (p != 0) {
    size = p[0] >> 1;
    if (size >= need) {
      rest = size - need;
      if (rest >= 4) {
        // Split: keep the tail free.
        int q;
        q = p + need * 4;
        q[0] = (rest << 1) | 1;
        q[1] = p[1];
        if (prev == 0) heap_free_list = q;
        else prev[1] = q;
        p[0] = need << 1;                   // allocated, low bit clear
      } else {
        if (prev == 0) heap_free_list = p[1];
        else prev[1] = p[1];
        p[0] = size << 1;
      }
      heap_allocs = heap_allocs + 1;
      return p + 4;
    }
    prev = p;
    p = p[1];
  }
  heap_failures = heap_failures + 1;
  lib_panic("heap_alloc: out of memory", 53);
  return 0;
}

int heap_free(int user) {
  int p; int size; int q;
  if (user == 0) return 0;
  p = user - 4;
  if (p[0] & 1) lib_panic("heap_free: double free", 54);
  size = p[0] >> 1;
  // Coalesce with an adjacent free successor if it is the free-list head
  // (cheap partial coalescing; full coalescing would sort the list).
  q = p + size * 4;
  if (q < heap_limit) {
    if ((q[0] & 1) && q == heap_free_list) {
      size = size + (q[0] >> 1);
      heap_free_list = q[1];
    }
  }
  p[0] = (size << 1) | 1;
  p[1] = heap_free_list;
  heap_free_list = p;
  heap_frees = heap_frees + 1;
  return 0;
}

int heap_report() {
  int p; int free_words; int blocks;
  free_words = 0; blocks = 0;
  p = heap_free_list;
  while (p != 0) {
    free_words = free_words + (p[0] >> 1);
    blocks = blocks + 1;
    p = p[1];
  }
  out_fmt3("heap: %d allocs, %d frees, %d failures\n", heap_allocs, heap_frees,
           heap_failures);
  out_fmt2("heap: %d free words in %d blocks\n", free_words, blocks);
  return free_words;
}

// ------------------------------------------------------------------
// lib2: fixed-point trigonometry (Q14, full circle = 1024 units)
// ------------------------------------------------------------------

// Quarter-wave sine table, 64 entries, Q14.
int sin_q14[65] = {
  0, 402, 804, 1205, 1606, 2006, 2404, 2801, 3196, 3590, 3981, 4370, 4756,
  5139, 5520, 5897, 6270, 6639, 7005, 7366, 7723, 8076, 8423, 8765, 9102,
  9434, 9760, 10080, 10394, 10702, 11003, 11297, 11585, 11866, 12140, 12406,
  12665, 12916, 13160, 13395, 13623, 13842, 14053, 14256, 14449, 14635,
  14811, 14978, 15137, 15286, 15426, 15557, 15679, 15791, 15893, 15986,
  16069, 16143, 16207, 16261, 16305, 16340, 16364, 16379, 16384 };

int fx_sin(int angle) {
  // angle in 1024ths of a circle; returns Q14 in [-16384, 16384].
  int a; int quadrant; int idx; int frac; int base; int next; int v;
  a = angle & 1023;
  quadrant = a >> 8;
  idx = (a & 255) >> 2;
  frac = a & 3;
  if (quadrant == 1 || quadrant == 3) idx = 63 - idx;
  base = sin_q14[idx];
  next = sin_q14[idx + 1];
  if (quadrant == 1 || quadrant == 3) v = next + ((base - next) * frac >> 2);
  else v = base + ((next - base) * frac >> 2);
  if (quadrant >= 2) return -v;
  return v;
}

int fx_cos(int angle) { return fx_sin(angle + 256); }

// atan2 in 1024ths of a circle, octant decomposition with a small rational
// approximation inside each octant.
int fx_atan2(int y, int x) {
  int ax; int ay; int swap; int ratio; int angle;
  if (x == 0 && y == 0) return 0;
  ax = iabs(x); ay = iabs(y);
  swap = 0;
  if (ay > ax) { int t; t = ax; ax = ay; ay = t; swap = 1; }
  // ratio in Q10, <= 1024.
  ratio = (ay << 10) / (ax + (ax == 0));
  // atan(r) ~ r * (128 - 35 * r^2 / 2^20) / 804 of a circle-1024... use a
  // two-term fit: angle_octant = ratio*128/1024 - correction.
  angle = (ratio * 128) >> 10;
  angle = angle - ((ratio * ratio >> 10) * 20 >> 10);
  if (angle < 0) angle = 0;
  if (swap) angle = 256 - angle;
  if (x < 0) angle = 512 - angle;
  if (y < 0) angle = 1024 - angle;
  return angle & 1023;
}

// Q14 multiply.
int fx_mul(int a, int b) { return (a * b) >> 14; }

// ------------------------------------------------------------------
// lib2: emulated 64-bit arithmetic via 16-bit limbs
//   A 64-bit value is a pair of words (hi, lo) passed through 2-element
//   arrays: r[0] = hi, r[1] = lo.
// ------------------------------------------------------------------

int u32_lo16(int v) { return v & 65535; }
int u32_hi16(int v) { return v >>> 16; }

// r = a * b (full 64-bit product of two unsigned 32-bit words).
int mul64(int r, int a, int b) {
  int al; int ah; int bl; int bh;
  int ll; int lh; int hl; int hh;
  int mid; int carry; int lo;
  al = u32_lo16(a); ah = u32_hi16(a);
  bl = u32_lo16(b); bh = u32_hi16(b);
  ll = al * bl;
  lh = al * bh;
  hl = ah * bl;
  hh = ah * bh;
  mid = u32_hi16(ll) + u32_lo16(lh) + u32_lo16(hl);
  lo = (u32_lo16(ll)) | ((mid & 65535) << 16);
  carry = mid >>> 16;
  r[0] = hh + u32_hi16(lh) + u32_hi16(hl) + carry;
  r[1] = lo;
  return 0;
}

// Unsigned 32-bit comparison via the sign-flip trick.
int ult32(int a, int b) { return (a ^ (1 << 31)) < (b ^ (1 << 31)); }

// r = r + (hi, lo); returns the carry out of the low word.
int add64(int r, int hi, int lo) {
  int a; int sum; int carry;
  a = r[1];
  sum = a + lo;
  // carry = high bit of (a&b | (a|b)&~sum): the classic carry-out formula.
  carry = ((a & lo) | ((a | lo) & ~sum)) >>> 31;
  r[1] = sum;
  r[0] = r[0] + hi + carry;
  return carry;
}

int shr64(int r, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    r[1] = (r[1] >>> 1) | ((r[0] & 1) << 31);
    r[0] = r[0] >>> 1;
  }
  return 0;
}

// Compare (a_hi, a_lo) with (b_hi, b_lo) unsigned: -1, 0, 1.
int cmp64(int ah, int al, int bh, int bl) {
  if (ah != bh) { if (ult32(ah, bh)) return -1; return 1; }
  if (al == bl) return 0;
  if (ult32(al, bl)) return -1;
  return 1;
}

// ------------------------------------------------------------------
// lib2: bit-level output into a word buffer
// ------------------------------------------------------------------

int bio_buf; int bio_cap; int bio_word; int bio_nbits; int bio_count;

int bio_init(int buf, int cap_words) {
  bio_buf = buf; bio_cap = cap_words;
  bio_word = 0; bio_nbits = 0; bio_count = 0;
  return 0;
}

int bio_put(int value, int bits) {
  int i;
  if (bits < 0 || bits > 31) lib_panic("bio_put: bad width", 55);
  for (i = bits - 1; i >= 0; i = i - 1) {
    bio_word = (bio_word << 1) | ((value >>> i) & 1);
    bio_nbits = bio_nbits + 1;
    if (bio_nbits == 32) {
      if (bio_count >= bio_cap) lib_panic("bio_put: overflow", 56);
      bio_buf[bio_count] = bio_word;
      bio_count = bio_count + 1;
      bio_word = 0;
      bio_nbits = 0;
    }
  }
  return bits;
}

int bio_flush() {
  if (bio_nbits > 0) {
    if (bio_count >= bio_cap) lib_panic("bio_flush: overflow", 57);
    bio_buf[bio_count] = bio_word << (32 - bio_nbits);
    bio_count = bio_count + 1;
    bio_word = 0;
    bio_nbits = 0;
  }
  return bio_count;
}

// ------------------------------------------------------------------
// lib2: string buffers (byte strings built in heap memory)
// ------------------------------------------------------------------

int sb_data; int sb_cap; int sb_len;

int sb_init(int cap_bytes) {
  sb_data = heap_alloc((cap_bytes + 3) / 4);
  sb_cap = cap_bytes;
  sb_len = 0;
  return sb_data;
}

int sb_putc(int c) {
  if (sb_len >= sb_cap) lib_panic("sb_putc: overflow", 58);
  storeb(sb_data + sb_len, c);
  sb_len = sb_len + 1;
  return c;
}

int sb_puts(int s) {
  int c; int i;
  i = 0;
  while (1) {
    c = loadb(s + i);
    if (c == 0) break;
    sb_putc(c);
    i = i + 1;
  }
  return i;
}

int sb_put_dec(int v) {
  int digits[12];
  int n;
  if (v < 0) { sb_putc('-'); v = -v; }
  n = 0;
  do { digits[n] = v % 10; v = v / 10; n = n + 1; } while (v != 0);
  while (n > 0) { n = n - 1; sb_putc('0' + digits[n]); }
  return sb_len;
}

int sb_flush_out() {
  int i;
  for (i = 0; i < sb_len; i = i + 1) out_char(loadb(sb_data + i));
  sb_len = 0;
  return 0;
}

// ------------------------------------------------------------------
// lib2: more checksums
// ------------------------------------------------------------------

int adler32_block(int a, int n) {
  int s1; int s2; int i;
  s1 = 1; s2 = 0;
  for (i = 0; i < n; i = i + 1) {
    s1 = (s1 + (a[i] & 255)) % 65521;
    s2 = (s2 + s1) % 65521;
  }
  return (s2 << 16) | s1;
}

int fletcher16_block(int a, int n) {
  int s1; int s2; int i;
  s1 = 0; s2 = 0;
  for (i = 0; i < n; i = i + 1) {
    s1 = (s1 + (a[i] & 255)) % 255;
    s2 = (s2 + s1) % 255;
  }
  return (s2 << 8) | s1;
}

// ------------------------------------------------------------------
// lib2: selection and search
// ------------------------------------------------------------------

int wbinsearch(int a, int n, int key) {
  int lo; int hi; int mid;
  lo = 0; hi = n;
  while (lo < hi) {
    mid = (lo + hi) / 2;
    if (a[mid] < key) lo = mid + 1;
    else hi = mid;
  }
  if (lo < n && a[lo] == key) return lo;
  return -1;
}

// k-th smallest by quickselect (destructive).
int wselect(int a, int n, int k) {
  int lo; int hi; int i; int j; int p; int t;
  if (k < 0 || k >= n) lib_panic("wselect: k out of range", 59);
  lo = 0; hi = n - 1;
  while (lo < hi) {
    p = a[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
      while (a[i] < p) i = i + 1;
      while (a[j] > p) j = j - 1;
      if (i <= j) { t = a[i]; a[i] = a[j]; a[j] = t; i = i + 1; j = j - 1; }
    }
    if (k <= j) hi = j;
    else if (k >= i) lo = i;
    else return a[k];
  }
  return a[k];
}

int wmedian(int a, int n) {
  return wselect(a, n, n / 2);
}

// ------------------------------------------------------------------
// lib2: diagnostics battery (referenced from every workload's
// diagnostic/usage path; exercises most of the library)
// ------------------------------------------------------------------

int lib_selftest() {
  int buf[32];
  int pair[2];
  int i; int failures;
  failures = 0;
  // formatter
  out_str("lib self-test\n");
  out_fmt3("  fmt: %d %04x %b\n", -42, 255, 5);
  // math
  if (isqrt(12345 * 12345) != 12345) failures = failures + 1;
  if (ilog2(4096) != 12) failures = failures + 1;
  if (igcd(462, 1071) != 21) failures = failures + 1;
  if (ipow(3, 7) != 2187) failures = failures + 1;
  // trig: sin^2 + cos^2 ~ 1 in Q14
  for (i = 0; i < 1024; i = i + 128) {
    int s; int c; int m;
    s = fx_sin(i); c = fx_cos(i);
    m = (fx_mul(s, s) + fx_mul(c, c));
    if (iabs(m - 16384) > 300) failures = failures + 1;
  }
  // 64-bit: (2^16+1)^2 = 2^32 + 2^17 + 1
  mul64(pair, 65537, 65537);
  if (pair[0] != 1) failures = failures + 1;
  if (pair[1] != 131073) failures = failures + 1;
  // sorting and selection
  for (i = 0; i < 32; i = i + 1) buf[i] = (i * 37 + 11) % 64;
  wsort(buf, 32);
  for (i = 1; i < 32; i = i + 1) if (buf[i - 1] > buf[i]) failures = failures + 1;
  if (wbinsearch(buf, 32, buf[17]) < 0) failures = failures + 1;
  // heap
  heap_init(512);
  {
    int p1; int p2; int p3;
    p1 = heap_alloc(16);
    p2 = heap_alloc(32);
    wfill(p1, 7, 16);
    wfill(p2, 9, 32);
    if (p1[15] != 7 || p2[31] != 9) failures = failures + 1;
    heap_free(p1);
    p3 = heap_alloc(8);
    wfill(p3, 3, 8);
    heap_free(p2);
    heap_free(p3);
  }
  // bit output
  {
    int bits[8];
    bio_init(bits, 8);
    bio_put(5, 3);
    bio_put(255, 8);
    bio_put(1, 1);
    bio_flush();
    if (bits[0] != ((5 << 29) | (255 << 21) | (1 << 20))) failures = failures + 1;
  }
  // string buffer and checksums
  {
    int words[4];
    sb_init(64);
    sb_puts("sb");
    sb_put_dec(-12);
    if (sb_len != 5) failures = failures + 1;
    sb_flush_out();
    out_nl();
    words[0] = 1; words[1] = 2; words[2] = 3; words[3] = 250;
    if (adler32_block(words, 4) == 0) failures = failures + 1;
    if (fletcher16_block(words, 4) == 0) failures = failures + 1;
    wreverse(words, 4);
    if (words[0] != 250) failures = failures + 1;
    if (wmedian(words, 4) == -1 && 0) failures = failures + 1;
    if (!str_eq("same", "same") || str_eq("a", "b")) failures = failures + 1;
    if (fx_atan2(0, 100) != 0) failures = failures + 1;
    if (cmp64(0, 5, 0, 6) != -1) failures = failures + 1;
  }
  out_fmt1("  failures: %d\n", failures);
  if (failures != 0) lib_panic("lib self-test failed", 60);
  return failures;
}

// Rich panic context used by workload usage/diagnostic paths.  A negative
// tag also runs the self-test battery, which keeps the whole library
// reachable from every program that can panic — the moral equivalent of a
// statically-linked libc.
int lib_diagnostics(int tag) {
  out_fmt1("diagnostics (%d)\n", tag);
  heap_report();
  out_fmt2("  io: %d chars out, rand state %08x\n", lib_out_count, lib_rand_state);
  if (tag < 0) { lib_selftest(); fp_selftest(); }
  return 0;
}
|}
