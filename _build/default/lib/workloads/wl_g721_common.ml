(* The shared ADPCM transcoder core of the g721_enc / g721_dec pair: an
   adaptive 4-bit quantizer over a two-pole adaptive predictor, in the style
   of the CCITT G.721 reference code (fixed-point throughout).  Each of the
   two workloads appends its own [main] and mode driver, as the MediaBench
   originals are separate programs built from one reference codebase. *)

let codec =
  {|
// ------------------------------------------------------------------
// g721-style codec state
// ------------------------------------------------------------------

int g_a1; int g_a2;          // predictor coefficients (Q14)
int g_s1; int g_s2;          // reconstructed signal history
int g_y;                     // quantizer scale (Q4 log-ish domain)
int g_clips; int g_resets;

// Quantizer decision thresholds and inverse levels, scaled by y.
int quant_thresh[7] = { 124, 262, 429, 655, 994, 1540, 2953 };
int quant_level[8] = { 63, 189, 348, 540, 790, 1148, 1767, 3200 };
int scale_adjust[8] = { -12, -8, -4, -1, 2, 6, 12, 20 };

int g721_reset() {
  g_a1 = 0; g_a2 = 0;
  g_s1 = 0; g_s2 = 0;
  g_y = 256;
  g_resets = g_resets + 1;
  return 0;
}

int g721_predict() {
  return (g_a1 * g_s1 + g_a2 * g_s2) >> 14;
}

int g721_clamp16(int v) {
  if (v > 32767) { g_clips = g_clips + 1; return 32767; }
  if (v < -32768) { g_clips = g_clips + 1; return -32768; }
  return v;
}

// Quantize difference d against the current scale; returns a 4-bit code.
int g721_quantize(int d) {
  int sign; int mag; int code; int i; int t;
  sign = 0;
  if (d < 0) { sign = 8; d = -d; }
  mag = (d << 6) / (g_y + 1);
  code = 7;
  for (i = 0; i < 7; i = i + 1) {
    t = quant_thresh[i];
    if (mag < t) { code = i; break; }
  }
  return sign | code;
}

int g721_dequantize(int code) {
  int mag;
  mag = (quant_level[code & 7] * (g_y + 1)) >> 6;
  if (code & 8) return -mag;
  return mag;
}

// Predictor adaptation (sign-sign LMS with leakage), shared by every
// transmission rate.
int g721_adapt_predictor(int dq, int r) {
  int leak1; int leak2; int sgn;
  leak1 = g_a1 - (g_a1 >> 8);
  leak2 = g_a2 - (g_a2 >> 8);
  sgn = 0;
  if (dq > 0) sgn = 1;
  if (dq < 0) sgn = -1;
  if (g_s1 > 0) g_a1 = leak1 + sgn * 96;
  else if (g_s1 < 0) g_a1 = leak1 - sgn * 96;
  else g_a1 = leak1;
  if (g_s2 > 0) g_a2 = leak2 + sgn * 32;
  else if (g_s2 < 0) g_a2 = leak2 - sgn * 32;
  else g_a2 = leak2;
  if (g_a1 > 12288) g_a1 = 12288;
  if (g_a1 < -12288) g_a1 = -12288;
  if (g_a2 > 8192) g_a2 = 8192;
  if (g_a2 < -8192) g_a2 = -8192;
  g_s2 = g_s1;
  g_s1 = r;
  return 0;
}

// Scale and predictor adaptation of the default 32 kbps (4-bit) rate.
int g721_adapt(int code, int dq, int r) {
  g_y = g_y + scale_adjust[code & 7] + ((1024 - g_y) >> 8);
  if (g_y < 32) g_y = 32;
  if (g_y > 16384) g_y = 16384;
  g721_adapt_predictor(dq, r);
  return 0;
}

int g721_encode(int x) {
  int pred; int d; int code; int dq; int r;
  pred = g721_predict();
  d = x - pred;
  code = g721_quantize(d);
  dq = g721_dequantize(code);
  r = g721_clamp16(pred + dq);
  g721_adapt(code, dq, r);
  return code;
}

int g721_decode(int code) {
  int pred; int dq; int r;
  pred = g721_predict();
  dq = g721_dequantize(code);
  r = g721_clamp16(pred + dq);
  g721_adapt(code, dq, r);
  return r;
}

// Sign-extend a 16-bit sample.
int g721_sext16(int v) {
  v = v & 65535;
  if (v & 32768) return v - 65536;
  return v;
}

// ------------------------------------------------------------------
// the other transmission rates of the G.726 family (16/24/40 kbps):
// 2-, 3- and 5-bit quantisers over the same adaptive predictor.  The
// reference distribution ships them as sibling coders (g723_24 etc.);
// they are linked here and stay cold unless the rate modes are used.
// ------------------------------------------------------------------

int quant_thresh_2[1] = { 261 };
int quant_level_2[2] = { 116, 1035 };
int scale_adjust_2[2] = { -4, 16 };

int quant_thresh_3[3] = { 193, 491, 1087 };
int quant_level_3[4] = { 91, 330, 736, 1435 };
int scale_adjust_3[4] = { -8, -2, 6, 18 };

int quant_thresh_5[15] = { 62, 128, 199, 276, 362, 457, 564, 687, 830, 1000,
                           1208, 1473, 1828, 2345, 3258 };
int quant_level_5[16] = { 30, 94, 163, 237, 318, 408, 509, 624, 757, 913,
                          1101, 1336, 1645, 2080, 2795, 3600 };
int scale_adjust_5[16] = { -14, -12, -10, -8, -6, -4, -2, 0, 2, 4, 6, 9, 12,
                           16, 21, 27 };

// Generic quantiser over explicit tables; nlevels = 2^(bits-1).
int g72x_quantize(int d, int thresh, int nlevels) {
  int sign; int mag; int code; int i;
  sign = nlevels;                 // the sign bit sits above the magnitude
  if (d < 0) { d = -d; } else { sign = 0; }
  mag = (d << 6) / (g_y + 1);
  code = nlevels - 1;
  for (i = 0; i < nlevels - 1; i = i + 1) {
    if (mag < thresh[i]) { code = i; break; }
  }
  return sign | code;
}

int g72x_dequantize(int code, int level, int nlevels) {
  int mag;
  mag = (level[code & (nlevels - 1)] * (g_y + 1)) >> 6;
  if (code & nlevels) return -mag;
  return mag;
}

int g72x_adapt_rate(int code, int adjust, int nlevels, int dq, int r) {
  g_y = g_y + adjust[code & (nlevels - 1)] + ((1024 - g_y) >> 8);
  if (g_y < 32) g_y = 32;
  if (g_y > 16384) g_y = 16384;
  // Reuse the predictor update with a synthetic 4-bit code whose sign
  // matches; only the scale table differs between rates.
  g721_adapt_predictor(dq, r);
  return 0;
}

int g72x_encode_rate(int x, int bits) {
  int pred; int d; int code; int dq; int r;
  pred = g721_predict();
  d = x - pred;
  if (bits == 2) {
    code = g72x_quantize(d, quant_thresh_2, 2);
    dq = g72x_dequantize(code, quant_level_2, 2);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_2, 2, dq, r);
  } else if (bits == 3) {
    code = g72x_quantize(d, quant_thresh_3, 4);
    dq = g72x_dequantize(code, quant_level_3, 4);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_3, 4, dq, r);
  } else {
    code = g72x_quantize(d, quant_thresh_5, 16);
    dq = g72x_dequantize(code, quant_level_5, 16);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_5, 16, dq, r);
  }
  return code;
}

int g72x_decode_rate(int code, int bits) {
  int pred; int dq; int r;
  pred = g721_predict();
  if (bits == 2) {
    dq = g72x_dequantize(code, quant_level_2, 2);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_2, 2, dq, r);
  } else if (bits == 3) {
    dq = g72x_dequantize(code, quant_level_3, 4);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_3, 4, dq, r);
  } else {
    dq = g72x_dequantize(code, quant_level_5, 16);
    r = g721_clamp16(pred + dq);
    g72x_adapt_rate(code, scale_adjust_5, 16, dq, r);
  }
  return r;
}

int g72x_check_rate_tables() {
  int i;
  for (i = 1; i < 3; i = i + 1)
    lib_assert(quant_thresh_3[i] > quant_thresh_3[i - 1], "3-bit thresholds");
  for (i = 1; i < 15; i = i + 1)
    lib_assert(quant_thresh_5[i] > quant_thresh_5[i - 1], "5-bit thresholds");
  for (i = 1; i < 16; i = i + 1)
    lib_assert(quant_level_5[i] > quant_level_5[i - 1], "5-bit levels");
  return 0;
}

// --- cold diagnostics ----------------------------------------------

int g721_dump_state(int tag) {
  out_str("g721 state ");
  out_dec(tag);
  out_nl();
  out_kv("  a1", g_a1);
  out_kv("  a2", g_a2);
  out_kv("  s1", g_s1);
  out_kv("  s2", g_s2);
  out_kv("  y", g_y);
  out_kv("  clips", g_clips);
  out_kv("  resets", g_resets);
  return 0;
}

int g721_check_tables() {
  int i;
  for (i = 1; i < 7; i = i + 1)
    lib_assert(quant_thresh[i] > quant_thresh[i - 1], "thresholds not monotone");
  for (i = 1; i < 8; i = i + 1)
    lib_assert(quant_level[i] > quant_level[i - 1], "levels not monotone");
  return 0;
}

int g721_validate(int mode, int count, int lo, int hi) {
  if (mode < lo) lib_panic("g721: bad mode", 11);
  if (mode > hi) lib_panic("g721: bad mode", 12);
  if (count < 1) lib_panic("g721: empty input", 13);
  if (count > 2097152) lib_panic("g721: oversized input", 14);
  g721_check_tables();
  return 0;
}
|}
