(** The registry of the eleven benchmark workloads, mirroring the paper's
    MediaBench selection (Table 1 / Figure 5). *)

val all : Workload.t list
(** In the paper's order: adpcm, epic, g721_dec, g721_enc, gsm, jpeg_dec,
    jpeg_enc, mpeg2dec, mpeg2enc, pgp, rasta. *)

val find : string -> Workload.t option
val names : string list
