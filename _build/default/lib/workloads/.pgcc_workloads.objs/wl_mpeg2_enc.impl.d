lib/workloads/wl_mpeg2_enc.ml: Layout Vm Wl_input Wl_lib Wl_mpeg2_common Workload
