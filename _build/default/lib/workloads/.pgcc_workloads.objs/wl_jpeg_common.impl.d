lib/workloads/wl_jpeg_common.ml: Array Float List Printf String
