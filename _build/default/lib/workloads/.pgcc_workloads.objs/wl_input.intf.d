lib/workloads/wl_input.mli:
