lib/workloads/wl_rasta.ml: Wl_input Wl_lib Workload
