lib/workloads/wl_gsm.ml: Wl_input Wl_lib Workload
