lib/workloads/workloads.ml: List Wl_adpcm Wl_epic Wl_g721_dec Wl_g721_enc Wl_gsm Wl_jpeg_dec Wl_jpeg_enc Wl_mpeg2_dec Wl_mpeg2_enc Wl_pgp Wl_rasta Workload
