lib/workloads/wl_g721_common.ml:
