lib/workloads/wl_mpeg2_dec.ml: Wl_input Wl_lib Wl_mpeg2_common Wl_mpeg2_enc Workload
