lib/workloads/wl_lib2.ml:
