lib/workloads/wl_g721_dec.ml: Wl_g721_common Wl_g721_enc Wl_input Wl_lib Workload
