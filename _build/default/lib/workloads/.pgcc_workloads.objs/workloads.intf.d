lib/workloads/workloads.mli: Workload
