lib/workloads/wl_lib3.ml:
