lib/workloads/wl_mpeg2_common.ml: Wl_jpeg_common
