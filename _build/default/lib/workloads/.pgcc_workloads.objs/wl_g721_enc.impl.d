lib/workloads/wl_g721_enc.ml: Layout Vm Wl_g721_common Wl_input Wl_lib Workload
