lib/workloads/wl_jpeg_enc.ml: Layout Vm Wl_input Wl_jpeg_common Wl_lib Workload
