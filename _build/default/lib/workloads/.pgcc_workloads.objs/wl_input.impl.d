lib/workloads/wl_input.ml: Array Buffer Char List String
