lib/workloads/wl_adpcm.ml: Wl_input Wl_lib Workload
