lib/workloads/workload.ml: Lazy Minic Printf
