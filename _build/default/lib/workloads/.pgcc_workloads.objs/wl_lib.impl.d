lib/workloads/wl_lib.ml: Wl_lib2 Wl_lib3
