lib/workloads/wl_jpeg_dec.ml: Wl_input Wl_jpeg_common Wl_jpeg_enc Wl_lib Workload
