lib/workloads/workload.mli: Lazy Prog
