lib/workloads/wl_pgp.ml: Char List String Wl_input Wl_lib Workload
