lib/workloads/wl_epic.ml: Wl_input Wl_lib Workload
