(* The third slice of the MiniC runtime library: software floating point.

   MediaBench programs use floating point; embedded ports of them link the
   toolchain's soft-float routines, a sizeable and almost entirely cold
   chunk of every static binary.  This is that chunk: IEEE-754 single
   precision — pack/unpack, add/sub/mul/div, comparisons, int conversions —
   for normalised numbers, with round-to-nearest-even, flush-to-zero
   subnormals and saturation instead of NaN/Inf propagation (the usual
   "embedded subset" simplification; documented in DESIGN.md).

   The 48-bit intermediate products use lib2's mul64. *)

let source =
  {|
// ------------------------------------------------------------------
// lib3: IEEE-754 single-precision soft float (embedded subset)
//   layout: sign(1) | exponent(8, bias 127) | mantissa(23)
// ------------------------------------------------------------------

const FP_BIAS = 127;

int fp_sign(int f) { return (f >>> 31) & 1; }
int fp_exp(int f) { return (f >>> 23) & 255; }
int fp_man(int f) { return f & 8388607; }    // low 23 bits

// Unpacked form: (sign, exponent, 24-bit significand with the hidden bit).
int up_sign; int up_exp; int up_man;

int fp_unpack(int f) {
  up_sign = fp_sign(f);
  up_exp = fp_exp(f);
  up_man = fp_man(f);
  if (up_exp == 0) { up_man = 0; up_exp = 1; }       // flush subnormals
  else up_man = up_man | 8388608;                    // hidden bit
  return 0;
}

// Pack (sign, exp, man24) with round-to-nearest-even from 3 guard bits in
// man27's low bits; saturates overflow to the largest finite value.
int fp_pack_rounded(int sign, int e, int man27) {
  int man; int guard; int sticky;
  man = man27 >>> 3;
  guard = man27 & 7;
  if (guard > 4) man = man + 1;
  else if (guard == 4) {
    sticky = man & 1;
    man = man + sticky;
  }
  if (man >= 16777216) { man = man >>> 1; e = e + 1; }
  if (e >= 255) return (sign << 31) | (254 << 23) | 8388607;  // saturate
  if (e <= 0 || man < 8388608) return sign << 31;             // flush to 0
  return (sign << 31) | (e << 23) | (man & 8388607);
}

// Normalise (e, man27) so that bit 26 is the leading 1, then pack.
int fp_norm_pack(int sign, int e, int man27) {
  if (man27 == 0) return sign << 31;
  while (man27 >= 134217728) { man27 = (man27 >>> 1) | (man27 & 1); e = e + 1; }
  while (man27 < 67108864) { man27 = man27 << 1; e = e - 1; }
  return fp_pack_rounded(sign, e, man27);
}

int fp_neg(int f) { return f ^ (1 << 31); }
int fp_abs(int f) { return f & 2147483647; }

int fp_add(int a, int b) {
  int sa; int ea; int ma; int sb; int eb; int mb;
  int shift; int diff; int e; int m; int s;
  fp_unpack(a); sa = up_sign; ea = up_exp; ma = up_man << 3;
  fp_unpack(b); sb = up_sign; eb = up_exp; mb = up_man << 3;
  if (ea < eb) {
    // Swap so a has the larger exponent.
    int t;
    t = sa; sa = sb; sb = t;
    t = ea; ea = eb; eb = t;
    t = ma; ma = mb; mb = t;
  }
  shift = ea - eb;
  if (shift > 26) mb = (mb != 0);
  else if (shift > 0) {
    int lost;
    lost = mb & ((1 << shift) - 1);
    mb = (mb >>> shift) | (lost != 0);
  }
  if (sa == sb) { s = sa; m = ma + mb; e = ea; }
  else {
    diff = ma - mb;
    if (diff == 0) return 0;
    if (diff > 0) { s = sa; m = diff; }
    else { s = 1 - sa; m = -diff; }
    e = ea;
  }
  return fp_norm_pack(s, e, m);
}

int fp_sub(int a, int b) { return fp_add(a, fp_neg(b)); }

int fp_mul(int a, int b) {
  int s; int e; int hi; int lo; int man27; int sticky;
  int prod[2];
  fp_unpack(a); s = up_sign; e = up_exp;
  {
    int ma;
    ma = up_man;
    fp_unpack(b);
    s = s ^ up_sign;
    e = e + up_exp - FP_BIAS;
    mul64(prod, ma, up_man);
  }
  // The 48-bit product of two 24-bit significands sits in prod[0]:prod[1];
  // keep 27 bits (24 + 3 guard) starting at the leading 1 (bit 47 or 46).
  hi = prod[0];        // bits 47..32
  lo = prod[1];        // bits 31..0
  // man47..21 -> 27 bits: take hi(16 bits) << 11 | lo >>> 21.
  man27 = (hi << 11) | (lo >>> 21);
  sticky = (lo & 2097151) != 0;
  man27 = man27 | sticky;
  // Two 24-bit significands in [2^23, 2^24) give a product with its top
  // bit at 47 or 46: treat as man27 scaled by 2^(e-3+...), renormalise.
  e = e + 1;
  return fp_norm_pack(s, e, man27);
}

int fp_div(int a, int b) {
  int s; int e; int num; int den; int q; int i; int rem;
  fp_unpack(a); s = up_sign; e = up_exp; num = up_man;
  {
    int sb; int eb;
    fp_unpack(b);
    sb = up_sign; eb = up_exp;
    if (up_man == 0 || fp_abs(b) == 0) {
      // Division by zero: saturate with the right sign.
      return ((s ^ sb) << 31) | (254 << 23) | 8388607;
    }
    s = s ^ sb;
    e = e - eb + FP_BIAS;
    den = up_man;
  }
  // Long division producing 27 quotient bits.
  q = 0; rem = num;
  for (i = 0; i < 27; i = i + 1) {
    q = q << 1;
    if (rem >= den) { q = q | 1; rem = rem - den; }
    rem = rem << 1;
  }
  if (rem != 0) q = q | 1;  // sticky
  // num/den in (0.5, 2): the quotient's leading 1 is at bit 26 or 25.
  return fp_norm_pack(s, e, q);
}

int fp_from_int(int v) {
  int s;
  s = 0;
  if (v < 0) { s = 1; v = -v; }
  if (v == 0) return 0;
  // 27 significand bits: shift so the value has 3 guard bits.
  {
    int e; int m; int lost;
    e = FP_BIAS + 23;
    m = v;
    // Bring m into 27 bits if it is too large.
    while (m >= 134217728) {
      lost = m & 1;
      m = (m >>> 1) | lost;
      e = e + 1;
    }
    m = m << 3;
    while (m >= 134217728) { m = m >>> 1; e = e + 1; }
    return fp_norm_pack(s, e, m);
  }
  return 0;
}

int fp_to_int(int f) {
  int s; int e; int m; int shift;
  fp_unpack(f);
  s = up_sign; e = up_exp; m = up_man;
  shift = e - FP_BIAS - 23;
  if (shift > 7) { if (s) return -2147483647 - 1; return 2147483647; }
  if (shift >= 0) m = m << shift;
  else {
    if (shift < -24) m = 0;
    else m = m >>> (-shift);
  }
  if (s) return -m;
  return m;
}

// -1, 0, 1 like a three-way comparison (total order on our subset).
int fp_cmp(int a, int b) {
  int sa; int sb;
  if (fp_abs(a) == 0 && fp_abs(b) == 0) return 0;
  sa = fp_sign(a); sb = fp_sign(b);
  if (sa != sb) { if (sa) return -1; return 1; }
  if (a == b) return 0;
  if (sa == 0) { if ((a >>> 1) < (b >>> 1)) return -1; return 1; }
  if ((a >>> 1) < (b >>> 1)) return 1;
  return -1;
}

// Newton iteration square root: three refinements from a crude seed.
int fp_sqrt(int f) {
  int x; int half; int i; int two;
  if (fp_sign(f)) lib_panic("fp_sqrt of negative", 71);
  if (fp_abs(f) == 0) return 0;
  half = 1056964608;      // 0.5f
  two = 1073741824;       // 2.0f
  // Seed: halve the exponent distance from 1.0.
  x = ((fp_exp(f) - FP_BIAS) / 2 + FP_BIAS) << 23;
  x = x | (fp_man(f) >>> 1);
  for (i = 0; i < 5; i = i + 1) {
    // x = 0.5 * (x + f / x)
    x = fp_mul(half, fp_add(x, fp_div(f, x)));
  }
  if (fp_cmp(x, two) == 0) return x;   // keep [two] referenced
  return x;
}

// ------------------------------------------------------------------
// lib3: self test (reachable through lib_diagnostics)
// ------------------------------------------------------------------

int fp_selftest() {
  int one; int two; int three; int half; int failures; int x;
  failures = 0;
  one = fp_from_int(1);
  two = fp_from_int(2);
  three = fp_from_int(3);
  half = fp_div(one, two);
  if (one != 1065353216) failures = failures + 1;          // 0x3F800000
  if (two != 1073741824) failures = failures + 1;          // 0x40000000
  if (half != 1056964608) failures = failures + 1;         // 0x3F000000
  if (fp_to_int(fp_add(one, two)) != 3) failures = failures + 1;
  if (fp_to_int(fp_mul(two, three)) != 6) failures = failures + 1;
  if (fp_to_int(fp_div(fp_from_int(42), two)) != 21) failures = failures + 1;
  if (fp_cmp(one, two) != -1) failures = failures + 1;
  if (fp_cmp(two, one) != 1) failures = failures + 1;
  if (fp_cmp(fp_neg(one), one) != -1) failures = failures + 1;
  if (fp_to_int(fp_sub(three, two)) != 1) failures = failures + 1;
  // Round-trip a spread of integers.
  for (x = 1; x < 100000; x = x * 3 + 7) {
    if (fp_to_int(fp_from_int(x)) != x) failures = failures + 1;
    if (fp_to_int(fp_from_int(-x)) != -x) failures = failures + 1;
  }
  // sqrt(49)^2 must land within 1/1000 of 49.
  x = fp_sqrt(fp_from_int(49));
  {
    int errf; int tol;
    errf = fp_abs(fp_sub(fp_mul(x, x), fp_from_int(49)));
    tol = fp_div(one, fp_from_int(1000));
    if (fp_cmp(errf, tol) > 0) failures = failures + 1;
  }
  out_fmt1("fp self-test failures: %d\n", failures);
  if (failures != 0) lib_panic("fp self-test failed", 72);
  return failures;
}
|}
