(* Shared pieces of the jpeg_enc / jpeg_dec pair: an orthonormal integer
   8x8 DCT basis (generated here, scaled by 256), the standard luminance
   quantisation table, and the zig-zag order. *)

let dct_basis =
  (* B.(u).(x) = round(256 * c(u) * sqrt(1/8)... i.e. the orthonormal 1-D
     DCT matrix scaled by 256: A[u][x] = c(u) * sqrt(2/8) * cos((2x+1)uπ/16)
     with c(0) = 1/sqrt(2), c(u) = 1 otherwise. *)
  Array.init 8 (fun u ->
      Array.init 8 (fun x ->
          let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
          let v =
            cu *. sqrt (2.0 /. 8.0)
            *. cos (Float.pi *. float_of_int ((2 * x) + 1) *. float_of_int u /. 16.0)
          in
          int_of_float (Float.round (256.0 *. v))))

let basis_initialiser =
  let entries =
    Array.to_list dct_basis
    |> List.concat_map Array.to_list
    |> List.map string_of_int
    |> String.concat ", "
  in
  Printf.sprintf "int dct_basis[64] = { %s };" entries

let quant_table =
  "int quant_tab[64] = {\n\
  \  16, 11, 10, 16, 24, 40, 51, 61,\n\
  \  12, 12, 14, 19, 26, 58, 60, 55,\n\
  \  14, 13, 16, 24, 40, 57, 69, 56,\n\
  \  14, 17, 22, 29, 51, 87, 80, 62,\n\
  \  18, 22, 37, 56, 68, 109, 103, 77,\n\
  \  24, 35, 55, 64, 81, 104, 113, 92,\n\
  \  49, 64, 78, 87, 103, 121, 120, 101,\n\
  \  72, 92, 95, 98, 112, 100, 103, 99 };"

let zigzag =
  "int zigzag[64] = {\n\
  \  0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,\n\
  \  12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,\n\
  \  35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,\n\
  \  58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63 };"

(* Forward/backward 2-D DCT over the 64-word block array [blk], using
   [dct_basis]; both are MiniC functions shared by encoder and decoder. *)
let transform_code =
  {|
int blk[64];
int blk_tmp[64];

// One 1-D pass: out[u] = sum_x in[x] * B[u][x] >> 8, rows then columns.
int dct_rows_fwd() {
  int y; int u; int x; int acc;
  for (y = 0; y < 8; y = y + 1)
    for (u = 0; u < 8; u = u + 1) {
      acc = 0;
      for (x = 0; x < 8; x = x + 1)
        acc = acc + blk[y * 8 + x] * dct_basis[u * 8 + x];
      blk_tmp[y * 8 + u] = (acc + 128) >> 8;
    }
  return 0;
}

int dct_cols_fwd() {
  int x; int u; int y; int acc;
  for (x = 0; x < 8; x = x + 1)
    for (u = 0; u < 8; u = u + 1) {
      acc = 0;
      for (y = 0; y < 8; y = y + 1)
        acc = acc + blk_tmp[y * 8 + x] * dct_basis[u * 8 + y];
      blk[u * 8 + x] = (acc + 128) >> 8;
    }
  return 0;
}

int dct_forward() {
  dct_rows_fwd();
  dct_cols_fwd();
  return 0;
}

// Inverse: f[x] = sum_u F[u] * B[u][x] >> 8 (the basis is orthonormal).
int dct_rows_inv() {
  int y; int x; int u; int acc;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      acc = 0;
      for (u = 0; u < 8; u = u + 1)
        acc = acc + blk[y * 8 + u] * dct_basis[u * 8 + x];
      blk_tmp[y * 8 + x] = (acc + 128) >> 8;
    }
  return 0;
}

int dct_cols_inv() {
  int x; int y; int u; int acc;
  for (x = 0; x < 8; x = x + 1)
    for (y = 0; y < 8; y = y + 1) {
      acc = 0;
      for (u = 0; u < 8; u = u + 1)
        acc = acc + blk_tmp[u * 8 + x] * dct_basis[u * 8 + y];
      blk[y * 8 + x] = (acc + 128) >> 8;
    }
  return 0;
}

int dct_inverse() {
  dct_rows_inv();
  dct_cols_inv();
  return 0;
}
|}

let tables = basis_initialiser ^ "\n" ^ quant_table ^ "\n" ^ zigzag ^ "\n"
