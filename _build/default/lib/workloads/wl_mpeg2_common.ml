(* Shared pieces of the mpeg2enc / mpeg2dec pair.  Both programs carry the
   8x8 transform (reusing the JPEG basis tables — as the real codecs share
   DCT code) plus a flat intra quantiser. *)

let tables = Wl_jpeg_common.basis_initialiser ^ "\n"

let transform_code = Wl_jpeg_common.transform_code

let quant_code =
  {|
const MB = 16;             // macroblock size
const QSCALE = 12;

int mpg_quantize_block() {
  int i; int v;
  for (i = 0; i < 64; i = i + 1) {
    v = blk[i];
    if (v >= 0) blk[i] = (v + QSCALE / 2) / QSCALE;
    else blk[i] = -((-v + QSCALE / 2) / QSCALE);
  }
  return 0;
}

int mpg_dequantize_block() {
  int i;
  for (i = 0; i < 64; i = i + 1) blk[i] = blk[i] * QSCALE;
  return 0;
}
|}
