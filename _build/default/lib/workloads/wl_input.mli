(** Deterministic synthetic input generation for the workload suite.

    The paper's benchmarks consume audio (PCM speech), images, video and
    documents (Figure 5).  Those files are not redistributable, so each
    workload here gets synthetic inputs with similar statistical character:
    band-limited "speech" waveforms with silence and bursts, smooth images
    with texture and edges, video as a sequence of drifting frames, and
    text-like byte streams.  All generation is seeded and reproducible.

    Inputs are byte strings; numeric payloads are encoded as 32-bit
    little-endian words read by the [getw] builtin. *)

type rng

val rng : int -> rng
val next : rng -> int
(** 31-bit non-negative pseudo-random value (xorshift). *)

val range : rng -> int -> int
(** Uniform in [0, n). *)

val word_string : int list -> string
(** Encode words as 4-byte little-endian each. *)

val words_of_string : string -> int list
(** Inverse (for tests). *)

val speech : seed:int -> samples:int -> int list
(** 16-bit signed "speech" samples: voiced segments (harmonic), unvoiced
    segments (noise), silence, and occasional clipping bursts. *)

val image : seed:int -> width:int -> height:int -> int list
(** 8-bit pixels, row-major: smooth gradients, texture and hard edges. *)

val video : seed:int -> width:int -> height:int -> frames:int -> int list
(** A sequence of frames where each drifts from the previous one (so motion
    search finds real matches). *)

val document : seed:int -> bytes:int -> string
(** Text-like bytes with word-ish structure and punctuation, for the
    crypto workload. *)
