(** MiniC recursive-descent parser with precedence climbing for binary
    operators (precedence follows C). *)

exception Parse_error of Mc_ast.pos * string

val parse : string -> Mc_ast.program
(** @raise Parse_error and @raise Mc_lexer.Lex_error on bad input. *)

val parse_expr : string -> Mc_ast.expr
(** Parse a single expression (for tests). *)
