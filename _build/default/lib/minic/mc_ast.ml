type pos = { line : int; col : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lshr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type unop = Neg | Not | Bnot

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Str of string
  | Var of string
  | Addr_of of string
  | Index of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of lvalue * expr
  | Call of string * expr list

and lvalue = Lvar of string | Lindex of expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of expr option * expr option * expr option * stmt
  | Switch of expr * switch_case list
  | Return of expr option
  | Break
  | Continue
  | Block of block_item list
  | Empty

and switch_case = { labels : case_label list; body : stmt list }
and case_label = Case of expr | Default
and block_item = Decl of decl | Stmt of stmt

and decl = {
  dname : string;
  dsize : expr option;
  dinit : expr option;
  dpos : pos;
}

type global = {
  gname : string;
  gsize : expr option;
  ginit : expr list option;
  gpos : pos;
}

type func = { fname : string; params : string list; body : block_item list; fpos : pos }
type top = Const of string * expr * pos | Global of global | Func of func
type program = top list

let pp_pos ppf { line; col } = Format.fprintf ppf "%d:%d" line col

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lshr -> ">>>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"
