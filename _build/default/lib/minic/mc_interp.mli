(** A reference interpreter for MiniC, evaluating the resolved IR of
    {!Mc_sema} directly.

    It shares nothing with the code generator, the ISA or the simulator —
    only the language's specification (32-bit wrapping arithmetic, the
    byte-addressed memory model, the builtins) — so it serves as an
    independent semantics to differential-test the whole compilation
    pipeline against: for any address-insensitive program,
    [Mc_interp.run (Mc_sema.analyze ast)] and compiling + running on the VM
    must produce the same output and exit code.

    Limits: [setjmp]/[longjmp] are not supported (raising
    {!Unsupported}), and programs that observe concrete addresses (e.g.
    printing an [sbrk] result) may legitimately differ from the VM. *)

exception Runtime_error of string
exception Unsupported of string

type outcome = { exit_code : int; output : string }

val run : ?fuel:int -> Mc_sema.rprogram -> input:string -> outcome
(** Execute the program's [main].  [fuel] bounds the number of evaluated
    statements and expressions (default 100 million).
    @raise Runtime_error on division by zero, out-of-range memory access or
    fuel exhaustion. *)

val run_source : ?fuel:int -> string -> input:string -> outcome
(** Parse, analyse and run MiniC source text; raises like {!Minic.compile_exn}
    on front-end errors. *)
