(** MiniC lexer. *)

type token =
  | INT_LIT of int
  | STR_LIT of string
  | IDENT of string
  | KW of string  (** int, if, else, while, do, for, switch, case, default,
                      return, break, continue, const *)
  | PUNCT of string  (** operators and punctuation, longest-match *)
  | EOF

type lexed = { tok : token; pos : Mc_ast.pos }

exception Lex_error of Mc_ast.pos * string

val tokenize : string -> lexed list
(** @raise Lex_error on malformed input. *)

val token_name : token -> string
