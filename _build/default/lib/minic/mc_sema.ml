open Mc_ast

exception Sema_error of pos * string

let err p fmt = Format.kasprintf (fun s -> raise (Sema_error (p, s))) fmt

type builtin = Bsys of Syscall.t | Bloadb | Bstoreb

type rexpr =
  | RInt of int
  | RLocal of int
  | RLocal_addr of int
  | RGlobal of int
  | RGlobal_addr of int
  | RFunc_addr of string
  | RIndex of rexpr * rexpr
  | RBinop of Mc_ast.binop * rexpr * rexpr
  | RUnop of Mc_ast.unop * rexpr
  | RAssign_local of int * rexpr
  | RAssign_global of int * rexpr
  | RAssign_index of rexpr * rexpr * rexpr
  | RCall of string * rexpr list
  | RCall_indirect of rexpr * rexpr list
  | RBuiltin of builtin * rexpr list

type rstmt =
  | RExpr of rexpr
  | RIf of rexpr * rstmt list * rstmt list
  | RLoop of {
      pre_cond : rexpr option;
      body : rstmt list;
      post_cond : rexpr option;
      step : rexpr option;
    }
  | RSwitch of rexpr * rcase list
  | RReturn of rexpr option
  | RBreak
  | RContinue

and rcase = { values : int list; is_default : bool; cbody : rstmt list }

type rfunc = {
  name : string;
  nparams : int;
  locals : int array;
  body : rstmt list;
  calls_setjmp : bool;
}

type rprogram = { funcs : rfunc list; data_words : int; data_init : (int * int) list }

let builtins =
  [
    ("getc", Bsys Syscall.Getc, 0);
    ("putc", Bsys Syscall.Putc, 1);
    ("putint", Bsys Syscall.Putint, 1);
    ("getw", Bsys Syscall.Getw, 0);
    ("putw", Bsys Syscall.Putw, 1);
    ("exit", Bsys Syscall.Exit, 1);
    ("sbrk", Bsys Syscall.Sbrk, 1);
    ("setjmp", Bsys Syscall.Setjmp, 1);
    ("longjmp", Bsys Syscall.Longjmp, 2);
    ("loadb", Bloadb, 1);
    ("storeb", Bstoreb, 2);
  ]

type global_info = { goffset : int; gwords : int }

type env = {
  consts : (string, int) Hashtbl.t;
  globals : (string, global_info) Hashtbl.t;
  func_arity : (string, int) Hashtbl.t;
  strings : (string, int) Hashtbl.t;  (* literal -> byte address *)
  mutable string_bytes : string list;  (* collected literals, reversed *)
  mutable string_next : int;  (* next free byte offset within the string area *)
  globals_words : int;
}

(* Constant expression evaluation (array sizes, case labels, initialisers). *)
let rec const_eval env (e : expr) =
  match e.desc with
  | Int v -> Word.of_int v
  | Var name -> (
    match Hashtbl.find_opt env.consts name with
    | Some v -> v
    | None -> err e.pos "%s is not a compile-time constant" name)
  | Unop (Neg, e1) -> Word.of_int (-Word.to_signed (const_eval env e1))
  | Unop (Bnot, e1) -> Word.lognot (const_eval env e1)
  | Unop (Not, e1) -> if const_eval env e1 = 0 then 1 else 0
  | Binop (op, e1, e2) -> (
    let a = const_eval env e1 and b = const_eval env e2 in
    let bool_ c = if c then 1 else 0 in
    match op with
    | Add -> Word.add a b
    | Sub -> Word.sub a b
    | Mul -> Word.mul a b
    | Div ->
      if b = 0 then err e.pos "division by zero in constant expression"
      else Word.sdiv a b
    | Rem ->
      if b = 0 then err e.pos "division by zero in constant expression"
      else Word.srem a b
    | And -> Word.logand a b
    | Or -> Word.logor a b
    | Xor -> Word.logxor a b
    | Shl -> Word.shift_left a (b land 31)
    | Shr -> Word.shift_right_arith a (b land 31)
    | Lshr -> Word.shift_right_logical a (b land 31)
    | Eq -> bool_ (Word.eq a b)
    | Ne -> bool_ (not (Word.eq a b))
    | Lt -> bool_ (Word.slt a b)
    | Le -> bool_ (Word.sle a b)
    | Gt -> bool_ (Word.slt b a)
    | Ge -> bool_ (Word.sle b a)
    | Land -> bool_ (a <> 0 && b <> 0)
    | Lor -> bool_ (a <> 0 || b <> 0))
  | Str _ | Addr_of _ | Index _ | Assign _ | Call _ ->
    err e.pos "expression is not a compile-time constant"

let intern_string env s =
  match Hashtbl.find_opt env.strings s with
  | Some addr -> addr
  | None ->
    let addr = Layout.data_base + (4 * env.globals_words) + env.string_next in
    Hashtbl.replace env.strings s addr;
    env.string_bytes <- s :: env.string_bytes;
    env.string_next <- env.string_next + String.length s + 1;
    addr

type local_scope = {
  table : (string, int) Hashtbl.t;  (* name -> local slot *)
  mutable sizes : int list;  (* reversed slot sizes *)
  mutable count : int;
  mutable arrays : (int, unit) Hashtbl.t option;  (* slots that are arrays *)
}

let new_scope () =
  { table = Hashtbl.create 16; sizes = []; count = 0; arrays = Some (Hashtbl.create 8) }

let add_local scope pos name words ~is_array =
  if Hashtbl.mem scope.table name then err pos "duplicate local %s" name;
  let slot = scope.count in
  Hashtbl.replace scope.table name slot;
  scope.sizes <- words :: scope.sizes;
  scope.count <- scope.count + 1;
  (match scope.arrays with
  | Some tbl when is_array -> Hashtbl.replace tbl slot ()
  | Some _ | None -> ());
  slot

let is_array_slot scope slot =
  match scope.arrays with Some tbl -> Hashtbl.mem tbl slot | None -> false

type fctx = {
  env : env;
  scope : local_scope;
  mutable in_loop : int;
  mutable in_switch : int;
  mutable saw_setjmp : bool;
}

let rec resolve_expr ctx (e : expr) : rexpr =
  let env = ctx.env in
  match e.desc with
  | Int v -> RInt (Word.of_int v)
  | Str s -> RInt (intern_string env s)
  | Var name -> (
    match Hashtbl.find_opt ctx.scope.table name with
    | Some slot ->
      if is_array_slot ctx.scope slot then RLocal_addr slot else RLocal slot
    | None -> (
      match Hashtbl.find_opt env.consts name with
      | Some v -> RInt v
      | None -> (
        match Hashtbl.find_opt env.globals name with
        | Some g -> if g.gwords > 1 then RGlobal_addr g.goffset else RGlobal g.goffset
        | None -> err e.pos "undefined variable %s" name)))
  | Addr_of name -> (
    if Hashtbl.mem env.func_arity name then RFunc_addr name
    else
      match Hashtbl.find_opt ctx.scope.table name with
      | Some slot -> RLocal_addr slot
      | None -> (
        match Hashtbl.find_opt env.globals name with
        | Some g -> RGlobal_addr g.goffset
        | None -> err e.pos "cannot take the address of %s" name))
  | Index (e1, e2) -> RIndex (resolve_expr ctx e1, resolve_expr ctx e2)
  | Binop (op, e1, e2) -> RBinop (op, resolve_expr ctx e1, resolve_expr ctx e2)
  | Unop (op, e1) -> RUnop (op, resolve_expr ctx e1)
  | Assign (Lvar name, rhs) -> (
    let rhs = resolve_expr ctx rhs in
    match Hashtbl.find_opt ctx.scope.table name with
    | Some slot ->
      if is_array_slot ctx.scope slot then err e.pos "cannot assign to array %s" name;
      RAssign_local (slot, rhs)
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some g ->
        if g.gwords > 1 then err e.pos "cannot assign to array %s" name;
        RAssign_global (g.goffset, rhs)
      | None -> err e.pos "undefined variable %s" name))
  | Assign (Lindex (e1, e2), rhs) ->
    RAssign_index (resolve_expr ctx e1, resolve_expr ctx e2, resolve_expr ctx rhs)
  | Call (name, args) -> (
    let rargs = List.map (resolve_expr ctx) args in
    match Hashtbl.find_opt env.func_arity name with
    | Some arity ->
      if List.length args <> arity then
        err e.pos "%s expects %d arguments, got %d" name arity (List.length args);
      RCall (name, rargs)
    | None -> (
      match List.find_opt (fun (n, _, _) -> n = name) builtins with
      | Some (_, b, arity) ->
        if List.length args <> arity then
          err e.pos "builtin %s expects %d arguments, got %d" name arity
            (List.length args);
        if name = "setjmp" then ctx.saw_setjmp <- true;
        RBuiltin (b, rargs)
      | None -> (
        if List.length args > 6 then err e.pos "too many arguments (max 6)";
        (* Indirect call through a variable holding a function address. *)
        match Hashtbl.find_opt ctx.scope.table name with
        | Some slot -> RCall_indirect (RLocal slot, rargs)
        | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some g when g.gwords = 1 -> RCall_indirect (RGlobal g.goffset, rargs)
          | Some _ -> err e.pos "cannot call array %s" name
          | None -> err e.pos "undefined function %s" name))))

let rec resolve_stmt ctx (s : stmt) : rstmt list =
  match s.sdesc with
  | Empty -> []
  | Expr e -> [ RExpr (resolve_expr ctx e) ]
  | If (c, t, f) ->
    [
      RIf
        ( resolve_expr ctx c,
          resolve_stmt ctx t,
          match f with None -> [] | Some f -> resolve_stmt ctx f );
    ]
  | While (c, body) ->
    let c = resolve_expr ctx c in
    ctx.in_loop <- ctx.in_loop + 1;
    let body = resolve_stmt ctx body in
    ctx.in_loop <- ctx.in_loop - 1;
    [ RLoop { pre_cond = Some c; body; post_cond = None; step = None } ]
  | Do_while (body, c) ->
    let c = resolve_expr ctx c in
    ctx.in_loop <- ctx.in_loop + 1;
    let body = resolve_stmt ctx body in
    ctx.in_loop <- ctx.in_loop - 1;
    [ RLoop { pre_cond = None; body; post_cond = Some c; step = None } ]
  | For (init, cond, step, body) ->
    let init = Option.map (resolve_expr ctx) init in
    let cond = Option.map (resolve_expr ctx) cond in
    let step = Option.map (resolve_expr ctx) step in
    ctx.in_loop <- ctx.in_loop + 1;
    let body = resolve_stmt ctx body in
    ctx.in_loop <- ctx.in_loop - 1;
    let loop = RLoop { pre_cond = cond; body; post_cond = None; step } in
    (match init with None -> [ loop ] | Some e -> [ RExpr e; loop ])
  | Switch (scrut, cases) ->
    let scrut = resolve_expr ctx scrut in
    ctx.in_switch <- ctx.in_switch + 1;
    let seen = Hashtbl.create 16 in
    let seen_default = ref false in
    let rcases =
      List.map
        (fun (c : switch_case) ->
          let values =
            List.filter_map
              (function
                | Case e ->
                  let v = Word.to_signed (const_eval ctx.env e) in
                  if Hashtbl.mem seen v then err s.spos "duplicate case label %d" v;
                  Hashtbl.replace seen v ();
                  Some v
                | Default ->
                  if !seen_default then err s.spos "duplicate default label";
                  seen_default := true;
                  None)
              c.labels
          in
          let is_default = List.exists (function Default -> true | Case _ -> false) c.labels in
          { values; is_default; cbody = List.concat_map (resolve_stmt ctx) c.body })
        cases
    in
    ctx.in_switch <- ctx.in_switch - 1;
    [ RSwitch (scrut, rcases) ]
  | Return e -> [ RReturn (Option.map (resolve_expr ctx) e) ]
  | Break ->
    if ctx.in_loop = 0 && ctx.in_switch = 0 then err s.spos "break outside loop or switch";
    [ RBreak ]
  | Continue ->
    if ctx.in_loop = 0 then err s.spos "continue outside loop";
    [ RContinue ]
  | Block items -> resolve_items ctx items

and resolve_items ctx items =
  List.concat_map
    (fun item ->
      match item with
      | Stmt s -> resolve_stmt ctx s
      | Decl d ->
        let words, is_array =
          match d.dsize with
          | None -> (1, false)
          | Some e ->
            let v = Word.to_signed (const_eval ctx.env e) in
            if v <= 0 then err d.dpos "array %s has non-positive size" d.dname;
            (v, true)
        in
        if is_array && d.dinit <> None then
          err d.dpos "local array %s cannot have an initialiser" d.dname;
        let slot = add_local ctx.scope d.dpos d.dname words ~is_array in
        (match d.dinit with
        | None -> []
        | Some e -> [ RExpr (RAssign_local (slot, resolve_expr ctx e)) ]))
    items

let analyze (prog : program) : rprogram =
  let env =
    {
      consts = Hashtbl.create 32;
      globals = Hashtbl.create 32;
      func_arity = Hashtbl.create 32;
      strings = Hashtbl.create 16;
      string_bytes = [];
      string_next = 0;
      globals_words = 0;
    }
  in
  let taken name pos =
    if
      Hashtbl.mem env.consts name || Hashtbl.mem env.globals name
      || Hashtbl.mem env.func_arity name
      || List.exists (fun (n, _, _) -> n = name) builtins
    then err pos "duplicate definition of %s" name
  in
  (* Pass 1: consts, globals (layout), function signatures. *)
  let globals_words = ref 0 in
  let data_init = ref [] in
  List.iter
    (fun top ->
      match top with
      | Const (name, e, pos) ->
        taken name pos;
        Hashtbl.replace env.consts name (const_eval env e)
      | Global g ->
        taken g.gname g.gpos;
        let words =
          match g.gsize with
          | None -> 1
          | Some e ->
            let v = Word.to_signed (const_eval env e) in
            if v <= 0 then err g.gpos "array %s has non-positive size" g.gname;
            v
        in
        let offset = !globals_words in
        (match g.ginit with
        | None -> ()
        | Some inits ->
          if List.length inits > words then
            err g.gpos "too many initialisers for %s" g.gname;
          List.iteri
            (fun i e -> data_init := (offset + i, const_eval env e) :: !data_init)
            inits);
        Hashtbl.replace env.globals g.gname { goffset = offset; gwords = words };
        globals_words := !globals_words + words
      | Func f ->
        taken f.fname f.fpos;
        if List.length f.params > 6 then err f.fpos "too many parameters (max 6)";
        Hashtbl.replace env.func_arity f.fname (List.length f.params))
    prog;
  let env = { env with globals_words = !globals_words } in
  (* Pass 2: function bodies. *)
  let funcs =
    List.filter_map
      (fun top ->
        match top with
        | Const _ | Global _ -> None
        | Func f ->
          let scope = new_scope () in
          List.iter
            (fun p -> ignore (add_local scope f.fpos p 1 ~is_array:false))
            f.params;
          let ctx = { env; scope; in_loop = 0; in_switch = 0; saw_setjmp = false } in
          let body = resolve_items ctx f.body in
          Some
            {
              name = f.fname;
              nparams = List.length f.params;
              locals = Array.of_list (List.rev scope.sizes);
              body;
              calls_setjmp = ctx.saw_setjmp;
            })
      prog
  in
  (match List.find_opt (fun f -> f.name = "main") funcs with
  | Some f when f.nparams = 0 -> ()
  | Some _ -> err { line = 1; col = 1 } "main must take no parameters"
  | None -> err { line = 1; col = 1 } "missing function main");
  (* Pack string literals into words after the globals. *)
  let string_area =
    let bytes = Buffer.create 64 in
    List.iter
      (fun s ->
        Buffer.add_string bytes s;
        Buffer.add_char bytes '\000')
      (List.rev env.string_bytes);
    Buffer.contents bytes
  in
  let string_words = (String.length string_area + 3) / 4 in
  let string_init =
    List.init string_words (fun w ->
        let byte i =
          let idx = (4 * w) + i in
          if idx < String.length string_area then Char.code string_area.[idx] else 0
        in
        ( !globals_words + w,
          byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) ))
    |> List.filter (fun (_, v) -> v <> 0)
  in
  {
    funcs;
    data_words = !globals_words + string_words;
    data_init = List.rev !data_init @ string_init;
  }
