(** Abstract syntax for MiniC, the small C-like language used to write the
    benchmark workloads.

    The language has a single value type (32-bit [int]); arrays are
    word-indexed regions whose name evaluates to their address, so an [int]
    parameter can receive an array and be indexed ([p[i]] loads the word at
    [p + 4*i]).  Functions named in call position are called directly; a
    call through a plain variable is an indirect call through the function
    address stored in it ([&f] takes a function's address). *)

type pos = { line : int; col : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And  (** bitwise & *)
  | Or  (** bitwise | *)
  | Xor
  | Shl
  | Shr  (** arithmetic shift right, like C on a signed int *)
  | Lshr  (** logical shift right (MiniC operator [>>>]) *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** logical &&, short-circuit *)
  | Lor  (** logical ||, short-circuit *)

type unop = Neg | Not  (** logical ! *) | Bnot  (** bitwise ~ *)

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Str of string
      (** A string literal; evaluates to the byte address of a
          NUL-terminated copy in the data segment. *)
  | Var of string
  | Addr_of of string  (** [&f]: address of a function. *)
  | Index of expr * expr  (** [e1[e2]]: word load at [e1 + 4*e2]. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of lvalue * expr
  | Call of string * expr list
      (** Direct call, builtin, or indirect call through a variable —
          disambiguated by {!Mc_sema}. *)

and lvalue =
  | Lvar of string
  | Lindex of expr * expr  (** [e1[e2] = ...]: word store at [e1 + 4*e2]. *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of expr option * expr option * expr option * stmt
  | Switch of expr * switch_case list
  | Return of expr option
  | Break
  | Continue
  | Block of block_item list
  | Empty

and switch_case = { labels : case_label list; body : stmt list }
and case_label = Case of expr  (** must be a constant expression *) | Default

and block_item =
  | Decl of decl
  | Stmt of stmt

and decl = {
  dname : string;
  dsize : expr option;  (** [Some n] for an array of n words. *)
  dinit : expr option;  (** Only for scalars. *)
  dpos : pos;
}

type global = {
  gname : string;
  gsize : expr option;
  ginit : expr list option;  (** Scalar or array initialiser (constants). *)
  gpos : pos;
}

type func = {
  fname : string;
  params : string list;
  body : block_item list;
  fpos : pos;
}

type top =
  | Const of string * expr * pos  (** [const NAME = const-expr;] *)
  | Global of global
  | Func of func

type program = top list

val pp_pos : Format.formatter -> pos -> unit
val binop_name : binop -> string
