(** Code generation from the resolved MiniC IR to the {!Prog} IR.

    The generator is deliberately naive — in the paper's experimental frame
    it plays the role of the vendor compiler's [-O1] output, leaving
    redundancy for the squeeze compactor to remove:

    - every named local lives in a frame slot; parameters are stored to
      their slots in the prologue;
    - expressions evaluate into a stack of temporary registers (spilled to
      dedicated frame slots across calls, and overflowing into frame slots
      beyond depth 11);
    - [ra] is saved and restored in every function, leaf or not;
    - dense [switch] statements compile to an indirect jump through a
      jump table placed after the function's code (the analysable pattern
      that squash's unswitching pass rewrites); sparse ones compile to
      compare-and-branch chains. *)

exception Codegen_error of string

val generate : Mc_sema.rprogram -> Prog.t
(** Produce a program with a synthesised [_start] entry function that calls
    [main] and exits with its result.
    @raise Codegen_error on an over-deep expression (beyond 27 slots). *)

val switch_table_min_cases : int
(** Minimum number of distinct case labels for jump-table dispatch (4). *)

val switch_table_max_range : int
(** Maximum label range covered by one jump table (512). *)
