exception Runtime_error of string
exception Unsupported of string

type outcome = { exit_code : int; output : string }

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Memory model: a flat word array, byte-addressed at the interface, with
   the same segment layout idea as the VM (globals low, heap above them,
   frames high, growing down) but independent concrete addresses. *)

(* The language ABI fixes the data segment's address (string literals and
   global addresses are compile-time constants produced by Mc_sema), so the
   interpreter uses the same memory map constants as the simulator.  This is
   shared specification, not shared implementation. *)
let mem_words = Layout.mem_bytes / 4
let data_base = Layout.data_base
let stack_top = Layout.stack_top

type state = {
  mem : int array;
  mutable sp : int;  (* byte address of the current frame base *)
  mutable brk : int;  (* heap break, bytes *)
  mutable fuel : int;
  input : string;
  mutable in_pos : int;
  out : Buffer.t;
  funcs : (string, Mc_sema.rfunc) Hashtbl.t;
}

(* Control-flow signals. *)
exception Break_signal
exception Continue_signal
exception Return_signal of int
exception Exit_signal of int

let tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then err "out of fuel"

let check_word _st a =
  if a land 3 <> 0 then err "unaligned word access at %d" a;
  let idx = a lsr 2 in
  if idx < 0 || idx >= mem_words then err "word access out of range at %d" a;
  idx

let load_word st a = st.mem.(check_word st a)
let store_word st a v = st.mem.(check_word st a) <- v land Word.mask

let load_byte st a =
  if a < 0 || a >= 4 * mem_words then err "byte access out of range at %d" a;
  (st.mem.(a lsr 2) lsr (8 * (a land 3))) land 0xFF

let store_byte st a v =
  if a < 0 || a >= 4 * mem_words then err "byte access out of range at %d" a;
  let idx = a lsr 2 in
  let shift = 8 * (a land 3) in
  st.mem.(idx) <- st.mem.(idx) land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift)

(* A frame maps local slots to byte addresses within the frame. *)
type frame = { base : int; offsets : int array }

let binop op a b =
  let bool_ c = if c then 1 else 0 in
  match (op : Mc_ast.binop) with
  | Mc_ast.Add -> Word.add a b
  | Mc_ast.Sub -> Word.sub a b
  | Mc_ast.Mul -> Word.mul a b
  | Mc_ast.Div -> (
    try Word.sdiv a b with Word.Division_trap -> err "division by zero")
  | Mc_ast.Rem -> (
    try Word.srem a b with Word.Division_trap -> err "division by zero")
  | Mc_ast.And -> Word.logand a b
  | Mc_ast.Or -> Word.logor a b
  | Mc_ast.Xor -> Word.logxor a b
  | Mc_ast.Shl -> Word.shift_left a (b land 31)
  | Mc_ast.Shr -> Word.shift_right_arith a (b land 31)
  | Mc_ast.Lshr -> Word.shift_right_logical a (b land 31)
  | Mc_ast.Eq -> bool_ (Word.eq a b)
  | Mc_ast.Ne -> bool_ (not (Word.eq a b))
  | Mc_ast.Lt -> bool_ (Word.slt a b)
  | Mc_ast.Le -> bool_ (Word.sle a b)
  | Mc_ast.Gt -> bool_ (Word.slt b a)
  | Mc_ast.Ge -> bool_ (Word.sle b a)
  | Mc_ast.Land | Mc_ast.Lor -> assert false (* short-circuit, handled below *)

let rec eval st (fr : frame) (e : Mc_sema.rexpr) : int =
  tick st;
  match e with
  | Mc_sema.RInt v -> Word.of_int v
  | Mc_sema.RLocal slot -> load_word st (fr.base + fr.offsets.(slot))
  | Mc_sema.RLocal_addr slot -> Word.of_int (fr.base + fr.offsets.(slot))
  | Mc_sema.RGlobal off -> load_word st (data_base + (4 * off))
  | Mc_sema.RGlobal_addr off -> Word.of_int (data_base + (4 * off))
  | Mc_sema.RFunc_addr name -> raise (Unsupported ("address of function " ^ name))
  | Mc_sema.RIndex (b, i) ->
    let base = eval st fr b in
    let idx = eval st fr i in
    load_word st (Word.to_signed base + (4 * Word.to_signed idx))
  | Mc_sema.RBinop (Mc_ast.Land, a, b) ->
    if eval st fr a = 0 then 0 else if eval st fr b = 0 then 0 else 1
  | Mc_sema.RBinop (Mc_ast.Lor, a, b) ->
    if eval st fr a <> 0 then 1 else if eval st fr b <> 0 then 1 else 0
  | Mc_sema.RBinop (op, a, b) ->
    let va = eval st fr a in
    let vb = eval st fr b in
    binop op va vb
  | Mc_sema.RUnop (Mc_ast.Neg, a) -> Word.sub 0 (eval st fr a)
  | Mc_sema.RUnop (Mc_ast.Not, a) -> if eval st fr a = 0 then 1 else 0
  | Mc_sema.RUnop (Mc_ast.Bnot, a) -> Word.lognot (eval st fr a)
  | Mc_sema.RAssign_local (slot, rhs) ->
    let v = eval st fr rhs in
    store_word st (fr.base + fr.offsets.(slot)) v;
    v
  | Mc_sema.RAssign_global (off, rhs) ->
    let v = eval st fr rhs in
    store_word st (data_base + (4 * off)) v;
    v
  | Mc_sema.RAssign_index (b, i, rhs) ->
    let base = eval st fr b in
    let idx = eval st fr i in
    let v = eval st fr rhs in
    store_word st (Word.to_signed base + (4 * Word.to_signed idx)) v;
    v
  | Mc_sema.RCall (name, args) ->
    let vals = List.map (eval st fr) args in
    call st name vals
  | Mc_sema.RCall_indirect _ -> raise (Unsupported "indirect call")
  | Mc_sema.RBuiltin (b, args) ->
    let vals = List.map (eval st fr) args in
    builtin st b vals

and builtin st b vals =
  match (b, vals) with
  | Mc_sema.Bsys sc, _ -> (
    let arg i = List.nth_opt vals i |> Option.value ~default:0 in
    match sc with
    | Syscall.Exit -> raise (Exit_signal (Word.to_signed (arg 0) land 0xFF))
    | Syscall.Getc ->
      if st.in_pos < String.length st.input then begin
        let c = Char.code st.input.[st.in_pos] in
        st.in_pos <- st.in_pos + 1;
        c
      end
      else Word.of_int (-1)
    | Syscall.Putc ->
      Buffer.add_char st.out (Char.chr (arg 0 land 0xFF));
      arg 0
    | Syscall.Putint ->
      Buffer.add_string st.out (string_of_int (Word.to_signed (arg 0)));
      Buffer.add_char st.out '\n';
      arg 0
    | Syscall.Getw ->
      if st.in_pos + 4 <= String.length st.input then begin
        let byte i = Char.code st.input.[st.in_pos + i] in
        let v = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
        st.in_pos <- st.in_pos + 4;
        v
      end
      else Word.of_int (-1)
    | Syscall.Putw ->
      for i = 0 to 3 do
        Buffer.add_char st.out (Char.chr ((arg 0 lsr (8 * i)) land 0xFF))
      done;
      arg 0
    | Syscall.Sbrk ->
      let old = st.brk in
      let nbrk = old + Word.to_signed (arg 0) in
      if nbrk < 0 || nbrk >= st.sp then err "sbrk: out of memory";
      st.brk <- nbrk;
      Word.of_int old
    | Syscall.Setjmp | Syscall.Longjmp -> raise (Unsupported "setjmp/longjmp"))
  | Mc_sema.Bloadb, [ a ] -> load_byte st (Word.to_signed a)
  | Mc_sema.Bstoreb, [ a; v ] ->
    store_byte st (Word.to_signed a) v;
    v
  | (Mc_sema.Bloadb | Mc_sema.Bstoreb), _ -> err "builtin arity"

and call st name vals =
  let f =
    match Hashtbl.find_opt st.funcs name with
    | Some f -> f
    | None -> err "undefined function %s" name
  in
  let saved_sp = st.sp in
  let fr = push_frame_sized st f in
  List.iteri
    (fun i v -> if i < f.nparams then store_word st (fr.base + fr.offsets.(i)) v)
    vals;
  let result =
    try
      List.iter (exec st fr) f.body;
      0
    with Return_signal v -> v
  in
  st.sp <- saved_sp;
  result

and push_frame_sized st (f : Mc_sema.rfunc) =
  let offsets = Array.make (Array.length f.locals) 0 in
  let words = ref 0 in
  Array.iteri
    (fun i size ->
      offsets.(i) <- 4 * !words;
      words := !words + size)
    f.locals;
  let bytes = 4 * max 1 !words in
  let base = st.sp - bytes in
  if base <= st.brk then err "stack overflow";
  st.sp <- base;
  { base; offsets }

and exec st fr (s : Mc_sema.rstmt) =
  tick st;
  match s with
  | Mc_sema.RExpr e -> ignore (eval st fr e)
  | Mc_sema.RIf (c, t, f) ->
    if eval st fr c <> 0 then List.iter (exec st fr) t else List.iter (exec st fr) f
  | Mc_sema.RLoop { pre_cond; body; post_cond; step } ->
    let continue = ref true in
    while !continue do
      tick st;
      (match pre_cond with
      | Some c when eval st fr c = 0 -> continue := false
      | Some _ | None -> ());
      if !continue then begin
        (try List.iter (exec st fr) body with
        | Break_signal -> continue := false
        | Continue_signal -> ());
        if !continue then begin
          (match step with Some e -> ignore (eval st fr e) | None -> ());
          match post_cond with
          | Some c when eval st fr c = 0 -> continue := false
          | Some _ | None -> ()
        end
      end
    done
  | Mc_sema.RSwitch (scrut, cases) ->
    let v = Word.to_signed (eval st fr scrut) in
    (* C semantics: dispatch to the exact case if any, else to default, with
       fallthrough into the following cases. *)
    let rec find_exact = function
      | [] -> None
      | (c : Mc_sema.rcase) :: rest ->
        if List.mem v c.values then Some (c :: rest) else find_exact rest
    in
    let rec find_default = function
      | [] -> None
      | (c : Mc_sema.rcase) :: rest ->
        if c.is_default then Some (c :: rest) else find_default rest
    in
    let matching =
      match find_exact cases with
      | Some tail -> tail
      | None -> Option.value ~default:[] (find_default cases)
    in
    (try
       List.iter
         (fun (c : Mc_sema.rcase) -> List.iter (exec st fr) c.cbody)
         matching
     with Break_signal -> ())
  | Mc_sema.RReturn (Some e) -> raise (Return_signal (eval st fr e))
  | Mc_sema.RReturn None -> raise (Return_signal 0)
  | Mc_sema.RBreak -> raise Break_signal
  | Mc_sema.RContinue -> raise Continue_signal

let run ?(fuel = 100_000_000) (rp : Mc_sema.rprogram) ~input =
  let st =
    {
      mem = Array.make mem_words 0;
      sp = stack_top;
      brk = data_base + (4 * rp.data_words);
      fuel;
      input;
      in_pos = 0;
      out = Buffer.create 1024;
      funcs = Hashtbl.create 64;
    }
  in
  List.iter (fun (f : Mc_sema.rfunc) -> Hashtbl.replace st.funcs f.name f) rp.funcs;
  List.iter
    (fun (off, v) -> store_word st (data_base + (4 * off)) (Word.of_int v))
    rp.data_init;
  let exit_code =
    try
      let v = call st "main" [] in
      Word.to_signed (Word.of_int v) land 0xFF
    with Exit_signal code -> code
  in
  { exit_code; output = Buffer.contents st.out }

let run_source ?fuel src ~input =
  let rp = Mc_sema.analyze (Mc_parser.parse src) in
  run ?fuel rp ~input
