open Mc_ast

exception Parse_error of pos * string

type state = { mutable toks : Mc_lexer.lexed list }

let err p fmt = Format.kasprintf (fun s -> raise (Parse_error (p, s))) fmt

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* the token list always ends with EOF *)

let advance st = match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let cur_pos st = (peek st).Mc_lexer.pos

let expect_punct st s =
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.PUNCT p when p = s -> advance st
  | tok -> err (cur_pos st) "expected '%s', got %s" s (Mc_lexer.token_name tok)

let expect_kw st s =
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.KW k when k = s -> advance st
  | tok -> err (cur_pos st) "expected '%s', got %s" s (Mc_lexer.token_name tok)

let accept_punct st s =
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.PUNCT p when p = s ->
    advance st;
    true
  | _ -> false

let accept_kw st s =
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.KW k when k = s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.IDENT name ->
    advance st;
    name
  | tok -> err (cur_pos st) "expected identifier, got %s" (Mc_lexer.token_name tok)

(* Binary operator precedence, higher binds tighter (C-like). *)
let binop_of_punct = function
  | "||" -> Some (Lor, 1)
  | "&&" -> Some (Land, 2)
  | "|" -> Some (Or, 3)
  | "^" -> Some (Xor, 4)
  | "&" -> Some (And, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | ">>>" -> Some (Lshr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Rem, 10)
  | _ -> None

let rec parse_expression st = parse_assignment st

and parse_assignment st =
  let lhs = parse_binary st 1 in
  if accept_punct st "=" then begin
    let rhs = parse_assignment st in
    let lv =
      match lhs.desc with
      | Var name -> Lvar name
      | Index (e1, e2) -> Lindex (e1, e2)
      | _ -> err lhs.pos "expression is not assignable"
    in
    { desc = Assign (lv, rhs); pos = lhs.pos }
  end
  else lhs

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).Mc_lexer.tok with
    | Mc_lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        let pos = cur_pos st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := { desc = Binop (op, !lhs, rhs); pos }
      | Some _ | None -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  let pos = cur_pos st in
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.PUNCT "-" ->
    advance st;
    { desc = Unop (Neg, parse_unary st); pos }
  | Mc_lexer.PUNCT "!" ->
    advance st;
    { desc = Unop (Not, parse_unary st); pos }
  | Mc_lexer.PUNCT "~" ->
    advance st;
    { desc = Unop (Bnot, parse_unary st); pos }
  | Mc_lexer.PUNCT "&" ->
    advance st;
    let name = expect_ident st in
    { desc = Addr_of name; pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let pos = cur_pos st in
    if accept_punct st "[" then begin
      let idx = parse_expression st in
      expect_punct st "]";
      e := { desc = Index (!e, idx); pos }
    end
    else continue := false
  done;
  !e

and parse_primary st =
  let pos = cur_pos st in
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.INT_LIT v ->
    advance st;
    { desc = Int v; pos }
  | Mc_lexer.STR_LIT s ->
    advance st;
    { desc = Str s; pos }
  | Mc_lexer.IDENT name -> (
    advance st;
    if accept_punct st "(" then begin
      let args = parse_args st in
      { desc = Call (name, args); pos }
    end
    else { desc = Var name; pos })
  | Mc_lexer.PUNCT "(" ->
    advance st;
    let e = parse_expression st in
    expect_punct st ")";
    e
  | tok -> err pos "expected expression, got %s" (Mc_lexer.token_name tok)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expression st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

let rec parse_stmt st =
  let spos = cur_pos st in
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.PUNCT ";" ->
    advance st;
    { sdesc = Empty; spos }
  | Mc_lexer.PUNCT "{" -> { sdesc = Block (parse_block st); spos }
  | Mc_lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expression st in
    expect_punct st ")";
    let then_ = parse_stmt st in
    let else_ = if accept_kw st "else" then Some (parse_stmt st) else None in
    { sdesc = If (cond, then_, else_); spos }
  | Mc_lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expression st in
    expect_punct st ")";
    { sdesc = While (cond, parse_stmt st); spos }
  | Mc_lexer.KW "do" ->
    advance st;
    let body = parse_stmt st in
    expect_kw st "while";
    expect_punct st "(";
    let cond = parse_expression st in
    expect_punct st ")";
    expect_punct st ";";
    { sdesc = Do_while (body, cond); spos }
  | Mc_lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        Some e
      end
    in
    let cond =
      if accept_punct st ";" then None
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        Some e
      end
    in
    let step =
      if accept_punct st ")" then None
      else begin
        let e = parse_expression st in
        expect_punct st ")";
        Some e
      end
    in
    { sdesc = For (init, cond, step, parse_stmt st); spos }
  | Mc_lexer.KW "switch" ->
    advance st;
    expect_punct st "(";
    let scrutinee = parse_expression st in
    expect_punct st ")";
    expect_punct st "{";
    let cases = parse_cases st in
    { sdesc = Switch (scrutinee, cases); spos }
  | Mc_lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then { sdesc = Return None; spos }
    else begin
      let e = parse_expression st in
      expect_punct st ";";
      { sdesc = Return (Some e); spos }
    end
  | Mc_lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    { sdesc = Break; spos }
  | Mc_lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    { sdesc = Continue; spos }
  | _ ->
    let e = parse_expression st in
    expect_punct st ";";
    { sdesc = Expr e; spos }

and parse_block st =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc
    else
      match (peek st).Mc_lexer.tok with
      | Mc_lexer.KW "int" -> go (Decl (parse_decl st) :: acc)
      | _ -> go (Stmt (parse_stmt st) :: acc)
  in
  go []

and parse_decl st =
  let dpos = cur_pos st in
  expect_kw st "int";
  let dname = expect_ident st in
  let dsize =
    if accept_punct st "[" then begin
      let e = parse_expression st in
      expect_punct st "]";
      Some e
    end
    else None
  in
  let dinit = if accept_punct st "=" then Some (parse_expression st) else None in
  expect_punct st ";";
  { dname; dsize; dinit; dpos }

and parse_cases st =
  (* case blocks with C fallthrough: consecutive labels share a body. *)
  let rec labels acc =
    if accept_kw st "case" then begin
      let e = parse_expression st in
      expect_punct st ":";
      labels (Case e :: acc)
    end
    else if accept_kw st "default" then begin
      expect_punct st ":";
      labels (Default :: acc)
    end
    else List.rev acc
  in
  let rec body acc =
    match (peek st).Mc_lexer.tok with
    | Mc_lexer.KW "case" | Mc_lexer.KW "default" | Mc_lexer.PUNCT "}" -> List.rev acc
    | _ -> body (parse_stmt st :: acc)
  in
  let rec go acc =
    if accept_punct st "}" then List.rev acc
    else begin
      let ls = labels [] in
      if ls = [] then err (cur_pos st) "expected 'case' or 'default' in switch";
      let b = body [] in
      go ({ labels = ls; body = b } :: acc)
    end
  in
  go []

let parse_top st =
  let pos = cur_pos st in
  if accept_kw st "const" then begin
    let name = expect_ident st in
    expect_punct st "=";
    let e = parse_expression st in
    expect_punct st ";";
    Const (name, e, pos)
  end
  else begin
    expect_kw st "int";
    let name = expect_ident st in
    match (peek st).Mc_lexer.tok with
    | Mc_lexer.PUNCT "(" ->
      advance st;
      let params =
        if accept_punct st ")" then []
        else begin
          let rec go acc =
            expect_kw st "int";
            let p = expect_ident st in
            if accept_punct st "," then go (p :: acc)
            else begin
              expect_punct st ")";
              List.rev (p :: acc)
            end
          in
          go []
        end
      in
      let body = parse_block st in
      Func { fname = name; params; body; fpos = pos }
    | _ ->
      let gsize =
        if accept_punct st "[" then begin
          let e = parse_expression st in
          expect_punct st "]";
          Some e
        end
        else None
      in
      let ginit =
        if accept_punct st "=" then
          if accept_punct st "{" then begin
            let rec go acc =
              let e = parse_expression st in
              if accept_punct st "," then go (e :: acc)
              else begin
                expect_punct st "}";
                List.rev (e :: acc)
              end
            in
            Some (go [])
          end
          else Some [ parse_expression st ]
        else None
      in
      expect_punct st ";";
      Global { gname = name; gsize; ginit; gpos = pos }
  end

let parse src =
  let st = { toks = Mc_lexer.tokenize src } in
  let rec go acc =
    match (peek st).Mc_lexer.tok with
    | Mc_lexer.EOF -> List.rev acc
    | _ -> go (parse_top st :: acc)
  in
  go []

let parse_expr src =
  let st = { toks = Mc_lexer.tokenize src } in
  let e = parse_expression st in
  match (peek st).Mc_lexer.tok with
  | Mc_lexer.EOF -> e
  | tok -> err (cur_pos st) "trailing input: %s" (Mc_lexer.token_name tok)
