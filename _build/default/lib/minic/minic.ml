type error = { line : int; col : int; message : string }

let error_to_string e = Printf.sprintf "%d:%d: %s" e.line e.col e.message

let analyze_src src =
  let ast = Mc_parser.parse src in
  Mc_sema.analyze ast

let compile src =
  match
    let rp = analyze_src src in
    let prog = Mc_codegen.generate rp in
    match Prog.validate prog with
    | Ok () -> prog
    | Error msg -> raise (Mc_codegen.Codegen_error ("internal: " ^ msg))
  with
  | prog -> Ok prog
  | exception Mc_lexer.Lex_error (p, m) ->
    Error { line = p.Mc_ast.line; col = p.Mc_ast.col; message = m }
  | exception Mc_parser.Parse_error (p, m) ->
    Error { line = p.Mc_ast.line; col = p.Mc_ast.col; message = m }
  | exception Mc_sema.Sema_error (p, m) ->
    Error { line = p.Mc_ast.line; col = p.Mc_ast.col; message = m }
  | exception Mc_codegen.Codegen_error m -> Error { line = 0; col = 0; message = m }

let compile_exn src =
  match compile src with
  | Ok prog -> prog
  | Error e -> failwith ("MiniC: " ^ error_to_string e)

let functions_calling_setjmp src =
  let rp = analyze_src src in
  List.filter_map
    (fun (f : Mc_sema.rfunc) -> if f.calls_setjmp then Some f.name else None)
    rp.funcs
