(** The MiniC compiler driver: source text to a {!Prog.t}.

    MiniC is a single-type (32-bit int) C-like language with functions,
    word arrays, strings, [if]/[while]/[do]/[for]/[switch], short-circuit
    logical operators, function addresses ([&f]) with indirect calls, and
    builtins mapping to the VM's system calls.  See {!Mc_ast} and
    {!Mc_sema} for details. *)

type error = { line : int; col : int; message : string }

val compile : string -> (Prog.t, error) result
(** Compile source text.  The result includes a synthesised [_start] and
    passes {!Prog.validate}. *)

val compile_exn : string -> Prog.t
(** @raise Failure with a formatted message on any compile error. *)

val error_to_string : error -> string

val functions_calling_setjmp : string -> string list
(** Names of the functions in a source file that call [setjmp]; squash
    refuses to compress these (paper, Section 2.2).  Raises like
    {!compile_exn} on bad input. *)
