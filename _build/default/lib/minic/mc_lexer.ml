type token =
  | INT_LIT of int
  | STR_LIT of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexed = { tok : token; pos : Mc_ast.pos }

exception Lex_error of Mc_ast.pos * string

let keywords =
  [ "int"; "if"; "else"; "while"; "do"; "for"; "switch"; "case"; "default";
    "return"; "break"; "continue"; "const" ]

(* Multi-character punctuation, longest first. *)
let puncts =
  [ ">>>"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; ":" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let toks = ref [] in
  let pos () = { Mc_ast.line = !line; col = !col } in
  let err p fmt = Format.kasprintf (fun s -> raise (Lex_error (p, s))) fmt in
  let advance k =
    for j = !i to !i + k - 1 do
      if j < n && src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let starts_with s =
    let l = String.length s in
    !i + l <= n && String.sub src !i l = s
  in
  while !i < n do
    let p = pos () in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance 1
    else if starts_with "//" then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if starts_with "/*" then begin
      advance 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if starts_with "*/" then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then err p "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      if starts_with "0x" || starts_with "0X" then begin
        advance 2;
        while
          !i < n
          && (is_digit src.[!i]
             || (Char.lowercase_ascii src.[!i] >= 'a' && Char.lowercase_ascii src.[!i] <= 'f'))
        do
          advance 1
        done
      end
      else
        while !i < n && is_digit src.[!i] do
          advance 1
        done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> toks := { tok = INT_LIT v; pos = p } :: !toks
      | None -> err p "bad integer literal %S" text
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance 1
      done;
      let text = String.sub src start (!i - start) in
      let tok = if List.mem text keywords then KW text else IDENT text in
      toks := { tok; pos = p } :: !toks
    end
    else if c = '\'' then begin
      advance 1;
      if !i >= n then err p "unterminated character literal";
      let v =
        if src.[!i] = '\\' then begin
          advance 1;
          if !i >= n then err p "unterminated character literal";
          let c = src.[!i] in
          advance 1;
          match c with
          | 'n' -> 10
          | 't' -> 9
          | 'r' -> 13
          | '0' -> 0
          | '\\' -> 92
          | '\'' -> 39
          | c -> err p "unknown escape '\\%c'" c
        end
        else begin
          let v = Char.code src.[!i] in
          advance 1;
          v
        end
      in
      if !i >= n || src.[!i] <> '\'' then err p "unterminated character literal";
      advance 1;
      toks := { tok = INT_LIT v; pos = p } :: !toks
    end
    else if c = '"' then begin
      advance 1;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then begin
          advance 1;
          closed := true
        end
        else if src.[!i] = '\\' then begin
          advance 1;
          if !i >= n then err p "unterminated string";
          (match src.[!i] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '0' -> Buffer.add_char buf '\000'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> err p "unknown escape '\\%c'" c);
          advance 1
        end
        else begin
          Buffer.add_char buf src.[!i];
          advance 1
        end
      done;
      if not !closed then err p "unterminated string";
      toks := { tok = STR_LIT (Buffer.contents buf); pos = p } :: !toks
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some s ->
        advance (String.length s);
        toks := { tok = PUNCT s; pos = p } :: !toks
      | None -> err p "unexpected character %C" c
    end
  done;
  List.rev ({ tok = EOF; pos = pos () } :: !toks)

let token_name = function
  | INT_LIT v -> string_of_int v
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "end of input"
