(** Semantic analysis: resolve names, evaluate constant expressions, lay out
    the data segment (globals and string literals), check calls and
    control-flow context, and produce the resolved IR consumed by
    {!Mc_codegen}.

    Builtins (checked for arity, compiled to syscalls or single
    instructions): [getc() putc(c) putint(v) getw() putw(w) exit(c) sbrk(n)
    setjmp(buf) longjmp(buf, v) loadb(addr) storeb(addr, v)].

    A call [f(...)] is a direct call when [f] is a defined function, a
    builtin when [f] is one of the names above, and otherwise an indirect
    call through the value of variable [f] (a function address created with
    [&f]). *)

exception Sema_error of Mc_ast.pos * string

type builtin =
  | Bsys of Syscall.t  (** arguments in a0.., result in v0 *)
  | Bloadb
  | Bstoreb

type rexpr =
  | RInt of int
  | RLocal of int  (** Scalar local: load from frame slot. *)
  | RLocal_addr of int  (** Address of a local (array base or scalar slot). *)
  | RGlobal of int  (** Scalar global: load from data word offset. *)
  | RGlobal_addr of int  (** Address of a global. *)
  | RFunc_addr of string
  | RIndex of rexpr * rexpr
  | RBinop of Mc_ast.binop * rexpr * rexpr
  | RUnop of Mc_ast.unop * rexpr
  | RAssign_local of int * rexpr
  | RAssign_global of int * rexpr
  | RAssign_index of rexpr * rexpr * rexpr  (** base, index, value *)
  | RCall of string * rexpr list
  | RCall_indirect of rexpr * rexpr list
  | RBuiltin of builtin * rexpr list

type rstmt =
  | RExpr of rexpr
  | RIf of rexpr * rstmt list * rstmt list
  | RLoop of { pre_cond : rexpr option; body : rstmt list; post_cond : rexpr option; step : rexpr option }
      (** Unified loop: [while] has [pre_cond], [do-while] has [post_cond],
          [for] has [pre_cond] and [step].  [break]/[continue] target the
          innermost loop ([continue] runs [step] first). *)
  | RSwitch of rexpr * rcase list
      (** Cases in source order with C fallthrough from each case body into
          the next.  At most one case has [is_default = true]. *)
  | RReturn of rexpr option
  | RBreak
  | RContinue

and rcase = { values : int list; is_default : bool; cbody : rstmt list }

type rfunc = {
  name : string;
  nparams : int;  (** Parameters occupy local slots [0 .. nparams-1]. *)
  locals : int array;  (** Size in words of each local slot. *)
  body : rstmt list;
  calls_setjmp : bool;
}

type rprogram = {
  funcs : rfunc list;
  data_words : int;
  data_init : (int * int) list;
}

val analyze : Mc_ast.program -> rprogram
(** @raise Sema_error on any semantic error.  Requires a [main] function
    with no parameters. *)
