lib/minic/mc_lexer.mli: Mc_ast
