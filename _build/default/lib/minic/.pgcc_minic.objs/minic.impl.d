lib/minic/minic.ml: List Mc_ast Mc_codegen Mc_lexer Mc_parser Mc_sema Printf Prog
