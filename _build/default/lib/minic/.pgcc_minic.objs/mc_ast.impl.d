lib/minic/mc_ast.ml: Format
