lib/minic/mc_interp.ml: Array Buffer Char Format Hashtbl Layout List Mc_ast Mc_parser Mc_sema Option String Syscall Word
