lib/minic/mc_codegen.ml: Array Easm Format Hashtbl Instr Layout List Mc_ast Mc_sema Option Prog Reg Syscall Word
