lib/minic/mc_parser.ml: Format List Mc_ast Mc_lexer
