lib/minic/mc_ast.mli: Format
