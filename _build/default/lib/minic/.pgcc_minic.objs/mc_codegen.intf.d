lib/minic/mc_codegen.mli: Mc_sema Prog
