lib/minic/mc_sema.ml: Array Buffer Char Format Hashtbl Layout List Mc_ast Option String Syscall Word
