lib/minic/mc_sema.mli: Mc_ast Syscall
