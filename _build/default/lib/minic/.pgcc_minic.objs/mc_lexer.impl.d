lib/minic/mc_lexer.ml: Buffer Char Format List Mc_ast Printf String
