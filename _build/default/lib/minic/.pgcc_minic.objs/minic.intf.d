lib/minic/minic.mli: Prog
