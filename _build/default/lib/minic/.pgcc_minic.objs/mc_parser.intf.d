lib/minic/mc_parser.mli: Mc_ast
