lib/minic/mc_interp.mli: Mc_sema
