exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Block builder: emit items and symbolic terminators against labels,
   then resolve labels to block indices. *)

module Builder = struct
  type label = int

  type term_sym =
    | SJump of label
    | SBranch of Instr.cond * Reg.t * label * label  (* taken, fallthrough *)
    | SCall of { ra : Reg.t; callee : string }
    | SCall_indirect of { ra : Reg.t; rb : Reg.t }
    | SJump_indirect of { rb : Reg.t; table : int option }
    | SRet of Reg.t
    | SNoret

  type closed = { items : Prog.item list; term : term_sym option }
  (* [term = None] means the block fell through to the next one. *)

  type t = {
    mutable closed : closed list;  (* reversed *)
    mutable open_items : Prog.item list option;  (* reversed; None = no open block *)
    mutable label_target : (int, int) Hashtbl.t;  (* label -> block index *)
    mutable next_label : int;
    mutable pending : label list;  (* labels to bind to the next block *)
    mutable tables : label array list;  (* reversed *)
  }

  let create () =
    {
      closed = [];
      open_items = Some [];
      label_target = Hashtbl.create 64;
      next_label = 0;
      pending = [];
      tables = [];
    }

  let new_label b =
    let l = b.next_label in
    b.next_label <- l + 1;
    l

  let new_table b labels =
    b.tables <- labels :: b.tables;
    List.length b.tables - 1

  let block_index b = List.length b.closed

  let ensure_open b =
    match b.open_items with
    | Some _ -> ()
    | None ->
      List.iter
        (fun l -> Hashtbl.replace b.label_target l (block_index b))
        b.pending;
      b.pending <- [];
      b.open_items <- Some []

  let emit b item =
    ensure_open b;
    match b.open_items with
    | Some items -> b.open_items <- Some (item :: items)
    | None -> assert false

  let close b term =
    ensure_open b;
    (match b.open_items with
    | Some items -> b.closed <- { items = List.rev items; term = Some term } :: b.closed
    | None -> assert false);
    b.open_items <- None

  (* Bind a label here.  If a block is open it falls through. *)
  let place b l =
    (match b.open_items with
    | Some items ->
      b.closed <- { items = List.rev items; term = None } :: b.closed;
      b.open_items <- None
    | None -> ());
    b.pending <- l :: b.pending;
    ensure_open b

  let finish b name =
    (match b.open_items with
    | Some items -> b.closed <- { items = List.rev items; term = None } :: b.closed
    | None -> ());
    List.iter (fun l -> Hashtbl.replace b.label_target l (block_index b)) b.pending;
    b.pending <- [];
    let blocks = Array.of_list (List.rev b.closed) in
    let n = Array.length blocks in
    let dest l =
      match Hashtbl.find_opt b.label_target l with
      | Some i when i < n -> i
      | Some _ ->
        (* A label bound past the last block (e.g. loop end at function end
           with nothing after it): point at the final block, which the
           finisher below guarantees is a terminated epilogue. *)
        n - 1
      | None -> fail "%s: unbound label %d" name l
    in
    let prog_blocks =
      Array.mapi
        (fun i c ->
          let term =
            match c.term with
            | None -> Prog.Fallthrough (min (i + 1) (n - 1))
            | Some (SJump l) -> Prog.Jump (dest l)
            | Some (SBranch (op, r, taken, fall)) ->
              Prog.Branch (op, r, dest taken, dest fall)
            | Some (SCall { ra; callee }) -> Prog.Call { ra; callee; return_to = i + 1 }
            | Some (SCall_indirect { ra; rb }) ->
              Prog.Call_indirect { ra; rb; return_to = i + 1 }
            | Some (SJump_indirect { rb; table }) -> Prog.Jump_indirect { rb; table }
            | Some (SRet rb) -> Prog.Return { rb }
            | Some SNoret -> Prog.No_return
          in
          { Prog.Block.items = c.items; term })
        blocks
    in
    let tables = Array.of_list (List.rev_map (Array.map dest) b.tables) in
    { Prog.Func.name; blocks = prog_blocks; tables }
end

(* ------------------------------------------------------------------ *)
(* Frame layout (word offsets from sp):
     0         saved ra
     1 .. 11   call-spill area for the 11 register slots
     12 .. 27  extended evaluation slots (depths 11..26)
     28 ..     named locals                                            *)

let temps = [| 1; 2; 3; 4; 5; 6; 7; 8; 22; 23; 24 |]
let num_temps = Array.length temps
let max_depth = num_temps + 16
let scratch1 : Reg.t = 27
let scratch2 : Reg.t = 28
let spill_off j = 4 * (1 + j)
let ext_off d = 4 * (12 + (d - num_temps))
let locals_base_word = 28

let switch_table_min_cases = 4
let switch_table_max_range = 512

type fstate = {
  b : Builder.t;
  local_off : int array;  (* byte offset from sp of each local slot *)
  frame_bytes : int;
  epilogue : Builder.label;
  mutable break_to : Builder.label list;
  mutable continue_to : Builder.label list;
}

let emit_i st i = Builder.emit st.b (Prog.Instr i)

(* Load slot [d] into a register: the slot's own register, or [scratch]. *)
let slot_to_reg st d ~scratch =
  if d < num_temps then temps.(d)
  else begin
    emit_i st (Instr.Mem { op = Instr.Ldw; ra = scratch; rb = Reg.sp; disp = ext_off d });
    scratch
  end

(* Store register [src] into slot [d] (no-op move if it is the slot's own
   register). *)
let reg_to_slot st d ~src =
  if d < num_temps then begin
    if not (Reg.equal src temps.(d)) then
      emit_i st (Instr.Opr { op = Instr.Or; ra = src; rb = Instr.Reg Reg.zero; rc = temps.(d) })
  end
  else emit_i st (Instr.Mem { op = Instr.Stw; ra = src; rb = Reg.sp; disp = ext_off d })

(* The register an operation should compute into so that the result lands in
   slot [d]: the slot register, or a scratch that [flush_slot] then spills. *)
let slot_dst d ~scratch = if d < num_temps then temps.(d) else scratch

let flush_slot st d ~src =
  if d >= num_temps then
    emit_i st (Instr.Mem { op = Instr.Stw; ra = src; rb = Reg.sp; disp = ext_off d })

(* Materialise a 32-bit constant into a register. *)
let load_const st ~dst v =
  let v = Word.of_int v in
  let hi, lo = Easm.split_const v in
  if hi = 0 then emit_i st (Instr.Lda { ra = dst; rb = Reg.zero; disp = lo })
  else begin
    emit_i st (Instr.Ldah { ra = dst; rb = Reg.zero; disp = hi });
    if lo <> 0 then emit_i st (Instr.Lda { ra = dst; rb = dst; disp = lo })
  end

let global_addr off = Layout.data_base + (4 * off)

let check_depth d = if d >= max_depth then fail "expression too deep (max %d slots)" max_depth

(* Save/restore the register slots 0..n-1 around a call. *)
let save_temps st n =
  for j = 0 to min n num_temps - 1 do
    emit_i st (Instr.Mem { op = Instr.Stw; ra = temps.(j); rb = Reg.sp; disp = spill_off j })
  done

let restore_temps st n =
  for j = 0 to min n num_temps - 1 do
    emit_i st (Instr.Mem { op = Instr.Ldw; ra = temps.(j); rb = Reg.sp; disp = spill_off j })
  done

let arg_reg i = List.nth Reg.args i

let rec eval st (e : Mc_sema.rexpr) d =
  check_depth d;
  match e with
  | Mc_sema.RInt v ->
    let dst = slot_dst d ~scratch:scratch1 in
    load_const st ~dst v;
    flush_slot st d ~src:dst
  | Mc_sema.RLocal slot ->
    let dst = slot_dst d ~scratch:scratch1 in
    emit_i st (Instr.Mem { op = Instr.Ldw; ra = dst; rb = Reg.sp; disp = st.local_off.(slot) });
    flush_slot st d ~src:dst
  | Mc_sema.RLocal_addr slot ->
    let dst = slot_dst d ~scratch:scratch1 in
    emit_i st (Instr.Lda { ra = dst; rb = Reg.sp; disp = st.local_off.(slot) });
    flush_slot st d ~src:dst
  | Mc_sema.RGlobal off ->
    let dst = slot_dst d ~scratch:scratch1 in
    let hi, lo = Easm.split_addr (global_addr off) in
    emit_i st (Instr.Ldah { ra = scratch2; rb = Reg.zero; disp = hi });
    emit_i st (Instr.Mem { op = Instr.Ldw; ra = dst; rb = scratch2; disp = lo });
    flush_slot st d ~src:dst
  | Mc_sema.RGlobal_addr off ->
    let dst = slot_dst d ~scratch:scratch1 in
    load_const st ~dst (global_addr off);
    flush_slot st d ~src:dst
  | Mc_sema.RFunc_addr f ->
    let dst = slot_dst d ~scratch:scratch1 in
    Builder.emit st.b (Prog.Load_addr (dst, Prog.Func_addr f));
    flush_slot st d ~src:dst
  | Mc_sema.RIndex (base, idx) ->
    eval st base d;
    eval st idx (d + 1);
    let rb = slot_to_reg st d ~scratch:scratch1 in
    let ri = slot_to_reg st (d + 1) ~scratch:scratch2 in
    emit_i st (Instr.Opr { op = Instr.Sll; ra = ri; rb = Instr.Imm 2; rc = scratch2 });
    emit_i st (Instr.Opr { op = Instr.Add; ra = rb; rb = Instr.Reg scratch2; rc = scratch2 });
    let dst = slot_dst d ~scratch:scratch1 in
    emit_i st (Instr.Mem { op = Instr.Ldw; ra = dst; rb = scratch2; disp = 0 });
    flush_slot st d ~src:dst
  | Mc_sema.RUnop (op, e1) ->
    eval st e1 d;
    let r = slot_to_reg st d ~scratch:scratch1 in
    let dst = slot_dst d ~scratch:scratch1 in
    (match op with
    | Mc_ast.Neg ->
      emit_i st (Instr.Opr { op = Instr.Sub; ra = Reg.zero; rb = Instr.Reg r; rc = dst })
    | Mc_ast.Not ->
      emit_i st (Instr.Opr { op = Instr.Cmpeq; ra = r; rb = Instr.Imm 0; rc = dst })
    | Mc_ast.Bnot ->
      load_const st ~dst:scratch2 (-1);
      emit_i st (Instr.Opr { op = Instr.Xor; ra = r; rb = Instr.Reg scratch2; rc = dst }));
    flush_slot st d ~src:dst
  | Mc_sema.RBinop (Mc_ast.Land, e1, e2) -> eval_short_circuit st ~is_and:true e1 e2 d
  | Mc_sema.RBinop (Mc_ast.Lor, e1, e2) -> eval_short_circuit st ~is_and:false e1 e2 d
  | Mc_sema.RBinop (op, e1, e2) ->
    eval st e1 d;
    eval st e2 (d + 1);
    let r1 = slot_to_reg st d ~scratch:scratch1 in
    let r2 = slot_to_reg st (d + 1) ~scratch:scratch2 in
    let dst = slot_dst d ~scratch:scratch1 in
    let simple alu =
      emit_i st (Instr.Opr { op = alu; ra = r1; rb = Instr.Reg r2; rc = dst })
    in
    let swapped alu =
      emit_i st (Instr.Opr { op = alu; ra = r2; rb = Instr.Reg r1; rc = dst })
    in
    (match op with
    | Mc_ast.Add -> simple Instr.Add
    | Mc_ast.Sub -> simple Instr.Sub
    | Mc_ast.Mul -> simple Instr.Mul
    | Mc_ast.Div -> simple Instr.Div
    | Mc_ast.Rem -> simple Instr.Rem
    | Mc_ast.And -> simple Instr.And
    | Mc_ast.Or -> simple Instr.Or
    | Mc_ast.Xor -> simple Instr.Xor
    | Mc_ast.Shl -> simple Instr.Sll
    | Mc_ast.Shr -> simple Instr.Sra
    | Mc_ast.Lshr -> simple Instr.Srl
    | Mc_ast.Eq -> simple Instr.Cmpeq
    | Mc_ast.Ne -> simple Instr.Cmpne
    | Mc_ast.Lt -> simple Instr.Cmplt
    | Mc_ast.Le -> simple Instr.Cmple
    | Mc_ast.Gt -> swapped Instr.Cmplt
    | Mc_ast.Ge -> swapped Instr.Cmple
    | Mc_ast.Land | Mc_ast.Lor -> assert false);
    flush_slot st d ~src:dst
  | Mc_sema.RAssign_local (slot, rhs) ->
    eval st rhs d;
    let r = slot_to_reg st d ~scratch:scratch1 in
    emit_i st (Instr.Mem { op = Instr.Stw; ra = r; rb = Reg.sp; disp = st.local_off.(slot) })
  | Mc_sema.RAssign_global (off, rhs) ->
    eval st rhs d;
    let r = slot_to_reg st d ~scratch:scratch1 in
    let hi, lo = Easm.split_addr (global_addr off) in
    emit_i st (Instr.Ldah { ra = scratch2; rb = Reg.zero; disp = hi });
    emit_i st (Instr.Mem { op = Instr.Stw; ra = r; rb = scratch2; disp = lo })
  | Mc_sema.RAssign_index (base, idx, rhs) ->
    eval st base d;
    eval st idx (d + 1);
    eval st rhs (d + 2);
    let rb = slot_to_reg st d ~scratch:scratch1 in
    let ri = slot_to_reg st (d + 1) ~scratch:scratch2 in
    emit_i st (Instr.Opr { op = Instr.Sll; ra = ri; rb = Instr.Imm 2; rc = scratch2 });
    emit_i st (Instr.Opr { op = Instr.Add; ra = rb; rb = Instr.Reg scratch2; rc = scratch2 });
    let rv = slot_to_reg st (d + 2) ~scratch:scratch1 in
    emit_i st (Instr.Mem { op = Instr.Stw; ra = rv; rb = scratch2; disp = 0 });
    (* The value of the assignment is the stored value, left in slot d. *)
    reg_to_slot st d ~src:rv
  | Mc_sema.RCall (f, args) ->
    eval_args st args d;
    save_temps st d;
    Builder.close st.b (Builder.SCall { ra = Reg.ra; callee = f });
    restore_temps st d;
    reg_to_slot st d ~src:Reg.rv
  | Mc_sema.RCall_indirect (target, args) ->
    eval st target d;
    eval_args st args (d + 1);
    let rt = slot_to_reg st d ~scratch:scratch1 in
    if not (Reg.equal rt scratch1) then
      emit_i st
        (Instr.Opr { op = Instr.Or; ra = rt; rb = Instr.Reg Reg.zero; rc = scratch1 });
    save_temps st d;
    Builder.close st.b (Builder.SCall_indirect { ra = Reg.ra; rb = scratch1 });
    restore_temps st d;
    reg_to_slot st d ~src:Reg.rv
  | Mc_sema.RBuiltin (Mc_sema.Bsys sc, args) ->
    eval_args st args d;
    emit_i st (Instr.Sys (Syscall.to_code sc));
    (match sc with
    | Syscall.Exit | Syscall.Longjmp ->
      Builder.close st.b Builder.SNoret;
      let dst = slot_dst d ~scratch:scratch1 in
      load_const st ~dst 0;
      flush_slot st d ~src:dst
    | Syscall.Getc | Syscall.Putc | Syscall.Putint | Syscall.Sbrk | Syscall.Setjmp
    | Syscall.Getw | Syscall.Putw ->
      reg_to_slot st d ~src:Reg.rv)
  | Mc_sema.RBuiltin (Mc_sema.Bloadb, args) -> (
    match args with
    | [ a ] ->
      eval st a d;
      let r = slot_to_reg st d ~scratch:scratch1 in
      let dst = slot_dst d ~scratch:scratch1 in
      emit_i st (Instr.Mem { op = Instr.Ldb; ra = dst; rb = r; disp = 0 });
      flush_slot st d ~src:dst
    | _ -> fail "loadb expects one argument")
  | Mc_sema.RBuiltin (Mc_sema.Bstoreb, args) -> (
    match args with
    | [ a; v ] ->
      eval st a d;
      eval st v (d + 1);
      let ra = slot_to_reg st d ~scratch:scratch1 in
      let rv = slot_to_reg st (d + 1) ~scratch:scratch2 in
      emit_i st (Instr.Mem { op = Instr.Stb; ra = rv; rb = ra; disp = 0 });
      reg_to_slot st d ~src:rv
    | _ -> fail "storeb expects two arguments")

(* Evaluate call arguments into slots d, d+1, ... then move them into the
   argument registers. *)
and eval_args st args d =
  List.iteri (fun i a -> eval st a (d + i)) args;
  List.iteri
    (fun i _ ->
      let r = slot_to_reg st (d + i) ~scratch:scratch1 in
      let dst = arg_reg i in
      emit_i st (Instr.Opr { op = Instr.Or; ra = r; rb = Instr.Reg Reg.zero; rc = dst }))
    args

and eval_short_circuit st ~is_and e1 e2 d =
  let l_shortcut = Builder.new_label st.b in
  let l_end = Builder.new_label st.b in
  let l_cont = Builder.new_label st.b in
  eval st e1 d;
  let r1 = slot_to_reg st d ~scratch:scratch1 in
  (* For &&: a zero first operand short-circuits to 0.
     For ||: a non-zero first operand short-circuits to 1. *)
  let cond = if is_and then Instr.Eq else Instr.Ne in
  Builder.close st.b (Builder.SBranch (cond, r1, l_shortcut, l_cont));
  Builder.place st.b l_cont;
  eval st e2 d;
  let r2 = slot_to_reg st d ~scratch:scratch1 in
  let dst = slot_dst d ~scratch:scratch1 in
  emit_i st (Instr.Opr { op = Instr.Cmpne; ra = r2; rb = Instr.Imm 0; rc = dst });
  flush_slot st d ~src:dst;
  Builder.close st.b (Builder.SJump l_end);
  Builder.place st.b l_shortcut;
  let dst = slot_dst d ~scratch:scratch1 in
  load_const st ~dst (if is_and then 0 else 1);
  flush_slot st d ~src:dst;
  Builder.place st.b l_end

let rec gen_stmt st (s : Mc_sema.rstmt) =
  match s with
  | Mc_sema.RExpr e -> eval st e 0
  | Mc_sema.RIf (c, then_, else_) ->
    let l_else = Builder.new_label st.b in
    let l_end = Builder.new_label st.b in
    let l_then = Builder.new_label st.b in
    eval st c 0;
    let r = slot_to_reg st 0 ~scratch:scratch1 in
    Builder.close st.b (Builder.SBranch (Instr.Eq, r, l_else, l_then));
    Builder.place st.b l_then;
    List.iter (gen_stmt st) then_;
    Builder.close st.b (Builder.SJump l_end);
    Builder.place st.b l_else;
    List.iter (gen_stmt st) else_;
    Builder.place st.b l_end
  | Mc_sema.RLoop { pre_cond; body; post_cond; step } ->
    let l_head = Builder.new_label st.b in
    let l_step = Builder.new_label st.b in
    let l_end = Builder.new_label st.b in
    let l_body = Builder.new_label st.b in
    Builder.place st.b l_head;
    (match pre_cond with
    | None -> ()
    | Some c ->
      eval st c 0;
      let r = slot_to_reg st 0 ~scratch:scratch1 in
      Builder.close st.b (Builder.SBranch (Instr.Eq, r, l_end, l_body));
      Builder.place st.b l_body);
    st.break_to <- l_end :: st.break_to;
    st.continue_to <- l_step :: st.continue_to;
    List.iter (gen_stmt st) body;
    st.break_to <- List.tl st.break_to;
    st.continue_to <- List.tl st.continue_to;
    Builder.place st.b l_step;
    (match step with None -> () | Some e -> eval st e 0);
    (match post_cond with
    | None -> Builder.close st.b (Builder.SJump l_head)
    | Some c ->
      eval st c 0;
      let r = slot_to_reg st 0 ~scratch:scratch1 in
      Builder.close st.b (Builder.SBranch (Instr.Ne, r, l_head, l_end)));
    Builder.place st.b l_end
  | Mc_sema.RSwitch (scrut, cases) -> gen_switch st scrut cases
  | Mc_sema.RReturn e ->
    (match e with
    | Some e ->
      eval st e 0;
      let r = slot_to_reg st 0 ~scratch:scratch1 in
      if not (Reg.equal r Reg.rv) then
        emit_i st (Instr.Opr { op = Instr.Or; ra = r; rb = Instr.Reg Reg.zero; rc = Reg.rv })
    | None -> load_const st ~dst:Reg.rv 0);
    Builder.close st.b (Builder.SJump st.epilogue)
  | Mc_sema.RBreak -> (
    match st.break_to with
    | l :: _ -> Builder.close st.b (Builder.SJump l)
    | [] -> fail "break outside loop")
  | Mc_sema.RContinue -> (
    match st.continue_to with
    | l :: _ -> Builder.close st.b (Builder.SJump l)
    | [] -> fail "continue outside loop")

and gen_switch st scrut cases =
  let l_end = Builder.new_label st.b in
  let case_labels = List.map (fun _ -> Builder.new_label st.b) cases in
  let default_label =
    let rec find cs ls =
      match (cs, ls) with
      | ({ Mc_sema.is_default = true; _ } : Mc_sema.rcase) :: _, l :: _ -> Some l
      | _ :: cs, _ :: ls -> find cs ls
      | _, _ -> None
    in
    find cases case_labels
  in
  let l_default = Option.value default_label ~default:l_end in
  let values = List.concat_map (fun (c : Mc_sema.rcase) -> c.values) cases in
  eval st scrut 0;
  let r = slot_to_reg st 0 ~scratch:scratch1 in
  (* Dispatch. *)
  (match values with
  | [] -> Builder.close st.b (Builder.SJump l_default)
  | _ :: _ ->
    let vmin = List.fold_left min (List.hd values) values in
    let vmax = List.fold_left max (List.hd values) values in
    let range = vmax - vmin + 1 in
    let dense =
      List.length values >= switch_table_min_cases
      && range <= switch_table_max_range
      && range <= 3 * List.length values
    in
    if dense then begin
      (* Jump table over [vmin, vmax]; missing values map to default. *)
      let by_value = Hashtbl.create 16 in
      List.iter2
        (fun (c : Mc_sema.rcase) l -> List.iter (fun v -> Hashtbl.replace by_value v l) c.values)
        cases case_labels;
      let entries =
        Array.init range (fun k ->
            Option.value (Hashtbl.find_opt by_value (vmin + k)) ~default:l_default)
      in
      let tid = Builder.new_table st.b entries in
      let l_in_range = Builder.new_label st.b in
      (* index = scrut - vmin; bound check; indirect jump. *)
      load_const st ~dst:scratch2 vmin;
      emit_i st
        (Instr.Opr { op = Instr.Sub; ra = r; rb = Instr.Reg scratch2; rc = scratch2 });
      if range <= 255 then
        emit_i st
          (Instr.Opr { op = Instr.Cmpult; ra = scratch2; rb = Instr.Imm range; rc = scratch1 })
      else begin
        load_const st ~dst:scratch1 range;
        emit_i st
          (Instr.Opr
             { op = Instr.Cmpult; ra = scratch2; rb = Instr.Reg scratch1; rc = scratch1 })
      end;
      Builder.close st.b (Builder.SBranch (Instr.Eq, scratch1, l_default, l_in_range));
      Builder.place st.b l_in_range;
      Builder.emit st.b (Prog.Load_addr (scratch1, Prog.Table_addr tid));
      emit_i st (Instr.Opr { op = Instr.Sll; ra = scratch2; rb = Instr.Imm 2; rc = scratch2 });
      emit_i st
        (Instr.Opr { op = Instr.Add; ra = scratch1; rb = Instr.Reg scratch2; rc = scratch1 });
      emit_i st (Instr.Mem { op = Instr.Ldw; ra = scratch1; rb = scratch1; disp = 0 });
      Builder.close st.b (Builder.SJump_indirect { rb = scratch1; table = Some tid })
    end
    else begin
      (* Compare-and-branch chain. *)
      List.iter2
        (fun (c : Mc_sema.rcase) l ->
          List.iter
            (fun v ->
              let l_next = Builder.new_label st.b in
              if v >= 0 && v <= 255 then
                emit_i st
                  (Instr.Opr { op = Instr.Cmpeq; ra = r; rb = Instr.Imm v; rc = scratch1 })
              else begin
                load_const st ~dst:scratch2 v;
                emit_i st
                  (Instr.Opr
                     { op = Instr.Cmpeq; ra = r; rb = Instr.Reg scratch2; rc = scratch1 })
              end;
              Builder.close st.b (Builder.SBranch (Instr.Ne, scratch1, l, l_next));
              Builder.place st.b l_next)
            c.values)
        cases case_labels;
      Builder.close st.b (Builder.SJump l_default)
    end);
  (* Case bodies in order, with C fallthrough between them. *)
  st.break_to <- l_end :: st.break_to;
  List.iter2
    (fun (c : Mc_sema.rcase) l ->
      Builder.place st.b l;
      List.iter (gen_stmt st) c.cbody)
    cases case_labels;
  st.break_to <- List.tl st.break_to;
  Builder.place st.b l_end

let gen_func (f : Mc_sema.rfunc) : Prog.Func.t =
  let b = Builder.create () in
  let nlocals = Array.length f.locals in
  let local_off = Array.make nlocals 0 in
  let word = ref locals_base_word in
  Array.iteri
    (fun i size ->
      local_off.(i) <- 4 * !word;
      word := !word + size)
    f.locals;
  let frame_bytes = 4 * !word in
  if frame_bytes >= 32768 then fail "%s: frame too large (%d bytes)" f.name frame_bytes;
  let epilogue = Builder.new_label b in
  let st = { b; local_off; frame_bytes; epilogue; break_to = []; continue_to = [] } in
  (* Prologue. *)
  emit_i st (Instr.Lda { ra = Reg.sp; rb = Reg.sp; disp = -frame_bytes });
  emit_i st (Instr.Mem { op = Instr.Stw; ra = Reg.ra; rb = Reg.sp; disp = 0 });
  List.iteri
    (fun i r ->
      if i < f.nparams then
        emit_i st (Instr.Mem { op = Instr.Stw; ra = r; rb = Reg.sp; disp = local_off.(i) }))
    Reg.args;
  (* Body. *)
  List.iter (gen_stmt st) f.body;
  (* Implicit [return 0] for functions that fall off the end. *)
  load_const st ~dst:Reg.rv 0;
  Builder.place st.b epilogue;
  emit_i st (Instr.Mem { op = Instr.Ldw; ra = Reg.ra; rb = Reg.sp; disp = 0 });
  emit_i st (Instr.Lda { ra = Reg.sp; rb = Reg.sp; disp = frame_bytes });
  Builder.close st.b (Builder.SRet Reg.ra);
  Builder.finish b f.name

let start_func () : Prog.Func.t =
  let b = Builder.create () in
  Builder.close b (Builder.SCall { ra = Reg.ra; callee = "main" });
  Builder.emit b
    (Prog.Instr (Instr.Opr { op = Instr.Or; ra = Reg.rv; rb = Instr.Reg Reg.zero; rc = 16 }));
  Builder.emit b (Prog.Instr (Instr.Sys (Syscall.to_code Syscall.Exit)));
  Builder.close b Builder.SNoret;
  Builder.finish b "_start"

let generate (rp : Mc_sema.rprogram) : Prog.t =
  let funcs = start_func () :: List.map gen_func rp.funcs in
  {
    Prog.funcs;
    entry = "_start";
    data_words = rp.data_words;
    data_init = List.map (fun (o, v) -> (o, Word.of_int v)) rp.data_init;
  }
