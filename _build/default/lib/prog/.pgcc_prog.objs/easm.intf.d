lib/prog/easm.pp.mli: Instr Reg Word
