lib/prog/prog.pp.ml: Array Format Fun Instr Int List Printf Reg Result Seq String Syscall Word
