lib/prog/layout.pp.ml: Array Easm Hashtbl Instr List Printf Prog Reg Word
