lib/prog/layout.pp.mli: Hashtbl Prog Word
