lib/prog/prog.pp.mli: Format Instr Reg Syscall Word
