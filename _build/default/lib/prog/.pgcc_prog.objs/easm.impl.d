lib/prog/easm.pp.ml: Array Instr List Option Printf Reg Word
