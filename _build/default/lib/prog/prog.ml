type sym = Func_addr of string | Table_addr of int
type item = Instr of Instr.t | Load_addr of Reg.t * sym
type dest = int

type term =
  | Fallthrough of dest
  | Jump of dest
  | Branch of Instr.cond * Reg.t * dest * dest
  | Call of { ra : Reg.t; callee : string; return_to : dest }
  | Call_indirect of { ra : Reg.t; rb : Reg.t; return_to : dest }
  | Jump_indirect of { rb : Reg.t; table : int option }
  | Return of { rb : Reg.t }
  | No_return

let item_size = function Instr _ -> 1 | Load_addr _ -> 2

let term_size ~next = function
  | Fallthrough d -> if next = Some d then 0 else 1
  | Jump _ -> 1
  | Branch (_, _, _, fall) -> if next = Some fall then 1 else 2
  | Call _ -> 1
  | Call_indirect _ -> 1
  | Jump_indirect _ -> 1
  | Return _ -> 1
  | No_return -> 0

module Block = struct
  type t = { items : item list; term : term }

  let size ~next b =
    List.fold_left (fun acc it -> acc + item_size it) 0 b.items
    + term_size ~next b.term

  let instr_count b =
    let next =
      match b.term with
      | Fallthrough d | Branch (_, _, _, d) -> Some d
      | Jump _ | Call _ | Call_indirect _ | Jump_indirect _ | Return _ | No_return ->
        None
    in
    size ~next b
end

module Func = struct
  type t = { name : string; blocks : Block.t array; tables : dest array array }

  let table_words f = Array.fold_left (fun acc t -> acc + Array.length t) 0 f.tables
end

type t = {
  funcs : Func.t list;
  entry : string;
  data_words : int;
  data_init : (int * Word.t) list;
}

let find_func t name = List.find_opt (fun (f : Func.t) -> f.name = name) t.funcs
let func_names t = List.map (fun (f : Func.t) -> f.name) t.funcs

let func_instr_count (f : Func.t) =
  let n = Array.length f.blocks in
  let total = ref 0 in
  Array.iteri
    (fun i b ->
      let next = if i + 1 < n then Some (i + 1) else None in
      total := !total + Block.size ~next b)
    f.blocks;
  !total

let instr_count t = List.fold_left (fun acc f -> acc + func_instr_count f) 0 t.funcs

let text_words t =
  List.fold_left (fun acc f -> acc + func_instr_count f + Func.table_words f) 0 t.funcs

let calls_of_block (b : Block.t) =
  match b.term with
  | Call { callee; _ } -> [ callee ]
  | Fallthrough _ | Jump _ | Branch _ | Call_indirect _ | Jump_indirect _ | Return _
  | No_return ->
    []

let block_calls_syscall (b : Block.t) sc =
  let code = Syscall.to_code sc in
  List.exists
    (function Instr (Instr.Sys f) -> f = code | Instr _ | Load_addr _ -> false)
    b.Block.items

let successors (f : Func.t) i =
  let b = f.blocks.(i) in
  match b.term with
  | Fallthrough d | Jump d -> [ d ]
  | Branch (_, _, taken, fall) -> if taken = fall then [ taken ] else [ taken; fall ]
  | Call { return_to; _ } | Call_indirect { return_to; _ } -> [ return_to ]
  | Jump_indirect { table = Some tid; _ } ->
    List.sort_uniq Int.compare (Array.to_list f.tables.(tid))
  | Jump_indirect { table = None; _ } -> List.init (Array.length f.blocks) Fun.id
  | Return _ | No_return -> []

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_func (f : Func.t) =
    let n = Array.length f.blocks in
    let check_dest what d =
      if d >= 0 && d < n then Ok ()
      else err "%s: %s destination %d out of range [0,%d)" f.name what d n
    in
    let check_block i (b : Block.t) =
      let* () =
        List.fold_left
          (fun acc it ->
            let* () = acc in
            match it with
            | Instr ins when Instr.is_control_transfer ins ->
              err "%s/block %d: control transfer %s in block body" f.name i
                (Instr.to_string ins)
            | Instr Instr.Sentinel -> err "%s/block %d: sentinel in block body" f.name i
            | Instr _ -> Ok ()
            | Load_addr (r, Table_addr tid) ->
              if not (Reg.is_valid r) then err "%s/block %d: bad register" f.name i
              else if tid < 0 || tid >= Array.length f.tables then
                err "%s/block %d: unknown jump table %d" f.name i tid
              else Ok ()
            | Load_addr (r, Func_addr g) ->
              if not (Reg.is_valid r) then err "%s/block %d: bad register" f.name i
              else if find_func t g = None then
                err "%s/block %d: address of undefined function %s" f.name i g
              else Ok ())
          (Ok ()) b.items
      in
      match b.term with
      | Fallthrough d | Jump d -> check_dest (Printf.sprintf "block %d" i) d
      | Branch (_, _, d1, d2) ->
        let* () = check_dest (Printf.sprintf "block %d taken" i) d1 in
        check_dest (Printf.sprintf "block %d fallthrough" i) d2
      | Call { callee; return_to; _ } ->
        let* () = check_dest (Printf.sprintf "block %d return" i) return_to in
        let* () =
          if return_to <> i + 1 then
            err "%s/block %d: call must return to the next block (got .%d)" f.name i
              return_to
          else Ok ()
        in
        if find_func t callee = None then
          err "%s/block %d: call to undefined function %s" f.name i callee
        else Ok ()
      | Call_indirect { return_to; _ } ->
        let* () = check_dest (Printf.sprintf "block %d return" i) return_to in
        if return_to <> i + 1 then
          err "%s/block %d: call must return to the next block (got .%d)" f.name i
            return_to
        else Ok ()
      | Jump_indirect { table = Some tid; _ } ->
        if tid < 0 || tid >= Array.length f.tables then
          err "%s/block %d: unknown jump table %d" f.name i tid
        else Ok ()
      | Jump_indirect { table = None; _ } | Return _ | No_return -> Ok ()
    in
    let* () =
      if n = 0 then err "%s: function has no blocks" f.name else Ok ()
    in
    let* () =
      Array.to_seqi f.blocks
      |> Seq.fold_left
           (fun acc (i, b) ->
             let* () = acc in
             check_block i b)
           (Ok ())
    in
    Array.to_list f.tables
    |> List.concat_map Array.to_list
    |> List.fold_left
         (fun acc d ->
           let* () = acc in
           check_dest "jump table" d)
         (Ok ())
  in
  let* () =
    let names = func_names t in
    let sorted = List.sort String.compare names in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some name -> err "duplicate function %s" name
    | None -> Ok ()
  in
  let* () =
    if find_func t t.entry = None then err "entry function %s undefined" t.entry
    else Ok ()
  in
  List.fold_left
    (fun acc f ->
      let* () = acc in
      check_func f)
    (Ok ()) t.funcs

let pp_term ppf = function
  | Fallthrough d -> Format.fprintf ppf "fallthrough .%d" d
  | Jump d -> Format.fprintf ppf "jump .%d" d
  | Branch (c, r, d1, d2) ->
    Format.fprintf ppf "branch(%s) %a ? .%d : .%d"
      (match c with
      | Instr.Eq -> "eq"
      | Instr.Ne -> "ne"
      | Instr.Lt -> "lt"
      | Instr.Le -> "le"
      | Instr.Gt -> "gt"
      | Instr.Ge -> "ge")
      Reg.pp r d1 d2
  | Call { ra; callee; return_to } ->
    Format.fprintf ppf "call %s (ra=%a) -> .%d" callee Reg.pp ra return_to
  | Call_indirect { ra; rb; return_to } ->
    Format.fprintf ppf "call* (%a) (ra=%a) -> .%d" Reg.pp rb Reg.pp ra return_to
  | Jump_indirect { rb; table } ->
    Format.fprintf ppf "jump* (%a)%s" Reg.pp rb
      (match table with Some tid -> Printf.sprintf " table %d" tid | None -> "")
  | Return { rb } -> Format.fprintf ppf "return (%a)" Reg.pp rb
  | No_return -> Format.fprintf ppf "no-return"

let pp_item ppf = function
  | Instr i -> Instr.pp ppf i
  | Load_addr (r, Func_addr f) -> Format.fprintf ppf "la %a, &%s" Reg.pp r f
  | Load_addr (r, Table_addr tid) -> Format.fprintf ppf "la %a, &table%d" Reg.pp r tid

let pp_func ppf (f : Func.t) =
  Format.fprintf ppf "@[<v>func %s:@," f.name;
  Array.iteri
    (fun i (b : Block.t) ->
      Format.fprintf ppf "  .%d:@," i;
      List.iter (fun it -> Format.fprintf ppf "    %a@," pp_item it) b.items;
      Format.fprintf ppf "    %a@," pp_term b.term)
    f.blocks;
  Array.iteri
    (fun tid tbl ->
      Format.fprintf ppf "  table %d: %s@," tid
        (String.concat ", "
           (Array.to_list (Array.map (fun d -> Printf.sprintf ".%d" d) tbl))))
    f.tables;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>program (entry %s, %d data words):@," t.entry t.data_words;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) t.funcs;
  Format.fprintf ppf "@]"
