(** Canonical layout: pin every block of a {!Prog.t} to an address and emit
    the executable image that the VM runs and the profiler attributes counts
    against.

    Memory map (byte addresses):
    - text segment at {!text_base}, functions in program order, each
      function's jump tables right after its code;
    - data segment at {!data_base}; the heap starts immediately after the
      initialised data and grows via [sbrk];
    - the stack starts at {!stack_top} and grows down. *)

val text_base : int
val data_base : int
val stack_top : int
val mem_bytes : int
(** Total simulated memory size. *)

type image = {
  text_base : int;
  text : int array;  (** Raw words: instructions and jump-table entries. *)
  owners : (string * int) option array;
      (** Per text word: the (function, block) that owns it; [None] for
          jump-table data words. *)
  entry_addr : int;
  func_entry : (string, int) Hashtbl.t;
  block_addr : (string * int, int) Hashtbl.t;
      (** Address of the first word of each (function, block). *)
  table_addr : (string * int, int) Hashtbl.t;
      (** Address of each (function, table id). *)
  data_base : int;
  data_words : int;
  data_init : (int * Word.t) list;
}

val emit : Prog.t -> image
(** Emit under the canonical layout (blocks in index order).
    @raise Failure on unbound labels or displacement overflow;
    run {!Prog.validate} first for friendlier errors. *)

val text_words : image -> int
(** Code size of the image in words (the paper's size metric counts
    everything in the text segment, including jump tables). *)

val block_of_addr : image -> int -> (string * int) option
(** Owner of the word at a text address. *)
