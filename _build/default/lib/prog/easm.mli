(** A tiny two-pass emission assembler.

    Both the canonical layout ({!Layout}) and squash's rewritten-image
    builder emit machine words through this module: raw words, concrete
    instructions, and label-relative items (PC-relative branches, absolute
    address words, and [lda]/[ldah] address-materialisation pairs) whose
    displacements are patched once all labels are bound.

    Every emitted word carries an optional {e owner} tag — [(function name,
    block index)] — used to map execution profiles back to basic blocks. *)

type t
type label

val create : base:int -> t
(** [base] is the byte address of the first emitted word; it must be
    word-aligned. *)

val fresh_label : t -> string -> label
(** Create an unbound label; the string is only for error messages. *)

val label_at : t -> string -> int -> label
(** A label pre-bound to an absolute byte address (e.g. the decompressor's
    entry points, which live outside the emitted stream). *)

val bind : t -> label -> unit
(** Bind a label to the current position.  @raise Invalid_argument if the
    label is already bound. *)

val here : t -> int
(** Byte address of the next word to be emitted. *)

val set_owner : t -> (string * int) option -> unit
(** Owner stamped on subsequently emitted words. *)

val word : t -> Word.t -> unit
val instr : t -> Instr.t -> unit

val branch : t -> [ `Br | `Bsr | `Bsrx ] -> Reg.t -> label -> unit
(** PC-relative branch to a label. *)

val cbranch : t -> Instr.cond -> Reg.t -> label -> unit
val addr_word : t -> label -> unit
(** Emit the label's absolute address as a data word (jump-table entry). *)

val load_addr : t -> Reg.t -> label -> unit
(** Emit the 2-instruction [ldah]/[lda] pair materialising the label's
    absolute address. *)

type image = {
  base : int;
  words : int array;
  owners : (string * int) option array;
  labels : (string * int) list;  (** Bound labels, for debugging. *)
}

val finish : t -> image
(** Resolve all fixups.
    @raise Failure if a label was never bound or a displacement does not
    fit its field. *)

val resolve : t -> label -> int
(** Address of a bound label; only meaningful after {!finish} for labels
    bound with {!bind}.  @raise Failure if unbound. *)

val split_addr : int -> int * int
(** [split_addr a = (hi, lo)] such that [(hi lsl 16) + sext16 lo = a], for
    the [ldah]/[lda] pair.  Only valid for addresses below 2 GiB (all code
    and data addresses are). *)

val split_const : int -> int * int
(** Like {!split_addr} but for arbitrary 32-bit constants: the identity
    only holds modulo 2{^32}, and both halves fit their signed 16-bit
    fields. *)
