type label = { name : string; mutable addr : int option }

type fixup =
  | Fix_branch of [ `Br | `Bsr | `Bsrx ] * Reg.t * label
  | Fix_cbranch of Instr.cond * Reg.t * label
  | Fix_addr_word of label
  | Fix_load_hi of Reg.t * label  (* the ldah of a load_addr pair *)
  | Fix_load_lo of Reg.t * label  (* the lda of a load_addr pair *)

type t = {
  base : int;
  mutable words : int array;
  mutable owners : (string * int) option array;
  mutable len : int;  (* words emitted so far *)
  mutable owner : (string * int) option;
  mutable fixups : (int * fixup) list;  (* word index -> fixup *)
  mutable all_labels : label list;
}

let create ~base =
  if base land 3 <> 0 then invalid_arg "Easm.create: unaligned base";
  {
    base;
    words = Array.make 1024 0;
    owners = Array.make 1024 None;
    len = 0;
    owner = None;
    fixups = [];
    all_labels = [];
  }

let fresh_label t name =
  let l = { name; addr = None } in
  t.all_labels <- l :: t.all_labels;
  l

let label_at t name addr =
  let l = { name; addr = Some addr } in
  t.all_labels <- l :: t.all_labels;
  l

let here t = t.base + (4 * t.len)

let bind t l =
  match l.addr with
  | Some _ -> invalid_arg (Printf.sprintf "Easm.bind: label %s already bound" l.name)
  | None -> l.addr <- Some (here t)

let set_owner t o = t.owner <- o

let grow t =
  if t.len = Array.length t.words then begin
    let words = Array.make (2 * t.len) 0 in
    let owners = Array.make (2 * t.len) None in
    Array.blit t.words 0 words 0 t.len;
    Array.blit t.owners 0 owners 0 t.len;
    t.words <- words;
    t.owners <- owners
  end

let word t w =
  grow t;
  t.words.(t.len) <- w land Word.mask;
  t.owners.(t.len) <- t.owner;
  t.len <- t.len + 1

let instr t i = word t (Instr.encode i)

let push_fixup t f =
  t.fixups <- (t.len, f) :: t.fixups;
  word t 0

let branch t kind ra l = push_fixup t (Fix_branch (kind, ra, l))
let cbranch t cond ra l = push_fixup t (Fix_cbranch (cond, ra, l))
let addr_word t l = push_fixup t (Fix_addr_word l)

let load_addr t ra l =
  push_fixup t (Fix_load_hi (ra, l));
  push_fixup t (Fix_load_lo (ra, l))

let split_addr a =
  let lo = Word.sign_extend ~width:16 a in
  let hi = (a - lo) asr 16 in
  (hi, lo)

let split_const v =
  let v = v land Word.mask in
  let lo = Word.sign_extend ~width:16 v in
  (* Round the high half up when the low half is negative; the [ldah]'s
     16-bit field wraps modulo 2^16, so 0x7fff_ffff becomes
     [ldah -32768 ; lda -1] and reassembles correctly under 32-bit
     arithmetic. *)
  let hi = Word.sign_extend ~width:16 (((v lsr 16) + ((v lsr 15) land 1)) land 0xFFFF) in
  (hi, lo)

type image = {
  base : int;
  words : int array;
  owners : (string * int) option array;
  labels : (string * int) list;
}

let resolve (_t : t) l =
  match l.addr with
  | Some a -> a
  | None -> failwith (Printf.sprintf "Easm: unbound label %s" l.name)

let finish (t : t) =
  let target l =
    match l.addr with
    | Some a -> a
    | None -> failwith (Printf.sprintf "Easm: unbound label %s" l.name)
  in
  let disp_to idx l =
    let pc_next = t.base + (4 * (idx + 1)) in
    let d = target l - pc_next in
    if d land 3 <> 0 then failwith "Easm: unaligned branch target";
    d asr 2
  in
  List.iter
    (fun (idx, fix) ->
      let w =
        match fix with
        | Fix_branch (`Br, ra, l) -> Instr.encode (Instr.Br { ra; disp = disp_to idx l })
        | Fix_branch (`Bsr, ra, l) ->
          Instr.encode (Instr.Bsr { ra; disp = disp_to idx l })
        | Fix_branch (`Bsrx, ra, l) ->
          Instr.encode (Instr.Bsrx { ra; disp = disp_to idx l })
        | Fix_cbranch (op, ra, l) ->
          Instr.encode (Instr.Cbr { op; ra; disp = disp_to idx l })
        | Fix_addr_word l -> target l land Word.mask
        | Fix_load_hi (ra, l) ->
          let hi, _ = split_addr (target l) in
          Instr.encode (Instr.Ldah { ra; rb = Reg.zero; disp = hi })
        | Fix_load_lo (ra, l) ->
          let _, lo = split_addr (target l) in
          Instr.encode (Instr.Lda { ra; rb = ra; disp = lo })
      in
      t.words.(idx) <- w)
    t.fixups;
  {
    base = t.base;
    words = Array.sub t.words 0 t.len;
    owners = Array.sub t.owners 0 t.len;
    labels =
      List.filter_map
        (fun l -> Option.map (fun a -> (l.name, a)) l.addr)
        (List.rev t.all_labels);
  }
