let text_base = 0x1_0000
let data_base = 0x40_0000
let stack_top = 0xF0_0000
let mem_bytes = 0x100_0000

type image = {
  text_base : int;
  text : int array;
  owners : (string * int) option array;
  entry_addr : int;
  func_entry : (string, int) Hashtbl.t;
  block_addr : (string * int, int) Hashtbl.t;
  table_addr : (string * int, int) Hashtbl.t;
  data_base : int;
  data_words : int;
  data_init : (int * Word.t) list;
}

(* Emit one function's blocks and jump tables through [asm], binding the
   given per-block and per-table labels.  Shared with squash, which emits
   never-compressed functions the same way but with different labels for the
   blocks that moved into compressed regions. *)
let emit_func asm (f : Prog.Func.t) ~block_label ~table_label ~func_label =
  let n = Array.length f.blocks in
  Array.iteri
    (fun i (b : Prog.Block.t) ->
      Easm.set_owner asm (Some (f.name, i));
      Easm.bind asm (block_label i);
      List.iter
        (fun item ->
          match item with
          | Prog.Instr ins -> Easm.instr asm ins
          | Prog.Load_addr (r, Prog.Func_addr g) -> Easm.load_addr asm r (func_label g)
          | Prog.Load_addr (r, Prog.Table_addr tid) ->
            Easm.load_addr asm r (table_label tid))
        b.items;
      (match b.term with
      | Prog.Fallthrough d ->
        if not (d = i + 1 && i + 1 < n) then Easm.branch asm `Br Reg.zero (block_label d)
      | Prog.Jump d -> Easm.branch asm `Br Reg.zero (block_label d)
      | Prog.Branch (op, ra, taken, fall) ->
        Easm.cbranch asm op ra (block_label taken);
        if not (fall = i + 1 && i + 1 < n) then
          Easm.branch asm `Br Reg.zero (block_label fall)
      | Prog.Call { ra; callee; return_to = _ } ->
        Easm.branch asm `Bsr ra (func_label callee)
      | Prog.Call_indirect { ra; rb; return_to = _ } ->
        Easm.instr asm (Instr.Jsr { ra; rb; hint = 0 })
      | Prog.Jump_indirect { rb; table = _ } ->
        Easm.instr asm (Instr.Jmp { ra = Reg.zero; rb; hint = 0 })
      | Prog.Return { rb } -> Easm.instr asm (Instr.Ret { ra = Reg.zero; rb; hint = 0 })
      | Prog.No_return -> ()))
    f.blocks;
  Easm.set_owner asm None;
  Array.iteri
    (fun tid entries ->
      Easm.bind asm (table_label tid);
      Array.iter (fun d -> Easm.addr_word asm (block_label d)) entries)
    f.tables

let emit (p : Prog.t) =
  let asm = Easm.create ~base:text_base in
  let func_labels = Hashtbl.create 64 in
  let block_labels = Hashtbl.create 256 in
  let table_labels = Hashtbl.create 16 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Hashtbl.replace func_labels f.name (Easm.fresh_label asm f.name);
      Array.iteri
        (fun i _ ->
          Hashtbl.replace block_labels (f.name, i)
            (Easm.fresh_label asm (Printf.sprintf "%s.%d" f.name i)))
        f.blocks;
      Array.iteri
        (fun tid _ ->
          Hashtbl.replace table_labels (f.name, tid)
            (Easm.fresh_label asm (Printf.sprintf "%s.table%d" f.name tid)))
        f.tables)
    p.funcs;
  let func_label g =
    match Hashtbl.find_opt func_labels g with
    | Some l -> l
    | None -> failwith (Printf.sprintf "Layout.emit: undefined function %s" g)
  in
  List.iter
    (fun (f : Prog.Func.t) ->
      Easm.bind asm (func_label f.name);
      (* The function label marks the entry; block 0 gets its own label bound
         at the same address. *)
      emit_func asm f
        ~block_label:(fun i -> Hashtbl.find block_labels (f.name, i))
        ~table_label:(fun tid -> Hashtbl.find table_labels (f.name, tid))
        ~func_label)
    p.funcs;
  let img = Easm.finish asm in
  let func_entry = Hashtbl.create 64 in
  Hashtbl.iter (fun name l -> Hashtbl.replace func_entry name (Easm.resolve asm l)) func_labels;
  let block_addr = Hashtbl.create 256 in
  Hashtbl.iter (fun k l -> Hashtbl.replace block_addr k (Easm.resolve asm l)) block_labels;
  let table_addr = Hashtbl.create 16 in
  Hashtbl.iter (fun k l -> Hashtbl.replace table_addr k (Easm.resolve asm l)) table_labels;
  {
    text_base;
    text = img.Easm.words;
    owners = img.Easm.owners;
    entry_addr = Hashtbl.find func_entry p.entry;
    func_entry;
    block_addr;
    table_addr;
    data_base;
    data_words = p.data_words;
    data_init = p.data_init;
  }

let text_words img = Array.length img.text

let block_of_addr img addr =
  let idx = (addr - img.text_base) / 4 in
  if idx < 0 || idx >= Array.length img.owners then None else img.owners.(idx)
