lib/exp/experiments.ml: Array Buffer_safe Cold Compress Exp_data Hashtbl Lazy List Option Printf Prog Regions Report Rewrite Runtime Squash String Vm Workload Workloads
