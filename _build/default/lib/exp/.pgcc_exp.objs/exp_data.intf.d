lib/exp/exp_data.mli: Lazy Profile Prog Runtime Squash Squeeze Vm Workload
