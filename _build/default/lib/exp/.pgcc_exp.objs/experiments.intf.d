lib/exp/experiments.mli:
