lib/exp/exp_data.ml: Hashtbl Layout Lazy Printf Profile Prog Runtime Squash Squeeze Vm Workload
