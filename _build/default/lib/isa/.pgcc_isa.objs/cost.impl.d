lib/isa/cost.pp.ml: Instr
