lib/isa/instr.pp.mli: Format Reg Word
