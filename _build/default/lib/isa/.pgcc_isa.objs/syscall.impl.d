lib/isa/syscall.pp.ml: Format
