lib/isa/cost.pp.mli: Instr
