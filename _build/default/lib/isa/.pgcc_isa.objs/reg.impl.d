lib/isa/reg.pp.ml: Format Int Lazy List Printf String
