lib/isa/syscall.pp.mli: Format
