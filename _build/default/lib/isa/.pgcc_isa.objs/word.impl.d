lib/isa/word.pp.ml: Format
