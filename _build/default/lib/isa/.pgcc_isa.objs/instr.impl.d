lib/isa/instr.pp.ml: Format Ppx_deriving_runtime Printf Reg Result Word
