lib/isa/reg.pp.mli: Format
