lib/isa/word.pp.mli: Format
