type t = int

exception Division_trap

let mask = 0xFFFF_FFFF
let of_int v = v land mask
let to_unsigned v = v

let to_signed v =
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask

let sdiv a b =
  let sb = to_signed b in
  if sb = 0 then raise Division_trap
  else of_int (to_signed a / sb)

let srem a b =
  let sb = to_signed b in
  if sb = 0 then raise Division_trap
  else of_int (to_signed a mod sb)

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land mask

let shift_left a n = (a lsl (n land 31)) land mask
let shift_right_logical a n = a lsr (n land 31)
let shift_right_arith a n = of_int (to_signed a asr (n land 31))

let eq a b = a = b
let slt a b = to_signed a < to_signed b
let sle a b = to_signed a <= to_signed b
let ult a b = a < b
let ule a b = a <= b

let sign_extend ~width v =
  let v = v land ((1 lsl width) - 1) in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let zero_extend ~width v = v land ((1 lsl width) - 1)

let fits_signed ~width v =
  let bound = 1 lsl (width - 1) in
  v >= -bound && v < bound

let fits_unsigned ~width v = v >= 0 && v < 1 lsl width

let pp ppf v = Format.fprintf ppf "0x%04x_%04x" (v lsr 16) (v land 0xFFFF)
