type t = int

let count = 32
let zero = 31
let sp = 30
let ra = 26
let rv = 0
let stub_scratch = 25
let args = [ 16; 17; 18; 19; 20; 21 ]
let temps = [ 1; 2; 3; 4; 5; 6; 7; 8; 22; 23; 24 ]
let saved = [ 9; 10; 11; 12; 13; 14; 15 ]
let is_valid r = r >= 0 && r < count
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b

let name r =
  match r with
  | 0 -> "v0"
  | 25 -> "t12"
  | 26 -> "ra"
  | 27 -> "pv"
  | 28 -> "at"
  | 29 -> "gp"
  | 30 -> "sp"
  | 31 -> "zero"
  | r when r >= 1 && r <= 8 -> Printf.sprintf "t%d" (r - 1)
  | r when r >= 9 && r <= 15 -> Printf.sprintf "s%d" (r - 9)
  | r when r >= 16 && r <= 21 -> Printf.sprintf "a%d" (r - 16)
  | r when r >= 22 && r <= 24 -> Printf.sprintf "t%d" (r - 14)
  | r -> Printf.sprintf "r%d" r

let table = lazy (List.init count (fun r -> (name r, r)))

let of_name s =
  match List.assoc_opt s (Lazy.force table) with
  | Some r -> Some r
  | None ->
    if String.length s >= 2 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some r when is_valid r -> Some r
      | Some _ | None -> None
    else None

let pp ppf r = Format.pp_print_string ppf (name r)
