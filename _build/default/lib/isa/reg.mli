(** SQ32 register file and calling convention.

    There are 32 general-purpose registers.  [r31] always reads as zero and
    ignores writes, like the Alpha's [$31]. *)

type t = int
(** A register number in [0, 31]. *)

val count : int
(** 32. *)

val zero : t
(** [r31]: hardwired zero. *)

val sp : t
(** [r30]: stack pointer. *)

val ra : t
(** [r26]: standard return-address (link) register. *)

val rv : t
(** [r0]: function return value. *)

val stub_scratch : t
(** [r25]: the register that entry stubs prefer when the liveness analysis
    finds it free; also used by the assembler's pseudo-instructions. *)

val args : t list
(** [r16]..[r21]: the six argument registers, in order. *)

val temps : t list
(** Caller-saved temporaries available to code generators. *)

val saved : t list
(** Callee-saved registers. *)

val is_valid : int -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val name : t -> string
(** Symbolic name, e.g. ["sp"], ["ra"], ["a0"], ["t3"], ["zero"]. *)

val of_name : string -> t option
(** Inverse of {!name}; also accepts the raw ["r17"] spellings. *)
