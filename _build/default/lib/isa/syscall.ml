type t = Exit | Getc | Putc | Putint | Sbrk | Setjmp | Longjmp | Getw | Putw

let to_code = function
  | Exit -> 0
  | Getc -> 1
  | Putc -> 2
  | Putint -> 3
  | Sbrk -> 4
  | Setjmp -> 5
  | Longjmp -> 6
  | Getw -> 7
  | Putw -> 8

let of_code = function
  | 0 -> Some Exit
  | 1 -> Some Getc
  | 2 -> Some Putc
  | 3 -> Some Putint
  | 4 -> Some Sbrk
  | 5 -> Some Setjmp
  | 6 -> Some Longjmp
  | 7 -> Some Getw
  | 8 -> Some Putw
  | _ -> None

let name = function
  | Exit -> "exit"
  | Getc -> "getc"
  | Putc -> "putc"
  | Putint -> "putint"
  | Sbrk -> "sbrk"
  | Setjmp -> "setjmp"
  | Longjmp -> "longjmp"
  | Getw -> "getw"
  | Putw -> "putw"

let pp ppf t = Format.pp_print_string ppf (name t)
