(** 32-bit machine arithmetic on top of OCaml's native [int].

    All values of type {!t} are kept in canonical unsigned form, i.e. in the
    range [0, 2{^32}).  Signed interpretation is obtained with {!to_signed}.
    Division by zero raises {!Division_trap}, which the VM turns into a
    machine trap. *)

type t = int
(** A 32-bit word in canonical unsigned form. *)

exception Division_trap

val mask : int
(** [0xFFFF_FFFF]. *)

val of_int : int -> t
(** Truncate an OCaml int to 32 bits. *)

val to_signed : t -> int
(** Signed (two's-complement) value in [-2{^31}, 2{^31}). *)

val to_unsigned : t -> int
(** Identity on canonical words; exposed for symmetry. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val sdiv : t -> t -> t
(** Signed division truncating toward zero.  @raise Division_trap on zero
    divisor. *)

val srem : t -> t -> t
(** Signed remainder (sign follows the dividend).  @raise Division_trap on
    zero divisor. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** Shift count is taken modulo 32. *)

val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

val eq : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool
val ult : t -> t -> bool
val ule : t -> t -> bool

val sign_extend : width:int -> int -> int
(** [sign_extend ~width v] interprets the low [width] bits of [v] as a
    two's-complement value and returns it as an OCaml int. *)

val zero_extend : width:int -> int -> int
(** Keep only the low [width] bits. *)

val fits_signed : width:int -> int -> bool
(** Does [v] fit in a signed field of [width] bits? *)

val fits_unsigned : width:int -> int -> bool

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x0001_f00d]. *)
