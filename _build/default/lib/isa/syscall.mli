(** System-call numbering shared by the code generator and the VM.

    Arguments are passed in [a0]..[a2] (registers r16..r18) and the result is
    returned in [v0] (r0), following the normal calling convention. *)

type t =
  | Exit  (** [exit a0]: terminate with exit code [a0]. *)
  | Getc  (** [v0 := next input byte], or -1 at end of input. *)
  | Putc  (** Append byte [a0 land 0xFF] to the output. *)
  | Putint  (** Append the decimal rendering of [a0] and a newline. *)
  | Sbrk  (** Grow the heap by [a0] bytes; [v0 := old break]. *)
  | Setjmp
      (** Save PC/SP into the 8-word buffer at address [a0]; [v0 := 0].
          A later [Longjmp] returns here with [v0 := a1]. *)
  | Longjmp  (** Restore the context saved at [a0]; does not return. *)
  | Getw  (** [v0 := next 4 input bytes, little-endian], or -1 at EOF. *)
  | Putw  (** Append [a0] to the output as 4 little-endian bytes. *)

val to_code : t -> int
val of_code : int -> t option
val name : t -> string
val pp : Format.formatter -> t -> unit
