(** SQ32 instructions: decoded form, binary encoding, and the field-stream
    view used by the split-stream compressor.

    SQ32 is a 32-bit fixed-width RISC in the style of the Compaq Alpha:

    - {b operate} format: [op:6 | ra:5 | rb:5 | sbz:4 | func:7 | rc:5], or
      with an 8-bit literal [op:6 | ra:5 | lit:8 | sbz:1 | func:7 | rc:5];
    - {b memory} format: [op:6 | ra:5 | rb:5 | disp:16] (byte displacement,
      signed);
    - {b branch} format: [op:6 | ra:5 | disp:21] (instruction displacement
      relative to the next instruction, signed);
    - {b jump} format: [op:6 | ra:5 | rb:5 | hint:16];
    - {b system} format: [op:6 | sbz:10 | func:16].

    The opcode fully determines which fields an instruction carries, which is
    what lets the compressor merge all per-field codeword streams into a
    single bitstream (paper, Section 3). *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Cmpeq
  | Cmpne
  | Cmplt
  | Cmple
  | Cmpult
  | Cmpule

type mem_op = Ldw | Stw | Ldb | Stb

type cond = Eq | Ne | Lt | Le | Gt | Ge
(** Condition of a conditional branch; the tested register is compared
    against zero (signed). *)

type operand =
  | Reg of Reg.t
  | Imm of int  (** Unsigned 8-bit literal, [0, 255]. *)

type t =
  | Sys of int  (** System call; the 16-bit function code selects the call. *)
  | Nop
  | Lda of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [ra := rb + sext16 disp]. *)
  | Ldah of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [ra := rb + (sext16 disp << 16)]. *)
  | Opr of { op : alu_op; ra : Reg.t; rb : operand; rc : Reg.t }
      (** [rc := ra <op> rb]. *)
  | Mem of { op : mem_op; ra : Reg.t; rb : Reg.t; disp : int }
      (** Load/store of [ra] at byte address [rb + sext16 disp]. *)
  | Cbr of { op : cond; ra : Reg.t; disp : int }
      (** Branch if [ra <op> 0], to [pc + 4 + 4*disp]. *)
  | Br of { ra : Reg.t; disp : int }
      (** Unconditional branch; [ra := return address] (use [Reg.zero] to
          discard). *)
  | Bsr of { ra : Reg.t; disp : int }  (** Branch subroutine. *)
  | Bsrx of { ra : Reg.t; disp : int }
      (** Marked call that the decompressor expands into
          [bsr ra, CreateStub ; br target].  Only ever appears in the
          compressed stream; executing it is an illegal-instruction trap. *)
  | Jmp of { ra : Reg.t; rb : Reg.t; hint : int }
      (** [pc := rb]; [ra := return address]. *)
  | Jsr of { ra : Reg.t; rb : Reg.t; hint : int }
  | Ret of { ra : Reg.t; rb : Reg.t; hint : int }  (** [pc := rb]. *)
  | Sentinel
      (** Illegal instruction used to terminate compressed regions. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Binary encoding} *)

exception Encode_error of string * t

val encode : t -> Word.t
(** Encode to a 32-bit word.
    @raise Encode_error if a displacement or literal does not fit its
    field. *)

val decode : Word.t -> (t, string) result
(** Decode a 32-bit word.  [Bsrx] decodes successfully (the decompressor
    needs to read it back from the compressed stream) but the VM refuses to
    execute it. *)

val decode_exn : Word.t -> t

(** {1 Field streams (paper, Section 3)} *)

type stream =
  | Opcode
  | Mem_ra
  | Mem_rb
  | Mem_disp
  | Br_ra
  | Br_disp
  | Op_ra
  | Op_rb
  | Op_rc
  | Op_lit
  | Op_func
  | Jmp_ra
  | Jmp_rb
  | Jmp_hint
  | Sys_func

val all_streams : stream list
(** The 15 streams, [Opcode] first. *)

val equal_stream : stream -> stream -> bool

val stream_index : stream -> int
val stream_name : stream -> string
val pp_stream : Format.formatter -> stream -> unit

val opcode_value : t -> int
(** The value contributed to the [Opcode] stream.  This is the 6-bit major
    opcode with the literal-form flag folded in for operate instructions, so
    that the opcode alone determines the remaining field kinds. *)

val fields : t -> (stream * int) list
(** The non-opcode field values of an instruction, in a canonical order.
    All values are raw unsigned field patterns (displacements are presented
    as their two's-complement bit patterns). *)

val streams_of_opcode : int -> (stream list, string) result
(** Which streams (beyond [Opcode]) an instruction with the given opcode
    value reads, in the same canonical order as {!fields}. *)

val rebuild : opcode:int -> (stream -> int) -> (t, string) result
(** Reassemble an instruction from its opcode value and a function supplying
    the next value of each stream.  Inverse of {!opcode_value}/{!fields}. *)

(** {1 Branch helpers} *)

val branch_displacement : t -> int option
(** The instruction displacement of a PC-relative control transfer
    ([Cbr]/[Br]/[Bsr]/[Bsrx]), if any. *)

val with_branch_displacement : t -> int -> t
(** Replace the displacement of a PC-relative control transfer.  Returns the
    instruction unchanged if it has no displacement. *)

val is_control_transfer : t -> bool
(** Does this instruction (potentially) transfer control somewhere other
    than the next instruction?  [Sys Exit] is not counted. *)
