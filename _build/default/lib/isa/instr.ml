type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Cmpeq
  | Cmpne
  | Cmplt
  | Cmple
  | Cmpult
  | Cmpule
[@@deriving eq, ord]

type mem_op = Ldw | Stw | Ldb | Stb [@@deriving eq, ord]
type cond = Eq | Ne | Lt | Le | Gt | Ge [@@deriving eq, ord]
type operand = Reg of Reg.t | Imm of int [@@deriving eq, ord]

type t =
  | Sys of int
  | Nop
  | Lda of { ra : Reg.t; rb : Reg.t; disp : int }
  | Ldah of { ra : Reg.t; rb : Reg.t; disp : int }
  | Opr of { op : alu_op; ra : Reg.t; rb : operand; rc : Reg.t }
  | Mem of { op : mem_op; ra : Reg.t; rb : Reg.t; disp : int }
  | Cbr of { op : cond; ra : Reg.t; disp : int }
  | Br of { ra : Reg.t; disp : int }
  | Bsr of { ra : Reg.t; disp : int }
  | Bsrx of { ra : Reg.t; disp : int }
  | Jmp of { ra : Reg.t; rb : Reg.t; hint : int }
  | Jsr of { ra : Reg.t; rb : Reg.t; hint : int }
  | Ret of { ra : Reg.t; rb : Reg.t; hint : int }
  | Sentinel
[@@deriving eq, ord]

(* Major opcodes (6 bits). *)
let op_sys = 0x01
let op_nop = 0x02
let op_lda = 0x08
let op_ldah = 0x09
let op_opr = 0x10
let op_opri = 0x11
let op_jmp = 0x1A
let op_jsr = 0x1B
let op_ret = 0x1C
let op_ldw = 0x20
let op_stw = 0x21
let op_ldb = 0x22
let op_stb = 0x23
let op_beq = 0x30
let op_bne = 0x31
let op_blt = 0x32
let op_ble = 0x33
let op_bgt = 0x34
let op_bge = 0x35
let op_br = 0x38
let op_bsr = 0x39
let op_bsrx = 0x3A
let op_sentinel = 0x3F

let func_of_alu = function
  | Add -> 0x00
  | Sub -> 0x01
  | Mul -> 0x02
  | Div -> 0x03
  | Rem -> 0x04
  | And -> 0x05
  | Or -> 0x06
  | Xor -> 0x07
  | Sll -> 0x08
  | Srl -> 0x09
  | Sra -> 0x0A
  | Cmpeq -> 0x10
  | Cmpne -> 0x11
  | Cmplt -> 0x12
  | Cmple -> 0x13
  | Cmpult -> 0x14
  | Cmpule -> 0x15

let alu_of_func = function
  | 0x00 -> Some Add
  | 0x01 -> Some Sub
  | 0x02 -> Some Mul
  | 0x03 -> Some Div
  | 0x04 -> Some Rem
  | 0x05 -> Some And
  | 0x06 -> Some Or
  | 0x07 -> Some Xor
  | 0x08 -> Some Sll
  | 0x09 -> Some Srl
  | 0x0A -> Some Sra
  | 0x10 -> Some Cmpeq
  | 0x11 -> Some Cmpne
  | 0x12 -> Some Cmplt
  | 0x13 -> Some Cmple
  | 0x14 -> Some Cmpult
  | 0x15 -> Some Cmpule
  | _ -> None

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Cmpeq -> "cmpeq"
  | Cmpne -> "cmpne"
  | Cmplt -> "cmplt"
  | Cmple -> "cmple"
  | Cmpult -> "cmpult"
  | Cmpule -> "cmpule"

let mem_opcode = function
  | Ldw -> op_ldw
  | Stw -> op_stw
  | Ldb -> op_ldb
  | Stb -> op_stb

let mem_name = function Ldw -> "ldw" | Stw -> "stw" | Ldb -> "ldb" | Stb -> "stb"

let cond_opcode = function
  | Eq -> op_beq
  | Ne -> op_bne
  | Lt -> op_blt
  | Le -> op_ble
  | Gt -> op_bgt
  | Ge -> op_bge

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Le -> "ble"
  | Gt -> "bgt"
  | Ge -> "bge"

let pp ppf i =
  let open Format in
  match i with
  | Sys f -> fprintf ppf "sys %d" f
  | Nop -> pp_print_string ppf "nop"
  | Lda { ra; rb; disp } -> fprintf ppf "lda %a, %d(%a)" Reg.pp ra disp Reg.pp rb
  | Ldah { ra; rb; disp } -> fprintf ppf "ldah %a, %d(%a)" Reg.pp ra disp Reg.pp rb
  | Opr { op; ra; rb = Reg rb; rc } ->
    fprintf ppf "%s %a, %a, %a" (alu_name op) Reg.pp ra Reg.pp rb Reg.pp rc
  | Opr { op; ra; rb = Imm v; rc } ->
    fprintf ppf "%s %a, #%d, %a" (alu_name op) Reg.pp ra v Reg.pp rc
  | Mem { op; ra; rb; disp } ->
    fprintf ppf "%s %a, %d(%a)" (mem_name op) Reg.pp ra disp Reg.pp rb
  | Cbr { op; ra; disp } -> fprintf ppf "%s %a, %+d" (cond_name op) Reg.pp ra disp
  | Br { ra; disp } -> fprintf ppf "br %a, %+d" Reg.pp ra disp
  | Bsr { ra; disp } -> fprintf ppf "bsr %a, %+d" Reg.pp ra disp
  | Bsrx { ra; disp } -> fprintf ppf "bsrx %a, %+d" Reg.pp ra disp
  | Jmp { ra; rb; hint } -> fprintf ppf "jmp %a, (%a), %d" Reg.pp ra Reg.pp rb hint
  | Jsr { ra; rb; hint } -> fprintf ppf "jsr %a, (%a), %d" Reg.pp ra Reg.pp rb hint
  | Ret { ra; rb; hint } -> fprintf ppf "ret %a, (%a), %d" Reg.pp ra Reg.pp rb hint
  | Sentinel -> pp_print_string ppf "sentinel"

let to_string i = Format.asprintf "%a" pp i

exception Encode_error of string * t

let check_field instr ~what ~ok = if not ok then raise (Encode_error (what, instr))

let encode instr =
  let s16 instr v =
    check_field instr ~what:"16-bit displacement" ~ok:(Word.fits_signed ~width:16 v);
    Word.zero_extend ~width:16 v
  in
  let s21 instr v =
    check_field instr ~what:"21-bit displacement" ~ok:(Word.fits_signed ~width:21 v);
    Word.zero_extend ~width:21 v
  in
  let reg instr r =
    check_field instr ~what:"register" ~ok:(Reg.is_valid r);
    r
  in
  let memfmt op ra rb disp =
    (op lsl 26) lor (reg instr ra lsl 21) lor (reg instr rb lsl 16) lor s16 instr disp
  in
  let brfmt op ra disp = (op lsl 26) lor (reg instr ra lsl 21) lor s21 instr disp in
  let jfmt op ra rb hint =
    check_field instr ~what:"16-bit hint" ~ok:(Word.fits_unsigned ~width:16 hint);
    (op lsl 26) lor (reg instr ra lsl 21) lor (reg instr rb lsl 16) lor hint
  in
  match instr with
  | Sys f ->
    check_field instr ~what:"16-bit syscall code" ~ok:(Word.fits_unsigned ~width:16 f);
    (op_sys lsl 26) lor f
  | Nop -> op_nop lsl 26
  | Lda { ra; rb; disp } -> memfmt op_lda ra rb disp
  | Ldah { ra; rb; disp } -> memfmt op_ldah ra rb disp
  | Opr { op; ra; rb = Reg rb; rc } ->
    (op_opr lsl 26)
    lor (reg instr ra lsl 21)
    lor (reg instr rb lsl 16)
    lor (func_of_alu op lsl 5)
    lor reg instr rc
  | Opr { op; ra; rb = Imm v; rc } ->
    check_field instr ~what:"8-bit literal" ~ok:(Word.fits_unsigned ~width:8 v);
    (op_opri lsl 26)
    lor (reg instr ra lsl 21)
    lor (v lsl 13)
    lor (func_of_alu op lsl 5)
    lor reg instr rc
  | Mem { op; ra; rb; disp } -> memfmt (mem_opcode op) ra rb disp
  | Cbr { op; ra; disp } -> brfmt (cond_opcode op) ra disp
  | Br { ra; disp } -> brfmt op_br ra disp
  | Bsr { ra; disp } -> brfmt op_bsr ra disp
  | Bsrx { ra; disp } -> brfmt op_bsrx ra disp
  | Jmp { ra; rb; hint } -> jfmt op_jmp ra rb hint
  | Jsr { ra; rb; hint } -> jfmt op_jsr ra rb hint
  | Ret { ra; rb; hint } -> jfmt op_ret ra rb hint
  | Sentinel -> (op_sentinel lsl 26) lor 0x3FF_FFFF

let decode w =
  let opc = (w lsr 26) land 0x3F in
  let ra = (w lsr 21) land 0x1F in
  let rb = (w lsr 16) land 0x1F in
  let disp16 = Word.sign_extend ~width:16 w in
  let disp21 = Word.sign_extend ~width:21 w in
  let hint = w land 0xFFFF in
  let alu () =
    match alu_of_func ((w lsr 5) land 0x7F) with
    | Some op -> Ok op
    | None -> Error (Printf.sprintf "bad ALU function code in word 0x%08x" w)
  in
  match opc with
  | o when o = op_sys -> Ok (Sys (w land 0xFFFF))
  | o when o = op_nop -> Ok Nop
  | o when o = op_lda -> Ok (Lda { ra; rb; disp = disp16 })
  | o when o = op_ldah -> Ok (Ldah { ra; rb; disp = disp16 })
  | o when o = op_opr ->
    Result.map (fun op -> Opr { op; ra; rb = Reg rb; rc = w land 0x1F }) (alu ())
  | o when o = op_opri ->
    let lit = (w lsr 13) land 0xFF in
    Result.map (fun op -> Opr { op; ra; rb = Imm lit; rc = w land 0x1F }) (alu ())
  | o when o = op_ldw -> Ok (Mem { op = Ldw; ra; rb; disp = disp16 })
  | o when o = op_stw -> Ok (Mem { op = Stw; ra; rb; disp = disp16 })
  | o when o = op_ldb -> Ok (Mem { op = Ldb; ra; rb; disp = disp16 })
  | o when o = op_stb -> Ok (Mem { op = Stb; ra; rb; disp = disp16 })
  | o when o = op_beq -> Ok (Cbr { op = Eq; ra; disp = disp21 })
  | o when o = op_bne -> Ok (Cbr { op = Ne; ra; disp = disp21 })
  | o when o = op_blt -> Ok (Cbr { op = Lt; ra; disp = disp21 })
  | o when o = op_ble -> Ok (Cbr { op = Le; ra; disp = disp21 })
  | o when o = op_bgt -> Ok (Cbr { op = Gt; ra; disp = disp21 })
  | o when o = op_bge -> Ok (Cbr { op = Ge; ra; disp = disp21 })
  | o when o = op_br -> Ok (Br { ra; disp = disp21 })
  | o when o = op_bsr -> Ok (Bsr { ra; disp = disp21 })
  | o when o = op_bsrx -> Ok (Bsrx { ra; disp = disp21 })
  | o when o = op_jmp -> Ok (Jmp { ra; rb; hint })
  | o when o = op_jsr -> Ok (Jsr { ra; rb; hint })
  | o when o = op_ret -> Ok (Ret { ra; rb; hint })
  | o when o = op_sentinel -> Ok Sentinel
  | o -> Error (Printf.sprintf "unknown opcode 0x%02x in word 0x%08x" o w)

let decode_exn w =
  match decode w with Ok i -> i | Error msg -> invalid_arg ("Instr.decode_exn: " ^ msg)

(* Field streams *)

type stream =
  | Opcode
  | Mem_ra
  | Mem_rb
  | Mem_disp
  | Br_ra
  | Br_disp
  | Op_ra
  | Op_rb
  | Op_rc
  | Op_lit
  | Op_func
  | Jmp_ra
  | Jmp_rb
  | Jmp_hint
  | Sys_func
[@@deriving eq, ord]

let all_streams =
  [ Opcode; Mem_ra; Mem_rb; Mem_disp; Br_ra; Br_disp; Op_ra; Op_rb; Op_rc; Op_lit;
    Op_func; Jmp_ra; Jmp_rb; Jmp_hint; Sys_func ]

let stream_index s =
  let rec find i = function
    | [] -> assert false
    | s' :: rest -> if equal_stream s s' then i else find (i + 1) rest
  in
  find 0 all_streams

let stream_name = function
  | Opcode -> "opcode"
  | Mem_ra -> "mem_ra"
  | Mem_rb -> "mem_rb"
  | Mem_disp -> "mem_disp"
  | Br_ra -> "br_ra"
  | Br_disp -> "br_disp"
  | Op_ra -> "op_ra"
  | Op_rb -> "op_rb"
  | Op_rc -> "op_rc"
  | Op_lit -> "op_lit"
  | Op_func -> "op_func"
  | Jmp_ra -> "jmp_ra"
  | Jmp_rb -> "jmp_rb"
  | Jmp_hint -> "jmp_hint"
  | Sys_func -> "sys_func"

let pp_stream ppf s = Format.pp_print_string ppf (stream_name s)

let opcode_value instr =
  match instr with
  | Sys _ -> op_sys
  | Nop -> op_nop
  | Lda _ -> op_lda
  | Ldah _ -> op_ldah
  | Opr { rb = Reg _; _ } -> op_opr
  | Opr { rb = Imm _; _ } -> op_opri
  | Mem { op; _ } -> mem_opcode op
  | Cbr { op; _ } -> cond_opcode op
  | Br _ -> op_br
  | Bsr _ -> op_bsr
  | Bsrx _ -> op_bsrx
  | Jmp _ -> op_jmp
  | Jsr _ -> op_jsr
  | Ret _ -> op_ret
  | Sentinel -> op_sentinel

let fields instr =
  match instr with
  | Sys f -> [ (Sys_func, f) ]
  | Nop -> []
  | Lda { ra; rb; disp } | Ldah { ra; rb; disp } | Mem { ra; rb; disp; _ } ->
    [ (Mem_ra, ra); (Mem_rb, rb); (Mem_disp, Word.zero_extend ~width:16 disp) ]
  | Opr { ra; rb = Reg rb; rc; op } ->
    [ (Op_ra, ra); (Op_rb, rb); (Op_func, func_of_alu op); (Op_rc, rc) ]
  | Opr { ra; rb = Imm v; rc; op } ->
    [ (Op_ra, ra); (Op_lit, v); (Op_func, func_of_alu op); (Op_rc, rc) ]
  | Cbr { ra; disp; _ } | Br { ra; disp } | Bsr { ra; disp } | Bsrx { ra; disp } ->
    [ (Br_ra, ra); (Br_disp, Word.zero_extend ~width:21 disp) ]
  | Jmp { ra; rb; hint } | Jsr { ra; rb; hint } | Ret { ra; rb; hint } ->
    [ (Jmp_ra, ra); (Jmp_rb, rb); (Jmp_hint, hint) ]
  | Sentinel -> []

let streams_of_opcode opc =
  let mem = [ Mem_ra; Mem_rb; Mem_disp ] in
  let br = [ Br_ra; Br_disp ] in
  let jump = [ Jmp_ra; Jmp_rb; Jmp_hint ] in
  match opc with
  | o when o = op_sys -> Ok [ Sys_func ]
  | o when o = op_nop || o = op_sentinel -> Ok []
  | o when o = op_lda || o = op_ldah -> Ok mem
  | o when o = op_ldw || o = op_stw || o = op_ldb || o = op_stb -> Ok mem
  | o when o = op_opr -> Ok [ Op_ra; Op_rb; Op_func; Op_rc ]
  | o when o = op_opri -> Ok [ Op_ra; Op_lit; Op_func; Op_rc ]
  | o when o >= op_beq && o <= op_bge -> Ok br
  | o when o = op_br || o = op_bsr || o = op_bsrx -> Ok br
  | o when o = op_jmp || o = op_jsr || o = op_ret -> Ok jump
  | o -> Error (Printf.sprintf "unknown opcode value %d" o)

let rebuild ~opcode next =
  let mem make =
    let ra = next Mem_ra in
    let rb = next Mem_rb in
    let disp = Word.sign_extend ~width:16 (next Mem_disp) in
    make ra rb disp
  in
  let br make =
    let ra = next Br_ra in
    let disp = Word.sign_extend ~width:21 (next Br_disp) in
    make ra disp
  in
  let jump make =
    let ra = next Jmp_ra in
    let rb = next Jmp_rb in
    let hint = next Jmp_hint in
    make ra rb hint
  in
  let opr literal =
    let ra = next Op_ra in
    let rb = if literal then Imm (next Op_lit) else Reg (next Op_rb) in
    match alu_of_func (next Op_func) with
    | Some op -> Ok (Opr { op; ra; rb; rc = next Op_rc })
    | None -> Error "bad ALU function code in compressed stream"
  in
  match opcode with
  | o when o = op_sys -> Ok (Sys (next Sys_func))
  | o when o = op_nop -> Ok Nop
  | o when o = op_sentinel -> Ok Sentinel
  | o when o = op_lda -> Ok (mem (fun ra rb disp -> Lda { ra; rb; disp }))
  | o when o = op_ldah -> Ok (mem (fun ra rb disp -> Ldah { ra; rb; disp }))
  | o when o = op_ldw -> Ok (mem (fun ra rb disp -> Mem { op = Ldw; ra; rb; disp }))
  | o when o = op_stw -> Ok (mem (fun ra rb disp -> Mem { op = Stw; ra; rb; disp }))
  | o when o = op_ldb -> Ok (mem (fun ra rb disp -> Mem { op = Ldb; ra; rb; disp }))
  | o when o = op_stb -> Ok (mem (fun ra rb disp -> Mem { op = Stb; ra; rb; disp }))
  | o when o = op_opr -> opr false
  | o when o = op_opri -> opr true
  | o when o = op_beq -> Ok (br (fun ra disp -> Cbr { op = Eq; ra; disp }))
  | o when o = op_bne -> Ok (br (fun ra disp -> Cbr { op = Ne; ra; disp }))
  | o when o = op_blt -> Ok (br (fun ra disp -> Cbr { op = Lt; ra; disp }))
  | o when o = op_ble -> Ok (br (fun ra disp -> Cbr { op = Le; ra; disp }))
  | o when o = op_bgt -> Ok (br (fun ra disp -> Cbr { op = Gt; ra; disp }))
  | o when o = op_bge -> Ok (br (fun ra disp -> Cbr { op = Ge; ra; disp }))
  | o when o = op_br -> Ok (br (fun ra disp -> Br { ra; disp }))
  | o when o = op_bsr -> Ok (br (fun ra disp -> Bsr { ra; disp }))
  | o when o = op_bsrx -> Ok (br (fun ra disp -> Bsrx { ra; disp }))
  | o when o = op_jmp -> Ok (jump (fun ra rb hint -> Jmp { ra; rb; hint }))
  | o when o = op_jsr -> Ok (jump (fun ra rb hint -> Jsr { ra; rb; hint }))
  | o when o = op_ret -> Ok (jump (fun ra rb hint -> Ret { ra; rb; hint }))
  | o -> Error (Printf.sprintf "unknown opcode value %d in compressed stream" o)

let branch_displacement = function
  | Cbr { disp; _ } | Br { disp; _ } | Bsr { disp; _ } | Bsrx { disp; _ } -> Some disp
  | Sys _ | Nop | Lda _ | Ldah _ | Opr _ | Mem _ | Jmp _ | Jsr _ | Ret _ | Sentinel ->
    None

let with_branch_displacement instr disp =
  match instr with
  | Cbr c -> Cbr { c with disp }
  | Br b -> Br { b with disp }
  | Bsr b -> Bsr { b with disp }
  | Bsrx b -> Bsrx { b with disp }
  | Sys _ | Nop | Lda _ | Ldah _ | Opr _ | Mem _ | Jmp _ | Jsr _ | Ret _ | Sentinel ->
    instr

let is_control_transfer = function
  | Cbr _ | Br _ | Bsr _ | Bsrx _ | Jmp _ | Jsr _ | Ret _ -> true
  | Sys _ | Nop | Lda _ | Ldah _ | Opr _ | Mem _ | Sentinel -> false
