(* Line-oriented recursive-descent assembler.  Each line is tokenised into
   words, numbers and punctuation; the parser then dispatches on the first
   token.  Errors are reported with 1-based line numbers. *)

type token =
  | Ident of string
  | Num of int
  | Punct of char  (* one of  , ( ) { } : # & = ?  *)

exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.'

let tokenize line_no s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ';' then i := n
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      incr i;
      while
        !i < n
        && (is_ident_char s.[!i] || s.[!i] = 'x' || s.[!i] = 'X')
        && s.[!i] <> '.'
      do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match int_of_string_opt text with
      | Some v -> toks := Num v :: !toks
      | None ->
        if text = "-" then toks := Punct '-' :: !toks
        else fail line_no "bad number %S" text
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      (* Leading dots belong to labels like [.0]; split a trailing ':'. *)
      toks := Ident (String.sub s start (!i - start)) :: !toks
    end
    else if String.contains ",(){}:#&=?" c then begin
      toks := Punct c :: !toks;
      incr i
    end
    else fail line_no "unexpected character %C" c
  done;
  List.rev !toks

let reg_of line_no name =
  match Reg.of_name name with
  | Some r -> r
  | None -> fail line_no "unknown register %S" name

let alu_ops =
  [
    ("add", Instr.Add);
    ("sub", Instr.Sub);
    ("mul", Instr.Mul);
    ("div", Instr.Div);
    ("rem", Instr.Rem);
    ("and", Instr.And);
    ("or", Instr.Or);
    ("xor", Instr.Xor);
    ("sll", Instr.Sll);
    ("srl", Instr.Srl);
    ("sra", Instr.Sra);
    ("cmpeq", Instr.Cmpeq);
    ("cmpne", Instr.Cmpne);
    ("cmplt", Instr.Cmplt);
    ("cmple", Instr.Cmple);
    ("cmpult", Instr.Cmpult);
    ("cmpule", Instr.Cmpule);
  ]

let mem_ops = [ ("ldw", Instr.Ldw); ("stw", Instr.Stw); ("ldb", Instr.Ldb); ("stb", Instr.Stb) ]

let conds =
  [
    ("eq", Instr.Eq);
    ("ne", Instr.Ne);
    ("lt", Instr.Lt);
    ("le", Instr.Le);
    ("gt", Instr.Gt);
    ("ge", Instr.Ge);
  ]

let syscalls =
  [
    Syscall.Exit; Syscall.Getc; Syscall.Putc; Syscall.Putint; Syscall.Sbrk;
    Syscall.Setjmp; Syscall.Longjmp; Syscall.Getw; Syscall.Putw;
  ]

let block_ref line_no tok =
  match tok with
  | Ident s when String.length s >= 2 && s.[0] = '.' -> (
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> n
    | None -> fail line_no "bad block reference %S" s)
  | Ident s -> fail line_no "expected block reference (.N), got %S" s
  | Num _ | Punct _ -> fail line_no "expected block reference (.N)"

(* Parse an instruction or pseudo-instruction line into items. *)
let parse_items line_no toks : Prog.item list =
  let reg = reg_of line_no in
  match toks with
  | [ Ident "nop" ] -> [ Prog.Instr Instr.Nop ]
  | [ Ident "sys"; Ident name ] -> (
    match List.find_opt (fun sc -> Syscall.name sc = name) syscalls with
    | Some sc -> [ Prog.Instr (Instr.Sys (Syscall.to_code sc)) ]
    | None -> fail line_no "unknown syscall %S" name)
  | [ Ident "sys"; Num code ] -> [ Prog.Instr (Instr.Sys code) ]
  | [ Ident op; Ident ra; Punct ','; Ident rb; Punct ','; Ident rc ]
    when List.mem_assoc op alu_ops ->
    [
      Prog.Instr
        (Instr.Opr
           {
             op = List.assoc op alu_ops;
             ra = reg ra;
             rb = Instr.Reg (reg rb);
             rc = reg rc;
           });
    ]
  | [ Ident op; Ident ra; Punct ','; Punct '#'; Num v; Punct ','; Ident rc ]
    when List.mem_assoc op alu_ops ->
    [
      Prog.Instr
        (Instr.Opr { op = List.assoc op alu_ops; ra = reg ra; rb = Instr.Imm v; rc = reg rc });
    ]
  | [ Ident op; Ident ra; Punct ','; Num disp; Punct '('; Ident rb; Punct ')' ]
    when List.mem_assoc op mem_ops ->
    [ Prog.Instr (Instr.Mem { op = List.assoc op mem_ops; ra = reg ra; rb = reg rb; disp }) ]
  | [ Ident "lda"; Ident ra; Punct ','; Num disp; Punct '('; Ident rb; Punct ')' ] ->
    [ Prog.Instr (Instr.Lda { ra = reg ra; rb = reg rb; disp }) ]
  | [ Ident "ldah"; Ident ra; Punct ','; Num disp; Punct '('; Ident rb; Punct ')' ] ->
    [ Prog.Instr (Instr.Ldah { ra = reg ra; rb = reg rb; disp }) ]
  | [ Ident "mov"; Ident ra; Punct ','; Ident rc ] ->
    [
      Prog.Instr
        (Instr.Opr { op = Instr.Or; ra = reg ra; rb = Instr.Reg Reg.zero; rc = reg rc });
    ]
  | [ Ident "li"; Ident rc; Punct ','; Num v ] ->
    let rc = reg rc in
    let hi, lo = Easm.split_const v in
    if hi = 0 then [ Prog.Instr (Instr.Lda { ra = rc; rb = Reg.zero; disp = lo }) ]
    else
      [
        Prog.Instr (Instr.Ldah { ra = rc; rb = Reg.zero; disp = hi });
        Prog.Instr (Instr.Lda { ra = rc; rb = rc; disp = lo });
      ]
  | [ Ident "la"; Ident rc; Punct ','; Punct '&'; Ident sym ] ->
    let rc = reg rc in
    if String.length sym > 5 && String.sub sym 0 5 = "table" then
      match int_of_string_opt (String.sub sym 5 (String.length sym - 5)) with
      | Some tid -> [ Prog.Load_addr (rc, Prog.Table_addr tid) ]
      | None -> [ Prog.Load_addr (rc, Prog.Func_addr sym) ]
    else [ Prog.Load_addr (rc, Prog.Func_addr sym) ]
  | _ -> fail line_no "cannot parse instruction"

(* Parse a terminator line; [next] is the index of the block that will
   lexically follow (used as implicit return_to for calls). *)
let parse_term line_no toks ~next : Prog.term option =
  match toks with
  | [ Ident "goto"; b ] -> Some (Prog.Jump (block_ref line_no b))
  | [ Ident "if"; Ident c; Ident r; Ident "goto"; b1; Ident "else"; b2 ] -> (
    match List.assoc_opt c conds with
    | Some cond ->
      Some
        (Prog.Branch
           (cond, reg_of line_no r, block_ref line_no b1, block_ref line_no b2))
    | None -> fail line_no "unknown condition %S" c)
  | [ Ident "call"; Ident f ] ->
    Some (Prog.Call { ra = Reg.ra; callee = f; return_to = next })
  | [ Ident "call"; Ident f; Ident "ra"; Punct '='; Ident r ] ->
    Some (Prog.Call { ra = reg_of line_no r; callee = f; return_to = next })
  | [ Ident "icall"; Punct '('; Ident r; Punct ')' ] ->
    Some (Prog.Call_indirect { ra = Reg.ra; rb = reg_of line_no r; return_to = next })
  | [ Ident "icall"; Punct '('; Ident r; Punct ')'; Ident "ra"; Punct '='; Ident r2 ] ->
    Some
      (Prog.Call_indirect
         { ra = reg_of line_no r2; rb = reg_of line_no r; return_to = next })
  | [ Ident "ijump"; Punct '('; Ident r; Punct ')' ] ->
    Some (Prog.Jump_indirect { rb = reg_of line_no r; table = None })
  | [ Ident "ijump"; Punct '('; Ident r; Punct ')'; Ident "table"; Num tid ] ->
    Some (Prog.Jump_indirect { rb = reg_of line_no r; table = Some tid })
  | [ Ident "ret" ] -> Some (Prog.Return { rb = Reg.ra })
  | [ Ident "ret"; Punct '('; Ident r; Punct ')' ] ->
    Some (Prog.Return { rb = reg_of line_no r })
  | [ Ident "halt" ] -> Some Prog.No_return
  | _ -> None

type line = { no : int; toks : token list }

let lines_of_string src =
  String.split_on_char '\n' src
  |> List.mapi (fun i s -> { no = i + 1; toks = tokenize (i + 1) s })
  |> List.filter (fun l -> l.toks <> [])

(* Parse the body of one function (after "func NAME {") up to "}". *)
let parse_func_body name lines =
  let blocks = ref [] in
  let tables = ref [] in
  let current : (int * Prog.item list ref * Prog.term option ref) option ref = ref None in
  let flush_block () =
    match !current with
    | None -> ()
    | Some (idx, items, term) ->
      let term =
        match !term with Some t -> t | None -> Prog.Fallthrough (idx + 1)
      in
      blocks := (idx, { Prog.Block.items = List.rev !items; term }) :: !blocks;
      current := None
  in
  let rec go = function
    | [] -> fail 0 "unexpected end of input in func %s (missing '}')" name
    | { no; toks } :: rest -> (
      match toks with
      | [ Punct '}' ] ->
        flush_block ();
        rest
      | Ident label :: Punct ':' :: [] when String.length label >= 2 && label.[0] = '.' ->
        flush_block ();
        let idx = block_ref no (Ident label) in
        let expected = List.length !blocks in
        if idx <> expected then fail no "expected block .%d, got .%d" expected idx;
        current := Some (idx, ref [], ref None);
        go rest
      | Ident "table" :: Num tid :: Punct ':' :: entries ->
        flush_block ();
        if tid <> List.length !tables then fail no "tables must be declared in order";
        let entries =
          List.map (fun e -> block_ref no e) entries
        in
        tables := Array.of_list entries :: !tables;
        go rest
      | _ -> (
        match !current with
        | None -> fail no "instruction outside a block in func %s" name
        | Some (idx, items, term) -> (
          if !term <> None then fail no "instruction after terminator in block .%d" idx;
          match parse_term no toks ~next:(idx + 1) with
          | Some t ->
            term := Some t;
            go rest
          | None ->
            let parsed = parse_items no toks in
            items := List.rev_append parsed !items;
            go rest)))
  in
  let rest = go lines in
  let blocks =
    List.rev !blocks |> List.map snd |> Array.of_list
  in
  ( { Prog.Func.name; blocks; tables = Array.of_list (List.rev !tables) }, rest )

let parse_funcs lines =
  let entry = ref None in
  let data_words = ref 0 in
  let data_init = ref [] in
  let funcs = ref [] in
  let rec go = function
    | [] -> ()
    | { no; toks } :: rest -> (
      match toks with
      | [ Ident ".entry"; Ident name ] ->
        entry := Some name;
        go rest
      | [ Ident ".data"; Num n ] ->
        data_words := n;
        go rest
      | [ Ident ".init"; Num off; Num v ] ->
        data_init := (off, v land Word.mask) :: !data_init;
        go rest
      | [ Ident "func"; Ident name; Punct '{' ] ->
        let f, rest = parse_func_body name rest in
        funcs := f :: !funcs;
        go rest
      | _ -> fail no "expected directive or function definition")
  in
  go lines;
  let entry =
    match !entry with
    | Some e -> e
    | None -> (
      match List.rev !funcs with
      | f :: _ -> f.Prog.Func.name
      | [] -> fail 0 "empty program")
  in
  {
    Prog.funcs = List.rev !funcs;
    entry;
    data_words = !data_words;
    data_init = List.rev !data_init;
  }

let parse_program src =
  match parse_funcs (lines_of_string src) with
  | prog -> (
    match Prog.validate prog with Ok () -> Ok prog | Error e -> Error e)
  | exception Parse_error (no, msg) -> Error (Printf.sprintf "line %d: %s" no msg)

let parse_func src =
  match lines_of_string src with
  | { no; toks = [ Ident "func"; Ident name; Punct '{' ] } :: rest -> (
    ignore no;
    match parse_func_body name rest with
    | f, [] -> Ok f
    | _, { no; _ } :: _ -> Error (Printf.sprintf "line %d: trailing input" no)
    | exception Parse_error (no, msg) -> Error (Printf.sprintf "line %d: %s" no msg))
  | { no; _ } :: _ -> Error (Printf.sprintf "line %d: expected 'func NAME {'" no)
  | [] -> Error "empty input"
  | exception Parse_error (no, msg) -> Error (Printf.sprintf "line %d: %s" no msg)

(* Rendering back to parseable source. *)

let render_item ppf = function
  | Prog.Instr (Instr.Sys code) -> (
    match Syscall.of_code code with
    | Some sc -> Format.fprintf ppf "sys %s" (Syscall.name sc)
    | None -> Format.fprintf ppf "sys %d" code)
  | Prog.Instr i -> Instr.pp ppf i
  | Prog.Load_addr (r, Prog.Func_addr f) -> Format.fprintf ppf "la %a, &%s" Reg.pp r f
  | Prog.Load_addr (r, Prog.Table_addr tid) ->
    Format.fprintf ppf "la %a, &table%d" Reg.pp r tid

let render_term ppf (t : Prog.term) ~index =
  match t with
  | Prog.Fallthrough d when d = index + 1 -> ()
  | Prog.Fallthrough d -> Format.fprintf ppf "    goto .%d@," d
  | Prog.Jump d -> Format.fprintf ppf "    goto .%d@," d
  | Prog.Branch (c, r, d1, d2) ->
    let cname = List.find (fun (_, c') -> c' = c) conds |> fst in
    Format.fprintf ppf "    if %s %a goto .%d else .%d@," cname Reg.pp r d1 d2
  | Prog.Call { ra; callee; _ } ->
    if ra = Reg.ra then Format.fprintf ppf "    call %s@," callee
    else Format.fprintf ppf "    call %s ra=%a@," callee Reg.pp ra
  | Prog.Call_indirect { ra; rb; _ } ->
    if ra = Reg.ra then Format.fprintf ppf "    icall (%a)@," Reg.pp rb
    else Format.fprintf ppf "    icall (%a) ra=%a@," Reg.pp rb Reg.pp ra
  | Prog.Jump_indirect { rb; table = Some tid } ->
    Format.fprintf ppf "    ijump (%a) table %d@," Reg.pp rb tid
  | Prog.Jump_indirect { rb; table = None } ->
    Format.fprintf ppf "    ijump (%a)@," Reg.pp rb
  | Prog.Return { rb } ->
    if rb = Reg.ra then Format.fprintf ppf "    ret@,"
    else Format.fprintf ppf "    ret (%a)@," Reg.pp rb
  | Prog.No_return -> Format.fprintf ppf "    halt@,"

let pp_program ppf (p : Prog.t) =
  Format.fprintf ppf "@[<v>.entry %s@," p.entry;
  if p.data_words > 0 then Format.fprintf ppf ".data %d@," p.data_words;
  List.iter (fun (off, v) -> Format.fprintf ppf ".init %d %d@," off v) p.data_init;
  List.iter
    (fun (f : Prog.Func.t) ->
      Format.fprintf ppf "@,func %s {@," f.name;
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          Format.fprintf ppf "  .%d:@," i;
          List.iter (fun it -> Format.fprintf ppf "    %a@," render_item it) b.items;
          render_term ppf b.term ~index:i)
        f.blocks;
      Array.iteri
        (fun tid tbl ->
          Format.fprintf ppf "  table %d:%s@," tid
            (String.concat ""
               (Array.to_list (Array.map (fun d -> Printf.sprintf " .%d" d) tbl))))
        f.tables;
      Format.fprintf ppf "}@,")
    p.funcs;
  Format.fprintf ppf "@]"

let disassemble words ~base =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i w ->
      let addr = base + (4 * i) in
      (match Instr.decode w with
      | Ok ins -> Buffer.add_string buf (Printf.sprintf "%08x:  %s" addr (Instr.to_string ins))
      | Error _ -> Buffer.add_string buf (Printf.sprintf "%08x:  .word 0x%08x" addr w));
      Buffer.add_char buf '\n')
    words;
  Buffer.contents buf
