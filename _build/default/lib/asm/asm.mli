(** A textual assembler for SQ32 programs.

    The syntax mirrors the {!Prog} structure — functions of labelled basic
    blocks with explicit terminators — so tests and examples can write small
    programs without going through the MiniC front end:

    {v
    ; a comment
    .entry main
    .data 16
    .init 0 42

    func main {
      .0:
        lda a0, 7(zero)
        call double
      .1:
        mov v0, a0
        sys exit
        halt
    }

    func double {
      .0:
        add a0, a0, v0
        ret
    }
    v}

    Blocks are declared as [.N:] in order.  The last line of a block may be
    a terminator:

    - [goto .N]
    - [if COND REG goto .N else .M] with [COND] one of
      [eq ne lt le gt ge] (register compared against zero)
    - [call NAME] (optionally [call NAME ra=REG])
    - [icall (REG)] (optionally with [ra=REG])
    - [ijump (REG)] or [ijump (REG) table N]
    - [ret] (returns through [ra]) or [ret (REG)]
    - [halt] (control does not leave the block; it must end in a
      non-returning syscall)

    A block without a terminator line falls through to the next block.

    Instructions use Alpha-style operand order (sources first):
    [add RA, RB, RC] / [add RA, #IMM, RC]; [ldw RA, DISP(RB)];
    [lda RA, DISP(RB)]; [sys NAME].  Pseudo-instructions: [mov RA, RC],
    [li RC, VALUE] (expands to [lda]/[ldah]), [la RC, &NAME] and
    [la RC, &tableN] (code-address loads). *)

val parse_program : string -> (Prog.t, string) result
(** Parse and validate a whole program.  Errors carry a line number. *)

val parse_func : string -> (Prog.Func.t, string) result
(** Parse a single [func NAME { ... }] definition. *)

val pp_program : Format.formatter -> Prog.t -> unit
(** Render a program back to parseable source. *)

val disassemble : int array -> base:int -> string
(** Disassemble raw words for debugging; undecodable words are shown as
    [.word 0x...]. *)
