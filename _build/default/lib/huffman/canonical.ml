type t = {
  n : int array;  (* n.(i) = number of codewords of length i; n.(0) = 0 *)
  d : int array;  (* symbols in codeword order *)
  enc : (int, int * int) Hashtbl.t;
  max_len : int;
}

let of_lengths lengths =
  let sorted = List.sort (fun (s1, l1) (s2, l2) -> compare (l1, s1) (l2, s2)) lengths in
  let max_len = List.fold_left (fun acc (_, l) -> max acc l) 0 sorted in
  let n = Array.make (max_len + 1) 0 in
  List.iter
    (fun (_, l) ->
      if l < 1 then invalid_arg "Canonical.of_lengths: length < 1";
      n.(l) <- n.(l) + 1)
    sorted;
  let d = Array.of_list (List.map fst sorted) in
  (* First codeword of each length: b.(1) = 0, b.(i) = 2 (b.(i-1) + n.(i-1)). *)
  let b = Array.make (max_len + 2) 0 in
  for i = 2 to max_len do
    b.(i) <- 2 * (b.(i - 1) + n.(i - 1))
  done;
  let enc = Hashtbl.create (Array.length d) in
  let next = Array.copy b in
  List.iter
    (fun (s, l) ->
      Hashtbl.replace enc s (next.(l), l);
      next.(l) <- next.(l) + 1)
    sorted;
  { n; d; enc; max_len }

let of_freqs freqs = of_lengths (Huffman.code_lengths freqs)
let symbol_count t = Array.length t.d
let max_length t = t.max_len
let counts t = Array.copy t.n
let symbols t = Array.copy t.d
let codeword t s = Hashtbl.find_opt t.enc s

let encode t w s =
  match Hashtbl.find_opt t.enc s with
  | Some (code, len) -> Bitio.Writer.put w ~bits:len code
  | None -> invalid_arg (Printf.sprintf "Canonical.encode: symbol %d not in alphabet" s)

(* The paper's DECODE(), with N.(0) = 0:
     v <- 0, b <- 0, j <- 0, i <- 0
     do  v <- 2v + NEXTBIT(); b <- 2(b + N[i]); j <- j + N[i]; i <- i + 1
     while (v >= b + N[i])
     return D[j + v - b]                                                   *)
let decode t r =
  if Array.length t.d = 0 then failwith "Canonical.decode: empty code";
  let v = ref 0 and b = ref 0 and j = ref 0 and i = ref 0 in
  let continue = ref true in
  while !continue do
    v := (2 * !v) + Bitio.Reader.next_bit r;
    b := 2 * (!b + t.n.(!i));
    j := !j + t.n.(!i);
    incr i;
    if !v < !b + t.n.(!i) then continue := false
    else if !i >= t.max_len then failwith "Canonical.decode: corrupt stream"
  done;
  (t.d.(!j + !v - !b), !i)

let table_bits ~value_bits t =
  6 + (16 * t.max_len) + (value_bits * Array.length t.d)
