(* A small leftist-ish pairing heap specialised to (weight, tree) pairs.
   The tie-break on insertion order keeps construction deterministic. *)

type tree = Leaf of int | Node of tree * tree

module Heap = struct
  type elt = { weight : int; order : int; tree : tree }
  (* Sorted association list; inputs are small (a few thousand symbols at
     most), so O(n) insertion is fine. *)
  type t = elt list ref

  let create () : t = ref []

  let add h e =
    let rec insert = function
      | [] -> [ e ]
      | x :: rest ->
        if (e.weight, e.order) < (x.weight, x.order) then e :: x :: rest
        else x :: insert rest
    in
    h := insert !h

  let pop h =
    match !h with
    | [] -> None
    | x :: rest ->
      h := rest;
      Some x

  let size h = List.length !h
end

let rec assign_lengths depth tree acc =
  match tree with
  | Leaf s -> (s, max 1 depth) :: acc
  | Node (l, r) -> assign_lengths (depth + 1) l (assign_lengths (depth + 1) r acc)

let code_lengths freqs =
  List.iter
    (fun (_, c) -> if c <= 0 then invalid_arg "Huffman.code_lengths: count <= 0")
    freqs;
  match freqs with
  | [] -> []
  | _ :: _ ->
    let h = Heap.create () in
    let next_order = ref 0 in
    let order () =
      incr next_order;
      !next_order
    in
    List.iter
      (fun (s, c) -> Heap.add h { Heap.weight = c; order = order (); tree = Leaf s })
      (List.sort compare freqs);
    while Heap.size h > 1 do
      match (Heap.pop h, Heap.pop h) with
      | Some a, Some b ->
        Heap.add h
          {
            Heap.weight = a.Heap.weight + b.Heap.weight;
            order = order ();
            tree = Node (a.Heap.tree, b.Heap.tree);
          }
      | _ -> assert false
    done;
    let root = match Heap.pop h with Some e -> e.Heap.tree | None -> assert false in
    assign_lengths 0 root []
    |> List.sort (fun (s1, l1) (s2, l2) -> compare (l1, s1) (l2, s2))

let entropy_bits freqs =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 freqs in
  if total = 0 then 0.0
  else
    List.fold_left
      (fun acc (_, c) ->
        let p = float_of_int c /. float_of_int total in
        acc -. (p *. (log p /. log 2.0)))
      0.0 freqs

let total_encoded_bits freqs =
  let lengths = code_lengths freqs in
  let len_of = Hashtbl.create 64 in
  List.iter (fun (s, l) -> Hashtbl.replace len_of s l) lengths;
  List.fold_left (fun acc (s, c) -> acc + (c * Hashtbl.find len_of s)) 0 freqs
