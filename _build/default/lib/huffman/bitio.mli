(** Bit-level I/O.  Bits are written and read MSB-first within each byte,
    matching the order in which canonical Huffman codewords are compared in
    the DECODE loop. *)

module Writer : sig
  type t

  val create : unit -> t

  val put : t -> bits:int -> int -> unit
  (** Append the low [bits] bits of the value, most significant first.
      [bits] may be 0 (writes nothing). *)

  val put_bit : t -> int -> unit
  val length_bits : t -> int

  val contents : t -> string
  (** The bit string padded with zero bits to a whole number of bytes. *)
end

module Reader : sig
  type t

  val of_string : ?start_bit:int -> string -> t

  val next_bit : t -> int
  (** @raise Invalid_argument when reading past the end. *)

  val read : t -> bits:int -> int
  val pos : t -> int
  (** Current position in bits from the start of the string. *)

  val seek : t -> int -> unit
  val remaining_bits : t -> int
end
