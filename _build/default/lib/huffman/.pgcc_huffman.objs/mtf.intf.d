lib/huffman/mtf.mli:
