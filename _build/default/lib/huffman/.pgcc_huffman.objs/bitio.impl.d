lib/huffman/bitio.ml: Buffer Char String
