lib/huffman/lzss.mli:
