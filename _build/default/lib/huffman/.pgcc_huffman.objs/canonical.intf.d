lib/huffman/canonical.mli: Bitio
