lib/huffman/huffman.mli:
