lib/huffman/bitio.mli:
