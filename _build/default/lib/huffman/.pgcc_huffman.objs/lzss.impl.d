lib/huffman/lzss.ml: Buffer Char Hashtbl List Option String
