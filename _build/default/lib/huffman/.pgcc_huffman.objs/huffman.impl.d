lib/huffman/huffman.ml: Hashtbl List
