lib/huffman/mtf.ml: List
