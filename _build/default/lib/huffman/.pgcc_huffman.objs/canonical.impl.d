lib/huffman/canonical.ml: Array Bitio Hashtbl Huffman List Printf
