let move_to_front x table =
  let rec remove acc = function
    | [] -> invalid_arg "Mtf: symbol not in alphabet"
    | y :: rest -> if y = x then List.rev_append acc rest else remove (y :: acc) rest
  in
  x :: remove [] table

let encode ~alphabet symbols =
  let rec go table acc = function
    | [] -> List.rev acc
    | s :: rest ->
      let rank =
        let rec find i = function
          | [] -> invalid_arg "Mtf.encode: symbol not in alphabet"
          | y :: ys -> if y = s then i else find (i + 1) ys
        in
        find 0 table
      in
      go (move_to_front s table) (rank :: acc) rest
  in
  go alphabet [] symbols

let decode ~alphabet ranks =
  let rec go table acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let s =
        match List.nth_opt table r with
        | Some s -> s
        | None -> invalid_arg "Mtf.decode: rank out of range"
      in
      go (move_to_front s table) (s :: acc) rest
  in
  go alphabet [] ranks
