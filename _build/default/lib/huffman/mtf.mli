(** Move-to-front coding, the optional pre-pass of the paper's Section 3
    ("we can achieve somewhat better compression for some streams using
    move-to-front coding prior to Huffman coding").

    The coder transforms a symbol sequence into a sequence of ranks relative
    to a recency list seeded with [alphabet]; both sides must use the same
    alphabet (in practice: the sorted distinct symbols of the stream, which
    travel with the compressed data as the [D] array does). *)

val encode : alphabet:int list -> int list -> int list
(** @raise Invalid_argument if a symbol is not in the alphabet. *)

val decode : alphabet:int list -> int list -> int list
(** Inverse of {!encode}.  @raise Invalid_argument on an out-of-range
    rank. *)
