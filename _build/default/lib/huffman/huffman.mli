(** Huffman code construction: from symbol frequencies to optimal codeword
    lengths.  Only the lengths matter — the actual codewords are assigned
    canonically by {!Canonical}. *)

val code_lengths : (int * int) list -> (int * int) list
(** [code_lengths freqs] takes [(symbol, count)] pairs (counts > 0, symbols
    distinct) and returns [(symbol, length)] pairs for an optimal prefix
    code.  A single-symbol alphabet gets length 1; an empty input yields
    [].  The result is sorted by (length, symbol). *)

val entropy_bits : (int * int) list -> float
(** Shannon entropy of the frequency distribution, in bits per symbol. *)

val total_encoded_bits : (int * int) list -> int
(** Total bits needed to encode the whole input with the returned code:
    [sum count*length]. *)
