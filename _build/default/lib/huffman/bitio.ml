module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nacc : int; mutable bits : int }

  let create () = { buf = Buffer.create 256; acc = 0; nacc = 0; bits = 0 }

  let put_bit t b =
    t.acc <- (t.acc lsl 1) lor (b land 1);
    t.nacc <- t.nacc + 1;
    t.bits <- t.bits + 1;
    if t.nacc = 8 then begin
      Buffer.add_char t.buf (Char.chr t.acc);
      t.acc <- 0;
      t.nacc <- 0
    end

  let put t ~bits v =
    if bits < 0 || bits > 62 then invalid_arg "Bitio.Writer.put: bad width";
    for i = bits - 1 downto 0 do
      put_bit t ((v lsr i) land 1)
    done

  let length_bits t = t.bits

  let contents t =
    let s = Buffer.contents t.buf in
    if t.nacc = 0 then s
    else s ^ String.make 1 (Char.chr (t.acc lsl (8 - t.nacc)))
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string ?(start_bit = 0) data = { data; pos = start_bit }

  let next_bit t =
    let byte = t.pos lsr 3 in
    if byte >= String.length t.data then invalid_arg "Bitio.Reader: past end of stream";
    let bit = (Char.code t.data.[byte] lsr (7 - (t.pos land 7))) land 1 in
    t.pos <- t.pos + 1;
    bit

  let read t ~bits =
    let v = ref 0 in
    for _ = 1 to bits do
      v := (!v lsl 1) lor next_bit t
    done;
    !v

  let pos t = t.pos
  let seek t p = t.pos <- p
  let remaining_bits t = (8 * String.length t.data) - t.pos
end
