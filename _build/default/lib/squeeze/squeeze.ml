type stats = {
  funcs_removed : int;
  blocks_removed : int;
  instrs_removed : int;
  instrs_before : int;
  instrs_after : int;
}

(* ------------------------------------------------------------------ *)
(* Unreachable-function removal: closure over direct calls plus every
   address-taken function (a potential indirect-call target). *)

let live_functions (p : Prog.t) =
  let cg = Cfg.Callgraph.of_prog p in
  let live = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue f =
    if not (Hashtbl.mem live f) then begin
      Hashtbl.replace live f ();
      Queue.push f queue
    end
  in
  enqueue p.entry;
  while not (Queue.is_empty queue) do
    let f = Queue.pop queue in
    List.iter enqueue (Cfg.Callgraph.callees cg f);
    (* Any function whose address is taken inside a live function may be
       called indirectly; conservatively keep all address-taken functions
       referenced anywhere live.  We approximate by keeping address-taken
       functions once their taker is live. *)
    match Prog.find_func p f with
    | None -> ()
    | Some func ->
      Array.iter
        (fun (b : Prog.Block.t) ->
          List.iter
            (function
              | Prog.Load_addr (_, Prog.Func_addr g) -> enqueue g
              | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
            b.items)
        func.blocks
  done;
  live

(* ------------------------------------------------------------------ *)
(* Per-function unreachable-block removal, with block and table
   renumbering. *)

let remove_unreachable_blocks (f : Prog.Func.t) : Prog.Func.t =
  let reach = Cfg.reachable f in
  let n = Array.length f.blocks in
  if Array.for_all Fun.id reach then f
  else begin
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if reach.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let live_tables =
      (* A table is kept iff some reachable block still jumps through it or
         materialises its address. *)
      Array.mapi
        (fun tid _ ->
          Array.exists Fun.id
            (Array.mapi
               (fun i (b : Prog.Block.t) ->
                 reach.(i)
                 && (List.exists
                       (function
                         | Prog.Load_addr (_, Prog.Table_addr t) -> t = tid
                         | Prog.Load_addr (_, Prog.Func_addr _) | Prog.Instr _ -> false)
                       b.items
                    ||
                    match b.term with
                    | Prog.Jump_indirect { table = Some t; _ } -> t = tid
                    | _ -> false))
               f.blocks))
        f.tables
    in
    let table_remap = Array.make (Array.length f.tables) (-1) in
    let tnext = ref 0 in
    Array.iteri
      (fun tid live ->
        if live then begin
          table_remap.(tid) <- !tnext;
          incr tnext
        end)
      live_tables;
    let remap_dest what d =
      if remap.(d) < 0 then
        failwith (Printf.sprintf "squeeze: %s target .%d became unreachable" what d)
      else remap.(d)
    in
    let blocks =
      Array.to_list f.blocks
      |> List.filteri (fun i _ -> reach.(i))
      |> List.map (fun (b : Prog.Block.t) ->
             let items =
               List.map
                 (function
                   | Prog.Load_addr (r, Prog.Table_addr tid) ->
                     Prog.Load_addr (r, Prog.Table_addr table_remap.(tid))
                   | item -> item)
                 b.items
             in
             let term =
               match b.term with
               | Prog.Fallthrough d -> Prog.Fallthrough (remap_dest "fallthrough" d)
               | Prog.Jump d -> Prog.Jump (remap_dest "jump" d)
               | Prog.Branch (c, r, t, fl) ->
                 Prog.Branch (c, r, remap_dest "branch" t, remap_dest "branch" fl)
               | Prog.Call c ->
                 Prog.Call { c with return_to = remap_dest "call" c.return_to }
               | Prog.Call_indirect c ->
                 Prog.Call_indirect { c with return_to = remap_dest "call" c.return_to }
               | Prog.Jump_indirect { rb; table } ->
                 Prog.Jump_indirect
                   { rb; table = Option.map (fun t -> table_remap.(t)) table }
               | Prog.Return _ | Prog.No_return -> b.term
             in
             { Prog.Block.items; term })
      |> Array.of_list
    in
    let tables =
      Array.to_list f.tables
      |> List.filteri (fun tid _ -> live_tables.(tid))
      |> List.map (Array.map (remap_dest "table"))
      |> Array.of_list
    in
    { f with blocks; tables }
  end

let remove_nops (f : Prog.Func.t) : Prog.Func.t =
  let blocks =
    Array.map
      (fun (b : Prog.Block.t) ->
        {
          b with
          Prog.Block.items =
            List.filter
              (function Prog.Instr Instr.Nop -> false | Prog.Instr _ | Prog.Load_addr _ -> true)
              b.items;
        })
      f.blocks
  in
  { f with blocks }

(* ------------------------------------------------------------------ *)
(* Local copy propagation + sp-slot store-to-load forwarding. *)

module Local = struct
  type state = {
    copies : int array;  (* canonical source register of each register *)
    slots : (int, Reg.t) Hashtbl.t;  (* sp offset -> register holding value *)
  }

  let create () = { copies = Array.init Reg.count Fun.id; slots = Hashtbl.create 16 }

  let resolve st r = if r = Reg.zero then Reg.zero else st.copies.(r)

  (* Register [d] is redefined: drop copy facts and slot facts involving it. *)
  let kill st d =
    if d <> Reg.zero then begin
      st.copies.(d) <- d;
      Array.iteri (fun r src -> if src = d && r <> d then st.copies.(r) <- r) st.copies;
      Hashtbl.iter (fun off r -> if r = d then Hashtbl.remove st.slots off) st.slots;
      if d = Reg.sp then Hashtbl.reset st.slots
    end

  let rewrite_operand st = function
    | Instr.Reg r -> Instr.Reg (resolve st r)
    | Instr.Imm v -> Instr.Imm v

  (* Rewrite one item's uses, update the state, and return the replacement
     items ([] to delete, singleton otherwise). *)
  let step st (item : Prog.item) : Prog.item list =
    match item with
    | Prog.Load_addr (r, sym) ->
      kill st r;
      [ Prog.Load_addr (r, sym) ]
    | Prog.Instr ins -> (
      match ins with
      | Instr.Nop | Instr.Sentinel -> [ item ]
      | Instr.Sys code ->
        kill st Reg.rv;
        [ Prog.Instr (Instr.Sys code) ]
      | Instr.Lda { ra; rb; disp } ->
        let rb = resolve st rb in
        kill st ra;
        [ Prog.Instr (Instr.Lda { ra; rb; disp }) ]
      | Instr.Ldah { ra; rb; disp } ->
        let rb = resolve st rb in
        kill st ra;
        [ Prog.Instr (Instr.Ldah { ra; rb; disp }) ]
      | Instr.Opr { op = Instr.Or; ra; rb = Instr.Reg z; rc } when z = Reg.zero ->
        (* A register move. *)
        let src = resolve st ra in
        if src = rc then begin
          kill st rc;
          if rc = Reg.zero then []
          else begin
            (* mov r, r after rewriting: delete, but the value is unchanged
               so no kill is actually needed; be conservative. *)
            []
          end
        end
        else begin
          kill st rc;
          if rc <> Reg.zero && src <> Reg.zero then st.copies.(rc) <- src;
          [ Prog.Instr (Instr.Opr { op = Instr.Or; ra = src; rb = Instr.Reg Reg.zero; rc }) ]
        end
      | Instr.Opr { op; ra; rb; rc } ->
        let ra = resolve st ra in
        let rb = rewrite_operand st rb in
        kill st rc;
        [ Prog.Instr (Instr.Opr { op; ra; rb; rc }) ]
      | Instr.Mem { op = (Instr.Ldw | Instr.Ldb) as op; ra; rb; disp } -> (
        let rb = resolve st rb in
        match op with
        | Instr.Ldw when rb = Reg.sp && Hashtbl.mem st.slots disp ->
          let src = Hashtbl.find st.slots disp in
          if src = ra then []
          else begin
            kill st ra;
            if ra <> Reg.zero then st.copies.(ra) <- resolve st src;
            [
              Prog.Instr
                (Instr.Opr { op = Instr.Or; ra = src; rb = Instr.Reg Reg.zero; rc = ra });
            ]
          end
        | _ ->
          kill st ra;
          [ Prog.Instr (Instr.Mem { op; ra; rb; disp }) ])
      | Instr.Mem { op = (Instr.Stw | Instr.Stb) as op; ra; rb; disp } ->
        let ra = resolve st ra in
        let rb = resolve st rb in
        if rb = Reg.sp then begin
          if op = Instr.Stw then Hashtbl.replace st.slots disp ra
          else Hashtbl.remove st.slots disp
        end
        else
          (* A store through an arbitrary pointer may alias the stack
             frame (MiniC permits &local). *)
          Hashtbl.reset st.slots;
        [ Prog.Instr (Instr.Mem { op; ra; rb; disp }) ]
      | Instr.Cbr _ | Instr.Br _ | Instr.Bsr _ | Instr.Bsrx _ | Instr.Jmp _
      | Instr.Jsr _ | Instr.Ret _ ->
        (* Control transfers never appear as block items. *)
        [ item ])

  let rewrite_term st (t : Prog.term) : Prog.term =
    match t with
    | Prog.Branch (c, r, d1, d2) -> Prog.Branch (c, resolve st r, d1, d2)
    | Prog.Call_indirect c -> Prog.Call_indirect { c with rb = resolve st c.rb }
    | Prog.Jump_indirect j -> Prog.Jump_indirect { j with rb = resolve st j.rb }
    | Prog.Return r -> Prog.Return { rb = resolve st r.rb }
    | Prog.Fallthrough _ | Prog.Jump _ | Prog.Call _ | Prog.No_return -> t

  let run_block (b : Prog.Block.t) : Prog.Block.t =
    let st = create () in
    let items = List.concat_map (step st) b.items in
    { Prog.Block.items; term = rewrite_term st b.term }
end

(* ------------------------------------------------------------------ *)
(* Liveness-based dead-instruction elimination. *)

let is_pure_def (item : Prog.item) : Reg.t option =
  match item with
  | Prog.Load_addr (r, _) -> Some r
  | Prog.Instr ins -> (
    match ins with
    | Instr.Lda { ra; _ } | Instr.Ldah { ra; _ } -> Some ra
    | Instr.Opr { op = Instr.Div | Instr.Rem; _ } -> None  (* may trap *)
    | Instr.Opr { rc; _ } -> Some rc
    | Instr.Mem { op = Instr.Ldw | Instr.Ldb; ra; _ } -> Some ra
    | Instr.Mem { op = Instr.Stw | Instr.Stb; _ }
    | Instr.Sys _ | Instr.Nop | Instr.Sentinel | Instr.Cbr _ | Instr.Br _
    | Instr.Bsr _ | Instr.Bsrx _ | Instr.Jmp _ | Instr.Jsr _ | Instr.Ret _ ->
      None)

let dce_func (f : Prog.Func.t) : Prog.Func.t * int =
  let lv = Cfg.liveness f in
  let removed = ref 0 in
  let blocks =
    Array.mapi
      (fun i (b : Prog.Block.t) ->
        let tdefs, tuses = Cfg.term_defs_uses b.term in
        let live0 = Cfg.Regset.union tuses (Cfg.Regset.diff lv.Cfg.live_out.(i) tdefs) in
        let rev_items = List.rev b.items in
        let kept, _ =
          List.fold_left
            (fun (kept, live) item ->
              let defs, uses = Cfg.item_defs_uses item in
              match is_pure_def item with
              | Some r when r = Reg.zero ->
                incr removed;
                (kept, live)
              | Some r when not (Cfg.Regset.mem r live) ->
                incr removed;
                (kept, live)
              | Some _ | None ->
                (item :: kept, Cfg.Regset.union uses (Cfg.Regset.diff live defs)))
            ([], live0) rev_items
        in
        { b with Prog.Block.items = kept })
      f.blocks
  in
  ({ f with blocks }, !removed)

(* ------------------------------------------------------------------ *)
(* Branch simplification and jump chaining. *)

let simplify_branches (f : Prog.Func.t) : Prog.Func.t =
  let n = Array.length f.blocks in
  (* Follow chains of empty blocks ending in an unconditional jump. *)
  let rec chase visited d =
    if List.mem d visited || d < 0 || d >= n then d
    else
      let b = f.blocks.(d) in
      if b.Prog.Block.items <> [] then d
      else
        match b.Prog.Block.term with
        | Prog.Jump e | Prog.Fallthrough e -> chase (d :: visited) e
        | _ -> d
  in
  let chase d = chase [] d in
  let blocks =
    Array.mapi
      (fun i (b : Prog.Block.t) ->
        let term =
          match b.Prog.Block.term with
          | Prog.Jump d ->
            let d = chase d in
            if d = i + 1 then Prog.Fallthrough d else Prog.Jump d
          | Prog.Fallthrough d -> Prog.Fallthrough (chase d)
          | Prog.Branch (c, r, t, fl) ->
            let t = chase t and fl = chase fl in
            if t = fl then if t = i + 1 then Prog.Fallthrough t else Prog.Jump t
            else Prog.Branch (c, r, t, fl)
          | t -> t
        in
        { b with Prog.Block.term = term })
      f.blocks
  in
  let tables = Array.map (Array.map chase) f.tables in
  { f with blocks; tables }

(* ------------------------------------------------------------------ *)

let map_funcs p g = { p with Prog.funcs = List.map g p.Prog.funcs }

let remove_unreachable (p : Prog.t) : Prog.t =
  let live = live_functions p in
  let p = { p with Prog.funcs = List.filter (fun (f : Prog.Func.t) -> Hashtbl.mem live f.name) p.Prog.funcs } in
  map_funcs p (fun f -> remove_nops (remove_unreachable_blocks f))

let one_round (p : Prog.t) : Prog.t * int =
  let p = remove_unreachable p in
  let removed = ref 0 in
  let p =
    map_funcs p (fun f ->
        let f = { f with Prog.Func.blocks = Array.map Local.run_block f.Prog.Func.blocks } in
        let f, r = dce_func f in
        removed := !removed + r;
        simplify_branches f)
  in
  (remove_unreachable p, !removed)

let run (p : Prog.t) : Prog.t * stats =
  let instrs_before = Prog.instr_count p in
  let funcs_before = List.length p.Prog.funcs in
  let blocks_before =
    List.fold_left (fun acc (f : Prog.Func.t) -> acc + Array.length f.blocks) 0 p.Prog.funcs
  in
  let rec fixpoint p removed rounds =
    if rounds = 0 then (p, removed)
    else begin
      let p', r = one_round p in
      if r = 0 && Prog.instr_count p' = Prog.instr_count p then (p', removed)
      else fixpoint p' (removed + r) (rounds - 1)
    end
  in
  let p', instrs_removed = fixpoint p 0 6 in
  let blocks_after =
    List.fold_left (fun acc (f : Prog.Func.t) -> acc + Array.length f.blocks) 0 p'.Prog.funcs
  in
  ( p',
    {
      funcs_removed = funcs_before - List.length p'.Prog.funcs;
      blocks_removed = blocks_before - blocks_after;
      instrs_removed;
      instrs_before;
      instrs_after = Prog.instr_count p';
    } )

let pp_stats ppf s =
  Format.fprintf ppf
    "squeeze: %d -> %d instructions (%.1f%%), %d funcs and %d blocks removed"
    s.instrs_before s.instrs_after
    (100.0 *. float_of_int (s.instrs_before - s.instrs_after) /. float_of_int (max 1 s.instrs_before))
    s.funcs_removed s.blocks_removed
