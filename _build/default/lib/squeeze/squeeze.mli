(** A simplified reimplementation of {e squeeze}, the authors' link-time
    code compactor (Debray et al., TOPLAS 2000).  The paper's experimental
    baseline is squeezed code: squash's size reductions are measured
    relative to it, so we reproduce the same frame — our naive MiniC code
    plays the role of [cc -O1] output, and this pass plays squeeze.

    Implemented (a useful subset of the original):
    - unreachable-code elimination (blocks and whole functions, via the
      call graph with address-taken functions kept);
    - no-op elimination;
    - local copy propagation and stack-slot store-to-load forwarding
      (conservative about aliasing: any store through a non-[sp] base
      invalidates all tracked slots);
    - liveness-based dead-instruction elimination;
    - branch simplification and jump chaining.

    Not implemented from the original: procedural abstraction and
    interprocedural strength reduction (they would only move the baseline;
    the squash-relative measurements are unaffected). *)

type stats = {
  funcs_removed : int;
  blocks_removed : int;
  instrs_removed : int;  (** Dead/forwarded instructions deleted. *)
  instrs_before : int;
  instrs_after : int;
}

val run : Prog.t -> Prog.t * stats
(** The full pipeline, iterated to a fixed point (bounded). *)

val remove_unreachable : Prog.t -> Prog.t
(** Only unreachable-code and no-op elimination — this produces the
    "Input" baseline of the paper's Table 1. *)

val pp_stats : Format.formatter -> stats -> unit
