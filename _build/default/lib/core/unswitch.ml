type result = {
  prog : Prog.t;
  rewritten : (string * int) list;
  unmatched : string list;
}

(* The registers the MiniC code generator reserves for address arithmetic;
   they carry no value across block boundaries (the "$at" convention), so
   the chain blocks may clobber them freely. *)
let chain_temp : Reg.t = 27

(* Match the dispatch idiom and return (prefix items, index register). *)
let match_dispatch (b : Prog.Block.t) tid =
  let rec split4 acc = function
    | [ i1; i2; i3; i4 ] -> Some (List.rev acc, i1, i2, i3, i4)
    | x :: rest -> split4 (x :: acc) rest
    | [] -> None
  in
  match split4 [] b.items with
  | Some
      ( prefix,
        Prog.Load_addr (r1, Prog.Table_addr tid'),
        Prog.Instr (Instr.Opr { op = Instr.Sll; ra = idx; rb = Instr.Imm 2; rc = t1 }),
        Prog.Instr (Instr.Opr { op = Instr.Add; ra = a1; rb = Instr.Reg a2; rc = t2 }),
        Prog.Instr (Instr.Mem { op = Instr.Ldw; ra = l1; rb = l2; disp = 0 }) )
    when tid' = tid
         && ((a1 = r1 && a2 = t1) || (a1 = t1 && a2 = r1))
         && l2 = t2
         && (match b.term with
            | Prog.Jump_indirect { rb; _ } -> rb = l1
            | _ -> false) ->
    Some (prefix, idx)
  | Some _ | None -> None

let unswitch_func (f : Prog.Func.t) ~is_cold =
  let n = Array.length f.blocks in
  let rewritten = ref [] in
  let unmatched = ref false in
  (* Which dispatches to rewrite. *)
  let targets = Array.make n None in
  Array.iteri
    (fun i (b : Prog.Block.t) ->
      if is_cold f.name i then
        match b.term with
        | Prog.Jump_indirect { table = Some tid; _ } -> (
          match match_dispatch b tid with
          | Some (prefix, idx) -> targets.(i) <- Some (tid, prefix, idx)
          | None -> unmatched := true)
        | Prog.Jump_indirect { table = None; _ } -> unmatched := true
        | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Call _
        | Prog.Call_indirect _ | Prog.Return _ | Prog.No_return ->
          ())
    f.blocks;
  if !unmatched || Array.for_all Option.is_none targets then
    (f, [], !unmatched)
  else begin
    let new_blocks = ref [] in
    let next_index = ref n in
    let append block =
      new_blocks := block :: !new_blocks;
      incr next_index;
      !next_index - 1
    in
    let removed_tables = Hashtbl.create 4 in
    let blocks =
      Array.mapi
        (fun i (b : Prog.Block.t) ->
          match targets.(i) with
          | None -> b
          | Some (tid, prefix, idx) ->
            Hashtbl.replace removed_tables tid ();
            rewritten := (f.name, i) :: !rewritten;
            let entries = f.tables.(tid) in
            let ncases = Array.length entries in
            let first_chain =
              if ncases = 1 then
                append { Prog.Block.items = []; term = Prog.Jump entries.(0) }
              else begin
                (* Allocate chain blocks contiguously: test blocks for cases
                   0..ncases-2, then a final jump to the last case. *)
                let base = !next_index in
                for k = 0 to ncases - 2 do
                  let fall = base + k + 1 in
                  ignore
                    (append
                       {
                         Prog.Block.items =
                           [
                             Prog.Instr
                               (Instr.Lda { ra = chain_temp; rb = idx; disp = -k });
                           ];
                         term = Prog.Branch (Instr.Eq, chain_temp, entries.(k), fall);
                       })
                done;
                ignore
                  (append { Prog.Block.items = []; term = Prog.Jump entries.(ncases - 1) });
                base
              end
            in
            { Prog.Block.items = prefix; term = Prog.Jump first_chain })
        f.blocks
    in
    let blocks = Array.append blocks (Array.of_list (List.rev !new_blocks)) in
    (* Renumber the surviving tables. *)
    let table_remap = Array.make (Array.length f.tables) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun tid _ ->
        if not (Hashtbl.mem removed_tables tid) then begin
          table_remap.(tid) <- !next;
          incr next
        end)
      f.tables;
    let blocks =
      Array.map
        (fun (b : Prog.Block.t) ->
          let items =
            List.map
              (function
                | Prog.Load_addr (r, Prog.Table_addr t) when table_remap.(t) >= 0 ->
                  Prog.Load_addr (r, Prog.Table_addr table_remap.(t))
                | item -> item)
              b.items
          in
          let term =
            match b.term with
            | Prog.Jump_indirect { rb; table = Some t } when table_remap.(t) >= 0 ->
              Prog.Jump_indirect { rb; table = Some table_remap.(t) }
            | t -> t
          in
          { Prog.Block.items; term })
        blocks
    in
    let tables =
      Array.to_list f.tables
      |> List.filteri (fun tid _ -> not (Hashtbl.mem removed_tables tid))
      |> Array.of_list
    in
    ({ f with blocks; tables }, !rewritten, false)
  end

let run (p : Prog.t) ~is_cold =
  let rewritten = ref [] in
  let unmatched = ref [] in
  let funcs =
    List.map
      (fun f ->
        let f', rw, um = unswitch_func f ~is_cold in
        rewritten := rw @ !rewritten;
        if um then unmatched := f.Prog.Func.name :: !unmatched;
        f')
      p.funcs
  in
  { prog = { p with Prog.funcs }; rewritten = List.rev !rewritten;
    unmatched = List.rev !unmatched }
