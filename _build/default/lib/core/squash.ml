type options = {
  theta : float;
  k_bytes : int;
  gamma : float;
  pack : bool;
  use_buffer_safe : bool;
  unswitch : bool;
  decomp_words : int;
  max_stubs : int;
  codec : Compress.backend;
  regions_strategy : Regions.strategy;
}

let default_options =
  {
    theta = 0.0;
    k_bytes = 512;
    gamma = 0.66;
    pack = true;
    use_buffer_safe = true;
    unswitch = true;
    decomp_words = Rewrite.default_decomp_words;
    max_stubs = Rewrite.default_max_stubs;
    codec = `Split_stream;
    regions_strategy = `Dfs;
  }

type result = {
  squashed : Rewrite.t;
  cold : Cold.t;
  regions : Regions.t;
  buffer_safe : Buffer_safe.t;
  unswitched : (string * int) list;
  excluded_funcs : string list;
  original_words : int;
  squashed_words : int;
  options : options;
}

(* Functions whose code contains a setjmp system call. *)
let detect_setjmp_callers (p : Prog.t) =
  let code = Syscall.to_code Syscall.Setjmp in
  List.filter_map
    (fun (f : Prog.Func.t) ->
      let calls =
        Array.exists
          (fun (b : Prog.Block.t) ->
            List.exists
              (function
                | Prog.Instr (Instr.Sys c) -> c = code
                | Prog.Instr _ | Prog.Load_addr _ -> false)
              b.items)
          f.blocks
      in
      if calls then Some f.name else None)
    p.funcs

(* Functions containing an indirect jump with unknown targets; their blocks
   cannot be moved (the jump could target any of them). *)
let unanalysable_funcs (p : Prog.t) =
  List.filter_map
    (fun (f : Prog.Func.t) ->
      let bad =
        Array.exists
          (fun (b : Prog.Block.t) ->
            match b.term with
            | Prog.Jump_indirect { table = None; _ } -> true
            | Prog.Jump_indirect { table = Some _; _ }
            | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Call _
            | Prog.Call_indirect _ | Prog.Return _ | Prog.No_return ->
              false)
          f.blocks
      in
      if bad then Some f.name else None)
    p.funcs

let run ?(options = default_options) ?(setjmp_callers = []) (p : Prog.t) prof =
  let original_words = Prog.text_words p in
  let cold = Cold.identify p prof ~theta:options.theta in
  (* Unswitch cold analysable dispatches first so the chain blocks join the
     cold set (they have zero recorded frequency). *)
  let unswitch_result =
    if options.unswitch then Unswitch.run p ~is_cold:(Cold.is_cold cold)
    else { Unswitch.prog = p; rewritten = []; unmatched = [] }
  in
  let p = unswitch_result.Unswitch.prog in
  let excluded =
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace tbl p.Prog.entry ();
    List.iter (fun f -> Hashtbl.replace tbl f ()) (detect_setjmp_callers p);
    List.iter (fun f -> Hashtbl.replace tbl f ()) setjmp_callers;
    List.iter (fun f -> Hashtbl.replace tbl f ()) (unanalysable_funcs p);
    (* In fallback mode (no unswitching), dispatch blocks and their tables
       stay in place, which is safe — but a dispatch whose idiom did not
       match in unswitch mode excludes its whole function. *)
    List.iter (fun f -> Hashtbl.replace tbl f ()) unswitch_result.Unswitch.unmatched;
    tbl
  in
  let is_cold f b =
    (* Blocks appended by unswitching have no profile entry: frequency 0,
       hence cold at any θ. *)
    Cold.is_cold cold f b || Profile.freq prof f b = 0
  in
  let compressible f b = (not (Hashtbl.mem excluded f)) && is_cold f b in
  let regions =
    Regions.build p ~compressible
      ~params:
        {
          Regions.k_bytes = options.k_bytes;
          gamma = options.gamma;
          pack = options.pack;
          strategy = options.regions_strategy;
        }
  in
  let has_compressed fname =
    match Prog.find_func p fname with
    | None -> false
    | Some f ->
      let any = ref false in
      Array.iteri
        (fun i _ -> if Regions.block_region regions fname i <> None then any := true)
        f.Prog.Func.blocks;
      !any
  in
  let buffer_safe =
    if options.use_buffer_safe then Buffer_safe.analyze p ~has_compressed
    else begin
      (* With the optimisation disabled, treat everything as unsafe so every
         outgoing call goes through CreateStub. *)
      let t = Buffer_safe.analyze p ~has_compressed:(fun _ -> true) in
      t
    end
  in
  let squashed =
    Rewrite.build p ~regions ~buffer_safe ~decomp_words:options.decomp_words
      ~max_stubs:options.max_stubs ~codec:options.codec ()
  in
  {
    squashed;
    cold;
    regions;
    buffer_safe;
    unswitched = unswitch_result.Unswitch.rewritten;
    excluded_funcs =
      Hashtbl.fold (fun k () acc -> k :: acc) excluded [] |> List.sort String.compare;
    original_words;
    squashed_words = Rewrite.total_words squashed;
    options;
  }

let size_reduction r =
  if r.original_words = 0 then 0.0
  else float_of_int (r.original_words - r.squashed_words) /. float_of_int r.original_words

type size_breakdown = {
  never_compressed : int;
  entry_stubs : int;
  decompressor : int;
  offset_table : int;
  compressed_code : int;
  code_tables : int;
  stub_area : int;
  runtime_buffer : int;
}

let breakdown r =
  let sq = r.squashed in
  {
    never_compressed = Rewrite.never_compressed_words sq - sq.Rewrite.decomp_words;
    entry_stubs = sq.Rewrite.entry_stub_words;
    decompressor = sq.Rewrite.decomp_words;
    offset_table = Rewrite.offset_table_words sq;
    compressed_code = Rewrite.blob_words sq;
    code_tables = Rewrite.code_table_words sq;
    stub_area = sq.Rewrite.max_stubs * 4;
    runtime_buffer = sq.Rewrite.buffer_words;
  }

let compressed_instr_count r = Regions.compressed_instr_count r.squashed.Rewrite.prog r.regions

let gamma_achieved r =
  let sq = r.squashed in
  let compressed_words = Rewrite.blob_words sq + Rewrite.code_table_words sq in
  let original_region_words =
    Array.fold_left
      (fun acc (img : Rewrite.region_image) -> acc + List.length img.Rewrite.stream)
      0 sq.Rewrite.images
  in
  if original_region_words = 0 then 1.0
  else float_of_int compressed_words /. float_of_int original_region_words

let pp_summary ppf r =
  let b = breakdown r in
  Format.fprintf ppf
    "@[<v>squash θ=%g K=%d: %d -> %d words (%.1f%% smaller)@,\
    \  never-compressed %d (stubs %d)  decompressor %d  offset table %d@,\
    \  compressed code %d  code tables %d  stub area %d  buffer %d@,\
    \  regions %d  entries %d  γ(achieved) %.2f@]"
    r.options.theta r.options.k_bytes r.original_words r.squashed_words
    (100.0 *. size_reduction r)
    b.never_compressed b.entry_stubs b.decompressor b.offset_table b.compressed_code
    b.code_tables b.stub_area b.runtime_buffer
    (Array.length r.regions.Regions.regions)
    (Hashtbl.length r.regions.Regions.entries)
    (gamma_achieved r)
