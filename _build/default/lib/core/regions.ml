type region = { id : int; blocks : (string * int) list }

type t = {
  regions : region array;
  region_of : (string * int, int) Hashtbl.t;
  entries : (string * int, unit) Hashtbl.t;
  rejected_blocks : int;
}

type strategy = [ `Dfs | `Linear ]

type params = { k_bytes : int; gamma : float; pack : bool; strategy : strategy }

let default_params = { k_bytes = 512; gamma = 0.66; pack = true; strategy = `Dfs }

let entry_stub_words = 2

(* Conservative buffer-image size of a block: its canonical size plus slack
   for a materialised boundary jump or an expanded call. *)
let block_cost (f : Prog.Func.t) i = Prog.Block.instr_count f.blocks.(i) + 2

(* ------------------------------------------------------------------ *)

type facts = {
  prog : Prog.t;
  func_of : (string, Prog.Func.t) Hashtbl.t;
  preds : (string, int list array) Hashtbl.t;
  callers_of_entry : (string, (string * int) list) Hashtbl.t;
      (* direct call sites per callee, as (caller function, caller block) *)
  address_taken : (string, unit) Hashtbl.t;
  table_targets : (string * int, unit) Hashtbl.t;
      (* blocks that a retained jump table can reach *)
}

let gather_facts (p : Prog.t) =
  let func_of = Hashtbl.create 64 in
  let preds = Hashtbl.create 64 in
  let callers_of_entry = Hashtbl.create 64 in
  let address_taken = Hashtbl.create 16 in
  let table_targets = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Hashtbl.replace func_of f.name f;
      Hashtbl.replace preds f.name (Cfg.preds f);
      Array.iter
        (fun (b : Prog.Block.t) ->
          List.iter
            (function
              | Prog.Load_addr (_, Prog.Func_addr g) -> Hashtbl.replace address_taken g ()
              | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
            b.items;
          ())
        f.blocks;
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          match b.term with
          | Prog.Call { callee; _ } ->
            Hashtbl.replace callers_of_entry callee
              ((f.name, i)
              :: Option.value ~default:[] (Hashtbl.find_opt callers_of_entry callee))
          | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Call_indirect _
          | Prog.Jump_indirect _ | Prog.Return _ | Prog.No_return ->
            ())
        f.blocks;
      Array.iter
        (fun entries ->
          Array.iter (fun d -> Hashtbl.replace table_targets (f.name, d) ()) entries)
        f.tables)
    p.funcs;
  { prog = p; func_of; preds; callers_of_entry; address_taken; table_targets }

(* Some rid when every block of the function lies in region rid. *)
let fully_in_region facts region_of fname =
  match Hashtbl.find_opt facts.func_of fname with
  | None -> None
  | Some f -> (
    match Hashtbl.find_opt region_of (fname, 0) with
    | None -> None
    | Some rid ->
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          if Hashtbl.find_opt region_of (fname, i) <> Some rid then ok := false)
        f.Prog.Func.blocks;
      if !ok then Some rid else None)

(* A block needs an entry stub iff control can reach it from outside its
   region.  A called function's entry can only go stub-less when the callee
   is entirely inside one region and every direct call site sits in that
   same region — the condition under which {!Rewrite} emits the call as a
   plain intra-buffer [bsr]. *)
let compute_entries facts region_of =
  let entries = Hashtbl.create 64 in
  let in_same_region key other = Hashtbl.find_opt region_of key = Hashtbl.find_opt region_of other in
  List.iter
    (fun (f : Prog.Func.t) ->
      let preds = Hashtbl.find facts.preds f.name in
      let fully = lazy (fully_in_region facts region_of f.name) in
      Array.iteri
        (fun i _ ->
          let key = (f.name, i) in
          if Hashtbl.mem region_of key then begin
            let external_pred =
              List.exists (fun p -> not (in_same_region key (f.name, p))) preds.(i)
            in
            let func_entry_reachable =
              i = 0
              && (List.exists
                    (fun site ->
                      match Lazy.force fully with
                      | None -> true
                      | Some rid -> Hashtbl.find_opt region_of site <> Some rid)
                    (Option.value ~default:[]
                       (Hashtbl.find_opt facts.callers_of_entry f.name))
                 || Hashtbl.mem facts.address_taken f.name
                 || f.name = facts.prog.Prog.entry)
            in
            let table_target = Hashtbl.mem facts.table_targets key in
            if external_pred || func_entry_reachable || table_target then
              Hashtbl.replace entries key ()
          end)
        f.blocks)
    facts.prog.Prog.funcs;
  entries

(* Calls whose caller block and callee entry block could fall in different
   regions; used by the packing gain. *)
let direct_calls (p : Prog.t) =
  List.concat_map
    (fun (f : Prog.Func.t) ->
      List.filteri (fun _ x -> x <> None)
        (Array.to_list
           (Array.mapi
              (fun i (b : Prog.Block.t) ->
                match b.term with
                | Prog.Call { callee; _ } -> Some ((f.name, i), (callee, 0))
                | _ -> None)
              f.blocks))
      |> List.map Option.get)
    p.funcs

(* ------------------------------------------------------------------ *)

let build (p : Prog.t) ~compressible ~params =
  let facts = gather_facts p in
  let k_words = max 4 (params.k_bytes / 4) in
  let region_of = Hashtbl.create 256 in
  let regions = ref [] in
  let no_restart = Hashtbl.create 64 in
  let next_id = ref 0 in
  let rejected = ref 0 in
  (* Phase 1: grow DFS trees of compressible blocks, one function at a
     time. *)
  List.iter
    (fun (f : Prog.Func.t) ->
      let n = Array.length f.blocks in
      let taken = Array.make n false in
      Array.iteri
        (fun root _ ->
          if
            compressible f.name root
            && (not taken.(root))
            && (not (Hashtbl.mem region_of (f.name, root)))
            && not (Hashtbl.mem no_restart (f.name, root))
          then begin
            (* Depth-first growth bounded by the buffer budget.

               A call-terminated block is only usable together with its
               lexical continuation: the hardware return address is [pc+4],
               so the continuation must sit immediately after the call in
               the buffer image.  We therefore grow in atomic "call chains"
               — maximal runs [i, i+1, ...] where each block but the last
               ends in a call — and add a chain either whole or not at
               all. *)
            let members = ref [] in
            let size = ref 0 in
            let visited = Array.make n false in
            let admissible i =
              i >= 0 && i < n
              && (not visited.(i))
              && compressible f.name i
              && (not taken.(i))
              && not (Hashtbl.mem region_of (f.name, i))
            in
            let rec chain_of i acc =
              (* return_to is always i+1 (validated), so chains are finite. *)
              match f.blocks.(i).Prog.Block.term with
              | Prog.Call { return_to; _ } | Prog.Call_indirect { return_to; _ } ->
                chain_of return_to (i :: acc)
              | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _
              | Prog.Jump_indirect _ | Prog.Return _ | Prog.No_return ->
                List.rev (i :: acc)
            in
            (* Try to add the whole call chain rooted at [i]; true on
               success. *)
            let try_add_chain i =
              let chain = chain_of i [] in
              if List.for_all admissible chain then begin
                let c = List.fold_left (fun acc j -> acc + block_cost f j) 0 chain in
                if !size + c <= k_words then begin
                  size := !size + c;
                  List.iter
                    (fun j ->
                      visited.(j) <- true;
                      members := j :: !members)
                    chain;
                  Some (List.nth chain (List.length chain - 1))
                end
                else None
              end
              else begin
                (* The chain is blocked (its tail is hot, oversized or
                   already claimed); never retry from this head. *)
                visited.(i) <- true;
                None
              end
            in
            let rec grow i =
              if admissible i then
                match try_add_chain i with
                | Some last ->
                  (* Only the last chain block has successors other than a
                     call continuation. *)
                  List.iter grow (Prog.successors f last)
                | None -> ()
            in
            (* Linear scan: take consecutive admissible chains in block
               order until one no longer fits (the paper's future-work
               "other algorithms for constructing regions"). *)
            let rec linear i =
              if i < n && admissible i then
                match try_add_chain i with
                | Some last -> linear (last + 1)
                | None -> ()
            in
            (match params.strategy with `Dfs -> grow root | `Linear -> linear root);
            let members = List.rev !members in
            match members with
            | [] -> Hashtbl.replace no_restart (f.name, root) ()
            | _ :: _ ->
              (* Profitability: entry stubs cost E, compression saves
                 (1-γ)·I. *)
              let instrs =
                List.fold_left
                  (fun acc i -> acc + Prog.Block.instr_count f.blocks.(i))
                  0 members
              in
              let tentative = Hashtbl.create 8 in
              List.iter (fun i -> Hashtbl.replace tentative (f.name, i) !next_id) members;
              let entry_count =
                let preds = Hashtbl.find facts.preds f.name in
                List.length
                  (List.filter
                     (fun i ->
                       let external_pred =
                         List.exists
                           (fun pr -> not (Hashtbl.mem tentative (f.name, pr)))
                           preds.(i)
                       in
                       external_pred
                       || (i = 0 && not (Hashtbl.mem tentative (f.name, i)))
                       || (i = 0
                          && (Hashtbl.mem facts.callers_of_entry f.name
                             || Hashtbl.mem facts.address_taken f.name
                             || f.name = facts.prog.Prog.entry))
                       || Hashtbl.mem facts.table_targets (f.name, i))
                     members)
              in
              let stub_words = entry_stub_words * entry_count in
              if
                float_of_int stub_words
                < (1.0 -. params.gamma) *. float_of_int instrs
              then begin
                List.iter
                  (fun i -> Hashtbl.replace region_of (f.name, i) !next_id)
                  members;
                regions :=
                  { id = !next_id; blocks = List.map (fun i -> (f.name, i)) members }
                  :: !regions;
                incr next_id
              end
              else begin
                rejected := !rejected + List.length members;
                Hashtbl.replace no_restart (f.name, root) ()
              end
          end)
        f.blocks)
    p.funcs;
  let regions = ref (List.rev !regions) in
  (* Phase 2: packing.  Merge the pair with the best stub savings until no
     profitable pair fits the bound. *)
  if params.pack then begin
    let calls = direct_calls p in
    let cost_of r =
      List.fold_left
        (fun acc (fname, i) ->
          acc + block_cost (Hashtbl.find facts.func_of fname) i)
        0 r.blocks
    in
    let continue = ref true in
    while !continue do
      let rs = Array.of_list !regions in
      let entries = compute_entries facts region_of in
      let costs = Array.map cost_of rs in
      (* Gain of merging regions a and b. *)
      let gain ai bi =
        let a = rs.(ai) and b = rs.(bi) in
        let member key =
          match Hashtbl.find_opt region_of key with
          | Some id -> id = a.id || id = b.id
          | None -> false
        in
        (* Entry stubs that disappear: entry blocks of a∪b all of whose
           reasons to be an entry come from the partner region. *)
        let stub_gain =
          List.fold_left
            (fun acc (fname, i) ->
              if not (Hashtbl.mem entries (fname, i)) then acc
              else begin
                let f = Hashtbl.find facts.func_of fname in
                let preds = (Hashtbl.find facts.preds fname).(i) in
                let still_entry =
                  (* Heuristic mirror of compute_entries: after the merge,
                     call sites in either region count as in-region only if
                     the callee would be fully inside the merged region. *)
                  List.exists (fun pr -> not (member (fname, pr))) preds
                  || (i = 0
                     && (List.exists
                           (fun site -> not (member site))
                           (Option.value ~default:[]
                              (Hashtbl.find_opt facts.callers_of_entry fname))
                        || (match Hashtbl.find_opt facts.func_of fname with
                           | None -> true
                           | Some callee ->
                             (* the callee must lie fully in the merged
                                region for its entry stub to disappear *)
                             Array.exists
                               (fun j -> not (member (fname, j)))
                               (Array.init (Array.length callee.Prog.Func.blocks)
                                  Fun.id))
                        || Hashtbl.mem facts.address_taken fname
                        || fname = p.Prog.entry))
                  || Hashtbl.mem facts.table_targets (fname, i)
                in
                ignore f;
                if still_entry then acc else acc + entry_stub_words
              end)
            0 (a.blocks @ b.blocks)
        in
        (* Calls between the two regions stop needing restore stubs. *)
        let call_gain =
          List.fold_left
            (fun acc (caller, (callee, _)) ->
              let caller_in id = Hashtbl.find_opt region_of caller = Some id in
              let callee_in id =
                Hashtbl.find_opt region_of (callee, 0) = Some id
              in
              if
                (caller_in a.id && callee_in b.id)
                || (caller_in b.id && callee_in a.id)
              then acc + 2
              else acc)
            0 calls
        in
        stub_gain + call_gain
      in
      let best = ref None in
      let nr = Array.length rs in
      for ai = 0 to nr - 1 do
        for bi = ai + 1 to nr - 1 do
          if costs.(ai) + costs.(bi) <= k_words then begin
            let g = gain ai bi in
            if g > 0 then
              match !best with
              | Some (bg, _, _) when bg >= g -> ()
              | _ -> best := Some (g, ai, bi)
          end
        done
      done;
      match !best with
      | None -> continue := false
      | Some (_, ai, bi) ->
        let a = rs.(ai) and b = rs.(bi) in
        let merged = { id = a.id; blocks = a.blocks @ b.blocks } in
        List.iter (fun key -> Hashtbl.replace region_of key a.id) b.blocks;
        regions :=
          merged
          :: List.filter (fun r -> r.id <> a.id && r.id <> b.id) !regions
    done
  end;
  (* Renumber densely in a stable order. *)
  let ordered =
    List.sort (fun r1 r2 -> compare r1.id r2.id) !regions
    |> List.mapi (fun i r -> { r with id = i })
  in
  Hashtbl.reset region_of;
  List.iter
    (fun r -> List.iter (fun key -> Hashtbl.replace region_of key r.id) r.blocks)
    ordered;
  let entries = compute_entries facts region_of in
  {
    regions = Array.of_list ordered;
    region_of;
    entries;
    rejected_blocks = !rejected;
  }

let region_blocks t id = t.regions.(id).blocks
let block_region t f b = Hashtbl.find_opt t.region_of (f, b)
let is_entry t f b = Hashtbl.mem t.entries (f, b)

let compressed_instr_count (p : Prog.t) t =
  List.fold_left
    (fun acc (f : Prog.Func.t) ->
      let sub = ref 0 in
      Array.iteri
        (fun i b ->
          if Hashtbl.mem t.region_of (f.name, i) then
            sub := !sub + Prog.Block.instr_count b)
        f.blocks;
      acc + !sub)
    0 p.funcs
