type t = (string, bool) Hashtbl.t  (* name -> is buffer-safe *)

let analyze (p : Prog.t) ~has_compressed =
  let cg = Cfg.Callgraph.of_prog p in
  let safe : t = Hashtbl.create 64 in
  List.iter
    (fun (f : Prog.Func.t) ->
      let seed_unsafe = has_compressed f.name || Cfg.Callgraph.has_indirect_call cg f.name in
      Hashtbl.replace safe f.name (not seed_unsafe))
    p.funcs;
  (* Propagate non-safety from callees to callers. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Prog.Func.t) ->
        if Hashtbl.find safe f.name then
          let unsafe_callee =
            List.exists
              (fun g -> not (Option.value ~default:false (Hashtbl.find_opt safe g)))
              (Cfg.Callgraph.callees cg f.name)
          in
          if unsafe_callee then begin
            Hashtbl.replace safe f.name false;
            changed := true
          end)
      p.funcs
  done;
  safe

let is_safe t name = Option.value ~default:false (Hashtbl.find_opt t name)

let safe_functions t =
  Hashtbl.fold (fun name ok acc -> if ok then name :: acc else acc) t []
  |> List.sort String.compare

let stats (p : Prog.t) t ~in_region =
  let safe_calls = ref 0 and total = ref 0 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iteri
        (fun i (b : Prog.Block.t) ->
          if in_region f.name i then
            match b.term with
            | Prog.Call { callee; _ } ->
              incr total;
              if is_safe t callee then incr safe_calls
            | Prog.Call_indirect _ -> incr total
            | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Jump_indirect _
            | Prog.Return _ | Prog.No_return ->
              ())
        f.blocks)
    p.funcs;
  (`Safe_calls !safe_calls, `Total_calls !total)
