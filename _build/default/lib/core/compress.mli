(** Compression of instruction sequences, with three interchangeable
    backends:

    - [`Split_stream] (the paper's scheme, Section 3): each of the 15
      instruction field types gets its own canonical Huffman code, built
      over all compressible regions at once.  Because the opcode determines
      the remaining fields of an instruction, the per-stream codeword
      sequences merge into a single bitstream per region.
    - [`Split_stream_mtf] (the paper's move-to-front variant): each stream
      is move-to-front transformed before Huffman coding.  The recency
      lists reset at every region boundary so regions stay independently
      decodable.  It trades better compression on some streams for a
      larger, slower decompressor — exactly the trade-off the paper notes.
    - [`Lzss] (the "other algorithms" of the future-work section): the
      encoded instruction words of a region, as little-endian bytes,
      compressed with byte-oriented LZSS.

    Each region's stream ends with an encoded [Sentinel], at which
    decompression stops (paper, Section 2.1). *)

type backend = [ `Split_stream | `Split_stream_mtf | `Lzss ]

type codes

val build_codes : ?backend:backend -> Instr.t list array -> codes
(** Build the codec state from all region instruction sequences (the
    sentinels are added internally).  Default backend: [`Split_stream]. *)

val backend_of : codes -> backend

val encode_regions : codes -> Instr.t list array -> string * int array
(** [(blob, offsets)]: the compressed bytes and each region's starting bit
    offset (always byte-aligned for [`Lzss]). *)

val decode_region :
  codes -> string -> bit_offset:int -> ?bit_end:int -> unit -> Instr.t list * int
(** Decode one region (the sentinel is consumed but not returned).  Returns
    the instructions and the decoder {e work units} — DECODE-loop
    iterations, plus move-to-front list steps, plus LZSS copy steps — which
    the runtime converts into cycles.  [bit_end] bounds the region's bytes
    (required information for [`Lzss]; ignored by the Huffman backends,
    which stop at the sentinel).
    @raise Failure on a corrupt stream. *)

val table_bits : codes -> int
(** Footprint of the code representations that must ship with the blob:
    [N]/[D] arrays per stream (plus the move-to-front alphabets); 0 for
    [`Lzss]. *)

val compressed_bits : codes -> Instr.t list array -> int
(** Total encoded size of the given regions in bits (whole bytes),
    excluding tables. *)

val stream_stats : codes -> (string * int * float) list
(** Per stream: name, distinct symbols, max codeword length.  Empty for
    [`Lzss]. *)

val mtf_gain_bits : Instr.t list array -> (string * int) list
(** For each stream, the change in total Huffman-coded bits if the stream
    were move-to-front transformed first (negative = MTF helps).  Used by
    the ablation bench. *)
