lib/core/buffer_safe.mli: Prog
