lib/core/squash.ml: Array Buffer_safe Cold Compress Format Hashtbl Instr List Profile Prog Regions Rewrite String Syscall Unswitch
