lib/core/squash.mli: Buffer_safe Cold Compress Format Profile Prog Regions Rewrite
