lib/core/check.mli: Rewrite
