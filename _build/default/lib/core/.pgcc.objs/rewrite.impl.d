lib/core/rewrite.ml: Array Buffer_safe Cfg Compress Easm Hashtbl Instr Layout Lazy List Printf Prog Reg Regions String
