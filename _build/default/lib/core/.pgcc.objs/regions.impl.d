lib/core/regions.ml: Array Cfg Fun Hashtbl Lazy List Option Prog
