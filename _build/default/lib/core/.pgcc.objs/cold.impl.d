lib/core/cold.ml: Array Hashtbl List Option Profile Prog
