lib/core/rewrite.mli: Buffer_safe Compress Easm Hashtbl Instr Prog Reg Regions
