lib/core/cold.mli: Profile Prog
