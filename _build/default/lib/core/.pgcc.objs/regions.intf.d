lib/core/regions.mli: Hashtbl Prog
