lib/core/runtime.ml: Array Char Compress Cost Easm Hashtbl Instr Layout List Prog Reg Rewrite String Vm Word
