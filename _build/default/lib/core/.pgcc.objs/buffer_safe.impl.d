lib/core/buffer_safe.ml: Array Cfg Hashtbl List Option Prog String
