lib/core/compress.mli: Instr
