lib/core/runtime.mli: Cost Rewrite Vm
