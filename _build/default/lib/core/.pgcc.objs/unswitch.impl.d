lib/core/unswitch.ml: Array Hashtbl Instr List Option Prog Reg
