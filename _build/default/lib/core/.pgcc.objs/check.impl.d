lib/core/check.ml: Array Compress Easm Format Hashtbl Instr Layout List Reg Rewrite String
