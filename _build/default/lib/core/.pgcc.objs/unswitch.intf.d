lib/core/unswitch.mli: Prog
