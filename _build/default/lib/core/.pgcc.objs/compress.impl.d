lib/core/compress.ml: Array Bitio Buffer Canonical Char Hashtbl Huffman Instr List Lzss Mtf Option String
