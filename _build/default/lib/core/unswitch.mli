(** Jump-table unswitching (paper, Section 6.2).

    A region of code that contains an indirect jump through a jump table
    cannot be moved into the runtime buffer as-is: the table's absolute
    addresses would be wrong.  The paper's implementation replaces the
    indirect jump by a chain of conditional branches, after which the jump
    table's space is reclaimed.

    We rewrite the dispatch idiom the MiniC code generator emits —

    {v  la r, &table ; sll idx, #2, t ; add r, t, t ; ldw t, 0(t) ; jmp (t)  v}

    — into a compare-and-branch chain over the table's entries, appended as
    new blocks at the end of the function (so existing block indices are
    stable).  Blocks whose dispatch does not match the idiom are left alone
    and their whole function is reported in [unmatched]: the caller must
    exclude those functions from compression, mirroring the paper's "if we
    are unable to determine the extent of the jump table" case. *)

type result = {
  prog : Prog.t;
  rewritten : (string * int) list;  (** Dispatch blocks that were unswitched. *)
  unmatched : string list;
      (** Functions containing a cold analysable dispatch that did not match
          the idiom (or an unanalysable [table = None] jump). *)
}

val run : Prog.t -> is_cold:(string -> int -> bool) -> result
(** Unswitch every cold dispatch block.  Hot dispatches keep their tables
    (their entries are later redirected to entry stubs if they target
    compressed blocks). *)
