type t = {
  cold : (string * int, unit) Hashtbl.t;
  cutoff : int;
  cold_blocks : int;
  total_blocks : int;
  cold_instrs : int;
  total_instrs : int;
}

let identify (p : Prog.t) prof ~theta =
  if theta < 0.0 || theta > 1.0 then invalid_arg "Cold.identify: theta out of range";
  let all_blocks =
    List.concat_map
      (fun (f : Prog.Func.t) ->
        List.init (Array.length f.blocks) (fun i ->
            (f.name, i, Prog.Block.instr_count f.blocks.(i))))
      p.funcs
  in
  let budget = theta *. float_of_int (Profile.total_weight prof) in
  (* Sweep blocks in increasing frequency order, accumulating weight, to find
     the largest admissible frequency cutoff N. *)
  (* Group weights by frequency, then admit whole frequency classes in
     increasing order while the cumulative weight stays within budget. *)
  let weight_by_freq = Hashtbl.create 64 in
  List.iter
    (fun (f, b, _) ->
      let freq = Profile.freq prof f b in
      let w = Profile.weight prof f b in
      Hashtbl.replace weight_by_freq freq
        (w + Option.value ~default:0 (Hashtbl.find_opt weight_by_freq freq)))
    all_blocks;
  let classes =
    Hashtbl.fold (fun freq w acc -> (freq, w) :: acc) weight_by_freq []
    |> List.sort compare
  in
  let cutoff =
    let rec sweep acc best = function
      | [] -> best
      | (freq, w) :: rest ->
        let acc = acc +. float_of_int w in
        if acc <= budget then sweep acc freq rest else best
    in
    if theta >= 1.0 then max_int else sweep 0.0 (-1) classes
  in
  let cutoff = max cutoff 0 in
  let cold = Hashtbl.create 256 in
  let cold_blocks = ref 0 and cold_instrs = ref 0 and total_instrs = ref 0 in
  List.iter
    (fun (f, b, size) ->
      total_instrs := !total_instrs + size;
      if Profile.freq prof f b <= cutoff then begin
        Hashtbl.replace cold (f, b) ();
        incr cold_blocks;
        cold_instrs := !cold_instrs + size
      end)
    all_blocks;
  {
    cold;
    cutoff;
    cold_blocks = !cold_blocks;
    total_blocks = List.length all_blocks;
    cold_instrs = !cold_instrs;
    total_instrs = !total_instrs;
  }

let max_cold_freq t = t.cutoff
let is_cold t f b = Hashtbl.mem t.cold (f, b)
let cold_block_count t = t.cold_blocks
let total_block_count t = t.total_blocks
let cold_instr_count t = t.cold_instrs
let total_instr_count t = t.total_instrs

let cold_fraction t =
  if t.total_instrs = 0 then 0.0
  else float_of_int t.cold_instrs /. float_of_int t.total_instrs
