(** A static verifier for squashed images — the kind of [--check] mode a
    binary-rewriting tool ships so that a bad image is rejected before it
    runs.

    The checks cover the squash-specific invariants that the type system
    cannot enforce:

    - every entry stub is well-formed: a [bsr] into a decompressor entry
      point (or the 3-word push form) followed by a tag whose region id and
      buffer offset are valid, with the offset naming a real block of that
      region;
    - the function offset table is sorted and within the blob;
    - every region's compressed stream decodes back to exactly its buffer
      image, contains no stray sentinel, and fits the allocated buffer;
    - markers ([Bsrx], [Jsr] with hint 1) appear only where the decompressor
      expands them, and plain image words never contain them;
    - intra-buffer control transfers land on block heads of the same
      region;
    - the footprint accounting is internally consistent. *)

val check : Rewrite.t -> (unit, string list) result
(** All violations found, or [Ok ()]. *)

val check_exn : Rewrite.t -> unit
(** @raise Failure with the violations joined by newlines. *)
