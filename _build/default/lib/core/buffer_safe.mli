(** Buffer-safety analysis (paper, Section 6.1).

    A function is {e buffer-safe} when neither it nor anything it can call
    will invoke the decompressor.  A call from compressed code to a
    buffer-safe callee can be left as a plain [bsr]: the runtime buffer
    cannot be overwritten during the call, so no restore stub and no extra
    buffer instruction are needed.

    The analysis is the paper's iterative marking, at function granularity:
    functions containing compressed blocks, or indirect calls (whose targets
    may be anything), start out non-safe, and non-safety propagates from
    callees to callers until a fixed point. *)

type t

val analyze : Prog.t -> has_compressed:(string -> bool) -> t
val is_safe : t -> string -> bool

val safe_functions : t -> string list
(** Sorted. *)

val stats :
  Prog.t -> t -> in_region:(string -> int -> bool) ->
  [ `Safe_calls of int ] * [ `Total_calls of int ]
(** Of the direct call sites inside compressed regions, how many have a
    buffer-safe callee (the call sites the optimisation actually
    rewrites). *)
