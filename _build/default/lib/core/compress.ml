type backend = [ `Split_stream | `Split_stream_mtf | `Lzss ]

let stream_count = List.length Instr.all_streams

(* Field width of each stream, for storing D entries. *)
let stream_value_bits = function
  | Instr.Opcode -> 6
  | Instr.Mem_ra | Instr.Mem_rb | Instr.Br_ra | Instr.Op_ra | Instr.Op_rb
  | Instr.Op_rc | Instr.Jmp_ra | Instr.Jmp_rb ->
    5
  | Instr.Mem_disp | Instr.Jmp_hint | Instr.Sys_func -> 16
  | Instr.Br_disp -> 21
  | Instr.Op_lit -> 8
  | Instr.Op_func -> 7

type codes =
  | Huffman of { per_stream : Canonical.t option array }
  | Huffman_mtf of {
      per_stream : Canonical.t option array;  (* codes over MTF ranks *)
      alphabets : int array array;  (* sorted distinct values per stream *)
    }
  | Lzss_codec

let backend_of = function
  | Huffman _ -> `Split_stream
  | Huffman_mtf _ -> `Split_stream_mtf
  | Lzss_codec -> `Lzss

let with_sentinel instrs = instrs @ [ Instr.Sentinel ]

(* Visit every (stream, value) of an instruction, opcode first. *)
let iter_fields f ins =
  f Instr.Opcode (Instr.opcode_value ins);
  List.iter (fun (s, v) -> f s v) (Instr.fields ins)

let stream_values regions =
  let values = Array.make stream_count [] in
  Array.iter
    (fun instrs ->
      List.iter
        (iter_fields (fun s v ->
             let i = Instr.stream_index s in
             values.(i) <- v :: values.(i)))
        (with_sentinel instrs))
    regions;
  Array.map List.rev values

let freqs_of_values vs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    vs;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Move-to-front state: one recency array per stream, reset per region. *)

module Mtf_state = struct
  type t = int array array  (* per stream; [||] when the stream is absent *)

  let create (alphabets : int array array) : t = Array.map Array.copy alphabets

  let reset t (alphabets : int array array) =
    Array.iteri (fun i a -> Array.blit a 0 t.(i) 0 (Array.length a)) alphabets

  (* Rank of [v] in stream [si], then move it to the front. *)
  let rank_of t si v =
    let a = t.(si) in
    let n = Array.length a in
    let rec find i = if i >= n then -1 else if a.(i) = v then i else find (i + 1) in
    let r = find 0 in
    if r < 0 then failwith "Compress: MTF symbol not in alphabet";
    for j = r downto 1 do
      a.(j) <- a.(j - 1)
    done;
    a.(0) <- v;
    r

  (* Value at [rank] in stream [si], then move it to the front. *)
  let value_at t si rank =
    let a = t.(si) in
    if rank < 0 || rank >= Array.length a then
      failwith "Compress: MTF rank out of range";
    let v = a.(rank) in
    for j = rank downto 1 do
      a.(j) <- a.(j - 1)
    done;
    a.(0) <- v;
    v
end

(* ------------------------------------------------------------------ *)

let build_huffman regions =
  let values = stream_values regions in
  let per_stream =
    Array.map
      (fun vs ->
        match vs with [] -> None | _ :: _ -> Some (Canonical.of_freqs (freqs_of_values vs)))
      values
  in
  Huffman { per_stream }

let build_huffman_mtf regions =
  let values = stream_values regions in
  let alphabets =
    Array.map (fun vs -> Array.of_list (List.sort_uniq compare vs)) values
  in
  (* Rank statistics: replay the per-region MTF walk. *)
  let rank_values = Array.make stream_count [] in
  let state = Mtf_state.create alphabets in
  Array.iter
    (fun instrs ->
      Mtf_state.reset state alphabets;
      List.iter
        (iter_fields (fun s v ->
             let si = Instr.stream_index s in
             let r = Mtf_state.rank_of state si v in
             rank_values.(si) <- r :: rank_values.(si)))
        (with_sentinel instrs))
    regions;
  let per_stream =
    Array.map
      (fun rs ->
        match rs with
        | [] -> None
        | _ :: _ -> Some (Canonical.of_freqs (freqs_of_values rs)))
      rank_values
  in
  Huffman_mtf { per_stream; alphabets }

let build_codes ?(backend = `Split_stream) regions =
  match backend with
  | `Split_stream -> build_huffman regions
  | `Split_stream_mtf -> build_huffman_mtf regions
  | `Lzss -> Lzss_codec

let code_for per_stream stream =
  match per_stream.(Instr.stream_index stream) with
  | Some c -> c
  | None -> failwith ("Compress: no code for stream " ^ Instr.stream_name stream)

(* ------------------------------------------------------------------ *)
(* Encoding *)

let region_bytes instrs =
  let b = Buffer.create 256 in
  List.iter
    (fun ins ->
      let w = Instr.encode ins in
      Buffer.add_char b (Char.chr (w land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 8) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 16) land 0xFF));
      Buffer.add_char b (Char.chr ((w lsr 24) land 0xFF)))
    (with_sentinel instrs);
  Buffer.contents b

let encode_regions codes regions =
  match codes with
  | Huffman { per_stream } ->
    let w = Bitio.Writer.create () in
    let offsets =
      Array.map
        (fun instrs ->
          let off = Bitio.Writer.length_bits w in
          List.iter
            (iter_fields (fun s v -> Canonical.encode (code_for per_stream s) w v))
            (with_sentinel instrs);
          off)
        regions
    in
    (Bitio.Writer.contents w, offsets)
  | Huffman_mtf { per_stream; alphabets } ->
    let w = Bitio.Writer.create () in
    let state = Mtf_state.create alphabets in
    let offsets =
      Array.map
        (fun instrs ->
          let off = Bitio.Writer.length_bits w in
          Mtf_state.reset state alphabets;
          List.iter
            (iter_fields (fun s v ->
                 let si = Instr.stream_index s in
                 let r = Mtf_state.rank_of state si v in
                 Canonical.encode (code_for per_stream s) w r))
            (with_sentinel instrs);
          off)
        regions
    in
    (Bitio.Writer.contents w, offsets)
  | Lzss_codec ->
    let blob = Buffer.create 4096 in
    let offsets =
      Array.map
        (fun instrs ->
          let off = 8 * Buffer.length blob in
          Buffer.add_string blob (Lzss.compress (region_bytes instrs));
          off)
        regions
    in
    (Buffer.contents blob, offsets)

(* ------------------------------------------------------------------ *)
(* Decoding *)

let decode_huffman ~ranked per_stream alphabets blob bit_offset =
  let r = Bitio.Reader.of_string ~start_bit:bit_offset blob in
  let opcode_code = code_for per_stream Instr.Opcode in
  let work = ref 0 in
  let state =
    if ranked then Some (Mtf_state.create alphabets) else None
  in
  let read stream =
    let code =
      if Instr.equal_stream stream Instr.Opcode then opcode_code
      else code_for per_stream stream
    in
    let v, bits = Canonical.decode code r in
    work := !work + bits;
    match state with
    | None -> v
    | Some st ->
      (* v is a rank; walking the recency list costs rank steps. *)
      work := !work + v;
      Mtf_state.value_at st (Instr.stream_index stream) v
  in
  let rec go acc =
    let opcode = read Instr.Opcode in
    match Instr.rebuild ~opcode (fun s -> read s) with
    | Error msg -> failwith ("Compress.decode_region: " ^ msg)
    | Ok Instr.Sentinel -> List.rev acc
    | Ok ins -> go (ins :: acc)
  in
  let instrs = go [] in
  (instrs, !work)

let decode_lzss blob bit_offset bit_end =
  if bit_offset land 7 <> 0 || bit_end land 7 <> 0 then
    failwith "Compress.decode_region: LZSS offsets must be byte-aligned";
  let lo = bit_offset / 8 and hi = bit_end / 8 in
  if lo > hi || hi > String.length blob then
    failwith "Compress.decode_region: bad LZSS slice";
  let bytes, steps = Lzss.decompress (String.sub blob lo (hi - lo)) in
  if String.length bytes mod 4 <> 0 then
    failwith "Compress.decode_region: LZSS output not word-aligned";
  let nwords = String.length bytes / 4 in
  let rec go i acc =
    if i >= nwords then failwith "Compress.decode_region: missing sentinel"
    else begin
      let byte j = Char.code bytes.[(4 * i) + j] in
      let w = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
      match Instr.decode w with
      | Error msg -> failwith ("Compress.decode_region: " ^ msg)
      | Ok Instr.Sentinel -> List.rev acc
      | Ok ins -> go (i + 1) (ins :: acc)
    end
  in
  (go 0 [], steps)

let decode_region codes blob ~bit_offset ?bit_end () =
  let bit_end = Option.value ~default:(8 * String.length blob) bit_end in
  match codes with
  | Huffman { per_stream } ->
    decode_huffman ~ranked:false per_stream [||] blob bit_offset
  | Huffman_mtf { per_stream; alphabets } ->
    decode_huffman ~ranked:true per_stream alphabets blob bit_offset
  | Lzss_codec -> decode_lzss blob bit_offset bit_end

(* ------------------------------------------------------------------ *)
(* Accounting and statistics *)

let huffman_table_bits per_stream =
  List.fold_left
    (fun acc stream ->
      match per_stream.(Instr.stream_index stream) with
      | None -> acc
      | Some c -> acc + Canonical.table_bits ~value_bits:(stream_value_bits stream) c)
    0 Instr.all_streams

let table_bits = function
  | Huffman { per_stream } -> huffman_table_bits per_stream
  | Huffman_mtf { per_stream; alphabets } ->
    (* Rank codes are cheap to describe, but the alphabets must ship too. *)
    huffman_table_bits per_stream
    + List.fold_left
        (fun acc stream ->
          let si = Instr.stream_index stream in
          acc + (stream_value_bits stream * Array.length alphabets.(si)))
        0 Instr.all_streams
  | Lzss_codec -> 0

let compressed_bits codes regions =
  let blob, _ = encode_regions codes regions in
  8 * String.length blob

let stream_stats codes =
  match codes with
  | Lzss_codec -> []
  | Huffman { per_stream } | Huffman_mtf { per_stream; _ } ->
    List.filter_map
      (fun stream ->
        match per_stream.(Instr.stream_index stream) with
        | None -> None
        | Some c ->
          Some
            ( Instr.stream_name stream,
              Canonical.symbol_count c,
              float_of_int (Canonical.max_length c) ))
      Instr.all_streams

let mtf_gain_bits regions =
  let values = stream_values regions in
  List.map
    (fun stream ->
      let vs = values.(Instr.stream_index stream) in
      match vs with
      | [] -> (Instr.stream_name stream, 0)
      | _ :: _ ->
        let plain = Huffman.total_encoded_bits (freqs_of_values vs) in
        let alphabet = List.sort_uniq compare vs in
        let ranks = Mtf.encode ~alphabet vs in
        let mtf = Huffman.total_encoded_bits (freqs_of_values ranks) in
        (Instr.stream_name stream, mtf - plain))
    Instr.all_streams
