(** Cold-code identification (paper, Section 5).

    Given a threshold [θ ∈ [0, 1]], find the largest execution frequency [N]
    such that the blocks with frequency at most [N] together account for at
    most [θ · tot_instr_ct] dynamic instructions; every block with frequency
    ≤ N is cold.  With [θ = 0] only never-executed code is cold; with
    [θ = 1] everything is. *)

type t

val identify : Prog.t -> Profile.t -> theta:float -> t

val max_cold_freq : t -> int
(** The cutoff frequency [N]; [max_int] when everything is cold. *)

val is_cold : t -> string -> int -> bool

val cold_block_count : t -> int
val total_block_count : t -> int

val cold_instr_count : t -> int
(** Static instructions in cold blocks (canonical block sizes). *)

val total_instr_count : t -> int

val cold_fraction : t -> float
(** Static cold instructions / total instructions — the quantity plotted in
    the paper's Figure 4. *)
