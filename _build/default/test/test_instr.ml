(* Instruction encode/decode and the field-stream view. *)

open QCheck

let qcheck = QCheck_alcotest.to_alcotest

(* Generators *)

let gen_reg = Gen.int_bound 31

let gen_alu =
  Gen.oneofl
    [
      Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And; Instr.Or;
      Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra; Instr.Cmpeq; Instr.Cmpne;
      Instr.Cmplt; Instr.Cmple; Instr.Cmpult; Instr.Cmpule;
    ]

let gen_cond =
  Gen.oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let gen_disp16 = Gen.int_range (-32768) 32767
let gen_disp21 = Gen.int_range (-(1 lsl 20)) ((1 lsl 20) - 1)
let gen_hint = Gen.int_bound 0xFFFF

let gen_instr =
  let open Gen in
  frequency
    [
      (1, return Instr.Nop);
      (1, return Instr.Sentinel);
      (2, map (fun f -> Instr.Sys f) (int_bound 0xFFFF));
      ( 3,
        map3 (fun ra rb disp -> Instr.Lda { ra; rb; disp }) gen_reg gen_reg gen_disp16
      );
      ( 2,
        map3 (fun ra rb disp -> Instr.Ldah { ra; rb; disp }) gen_reg gen_reg gen_disp16
      );
      ( 6,
        gen_alu >>= fun op ->
        gen_reg >>= fun ra ->
        gen_reg >>= fun rc ->
        oneof
          [
            map (fun rb -> Instr.Opr { op; ra; rb = Instr.Reg rb; rc }) gen_reg;
            map (fun v -> Instr.Opr { op; ra; rb = Instr.Imm v; rc }) (int_bound 255);
          ] );
      ( 4,
        oneofl [ Instr.Ldw; Instr.Stw; Instr.Ldb; Instr.Stb ] >>= fun op ->
        map3 (fun ra rb disp -> Instr.Mem { op; ra; rb; disp }) gen_reg gen_reg gen_disp16
      );
      ( 3,
        gen_cond >>= fun op ->
        map2 (fun ra disp -> Instr.Cbr { op; ra; disp }) gen_reg gen_disp21 );
      (2, map2 (fun ra disp -> Instr.Br { ra; disp }) gen_reg gen_disp21);
      (2, map2 (fun ra disp -> Instr.Bsr { ra; disp }) gen_reg gen_disp21);
      (1, map2 (fun ra disp -> Instr.Bsrx { ra; disp }) gen_reg gen_disp21);
      ( 2,
        map3 (fun ra rb hint -> Instr.Jmp { ra; rb; hint }) gen_reg gen_reg gen_hint );
      ( 2,
        map3 (fun ra rb hint -> Instr.Jsr { ra; rb; hint }) gen_reg gen_reg gen_hint );
      ( 1,
        map3 (fun ra rb hint -> Instr.Ret { ra; rb; hint }) gen_reg gen_reg gen_hint );
    ]

let arb_instr = QCheck.make ~print:Instr.to_string gen_instr

(* Unit tests *)

let unit_tests =
  [
    Alcotest.test_case "there are exactly 15 field streams" `Quick (fun () ->
        Alcotest.(check int) "streams" 15 (List.length Instr.all_streams));
    Alcotest.test_case "stream_index is a bijection" `Quick (fun () ->
        let idxs = List.map Instr.stream_index Instr.all_streams in
        Alcotest.(check (list int)) "indices" (List.init 15 Fun.id) idxs);
    Alcotest.test_case "sentinel encodes to all-ones" `Quick (fun () ->
        Alcotest.(check int) "word" 0xFFFF_FFFF (Instr.encode Instr.Sentinel));
    Alcotest.test_case "encode rejects out-of-range displacement" `Quick (fun () ->
        let bad = Instr.Lda { ra = 1; rb = 2; disp = 40000 } in
        match Instr.encode bad with
        | exception Instr.Encode_error _ -> ()
        | _ -> Alcotest.fail "expected Encode_error");
    Alcotest.test_case "decode rejects unknown opcodes" `Quick (fun () ->
        match Instr.decode (0x05 lsl 26) with
        | Error _ -> ()
        | Ok i -> Alcotest.failf "decoded %s" (Instr.to_string i));
    Alcotest.test_case "branch displacement helpers" `Quick (fun () ->
        let b = Instr.Br { ra = Reg.zero; disp = 5 } in
        Alcotest.(check (option int)) "get" (Some 5) (Instr.branch_displacement b);
        let b' = Instr.with_branch_displacement b (-7) in
        Alcotest.(check (option int)) "set" (Some (-7)) (Instr.branch_displacement b');
        Alcotest.(check (option int))
          "none" None
          (Instr.branch_displacement Instr.Nop));
  ]

(* Properties *)

let prop_tests =
  [
    qcheck
      (Test.make ~name:"decode inverts encode" ~count:2000 arb_instr (fun i ->
           match Instr.decode (Instr.encode i) with
           | Ok i' -> Instr.equal i i'
           | Error _ -> false));
    qcheck
      (Test.make ~name:"encoded words are 32-bit" ~count:1000 arb_instr (fun i ->
           let w = Instr.encode i in
           w >= 0 && w <= Word.mask));
    qcheck
      (Test.make ~name:"fields match streams_of_opcode" ~count:1000 arb_instr
         (fun i ->
           match Instr.streams_of_opcode (Instr.opcode_value i) with
           | Ok streams -> streams = List.map fst (Instr.fields i)
           | Error _ -> false));
    qcheck
      (Test.make ~name:"rebuild inverts fields" ~count:2000 arb_instr (fun i ->
           let fields = ref (Instr.fields i) in
           let next s =
             match !fields with
             | (s', v) :: rest when s = s' ->
               fields := rest;
               v
             | _ -> QCheck.Test.fail_report "stream read out of order"
           in
           match Instr.rebuild ~opcode:(Instr.opcode_value i) next with
           | Ok i' -> Instr.equal i i' && !fields = []
           | Error _ -> false));
    qcheck
      (Test.make ~name:"field values fit their widths" ~count:1000 arb_instr
         (fun i ->
           List.for_all
             (fun (s, v) ->
               let width =
                 match s with
                 | Instr.Opcode -> 6
                 | Instr.Mem_ra | Instr.Mem_rb | Instr.Br_ra | Instr.Op_ra
                 | Instr.Op_rb | Instr.Op_rc | Instr.Jmp_ra | Instr.Jmp_rb ->
                   5
                 | Instr.Mem_disp | Instr.Jmp_hint | Instr.Sys_func -> 16
                 | Instr.Br_disp -> 21
                 | Instr.Op_lit -> 8
                 | Instr.Op_func -> 7
               in
               v >= 0 && v < 1 lsl width)
             (Instr.fields i)));
    qcheck
      (Test.make ~name:"control-transfer classification matches decode shape"
         ~count:1000 arb_instr (fun i ->
           let expected =
             match i with
             | Instr.Cbr _ | Instr.Br _ | Instr.Bsr _ | Instr.Bsrx _ | Instr.Jmp _
             | Instr.Jsr _ | Instr.Ret _ ->
               true
             | _ -> false
           in
           Instr.is_control_transfer i = expected));
  ]

let suite = [ ("instr", unit_tests @ prop_tests) ]
