(* Profile collection and serialisation. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let looping =
  {|
int hot(int n) { return n * 2 + 1; }
int cold_path(int n) { putint(n); return n; }
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 50; i = i + 1) acc = acc + hot(i);
  if (acc < 0) cold_path(acc);
  return acc & 255;
}
|}

let unit_tests =
  [
    Alcotest.test_case "frequencies reflect execution counts" `Quick (fun () ->
        let p = compile looping in
        let prof, outcome = Profile.collect p ~input:"" in
        Alcotest.(check int) "hot entry runs 50x" 50 (Profile.freq prof "hot" 0);
        Alcotest.(check int) "cold_path never runs" 0 (Profile.freq prof "cold_path" 0);
        Alcotest.(check int) "main entry runs once" 1 (Profile.freq prof "main" 0);
        Alcotest.(check int) "total = dynamic instructions" outcome.Vm.icount
          (Profile.total_weight prof));
    Alcotest.test_case "weights sum block contributions" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        (* hot has one block (plus epilogue blocks); its total weight must be
           at least 50 * (block size). *)
        Alcotest.(check bool) "hot weight > freq" true
          (Profile.weight prof "hot" 0 > Profile.freq prof "hot" 0));
    Alcotest.test_case "serialisation round-trips" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        match Profile.of_string (Profile.to_string prof) with
        | Error e -> Alcotest.fail e
        | Ok prof2 ->
          Alcotest.(check int) "total" (Profile.total_weight prof)
            (Profile.total_weight prof2);
          Alcotest.(check int) "hot freq" (Profile.freq prof "hot" 0)
            (Profile.freq prof2 "hot" 0);
          Alcotest.(check int) "main weight" (Profile.weight prof "main" 0)
            (Profile.weight prof2 "main" 0));
    Alcotest.test_case "of_string rejects garbage" `Quick (fun () ->
        match Profile.of_string "nonsense here extra words more" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "merge sums profiles" `Quick (fun () ->
        let p = compile looping in
        let prof1, _ = Profile.collect p ~input:"" in
        let prof2, _ = Profile.collect p ~input:"" in
        let m = Profile.merge prof1 prof2 in
        Alcotest.(check int) "freq doubles" (2 * Profile.freq prof1 "hot" 0)
          (Profile.freq m "hot" 0);
        Alcotest.(check int) "total doubles" (2 * Profile.total_weight prof1)
          (Profile.total_weight m));
    Alcotest.test_case "empty profile reads as all-zero" `Quick (fun () ->
        Alcotest.(check int) "freq" 0 (Profile.freq Profile.empty "anything" 3);
        Alcotest.(check int) "total" 0 (Profile.total_weight Profile.empty));
    Alcotest.test_case "different inputs give different profiles" `Quick (fun () ->
        let src =
          {|
int main() {
  int c; int n;
  n = 0;
  while (1) {
    c = getc();
    if (c < 0) break;
    n = n + 1;
  }
  return n;
}
|}
        in
        let p = compile src in
        let prof_small, _ = Profile.collect p ~input:"ab" in
        let prof_large, _ = Profile.collect p ~input:(String.make 100 'x') in
        Alcotest.(check bool) "larger input, larger total" true
          (Profile.total_weight prof_large > Profile.total_weight prof_small));
  ]

let suite = [ ("profile", unit_tests) ]
