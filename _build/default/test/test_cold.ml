(* Cold-code identification: the Section 5 threshold arithmetic, tested
   against hand-built profiles. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

(* A program with four single-instruction-ish blocks to attribute counts
   to. *)
let four_blocks =
  {|
.entry main
func main {
  .0:
    nop
  .1:
    nop
  .2:
    nop
  .3:
    sys exit
    halt
}
|}

let profile_of lines =
  match Profile.of_string (String.concat "\n" lines ^ "\n") with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let unit_tests =
  [
    Alcotest.test_case "θ=0 marks exactly the never-executed blocks" `Quick
      (fun () ->
        let p = parse four_blocks in
        (* Block 2 never runs; the rest do. *)
        let prof =
          profile_of
            [ "total 1000"; "main 0 10 300"; "main 1 10 300"; "main 2 0 0";
              "main 3 10 400" ]
        in
        let c = Cold.identify p prof ~theta:0.0 in
        Alcotest.(check int) "cutoff" 0 (Cold.max_cold_freq c);
        Alcotest.(check bool) "block 2 cold" true (Cold.is_cold c "main" 2);
        Alcotest.(check bool) "block 0 hot" false (Cold.is_cold c "main" 0);
        Alcotest.(check int) "one cold block" 1 (Cold.cold_block_count c));
    Alcotest.test_case "θ admits whole frequency classes in weight order" `Quick
      (fun () ->
        let p = parse four_blocks in
        (* Weights: freq 1 class = 100, freq 5 class = 200, freq 100 class =
           700.  θ=0.3 -> budget 300 -> N = 5. *)
        let prof =
          profile_of
            [ "total 1000"; "main 0 1 100"; "main 1 5 200"; "main 2 100 700";
              "main 3 100 0" ]
        in
        let c = Cold.identify p prof ~theta:0.3 in
        Alcotest.(check int) "cutoff" 5 (Cold.max_cold_freq c);
        Alcotest.(check bool) "freq-1 cold" true (Cold.is_cold c "main" 0);
        Alcotest.(check bool) "freq-5 cold" true (Cold.is_cold c "main" 1);
        Alcotest.(check bool) "freq-100 hot" false (Cold.is_cold c "main" 2));
    Alcotest.test_case "a class that would burst the budget is excluded whole"
      `Quick (fun () ->
        let p = parse four_blocks in
        (* freq-5 class weighs 400 in total (two blocks); budget 300 only
           fits the freq-1 class even though one freq-5 block would fit. *)
        let prof =
          profile_of
            [ "total 1000"; "main 0 1 100"; "main 1 5 200"; "main 2 5 200";
              "main 3 100 500" ]
        in
        let c = Cold.identify p prof ~theta:0.3 in
        Alcotest.(check int) "cutoff" 1 (Cold.max_cold_freq c);
        Alcotest.(check bool) "freq-5 blocks stay hot" false
          (Cold.is_cold c "main" 1));
    Alcotest.test_case "θ=1 marks everything cold" `Quick (fun () ->
        let p = parse four_blocks in
        let prof =
          profile_of
            [ "total 100"; "main 0 10 25"; "main 1 10 25"; "main 2 10 25";
              "main 3 10 25" ]
        in
        let c = Cold.identify p prof ~theta:1.0 in
        Alcotest.(check int) "all cold" (Cold.total_block_count c)
          (Cold.cold_block_count c);
        Alcotest.(check bool) "fraction is 1" true (Cold.cold_fraction c = 1.0));
    Alcotest.test_case "θ out of range is rejected" `Quick (fun () ->
        let p = parse four_blocks in
        match Cold.identify p Profile.empty ~theta:1.5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "cold fraction uses static sizes" `Quick (fun () ->
        let p = parse four_blocks in
        let prof =
          profile_of
            [ "total 100"; "main 0 10 50"; "main 1 0 0"; "main 2 0 0";
              "main 3 10 50" ]
        in
        let c = Cold.identify p prof ~theta:0.0 in
        (* Blocks 1 and 2 are cold: 2 instructions of 5 total (block 3 has
           2: the sys and... block sizes come from Prog.Block.instr_count). *)
        Alcotest.(check int) "cold instrs" 2 (Cold.cold_instr_count c);
        Alcotest.(check bool) "fraction in (0,1)" true
          (Cold.cold_fraction c > 0.0 && Cold.cold_fraction c < 1.0));
  ]

let suite = [ ("cold", unit_tests) ]
