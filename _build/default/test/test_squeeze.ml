(* The squeeze compactor: semantics preservation and effectiveness. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let run_prog ?(input = "") ?(fuel = 20_000_000) p =
  Vm.run (Vm.of_image ~fuel (Layout.emit p) ~input)

let outcome_triple (o : Vm.outcome) = (o.Vm.exit_code, o.Vm.output, ())

let assert_same_behaviour ?input src =
  let p = compile src in
  let q, _ = Squeeze.run p in
  (match Prog.validate q with
  | Ok () -> ()
  | Error e -> Alcotest.failf "squeezed program invalid: %s" e);
  let o1 = run_prog ?input p in
  let o2 = run_prog ?input q in
  Alcotest.(check (triple int string unit))
    "same behaviour" (outcome_triple o1) (outcome_triple o2);
  (p, q, o1, o2)

let unit_tests =
  [
    Alcotest.test_case "removes unreachable functions" `Quick (fun () ->
        let src =
          {|
int dead_helper(int x) { return x * 3; }
int live(int x) { return x + 1; }
int main() { return live(4); }
|}
        in
        let p, q, _, _ = assert_same_behaviour src in
        Alcotest.(check bool) "before" true (Prog.find_func p "dead_helper" <> None);
        Alcotest.(check bool) "after" false (Prog.find_func q "dead_helper" <> None));
    Alcotest.test_case "keeps address-taken functions" `Quick (fun () ->
        let src =
          {|
int cb(int x) { return x + 7; }
int main() { int f; f = &cb; return f(1); }
|}
        in
        let _, q, _, o = assert_same_behaviour src in
        Alcotest.(check bool) "kept" true (Prog.find_func q "cb" <> None);
        Alcotest.(check int) "result" 8 o.Vm.exit_code);
    Alcotest.test_case "removes unreachable blocks" `Quick (fun () ->
        let src =
          {|
int f(int x) {
  if (1 == 1) return x;
  return x * 100;
}
int main() { return f(9); }
|}
        in
        (* The constant condition is not folded (we do not do constant
           propagation), but dead code behind an early return goes away. *)
        let src2 = "int main() { return 5; putint(1); putint(2); return 6; }" in
        let p, q, _, _ = assert_same_behaviour src2 in
        ignore src;
        Alcotest.(check bool) "shrank" true (Prog.instr_count q < Prog.instr_count p));
    Alcotest.test_case "eliminates dead stores to registers" `Quick (fun () ->
        let src =
          "int main() { int a; int b; a = 1; b = 2; a = 3; b = 4; return a + b; }"
        in
        let p, q, _, o = assert_same_behaviour src in
        Alcotest.(check int) "result" 7 o.Vm.exit_code;
        Alcotest.(check bool) "shrank" true (Prog.instr_count q < Prog.instr_count p));
    Alcotest.test_case "forwards stack slots within a block" `Quick (fun () ->
        (* x stored then immediately reloaded: forwarding plus DCE must
           shrink the code. *)
        let src = "int main() { int x; x = 11; return x + x; }" in
        let p, q, _, o = assert_same_behaviour src in
        Alcotest.(check int) "result" 22 o.Vm.exit_code;
        Alcotest.(check bool) "shrank" true (Prog.instr_count q < Prog.instr_count p));
    Alcotest.test_case "respects aliasing through pointers" `Quick (fun () ->
        (* The callee writes through a pointer to main's frame; forwarding
           across the call would produce 1 instead of 2. *)
        let src =
          {|
int poke(int p) { p[0] = 2; return 0; }
int main() {
  int x;
  x = 1;
  poke(&x);
  return x;
}
|}
        in
        let _, _, _, o = assert_same_behaviour src in
        Alcotest.(check int) "result" 2 o.Vm.exit_code);
    Alcotest.test_case "keeps possibly-trapping division" `Quick (fun () ->
        let src = "int main() { int z; z = 0; int unused; unused = 5 / (1 + z); return 0; }" in
        let _ = assert_same_behaviour src in
        ());
    Alcotest.test_case "remove_unreachable alone keeps behaviour" `Quick (fun () ->
        let src = "int dead() { return 1; } int main() { putint(4); return 0; }" in
        let p = compile src in
        let q = Squeeze.remove_unreachable p in
        let o1 = run_prog p and o2 = run_prog q in
        Alcotest.(check string) "output" o1.Vm.output o2.Vm.output;
        Alcotest.(check bool) "dead gone" true (Prog.find_func q "dead" = None));
    Alcotest.test_case "preserves jump tables that are used" `Quick (fun () ->
        let src =
          {|
int f(int x) {
  switch (x) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 5;
  }
  return 0;
}
int main() { return f(2) * 10 + f(9); }
|}
        in
        let _, q, _, o = assert_same_behaviour src in
        Alcotest.(check int) "result" 30 o.Vm.exit_code;
        let f = Option.get (Prog.find_func q "f") in
        Alcotest.(check int) "table kept" 1 (Array.length f.Prog.Func.tables));
    Alcotest.test_case "reports meaningful stats" `Quick (fun () ->
        let src = "int d() { return 0; } int main() { int x; x = 1; return x; }" in
        let p = compile src in
        let _, stats = Squeeze.run p in
        Alcotest.(check bool) "funcs removed" true (stats.Squeeze.funcs_removed >= 1);
        Alcotest.(check bool) "counts consistent" true
          (stats.Squeeze.instrs_after <= stats.Squeeze.instrs_before));
    Alcotest.test_case "typical reduction on naive code is substantial" `Quick
      (fun () ->
        (* The paper's squeeze removes ~30% of cc -O1 code; our local passes
           should remove a significant share of the naive codegen output. *)
        let src =
          {|
int work(int a, int b) {
  int t0; int t1; int t2;
  t0 = a + b;
  t1 = t0 * 2;
  t2 = t1 - a;
  return t2 + t1 + t0;
}
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 10; i = i + 1) acc = acc + work(i, acc);
  return acc & 255;
}
|}
        in
        let p, q, _, _ = assert_same_behaviour src in
        let before = Prog.instr_count p and after = Prog.instr_count q in
        let reduction = float_of_int (before - after) /. float_of_int before in
        if reduction < 0.10 then
          Alcotest.failf "expected >=10%% reduction, got %.1f%% (%d -> %d)"
            (100. *. reduction) before after);
  ]

let differential_tests =
  [
    Alcotest.test_case "differential: 40 random programs" `Slow (fun () ->
        for seed = 1 to 40 do
          let src = Gen_minic.random_program ~seed in
          match Minic.compile src with
          | Error e ->
            Alcotest.failf "seed %d: generated program does not compile: %s" seed
              (Minic.error_to_string e)
          | Ok p ->
            let q, _ = Squeeze.run p in
            (match Prog.validate q with
            | Ok () -> ()
            | Error e -> Alcotest.failf "seed %d: squeezed invalid: %s" seed e);
            let o1 = run_prog p and o2 = run_prog q in
            if o1.Vm.exit_code <> o2.Vm.exit_code || o1.Vm.output <> o2.Vm.output then
              Alcotest.failf "seed %d: behaviour diverged (exit %d vs %d)" seed
                o1.Vm.exit_code o2.Vm.exit_code
        done);
  ]

let suite = [ ("squeeze", unit_tests @ differential_tests) ]
