(* The MiniC runtime library, exercised through both the compiled pipeline
   and the reference interpreter: every test runs a program that uses
   library entry points and checks the two semantics agree and that the
   output is the expected one. *)

let run_both src =
  let full = src ^ Wl_lib.source in
  let compiled =
    match Minic.compile full with
    | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)
    | Ok p -> Vm.run (Vm.of_image ~fuel:100_000_000 (Layout.emit p) ~input:"")
  in
  let interp = Mc_interp.run_source full ~input:"" in
  Alcotest.(check string) "vm/interp output" compiled.Vm.output interp.Mc_interp.output;
  Alcotest.(check int) "vm/interp exit" compiled.Vm.exit_code interp.Mc_interp.exit_code;
  compiled.Vm.output

let expect name src expected () =
  Alcotest.(check string) name expected (run_both src)

let unit_tests =
  [
    Alcotest.test_case "formatter directives" `Quick
      (expect "fmt"
         {|
int main() {
  out_fmt3("%d|%05d|%d\n", -7, 42, 2147483647);
  out_fmt2("%08x %x\n", 48879, 0);
  out_fmt2("%b %c\n", 10, 'Z');
  out_fmt1("%s!\n", "str");
  out_fmt1("%u\n", -1);
  return 0;
}
|}
         "-7|00042|2147483647\n0000beef 0\n1010 Z\nstr!\n4294967295\n");
    Alcotest.test_case "heap allocator: split, free, reuse" `Quick (fun () ->
        let out =
          run_both
            {|
int main() {
  int a; int b; int c;
  heap_init(256);
  a = heap_alloc(10);
  b = heap_alloc(20);
  wfill(a, 1, 10);
  wfill(b, 2, 20);
  out_kv("a-ok", wsum(a, 10) == 10);
  heap_free(a);
  c = heap_alloc(5);          // fits in the freed block
  wfill(c, 3, 5);
  out_kv("b-intact", wsum(b, 20) == 40);
  out_kv("c-ok", wsum(c, 5) == 15);
  heap_free(b);
  heap_free(c);
  heap_report();
  return 0;
}
|}
        in
        Alcotest.(check bool) "reports allocs" true
          (String.length out > 0));
    Alcotest.test_case "fixed-point trig: sin/cos identities" `Quick
      (expect "trig"
         {|
int main() {
  int a; int worst; int s; int c; int m;
  worst = 0;
  for (a = 0; a < 1024; a = a + 16) {
    s = fx_sin(a);
    c = fx_cos(a);
    m = fx_mul(s, s) + fx_mul(c, c);
    worst = imax(worst, iabs(m - 16384));
  }
  out_kv("identity-worst", worst < 400);
  out_kv("sin0", fx_sin(0));
  out_kv("sin-quarter", fx_sin(256));
  out_kv("sin-half", iabs(fx_sin(512)) < 64);
  return 0;
}
|}
         "identity-worst: 1\nsin0: 0\nsin-quarter: 16384\nsin-half: 1\n");
    Alcotest.test_case "64-bit emulation" `Quick
      (expect "mul64"
         {|
int main() {
  int r[2];
  mul64(r, -1, -1);            // (2^32-1)^2 = 2^64 - 2^33 + 1
  out_fmt2("%08x %08x\n", r[0], r[1]);
  mul64(r, 123456789, 987654321);
  out_fmt2("%08x %08x\n", r[0], r[1]);
  r[0] = 0; r[1] = -1;
  add64(r, 0, 1);              // carry into the high word
  out_fmt2("%08x %08x\n", r[0], r[1]);
  out_kv("cmp", cmp64(1, 0, 0, -1));
  return 0;
}
|}
         "fffffffe 00000001\n01b13114 fbff5385\n00000001 00000000\ncmp: 1\n");
    Alcotest.test_case "soft float end to end" `Quick
      (expect "fp"
         {|
int main() {
  fp_selftest();
  out_kv("pi-ish", fp_to_int(fp_mul(fp_from_int(314), fp_div(fp_from_int(100), fp_from_int(100)))));
  out_kv("sqrt2-scaled", fp_to_int(fp_mul(fp_sqrt(fp_from_int(2)), fp_from_int(10000))));
  return 0;
}
|}
         "fp self-test failures: 0\npi-ish: 314\nsqrt2-scaled: 14142\n");
    Alcotest.test_case "sorting, selection, search" `Quick
      (expect "sort"
         {|
int data[16];
int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) data[i] = (i * 11) % 17;
  wsort(data, 16);
  out_kv("sorted", data[0] <= data[1] && data[14] <= data[15]);
  out_kv("median", wmedian(data, 16));
  out_kv("found", wbinsearch(data, 16, data[7]) == 7);
  out_kv("missing", wbinsearch(data, 16, 99));
  return 0;
}
|}
         "sorted: 1\nmedian: 9\nfound: 1\nmissing: -1\n");
    Alcotest.test_case "checksums are stable" `Quick
      (expect "crc"
         {|
int words[4] = { 1, 2, 3, 4 };
int main() {
  out_fmt1("%08x\n", crc_block(words, 4));
  out_kv("adler", adler32_block(words, 4));
  out_kv("fletcher", fletcher16_block(words, 4));
  return 0;
}
|}
         "af05d4ef\nadler: 1572875\nfletcher: 5130\n");
    Alcotest.test_case "bit output packs MSB-first" `Quick
      (expect "bio"
         {|
int bits[4];
int main() {
  bio_init(bits, 4);
  bio_put(1, 1);
  bio_put(0, 2);
  bio_put(511, 9);
  bio_flush();
  out_fmt1("%08x\n", bits[0]);
  return 0;
}
|}
         "9ff00000\n");
    Alcotest.test_case "string buffers and panics" `Quick (fun () ->
        let out =
          run_both
            {|
int main() {
  sb_init(32);
  sb_puts("x=");
  sb_put_dec(1234);
  sb_flush_out();
  out_nl();
  lib_assert(str_len("hello") == 5, "str_len broken");
  lib_assert(str_eq("a", "a") && !str_eq("a", "ab"), "str_eq broken");
  out_str("done");
  out_nl();
  return 0;
}
|}
        in
        Alcotest.(check string) "output" "x=1234\ndone\n" out);
  ]

let suite = [ ("mclib", unit_tests) ]
