(* Program IR invariants and the canonical layout/emitter. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let branchy =
  {|
.entry main
func main {
  .0:
    lda t0, 3(zero)
    if eq t0 goto .2 else .1
  .1:
    sub t0, #1, t0
    goto .0
  .2:
    sys exit
    halt
}
|}

let unit_tests =
  [
    Alcotest.test_case "validate accepts a good program" `Quick (fun () ->
        match Prog.validate (parse branchy) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "validate rejects bad destinations" `Quick (fun () ->
        let p = parse branchy in
        let f = List.hd p.Prog.funcs in
        let bad_blocks = Array.copy f.Prog.Func.blocks in
        bad_blocks.(0) <-
          { (bad_blocks.(0)) with Prog.Block.term = Prog.Jump 99 };
        let bad = { p with Prog.funcs = [ { f with Prog.Func.blocks = bad_blocks } ] } in
        match Prog.validate bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected error");
    Alcotest.test_case "validate rejects call not returning to next block" `Quick
      (fun () ->
        let src =
          "func main {\n .0:\n nop\n .1:\n sys exit\n halt\n}\nfunc g {\n .0:\n ret\n}"
        in
        let p = parse src in
        let f = List.hd p.Prog.funcs in
        let blocks = Array.copy f.Prog.Func.blocks in
        blocks.(0) <-
          {
            (blocks.(0)) with
            Prog.Block.term = Prog.Call { ra = Reg.ra; callee = "g"; return_to = 0 };
          };
        let bad =
          { p with Prog.funcs = [ { f with Prog.Func.blocks = blocks }; List.nth p.Prog.funcs 1 ] }
        in
        match Prog.validate bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected error");
    Alcotest.test_case "block sizes account for fallthrough jumps" `Quick (fun () ->
        let b =
          { Prog.Block.items = [ Prog.Instr Instr.Nop ]; term = Prog.Fallthrough 5 }
        in
        Alcotest.(check int) "adjacent" 1 (Prog.Block.size ~next:(Some 5) b);
        Alcotest.(check int) "non-adjacent" 2 (Prog.Block.size ~next:(Some 1) b);
        let br =
          {
            Prog.Block.items = [];
            term = Prog.Branch (Instr.Eq, 1, 3, 4);
          }
        in
        Alcotest.(check int) "branch adjacent" 1 (Prog.Block.size ~next:(Some 4) br);
        Alcotest.(check int) "branch non-adjacent" 2 (Prog.Block.size ~next:(Some 9) br));
    Alcotest.test_case "load_addr counts as two instructions" `Quick (fun () ->
        let b =
          {
            Prog.Block.items = [ Prog.Load_addr (1, Prog.Func_addr "f") ];
            term = Prog.Return { rb = Reg.ra };
          }
        in
        Alcotest.(check int) "size" 3 (Prog.Block.size ~next:None b));
    Alcotest.test_case "layout binds every block to an address" `Quick (fun () ->
        let p = parse branchy in
        let img = Layout.emit p in
        Alcotest.(check int) "text base" Layout.text_base img.Layout.text_base;
        Alcotest.(check bool) "entry at main" true
          (img.Layout.entry_addr = Hashtbl.find img.Layout.func_entry "main");
        for i = 0 to 2 do
          if not (Hashtbl.mem img.Layout.block_addr ("main", i)) then
            Alcotest.failf "block %d missing" i
        done);
    Alcotest.test_case "owners attribute words to blocks" `Quick (fun () ->
        let p = parse branchy in
        let img = Layout.emit p in
        Array.iteri
          (fun i owner ->
            match owner with
            | Some ("main", b) when b >= 0 && b <= 2 -> ()
            | Some (f, b) -> Alcotest.failf "word %d owned by %s.%d" i f b
            | None -> Alcotest.failf "word %d unowned" i)
          img.Layout.owners);
    Alcotest.test_case "instr_count matches emitted text for straight-line code"
      `Quick (fun () ->
        let p = parse branchy in
        let img = Layout.emit p in
        Alcotest.(check int) "words" (Prog.text_words p) (Layout.text_words img));
    Alcotest.test_case "jump tables are emitted after the function" `Quick (fun () ->
        let src =
          {|
func main {
  .0:
    la t0, &table0
    ijump (t0) table 0
  .1:
    sys exit
    halt
  table 0: .1 .1
}
|}
        in
        let p = parse src in
        let img = Layout.emit p in
        let taddr = Hashtbl.find img.Layout.table_addr ("main", 0) in
        let b1 = Hashtbl.find img.Layout.block_addr ("main", 1) in
        (* Both table entries point at block 1. *)
        let idx = (taddr - img.Layout.text_base) / 4 in
        Alcotest.(check int) "entry 0" b1 img.Layout.text.(idx);
        Alcotest.(check int) "entry 1" b1 img.Layout.text.(idx + 1);
        Alcotest.(check int) "table words" (Prog.text_words p) (Layout.text_words img));
  ]

let suite = [ ("prog", unit_tests) ]
