(* The MiniC reference interpreter, and the compiler-vs-interpreter
   differential test: for any address-insensitive program, interpreting the
   resolved AST and compiling + running on the simulator must agree. *)

let interp ?(input = "") src = Mc_interp.run_source src ~input

let compiled ?(input = "") src =
  match Minic.compile src with
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)
  | Ok p -> Vm.run (Vm.of_image ~fuel:50_000_000 (Layout.emit p) ~input)

let agree ?input src =
  let a = interp ?input src in
  let b = compiled ?input src in
  Alcotest.(check string) "output" b.Vm.output a.Mc_interp.output;
  Alcotest.(check int) "exit" b.Vm.exit_code a.Mc_interp.exit_code

let unit_tests =
  [
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        agree "int main() { putint(2 + 3 * 4 - 17 / 5 % 2); return 41; }");
    Alcotest.test_case "loops and arrays" `Quick (fun () ->
        agree
          {|
int a[10];
int main() {
  int i; int s;
  for (i = 0; i < 10; i = i + 1) a[i] = i * i;
  s = 0;
  for (i = 0; i < 10; i = i + 1) s = s + a[i];
  putint(s);
  return s & 255;
}
|});
    Alcotest.test_case "recursion and globals" `Quick (fun () ->
        agree
          {|
int calls;
int ack(int m, int n) {
  calls = calls + 1;
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main() { putint(ack(2, 3)); putint(calls); return 0; }
|});
    Alcotest.test_case "switch with fallthrough and default" `Quick (fun () ->
        agree
          {|
int f(int x) {
  int s; s = 0;
  switch (x) {
    case 1: s = s + 1;
    case 2: s = s + 2; break;
    case 5: s = s + 5; break;
    default: s = 100;
  }
  return s;
}
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) putint(f(i));
  return 0;
}
|});
    Alcotest.test_case "strings, bytes and the heap" `Quick (fun () ->
        agree
          {|
int main() {
  int p; int i; int c;
  p = sbrk(16);
  storeb(p, 'h'); storeb(p + 1, 'i'); storeb(p + 2, 0);
  i = 0;
  while (1) {
    c = loadb(p + i);
    if (c == 0) break;
    putc(c);
    i = i + 1;
  }
  c = loadb("ok!");
  putc(c);
  return 0;
}
|});
    Alcotest.test_case "io round-trip" `Quick (fun () ->
        agree ~input:"\042\000\000\000xyz"
          {|
int main() {
  int w; int c;
  w = getw();
  putw(w * 3);
  while (1) {
    c = getc();
    if (c < 0) break;
    putc(c + 1);
  }
  return 0;
}
|});
    Alcotest.test_case "short-circuit evaluation order" `Quick (fun () ->
        agree
          {|
int trace(int v, int r) { putint(v); return r; }
int main() {
  int x;
  x = trace(1, 0) && trace(2, 1);
  x = x + (trace(3, 1) || trace(4, 0));
  putint(x);
  return 0;
}
|});
    Alcotest.test_case "division by zero is an error in both" `Quick (fun () ->
        let src = "int main() { int z; z = 0; return 5 / z; }" in
        (match interp src with
        | exception Mc_interp.Runtime_error _ -> ()
        | _ -> Alcotest.fail "interpreter should fail");
        match compiled src with
        | exception Vm.Trap _ -> ()
        | _ -> Alcotest.fail "VM should trap");
    Alcotest.test_case "setjmp is reported as unsupported" `Quick (fun () ->
        match interp "int jb[16]; int main() { return setjmp(jb); }" with
        | exception Mc_interp.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
  ]

let differential_tests =
  [
    Alcotest.test_case "differential: interpreter vs compiled, 60 programs" `Slow
      (fun () ->
        for seed = 100 to 159 do
          let src = Gen_minic.random_program ~seed in
          let a = interp src in
          let b = compiled src in
          if a.Mc_interp.output <> b.Vm.output || a.Mc_interp.exit_code <> b.Vm.exit_code
          then
            Alcotest.failf "seed %d: interpreter and compiled code disagree (%d vs %d)"
              seed a.Mc_interp.exit_code b.Vm.exit_code
        done);
    Alcotest.test_case "differential: interpreter vs squashed, 15 programs" `Slow
      (fun () ->
        for seed = 200 to 214 do
          let src = Gen_minic.random_program ~seed in
          let a = interp src in
          let p, _ = Squeeze.run (Minic.compile_exn src) in
          let profile, _ = Profile.collect p ~input:"" in
          let r =
            Squash.run ~options:{ Squash.default_options with Squash.theta = 1.0 } p
              profile
          in
          let b, _ = Runtime.run ~fuel:100_000_000 r.Squash.squashed ~input:"" in
          if a.Mc_interp.output <> b.Vm.output || a.Mc_interp.exit_code <> b.Vm.exit_code
          then Alcotest.failf "seed %d: interpreter and squashed code disagree" seed
        done);
  ]

let suite = [ ("interp", unit_tests @ differential_tests) ]
