(* Assembler parsing and round-tripping. *)

let sample =
  {|
; doubling a number through a call
.entry main
.data 16
.init 0 42

func main {
  .0:
    lda a0, 7(zero)
    call double
  .1:
    mov v0, a0
    sys exit
    halt
}

func double {
  .0:
    add a0, a0, v0
    ret
}
|}

let parse_ok src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let unit_tests =
  [
    Alcotest.test_case "parses the sample program" `Quick (fun () ->
        let p = parse_ok sample in
        Alcotest.(check (list string)) "functions" [ "main"; "double" ]
          (Prog.func_names p);
        Alcotest.(check string) "entry" "main" p.Prog.entry;
        Alcotest.(check int) "data" 16 p.Prog.data_words;
        let main = Option.get (Prog.find_func p "main") in
        Alcotest.(check int) "main blocks" 2 (Array.length main.Prog.Func.blocks));
    Alcotest.test_case "rejects undefined callee" `Quick (fun () ->
        let src = "func main {\n .0:\n call nosuch\n .1:\n halt\n}" in
        match Asm.parse_program src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected validation error");
    Alcotest.test_case "rejects out-of-order blocks" `Quick (fun () ->
        let src = "func main {\n .1:\n halt\n}" in
        match Asm.parse_program src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "rejects instruction after terminator" `Quick (fun () ->
        let src = "func main {\n .0:\n ret\n nop\n}" in
        match Asm.parse_program src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "parses all terminator forms" `Quick (fun () ->
        let src =
          {|
func main {
  .0:
    goto .1
  .1:
    if ne t0 goto .0 else .2
  .2:
    call aux
  .3:
    la t1, &aux
    icall (t1)
  .4:
    la t2, &table0
    ijump (t2) table 0
  .5:
    sys exit
    halt
  table 0: .5 .5
}

func aux {
  .0:
    ret
}
|}
        in
        let p = parse_ok src in
        let main = Option.get (Prog.find_func p "main") in
        Alcotest.(check int) "blocks" 6 (Array.length main.Prog.Func.blocks);
        Alcotest.(check int) "tables" 1 (Array.length main.Prog.Func.tables));
    Alcotest.test_case "pp_program round-trips" `Quick (fun () ->
        let p = parse_ok sample in
        let src2 = Format.asprintf "%a" Asm.pp_program p in
        let p2 = parse_ok src2 in
        Alcotest.(check string) "stable print"
          (Format.asprintf "%a" Asm.pp_program p)
          (Format.asprintf "%a" Asm.pp_program p2));
    Alcotest.test_case "immediate and memory operands" `Quick (fun () ->
        let src =
          "func main {\n\
          \ .0:\n\
          \ add t0, #5, t1\n\
          \ ldw t2, -8(sp)\n\
          \ stb t2, 3(t0)\n\
          \ li t3, 1000000\n\
          \ sys exit\n\
          \ halt\n\
           }"
        in
        let p = parse_ok src in
        let main = Option.get (Prog.find_func p "main") in
        let items = main.Prog.Func.blocks.(0).Prog.Block.items in
        (* li 1000000 expands to two instructions. *)
        Alcotest.(check int) "item count" 6 (List.length items));
    Alcotest.test_case "disassemble shows data words" `Quick (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let words = [| Instr.encode Instr.Nop; 0x05 lsl 26 |] in
        let text = Asm.disassemble words ~base:0x1000 in
        Alcotest.(check bool) "has nop" true (contains text "nop");
        Alcotest.(check bool) "has raw word" true (contains text ".word"));
  ]

let suite = [ ("asm", unit_tests) ]
