(* VM execution semantics, exercised through assembled programs. *)

let run ?(input = "") ?fuel src =
  match Asm.parse_program src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
    let img = Layout.emit p in
    Vm.run (Vm.of_image ?fuel img ~input)

let check_exit name expected outcome =
  Alcotest.(check int) name expected outcome.Vm.exit_code

let unit_tests =
  [
    Alcotest.test_case "exit code is a0" `Quick (fun () ->
        let o = run "func main {\n .0:\n lda a0, 42(zero)\n sys exit\n halt\n}" in
        check_exit "exit" 42 o);
    Alcotest.test_case "arithmetic and immediates" `Quick (fun () ->
        let o =
          run
            {|
func main {
  .0:
    lda t0, 10(zero)
    mul t0, #7, t1      ; 70
    sub t1, #5, t1      ; 65
    div t1, #2, t1      ; 32
    rem t1, #5, t2      ; 2
    sll t1, #2, t1      ; 128
    add t1, t2, a0      ; 130
    sys exit
    halt
}
|}
        in
        check_exit "exit" 130 o);
    Alcotest.test_case "loop computes a sum" `Quick (fun () ->
        (* sum 1..10 = 55 *)
        let o =
          run
            {|
func main {
  .0:
    lda t0, 10(zero)
    lda t1, 0(zero)
  .1:
    add t1, t0, t1
    sub t0, #1, t0
    if gt t0 goto .1 else .2
  .2:
    mov t1, a0
    sys exit
    halt
}
|}
        in
        check_exit "exit" 55 o);
    Alcotest.test_case "recursive calls (fib 10 = 55)" `Quick (fun () ->
        let o =
          run
            {|
.entry main
func main {
  .0:
    lda a0, 10(zero)
    call fib
  .1:
    mov v0, a0
    sys exit
    halt
}
func fib {
  .0:
    sub sp, #16, sp
    stw ra, 0(sp)
    stw s0, 4(sp)
    stw s1, 8(sp)
    mov a0, s0
    cmplt a0, #2, t0
    if ne t0 goto .4 else .1
  .1:
    sub s0, #1, a0
    call fib
  .2:
    mov v0, s1
    sub s0, #2, a0
    call fib
  .3:
    add v0, s1, v0
    goto .5
  .4:
    mov s0, v0
  .5:
    ldw ra, 0(sp)
    ldw s0, 4(sp)
    ldw s1, 8(sp)
    add sp, #16, sp
    ret
}
|}
        in
        check_exit "fib" 55 o);
    Alcotest.test_case "memory: word and byte access" `Quick (fun () ->
        let o =
          run
            {|
.data 4
func main {
  .0:
    li t0, 4194304       ; data base
    li t1, 305419896     ; 0x12345678
    stw t1, 0(t0)
    ldb t2, 1(t0)        ; 0x56 little-endian
    ldw t3, 0(t0)
    xor t3, t1, t3       ; 0
    add t2, t3, a0
    sys exit
    halt
}
|}
        in
        check_exit "byte" 0x56 o);
    Alcotest.test_case "getc/putc echo input" `Quick (fun () ->
        let o =
          run ~input:"hi!"
            {|
func main {
  .0:
    sys getc
    mov v0, t0
    if lt t0 goto .2 else .1
  .1:
    mov t0, a0
    sys putc
    goto .0
  .2:
    lda a0, 0(zero)
    sys exit
    halt
}
|}
        in
        Alcotest.(check string) "output" "hi!" o.Vm.output;
        check_exit "exit" 0 o);
    Alcotest.test_case "getw/putw move words" `Quick (fun () ->
        let o =
          run ~input:"\x01\x02\x03\x04"
            {|
func main {
  .0:
    sys getw
    mov v0, a0
    sys putw
    lda a0, 0(zero)
    sys exit
    halt
}
|}
        in
        Alcotest.(check string) "output" "\x01\x02\x03\x04" o.Vm.output);
    Alcotest.test_case "putint prints decimals" `Quick (fun () ->
        let o =
          run
            "func main {\n\
            \ .0:\n\
            \ lda a0, -7(zero)\n\
            \ sys putint\n\
            \ lda a0, 0(zero)\n\
            \ sys exit\n\
            \ halt\n\
             }"
        in
        Alcotest.(check string) "output" "-7\n" o.Vm.output);
    Alcotest.test_case "jump through a table" `Quick (fun () ->
        let o =
          run
            {|
func main {
  .0:
    lda t0, 1(zero)      ; select case 1
    la t1, &table0
    sll t0, #2, t0
    add t1, t0, t1
    ldw t1, 0(t1)
    ijump (t1) table 0
  .1:
    lda a0, 11(zero)
    sys exit
    halt
  .2:
    lda a0, 22(zero)
    sys exit
    halt
  .3:
    lda a0, 33(zero)
    sys exit
    halt
  table 0: .1 .2 .3
}
|}
        in
        check_exit "case" 22 o);
    Alcotest.test_case "indirect call through a function pointer" `Quick (fun () ->
        let o =
          run
            {|
.entry main
func main {
  .0:
    la t0, &leaf
    lda a0, 20(zero)
    icall (t0)
  .1:
    mov v0, a0
    sys exit
    halt
}
func leaf {
  .0:
    add a0, #1, v0
    ret
}
|}
        in
        check_exit "icall" 21 o);
    Alcotest.test_case "setjmp/longjmp unwinds" `Quick (fun () ->
        let o =
          run
            {|
.entry main
.data 16
func main {
  .0:
    li a0, 4194304
    sys setjmp
    mov v0, t0
    if ne t0 goto .2 else .1
  .1:
    call thrower
  .2:
    mov t0, a0           ; longjmp value becomes the exit code
    sys exit
    halt
}
func thrower {
  .0:
    li a0, 4194304
    lda a1, 9(zero)
    sys longjmp
    halt
}
|}
        in
        check_exit "longjmp value" 9 o);
    Alcotest.test_case "division by zero traps" `Quick (fun () ->
        match
          run "func main {\n .0:\n lda t0, 1(zero)\n div t0, zero, t0\n sys exit\n halt\n}"
        with
        | exception Vm.Trap { reason; _ } ->
          Alcotest.(check string) "reason" "division by zero" reason
        | _ -> Alcotest.fail "expected trap");
    Alcotest.test_case "fuel exhaustion traps" `Quick (fun () ->
        match run ~fuel:100 "func main {\n .0:\n goto .0\n}" with
        | exception Vm.Trap { reason; _ } ->
          Alcotest.(check string) "reason" "out of fuel" reason
        | _ -> Alcotest.fail "expected trap");
    Alcotest.test_case "self-modifying text re-decodes" `Quick (fun () ->
        (* main stores an "lda a0, 77(zero)" over a placeholder nop in patchme,
           then calls it. *)
        let lda77 = Instr.encode (Instr.Lda { ra = 16; rb = Reg.zero; disp = 77 }) in
        let src =
          Printf.sprintf
            {|
.entry main
func main {
  .0:
    call probe
  .1:
    li t1, %d
    mov v0, t2
    stw t1, 0(t2)
    call patchme
  .2:
    mov v0, a0
    sys exit
    halt
}
func patchme {
  .0:
    nop
    mov a0, v0
    ret
}
func probe {
  .0:
    la v0, &patchme
    ret
}
|}
            lda77
        in
        let o = run src in
        check_exit "patched result" 77 o);
    Alcotest.test_case "profiling counts block executions" `Quick (fun () ->
        let src =
          {|
func main {
  .0:
    lda t0, 5(zero)
  .1:
    sub t0, #1, t0
    if gt t0 goto .1 else .2
  .2:
    lda a0, 0(zero)
    sys exit
    halt
}
|}
        in
        match Asm.parse_program src with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let img = Layout.emit p in
          let vm = Vm.of_image ~profile:true img ~input:"" in
          let _ = Vm.run vm in
          let counts = Option.get (Vm.counts vm) in
          let addr = Hashtbl.find img.Layout.block_addr ("main", 1) in
          let idx = (addr - img.Layout.text_base) / 4 in
          Alcotest.(check int) "loop head runs 5x" 5 counts.(idx));
    Alcotest.test_case "cycles exceed instructions" `Quick (fun () ->
        let o =
          run "func main {\n .0:\n mul t0, #3, t0\n lda a0, 0(zero)\n sys exit\n halt\n}"
        in
        Alcotest.(check bool) "cycles > icount" true (o.Vm.cycles > o.Vm.icount));
    Alcotest.test_case "hooks intercept fetch" `Quick (fun () ->
        let src = "func main {\n .0:\n nop\n nop\n lda a0, 1(zero)\n sys exit\n halt\n}" in
        match Asm.parse_program src with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let img = Layout.emit p in
          let vm = Vm.of_image img ~input:"" in
          (* Hook the second nop: set a0 to 99 and skip to the syscall. *)
          let hook_addr = img.Layout.entry_addr + 4 in
          Vm.install_hook vm ~addr:hook_addr (fun vm ->
              Vm.set_reg vm 16 99;
              Vm.add_cycles vm 1000;
              Vm.set_pc vm (hook_addr + 8));
          let o = Vm.run vm in
          check_exit "hook result" 99 o;
          Alcotest.(check bool) "hook cycles charged" true (o.Vm.cycles >= 1000));
  ]

let suite = [ ("vm", unit_tests) ]
