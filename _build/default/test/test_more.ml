(* Additional coverage: naming bijections, VM trap semantics, MiniC
   front-end error paths, and profile corner cases. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- naming bijections ------------------------------------------------ *)

let naming_tests =
  [
    Alcotest.test_case "register names round-trip" `Quick (fun () ->
        for r = 0 to Reg.count - 1 do
          match Reg.of_name (Reg.name r) with
          | Some r' when r' = r -> ()
          | Some r' -> Alcotest.failf "r%d -> %s -> r%d" r (Reg.name r) r'
          | None -> Alcotest.failf "r%d -> %s -> none" r (Reg.name r)
        done);
    Alcotest.test_case "raw register spellings parse" `Quick (fun () ->
        Alcotest.(check (option int)) "r17" (Some 17) (Reg.of_name "r17");
        Alcotest.(check (option int)) "r32" None (Reg.of_name "r32");
        Alcotest.(check (option int)) "bogus" None (Reg.of_name "zap"));
    Alcotest.test_case "syscall codes round-trip" `Quick (fun () ->
        List.iter
          (fun sc ->
            match Syscall.of_code (Syscall.to_code sc) with
            | Some sc' when sc' = sc -> ()
            | _ -> Alcotest.failf "syscall %s does not round-trip" (Syscall.name sc))
          [ Syscall.Exit; Syscall.Getc; Syscall.Putc; Syscall.Putint; Syscall.Sbrk;
            Syscall.Setjmp; Syscall.Longjmp; Syscall.Getw; Syscall.Putw ];
        Alcotest.(check bool) "unknown code" true (Syscall.of_code 999 = None));
    Alcotest.test_case "calling convention registers are disjoint" `Quick
      (fun () ->
        let special = [ Reg.zero; Reg.sp; Reg.ra; Reg.rv; Reg.stub_scratch ] in
        List.iter
          (fun r ->
            if List.mem r Reg.args || List.mem r Reg.temps then
              Alcotest.failf "special register %s doubles as arg/temp" (Reg.name r))
          special;
        List.iter
          (fun r ->
            if List.mem r Reg.saved then
              Alcotest.failf "%s is both caller- and callee-saved" (Reg.name r))
          (Reg.args @ Reg.temps));
  ]

(* --- VM trap semantics ------------------------------------------------ *)

let run_asm ?(input = "") ?fuel src =
  match Asm.parse_program src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p -> Vm.run (Vm.of_image ?fuel (Layout.emit p) ~input)

let expect_trap name src reason_fragment =
  Alcotest.test_case name `Quick (fun () ->
      match run_asm src with
      | exception Vm.Trap { reason; _ } ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        if not (contains reason reason_fragment) then
          Alcotest.failf "trap reason %S lacks %S" reason reason_fragment
      | o -> Alcotest.failf "expected a trap, got exit %d" o.Vm.exit_code)

let vm_tests =
  [
    expect_trap "unaligned word load traps"
      "func main {\n .0:\n lda t0, 2(zero)\n ldw t1, 0(t0)\n sys exit\n halt\n}"
      "unaligned";
    expect_trap "out-of-range store traps"
      "func main {\n .0:\n li t0, -4096\n stw t0, 0(t0)\n sys exit\n halt\n}"
      "out of range";
    expect_trap "jump to unmapped memory traps"
      "func main {\n .0:\n li t0, 15728640\n ijump (t0)\n .1:\n sys exit\n halt\n}"
      "illegal instruction";
    Alcotest.test_case "ret also writes the link register" `Quick (fun () ->
        (* jsr through t0 to a block that returns via ra; the link written by
           ret itself lands in the named register. *)
        let o =
          run_asm
            {|
.entry main
func main {
  .0:
    la t0, &probe
    icall (t0)
  .1:
    mov v0, a0
    sys exit
    halt
}
func probe {
  .0:
    mov ra, v0
    ret
}
|}
        in
        (* probe's v0 = return address = the instruction after the jsr. *)
        Alcotest.(check bool) "link points into main" true (o.Vm.exit_code > 0));
    Alcotest.test_case "byte stores straddle word boundaries correctly" `Quick
      (fun () ->
        let o =
          run_asm
            {|
.data 4
func main {
  .0:
    li t0, 4194304
    li t1, -1
    stw t1, 0(t0)
    stb zero, 2(t0)      ; clear byte 2 -> 0xff00ffff
    ldw t2, 0(t0)
    li t3, -16711681     ; 0xff00ffff
    xor t2, t3, a0       ; 0 when equal
    sys exit
    halt
}
|}
        in
        Alcotest.(check int) "pattern" 0 o.Vm.exit_code);
  ]

(* --- MiniC front-end error paths -------------------------------------- *)

let compile_error src =
  match Minic.compile src with
  | Error e -> e
  | Ok _ -> Alcotest.failf "expected a compile error for %S" src

let minic_tests =
  [
    Alcotest.test_case "lexer: unterminated comment" `Quick (fun () ->
        ignore (compile_error "int main() { return 0; } /* oops"));
    Alcotest.test_case "lexer: unterminated string" `Quick (fun () ->
        ignore (compile_error "int main() { loadb(\"oops); return 0; }"));
    Alcotest.test_case "lexer: bad escape" `Quick (fun () ->
        ignore (compile_error "int main() { return '\\q'; }"));
    Alcotest.test_case "parser: missing semicolon has a position" `Quick
      (fun () ->
        let e = compile_error "int main() {\n  return 1\n}" in
        Alcotest.(check int) "line" 3 e.Minic.line);
    Alcotest.test_case "parser: assignment to a call" `Quick (fun () ->
        ignore (compile_error "int f() { return 0; } int main() { f() = 3; return 0; }"));
    Alcotest.test_case "sema: const cannot reference later const" `Quick
      (fun () ->
        ignore (compile_error "const A = B + 1; const B = 2; int main() { return A; }"));
    Alcotest.test_case "sema: array size must be positive" `Quick (fun () ->
        ignore (compile_error "int a[0]; int main() { return 0; }"));
    Alcotest.test_case "sema: calling a global array" `Quick (fun () ->
        ignore (compile_error "int a[4]; int main() { return a(); }"));
    Alcotest.test_case "sema: too many parameters" `Quick (fun () ->
        ignore
          (compile_error
             "int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }\n\
              int main() { return 0; }"));
    Alcotest.test_case "deep expressions are rejected, not miscompiled" `Quick
      (fun () ->
        (* 40 nested calls exceed the 27 evaluation slots. *)
        let deep =
          String.concat "" (List.init 40 (fun _ -> "id(1 + "))
          ^ "0" ^ String.make 40 ')'
        in
        let src =
          "int id(int x) { return x; } int main() { return " ^ deep ^ "; }"
        in
        match Minic.compile src with
        | Error _ -> ()
        | Ok p ->
          (* If it compiles, it must still be correct. *)
          let o = Vm.run (Vm.of_image (Layout.emit p) ~input:"") in
          Alcotest.(check int) "value" 40 o.Vm.exit_code);
  ]

(* --- profile corners --------------------------------------------------- *)

let profile_tests =
  [
    Alcotest.test_case "profile of a trapping program raises" `Quick (fun () ->
        let p =
          Minic.compile_exn "int main() { int z; z = 0; return 1 / z; }"
        in
        match Profile.collect p ~input:"" with
        | exception Vm.Trap _ -> ()
        | _ -> Alcotest.fail "expected trap");
    qcheck
      (QCheck.Test.make ~name:"profile totals equal dynamic instruction counts"
         ~count:8
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 500 515))
         (fun seed ->
           let p = Minic.compile_exn (Gen_minic.random_program ~seed) in
           let prof, outcome = Profile.collect p ~input:"" in
           Profile.total_weight prof = outcome.Vm.icount));
  ]

let suite =
  [ ("more", naming_tests @ vm_tests @ minic_tests @ profile_tests) ]
