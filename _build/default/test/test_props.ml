(* Cross-cutting property tests: VM arithmetic against the Word
   specification, squeeze idempotence, and assembler round-trips. *)

let qcheck = QCheck_alcotest.to_alcotest

(* Execute one ALU operation on the VM and compare with Word's semantics. *)
let arb_alu_case =
  let gen =
    QCheck.Gen.(
      triple
        (oneofl
           [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
             Instr.Or; Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra; Instr.Cmpeq;
             Instr.Cmpne; Instr.Cmplt; Instr.Cmple; Instr.Cmpult; Instr.Cmpule ])
        (map (fun v -> v land Word.mask) (int_bound max_int))
        (map (fun v -> v land Word.mask) (int_bound max_int)))
  in
  QCheck.make
    ~print:(fun (op, a, b) ->
      Printf.sprintf "%s %d %d"
        (Instr.to_string (Instr.Opr { op; ra = 1; rb = Instr.Reg 2; rc = 3 }))
        a b)
    gen

let spec_alu op a b =
  match op with
  | Instr.Add -> Some (Word.add a b)
  | Instr.Sub -> Some (Word.sub a b)
  | Instr.Mul -> Some (Word.mul a b)
  | Instr.Div -> ( try Some (Word.sdiv a b) with Word.Division_trap -> None)
  | Instr.Rem -> ( try Some (Word.srem a b) with Word.Division_trap -> None)
  | Instr.And -> Some (Word.logand a b)
  | Instr.Or -> Some (Word.logor a b)
  | Instr.Xor -> Some (Word.logxor a b)
  | Instr.Sll -> Some (Word.shift_left a (b land 31))
  | Instr.Srl -> Some (Word.shift_right_logical a (b land 31))
  | Instr.Sra -> Some (Word.shift_right_arith a (b land 31))
  | Instr.Cmpeq -> Some (if Word.eq a b then 1 else 0)
  | Instr.Cmpne -> Some (if Word.eq a b then 0 else 1)
  | Instr.Cmplt -> Some (if Word.slt a b then 1 else 0)
  | Instr.Cmple -> Some (if Word.sle a b then 1 else 0)
  | Instr.Cmpult -> Some (if Word.ult a b then 1 else 0)
  | Instr.Cmpule -> Some (if Word.ule a b then 1 else 0)

(* Run [op a b] on the VM: materialise the operands with constants, apply
   the operation, store the result to a known data word. *)
let vm_alu op a b =
  let asm = Easm.create ~base:Layout.text_base in
  let hi_a, lo_a = Easm.split_const a in
  let hi_b, lo_b = Easm.split_const b in
  Easm.instr asm (Instr.Ldah { ra = 1; rb = Reg.zero; disp = hi_a });
  Easm.instr asm (Instr.Lda { ra = 1; rb = 1; disp = lo_a });
  Easm.instr asm (Instr.Ldah { ra = 2; rb = Reg.zero; disp = hi_b });
  Easm.instr asm (Instr.Lda { ra = 2; rb = 2; disp = lo_b });
  Easm.instr asm (Instr.Opr { op; ra = 1; rb = Instr.Reg 2; rc = 3 });
  let hi_d, lo_d = Easm.split_const Layout.data_base in
  Easm.instr asm (Instr.Ldah { ra = 4; rb = Reg.zero; disp = hi_d });
  Easm.instr asm (Instr.Lda { ra = 4; rb = 4; disp = lo_d });
  Easm.instr asm (Instr.Mem { op = Instr.Stw; ra = 3; rb = 4; disp = 0 });
  Easm.instr asm (Instr.Opr { op = Instr.Or; ra = Reg.zero; rb = Instr.Reg Reg.zero; rc = 16 });
  Easm.instr asm (Instr.Sys (Syscall.to_code Syscall.Exit));
  let img = Easm.finish asm in
  let vm =
    Vm.create ~fuel:100 ~text_base:Layout.text_base ~text:img.Easm.words
      ~entry:Layout.text_base ~data_base:Layout.data_base ~data_words:1
      ~data_init:[] ~input:"" ()
  in
  match Vm.run vm with
  | _ -> Some (Vm.load_word vm Layout.data_base)
  | exception Vm.Trap _ -> None

let props =
  [
    qcheck
      (QCheck.Test.make ~name:"VM ALU matches the Word specification" ~count:150
         arb_alu_case (fun (op, a, b) -> vm_alu op a b = spec_alu op a b));
    qcheck
      (QCheck.Test.make ~name:"squeeze is idempotent on random programs" ~count:8
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 300 320))
         (fun seed ->
           let p = Minic.compile_exn (Gen_minic.random_program ~seed) in
           let q1, _ = Squeeze.run p in
           let q2, _ = Squeeze.run q1 in
           Prog.instr_count q2 = Prog.instr_count q1));
    qcheck
      (QCheck.Test.make ~name:"assembler round-trips compiled programs" ~count:6
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 400 415))
         (fun seed ->
           let src = Gen_minic.random_program ~seed in
           let p = Minic.compile_exn src in
           let text = Format.asprintf "%a" Asm.pp_program p in
           match Asm.parse_program text with
           | Error e -> QCheck.Test.fail_report e
           | Ok p2 ->
             let run prog = Vm.run (Vm.of_image ~fuel:20_000_000 (Layout.emit prog) ~input:"") in
             let o1 = run p and o2 = run p2 in
             o1.Vm.output = o2.Vm.output && o1.Vm.exit_code = o2.Vm.exit_code));
  ]

let suite = [ ("props", props) ]
