(* The two-pass emission assembler: label fixups, displacement resolution,
   error handling, and the constant splitter. *)

let qcheck = QCheck_alcotest.to_alcotest

let unit_tests =
  [
    Alcotest.test_case "forward branch displacement" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let l = Easm.fresh_label asm "target" in
        Easm.branch asm `Br Reg.zero l;
        Easm.instr asm Instr.Nop;
        Easm.bind asm l;
        Easm.instr asm Instr.Nop;
        let img = Easm.finish asm in
        (* br at 0x1000, target 0x1008: disp = (0x1008 - 0x1004)/4 = 1. *)
        match Instr.decode img.Easm.words.(0) with
        | Ok (Instr.Br { disp; _ }) -> Alcotest.(check int) "disp" 1 disp
        | _ -> Alcotest.fail "expected br");
    Alcotest.test_case "backward branch displacement" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let l = Easm.fresh_label asm "loop" in
        Easm.bind asm l;
        Easm.instr asm Instr.Nop;
        Easm.branch asm `Br Reg.zero l;
        let img = Easm.finish asm in
        match Instr.decode img.Easm.words.(1) with
        | Ok (Instr.Br { disp; _ }) -> Alcotest.(check int) "disp" (-2) disp
        | _ -> Alcotest.fail "expected br");
    Alcotest.test_case "load_addr materialises the label address" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let l = Easm.fresh_label asm "x" in
        Easm.load_addr asm 3 l;
        Easm.bind asm l;
        Easm.word asm 0xDEAD;
        let img = Easm.finish asm in
        (* Simulate the pair: ldah r3, hi(zero); lda r3, lo(r3). *)
        let value =
          match
            (Instr.decode img.Easm.words.(0), Instr.decode img.Easm.words.(1))
          with
          | Ok (Instr.Ldah { disp = hi; _ }), Ok (Instr.Lda { disp = lo; _ }) ->
            (hi lsl 16) + lo
          | _ -> Alcotest.fail "expected ldah/lda pair"
        in
        Alcotest.(check int) "address" 0x1008 value);
    Alcotest.test_case "addr_word stores the absolute address" `Quick (fun () ->
        let asm = Easm.create ~base:0x2000 in
        let l = Easm.fresh_label asm "t" in
        Easm.addr_word asm l;
        Easm.bind asm l;
        Easm.instr asm Instr.Nop;
        let img = Easm.finish asm in
        Alcotest.(check int) "word" 0x2004 img.Easm.words.(0));
    Alcotest.test_case "label_at binds outside the stream" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let ext = Easm.label_at asm "external" 0x8000 in
        Easm.branch asm `Bsr 26 ext;
        let img = Easm.finish asm in
        match Instr.decode img.Easm.words.(0) with
        | Ok (Instr.Bsr { disp; _ }) ->
          Alcotest.(check int) "disp" ((0x8000 - 0x1004) / 4) disp
        | _ -> Alcotest.fail "expected bsr");
    Alcotest.test_case "unbound label fails at finish" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let l = Easm.fresh_label asm "never" in
        Easm.branch asm `Br Reg.zero l;
        match Easm.finish asm with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "double bind is rejected" `Quick (fun () ->
        let asm = Easm.create ~base:0x1000 in
        let l = Easm.fresh_label asm "l" in
        Easm.bind asm l;
        match Easm.bind asm l with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "unaligned base is rejected" `Quick (fun () ->
        match Easm.create ~base:0x1002 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "owners follow set_owner" `Quick (fun () ->
        let asm = Easm.create ~base:0 in
        Easm.set_owner asm (Some ("f", 0));
        Easm.instr asm Instr.Nop;
        Easm.set_owner asm None;
        Easm.word asm 42;
        let img = Easm.finish asm in
        Alcotest.(check bool) "first owned" true (img.Easm.owners.(0) = Some ("f", 0));
        Alcotest.(check bool) "second unowned" true (img.Easm.owners.(1) = None));
  ]

let arb_value =
  QCheck.make ~print:string_of_int
    QCheck.Gen.(map (fun v -> v land Word.mask) (int_bound max_int))

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"split_const reassembles modulo 2^32" ~count:1000
         arb_value (fun v ->
           let hi, lo = Easm.split_const v in
           Word.fits_signed ~width:16 hi
           && Word.fits_signed ~width:16 lo
           && Word.add (Word.of_int (hi lsl 16)) (Word.of_int lo) = v));
    qcheck
      (QCheck.Test.make ~name:"split_addr is exact below 2GB" ~count:1000
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 0x7FFF_7FFF))
         (fun a ->
           let hi, lo = Easm.split_addr a in
           (hi lsl 16) + lo = a));
  ]

let suite = [ ("easm", unit_tests @ prop_tests) ]
