(* A generator of random — but always terminating and trap-free — MiniC
   programs, used for differential testing: a transformed program (squeezed
   or squashed) must behave exactly like the original.

   Termination and safety come by construction: the call graph is acyclic
   (function i only calls functions with larger indices), all loops are
   counted [for] loops with constant bounds, divisors are forced non-zero
   with [(e & 15) + 1], and array indices are masked to the array size. *)

type ctx = {
  rng : Random.State.t;
  vars : string list;  (* scalar locals/params and globals in scope *)
  locals : string list;  (* the subset of [vars] invisible to callees; only
                            these may drive counted loops, so that a call in
                            the loop body cannot reset the induction
                            variable *)
  arrays : (string * int) list;  (* name, power-of-two size *)
  callable : (string * int) list;  (* functions with larger index: name, arity *)
  depth : int;
}

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let rec gen_expr ctx : string =
  let rng = ctx.rng in
  let atom () =
    let choices =
      [ `Const ]
      @ (if ctx.vars <> [] then [ `Var; `Var ] else [])
      @ (if ctx.arrays <> [] then [ `Index ] else [])
      @ if ctx.callable <> [] && ctx.depth < 2 then [ `Call ] else []
    in
    match pick rng choices with
    | `Const -> string_of_int (Random.State.int rng 201 - 100)
    | `Var -> pick rng ctx.vars
    | `Index ->
      let name, size = pick rng ctx.arrays in
      let idx = gen_expr { ctx with depth = ctx.depth + 2 } in
      Printf.sprintf "%s[(%s) & %d]" name idx (size - 1)
    | `Call ->
      let name, arity = pick rng ctx.callable in
      let args =
        List.init arity (fun _ -> gen_expr { ctx with depth = ctx.depth + 2 })
      in
      Printf.sprintf "%s(%s)" name (String.concat ", " args)
  in
  if ctx.depth >= 4 then atom ()
  else
    match Random.State.int rng 10 with
    | 0 | 1 | 2 -> atom ()
    | 3 ->
      let sub = { ctx with depth = ctx.depth + 1 } in
      let op = pick rng [ "+"; "-"; "*"; "&"; "|"; "^" ] in
      Printf.sprintf "(%s %s %s)" (gen_expr sub) op (gen_expr sub)
    | 4 ->
      let sub = { ctx with depth = ctx.depth + 1 } in
      let op = pick rng [ "/"; "%" ] in
      Printf.sprintf "(%s %s ((%s & 15) + 1))" (gen_expr sub) op (gen_expr sub)
    | 5 ->
      let sub = { ctx with depth = ctx.depth + 1 } in
      let op = pick rng [ "<<"; ">>"; ">>>" ] in
      Printf.sprintf "(%s %s %d)" (gen_expr sub) op (Random.State.int rng 8)
    | 6 ->
      let sub = { ctx with depth = ctx.depth + 1 } in
      let op = pick rng [ "=="; "!="; "<"; "<="; ">"; ">=" ] in
      Printf.sprintf "(%s %s %s)" (gen_expr sub) op (gen_expr sub)
    | 7 ->
      let sub = { ctx with depth = ctx.depth + 1 } in
      let op = pick rng [ "&&"; "||" ] in
      Printf.sprintf "(%s %s %s)" (gen_expr sub) op (gen_expr sub)
    | 8 -> Printf.sprintf "(-(%s))" (gen_expr { ctx with depth = ctx.depth + 1 })
    | _ -> atom ()

let rec gen_stmt ctx ~indent : string =
  let rng = ctx.rng in
  let pad = String.make indent ' ' in
  match Random.State.int rng 12 with
  | 0 | 1 | 2 | 3 when ctx.vars <> [] ->
    Printf.sprintf "%s%s = %s;" pad (pick rng ctx.vars) (gen_expr ctx)
  | 4 when ctx.arrays <> [] ->
    let name, size = pick rng ctx.arrays in
    Printf.sprintf "%s%s[(%s) & %d] = %s;" pad name (gen_expr ctx) (size - 1)
      (gen_expr ctx)
  | 5 | 6 ->
    let body = gen_stmt ctx ~indent:(indent + 2) in
    let else_ =
      if Random.State.bool rng then
        Printf.sprintf "\n%selse\n%s" pad (gen_stmt ctx ~indent:(indent + 2))
      else ""
    in
    Printf.sprintf "%sif (%s)\n%s%s" pad (gen_expr ctx) body else_
  | 7 when ctx.locals <> [] ->
    (* A counted loop over a local index variable that neither the body nor
       any callee can reassign. *)
    let v = pick rng ctx.locals in
    let bound = 1 + Random.State.int rng 6 in
    let sub =
      { ctx with
        vars = List.filter (fun x -> x <> v) ctx.vars;
        locals = List.filter (fun x -> x <> v) ctx.locals }
    in
    let body = gen_stmt sub ~indent:(indent + 2) in
    if body = "" then Printf.sprintf "%s;" pad
    else
      Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n%s\n%s}" pad v v bound v
        v body pad
  | 8 ->
    let scrut = gen_expr ctx in
    let ncases = 2 + Random.State.int rng 5 in
    let cases =
      List.init ncases (fun i ->
          Printf.sprintf "%s  case %d: %s break;" pad i
            (gen_stmt { ctx with depth = 0 } ~indent:0))
    in
    let default = Printf.sprintf "%s  default: %s" pad (gen_stmt ctx ~indent:0) in
    Printf.sprintf "%sswitch ((%s) & 7) {\n%s\n%s\n%s}" pad scrut
      (String.concat "\n" cases) default pad
  | 9 ->
    Printf.sprintf "%sputint(%s);" pad (gen_expr ctx)
  | _ when ctx.vars <> [] ->
    Printf.sprintf "%s%s = %s;" pad (pick rng ctx.vars) (gen_expr ctx)
  | _ -> Printf.sprintf "%sputint(%s);" pad (gen_expr ctx)

let gen_func rng ~name ~arity ~callable ~globals ~global_arrays =
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let nlocals = 1 + Random.State.int rng 3 in
  let locals = List.init nlocals (fun i -> Printf.sprintf "v%d" i) in
  let ctx =
    {
      rng;
      vars = params @ locals @ globals;
      locals = params @ locals;
      arrays = global_arrays;
      callable;
      depth = 0;
    }
  in
  let decls =
    List.map (fun v -> Printf.sprintf "  int %s = %d;" v (Random.State.int rng 50)) locals
  in
  let nstmts = 2 + Random.State.int rng 5 in
  let stmts = List.init nstmts (fun _ -> gen_stmt ctx ~indent:2) in
  let ret = Printf.sprintf "  return %s;" (gen_expr ctx) in
  Printf.sprintf "int %s(%s) {\n%s\n%s\n%s\n}" name
    (String.concat ", " (List.map (fun p -> "int " ^ p) params))
    (String.concat "\n" decls)
    (String.concat "\n" stmts)
    ret

let random_program ~seed =
  let rng = Random.State.make [| seed; 0x5EED |] in
  let nglobals = 1 + Random.State.int rng 3 in
  let globals = List.init nglobals (fun i -> Printf.sprintf "g%d" i) in
  let global_arrays = [ ("ga", 8); ("gb", 16) ] in
  let nfuncs = 2 + Random.State.int rng 4 in
  let arities = List.init nfuncs (fun _ -> 1 + Random.State.int rng 2) in
  let fnames = List.init nfuncs (fun i -> Printf.sprintf "f%d" i) in
  let funcs =
    List.mapi
      (fun i name ->
        let callable =
          List.filteri (fun j _ -> j > i) (List.combine fnames arities)
        in
        gen_func rng ~name ~arity:(List.nth arities i) ~callable ~globals
          ~global_arrays)
      fnames
  in
  let header =
    String.concat "\n"
      (List.map (fun g -> Printf.sprintf "int %s = %d;" g (Random.State.int rng 100)) globals
      @ List.map
          (fun (a, n) ->
            Printf.sprintf "int %s[%d] = { %s };" a n
              (String.concat ", "
                 (List.init n (fun _ -> string_of_int (Random.State.int rng 256)))))
          global_arrays)
  in
  let main_locals = [ "m0"; "m1" ] in
  let main_ctx =
    {
      rng;
      vars = main_locals @ globals;
      locals = main_locals;
      arrays = global_arrays;
      callable = List.combine fnames arities;
      depth = 0;
    }
  in
  let calls =
    List.init 6 (fun _ -> Printf.sprintf "  putint(%s);" (gen_expr main_ctx))
  in
  let main_stmts = List.init 4 (fun _ -> gen_stmt main_ctx ~indent:2) in
  Printf.sprintf
    "%s\n%s\nint main() {\n  int m0 = 1;\n  int m1 = 2;\n%s\n%s\n  return (%s) & 255;\n}\n"
    header
    (String.concat "\n" funcs)
    (String.concat "\n" main_stmts)
    (String.concat "\n" calls)
    (gen_expr main_ctx)
