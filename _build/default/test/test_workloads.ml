(* The workload suite: every benchmark compiles, runs deterministically on
   both inputs, and survives the full squeeze+squash pipeline with identical
   observable behaviour. *)

let fuel = 500_000_000

let run_prog p input = Vm.run (Vm.of_image ~fuel (Layout.emit p) ~input)

let per_workload_tests (wl : Workload.t) =
  [
    Alcotest.test_case (wl.Workload.name ^ " compiles and validates") `Quick
      (fun () ->
        let p = Workload.compile wl in
        match Prog.validate p with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case (wl.Workload.name ^ " runs both inputs") `Slow (fun () ->
        let p = Workload.compile wl in
        let o1 = run_prog p (Workload.profiling_input wl) in
        let o2 = run_prog p (Workload.timing_input wl) in
        Alcotest.(check bool) "profiling output nonempty" true
          (String.length o1.Vm.output > 0);
        Alcotest.(check bool) "timing output nonempty" true
          (String.length o2.Vm.output > 0);
        Alcotest.(check bool) "timing works harder" true
          (o2.Vm.icount > o1.Vm.icount));
    Alcotest.test_case (wl.Workload.name ^ " squeeze preserves behaviour") `Slow
      (fun () ->
        let p = Workload.compile wl in
        let q, stats = Squeeze.run p in
        Alcotest.(check bool) "squeeze shrinks" true
          (stats.Squeeze.instrs_after < stats.Squeeze.instrs_before);
        let input = Workload.profiling_input wl in
        let o1 = run_prog p input and o2 = run_prog q input in
        Alcotest.(check string) "output" o1.Vm.output o2.Vm.output;
        Alcotest.(check int) "exit" o1.Vm.exit_code o2.Vm.exit_code);
    Alcotest.test_case (wl.Workload.name ^ " squash preserves behaviour") `Slow
      (fun () ->
        let p, _ = Squeeze.run (Workload.compile wl) in
        let profile, _ = Profile.collect ~fuel p ~input:(Workload.profiling_input wl) in
        let timing = Workload.timing_input wl in
        let baseline = run_prog p timing in
        List.iter
          (fun theta ->
            let options = { Squash.default_options with Squash.theta = theta } in
            let r = Squash.run ~options p profile in
            (match Check.check r.Squash.squashed with
            | Ok () -> ()
            | Error es ->
              Alcotest.failf "image check at θ=%g: %s" theta (String.concat "; " es));
            let outcome, _ = Runtime.run ~fuel r.Squash.squashed ~input:timing in
            Alcotest.(check string)
              (Printf.sprintf "output at θ=%g" theta)
              baseline.Vm.output outcome.Vm.output;
            Alcotest.(check int)
              (Printf.sprintf "exit at θ=%g" theta)
              baseline.Vm.exit_code outcome.Vm.exit_code;
            Alcotest.(check bool)
              (Printf.sprintf "smaller at θ=%g" theta)
              true
              (Squash.size_reduction r > 0.05))
          [ 0.0; 1e-3 ]);
  ]

let registry_tests =
  [
    Alcotest.test_case "registry has the paper's eleven benchmarks" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "names"
          [ "adpcm"; "epic"; "g721_dec"; "g721_enc"; "gsm"; "jpeg_dec";
            "jpeg_enc"; "mpeg2dec"; "mpeg2enc"; "pgp"; "rasta" ]
          Workloads.names);
    Alcotest.test_case "find works" `Quick (fun () ->
        Alcotest.(check bool) "gsm" true (Workloads.find "gsm" <> None);
        Alcotest.(check bool) "nope" true (Workloads.find "nope" = None));
    Alcotest.test_case "timing inputs are larger than profiling inputs" `Quick
      (fun () ->
        List.iter
          (fun (wl : Workload.t) ->
            if
              String.length (Workload.timing_input wl)
              <= String.length (Workload.profiling_input wl)
            then Alcotest.failf "%s: timing input not larger" wl.Workload.name)
          Workloads.all);
    Alcotest.test_case "input generators are deterministic" `Quick (fun () ->
        let a = Wl_input.speech ~seed:5 ~samples:100 in
        let b = Wl_input.speech ~seed:5 ~samples:100 in
        Alcotest.(check bool) "speech" true (a = b);
        let c = Wl_input.image ~seed:9 ~width:16 ~height:8 in
        let d = Wl_input.image ~seed:9 ~width:16 ~height:8 in
        Alcotest.(check bool) "image" true (c = d);
        Alcotest.(check int) "image size" (16 * 8) (List.length c));
    Alcotest.test_case "word_string round-trips" `Quick (fun () ->
        let words = [ 0; 1; 0xFFFF_FFFF; 0x1234_5678; 42 ] in
        Alcotest.(check (list int)) "roundtrip" words
          (Wl_input.words_of_string (Wl_input.word_string words)));
  ]

let suite =
  [ ("workloads", registry_tests @ List.concat_map per_workload_tests Workloads.all) ]
