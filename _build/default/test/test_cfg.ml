(* CFG algorithms: predecessors, reachability, liveness, call graph. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let func p name = Option.get (Prog.find_func p name)

let diamond =
  {|
.entry main
func main {
  .0:
    lda t0, 1(zero)
    if eq t0 goto .2 else .1
  .1:
    lda t1, 2(zero)
    goto .3
  .2:
    lda t1, 3(zero)
  .3:
    add t0, t1, a0
    sys exit
    halt
  .4:
    nop
    halt
}
|}

let unit_tests =
  [
    Alcotest.test_case "preds of a diamond" `Quick (fun () ->
        let f = func (parse diamond) "main" in
        let p = Cfg.preds f in
        Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (List.sort compare p.(3));
        Alcotest.(check (list int)) "preds of 0" [] p.(0);
        Alcotest.(check (list int)) "preds of 4" [] p.(4));
    Alcotest.test_case "reachability skips dead blocks" `Quick (fun () ->
        let f = func (parse diamond) "main" in
        let r = Cfg.reachable f in
        Alcotest.(check (list bool)) "reach"
          [ true; true; true; true; false ]
          (Array.to_list r));
    Alcotest.test_case "dfs order starts at entry" `Quick (fun () ->
        let f = func (parse diamond) "main" in
        match Cfg.dfs_order f with
        | 0 :: _ as order -> Alcotest.(check int) "visits 4 blocks" 4 (List.length order)
        | order ->
          Alcotest.failf "bad order: %s"
            (String.concat "," (List.map string_of_int order)));
    Alcotest.test_case "liveness: value used later is live at entry" `Quick
      (fun () ->
        (* t1 defined in .1/.2 and used in .3, so it is live-in at .3 but
           not at .0; t0 is live across the branch. *)
        let f = func (parse diamond) "main" in
        let lv = Cfg.liveness f in
        Alcotest.(check bool) "t1 live into .3" true
          (Cfg.Regset.mem 2 lv.Cfg.live_in.(3));
        Alcotest.(check bool) "t0 live into .1" true
          (Cfg.Regset.mem 1 lv.Cfg.live_in.(1));
        Alcotest.(check bool) "t1 not live into .0" false
          (Cfg.Regset.mem 2 lv.Cfg.live_in.(0)));
    Alcotest.test_case "free_regs_at_entry prefers the stub scratch register"
      `Quick (fun () ->
        let f = func (parse diamond) "main" in
        let lv = Cfg.liveness f in
        match Cfg.free_regs_at_entry lv 0 with
        | r :: _ -> Alcotest.(check int) "first" Reg.stub_scratch r
        | [] -> Alcotest.fail "no free registers");
    Alcotest.test_case "calls make argument registers live" `Quick (fun () ->
        let src =
          {|
.entry main
func main {
  .0:
    lda a0, 1(zero)
    call g
  .1:
    sys exit
    halt
}
func g {
  .0:
    ret
}
|}
        in
        let f = func (parse src) "main" in
        let lv = Cfg.liveness f in
        Alcotest.(check bool) "a0 live at entry of .0 after lda kills it" false
          (Cfg.Regset.mem 16 lv.Cfg.live_in.(0));
        (* The call defines caller-saved regs, so v0 is dead before it. *)
        Alcotest.(check bool) "v0 not live into .0" false
          (Cfg.Regset.mem Reg.rv lv.Cfg.live_in.(0)));
    Alcotest.test_case "return keeps callee-saved registers live" `Quick (fun () ->
        let src = "func f {\n .0:\n ret\n}" in
        match Asm.parse_func src with
        | Error e -> Alcotest.fail e
        | Ok f ->
          let lv = Cfg.liveness f in
          Alcotest.(check bool) "s0 live" true (Cfg.Regset.mem 9 lv.Cfg.live_in.(0));
          Alcotest.(check bool) "ra live" true
            (Cfg.Regset.mem Reg.ra lv.Cfg.live_in.(0)));
    Alcotest.test_case "call graph edges and indirect flags" `Quick (fun () ->
        let src =
          {|
.entry main
func main {
  .0:
    call a
  .1:
    la t0, &b
    icall (t0)
  .2:
    sys exit
    halt
}
func a {
  .0:
    call b
  .1:
    ret
}
func b {
  .0:
    ret
}
|}
        in
        let cg = Cfg.Callgraph.of_prog (parse src) in
        Alcotest.(check (list string)) "main calls" [ "a" ] (Cfg.Callgraph.callees cg "main");
        Alcotest.(check (list string)) "a calls" [ "b" ] (Cfg.Callgraph.callees cg "a");
        Alcotest.(check bool) "main has indirect" true
          (Cfg.Callgraph.has_indirect_call cg "main");
        Alcotest.(check bool) "a has none" false (Cfg.Callgraph.has_indirect_call cg "a");
        Alcotest.(check bool) "b address taken" true (Cfg.Callgraph.address_taken cg "b");
        Alcotest.(check bool) "a address not taken" false
          (Cfg.Callgraph.address_taken cg "a");
        Alcotest.(check (list string)) "callers of b" [ "a" ] (Cfg.Callgraph.callers cg "b"));
    Alcotest.test_case "regset basics" `Quick (fun () ->
        let open Cfg.Regset in
        let s = of_list [ 1; 5; 26 ] in
        Alcotest.(check bool) "mem" true (mem 5 s);
        Alcotest.(check bool) "not mem" false (mem 6 s);
        Alcotest.(check (list int)) "elements" [ 1; 5; 26 ] (elements s);
        Alcotest.(check (list int)) "zero never enters" []
          (elements (add Reg.zero empty));
        Alcotest.(check (list int)) "diff" [ 1 ] (elements (diff s (of_list [ 5; 26 ]))));
  ]

let suite = [ ("cfg", unit_tests) ]
