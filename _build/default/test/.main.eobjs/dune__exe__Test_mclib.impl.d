test/test_mclib.ml: Alcotest Layout Mc_interp Minic String Vm Wl_lib
