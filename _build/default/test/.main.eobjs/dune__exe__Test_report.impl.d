test/test_report.ml: Alcotest List Report String
