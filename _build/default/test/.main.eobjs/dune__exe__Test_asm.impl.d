test/test_asm.ml: Alcotest Array Asm Format Instr List Option Prog String
