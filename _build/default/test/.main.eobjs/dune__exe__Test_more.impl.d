test/test_more.ml: Alcotest Asm Gen_minic Layout List Minic Profile QCheck QCheck_alcotest Reg String Syscall Vm
