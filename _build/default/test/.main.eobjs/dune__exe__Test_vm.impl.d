test/test_vm.ml: Alcotest Array Asm Hashtbl Instr Layout Option Printf Reg Vm
