test/main.mli:
