test/test_minic.ml: Alcotest Array Layout Minic Option Prog Vm
