test/test_workloads.ml: Alcotest Check Layout List Printf Profile Prog Runtime Squash Squeeze String Vm Wl_input Workload Workloads
