test/test_lzss.ml: Alcotest Char List Lzss Printf QCheck QCheck_alcotest String
