test/test_squeeze.ml: Alcotest Array Gen_minic Layout Minic Option Prog Squeeze Vm
