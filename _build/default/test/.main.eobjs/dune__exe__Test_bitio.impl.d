test/test_bitio.ml: Alcotest Bitio List Printf QCheck QCheck_alcotest String
