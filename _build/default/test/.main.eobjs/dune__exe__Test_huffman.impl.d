test/test_huffman.ml: Alcotest Bitio Canonical Hashtbl Huffman List Mtf Option Printf QCheck QCheck_alcotest String
