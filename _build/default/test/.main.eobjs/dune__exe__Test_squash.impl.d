test/test_squash.ml: Alcotest Array Buffer_safe Check Compress Gen_minic Instr Layout List Minic Printf Profile Rewrite Runtime Squash Squeeze String Vm
