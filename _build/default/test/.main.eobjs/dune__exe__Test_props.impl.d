test/test_props.ml: Asm Easm Format Gen_minic Instr Layout Minic Printf Prog QCheck QCheck_alcotest Reg Squeeze Syscall Vm Word
