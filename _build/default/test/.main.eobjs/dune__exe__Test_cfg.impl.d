test/test_cfg.ml: Alcotest Array Asm Cfg List Option Prog Reg String
