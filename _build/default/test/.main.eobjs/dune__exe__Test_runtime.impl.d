test/test_runtime.ml: Alcotest Array Cost List Minic Profile Rewrite Runtime Squash Squeeze Vm
