test/test_profile.ml: Alcotest Minic Profile String Vm
