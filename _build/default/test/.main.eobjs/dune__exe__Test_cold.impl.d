test/test_cold.ml: Alcotest Asm Cold Profile String
