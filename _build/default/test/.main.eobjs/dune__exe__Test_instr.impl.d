test/test_instr.ml: Alcotest Fun Gen Instr List QCheck QCheck_alcotest Reg Test Word
