test/test_interp.ml: Alcotest Gen_minic Layout Mc_interp Minic Profile Runtime Squash Squeeze Vm
