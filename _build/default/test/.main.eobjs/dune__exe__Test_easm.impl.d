test/test_easm.ml: Alcotest Array Easm Instr QCheck QCheck_alcotest Reg Word
