test/test_prog.ml: Alcotest Array Asm Hashtbl Instr Layout List Prog Reg
