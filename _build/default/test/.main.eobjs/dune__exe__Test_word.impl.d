test/test_word.ml: Alcotest List QCheck QCheck_alcotest Word
