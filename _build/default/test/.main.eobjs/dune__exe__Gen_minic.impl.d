test/gen_minic.ml: List Printf Random String
