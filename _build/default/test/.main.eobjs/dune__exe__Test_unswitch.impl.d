test/test_unswitch.ml: Alcotest Array Asm Layout List Minic Option Prog Unswitch Vm
