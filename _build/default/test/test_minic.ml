(* MiniC end-to-end: compile, run on the VM, check observable behaviour. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let run ?(input = "") ?(fuel = 10_000_000) src =
  let img = Layout.emit (compile src) in
  Vm.run (Vm.of_image ~fuel img ~input)

let exits name expected ?input src () =
  let o = run ?input src in
  Alcotest.(check int) name expected o.Vm.exit_code

let prints name expected ?input src () =
  let o = run ?input src in
  Alcotest.(check string) name expected o.Vm.output

let compile_fails src () =
  match Minic.compile src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a compile error"

let unit_tests =
  [
    Alcotest.test_case "return value becomes exit code" `Quick
      (exits "basic" 7 "int main() { return 7; }");
    Alcotest.test_case "arithmetic precedence" `Quick
      (exits "prec" 14 "int main() { return 2 + 3 * 4; }");
    Alcotest.test_case "parentheses" `Quick
      (exits "paren" 20 "int main() { return (2 + 3) * 4; }");
    Alcotest.test_case "division and remainder" `Quick
      (exits "divrem" 5 "int main() { return 17 / 5 + 17 % 5; }");
    Alcotest.test_case "negative division truncates toward zero" `Quick
      (exits "negdiv" 4 "int main() { return (0 - 17) / 5 + 7; }");
    Alcotest.test_case "bitwise operators" `Quick
      (exits "bits" 0xD
         "int main() { return (0xF & 0x9) | (0x5 ^ 0x1); }");
    Alcotest.test_case "shifts" `Quick
      (exits "shifts" 40 "int main() { return (5 << 3) | (1 >> 2); }");
    Alcotest.test_case "logical shift right differs on negatives" `Quick
      (exits "lshr" 1
         "int main() { return ((0 - 1) >>> 31) == 1 && ((0 - 1) >> 31) == (0 - 1); }");
    Alcotest.test_case "comparisons produce 0/1" `Quick
      (exits "cmp" 1 "int main() { return (3 < 5) & (5 <= 5) & (6 > 2) & (2 >= 2) & (1 == 1) & (1 != 2); }");
    Alcotest.test_case "short-circuit && skips side effects" `Quick
      (prints "and" "1\n"
         {|
int hit() { putint(99); return 1; }
int main() { 0 && hit(); putint(1); return 0; }
|});
    Alcotest.test_case "short-circuit || skips side effects" `Quick
      (prints "or" "1\n"
         {|
int hit() { putint(99); return 1; }
int main() { 1 || hit(); putint(1); return 0; }
|});
    Alcotest.test_case "logical not" `Quick
      (exits "not" 1 "int main() { return !0 && !!5; }");
    Alcotest.test_case "while loop" `Quick
      (exits "sum" 55
         "int main() { int i; int s; i = 1; s = 0; while (i <= 10) { s = s + i; i = i + 1; } return s; }");
    Alcotest.test_case "for loop with break/continue" `Quick
      (exits "forloop" 25
         {|
int main() {
  int s; int i;
  s = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) continue;
    if (i >= 10) break;
    s = s + i;    // 1+3+5+7+9
  }
  return s;
}
|});
    Alcotest.test_case "do-while runs at least once" `Quick
      (exits "dowhile" 1
         "int main() { int n; n = 0; do { n = n + 1; } while (0); return n; }");
    Alcotest.test_case "recursion (fib 12)" `Quick
      (exits "fib" 144
         {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(12); }
|});
    Alcotest.test_case "mutual recursion" `Quick
      (exits "mutual" 1
         {|
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(10); }
|});
    Alcotest.test_case "global variables and arrays" `Quick
      (exits "globals" 60
         {|
int total = 10;
int table[5] = { 1, 2, 3, 4, 5 };
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) total = total + table[i] * 2;
  table[0] = total;
  return table[0] + 20;
}
|});
    Alcotest.test_case "local arrays and aliasing through parameters" `Quick
      (exits "alias" 6
         {|
int sum3(int p) { return p[0] + p[1] + p[2]; }
int main() {
  int v[3];
  v[0] = 1; v[1] = 2; v[2] = 3;
  return sum3(v);
}
|});
    Alcotest.test_case "nested indexing" `Quick
      (exits "nested" 42
         {|
int data[4] = { 3, 42, 0, 1 };
int idx[2] = { 1, 0 };
int main() { return data[idx[idx[1]]]; }
|});
    Alcotest.test_case "const declarations" `Quick
      (exits "const" 24 "const N = 4; const M = N * 3 / 2; int main() { return N * M; }");
    Alcotest.test_case "dense switch (jump table)" `Quick
      (fun () ->
        let src =
          {|
int classify(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    case 4: return 14;
    default: return 99;
  }
}
int main() { return classify(3) + classify(7); }
|}
        in
        let p = compile src in
        let f = Option.get (Prog.find_func p "classify") in
        Alcotest.(check int) "has a jump table" 1 (Array.length f.Prog.Func.tables);
        let img = Layout.emit p in
        let o = Vm.run (Vm.of_image img ~input:"") in
        Alcotest.(check int) "result" 112 o.Vm.exit_code);
    Alcotest.test_case "sparse switch (compare chain)" `Quick
      (fun () ->
        let src =
          {|
int f(int x) {
  switch (x) {
    case 1000: return 1;
    case 2: return 2;
    case 90000: return 3;
  }
  return 0;
}
int main() { return f(90000) * 10 + f(5); }
|}
        in
        let p = compile src in
        let f = Option.get (Prog.find_func p "f") in
        Alcotest.(check int) "no jump table" 0 (Array.length f.Prog.Func.tables);
        let img = Layout.emit p in
        let o = Vm.run (Vm.of_image img ~input:"") in
        Alcotest.(check int) "result" 30 o.Vm.exit_code);
    Alcotest.test_case "switch fallthrough" `Quick
      (exits "fallthrough" 6
         {|
int main() {
  int s; s = 0;
  switch (1) {
    case 0: s = s + 100;
    case 1: s = s + 2;
    case 2: s = s + 4; break;
    case 3: s = s + 8;
  }
  return s;
}
|});
    Alcotest.test_case "function pointers" `Quick
      (exits "fptr" 9
         {|
int add2(int x) { return x + 2; }
int mul3(int x) { return x * 3; }
int apply(int f, int x) { return f(x); }
int main() { return apply(&add2, 1) + apply(&mul3, 2); }
|});
    Alcotest.test_case "function pointer table dispatch" `Quick
      (exits "fptr-table" 12
         {|
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int ops[2];
int main() {
  int f;
  ops[0] = &inc;
  ops[1] = &dbl;
  f = ops[1];
  return f(inc(5));
}
|});
    Alcotest.test_case "strings and loadb" `Quick
      (prints "str" "ok"
         {|
int print(int s) {
  int c;
  while (1) {
    c = loadb(s);
    if (c == 0) break;
    putc(c);
    s = s + 1;
  }
  return 0;
}
int main() { print("ok"); return 0; }
|});
    Alcotest.test_case "storeb modifies bytes" `Quick
      (exits "storeb" 0x41
         {|
int buf[2];
int main() {
  storeb(buf, 0x41);
  return loadb(buf);
}
|});
    Alcotest.test_case "io echo with transformation" `Quick
      (prints "rot1" "ifmmp" ~input:"hello"
         {|
int main() {
  int c;
  while (1) {
    c = getc();
    if (c < 0) break;
    putc(c + 1);
  }
  return 0;
}
|});
    Alcotest.test_case "getw/putw" `Quick
      (prints "words" "\x02\x00\x00\x00" ~input:"\x01\x00\x00\x00"
         "int main() { putw(getw() * 2); return 0; }");
    Alcotest.test_case "sbrk allocates" `Quick
      (exits "sbrk" 7
         {|
int main() {
  int p;
  p = sbrk(64);
  p[0] = 3;
  p[15] = 4;
  return p[0] + p[15];
}
|});
    Alcotest.test_case "setjmp/longjmp" `Quick
      (exits "longjmp" 5
         {|
int jb[16];
int deep(int n) {
  if (n == 0) longjmp(jb, 5);
  return deep(n - 1);
}
int main() {
  int r;
  r = setjmp(jb);
  if (r != 0) return r;
  deep(10);
  return 99;
}
|});
    Alcotest.test_case "exit() terminates immediately" `Quick
      (prints "exit" "1\n" "int main() { putint(1); exit(3); putint(2); return 0; }");
    Alcotest.test_case "32-bit wraparound" `Quick
      (exits "wrap" 1
         "int main() { int big; big = 0x7fffffff; return big + 1 == (0 - 2147483647 - 1); }");
    Alcotest.test_case "character literals" `Quick
      (exits "chars" 1 "int main() { return 'B' - 'A' == 1 && '\\n' == 10; }");
    Alcotest.test_case "implicit return value is 0" `Quick
      (exits "implicit" 0 "int main() { int x; x = 3; }");
    Alcotest.test_case "deeply nested expressions" `Quick
      (exits "deep" 16
         "int id(int x) { return x; }\n\
          int main() { return id(id(id(1)) + id(id(2) + id(3)) + id(4) + id(id(id(6)))); }");
    Alcotest.test_case "comments are skipped" `Quick
      (exits "comments" 3 "int main() { /* a\nb */ return 3; // tail\n}");
    (* Error cases *)
    Alcotest.test_case "error: undefined variable" `Quick
      (compile_fails "int main() { return x; }");
    Alcotest.test_case "error: undefined function" `Quick
      (compile_fails "int main() { return f(); }");
    Alcotest.test_case "error: wrong arity" `Quick
      (compile_fails "int f(int a) { return a; } int main() { return f(1, 2); }");
    Alcotest.test_case "error: duplicate definitions" `Quick
      (compile_fails "int x; int x; int main() { return 0; }");
    Alcotest.test_case "error: missing main" `Quick (compile_fails "int f() { return 0; }");
    Alcotest.test_case "error: break outside loop" `Quick
      (compile_fails "int main() { break; return 0; }");
    Alcotest.test_case "error: assignment to array" `Quick
      (compile_fails "int a[3]; int main() { a = 1; return 0; }");
    Alcotest.test_case "error: duplicate case label" `Quick
      (compile_fails
         "int main() { switch (1) { case 1: return 0; case 1: return 1; } return 2; }");
    Alcotest.test_case "error: non-constant array size" `Quick
      (compile_fails "int main() { int n; n = 3; int a[n]; return 0; }");
    Alcotest.test_case "functions_calling_setjmp" `Quick (fun () ->
        let src =
          {|
int jb[16];
int catcher() { return setjmp(jb); }
int other() { return 1; }
int main() { return catcher() + other(); }
|}
        in
        Alcotest.(check (list string)) "setjmp callers" [ "catcher" ]
          (Minic.functions_calling_setjmp src));
  ]

let suite = [ ("minic", unit_tests) ]
