(* 32-bit word arithmetic. *)

let check = Alcotest.(check int)

let qcheck = QCheck_alcotest.to_alcotest

let word_gen = QCheck.Gen.(map (fun v -> v land Word.mask) (int_bound max_int))
let arb_word = QCheck.make ~print:string_of_int word_gen

let unit_tests =
  [
    Alcotest.test_case "of_int truncates" `Quick (fun () ->
        check "truncated" 0xFFFF_FFFF (Word.of_int (-1));
        check "kept" 0x1234 (Word.of_int 0x1234);
        check "wrapped" 1 (Word.of_int 0x1_0000_0001));
    Alcotest.test_case "to_signed" `Quick (fun () ->
        check "negative" (-1) (Word.to_signed 0xFFFF_FFFF);
        check "int_min" (-0x8000_0000) (Word.to_signed 0x8000_0000);
        check "positive" 0x7FFF_FFFF (Word.to_signed 0x7FFF_FFFF));
    Alcotest.test_case "signed division truncates toward zero" `Quick (fun () ->
        check "7/2" 3 (Word.to_signed (Word.sdiv (Word.of_int 7) (Word.of_int 2)));
        check "-7/2" (-3) (Word.to_signed (Word.sdiv (Word.of_int (-7)) (Word.of_int 2)));
        check "7/-2" (-3) (Word.to_signed (Word.sdiv (Word.of_int 7) (Word.of_int (-2))));
        check "-7%2" (-1) (Word.to_signed (Word.srem (Word.of_int (-7)) (Word.of_int 2))));
    Alcotest.test_case "division by zero traps" `Quick (fun () ->
        Alcotest.check_raises "div" Word.Division_trap (fun () ->
            ignore (Word.sdiv 1 0));
        Alcotest.check_raises "rem" Word.Division_trap (fun () ->
            ignore (Word.srem 1 0)));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check "sll" 0x8000_0000 (Word.shift_left 1 31);
        check "sll wraps" 0 (Word.shift_left 2 31);
        check "srl" 1 (Word.shift_right_logical 0x8000_0000 31);
        check "sra sign" 0xFFFF_FFFF (Word.shift_right_arith 0x8000_0000 31));
    Alcotest.test_case "sign_extend" `Quick (fun () ->
        check "16-bit neg" (-1) (Word.sign_extend ~width:16 0xFFFF);
        check "16-bit pos" 0x7FFF (Word.sign_extend ~width:16 0x7FFF);
        check "21-bit neg" (-1) (Word.sign_extend ~width:21 0x1F_FFFF);
        check "ignores high bits" (-1) (Word.sign_extend ~width:16 0xABC_FFFF));
    Alcotest.test_case "fits" `Quick (fun () ->
        Alcotest.(check bool) "max16" true (Word.fits_signed ~width:16 32767);
        Alcotest.(check bool) "over16" false (Word.fits_signed ~width:16 32768);
        Alcotest.(check bool) "min16" true (Word.fits_signed ~width:16 (-32768));
        Alcotest.(check bool) "under16" false (Word.fits_signed ~width:16 (-32769));
        Alcotest.(check bool) "u8" true (Word.fits_unsigned ~width:8 255);
        Alcotest.(check bool) "u8 over" false (Word.fits_unsigned ~width:8 256);
        Alcotest.(check bool) "u8 neg" false (Word.fits_unsigned ~width:8 (-1)));
  ]

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"add is 32-bit modular" ~count:500
         (QCheck.pair arb_word arb_word) (fun (a, b) ->
           Word.add a b = (a + b) mod 0x1_0000_0000));
    qcheck
      (QCheck.Test.make ~name:"sub inverts add" ~count:500
         (QCheck.pair arb_word arb_word) (fun (a, b) ->
           Word.sub (Word.add a b) b = a));
    qcheck
      (QCheck.Test.make ~name:"to_signed/of_int roundtrip" ~count:500 arb_word
         (fun a -> Word.of_int (Word.to_signed a) = a));
    qcheck
      (QCheck.Test.make ~name:"results are canonical" ~count:500
         (QCheck.pair arb_word arb_word) (fun (a, b) ->
           let canonical v = v >= 0 && v <= Word.mask in
           canonical (Word.add a b)
           && canonical (Word.mul a b)
           && canonical (Word.lognot a)
           && canonical (Word.shift_left a (b land 31))
           && canonical (Word.shift_right_arith a (b land 31))));
    qcheck
      (QCheck.Test.make ~name:"sign_extend/zero_extend agree on the low bits"
         ~count:500 arb_word (fun a ->
           List.for_all
             (fun w ->
               Word.zero_extend ~width:w (Word.sign_extend ~width:w a)
               = Word.zero_extend ~width:w a)
             [ 8; 16; 21 ]));
  ]

let suite = [ ("word", unit_tests @ prop_tests) ]
