(* Jump-table unswitching (paper, Section 6.2), tested directly on the
   Prog-level transformation. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let dispatch_src =
  {|
int f(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 21;
    case 2: return 32;
    case 3: return 43;
    case 4: return 54;
    default: return 99;
  }
}
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) acc = acc + f(i);
  putint(acc);
  return 0;
}
|}

let run p input = Vm.run (Vm.of_image ~fuel:10_000_000 (Layout.emit p) ~input)

let unit_tests =
  [
    Alcotest.test_case "unswitching removes the table and preserves behaviour"
      `Quick (fun () ->
        let p = compile dispatch_src in
        let before = run p "" in
        let result = Unswitch.run p ~is_cold:(fun _ _ -> true) in
        Alcotest.(check int) "one dispatch rewritten" 1
          (List.length result.Unswitch.rewritten);
        Alcotest.(check (list string)) "nothing unmatched" []
          result.Unswitch.unmatched;
        let f = Option.get (Prog.find_func result.Unswitch.prog "f") in
        Alcotest.(check int) "table gone" 0 (Array.length f.Prog.Func.tables);
        (match Prog.validate result.Unswitch.prog with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let after = run result.Unswitch.prog "" in
        Alcotest.(check string) "output" before.Vm.output after.Vm.output;
        Alcotest.(check int) "exit" before.Vm.exit_code after.Vm.exit_code);
    Alcotest.test_case "chain blocks are appended, not inserted" `Quick (fun () ->
        let p = compile dispatch_src in
        let f0 = Option.get (Prog.find_func p "f") in
        let result = Unswitch.run p ~is_cold:(fun _ _ -> true) in
        let f1 = Option.get (Prog.find_func result.Unswitch.prog "f") in
        Alcotest.(check bool) "more blocks" true
          (Array.length f1.Prog.Func.blocks > Array.length f0.Prog.Func.blocks);
        (* Existing block indices keep their instructions. *)
        let items_of (f : Prog.Func.t) i = f.Prog.Func.blocks.(i).Prog.Block.items in
        Alcotest.(check bool) "entry block unchanged" true
          (items_of f0 0 = items_of f1 0));
    Alcotest.test_case "hot dispatches keep their tables" `Quick (fun () ->
        let p = compile dispatch_src in
        let result = Unswitch.run p ~is_cold:(fun _ _ -> false) in
        Alcotest.(check (list (pair string int))) "nothing rewritten" []
          result.Unswitch.rewritten;
        let f = Option.get (Prog.find_func result.Unswitch.prog "f") in
        Alcotest.(check int) "table kept" 1 (Array.length f.Prog.Func.tables));
    Alcotest.test_case "non-idiomatic dispatch reports its function" `Quick
      (fun () ->
        (* A hand-written dispatch whose address arithmetic does not match
           the compiler idiom. *)
        let src =
          {|
.entry main
func main {
  .0:
    la t0, &table0
    ldw t0, 0(t0)
    ijump (t0) table 0
  .1:
    sys exit
    halt
  table 0: .1 .1
}
|}
        in
        match Asm.parse_program src with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let result = Unswitch.run p ~is_cold:(fun _ _ -> true) in
          Alcotest.(check (list string)) "unmatched" [ "main" ]
            result.Unswitch.unmatched);
    Alcotest.test_case "single-entry tables become a plain jump" `Quick (fun () ->
        let src =
          {|
.entry main
func main {
  .0:
    lda t1, 0(zero)
    la t0, &table0
    sll t1, #2, t1
    add t0, t1, t0
    ldw t0, 0(t0)
    ijump (t0) table 0
  .1:
    lda a0, 7(zero)
    sys exit
    halt
  table 0: .1
}
|}
        in
        match Asm.parse_program src with
        | Error e -> Alcotest.fail e
        | Ok p ->
          let result = Unswitch.run p ~is_cold:(fun _ _ -> true) in
          Alcotest.(check int) "rewritten" 1 (List.length result.Unswitch.rewritten);
          let o = run result.Unswitch.prog "" in
          Alcotest.(check int) "exit" 7 o.Vm.exit_code);
  ]

let suite = [ ("unswitch", unit_tests) ]
