(* Runtime edge cases: stub-area exhaustion, per-region statistics,
   decompressor cycle accounting. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let fib_src =
  {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { putint(fib(14)); return 0; }
|}

let squash ?(options = Squash.default_options) p =
  let profile, _ = Profile.collect p ~input:"" in
  Squash.run ~options p profile

let unit_tests =
  [
    Alcotest.test_case "stub-area exhaustion is a clean trap" `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        (* Tiny K splits fib across regions; one stub slot cannot hold the
           recursion's concurrent call sites. *)
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64;
                max_stubs = 1 }
            p
        in
        match Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" with
        | exception Vm.Trap { reason; _ } ->
          Alcotest.(check string) "reason" "createstub: stub area exhausted" reason
        | outcome, stats ->
          (* If one slot sufficed the run must still be correct. *)
          Alcotest.(check int) "exit" 121 outcome.Vm.exit_code;
          Alcotest.(check bool) "reused" true (stats.Runtime.stub_reuses > 0));
    Alcotest.test_case "per-region decompression counts sum to the total" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:{ Squash.default_options with Squash.theta = 1.0; k_bytes = 128 }
            p
        in
        let _, stats = Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        Alcotest.(check int) "sum" stats.Runtime.decompressions
          (Array.fold_left ( + ) 0 stats.Runtime.per_region));
    Alcotest.test_case "decompression cycles scale with the cost model" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let cheap = { Cost.default with Cost.decomp_per_bit = 1; decomp_invoke = 10 } in
        let dear = { Cost.default with Cost.decomp_per_bit = 40; decomp_invoke = 5000 } in
        let o1, s1 = Runtime.run ~cost:cheap ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        let o2, s2 = Runtime.run ~cost:dear ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        Alcotest.(check int) "same behaviour" o1.Vm.exit_code o2.Vm.exit_code;
        Alcotest.(check int) "same work" s1.Runtime.bits_decoded s2.Runtime.bits_decoded;
        Alcotest.(check bool) "dearer model, more cycles" true
          (o2.Vm.cycles > o1.Vm.cycles));
    Alcotest.test_case "words materialised match image sizes" `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let _, stats = Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        let expected =
          Array.to_list r.Squash.squashed.Rewrite.images
          |> List.mapi (fun i (img : Rewrite.region_image) ->
                 stats.Runtime.per_region.(i) * img.Rewrite.buffer_words)
          |> List.fold_left ( + ) 0
        in
        Alcotest.(check int) "words" expected stats.Runtime.words_materialised);
    Alcotest.test_case "a squashed program can run many inputs in sequence"
      `Quick (fun () ->
        (* Fresh launches must not leak state between runs. *)
        let src =
          {|
int main() {
  int c;
  c = getc();
  if (c < 0) { putint(-1); return 0; }
  putint(c * 2);
  return 0;
}
|}
        in
        let p, _ = Squeeze.run (compile src) in
        let profile, _ = Profile.collect p ~input:"\005" in
        let r =
          Squash.run ~options:{ Squash.default_options with Squash.theta = 1.0 } p
            profile
        in
        List.iter
          (fun (input, expected) ->
            let outcome, _ = Runtime.run r.Squash.squashed ~input in
            Alcotest.(check string) "output" expected outcome.Vm.output)
          [ ("\001", "2\n"); ("\010", "20\n"); ("", "-1\n") ]);
  ]

let suite = [ ("runtime", unit_tests) ]
