examples/threshold_explorer.ml: Array Layout List Printf Profile Report Runtime Squash Squeeze String Sys Vm Workload Workloads
