examples/adpcm_pipeline.ml: Array Compress Format Instr Layout List Option Profile Rewrite Runtime Squash Squeeze Vm Workload Workloads
