examples/embedded_firmware.ml: Format Layout List Option Profile Prog Runtime Squash Squeeze Vm Workload Workloads
