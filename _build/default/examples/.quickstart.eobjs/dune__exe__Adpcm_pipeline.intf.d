examples/adpcm_pipeline.mli:
