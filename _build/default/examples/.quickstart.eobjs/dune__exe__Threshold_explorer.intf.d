examples/threshold_explorer.mli:
