examples/quickstart.mli:
