examples/embedded_firmware.mli:
