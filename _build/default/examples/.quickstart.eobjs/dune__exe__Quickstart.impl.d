examples/quickstart.ml: Format Minic Profile Runtime Squash Squeeze String Vm
