(* Explore the size/time frontier of one workload across the cold-code
   threshold — the trade-off at the heart of the paper (its Figures 6/7).

     dune exec examples/threshold_explorer.exe            # default: jpeg_enc
     dune exec examples/threshold_explorer.exe -- rasta                      *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jpeg_enc" in
  let wl =
    match Workloads.find name with
    | Some wl -> wl
    | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " Workloads.names);
      exit 2
  in
  let prog, _ = Squeeze.run (Workload.compile wl) in
  let profile, _ = Profile.collect prog ~input:(Workload.profiling_input wl) in
  let timing = Workload.timing_input wl in
  let baseline = Vm.run (Vm.of_image (Layout.emit prog) ~input:timing) in
  let table =
    Report.Table.create
      ~title:(Printf.sprintf "%s: size/time frontier (squeezed = 1.0)" name)
      [ ("theta", Report.Table.Left); ("size", Report.Table.Right);
        ("time", Report.Table.Right); ("decompressions", Report.Table.Right);
        ("max live stubs", Report.Table.Right) ]
  in
  List.iter
    (fun theta ->
      let options = { Squash.default_options with Squash.theta = theta } in
      let r = Squash.run ~options prog profile in
      let outcome, stats = Runtime.run r.Squash.squashed ~input:timing in
      assert (outcome.Vm.output = baseline.Vm.output);
      Report.Table.add_row table
        [ Printf.sprintf "%g" theta;
          Report.Table.cell_float ~decimals:3
            (float_of_int r.Squash.squashed_words
            /. float_of_int r.Squash.original_words);
          Report.Table.cell_float ~decimals:3
            (float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles);
          string_of_int stats.Runtime.decompressions;
          string_of_int stats.Runtime.max_live_stubs ])
    [ 0.0; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 ];
  print_string (Report.Table.render table)
