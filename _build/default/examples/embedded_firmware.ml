(* The paper's motivating scenario: a program must fit into a fixed program
   memory (the TMS320C5x DSP the paper cites has 64 Kwords).  Given a
   firmware image that exceeds its budget, raise the cold-code threshold θ
   until the squashed footprint fits, then confirm the firmware still meets
   a responsiveness requirement on its duty cycle.

     dune exec examples/embedded_firmware.exe                                *)

let budget_words = 4450

let () =
  (* The "firmware": the GSM transcoder workload — a realistic embedded
     codec with a large cold runtime library linked in. *)
  let wl = Option.get (Workloads.find "gsm") in
  let prog, _ = Squeeze.run (Workload.compile wl) in
  let original = Prog.text_words prog in
  Format.printf "firmware: %s (%d words; budget %d words)@." wl.Workload.name
    original budget_words;
  if original <= budget_words then
    Format.printf "already fits — nothing to do@."
  else begin
    let input = Workload.profiling_input wl in
    let profile, _ = Profile.collect prog ~input in
    let timing = Workload.timing_input wl in
    let baseline = Vm.run (Vm.of_image (Layout.emit prog) ~input:timing) in
    (* Sweep θ upward until the footprint fits the budget. *)
    let thetas = [ 0.0; 1e-4; 1e-3; 1e-2; 0.1; 1.0 ] in
    let fitting =
      List.find_map
        (fun theta ->
          let options = { Squash.default_options with Squash.theta = theta } in
          let r = Squash.run ~options prog profile in
          Format.printf "  θ=%-8g -> %5d words (%.1f%% smaller)@." theta
            r.Squash.squashed_words
            (100.0 *. Squash.size_reduction r);
          if r.Squash.squashed_words <= budget_words then Some (theta, r) else None)
        thetas
    in
    match fitting with
    | None ->
      Format.printf "no threshold fits the budget — a bigger part is needed@."
    | Some (theta, r) ->
      let outcome, stats = Runtime.run r.Squash.squashed ~input:timing in
      assert (outcome.Vm.output = baseline.Vm.output);
      let slowdown =
        float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles
      in
      Format.printf
        "fits at θ=%g: %d words in a %d-word part; %.2fx the cycles (%d \
         decompressions on the duty cycle)@."
        theta r.Squash.squashed_words budget_words slowdown
        stats.Runtime.decompressions;
      if slowdown <= 1.25 then Format.printf "responsiveness requirement met@."
      else Format.printf "WARNING: slowdown exceeds the 1.25x requirement@."
  end
