(* Quickstart: the whole pipeline on a small program, in ~40 lines.

     dune exec examples/quickstart.exe

   Compile MiniC -> compact with squeeze -> profile -> squash -> run the
   compressed program and check it still behaves identically. *)

let source =
  {|
// A toy image filter with a hot inner loop and cold error handling.
int pixels[256];

int blur(int n) {
  int i; int acc;
  acc = 0;
  for (i = 1; i < n - 1; i = i + 1) {
    pixels[i] = (pixels[i - 1] + pixels[i] * 2 + pixels[i + 1]) / 4;
    acc = acc + pixels[i];
  }
  return acc;
}

int report_error(int code) {
  putint(-1);
  putint(code);
  exit(1);
  return 0;
}

int main() {
  int i; int rounds; int acc;
  rounds = getc();
  if (rounds < 0) report_error(100);
  if (rounds > 100) report_error(101);
  for (i = 0; i < 256; i = i + 1) pixels[i] = (i * 37) & 255;
  acc = 0;
  for (i = 0; i < rounds; i = i + 1) acc = acc + blur(256);
  putint(acc);
  return 0;
}
|}

let () =
  (* 1. Compile and compact. *)
  let prog = Minic.compile_exn source in
  let squeezed, squeeze_stats = Squeeze.run prog in
  Format.printf "%a@." Squeeze.pp_stats squeeze_stats;

  (* 2. Profile on a training input (here: 5 blur rounds). *)
  let input = "\005" in
  let profile, outcome = Profile.collect squeezed ~input in
  Format.printf "%a@." Profile.pp_summary profile;

  (* 3. Squash: compress cold code under the default θ = 0 (only code that
     never ran during profiling is compressed — the error paths). *)
  let result = Squash.run squeezed profile in
  Format.printf "%a@." Squash.pp_summary result;

  (* 4. Run the squashed program and compare behaviour. *)
  let squashed_outcome, stats = Runtime.run result.Squash.squashed ~input in
  assert (squashed_outcome.Vm.output = outcome.Vm.output);
  assert (squashed_outcome.Vm.exit_code = outcome.Vm.exit_code);
  Format.printf "squashed run: identical output (%S), %d decompressions@."
    (String.trim squashed_outcome.Vm.output)
    stats.Runtime.decompressions;

  (* 5. The compressed error path still works when it is finally needed:
     a malformed input reaches report_error through the decompressor. *)
  let bad_outcome, bad_stats = Runtime.run result.Squash.squashed ~input:"\127" in
  Format.printf "bad input: exit %d after %d decompressions (output %S)@."
    bad_outcome.Vm.exit_code bad_stats.Runtime.decompressions
    (String.trim bad_outcome.Vm.output)
