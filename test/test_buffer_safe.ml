(* Buffer-safety (paper §6.1): the fixpoint marking, the sharpened
   indirect-call treatment, and end-to-end properties of the optimisation
   on the workloads. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let wl name =
  match Workloads.find name with
  | Some w -> w
  | None -> Alcotest.failf "no workload %s" name

let squash_wl ?(options = Squash.default_options) w =
  let p = fst (Squeeze.run (Workload.compile w)) in
  let prof, _ = Profile.collect p ~input:(Workload.profiling_input w) in
  Squash.run ~options p prof

(* a and b are mutually recursive; b reaches the compressed function, so
   non-safety must flow around the cycle to both, and to their caller. *)
let mutual_src =
  {|
.entry main
func main {
.0:
  call a
.1:
  call c
.2:
  sys exit
  halt
}
func a {
.0:
  call b
.1:
  ret
}
func b {
.0:
  if eq t0 goto .1 else .2
.1:
  call a
.2:
  call bad
.3:
  ret
}
func bad {
.0:
  ret
}
func c {
.0:
  ret
}
|}

let indirect_src =
  {|
.entry main
func main {
.0:
  call f
.1:
  sys exit
  halt
}
func f {
.0:
  la t0, &h
  icall (t0)
.1:
  ret
}
func h {
.0:
  ret
}
|}

let unit_tests =
  [
    Alcotest.test_case "non-safety propagates around mutual recursion" `Quick
      (fun () ->
        let p = parse mutual_src in
        let bs =
          Buffer_safe.analyze p ~has_compressed:(fun g -> g = "bad")
        in
        Alcotest.(check (list string))
          "safe set" [ "c" ]
          (Buffer_safe.safe_functions bs);
        List.iter
          (fun g ->
            Alcotest.(check bool)
              (g ^ " unsafe") false (Buffer_safe.is_safe bs g))
          [ "main"; "a"; "b"; "bad" ]);
    Alcotest.test_case
      "an indirect call poisons conservatively but not sharply" `Quick
      (fun () ->
        let p = parse indirect_src in
        let none _ = false in
        let cons = Buffer_safe.analyze p ~has_compressed:none in
        Alcotest.(check bool)
          "f conservatively unsafe" false (Buffer_safe.is_safe cons "f");
        Alcotest.(check bool)
          "main conservatively unsafe" false (Buffer_safe.is_safe cons "main");
        let sharp = Buffer_safe.analyze_sharp p ~has_compressed:none in
        Alcotest.(check (list string))
          "everything sharply safe" [ "f"; "h"; "main" ]
          (Buffer_safe.safe_functions sharp));
    Alcotest.test_case "a compressed indirect target stays unsafe sharply"
      `Quick (fun () ->
        let p = parse indirect_src in
        let hc g = g = "h" in
        let sharp = Buffer_safe.analyze_sharp p ~has_compressed:hc in
        Alcotest.(check bool) "h unsafe" false (Buffer_safe.is_safe sharp "h");
        Alcotest.(check bool)
          "f unsafe through the resolved edge" false
          (Buffer_safe.is_safe sharp "f");
        Alcotest.(check bool)
          "main unsafe transitively" false (Buffer_safe.is_safe sharp "main"));
  ]

(* --- workload-level properties ------------------------------------- *)

let monotone_tests =
  [
    Alcotest.test_case "sharp analysis never loses a safe function" `Slow
      (fun () ->
        List.iter
          (fun name ->
            List.iter
              (fun theta ->
                let options = { Squash.default_options with theta } in
                let r = squash_wl ~options (wl name) in
                let p = r.Squash.squashed.Rewrite.prog in
                let regions = r.Squash.regions in
                let has_compressed g =
                  match Prog.find_func p g with
                  | None -> false
                  | Some f ->
                    Array.exists Fun.id
                      (Array.mapi
                         (fun i _ -> Regions.block_region regions g i <> None)
                         f.Prog.Func.blocks)
                in
                let cons = Buffer_safe.analyze p ~has_compressed in
                let sharp = Buffer_safe.analyze_sharp p ~has_compressed in
                List.iter
                  (fun g ->
                    if not (Buffer_safe.is_safe sharp g) then
                      Alcotest.failf
                        "%s θ=%g: %s is conservatively safe but sharply unsafe"
                        name theta g)
                  (Buffer_safe.safe_functions cons))
              [ 0.001; 0.1 ])
          [ "adpcm"; "g721_enc"; "gsm"; "rasta" ]);
  ]

let rasta_tests =
  [
    Alcotest.test_case
      "sharpening strictly grows rasta's safe-call count" `Slow (fun () ->
        let options = { Squash.default_options with theta = 0.01 } in
        let r = squash_wl ~options (wl "rasta") in
        let p = r.Squash.squashed.Rewrite.prog in
        let regions = r.Squash.regions in
        let has_compressed g =
          match Prog.find_func p g with
          | None -> false
          | Some f ->
            Array.exists Fun.id
              (Array.mapi
                 (fun i _ -> Regions.block_region regions g i <> None)
                 f.Prog.Func.blocks)
        in
        let in_region g i = Regions.block_region regions g i <> None in
        let count bs =
          let `Safe_calls sc, `Direct_calls _, `Indirect_calls _ =
            Buffer_safe.stats p bs ~in_region
          in
          sc
        in
        let cons = count (Buffer_safe.analyze p ~has_compressed) in
        let sharp = count (Buffer_safe.analyze_sharp p ~has_compressed) in
        if sharp <= cons then
          Alcotest.failf "expected a strict increase, got %d -> %d" cons sharp);
    Alcotest.test_case
      "conservative and sharp builds behave identically" `Slow (fun () ->
        let w = wl "rasta" in
        let base = { Squash.default_options with theta = 0.01 } in
        let outcome options =
          let r = squash_wl ~options w in
          fst
            (Runtime.run r.Squash.squashed
               ~input:(Workload.profiling_input w))
        in
        let o1 = outcome base in
        let o2 = outcome { base with Squash.sharp_buffer_safe = true } in
        Alcotest.(check string) "output" o1.Vm.output o2.Vm.output;
        Alcotest.(check int) "exit code" o1.Vm.exit_code o2.Vm.exit_code);
  ]

(* Execute a sharp-optimised image and watch the machine: between entering
   a buffer-safe function and returning from it, the decompressor must
   never run.  This is the very invariant that lets the rewrite leave the
   call sites unchanged. *)
let safe_call_property name ~max_steps =
  let w = wl name in
  let options =
    { Squash.default_options with theta = 0.01; sharp_buffer_safe = true }
  in
  let r = squash_wl ~options w in
  let sq = r.Squash.squashed in
  let bs = r.Squash.buffer_safe in
  let entry_set = Hashtbl.create 64 in
  List.iter
    (fun (g, a) ->
      if Buffer_safe.is_safe bs g then Hashtbl.replace entry_set a g)
    sq.Rewrite.func_entry_addrs;
  let vm, stats = Runtime.launch sq ~input:(Workload.profiling_input w) in
  let stack = ref [] in
  let entered = ref 0 in
  let running = ref true in
  let steps = ref 0 in
  while !running && !steps < max_steps do
    incr steps;
    let pc = Vm.pc vm in
    (match !stack with
    | (ret, g, d0) :: tl when pc = ret ->
      if stats.Runtime.decompressions <> d0 then
        Alcotest.failf
          "%s: %d decompressions inside a call to buffer-safe %s" name
          (stats.Runtime.decompressions - d0)
          g;
      stack := tl
    | _ -> ());
    (match Hashtbl.find_opt entry_set pc with
    | Some g ->
      incr entered;
      stack := (Vm.reg vm Reg.ra, g, stats.Runtime.decompressions) :: !stack
    | None -> ());
    running := Vm.step vm
  done;
  if !entered = 0 then
    Alcotest.failf "%s: no buffer-safe function was ever entered" name;
  if stats.Runtime.decompressions = 0 then
    Alcotest.failf "%s: the run never decompressed anything" name

let vm_property_tests =
  [
    Alcotest.test_case "no decompression inside safe calls (adpcm)" `Slow
      (fun () -> safe_call_property "adpcm" ~max_steps:4_000_000);
    Alcotest.test_case "no decompression inside safe calls (g721_enc)" `Slow
      (fun () -> safe_call_property "g721_enc" ~max_steps:4_000_000);
    Alcotest.test_case "no decompression inside safe calls (rasta)" `Slow
      (fun () -> safe_call_property "rasta" ~max_steps:4_000_000);
  ]

let suite =
  [
    ("buffer-safe: fixpoint", unit_tests);
    ("buffer-safe: monotonicity", monotone_tests);
    ("buffer-safe: rasta sharpening", rasta_tests);
    ("buffer-safe: VM property", vm_property_tests);
  ]
