(* Region formation: the shared entry-stub predicate, the §4 profitability
   test, and the equivalence of the incremental packer with its rescan
   reference. *)

let qcheck = QCheck_alcotest.to_alcotest

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let build ?packer ?(k_bytes = 512) ?(pack = true) ~compressible p =
  Regions.build ?packer p ~compressible
    ~params:{ Regions.default_params with Regions.k_bytes; pack }

(* Everything the packers decide: the partition (ids and layout order of
   every region) plus the entry set. *)
let fingerprint (t : Regions.t) =
  ( Array.to_list
      (Array.map (fun r -> (r.Regions.id, r.Regions.blocks)) t.Regions.regions),
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.Regions.entries [])
  )

let check_packers_agree ?k_bytes ~compressible p =
  let inc = build ~packer:`Incremental ?k_bytes ~compressible p ~pack:true
  and ref_ = build ~packer:`Rescan ?k_bytes ~compressible p ~pack:true in
  if fingerprint inc <> fingerprint ref_ then
    Alcotest.failf "incremental and rescan packers disagree (%d vs %d regions)"
      (Array.length inc.Regions.regions)
      (Array.length ref_.Regions.regions);
  inc

(* Three single-function regions wired so that the first merge changes a
   third region's best partner — the case pure pair-caching gets wrong.
   mid_a calls helper_b twice and leaf once; helper_b calls leaf once;
   main (never compressible) calls only mid_a.

   Initially helper_b's entry depends solely on region A (both call sites
   in mid_a), so gain(A,B) = one vanishing stub + two crossing calls = 6,
   while gain(A,C) = gain(B,C) = 2 (one crossing call each; leaf's entry
   needs {A,B}, no singleton).  Merging A+B renames leaf's needs to the
   singleton {AB} and folds the call weights, lifting gain(AB,C) from 2 to
   6 — region C's best partner appears only because of a merge it took no
   part in. *)
let three_region_src =
  {|
.entry main
func main {
  .0:
    lda a0, 7(zero)
    call mid_a
  .1:
    sys exit
    halt
}
func mid_a {
  .0:
    add a0, a0, t0
    add t0, t0, t1
    call helper_b
  .1:
    add v0, t1, a0
    call helper_b
  .2:
    add v0, t0, a0
    call leaf
  .3:
    add v0, t1, v0
    ret
}
func helper_b {
  .0:
    add a0, a0, t2
    mul t2, t2, t2
    add t2, a0, t2
    add t2, t2, t2
    add t2, a0, t2
    add t2, t2, v0
    ret
}
func leaf {
  .0:
    mul a0, a0, t3
    add t3, a0, t3
    mul t3, t3, t3
    add t3, a0, t3
    add t3, t3, t3
    add t3, t3, v0
    ret
}
|}

let cold_funcs = [ "mid_a"; "helper_b"; "leaf" ]
let cold_only f _ = List.mem f cold_funcs

let region_ids t keys =
  List.map (fun (f, i) -> Regions.block_region t f i) keys
  |> List.sort_uniq compare

let unit_tests =
  [
    Alcotest.test_case "a merge changes a third region's best partner" `Quick
      (fun () ->
        let p = parse three_region_src in
        (* Without packing: three separate regions, leaf's entry stubbed. *)
        let unpacked = build ~compressible:cold_only ~pack:false p in
        Alcotest.(check int) "three regions" 3
          (Array.length unpacked.Regions.regions);
        Alcotest.(check bool) "leaf entry stubbed" true
          (Regions.is_entry unpacked "leaf" 0);
        (* With packing: both packers fold everything into one region, and
           only mid_a's entry (called from never-compressed main) keeps its
           stub. *)
        let t = check_packers_agree ~compressible:cold_only p in
        Alcotest.(check int) "one region" 1 (Array.length t.Regions.regions);
        Alcotest.(check
                    (list (option int)))
          "all blocks in region 0" [ Some 0 ]
          (region_ids t [ ("mid_a", 0); ("helper_b", 0); ("leaf", 0) ]);
        Alcotest.(check bool) "mid_a entry stubbed" true
          (Regions.is_entry t "mid_a" 0);
        Alcotest.(check bool) "helper_b stub merged away" false
          (Regions.is_entry t "helper_b" 0);
        Alcotest.(check bool) "leaf stub merged away" false
          (Regions.is_entry t "leaf" 0));
    Alcotest.test_case "profitability stub count equals compute_entries" `Quick
      (fun () ->
        (* With packing off, each accepted region's final entry set must
           count exactly what the profitability test priced: both sides now
           evaluate the same predicate. *)
        let p = parse three_region_src in
        let t = build ~compressible:cold_only ~pack:false p in
        Array.iter
          (fun (r : Regions.region) ->
            let in_region =
              Hashtbl.fold
                (fun key () acc -> if List.mem key r.Regions.blocks then acc + 1 else acc)
                t.Regions.entries 0
            in
            Alcotest.(check int)
              (Printf.sprintf "region %d" r.Regions.id)
              (Regions.entry_count_if_region p r.Regions.blocks)
              in_region)
          t.Regions.regions;
        Alcotest.(check int) "total entries" 3 (Hashtbl.length t.Regions.entries));
    Alcotest.test_case "self-recursive region the old predicate rejected" `Quick
      (fun () ->
        (* f's only caller is itself, so with both blocks (4 instructions)
           in one tentative region its entry needs no stub: E = 0 and the
           region is profitable.  The pre-unification entry count charged
           the entry a stub whenever callers_of_entry was non-empty,
           pricing E = 1 and rejecting (2 ≥ 0.34·4). *)
        let p =
          parse
            {|
.entry main
func main {
  .0:
    sys exit
    halt
}
func f {
  .0:
    add a0, a0, t0
    call f
  .1:
    add v0, t0, v0
    ret
}
|}
        in
        Alcotest.(check int) "E = 0" 0
          (Regions.entry_count_if_region p [ ("f", 0); ("f", 1) ]);
        let t = build ~compressible:(fun g _ -> g = "f") ~pack:false p in
        Alcotest.(check int) "one region" 1 (Array.length t.Regions.regions);
        Alcotest.(check
                    (list (option int)))
          "both blocks placed" [ Some 0 ]
          (region_ids t [ ("f", 0); ("f", 1) ]);
        Alcotest.(check int) "no entry stubs" 0 (Hashtbl.length t.Regions.entries));
    Alcotest.test_case "fig7 θ mapping derives from theta_rescale" `Quick
      (fun () ->
        (* Pins the intentional rescale of DESIGN.md §4: paper labels stay,
           values are paper·theta_rescale snapped to the θ grid. *)
        Alcotest.(check (list (pair string (float 0.0))))
          "label -> θ"
          [ ("0.0", 0.0); ("1e-5", 1e-4); ("5e-5", 1e-3) ]
          Exp_data.fig7_thetas;
        List.iter
          (fun (_, v) ->
            Alcotest.(check bool) "on the grid" true
              (List.mem v Exp_data.theta_grid))
          Exp_data.fig7_thetas);
  ]

let property_tests =
  [
    qcheck
      (QCheck.Test.make
         ~name:"incremental packer matches the rescan reference on random programs"
         ~count:25
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 700 780))
         (fun seed ->
           let p = Minic.compile_exn (Gen_minic.random_program ~seed) in
           let p, _ = Squeeze.run p in
           (* Everything compressible and a small bound stress merging
              decisions; vary the bound with the seed. *)
           let k_bytes = [| 64; 128; 256; 512 |].(seed mod 4) in
           ignore
             (check_packers_agree ~k_bytes
                ~compressible:(fun _ _ -> true)
                p);
           true));
  ]

(* The tentpole's guard rail: on every workload, across the θ grid, the
   incremental packer and the rescan reference produce identical partitions
   and entry sets — and both match what the pipeline (which uses the
   incremental packer) actually built. *)
let workload_tests =
  [
    Alcotest.test_case "workloads: packers agree across the θ grid" `Slow
      (fun () ->
        List.iter
          (fun wl ->
            let prep = Exp_data.prepare wl in
            List.iter
              (fun theta ->
                let options = { Squash.default_options with Squash.theta } in
                let r = Exp_data.squash_result prep options in
                let prog = r.Squash.squashed.Rewrite.prog in
                let compressible f b =
                  (not (List.mem f r.Squash.excluded_funcs))
                  && (Cold.is_cold r.Squash.cold f b
                     || Profile.freq prep.Exp_data.profile f b = 0)
                in
                let t = check_packers_agree ~compressible prog in
                if fingerprint t <> fingerprint r.Squash.regions then
                  Alcotest.failf "%s θ=%g: pipeline partition differs"
                    wl.Workload.name theta)
              Exp_data.theta_grid)
          Workloads.all);
  ]

let suite = [ ("regions", unit_tests @ property_tests @ workload_tests) ]
