(* End-to-end squash: correctness of the rewritten image and its runtime. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let squeeze p = fst (Squeeze.run p)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let run_orig ?(input = "") ?(fuel = 30_000_000) p =
  Vm.run (Vm.of_image ~fuel (Layout.emit p) ~input)

let squash ?(options = Squash.default_options) ?(profile_input = "") p =
  let prof, _ = Profile.collect p ~input:profile_input in
  Squash.run ~options p prof

let run_squashed ?(input = "") ?(fuel = 60_000_000) r =
  Runtime.run ~fuel r.Squash.squashed ~input

(* A program with a clearly hot core and clearly cold paths; the "mode"
   input byte steers execution into cold code at timing time. *)
let hot_cold_src =
  {|
int report(int code) {
  putint(1000 + code);
  return code;
}
int rare_fixup(int x) {
  int i; int acc;
  acc = x;
  for (i = 0; i < 3; i = i + 1) acc = acc * 5 + i;
  report(acc & 1023);
  return acc;
}
int hot_step(int x) { return (x * 17 + 3) & 4095; }
int main() {
  int mode; int i; int acc;
  mode = getc();
  acc = 1;
  for (i = 0; i < 200; i = i + 1) acc = hot_step(acc + i);
  if (mode == 'x') acc = rare_fixup(acc);
  putint(acc);
  return acc & 255;
}
|}

let check_same name (o1 : Vm.outcome) (o2 : Vm.outcome) =
  Alcotest.(check string) (name ^ " output") o1.Vm.output o2.Vm.output;
  Alcotest.(check int) (name ^ " exit") o1.Vm.exit_code o2.Vm.exit_code

let unit_tests =
  [
    Alcotest.test_case "θ=0: same behaviour on the profiling input" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r = squash ~profile_input:"n" p in
        let o1 = run_orig ~input:"n" p in
        let o2, _ = run_squashed ~input:"n" r in
        check_same "theta0" o1 o2);
    Alcotest.test_case "θ=0: cold path taken at timing time decompresses" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r = squash ~profile_input:"n" p in
        let o1 = run_orig ~input:"x" p in
        let o2, stats = run_squashed ~input:"x" r in
        check_same "coldpath" o1 o2;
        Alcotest.(check bool) "decompressor ran" true (stats.Runtime.decompressions > 0));
    Alcotest.test_case "θ=0 never decompresses on the training input" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r = squash ~profile_input:"n" p in
        let _, stats = run_squashed ~input:"n" r in
        Alcotest.(check int) "no decompressions" 0 stats.Runtime.decompressions);
    Alcotest.test_case "θ=1: everything compressed still runs correctly" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 }
            ~profile_input:"n" p
        in
        let o1 = run_orig ~input:"x" p in
        let o2, stats = run_squashed ~input:"x" r in
        check_same "theta1" o1 o2;
        Alcotest.(check bool) "many decompressions" true
          (stats.Runtime.decompressions > 10));
    Alcotest.test_case "squashed footprint is smaller at θ=0" `Quick (fun () ->
        (* The decompressor, stub area and buffer are fixed overheads, so
           the benefit only shows on programs big enough to amortise them —
           exactly as in the paper, whose benchmarks are 12k-65k
           instructions.  Build a program with plenty of cold code. *)
        let cold_funcs =
          List.init 60 (fun i ->
              Printf.sprintf
                "int cold_%d(int x) {\n\
                 \  int a; int b; int c;\n\
                 \  a = x * %d + 13; b = (a ^ %d) %% 97; c = a + b;\n\
                 \  if (x > 40) { c = c * 3 - a; b = b + c; }\n\
                 \  else { c = c + a * 2; }\n\
                 \  while (b > 9) { b = b - 7; c = c + 1; }\n\
                 \  return a + b * 2 + c;\n\
                 }" i (i + 3) (i * 7))
          |> String.concat "\n"
        in
        let dispatch =
          List.init 60 (fun i ->
              Printf.sprintf "  if (sel == %d) acc = acc + cold_%d(acc);" i i)
          |> String.concat "\n"
        in
        let src =
          Printf.sprintf
            {|
%s
int hot(int x) { return (x * 29 + 7) & 8191; }
int main() {
  int sel; int i; int acc;
  sel = getc();
  acc = 1;
  for (i = 0; i < 50; i = i + 1) acc = hot(acc + i);
%s
  putint(acc);
  return 0;
}
|}
            cold_funcs dispatch
        in
        let p = squeeze (compile src) in
        let r = squash ~profile_input:"" p in
        Alcotest.(check bool)
          (Printf.sprintf "reduction > 5%% (%d -> %d words)" r.Squash.original_words
             r.Squash.squashed_words)
          true
          (Squash.size_reduction r > 0.05);
        (* And the transformed program still behaves identically on an input
           that runs some cold code. *)
        let o1 = run_orig ~input:"\007" p in
        let o2, stats = run_squashed ~input:"\007" r in
        check_same "bigprog" o1 o2;
        Alcotest.(check bool) "decompressed" true (stats.Runtime.decompressions > 0));
    Alcotest.test_case "size breakdown sums to the total" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r = squash ~profile_input:"n" p in
        let b = Squash.breakdown r in
        let sum =
          b.Squash.never_compressed + b.Squash.decompressor + b.Squash.offset_table
          + b.Squash.compressed_code + b.Squash.code_tables + b.Squash.stub_area
          + b.Squash.runtime_buffer
        in
        Alcotest.(check int) "sum" r.Squash.squashed_words sum);
    Alcotest.test_case "restore stubs: created, reused, reference-counted" `Quick
      (fun () ->
        (* Under θ=1 the recursive calls all run from the buffer, so calls
           out of compressed code exercise CreateStub heavily. *)
        let src =
          {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { putint(fib(12)); return 0; }
|}
        in
        let p = squeeze (compile src) in
        (* A small K forces fib to split into several regions, so the
           recursive calls cross regions and must go through CreateStub. *)
        let r =
          squash
            ~options:{ Squash.default_options with Squash.theta = 1.0; k_bytes = 64 }
            p
        in
        let o1 = run_orig p in
        let o2, stats = run_squashed r in
        check_same "fib" o1 o2;
        Alcotest.(check bool) "stubs created" true (stats.Runtime.stub_creates > 0);
        Alcotest.(check bool) "stubs reused" true (stats.Runtime.stub_reuses > 0);
        Alcotest.(check bool) "all stubs freed at exit" true
          (stats.Runtime.live_stubs <= 1);
        Alcotest.(check bool) "bounded live stubs" true
          (stats.Runtime.max_live_stubs <= 16));
    Alcotest.test_case "setjmp callers are never compressed" `Quick (fun () ->
        let src =
          {|
int jb[16];
int guarded(int n) {
  int r;
  r = setjmp(jb);
  if (r != 0) return 100 + r;
  if (n > 5) longjmp(jb, n);
  return n;
}
int main() { putint(guarded(3)); putint(guarded(9)); return 0; }
|}
        in
        let p = squeeze (compile src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        Alcotest.(check bool) "guarded excluded" true
          (List.mem "guarded" r.Squash.excluded_funcs);
        let o1 = run_orig p in
        let o2, _ = run_squashed r in
        check_same "setjmp" o1 o2);
    Alcotest.test_case "cold switch is unswitched and its table reclaimed" `Quick
      (fun () ->
        let src =
          {|
int rare_dispatch(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 21;
    case 2: return 32;
    case 3: return 43;
    case 4: return 54;
    default: return 99;
  }
}
int main() {
  int c;
  c = getc();
  if (c == 'd') { putint(rare_dispatch(c & 7)); }
  putint(7);
  return 0;
}
|}
        in
        let p = squeeze (compile src) in
        let r = squash ~profile_input:"n" p in
        Alcotest.(check bool) "unswitched something" true
          (List.length r.Squash.unswitched > 0);
        let o1 = run_orig ~input:"d" p in
        let o2, stats = run_squashed ~input:"d" r in
        check_same "unswitch" o1 o2;
        Alcotest.(check bool) "ran from the buffer" true
          (stats.Runtime.decompressions > 0));
    Alcotest.test_case "kept-table fallback (unswitch off) also works" `Quick
      (fun () ->
        let src =
          {|
int rare_dispatch(int x) {
  int r;
  switch (x) {
    case 0: r = 10; break;
    case 1: r = 21; break;
    case 2: r = 32; break;
    case 3: r = 43; break;
    case 4: r = 54; break;
    default: r = 99; break;
  }
  return r;
}
int main() {
  int c;
  c = getc();
  if (c == 'd') { putint(rare_dispatch(c & 3)); }
  putint(7);
  return 0;
}
|}
        in
        let p = squeeze (compile src) in
        let r =
          squash
            ~options:{ Squash.default_options with Squash.unswitch = false }
            ~profile_input:"n" p
        in
        Alcotest.(check (list (pair string int))) "nothing unswitched" []
          r.Squash.unswitched;
        let o1 = run_orig ~input:"d" p in
        let o2, _ = run_squashed ~input:"d" r in
        check_same "kept-table" o1 o2);
    Alcotest.test_case "buffer-safe callees skip CreateStub" `Quick (fun () ->
        (* leaf is hot (never compressed) and calls nothing: buffer-safe.
           Cold code calling only leaf should produce zero restore stubs. *)
        let src =
          {|
int leaf(int x) { return x * 3 + 1; }
int cold_worker(int x) {
  int i; int acc;
  acc = x;
  for (i = 0; i < 4; i = i + 1) acc = leaf(acc) + 1;
  return acc;
}
int main() {
  int c; int i; int acc;
  c = getc();
  acc = 0;
  for (i = 0; i < 100; i = i + 1) acc = acc + leaf(i);
  if (c == 'x') acc = acc + cold_worker(c);
  putint(acc);
  return 0;
}
|}
        in
        let p = squeeze (compile src) in
        let r = squash ~profile_input:"n" p in
        Alcotest.(check bool) "leaf is buffer-safe" true
          (Buffer_safe.is_safe r.Squash.buffer_safe "leaf");
        let o1 = run_orig ~input:"x" p in
        let o2, stats = run_squashed ~input:"x" r in
        check_same "bsafe" o1 o2;
        Alcotest.(check bool) "decompressed" true (stats.Runtime.decompressions > 0);
        Alcotest.(check int) "no restore stubs needed" 0 stats.Runtime.stub_creates);
    Alcotest.test_case "function pointers into compressed code" `Quick (fun () ->
        let src =
          {|
int cb_a(int x) { return x + 100; }
int cb_b(int x) { return x * 2; }
int main() {
  int c; int f;
  c = getc();
  if (c == 'a') f = &cb_a;
  else f = &cb_b;
  putint(f(21));
  return 0;
}
|}
        in
        let p = squeeze (compile src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 }
            ~profile_input:"b" p
        in
        let o1 = run_orig ~input:"a" p in
        let o2, _ = run_squashed ~input:"a" r in
        check_same "fptr" o1 o2);
    Alcotest.test_case "gamma achieved is plausibly below 1" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let g = Squash.gamma_achieved r in
        Alcotest.(check bool) (Printf.sprintf "gamma %.2f in (0.2, 1.0)" g) true
          (g > 0.2 && g < 1.0));
    Alcotest.test_case "image streams round-trip through the compressor" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let sq = r.Squash.squashed in
        Array.iteri
          (fun i (img : Rewrite.region_image) ->
            let decoded, _ =
              Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
                ~bit_offset:sq.Rewrite.blob_offsets.(i) ()
            in
            if not (List.equal Instr.equal decoded img.Rewrite.stream) then
              Alcotest.failf "region %d stream mismatch" i)
          sq.Rewrite.images);
    Alcotest.test_case "different K values all preserve behaviour" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let o1 = run_orig ~input:"x" p in
        List.iter
          (fun k ->
            let r =
              squash
                ~options:{ Squash.default_options with Squash.theta = 1.0; k_bytes = k }
                ~profile_input:"n" p
            in
            let o2, _ = run_squashed ~input:"x" r in
            check_same (Printf.sprintf "K=%d" k) o1 o2)
          [ 64; 128; 256; 512; 2048 ]);
  ]

let checker_tests =
  [
    Alcotest.test_case "Check accepts images from every coder and θ" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        List.iter
          (fun (theta, coder) ->
            let r =
              squash ~options:{ Squash.default_options with Squash.theta; coder }
                ~profile_input:"n" p
            in
            match Check.check r.Squash.squashed with
            | Ok () -> ()
            | Error es ->
              Alcotest.failf "θ=%g: %s" theta (String.concat "; " es))
          [ (0.0, `Split_stream); (1.0, `Split_stream); (1.0, `Split_stream_mtf);
            (1.0, `Lzss); (1.0, `Context); (0.001, `Split_stream);
            (0.001, `Context) ]);
    Alcotest.test_case "Check rejects a corrupted offset table" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 }
            ~profile_input:"n" p
        in
        let sq = r.Squash.squashed in
        if Array.length sq.Rewrite.blob_offsets >= 2 then begin
          let saved = sq.Rewrite.blob_offsets.(1) in
          sq.Rewrite.blob_offsets.(1) <- max 0 (saved - 3);
          let verdict = Check.check sq in
          sq.Rewrite.blob_offsets.(1) <- saved;
          match verdict with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "corruption not detected"
        end);
    Alcotest.test_case "Check rejects a stray sentinel in a region image" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 }
            ~profile_input:"n" p
        in
        let sq = r.Squash.squashed in
        Alcotest.(check bool) "has a region" true
          (Array.length sq.Rewrite.images > 0);
        let saved = sq.Rewrite.images.(0) in
        sq.Rewrite.images.(0) <-
          {
            saved with
            Rewrite.words = Rewrite.Plain Instr.Sentinel :: saved.Rewrite.words;
          };
        let verdict = Check.check sq in
        sq.Rewrite.images.(0) <- saved;
        match verdict with
        | Error es ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions the sentinel (%s)" (String.concat "; " es))
            true
            (List.exists (fun e -> contains e "sentinel") es)
        | Ok () -> Alcotest.fail "sentinel not detected");
    Alcotest.test_case "Check rejects an out-of-range stub tag" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 }
            ~profile_input:"n" p
        in
        let sq = r.Squash.squashed in
        let key, addr =
          match sq.Rewrite.stub_addrs with
          | s :: _ -> s
          | [] -> Alcotest.fail "no entry stubs"
        in
        ignore key;
        let words = sq.Rewrite.text.Easm.words in
        let word_idx a = (a - Layout.text_base) / 4 in
        (* The tag word follows the stub's bsr: 2-word plain form or
           3-word push form (stw sp, -4 first). *)
        let tag_idx =
          match Instr.decode words.(word_idx addr) with
          | Ok (Instr.Mem { op = Instr.Stw; _ }) -> word_idx (addr + 8)
          | _ -> word_idx (addr + 4)
        in
        let saved = words.(tag_idx) in
        words.(tag_idx) <- (Array.length sq.Rewrite.images + 7) lsl 16;
        let verdict = Check.check sq in
        words.(tag_idx) <- saved;
        match verdict with
        | Error es ->
          Alcotest.(check bool)
            (Printf.sprintf "names the bogus region (%s)"
               (String.concat "; " es))
            true
            (List.exists (fun e -> contains e "names region") es)
        | Ok () -> Alcotest.fail "bad tag not detected");
  ]

let variant_tests =
  [
    Alcotest.test_case "MTF coder round-trips and runs" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0;
                coder = `Split_stream_mtf }
            ~profile_input:"n" p
        in
        Alcotest.(check bool) "backend recorded" true
          (Compress.backend_of r.Squash.squashed.Rewrite.codes = `Split_stream_mtf);
        let o1 = run_orig ~input:"x" p in
        let o2, stats = run_squashed ~input:"x" r in
        check_same "mtf" o1 o2;
        Alcotest.(check bool) "decompressed" true (stats.Runtime.decompressions > 0));
    Alcotest.test_case "LZSS coder round-trips and runs" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; coder = `Lzss }
            ~profile_input:"n" p
        in
        let o1 = run_orig ~input:"x" p in
        let o2, _ = run_squashed ~input:"x" r in
        check_same "lzss" o1 o2);
    Alcotest.test_case "Context coder round-trips and runs" `Quick (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; coder = `Context }
            ~profile_input:"n" p
        in
        Alcotest.(check bool) "backend recorded" true
          (Compress.backend_of r.Squash.squashed.Rewrite.codes = `Context);
        Alcotest.(check string) "coder name" "context"
          (Compress.coder_name r.Squash.squashed.Rewrite.codes);
        let o1 = run_orig ~input:"x" p in
        let o2, stats = run_squashed ~input:"x" r in
        check_same "context" o1 o2;
        Alcotest.(check bool) "decompressed" true (stats.Runtime.decompressions > 0));
    Alcotest.test_case "linear region strategy preserves behaviour" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0;
                regions_strategy = `Linear }
            ~profile_input:"n" p
        in
        let o1 = run_orig ~input:"x" p in
        let o2, _ = run_squashed ~input:"x" r in
        check_same "linear" o1 o2);
    Alcotest.test_case "all region streams round-trip under every coder" `Quick
      (fun () ->
        let p = squeeze (compile hot_cold_src) in
        List.iter
          (fun coder ->
            let r =
              squash
                ~options:{ Squash.default_options with Squash.theta = 1.0; coder }
                p
            in
            let sq = r.Squash.squashed in
            let nregions = Array.length sq.Rewrite.images in
            Array.iteri
              (fun i (img : Rewrite.region_image) ->
                let bit_end =
                  if i + 1 < nregions then Some sq.Rewrite.blob_offsets.(i + 1)
                  else None
                in
                let decoded, work =
                  Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
                    ~bit_offset:sq.Rewrite.blob_offsets.(i) ?bit_end ()
                in
                if not (List.equal Instr.equal decoded img.Rewrite.stream) then
                  Alcotest.failf "region %d stream mismatch" i;
                Alcotest.(check bool) "work positive" true
                  (work.Compress.bits > 0 && work.Compress.steps >= 0))
              sq.Rewrite.images)
          [ `Split_stream; `Split_stream_mtf; `Lzss; `Context ]);
  ]

let differential_tests =
  [
    Alcotest.test_case "differential: random programs, several θ" `Slow (fun () ->
        List.iter
          (fun theta ->
            for seed = 1 to 12 do
              let src = Gen_minic.random_program ~seed in
              let p = squeeze (compile src) in
              let o1 = run_orig p in
              let r =
                squash ~options:{ Squash.default_options with Squash.theta = theta } p
              in
              let o2, _ = run_squashed r in
              if o1.Vm.output <> o2.Vm.output || o1.Vm.exit_code <> o2.Vm.exit_code
              then
                Alcotest.failf "seed %d θ=%g: behaviour diverged (exit %d vs %d)" seed
                  theta o1.Vm.exit_code o2.Vm.exit_code
            done)
          [ 0.0; 0.001; 1.0 ]);
    Alcotest.test_case "differential: packing and optimisations off" `Slow (fun () ->
        for seed = 41 to 52 do
          let src = Gen_minic.random_program ~seed in
          let p = squeeze (compile src) in
          let o1 = run_orig p in
          let opts =
            {
              Squash.default_options with
              Squash.theta = 1.0;
              pack = false;
              use_buffer_safe = false;
              unswitch = false;
            }
          in
          let r = squash ~options:opts p in
          let o2, _ = run_squashed r in
          if o1.Vm.output <> o2.Vm.output || o1.Vm.exit_code <> o2.Vm.exit_code then
            Alcotest.failf "seed %d: behaviour diverged" seed
        done);
    Alcotest.test_case "differential: alternative codecs and region strategy"
      `Slow (fun () ->
        List.iter
          (fun (name, opts) ->
            for seed = 60 to 69 do
              let src = Gen_minic.random_program ~seed in
              let p = squeeze (compile src) in
              let o1 = run_orig p in
              let r = squash ~options:opts p in
              let o2, _ = run_squashed r in
              if o1.Vm.output <> o2.Vm.output || o1.Vm.exit_code <> o2.Vm.exit_code
              then Alcotest.failf "%s seed %d: behaviour diverged" name seed
            done)
          [ ("mtf",
             { Squash.default_options with Squash.theta = 1.0;
               coder = `Split_stream_mtf });
            ("lzss",
             { Squash.default_options with Squash.theta = 1.0; coder = `Lzss });
            ("context",
             { Squash.default_options with Squash.theta = 1.0;
               coder = `Context });
            ("linear",
             { Squash.default_options with Squash.theta = 1.0;
               regions_strategy = `Linear }) ]);
  ]

let suite = [ ("squash", unit_tests @ checker_tests @ variant_tests @ differential_tests) ]
