(* Lifecycle algebra over profiles (Profile_ops) — qcheck properties over
   synthetic profiles, plus sampled→exact convergence on real workloads. *)

let qcheck = QCheck_alcotest.to_alcotest

(* Synthetic profiles via [Profile.of_entries]: a handful of function
   names, small block ids, bounded counts.  Keys are deduplicated because
   [of_entries] rejects duplicates. *)
let gen_profile =
  let open QCheck.Gen in
  let entry =
    quad
      (oneofl [ "main"; "hot"; "cold"; "f"; "g2" ])
      (int_range 0 12) (int_range 0 1000) (int_range 0 100_000)
  in
  let+ raw = list_size (int_range 0 25) entry in
  let entries =
    List.fold_left
      (fun (seen, acc) (f, b, fr, w) ->
        if List.mem (f, b) seen then (seen, acc)
        else ((f, b) :: seen, ((f, b), fr, w) :: acc))
      ([], []) raw
    |> snd
  in
  Profile.of_entries entries

let arb_profile =
  QCheck.make ~print:(fun p -> Profile.to_string p) gen_profile

let arb_profile2 = QCheck.pair arb_profile arb_profile

let arb_profile3 = QCheck.triple arb_profile arb_profile arb_profile

(* Entries with at least one non-zero count — what the lifecycle ops
   preserve (all-zero entries are dropped by merge/decay). *)
let nonzero_entries p =
  List.filter (fun (_, fr, w) -> fr > 0 || w > 0) (Profile.entries p)

let merge_commutes =
  QCheck.Test.make ~count:200 ~name:"merge is commutative (w = 1)"
    arb_profile2 (fun (a, b) ->
      let ab = Profile_ops.merge a b and ba = Profile_ops.merge b a in
      Profile.entries ab = Profile.entries ba
      && Profile.total_weight ab = Profile.total_weight ba)

let merge_associates =
  QCheck.Test.make ~count:200 ~name:"merge is associative (w = 1)"
    arb_profile3 (fun (a, b, c) ->
      let l = Profile_ops.merge (Profile_ops.merge a b) c in
      let r = Profile_ops.merge a (Profile_ops.merge b c) in
      Profile.entries l = Profile.entries r)

let decay_one_is_identity =
  QCheck.Test.make ~count:200 ~name:"decay 1.0 is the identity on entries"
    arb_profile (fun p ->
      Profile.entries (Profile_ops.decay p ~factor:1.0) = nonzero_entries p)

let decay_zero_empties =
  QCheck.Test.make ~count:200 ~name:"decay 0.0 empties the profile"
    arb_profile (fun p ->
      Profile.entries (Profile_ops.decay p ~factor:0.0) = []
      && Profile.total_weight (Profile_ops.decay p ~factor:0.0) = 0)

(* round(f·(x+y)) and round(f·x)+round(f·y) differ by at most 1, so decay
   distributes over merge up to ±1 per count. *)
let decay_distributes =
  QCheck.Test.make ~count:200
    ~name:"decay distributes over merge (per-count tolerance 1)" arb_profile2
    (fun (a, b) ->
      let f = 0.5 in
      let l = Profile_ops.decay (Profile_ops.merge a b) ~factor:f in
      let r = Profile_ops.merge (Profile_ops.decay a ~factor:f)
          (Profile_ops.decay b ~factor:f)
      in
      let keys p = List.map (fun (k, _, _) -> k) (Profile.entries p) in
      List.for_all
        (fun (fn, blk) ->
          abs (Profile.freq l fn blk - Profile.freq r fn blk) <= 1
          && abs (Profile.weight l fn blk - Profile.weight r fn blk) <= 1)
        (List.sort_uniq compare (keys l @ keys r)))

let truncate_invariants =
  QCheck.Test.make ~count:200
    ~name:"truncate_top keeps <= k entries, values unchanged"
    (QCheck.pair arb_profile (QCheck.int_range 0 10))
    (fun (p, k) ->
      let t = Profile_ops.truncate_top p ~keep:k in
      let kept = Profile.entries t in
      List.length kept <= k
      && List.for_all
           (fun ((fn, blk), fr, w) ->
             Profile.freq p fn blk = fr && Profile.weight p fn blk = w)
           kept
      && Profile.total_weight t
         = List.fold_left (fun acc (_, _, w) -> acc + w) 0 kept)

let quantize_invariants =
  QCheck.Test.make ~count:200
    ~name:"quantize bounds every count in (v/2, v]"
    (QCheck.pair arb_profile (QCheck.int_range 1 8))
    (fun (p, bits) ->
      let q = Profile_ops.quantize p ~bits in
      List.for_all
        (fun ((fn, blk), fr, w) ->
          let ok v qv = if v = 0 then qv = 0 else qv <= v && 2 * qv > v in
          ok fr (Profile.freq q fn blk) && ok w (Profile.weight q fn blk))
        (Profile.entries p))

let distance_self =
  QCheck.Test.make ~count:200 ~name:"distance (p, p) = 0" arb_profile
    (fun p -> Profile_ops.distance p p = 0.0)

let distance_symmetric_bounded =
  QCheck.Test.make ~count:200 ~name:"distance is symmetric and in [0, 1]"
    arb_profile2 (fun (a, b) ->
      let d = Profile_ops.distance a b in
      abs_float (d -. Profile_ops.distance b a) < 1e-12
      && d >= 0.0 && d <= 1.0
      && abs_float (Profile_ops.overlap a b -. (1.0 -. d)) < 1e-12)

let distance_scale_invariant =
  QCheck.Test.make ~count:200 ~name:"distance ignores uniform scaling"
    arb_profile (fun p ->
      let scaled =
        Profile.of_entries
          (List.map (fun (k, fr, w) -> (k, 3 * fr, 3 * w)) (Profile.entries p))
      in
      Profile_ops.distance p scaled < 1e-9)

let algebra_tests =
  List.map qcheck
    [
      merge_commutes; merge_associates; decay_one_is_identity;
      decay_zero_empties; decay_distributes; truncate_invariants;
      quantize_invariants; distance_self; distance_symmetric_bounded;
      distance_scale_invariant;
    ]

let unit_tests =
  [
    Alcotest.test_case "weighted merge scales the second profile" `Quick
      (fun () ->
        let a = Profile.of_entries [ (("main", 0), 10, 100) ] in
        let b = Profile.of_entries [ (("main", 0), 4, 40) ] in
        let m = Profile_ops.merge ~w:0.5 a b in
        Alcotest.(check int) "freq" 12 (Profile.freq m "main" 0);
        Alcotest.(check int) "weight" 120 (Profile.weight m "main" 0);
        Alcotest.(check int) "total" 120 (Profile.total_weight m));
    Alcotest.test_case "negative merge weight is rejected" `Quick (fun () ->
        match Profile_ops.merge ~w:(-1.0) Profile.empty Profile.empty with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "w < 0 should raise");
    Alcotest.test_case "decay factor outside [0,1] is rejected" `Quick
      (fun () ->
        match Profile_ops.decay Profile.empty ~factor:1.5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "factor 1.5 should raise");
    Alcotest.test_case "lifecycle results carry Derived provenance" `Quick
      (fun () ->
        let p = Profile.of_entries [ (("main", 0), 1, 5) ] in
        let is_derived q =
          match Profile.source q with Profile.Derived _ -> true | _ -> false
        in
        Alcotest.(check bool) "merge" true
          (is_derived (Profile_ops.merge p p));
        Alcotest.(check bool) "decay" true
          (is_derived (Profile_ops.decay p ~factor:0.5));
        Alcotest.(check bool) "truncate" true
          (is_derived (Profile_ops.truncate_top p ~keep:1));
        Alcotest.(check bool) "quantize" true
          (is_derived (Profile_ops.quantize p ~bits:4)));
    Alcotest.test_case "distance of empty profiles" `Quick (fun () ->
        let p = Profile.of_entries [ (("main", 0), 1, 5) ] in
        Alcotest.(check (float 1e-12)) "empty/empty" 0.0
          (Profile_ops.distance Profile.empty Profile.empty);
        Alcotest.(check (float 1e-12)) "empty/non-empty" 1.0
          (Profile_ops.distance Profile.empty p));
  ]

(* ------------------------------------------------------------------ *)
(* Convergence on real workloads: as the sampling period shrinks the
   sampled profile approaches the exact one, and period 1 IS exact. *)

let convergence_tests =
  let for_workload name =
    Alcotest.test_case (name ^ ": sampled converges to exact") `Slow
      (fun () ->
        let wl =
          match Workloads.find name with
          | Some wl -> wl
          | None -> Alcotest.failf "workload %s missing" name
        in
        let p = Workload.compile wl in
        let input = Workload.profiling_input wl in
        let exact, _ = Profile.collect p ~input in
        let dist period =
          let sampled, _ =
            Profile.collect_sampled ~period ~seed:7 p ~input
          in
          Profile_ops.distance exact sampled
        in
        let d1 = dist 1 and d16 = dist 16 and d256 = dist 256 in
        Alcotest.(check (float 1e-12)) "period 1 is exact" 0.0 d1;
        if d16 > d256 +. 0.02 then
          Alcotest.failf
            "distance should shrink with period: d(16)=%.4f d(256)=%.4f" d16
            d256;
        if d256 > 0.25 then
          Alcotest.failf "period-256 estimate too far from exact: %.4f" d256)
  in
  [ for_workload "adpcm"; for_workload "gsm" ]

let suite =
  [
    ("profile-ops", unit_tests @ algebra_tests);
    ("profile-ops-convergence", convergence_tests);
  ]
