(* Report rendering helpers. *)

let unit_tests =
  [
    Alcotest.test_case "gmean of equal values" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 2.0 (Report.gmean [ 2.0; 2.0; 2.0 ]));
    Alcotest.test_case "gmean of 1 and 4 is 2" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 2.0 (Report.gmean [ 1.0; 4.0 ]));
    Alcotest.test_case "gmean ignores non-positive values" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 3.0 (Report.gmean [ 3.0; 0.0; -5.0 ]));
    Alcotest.test_case "gmean of empty list is 0" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 0.0 (Report.gmean []));
    Alcotest.test_case "table aligns columns" `Quick (fun () ->
        let t =
          Report.Table.create ~title:"T"
            [ ("name", Report.Table.Left); ("value", Report.Table.Right) ]
        in
        Report.Table.add_row t [ "a"; "1" ];
        Report.Table.add_row t [ "long-name"; "12345" ];
        let s = Report.Table.render t in
        let lines = String.split_on_char '\n' s in
        (* The two data lines must have equal width. *)
        let data = List.filteri (fun i _ -> i = 4 || i = 5) lines in
        match data with
        | [ l1; l2 ] ->
          Alcotest.(check int) "width" (String.length l2) (String.length l1)
        | _ -> Alcotest.fail "unexpected table layout");
    Alcotest.test_case "table rejects ragged rows" `Quick (fun () ->
        let t = Report.Table.create ~title:"T" [ ("a", Report.Table.Left) ] in
        match Report.Table.add_row t [ "x"; "y" ] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "percent and float cells" `Quick (fun () ->
        Alcotest.(check string) "pct" "13.7%" (Report.Table.cell_percent 0.137);
        Alcotest.(check string) "float" "0.82"
          (Report.Table.cell_float ~decimals:2 0.821));
    Alcotest.test_case "chart renders every series and label" `Quick (fun () ->
        let c =
          Report.Chart.create ~title:"C" ~x_labels:[ "a"; "b"; "c" ] ~height:5 ()
        in
        Report.Chart.add_series c ~name:"up" [ 1.0; 2.0; 3.0 ];
        Report.Chart.add_series c ~name:"down" [ 3.0; 2.5; 1.0 ];
        let s = Report.Chart.render c in
        let contains needle =
          let nh = String.length s and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "legend up" true (contains "up");
        Alcotest.(check bool) "legend down" true (contains "down");
        Alcotest.(check bool) "x label" true (contains "b"));
    Alcotest.test_case "chart with no data does not crash" `Quick (fun () ->
        let c = Report.Chart.create ~title:"C" ~x_labels:[ "a" ] ~height:4 () in
        Alcotest.(check bool) "renders" true
          (String.length (Report.Chart.render c) > 0));
    Alcotest.test_case "chart rejects wrong point counts" `Quick (fun () ->
        let c = Report.Chart.create ~title:"C" ~x_labels:[ "a"; "b" ] ~height:4 () in
        match Report.Chart.add_series c ~name:"s" [ 1.0 ] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
  ]

let json_tests =
  [
    Alcotest.test_case "control characters are escaped" `Quick (fun () ->
        Alcotest.(check string) "escapes"
          "\"a\\u0001b\\nc\\\"d\\\\e\\tf\""
          (Report.Json.to_string (Report.Json.String "a\001b\nc\"d\\e\tf")));
    Alcotest.test_case "non-finite floats serialise as null" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check string) "null" "null"
              (Report.Json.to_string (Report.Json.Float f)))
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    Alcotest.test_case "serialised documents round-trip" `Quick (fun () ->
        let open Report.Json in
        let doc =
          Obj
            [ ("null", Null); ("yes", Bool true); ("no", Bool false);
              ("int", Int (-123456789)); ("zero", Int 0);
              ("float", Float 0.1); ("tiny", Float 1.5e-9);
              ("neg", Float (-2.5)); ("inf", Float Float.infinity);
              ("ctrl", String "line1\nline2\ttab\001unit\127del");
              ("quote", String {|she said "hi\bye"|});
              ("empty_list", List []); ("empty_obj", Obj []);
              ( "nested",
                List
                  [ Int 1; String "two";
                    Obj [ ("deep", List [ Bool false; Float 3.25 ]) ] ] ) ]
        in
        Alcotest.(check bool) "roundtrip" true
          (Json_check.parse (to_string doc) = Json_check.of_report doc));
    Alcotest.test_case "float serialisation is lossless" `Quick (fun () ->
        List.iter
          (fun f ->
            match Json_check.parse (Report.Json.to_string (Report.Json.Float f)) with
            | Json_check.Num g ->
              Alcotest.(check bool)
                (Printf.sprintf "%h survives" f)
                true (f = g)
            | _ -> Alcotest.fail "expected a number")
          [ 0.1; 1.0 /. 3.0; 1e300; 5e-324; -0.0; 1234567.89 ]);
  ]

let suite = [ ("report", unit_tests); ("report.json", json_tests) ]
