(* Report rendering helpers. *)

let unit_tests =
  [
    Alcotest.test_case "gmean of equal values" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 2.0 (Report.gmean [ 2.0; 2.0; 2.0 ]));
    Alcotest.test_case "gmean of 1 and 4 is 2" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 2.0 (Report.gmean [ 1.0; 4.0 ]));
    Alcotest.test_case "gmean ignores non-positive values" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 3.0 (Report.gmean [ 3.0; 0.0; -5.0 ]));
    Alcotest.test_case "gmean of empty list is 0" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gmean" 0.0 (Report.gmean []));
    Alcotest.test_case "table aligns columns" `Quick (fun () ->
        let t =
          Report.Table.create ~title:"T"
            [ ("name", Report.Table.Left); ("value", Report.Table.Right) ]
        in
        Report.Table.add_row t [ "a"; "1" ];
        Report.Table.add_row t [ "long-name"; "12345" ];
        let s = Report.Table.render t in
        let lines = String.split_on_char '\n' s in
        (* The two data lines must have equal width. *)
        let data = List.filteri (fun i _ -> i = 4 || i = 5) lines in
        match data with
        | [ l1; l2 ] ->
          Alcotest.(check int) "width" (String.length l2) (String.length l1)
        | _ -> Alcotest.fail "unexpected table layout");
    Alcotest.test_case "table rejects ragged rows" `Quick (fun () ->
        let t = Report.Table.create ~title:"T" [ ("a", Report.Table.Left) ] in
        match Report.Table.add_row t [ "x"; "y" ] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "percent and float cells" `Quick (fun () ->
        Alcotest.(check string) "pct" "13.7%" (Report.Table.cell_percent 0.137);
        Alcotest.(check string) "float" "0.82"
          (Report.Table.cell_float ~decimals:2 0.821));
    Alcotest.test_case "chart renders every series and label" `Quick (fun () ->
        let c =
          Report.Chart.create ~title:"C" ~x_labels:[ "a"; "b"; "c" ] ~height:5 ()
        in
        Report.Chart.add_series c ~name:"up" [ 1.0; 2.0; 3.0 ];
        Report.Chart.add_series c ~name:"down" [ 3.0; 2.5; 1.0 ];
        let s = Report.Chart.render c in
        let contains needle =
          let nh = String.length s and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "legend up" true (contains "up");
        Alcotest.(check bool) "legend down" true (contains "down");
        Alcotest.(check bool) "x label" true (contains "b"));
    Alcotest.test_case "chart with no data does not crash" `Quick (fun () ->
        let c = Report.Chart.create ~title:"C" ~x_labels:[ "a" ] ~height:4 () in
        Alcotest.(check bool) "renders" true
          (String.length (Report.Chart.render c) > 0));
    Alcotest.test_case "chart rejects wrong point counts" `Quick (fun () ->
        let c = Report.Chart.create ~title:"C" ~x_labels:[ "a"; "b" ] ~height:4 () in
        match Report.Chart.add_series c ~name:"s" [ 1.0 ] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
  ]

let json_tests =
  [
    Alcotest.test_case "control characters are escaped" `Quick (fun () ->
        Alcotest.(check string) "escapes"
          "\"a\\u0001b\\nc\\\"d\\\\e\\tf\""
          (Report.Json.to_string (Report.Json.String "a\001b\nc\"d\\e\tf")));
    Alcotest.test_case "non-finite floats serialise as null" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check string) "null" "null"
              (Report.Json.to_string (Report.Json.Float f)))
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    Alcotest.test_case "serialised documents round-trip" `Quick (fun () ->
        let open Report.Json in
        let doc =
          Obj
            [ ("null", Null); ("yes", Bool true); ("no", Bool false);
              ("int", Int (-123456789)); ("zero", Int 0);
              ("float", Float 0.1); ("tiny", Float 1.5e-9);
              ("neg", Float (-2.5)); ("inf", Float Float.infinity);
              ("ctrl", String "line1\nline2\ttab\001unit\127del");
              ("quote", String {|she said "hi\bye"|});
              ("empty_list", List []); ("empty_obj", Obj []);
              ( "nested",
                List
                  [ Int 1; String "two";
                    Obj [ ("deep", List [ Bool false; Float 3.25 ]) ] ] ) ]
        in
        Alcotest.(check bool) "roundtrip" true
          (Json_check.parse (to_string doc) = Json_check.of_report doc));
    Alcotest.test_case "float serialisation is lossless" `Quick (fun () ->
        List.iter
          (fun f ->
            match Json_check.parse (Report.Json.to_string (Report.Json.Float f)) with
            | Json_check.Num g ->
              Alcotest.(check bool)
                (Printf.sprintf "%h survives" f)
                true (f = g)
            | _ -> Alcotest.fail "expected a number")
          [ 0.1; 1.0 /. 3.0; 1e300; 5e-324; -0.0; 1234567.89 ]);
  ]

(* ------------------------------------------------------------------ *)
(* The built-in parser (Report.Json.of_string), cross-validated against
   the test suite's independent reader. *)

let parser_tests =
  [
    Alcotest.test_case "of_string inverts to_string" `Quick (fun () ->
        let open Report.Json in
        let doc =
          Obj
            [ ("null", Null); ("yes", Bool true); ("int", Int (-42));
              ("float", Float 0.25);
              ("str", String "a\nb\t\"c\"\\d\001");
              ("list", List [ Int 1; Float 2.5; String "x"; Null ]);
              ("obj", Obj [ ("k", List []) ]) ]
        in
        match of_string (to_string doc) with
        | Ok doc' -> Alcotest.(check bool) "structural equality" true (doc = doc')
        | Error msg -> Alcotest.failf "parse failed: %s" msg);
    Alcotest.test_case "integral literals stay Int, others Float" `Quick
      (fun () ->
        let open Report.Json in
        Alcotest.(check bool) "int" true (of_string "7" = Ok (Int 7));
        Alcotest.(check bool) "negative int" true
          (of_string "-12" = Ok (Int (-12)));
        Alcotest.(check bool) "float" true (of_string "7.5" = Ok (Float 7.5));
        Alcotest.(check bool) "exponent is float" true
          (of_string "1e3" = Ok (Float 1000.0)));
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick (fun () ->
        match Report.Json.of_string {|"\u00e9\u0041"|} with
        | Ok (Report.Json.String s) ->
          Alcotest.(check string) "utf8 bytes" "\xc3\xa9A" s
        | Ok _ -> Alcotest.fail "expected a string"
        | Error msg -> Alcotest.failf "parse failed: %s" msg);
    Alcotest.test_case "malformed input is rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Report.Json.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted malformed %S" s)
          [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated";
            "{\"a\" 1}"; "nan" ]);
    Alcotest.test_case "member and to_float_opt navigate documents" `Quick
      (fun () ->
        let open Report.Json in
        let doc = Obj [ ("a", Int 3); ("b", Float 2.5); ("c", Null) ] in
        Alcotest.(check (option (float 0.0))) "int member" (Some 3.0)
          (Option.bind (member "a" doc) to_float_opt);
        Alcotest.(check (option (float 0.0))) "float member" (Some 2.5)
          (Option.bind (member "b" doc) to_float_opt);
        Alcotest.(check bool) "null member" true
          (Option.bind (member "c" doc) to_float_opt = None);
        Alcotest.(check bool) "missing member" true (member "zzz" doc = None));
    Alcotest.test_case "agrees with the independent reader on a corpus"
      `Quick (fun () ->
        List.iter
          (fun s ->
            match Report.Json.of_string s with
            | Error msg -> Alcotest.failf "%S failed: %s" s msg
            | Ok doc ->
              Alcotest.(check bool) s true
                (Json_check.parse s = Json_check.of_report doc))
          [ "[]"; "{}"; "[[[]]]"; "{\"a\":{\"b\":{\"c\":[1,2,3]}}}";
            "[1.5,-2,true,false,null,\"s\"]"; "  {  \"k\" : 1 }  " ]);
  ]

let suite =
  [ ("report", unit_tests); ("report.json", json_tests);
    ("report.parse", parser_tests) ]
