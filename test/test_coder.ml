(* The coder abstraction: every backend round-trips arbitrary regions
   byte-identically with sane work accounting, refuses truncated streams,
   and the context coder actually earns its keep on the workload suite. *)

open QCheck

let qcheck = QCheck_alcotest.to_alcotest

let backends =
  [ ("huffman", `Split_stream); ("mtf", `Split_stream_mtf); ("lzss", `Lzss);
    ("context", `Context) ]

(* Region bodies must not contain the sentinel: it terminates decoding, so
   an interior one would legitimately truncate the stream. *)
let gen_body_instr =
  Gen.map
    (function Instr.Sentinel -> Instr.Nop | i -> i)
    Test_instr.gen_instr

let print_regions rs =
  String.concat " | "
    (List.map
       (fun r -> String.concat "; " (List.map Instr.to_string r))
       rs)

let arb_regions =
  QCheck.make ~print:print_regions
    Gen.(list_size (int_range 1 6) (list_size (int_range 0 40) gen_body_instr))

let arb_fat_region =
  QCheck.make ~print:(fun r -> print_regions [ r ])
    Gen.(list_size (int_range 24 60) gen_body_instr)

let decode_all codes blob offsets regions =
  Array.mapi
    (fun i _ ->
      let bit_end =
        if i + 1 < Array.length offsets then Some offsets.(i + 1) else None
      in
      Compress.decode_region codes blob ~bit_offset:offsets.(i) ?bit_end ())
    regions

let round_trip_test (name, backend) =
  Test.make
    ~name:(Printf.sprintf "%s: regions round-trip with sane work" name)
    ~count:60 arb_regions (fun rs ->
      let regions = Array.of_list rs in
      let codes = Compress.build_codes ~backend regions in
      assume (Compress.backend_of codes = backend);
      let blob, offsets = Compress.encode_regions codes regions in
      let decoded = decode_all codes blob offsets regions in
      Array.for_all2
        (fun (instrs, work) original ->
          List.equal Instr.equal instrs original
          && work.Compress.bits > 0
          && work.Compress.steps >= 0)
        decoded regions)

(* Truncating a stream mid-region must raise (the sentinel is gone and the
   bits run out), never hang or silently return the full region. *)
let truncation_test (name, backend) =
  Test.make
    ~name:(Printf.sprintf "%s: truncated streams raise" name)
    ~count:40 arb_fat_region (fun r ->
      let regions = [| r |] in
      let codes = Compress.build_codes ~backend regions in
      let blob, offsets = Compress.encode_regions codes regions in
      let cut = String.sub blob 0 (String.length blob / 2) in
      match
        Compress.decode_region codes cut ~bit_offset:offsets.(0)
          ~bit_end:(8 * String.length cut) ()
      with
      | exception Bitio.Corrupt_stream _ -> true
      | instrs, _ -> not (List.equal Instr.equal instrs r))

(* Corrupting a byte may still decode to *something* (Huffman codes are
   complete), but it must terminate: either a raise or some stream. *)
let corruption_test (name, backend) =
  Test.make
    ~name:(Printf.sprintf "%s: corrupt streams terminate" name)
    ~count:40 arb_fat_region (fun r ->
      let regions = [| r |] in
      let codes = Compress.build_codes ~backend regions in
      let blob, offsets = Compress.encode_regions codes regions in
      let b = Bytes.of_string blob in
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x5A));
      match
        Compress.decode_region codes (Bytes.to_string b)
          ~bit_offset:offsets.(0) ~bit_end:(8 * Bytes.length b) ()
      with
      | exception Bitio.Corrupt_stream _ -> true
      | _ -> true)

let property_tests =
  List.concat_map
    (fun b -> [ round_trip_test b; truncation_test b; corruption_test b ])
    backends
  |> List.map (qcheck ~long:false)

(* --- the workload suite under the context coder --------------------- *)

let fuel = 500_000_000

let squash_with coder wl =
  let p, _ = Squeeze.run (Workload.compile wl) in
  let profile, _ = Profile.collect ~fuel p ~input:(Workload.profiling_input wl) in
  let options =
    { Squash.default_options with Squash.theta = 1.0; Squash.coder = coder }
  in
  Squash.run ~options p profile

let total_bits (r : Squash.result) =
  let sq = r.Squash.squashed in
  let streams =
    Array.map (fun img -> img.Rewrite.stream) sq.Rewrite.images
  in
  Compress.compressed_bits sq.Rewrite.codes streams
  + Compress.table_bits sq.Rewrite.codes

let workload_tests =
  [
    Alcotest.test_case "context coder is byte-identical and lint-clean on \
                        every workload"
      `Slow
      (fun () ->
        List.iter
          (fun wl ->
            let r = squash_with `Context wl in
            let sq = r.Squash.squashed in
            Alcotest.(check string)
              (wl.Workload.name ^ " coder") "context"
              (Compress.coder_name sq.Rewrite.codes);
            Array.iteri
              (fun rid (img : Rewrite.region_image) ->
                let offsets = sq.Rewrite.blob_offsets in
                let bit_end =
                  if rid + 1 < Array.length offsets then Some offsets.(rid + 1)
                  else None
                in
                let instrs, work =
                  Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
                    ~bit_offset:offsets.(rid) ?bit_end ()
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s region %d stream" wl.Workload.name rid)
                  true
                  (List.equal Instr.equal instrs img.Rewrite.stream);
                Alcotest.(check bool)
                  (Printf.sprintf "%s region %d work" wl.Workload.name rid)
                  true
                  (work.Compress.bits > 0 && work.Compress.steps >= 0))
              sq.Rewrite.images;
            let errs = Verify.errors (Verify.run sq) in
            Alcotest.(check int)
              (wl.Workload.name ^ " lint errors")
              0 (List.length errs))
          Workloads.all);
    Alcotest.test_case "context coder beats huffman on a majority of workloads"
      `Slow
      (fun () ->
        let wins, total =
          List.fold_left
            (fun (wins, total) wl ->
              let ctx = total_bits (squash_with `Context wl) in
              let huf = total_bits (squash_with `Split_stream wl) in
              ((if ctx < huf then wins + 1 else wins), total + 1))
            (0, 0) Workloads.all
        in
        Alcotest.(check bool)
          (Printf.sprintf "context wins %d/%d" wins total)
          true
          (2 * wins > total));
  ]

let suite = [ ("coder", property_tests @ workload_tests) ]
