(* Runtime edge cases: stub-area exhaustion, per-region statistics,
   decompressor cycle accounting. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let fib_src =
  {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { putint(fib(14)); return 0; }
|}

let squash ?(options = Squash.default_options) p =
  let profile, _ = Profile.collect p ~input:"" in
  Squash.run ~options p profile

let unit_tests =
  [
    Alcotest.test_case "stub-area exhaustion is a clean trap" `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        (* Tiny K splits fib across regions; one stub slot cannot hold the
           recursion's concurrent call sites. *)
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64;
                max_stubs = 1 }
            p
        in
        match Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" with
        | exception Vm.Trap { reason; _ } ->
          Alcotest.(check string) "reason" "createstub: stub area exhausted" reason
        | outcome, stats ->
          (* If one slot sufficed the run must still be correct. *)
          Alcotest.(check int) "exit" 121 outcome.Vm.exit_code;
          Alcotest.(check bool) "reused" true (stats.Runtime.stub_reuses > 0));
    Alcotest.test_case "per-region decompression counts sum to the total" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:{ Squash.default_options with Squash.theta = 1.0; k_bytes = 128 }
            p
        in
        let _, stats = Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        Alcotest.(check int) "sum" stats.Runtime.decompressions
          (Array.fold_left ( + ) 0 stats.Runtime.per_region));
    Alcotest.test_case "decompression cycles scale with the cost model" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let cheap = { Cost.default with Cost.decomp_per_bit = 1; decomp_invoke = 10 } in
        let dear = { Cost.default with Cost.decomp_per_bit = 40; decomp_invoke = 5000 } in
        let o1, s1 = Runtime.run ~cost:cheap ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        let o2, s2 = Runtime.run ~cost:dear ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        Alcotest.(check int) "same behaviour" o1.Vm.exit_code o2.Vm.exit_code;
        Alcotest.(check int) "same work" s1.Runtime.bits_decoded s2.Runtime.bits_decoded;
        Alcotest.(check bool) "dearer model, more cycles" true
          (o2.Vm.cycles > o1.Vm.cycles));
    Alcotest.test_case "words materialised match image sizes" `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        let _, stats = Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:"" in
        let expected =
          Array.to_list r.Squash.squashed.Rewrite.images
          |> List.mapi (fun i (img : Rewrite.region_image) ->
                 stats.Runtime.per_region.(i) * img.Rewrite.buffer_words)
          |> List.fold_left ( + ) 0
        in
        Alcotest.(check int) "words" expected stats.Runtime.words_materialised);
    Alcotest.test_case "a squashed program can run many inputs in sequence"
      `Quick (fun () ->
        (* Fresh launches must not leak state between runs. *)
        let src =
          {|
int main() {
  int c;
  c = getc();
  if (c < 0) { putint(-1); return 0; }
  putint(c * 2);
  return 0;
}
|}
        in
        let p, _ = Squeeze.run (compile src) in
        let profile, _ = Profile.collect p ~input:"\005" in
        let r =
          Squash.run ~options:{ Squash.default_options with Squash.theta = 1.0 } p
            profile
        in
        List.iter
          (fun (input, expected) ->
            let outcome, _ = Runtime.run r.Squash.squashed ~input in
            Alcotest.(check string) "output" expected outcome.Vm.output)
          [ ("\001", "2\n"); ("\010", "20\n"); ("", "-1\n") ]);
    Alcotest.test_case
      "resident region is not re-inflated on stub return" `Quick (fun () ->
        (* The recursion returns through restore stubs into a region that is
           still materialised: each such re-entry must be a cache hit, not a
           fresh decompression, and behaviour must be unchanged. *)
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64 }
            p
        in
        let baseline = Vm.run (Vm.of_image (Layout.emit p) ~input:"") in
        let outcome, stats =
          Runtime.run ~fuel:50_000_000 r.Squash.squashed ~input:""
        in
        Alcotest.(check string) "output" baseline.Vm.output outcome.Vm.output;
        Alcotest.(check int) "exit" baseline.Vm.exit_code outcome.Vm.exit_code;
        Alcotest.(check bool) "stub returns hit the resident region" true
          (stats.Runtime.cache_hits > 0);
        (* Every decompressor entry is either a hit or a decompression. *)
        Alcotest.(check bool) "decompressions dropped" true
          (stats.Runtime.decompressions
          < stats.Runtime.decompressions + stats.Runtime.cache_hits));
    Alcotest.test_case "extra slots reduce decompressions, not behaviour"
      `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64 }
            p
        in
        let o1, s1 =
          Runtime.run ~fuel:50_000_000 ~slots:1 r.Squash.squashed ~input:""
        in
        let o4, s4 =
          Runtime.run ~fuel:50_000_000 ~slots:4 r.Squash.squashed ~input:""
        in
        Alcotest.(check string) "output" o1.Vm.output o4.Vm.output;
        Alcotest.(check int) "exit" o1.Vm.exit_code o4.Vm.exit_code;
        Alcotest.(check bool) "fewer or equal decompressions" true
          (s4.Runtime.decompressions <= s1.Runtime.decompressions);
        (* Same decompressor entries either way, just a different split. *)
        Alcotest.(check int) "entries conserved"
          (s1.Runtime.decompressions + s1.Runtime.cache_hits)
          (s4.Runtime.decompressions + s4.Runtime.cache_hits));
    Alcotest.test_case "stub creation goes through the cost model" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64 }
            p
        in
        let cheap = { Cost.default with Cost.stub_invoke = 1 } in
        let dear = { Cost.default with Cost.stub_invoke = 4000 } in
        let o1, s1 =
          Runtime.run ~cost:cheap ~fuel:50_000_000 r.Squash.squashed ~input:""
        in
        let o2, s2 =
          Runtime.run ~cost:dear ~fuel:50_000_000 r.Squash.squashed ~input:""
        in
        Alcotest.(check int) "same behaviour" o1.Vm.exit_code o2.Vm.exit_code;
        Alcotest.(check bool) "stubs were created" true
          (s1.Runtime.stub_creates > 0);
        Alcotest.(check int) "same stub traffic"
          (s1.Runtime.stub_creates + s1.Runtime.stub_reuses)
          (s2.Runtime.stub_creates + s2.Runtime.stub_reuses);
        Alcotest.(check bool) "dearer stubs, more cycles" true
          (o2.Vm.cycles > o1.Vm.cycles));
    Alcotest.test_case "cache-hit re-entry goes through the cost model" `Quick
      (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash
            ~options:
              { Squash.default_options with Squash.theta = 1.0; k_bytes = 64 }
            p
        in
        let cheap = { Cost.default with Cost.decomp_cache_hit = 1 } in
        let dear = { Cost.default with Cost.decomp_cache_hit = 4000 } in
        let o1, s1 =
          Runtime.run ~cost:cheap ~fuel:50_000_000 r.Squash.squashed ~input:""
        in
        let o2, _ =
          Runtime.run ~cost:dear ~fuel:50_000_000 r.Squash.squashed ~input:""
        in
        Alcotest.(check int) "same behaviour" o1.Vm.exit_code o2.Vm.exit_code;
        Alcotest.(check bool) "hits occurred" true (s1.Runtime.cache_hits > 0);
        Alcotest.(check bool) "dearer hits, more cycles" true
          (o2.Vm.cycles > o1.Vm.cycles));
    Alcotest.test_case "launch validates the slot count" `Quick (fun () ->
        let p, _ = Squeeze.run (compile fib_src) in
        let r =
          squash ~options:{ Squash.default_options with Squash.theta = 1.0 } p
        in
        (match Runtime.run ~slots:0 r.Squash.squashed ~input:"" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "slots=0 must be rejected");
        match Runtime.run ~slots:10_000_000 r.Squash.squashed ~input:"" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "an overflowing slot count must be rejected");
  ]

(* Byte-identical behaviour for every slot count, across the real workload
   suite at two thresholds, under the default coder.  This is the
   functional-correctness half of the Fig. 7-style slots sweep. *)
let cache_correctness_tests =
  [
    Alcotest.test_case "every slot count is byte-identical on all workloads"
      `Slow (fun () ->
        let fuel = 2_000_000_000 in
        List.iter
          (fun (wl : Workload.t) ->
            let p, _ = Squeeze.run (Workload.compile wl) in
            let profile, _ =
              Profile.collect ~fuel p ~input:(Workload.profiling_input wl)
            in
            List.iter
              (fun theta ->
                let r =
                  Squash.run
                    ~options:{ Squash.default_options with Squash.theta } p
                    profile
                in
                let input = Workload.timing_input wl in
                let ref_outcome, ref_stats =
                  Runtime.run ~fuel ~slots:1 r.Squash.squashed ~input
                in
                List.iter
                  (fun slots ->
                    let outcome, stats =
                      Runtime.run ~fuel ~slots r.Squash.squashed ~input
                    in
                    let label fmt =
                      Printf.ksprintf
                        (fun s ->
                          Printf.sprintf "%s θ=%g slots=%d: %s"
                            wl.Workload.name theta slots s)
                        fmt
                    in
                    Alcotest.(check string)
                      (label "output") ref_outcome.Vm.output outcome.Vm.output;
                    Alcotest.(check int)
                      (label "exit") ref_outcome.Vm.exit_code
                      outcome.Vm.exit_code;
                    Alcotest.(check int)
                      (label "icount") ref_outcome.Vm.icount outcome.Vm.icount;
                    Alcotest.(check bool)
                      (label "no more decompressions than slots=1") true
                      (stats.Runtime.decompressions
                      <= ref_stats.Runtime.decompressions);
                    Alcotest.(check int)
                      (label "decompressor entries conserved")
                      (ref_stats.Runtime.decompressions
                      + ref_stats.Runtime.cache_hits)
                      (stats.Runtime.decompressions + stats.Runtime.cache_hits))
                  [ 2; 3; 5; 8 ])
              [ 1e-3; 0.01 ])
          Workloads.all);
  ]

let suite = [ ("runtime", unit_tests @ cache_correctness_tests) ]
