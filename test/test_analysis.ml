(* The dataflow layer: the generic solver, the liveness client, and the
   constant/address propagation behind indirect-target resolution. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let func p name =
  match Prog.find_func p name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

(* A diamond with a loop around it: enough shape to exercise join points
   and iteration in both directions. *)
let diamond_src =
  {|
.entry main
func main {
.0:
  li t0, 10
  li t1, 0
.1:
  if eq t0 goto .4 else .2
.2:
  add t1, t0, t1
  goto .3
.3:
  sub t0, t0, t0
  goto .1
.4:
  add t1, zero, a0
  sys exit
  halt
}
|}

let check_liveness_equal name (f : Prog.Func.t) =
  let expect = Cfg.liveness f in
  let got = Dataflow.Liveness.solve f in
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "%s.%s live_in[%d]" name f.Prog.Func.name i)
        want got.Cfg.live_in.(i))
    expect.Cfg.live_in;
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "%s.%s live_out[%d]" name f.Prog.Func.name i)
        want got.Cfg.live_out.(i))
    expect.Cfg.live_out

(* Reachability as a trivial forward client: a one-bit lattice with an
   identity transfer.  Exercises the solver's edge propagation
   independently of the liveness client. *)
module Reach = Dataflow.Make (struct
  type t = bool

  let bottom = false
  let join = ( || )
  let equal = Bool.equal
end)

let check_reachable_equal name (f : Prog.Func.t) =
  let expect = Cfg.reachable f in
  let got =
    Reach.solve ~direction:Dataflow.Forward ~init:true
      ~transfer:(fun _ fact -> fact)
      f
  in
  Array.iteri
    (fun i want ->
      Alcotest.(check bool)
        (Printf.sprintf "%s.%s reachable[%d]" name f.Prog.Func.name i)
        want got.Reach.before.(i))
    expect

let solver_tests =
  [
    Alcotest.test_case "liveness client matches Cfg.liveness (diamond)" `Quick
      (fun () ->
        let p = parse diamond_src in
        List.iter (check_liveness_equal "diamond") p.Prog.funcs);
    Alcotest.test_case "forward reachability client matches Cfg.reachable"
      `Quick (fun () ->
        let p = parse diamond_src in
        List.iter (check_reachable_equal "diamond") p.Prog.funcs);
    Alcotest.test_case "liveness client matches Cfg.liveness (workloads)"
      `Slow (fun () ->
        List.iter
          (fun wl ->
            let p = fst (Squeeze.run (Workload.compile wl)) in
            List.iter (check_liveness_equal wl.Workload.name) p.Prog.funcs)
          Workloads.all);
  ]

(* --- constant/address propagation ---------------------------------- *)

let exact_src =
  {|
.entry main
func main {
.0:
  la t0, &target
  icall (t0)
.1:
  sys exit
  halt
}
func target {
.0:
  ret
}
|}

let join_src =
  {|
.entry main
func main {
.0:
  if eq a0 goto .1 else .2
.1:
  la t0, &f
  goto .3
.2:
  la t0, &g
  goto .3
.3:
  icall (t0)
.4:
  sys exit
  halt
}
func f {
.0:
  ret
}
func g {
.0:
  ret
}
|}

let table_src =
  {|
.entry main
func main {
.0:
  la t0, &table0
  ldw t0, 0(t0)
  ijump (t0)
.1:
  li t1, 1
  goto .3
.2:
  li t1, 2
  goto .3
.3:
  sys exit
  halt
  table 0: .1 .2
}
|}

let resolution =
  Alcotest.testable
    (fun ppf -> function
      | `Exact g -> Format.fprintf ppf "exact %s" g
      | `Fallback gs ->
        Format.fprintf ppf "fallback [%s]" (String.concat "; " gs))
    ( = )

let consts_tests =
  [
    Alcotest.test_case "a materialised address resolves the icall exactly"
      `Quick (fun () ->
        let p = parse exact_src in
        let c = Consts.analyze (func p "main") in
        (match Consts.call_target c 0 with
        | `Exact g -> Alcotest.(check string) "target" "target" g
        | `Unknown -> Alcotest.fail "expected an exact resolution");
        match Consts.indirect_call_sites p with
        | [ s ] ->
          Alcotest.(check string) "caller" "main" s.Consts.caller;
          Alcotest.(check int) "block" 0 s.Consts.block;
          Alcotest.(check resolution)
            "resolution" (`Exact "target") s.Consts.resolution
        | sites ->
          Alcotest.failf "expected one indirect site, got %d"
            (List.length sites));
    Alcotest.test_case "a two-path join falls back to the address-taken set"
      `Quick (fun () ->
        let p = parse join_src in
        let c = Consts.analyze (func p "main") in
        (match Consts.call_target c 3 with
        | `Unknown -> ()
        | `Exact g -> Alcotest.failf "join should not resolve, got %s" g);
        Alcotest.(check (list string))
          "address-taken" [ "f"; "g" ] (Consts.address_taken p);
        match Consts.indirect_call_sites p with
        | [ s ] ->
          Alcotest.(check resolution)
            "resolution"
            (`Fallback [ "f"; "g" ])
            s.Consts.resolution
        | sites ->
          Alcotest.failf "expected one indirect site, got %d"
            (List.length sites));
    Alcotest.test_case "a table load proves the dispatch table" `Quick
      (fun () ->
        let p = parse table_src in
        let c = Consts.analyze (func p "main") in
        Alcotest.(check (option int)) "table" (Some 0) (Consts.jump_table c 0));
    Alcotest.test_case "resolve_tables annotates the site and shrinks preds"
      `Quick (fun () ->
        let p = parse table_src in
        let before = Cfg.preds (func p "main") in
        (* The unannotated ijump makes every block a successor of block 0,
           including block 0 itself. *)
        Alcotest.(check bool)
          "dispatch over-approximated before" true
          (List.mem 0 before.(0));
        let p', sites = Consts.resolve_tables p in
        Alcotest.(check (list (pair string int)))
          "resolved sites" [ ("main", 0) ] sites;
        let f' = func p' "main" in
        (match f'.Prog.Func.blocks.(0).Prog.Block.term with
        | Prog.Jump_indirect { table = Some 0; _ } -> ()
        | _ -> Alcotest.fail "site was not annotated with table 0");
        let after = Cfg.preds f' in
        Alcotest.(check (list int)) "entry block has no preds" [] after.(0);
        Alcotest.(check (list int)) "case .1 preds" [ 0 ] after.(1);
        Alcotest.(check (list int)) "case .2 preds" [ 0 ] after.(2);
        Alcotest.(check (list int)) "join preds" [ 1; 2 ] after.(3));
    Alcotest.test_case "annotate_callgraph records resolved edges" `Quick
      (fun () ->
        let p = parse join_src in
        let cg = Cfg.Callgraph.of_prog p in
        Alcotest.(check (list string))
          "no edges before" []
          (Cfg.Callgraph.indirect_callees cg "main");
        Consts.annotate_callgraph p cg;
        Alcotest.(check (list string))
          "candidate edges" [ "f"; "g" ]
          (Cfg.Callgraph.indirect_callees cg "main"));
  ]

let suite =
  [
    ("analysis: dataflow solver", solver_tests);
    ("analysis: consts", consts_tests);
  ]
