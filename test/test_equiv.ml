(* The symbolic equivalence prover: the Equiv evaluator's algebra, clean
   proofs of pristine images, and a seeded corruption corpus — mutated
   stream displacements, stub words and rebias offsets must each be
   caught (no false negatives), while pristine images prove clean at
   every slot count (no false positives). *)

let qcheck = QCheck_alcotest.to_alcotest

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

(* Same shape as the verifier fixture: helper is hot and buffer-safe,
   coldy and main's .3/.4 never execute, so at θ = 0 they compress.  The
   region ends up with an intra-region call (coldy), an unchanged
   external call (helper) and an external goto — one representative of
   each rebias class. *)
let src =
  {|
.entry main
func main {
.0:
  li t0, 5
  li t1, 7
  call helper
.1:
  if eq a0 goto .3 else .2
.2:
  sys exit
  halt
.3:
  call coldy
.4:
  call coldz
.5:
  goto .2
}
func helper {
.0:
  add t0, t1, a0
  ret
}
func coldz {
.0:
  if eq a0 goto .2 else .1
.1:
  add t0, t1, a0
  goto .3
.2:
  add t0, t1, t1
  goto .3
.3:
  add a0, t0, t1
  ret
}
func coldy {
.0:
  li t0, 9
  li t1, 4
  call helper
.1:
  add a0, t0, t0
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  goto .2
.2:
  add t0, t1, a0
  ret
}
|}

let make () =
  let p = parse src in
  let prof, _ = Profile.collect p ~input:"" in
  let r = Squash.run p prof in
  let sq = r.Squash.squashed in
  if Array.length sq.Rewrite.images = 0 then
    Alcotest.fail "fixture produced no compressed region";
  sq

let check_clean ?fault ~slots sq =
  let r = Prove.run ~slots ?fault sq in
  if r.Prove.failures <> [] then
    Alcotest.failf "pristine image did not prove:\n%s" (Prove.render r);
  r

(* --- the evaluator's algebra ----------------------------------------- *)

let no_oracle =
  { Equiv.func_addr = (fun _ -> None); table_addr = (fun _ -> None) }

let evaluator_tests =
  [
    Alcotest.test_case "straight-line execution is structural" `Quick (fun () ->
        let st = Equiv.init_state () in
        let step i =
          match Equiv.step st i with
          | Ok () -> ()
          | Error m -> Alcotest.fail m
        in
        step (Instr.Lda { ra = 1; rb = 2; disp = 8 });
        step (Instr.Opr { op = Instr.Add; ra = 1; rb = Instr.Reg 3; rc = 4 });
        step (Instr.Mem { op = Instr.Stw; ra = 4; rb = Reg.sp; disp = -4 });
        let expect_r4 =
          Equiv.Exp
            ( Instr.Add,
              Equiv.Exp (Instr.Add, Equiv.Init 2, Equiv.Num 8),
              Equiv.Init 3 )
        in
        if not (Equiv.equal_value no_oracle (Equiv.reg st 4) expect_r4) then
          Alcotest.failf "r4 = %s"
            (Format.asprintf "%a" Equiv.pp_value (Equiv.reg st 4));
        match Equiv.effects st with
        | [ Equiv.Store (Instr.Stw, _, v) ] ->
          if not (Equiv.equal_value no_oracle v expect_r4) then
            Alcotest.fail "stored value does not match r4"
        | effs -> Alcotest.failf "expected 1 store, got %d" (List.length effs));
    Alcotest.test_case "control transfers are rejected mid-block" `Quick
      (fun () ->
        let st = Equiv.init_state () in
        match Equiv.step st (Instr.Br { ra = Reg.zero; disp = 3 }) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "a br stepped as straight-line code");
    Alcotest.test_case "the oracle bridges materialised code addresses" `Quick
      (fun () ->
        (* Original side: an abstract &f plus arithmetic; rewritten side:
           the same computation over the materialised ldah/lda pair. *)
        let addr = 0x1_0040 in
        let oracle =
          {
            Equiv.func_addr = (fun g -> if g = "f" then Some addr else None);
            table_addr = (fun _ -> None);
          }
        in
        let b =
          {
            Prog.Block.items =
              [
                Prog.Load_addr (5, Prog.Func_addr "f");
                Prog.Instr (Instr.Lda { ra = 5; rb = 5; disp = 12 });
              ];
            term = Prog.Return { rb = 26 };
          }
        in
        let orig, _ =
          match Equiv.run_block ~fname:"g" b with
          | Ok r -> r
          | Error m -> Alcotest.fail m
        in
        let rew = Equiv.init_state () in
        let hi, lo = Easm.split_addr addr in
        List.iter
          (fun i ->
            match Equiv.step rew i with
            | Ok () -> ()
            | Error m -> Alcotest.fail m)
          [
            Instr.Ldah { ra = 5; rb = Reg.zero; disp = hi };
            Instr.Lda { ra = 5; rb = 5; disp = lo };
            Instr.Lda { ra = 5; rb = 5; disp = 12 };
          ];
        (match Equiv.compare_states oracle ~orig ~rew with
        | Ok () -> ()
        | Error m -> Alcotest.failf "states diverge: %s" m);
        (* Without the oracle the sides must NOT unify. *)
        match Equiv.compare_states no_oracle ~orig ~rew with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "abstract &f unified with a bare number");
    Alcotest.test_case "diverging stores are caught" `Quick (fun () ->
        let a = Equiv.init_state () and b = Equiv.init_state () in
        let store st v =
          match
            Equiv.step st (Instr.Lda { ra = 1; rb = Reg.zero; disp = v })
          with
          | Ok () -> (
            match
              Equiv.step st
                (Instr.Mem { op = Instr.Stw; ra = 1; rb = Reg.sp; disp = 0 })
            with
            | Ok () -> ()
            | Error m -> Alcotest.fail m)
          | Error m -> Alcotest.fail m
        in
        store a 1;
        store b 2;
        match Equiv.compare_states no_oracle ~orig:a ~rew:b with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "different store values compared equal");
  ]

(* --- pristine proofs -------------------------------------------------- *)

let pristine_tests =
  [
    Alcotest.test_case "the fixture proves clean at slots 1 and 4" `Quick
      (fun () ->
        let sq = make () in
        let r1 = check_clean ~slots:1 sq in
        let r4 = check_clean ~slots:4 sq in
        Alcotest.(check int) "every block proved" r1.Prove.blocks r1.Prove.proved;
        Alcotest.(check int)
          "4 slots prove 4x the blocks" (4 * r1.Prove.blocks) r4.Prove.blocks;
        Alcotest.(check int)
          "every entry stub discharged"
          (List.length sq.Rewrite.stub_addrs)
          r1.Prove.stubs);
    Alcotest.test_case "the prove pass accepts a clean pipeline run" `Quick
      (fun () ->
        let p = parse src in
        let prof, _ = Profile.collect p ~input:"" in
        let r = Squash.run ~lint:true ~prove:true p prof in
        Alcotest.(check bool)
          "image built" true
          (Array.length r.Squash.squashed.Rewrite.images > 0));
  ]

(* --- corruption corpus ------------------------------------------------ *)

(* Every stream position carrying a pc-relative displacement, with the
   displacement values legal for its opcode (values already coded
   somewhere keep the mutant encodable by the image's own model). *)
let branch_sites sq =
  let sites = ref [] in
  Array.iter
    (fun (img : Rewrite.region_image) ->
      List.iteri
        (fun i ins ->
          match Instr.branch_displacement ins with
          | Some d -> sites := (img.Rewrite.rid, i, ins, d) :: !sites
          | None -> ())
        img.Rewrite.stream)
    sq.Rewrite.images;
  List.rev !sites

let reencode sq streams =
  let blob, blob_offsets = Compress.encode_regions sq.Rewrite.codes streams in
  { sq with Rewrite.blob; blob_offsets }

let displacement_mutants =
  let sq = make () in
  let sites = branch_sites sq in
  let disps =
    List.sort_uniq compare (List.map (fun (_, _, _, d) -> d) sites)
  in
  if List.length sites < 2 || List.length disps < 2 then
    Alcotest.fail "fixture has too few branch sites to mutate";
  QCheck.Test.make ~count:40
    ~name:"a mutated stream displacement is always caught"
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let rid, i, ins, d = List.nth sites (a mod List.length sites) in
      let nd = List.nth disps (b mod List.length disps) in
      QCheck.assume (nd <> d);
      let streams =
        Array.map
          (fun (img : Rewrite.region_image) -> Array.of_list img.Rewrite.stream)
          sq.Rewrite.images
      in
      streams.(rid).(i) <- Instr.with_branch_displacement ins nd;
      let sq' = reencode sq (Array.map Array.to_list streams) in
      let r = Prove.run ~slots:4 sq' in
      r.Prove.failures <> [])

(* Entry stubs in the 2-word form, for in-place text patching. *)
let two_word_stubs sq =
  let word_at addr =
    sq.Rewrite.text.Easm.words.((addr - sq.Rewrite.text.Easm.base) / 4)
  in
  List.filter
    (fun (_, addr) ->
      match Instr.decode (word_at addr) with
      | Ok (Instr.Bsr _) -> true
      | Ok _ | Error _ -> false)
    sq.Rewrite.stub_addrs

let patched sq addr w k =
  let idx = (addr - sq.Rewrite.text.Easm.base) / 4 in
  let words = sq.Rewrite.text.Easm.words in
  let saved = words.(idx) in
  words.(idx) <- w;
  let r = k () in
  words.(idx) <- saved;
  r

let stub_tag_mutants =
  let sq = make () in
  let stubs = two_word_stubs sq in
  if stubs = [] then Alcotest.fail "fixture has no 2-word entry stub";
  QCheck.Test.make ~count:40 ~name:"a skewed stub tag is always caught"
    QCheck.(pair small_nat (int_range (-8) 8))
    (fun (a, delta) ->
      QCheck.assume (delta <> 0);
      let _, addr = List.nth stubs (a mod List.length stubs) in
      let tag_addr = addr + 4 in
      let idx = (tag_addr - sq.Rewrite.text.Easm.base) / 4 in
      let tag = sq.Rewrite.text.Easm.words.(idx) in
      patched sq tag_addr (tag + delta) (fun () ->
          let r = Prove.run ~slots:1 sq in
          r.Prove.failures <> []))

let stub_target_mutants =
  let sq = make () in
  let stubs = two_word_stubs sq in
  if stubs = [] then Alcotest.fail "fixture has no 2-word entry stub";
  QCheck.Test.make ~count:40 ~name:"a retargeted stub bsr is always caught"
    QCheck.(pair small_nat (int_range (-4) 4))
    (fun (a, delta) ->
      QCheck.assume (delta <> 0);
      let _, addr = List.nth stubs (a mod List.length stubs) in
      let idx = (addr - sq.Rewrite.text.Easm.base) / 4 in
      let w =
        match Instr.decode sq.Rewrite.text.Easm.words.(idx) with
        | Ok (Instr.Bsr { ra; disp }) ->
          Instr.encode (Instr.Bsr { ra; disp = disp + delta })
        | Ok _ | Error _ -> Alcotest.fail "stub lost its bsr"
      in
      patched sq addr w (fun () ->
          let r = Prove.run ~slots:1 sq in
          r.Prove.failures <> []))

let rebias_fault_mutants =
  let sq = make () in
  QCheck.Test.make ~count:20
    ~name:"a skewed slot-rebias delta is always caught above slot 0"
    QCheck.(int_range (-16) 16)
    (fun k ->
      QCheck.assume (k <> 0);
      (* Slot 0 is unaffected by the fault, so it must still prove; any
         higher slot re-aims every external transfer wrongly. *)
      let r = Prove.run ~slots:4 ~fault:(Prove.Rebias_delta k) sq in
      r.Prove.failures <> []
      && List.for_all (fun f -> f.Prove.slot > 0) r.Prove.failures)

let corruption_tests =
  [
    qcheck displacement_mutants;
    qcheck stub_tag_mutants;
    qcheck stub_target_mutants;
    qcheck rebias_fault_mutants;
  ]

(* --- real images prove clean ------------------------------------------ *)

let prove_clean name theta ~coder ~slots =
  match Workloads.find name with
  | None -> Alcotest.failf "no workload %s" name
  | Some w ->
    let p = fst (Squeeze.run (Workload.compile w)) in
    let prof, _ = Profile.collect p ~input:(Workload.profiling_input w) in
    let options = { Squash.default_options with theta; coder } in
    let r = Squash.run ~options p prof in
    let pr = Prove.run ~slots r.Squash.squashed in
    if pr.Prove.failures <> [] then
      Alcotest.failf "%s θ=%g (%s):\n%s" name theta
        (Compress.coder_name r.Squash.squashed.Rewrite.codes)
        (Prove.render pr)

let workload_tests =
  [
    Alcotest.test_case "gsm proves clean at θ=0 and θ=0.01 (huffman)" `Slow
      (fun () ->
        prove_clean "gsm" 0.0 ~coder:`Split_stream ~slots:4;
        prove_clean "gsm" 0.01 ~coder:`Split_stream ~slots:4);
    Alcotest.test_case "adpcm proves clean under the context coder" `Slow
      (fun () -> prove_clean "adpcm" 0.01 ~coder:`Context ~slots:4);
  ]

let suite =
  [
    ("equiv: evaluator", evaluator_tests);
    ("equiv: pristine proofs", pristine_tests);
    ("equiv: corruption corpus", corruption_tests);
    ("equiv: workload proofs", workload_tests);
  ]
