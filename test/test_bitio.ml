(* Bit-level reader/writer. *)

let qcheck = QCheck_alcotest.to_alcotest

let arb_chunks =
  (* A list of (width, value) pairs with value fitting in width bits. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 200)
        ( int_range 1 24 >>= fun w ->
          map (fun v -> (w, v land ((1 lsl w) - 1))) (int_bound max_int) ))
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (w, v) -> Printf.sprintf "%d:%d" w v) l))
    gen

let unit_tests =
  [
    Alcotest.test_case "bits are MSB-first within bytes" `Quick (fun () ->
        let w = Bitio.Writer.create () in
        Bitio.Writer.put w ~bits:8 0b1010_0001;
        Alcotest.(check string) "bytes" "\xA1" (Bitio.Writer.contents w));
    Alcotest.test_case "padding is zeros" `Quick (fun () ->
        let w = Bitio.Writer.create () in
        Bitio.Writer.put w ~bits:3 0b101;
        Alcotest.(check string) "bytes" "\xA0" (Bitio.Writer.contents w);
        Alcotest.(check int) "length" 3 (Bitio.Writer.length_bits w));
    Alcotest.test_case "reading past the end fails" `Quick (fun () ->
        let r = Bitio.Reader.of_string "" in
        match Bitio.Reader.next_bit r with
        | exception Bitio.Corrupt_stream _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "peek zero-pads past the end; advance does not" `Quick
      (fun () ->
        let r = Bitio.Reader.of_string "\xFF" in
        Alcotest.(check int) "peek 12" 0b1111_1111_0000 (Bitio.Reader.peek r ~bits:12);
        Bitio.Reader.advance r ~bits:8;
        Alcotest.(check int) "peek 4 at end" 0 (Bitio.Reader.peek r ~bits:4);
        match Bitio.Reader.advance r ~bits:1 with
        | exception Bitio.Corrupt_stream _ -> ()
        | () -> Alcotest.fail "expected Corrupt_stream");
    Alcotest.test_case "peek is aligned with next_bit at odd offsets" `Quick
      (fun () ->
        let r = Bitio.Reader.of_string "\xB7\x1D" in
        ignore (Bitio.Reader.next_bit r);
        ignore (Bitio.Reader.next_bit r);
        ignore (Bitio.Reader.next_bit r);
        (* Bits 3.. of 0b1011_0111_0001_1101: 1_0111_0001_1 = 0x2E3. *)
        Alcotest.(check int) "peek 10" 0b1_0111_0001_1 (Bitio.Reader.peek r ~bits:10);
        Alcotest.(check int) "pos unmoved" 3 (Bitio.Reader.pos r));
    Alcotest.test_case "seek and pos" `Quick (fun () ->
        let r = Bitio.Reader.of_string "\xFF\x00" in
        Bitio.Reader.seek r 8;
        Alcotest.(check int) "bit" 0 (Bitio.Reader.next_bit r);
        Alcotest.(check int) "pos" 9 (Bitio.Reader.pos r);
        Alcotest.(check int) "remaining" 7 (Bitio.Reader.remaining_bits r));
  ]

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"reader inverts writer" ~count:500 arb_chunks
         (fun chunks ->
           let w = Bitio.Writer.create () in
           List.iter (fun (bits, v) -> Bitio.Writer.put w ~bits v) chunks;
           let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
           List.for_all (fun (bits, v) -> Bitio.Reader.read r ~bits = v) chunks));
    qcheck
      (QCheck.Test.make ~name:"length_bits counts every bit" ~count:500 arb_chunks
         (fun chunks ->
           let w = Bitio.Writer.create () in
           List.iter (fun (bits, v) -> Bitio.Writer.put w ~bits v) chunks;
           Bitio.Writer.length_bits w
           = List.fold_left (fun acc (bits, _) -> acc + bits) 0 chunks));
    qcheck
      (QCheck.Test.make ~name:"peek+advance agrees with read" ~count:500
         arb_chunks (fun chunks ->
           let w = Bitio.Writer.create () in
           List.iter (fun (bits, v) -> Bitio.Writer.put w ~bits v) chunks;
           let data = Bitio.Writer.contents w in
           let rp = Bitio.Reader.of_string data in
           let rr = Bitio.Reader.of_string data in
           List.for_all
             (fun (bits, _) ->
               let p = Bitio.Reader.peek rp ~bits in
               Bitio.Reader.advance rp ~bits;
               p = Bitio.Reader.read rr ~bits
               && Bitio.Reader.pos rp = Bitio.Reader.pos rr)
             chunks));
  ]

let suite = [ ("bitio", unit_tests @ prop_tests) ]
