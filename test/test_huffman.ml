(* Huffman construction, canonical codes, and move-to-front. *)

let qcheck = QCheck_alcotest.to_alcotest

let arb_freqs =
  (* Distinct symbols with positive counts. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60) (pair (int_bound 1000) (int_range 1 500))
      |> map (fun l ->
             let tbl = Hashtbl.create 16 in
             List.iter
               (fun (s, c) ->
                 Hashtbl.replace tbl s (c + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
               l;
             Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []
             |> List.sort compare))
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (s, c) -> Printf.sprintf "%d*%d" s c) l))
    gen

let arb_symbol_seq =
  (* A non-empty sequence over a small alphabet, plus the frequency table. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 500) (int_bound 40) |> map (fun syms -> syms))
  in
  QCheck.make ~print:(fun l -> String.concat "," (List.map string_of_int l)) gen

let freqs_of_seq syms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    syms;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl [] |> List.sort compare

let unit_tests =
  [
    Alcotest.test_case "single symbol gets a 1-bit code" `Quick (fun () ->
        Alcotest.(check (list (pair int int)))
          "lengths"
          [ (7, 1) ]
          (Huffman.code_lengths [ (7, 100) ]));
    Alcotest.test_case "empty input" `Quick (fun () ->
        Alcotest.(check (list (pair int int))) "lengths" [] (Huffman.code_lengths []));
    Alcotest.test_case "paper's canonical example" `Quick (fun () ->
        (* N[2] = 3, N[3] = 1, N[5] = 4: codewords 00 01 10 110 11100..11111. *)
        let lengths =
          [ (0, 2); (1, 2); (2, 2); (3, 3); (4, 5); (5, 5); (6, 5); (7, 5) ]
        in
        let c = Canonical.of_lengths lengths in
        let expect =
          [
            (0, (0b00, 2)); (1, (0b01, 2)); (2, (0b10, 2)); (3, (0b110, 3));
            (4, (0b11100, 5)); (5, (0b11101, 5)); (6, (0b11110, 5)); (7, (0b11111, 5));
          ]
        in
        List.iter
          (fun (s, (code, len)) ->
            match Canonical.codeword c s with
            | Some (code', len') ->
              Alcotest.(check (pair int int))
                (Printf.sprintf "symbol %d" s)
                (code, len) (code', len')
            | None -> Alcotest.failf "symbol %d missing" s)
          expect);
    Alcotest.test_case "decode counts loop iterations = codeword length" `Quick
      (fun () ->
        let c = Canonical.of_freqs [ (1, 10); (2, 3); (3, 1); (4, 1) ] in
        let w = Bitio.Writer.create () in
        List.iter (Canonical.encode c w) [ 1; 4; 2; 3 ];
        let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
        List.iter
          (fun s ->
            let s', bits, probes = Canonical.decode c r in
            Alcotest.(check int) "symbol" s s';
            let _, len = Option.get (Canonical.codeword c s) in
            Alcotest.(check int) "bits" len bits;
            Alcotest.(check bool) "probes >= 1" true (probes >= 1))
          [ 1; 4; 2; 3 ]);
    Alcotest.test_case "corrupt stream fails instead of looping" `Quick (fun () ->
        (* A code where "11" is no codeword prefix extension: alphabet {a} only. *)
        let c = Canonical.of_freqs [ (0, 5) ] in
        let r = Bitio.Reader.of_string "\xFF" in
        match Canonical.decode c r with
        | exception Bitio.Corrupt_stream _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "over-full length multiset is rejected" `Quick (fun () ->
        (* Three 1-bit codes cannot coexist: Kraft sum 3/2 > 1. *)
        match Canonical.of_lengths [ (0, 1); (1, 1); (2, 1) ] with
        | exception Canonical.Invalid_code _ -> ()
        | _ -> Alcotest.fail "expected Invalid_code");
    Alcotest.test_case "out-of-range length is rejected" `Quick (fun () ->
        match Canonical.of_lengths [ (0, 0) ] with
        | exception Canonical.Invalid_code _ -> ()
        | _ -> Alcotest.fail "expected Invalid_code");
    Alcotest.test_case "under-full single-symbol code is legal" `Quick (fun () ->
        let c = Canonical.of_lengths [ (9, 1) ] in
        Alcotest.(check (option (pair int int)))
          "codeword" (Some (0, 1)) (Canonical.codeword c 9));
    Alcotest.test_case "truncated stream terminates with Corrupt_stream" `Quick
      (fun () ->
        let c = Canonical.of_freqs [ (0, 1); (1, 1); (2, 1); (3, 1) ] in
        let w = Bitio.Writer.create () in
        List.iter (Canonical.encode c w) [ 0; 1; 2; 3 ];
        let full = Bitio.Writer.contents w in
        let r = Bitio.Reader.of_string (String.sub full 0 0) in
        (match Canonical.decode c r with
        | exception Bitio.Corrupt_stream _ -> ()
        | _ -> Alcotest.fail "expected Corrupt_stream on empty stream");
        (* Drain a full byte's worth of symbols then hit the end. *)
        let r = Bitio.Reader.of_string (String.sub full 0 1) in
        let rec drain () =
          match Canonical.decode c r with
          | _ -> drain ()
          | exception Bitio.Corrupt_stream _ -> ()
        in
        drain ());
    Alcotest.test_case "mtf known example" `Quick (fun () ->
        let alphabet = [ 0; 1; 2; 3 ] in
        let ranks = Mtf.encode ~alphabet [ 2; 2; 0; 1; 1 ] in
        Alcotest.(check (list int)) "ranks" [ 2; 0; 1; 2; 0 ] ranks);
  ]

let kraft_ok lengths =
  (* sum 2^-l <= 1, scaled to avoid floats: use 64-bit with max len <= 60. *)
  let maxlen = List.fold_left (fun acc (_, l) -> max acc l) 0 lengths in
  let total =
    List.fold_left (fun acc (_, l) -> acc + (1 lsl (maxlen - l))) 0 lengths
  in
  total <= 1 lsl maxlen

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"lengths satisfy Kraft" ~count:300 arb_freqs
         (fun freqs -> kraft_ok (Huffman.code_lengths freqs)));
    qcheck
      (QCheck.Test.make ~name:"total bits within entropy+1 per symbol" ~count:300
         arb_freqs (fun freqs ->
           let n = List.fold_left (fun acc (_, c) -> acc + c) 0 freqs in
           let bits = Huffman.total_encoded_bits freqs in
           let h = Huffman.entropy_bits freqs in
           float_of_int bits >= (h *. float_of_int n) -. 1e-6
           && float_of_int bits <= ((h +. 1.0) *. float_of_int n) +. 1e-6));
    qcheck
      (QCheck.Test.make ~name:"canonical encode/decode roundtrip" ~count:300
         arb_symbol_seq (fun syms ->
           let c = Canonical.of_freqs (freqs_of_seq syms) in
           let w = Bitio.Writer.create () in
           List.iter (Canonical.encode c w) syms;
           let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
           List.for_all
             (fun s ->
               let s', _, _ = Canonical.decode c r in
               s' = s)
             syms));
    qcheck
      (QCheck.Test.make ~name:"canonical codewords are prefix-free" ~count:200
         arb_freqs (fun freqs ->
           let c = Canonical.of_freqs freqs in
           let words =
             List.filter_map
               (fun (s, _) -> Canonical.codeword c s)
               freqs
           in
           let prefix (c1, l1) (c2, l2) =
             l1 <= l2 && c2 lsr (l2 - l1) = c1
           in
           List.for_all
             (fun w1 ->
               List.for_all (fun w2 -> w1 = w2 || not (prefix w1 w2)) words)
             words));
    qcheck
      (QCheck.Test.make ~name:"mtf roundtrip" ~count:300 arb_symbol_seq
         (fun syms ->
           let alphabet = List.sort_uniq compare syms in
           Mtf.decode ~alphabet (Mtf.encode ~alphabet syms) = syms));
    qcheck
      (QCheck.Test.make ~name:"decode consumes exactly the encoded bits" ~count:200
         arb_symbol_seq (fun syms ->
           let c = Canonical.of_freqs (freqs_of_seq syms) in
           let w = Bitio.Writer.create () in
           List.iter (Canonical.encode c w) syms;
           let total = Bitio.Writer.length_bits w in
           let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
           let consumed =
             List.fold_left
               (fun acc _ ->
                 let _, bits, _ = Canonical.decode c r in
                 acc + bits)
               0 syms
           in
           consumed = total));
    qcheck
      (QCheck.Test.make
         ~name:"table decode == bit-loop decode (symbols, positions, work)"
         ~count:300 arb_symbol_seq (fun syms ->
           let c = Canonical.of_freqs (freqs_of_seq syms) in
           let w = Bitio.Writer.create () in
           List.iter (Canonical.encode c w) syms;
           let data = Bitio.Writer.contents w in
           let rt = Bitio.Reader.of_string data in
           let rb = Bitio.Reader.of_string data in
           List.for_all
             (fun _ ->
               let st, bt, probes = Canonical.decode c rt in
               let sb, bb = Canonical.decode_bitloop c rb in
               st = sb && bt = bb
               && Bitio.Reader.pos rt = Bitio.Reader.pos rb
               && probes >= 1
               && probes <= 1 + bt)
             syms));
    qcheck
      (QCheck.Test.make ~name:"Kraft-violating length multisets are rejected"
         ~count:300 arb_freqs (fun freqs ->
           (* Take a valid assignment and shorten one codeword of length >= 2:
              the result always over-fills the Kraft budget. *)
           let lengths = Huffman.code_lengths freqs in
           match
             List.partition (fun (_, l) -> l >= 2) lengths
           with
           | [], _ -> QCheck.assume_fail ()
           | (s, l) :: rest, short ->
             let bad = ((s, l - 1) :: rest) @ short in
             (match Canonical.of_lengths bad with
             | exception Canonical.Invalid_code _ -> true
             | _ -> false)));
  ]

let suite = [ ("huffman", unit_tests @ prop_tests) ]
