(* The whole-image static verifier: a pristine image lints clean, and each
   seeded corruption trips exactly its diagnostic class. *)

let parse src =
  match Asm.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

(* helper is hot and buffer-safe; coldy and main's .3/.4 never execute
   (the branch tests a0 = 12), so at θ = 0 they form the compressed
   region.  coldy's call to helper is the §6.1 unchanged call the
   verifier must prove safe. *)
let src =
  {|
.entry main
func main {
.0:
  li t0, 5
  li t1, 7
  call helper
.1:
  if eq a0 goto .3 else .2
.2:
  sys exit
  halt
.3:
  call coldy
.4:
  goto .2
}
func helper {
.0:
  add t0, t1, a0
  ret
}
func coldy {
.0:
  li t0, 9
  li t1, 4
  call helper
.1:
  add a0, t0, t0
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  add t0, t1, t1
  goto .2
.2:
  add t0, t1, a0
  ret
}
|}

let make () =
  let p = parse src in
  let prof, _ = Profile.collect p ~input:"" in
  let r = Squash.run p prof in
  let sq = r.Squash.squashed in
  if Array.length sq.Rewrite.images = 0 then
    Alcotest.fail "fixture produced no compressed region";
  if sq.Rewrite.stub_addrs = [] then
    Alcotest.fail "fixture produced no entry stub";
  sq

let kinds diags =
  List.sort_uniq compare (List.map (fun d -> d.Verify.kind) diags)

let check_only sq kind =
  let diags = Verify.run sq in
  if diags = [] then
    Alcotest.failf "corruption went undetected (wanted %s)"
      (Verify.kind_name kind);
  match kinds diags with
  | [ k ] when k = kind -> ()
  | ks ->
    Alcotest.failf "wanted only %s, got [%s]:\n%s" (Verify.kind_name kind)
      (String.concat "; " (List.map Verify.kind_name ks))
      (Verify.render diags)

(* The text image is a plain word array: corruptions patch it the way a
   linker bug or a bit flip would. *)
let word_at sq addr =
  sq.Rewrite.text.Easm.words.((addr - sq.Rewrite.text.Easm.base) / 4)

let patch_word sq addr w =
  sq.Rewrite.text.Easm.words.((addr - sq.Rewrite.text.Easm.base) / 4) <- w

(* A stub in the 2-word form: [bsr rf, decomp.rf ; tag].  The fixture is
   small enough that every block has a dead register, but don't rely on
   the list order. *)
let two_word_stub sq =
  let is_bsr (_, addr) =
    match Instr.decode (word_at sq addr) with
    | Ok (Instr.Bsr _) -> true
    | Ok _ | Error _ -> false
  in
  match List.find_opt is_bsr sq.Rewrite.stub_addrs with
  | Some s -> s
  | None -> Alcotest.fail "fixture has no 2-word entry stub"

let unit_tests =
  [
    Alcotest.test_case "the pristine image lints clean" `Quick (fun () ->
        let sq = make () in
        let diags = Verify.run sq in
        if diags <> [] then
          Alcotest.failf "unexpected diagnostics:\n%s" (Verify.render diags));
    Alcotest.test_case "a tag naming a bogus region trips bad-stub" `Quick
      (fun () ->
        let sq = make () in
        let _, addr = two_word_stub sq in
        patch_word sq (addr + 4) (Array.length sq.Rewrite.images lsl 16);
        check_only sq Verify.Bad_stub);
    Alcotest.test_case "a wrong tag offset trips bad-stub" `Quick (fun () ->
        let sq = make () in
        let _, addr = two_word_stub sq in
        patch_word sq (addr + 4) (word_at sq (addr + 4) + 1);
        check_only sq Verify.Bad_stub);
    Alcotest.test_case
      "a transfer into a de-registered entry trips dangling-transfer" `Quick
      (fun () ->
        let sq = make () in
        (* Forget every entry point: the region's interior swallows its
           entries and each surviving transfer into it turns dangling. *)
        let entries = sq.Rewrite.regions.Regions.entries in
        let keys = Hashtbl.fold (fun k () acc -> k :: acc) entries [] in
        List.iter (Hashtbl.remove entries) keys;
        check_only sq Verify.Dangling_transfer);
    Alcotest.test_case "a stub through a reserved register trips live-stub-reg"
      `Quick (fun () ->
        let sq = make () in
        let _, addr = two_word_stub sq in
        (* Re-link the stub through sp: the decompressor target still
           matches, but sp is never an acceptable return-address
           register. *)
        let disp = (Rewrite.decomp_entry sq Reg.sp - (addr + 4)) / 4 in
        patch_word sq addr (Instr.encode (Instr.Bsr { ra = Reg.sp; disp }));
        check_only sq Verify.Live_stub_reg);
    Alcotest.test_case
      "an unchanged call to a no-longer-safe callee trips unsafe-call" `Quick
      (fun () ->
        let sq = make () in
        (* Pretend helper's body was compressed after the fact: the plain
           bsr the rewrite left behind is now a §6.1 violation. *)
        let rid = sq.Rewrite.images.(0).Rewrite.rid in
        Hashtbl.replace sq.Rewrite.regions.Regions.region_of ("helper", 0) rid;
        Hashtbl.replace sq.Rewrite.regions.Regions.entries ("helper", 0) ();
        check_only sq Verify.Unsafe_call);
  ]

(* --- real images stay clean ----------------------------------------- *)

let lint_clean name theta =
  match Workloads.find name with
  | None -> Alcotest.failf "no workload %s" name
  | Some w ->
    let p = fst (Squeeze.run (Workload.compile w)) in
    let prof, _ = Profile.collect p ~input:(Workload.profiling_input w) in
    let options = { Squash.default_options with theta } in
    let r = Squash.run ~options p prof in
    let diags = Verify.run r.Squash.squashed in
    if diags <> [] then
      Alcotest.failf "%s θ=%g:\n%s" name theta (Verify.render diags)

let workload_tests =
  [
    Alcotest.test_case "rasta lints clean at θ=0 and θ=0.01" `Slow (fun () ->
        lint_clean "rasta" 0.0;
        lint_clean "rasta" 0.01);
    Alcotest.test_case "gsm lints clean at θ=0 and θ=0.01" `Slow (fun () ->
        lint_clean "gsm" 0.0;
        lint_clean "gsm" 0.01);
    Alcotest.test_case "the lint pass accepts a clean pipeline run" `Quick
      (fun () ->
        let p = parse src in
        let prof, _ = Profile.collect p ~input:"" in
        let r = Squash.run ~lint:true p prof in
        Alcotest.(check bool)
          "image built" true
          (Array.length r.Squash.squashed.Rewrite.images > 0));
  ]

let suite =
  [
    ("verify: seeded corruption", unit_tests);
    ("verify: workload images", workload_tests);
  ]
