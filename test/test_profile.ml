(* Profile collection and serialisation. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let looping =
  {|
int hot(int n) { return n * 2 + 1; }
int cold_path(int n) { putint(n); return n; }
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 50; i = i + 1) acc = acc + hot(i);
  if (acc < 0) cold_path(acc);
  return acc & 255;
}
|}

let unit_tests =
  [
    Alcotest.test_case "frequencies reflect execution counts" `Quick (fun () ->
        let p = compile looping in
        let prof, outcome = Profile.collect p ~input:"" in
        Alcotest.(check int) "hot entry runs 50x" 50 (Profile.freq prof "hot" 0);
        Alcotest.(check int) "cold_path never runs" 0 (Profile.freq prof "cold_path" 0);
        Alcotest.(check int) "main entry runs once" 1 (Profile.freq prof "main" 0);
        Alcotest.(check int) "total = dynamic instructions" outcome.Vm.icount
          (Profile.total_weight prof));
    Alcotest.test_case "weights sum block contributions" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        (* hot has one block (plus epilogue blocks); its total weight must be
           at least 50 * (block size). *)
        Alcotest.(check bool) "hot weight > freq" true
          (Profile.weight prof "hot" 0 > Profile.freq prof "hot" 0));
    Alcotest.test_case "serialisation round-trips" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        match Profile.of_string (Profile.to_string prof) with
        | Error e -> Alcotest.fail e
        | Ok prof2 ->
          Alcotest.(check int) "total" (Profile.total_weight prof)
            (Profile.total_weight prof2);
          Alcotest.(check int) "hot freq" (Profile.freq prof "hot" 0)
            (Profile.freq prof2 "hot" 0);
          Alcotest.(check int) "main weight" (Profile.weight prof "main" 0)
            (Profile.weight prof2 "main" 0));
    Alcotest.test_case "of_string rejects garbage" `Quick (fun () ->
        match Profile.of_string "nonsense here extra words more" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "merge sums profiles" `Quick (fun () ->
        let p = compile looping in
        let prof1, _ = Profile.collect p ~input:"" in
        let prof2, _ = Profile.collect p ~input:"" in
        let m = Profile.merge prof1 prof2 in
        Alcotest.(check int) "freq doubles" (2 * Profile.freq prof1 "hot" 0)
          (Profile.freq m "hot" 0);
        Alcotest.(check int) "total doubles" (2 * Profile.total_weight prof1)
          (Profile.total_weight m));
    Alcotest.test_case "empty profile reads as all-zero" `Quick (fun () ->
        Alcotest.(check int) "freq" 0 (Profile.freq Profile.empty "anything" 3);
        Alcotest.(check int) "total" 0 (Profile.total_weight Profile.empty));
    Alcotest.test_case "different inputs give different profiles" `Quick (fun () ->
        let src =
          {|
int main() {
  int c; int n;
  n = 0;
  while (1) {
    c = getc();
    if (c < 0) break;
    n = n + 1;
  }
  return n;
}
|}
        in
        let p = compile src in
        let prof_small, _ = Profile.collect p ~input:"ab" in
        let prof_large, _ = Profile.collect p ~input:(String.make 100 'x') in
        Alcotest.(check bool) "larger input, larger total" true
          (Profile.total_weight prof_large > Profile.total_weight prof_small));
  ]

(* ------------------------------------------------------------------ *)
(* Serialisation: a qcheck round-trip over arbitrary well-formed profile
   texts, plus the malformed- and truncated-input error cases. *)

let qcheck = QCheck_alcotest.to_alcotest

(* A profile text is "total N" then one "<fn> <block> <freq> <weight>" line
   per entry, sorted — which is exactly what [to_string] emits, so the text
   doubles as the expected round-trip output.  Entries are deduplicated on
   (fn, block) because the table holds one entry per key. *)
let gen_profile_text =
  let open QCheck.Gen in
  let entry =
    quad
      (oneofl [ "main"; "hot"; "cold_path"; "f"; "g2" ])
      (int_range 0 12) (int_range 0 5000) (int_range 0 100_000)
  in
  let+ entries = list_size (int_range 0 30) entry in
  let entries =
    List.sort_uniq compare entries
    |> List.fold_left
         (fun (seen, acc) ((f, b, _, _) as e) ->
           if List.mem (f, b) seen then (seen, acc)
           else ((f, b) :: seen, e :: acc))
         ([], [])
    |> snd |> List.sort compare
  in
  let total = List.fold_left (fun acc (_, _, _, w) -> acc + w) 0 entries in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "total %d\n" total);
  List.iter
    (fun (f, b, fr, w) ->
      Buffer.add_string buf (Printf.sprintf "%s %d %d %d\n" f b fr w))
    entries;
  (entries, total, Buffer.contents buf)

let roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"of_string/to_string round-trip"
    (QCheck.make
       ~print:(fun (_, _, text) -> text)
       gen_profile_text)
    (fun (entries, total, text) ->
      match Profile.of_string text with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok prof ->
        Profile.total_weight prof = total
        && List.for_all
             (fun (f, b, fr, w) ->
               Profile.freq prof f b = fr && Profile.weight prof f b = w)
             entries
        && Profile.to_string prof = text)

let error_tests =
  let expect_error name text =
    Alcotest.test_case name `Quick (fun () ->
        match Profile.of_string text with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "parse of %S should fail" text)
  in
  let expect_error_at name text lineno =
    Alcotest.test_case name `Quick (fun () ->
        match Profile.of_string text with
        | Ok _ -> Alcotest.failf "parse of %S should fail" text
        | Error e ->
          let prefix = Printf.sprintf "line %d:" lineno in
          if not (String.length e >= String.length prefix
                 && String.sub e 0 (String.length prefix) = prefix)
          then Alcotest.failf "error %S should be positioned at %S" e prefix)
  in
  [
    expect_error "non-numeric total" "total x\n";
    expect_error "missing field" "main 1 2\n";
    expect_error "extra field" "main 1 2 3 4\n";
    expect_error "non-numeric block" "main b 2 3\n";
    expect_error "truncated header" "tot";
    expect_error "missing total line" "main 0 1 2\n";
    expect_error_at "negative freq" "total 2\nmain 0 -1 2\n" 2;
    expect_error_at "negative weight" "total 2\nmain 0 1 -2\n" 2;
    expect_error_at "negative total" "total -2\nmain 0 1 2\n" 1;
    expect_error_at "duplicate entry" "total 5\nmain 0 1 2\nmain 0 1 3\n" 3;
    expect_error "inconsistent total" "total 7\nmain 0 1 2\nhot 0 1 3\n";
    expect_error_at "duplicate total" "total 2\ntotal 2\nmain 0 1 2\n" 2;
    expect_error_at "bad source line" "source magic\ntotal 0\n" 1;
    expect_error_at "duplicate source" "source sampled 4 1\nsource sampled 4 1\ntotal 0\n" 2;
    expect_error_at "source after total" "total 0\nsource sampled 4 1\n" 2;
    expect_error_at "sampled period zero" "source sampled 0 1\ntotal 0\n" 1;
    Alcotest.test_case "truncated input is an error" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        let text = Profile.to_string prof in
        (* Chop the serialisation mid-entry (just after the last space):
           the final line is left with an empty last field. *)
        let cut = String.rindex text ' ' + 1 in
        match Profile.of_string (String.sub text 0 cut) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "truncated text should not parse");
  ]

(* ------------------------------------------------------------------ *)
(* Provenance: the source line round-trips, and serialisation is
   deterministic (equal profiles are byte-identical). *)

let provenance_tests =
  let parse text =
    match Profile.of_string text with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  [
    Alcotest.test_case "exact profiles omit the source line" `Quick (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect p ~input:"" in
        Alcotest.(check bool) "source is Exact" true
          (Profile.source prof = Profile.Exact);
        let text = Profile.to_string prof in
        Alcotest.(check bool) "starts with total" true
          (String.length text >= 6 && String.sub text 0 6 = "total "));
    Alcotest.test_case "sampled source round-trips" `Quick (fun () ->
        let text = "source sampled 64 9\ntotal 5\nmain 0 1 5\n" in
        let prof = parse text in
        (match Profile.source prof with
        | Profile.Sampled { period = 64; seed = 9 } -> ()
        | _ -> Alcotest.fail "expected Sampled {64; 9}");
        Alcotest.(check string) "byte round-trip" text (Profile.to_string prof));
    Alcotest.test_case "derived source round-trips" `Quick (fun () ->
        let text =
          "source derived exact |> decay 0.5 |> truncate top 4\n\
           total 5\nmain 0 1 5\n"
        in
        let prof = parse text in
        (match Profile.source prof with
        | Profile.Derived "exact |> decay 0.5 |> truncate top 4" -> ()
        | _ -> Alcotest.fail "expected Derived recipe");
        Alcotest.(check string) "byte round-trip" text (Profile.to_string prof));
    Alcotest.test_case "serialisation is order-independent" `Quick (fun () ->
        let p = compile looping in
        let a, _ = Profile.collect p ~input:"" in
        let b, _ = Profile.collect p ~input:"" in
        Alcotest.(check string) "merge a b = merge b a (bytes)"
          (Profile.to_string (Profile.merge a b))
          (Profile.to_string (Profile.merge b a)));
  ]

(* ------------------------------------------------------------------ *)
(* Sampled collection: determinism, accounting, and period-1 exactness. *)

let sampled_tests =
  [
    Alcotest.test_case "sampled collection is deterministic" `Quick (fun () ->
        let p = compile looping in
        let a, _ = Profile.collect_sampled ~period:16 ~seed:5 p ~input:"" in
        let b, _ = Profile.collect_sampled ~period:16 ~seed:5 p ~input:"" in
        Alcotest.(check string) "same seed, same bytes" (Profile.to_string a)
          (Profile.to_string b));
    Alcotest.test_case "sampled profiles record their provenance" `Quick
      (fun () ->
        let p = compile looping in
        let prof, _ = Profile.collect_sampled ~period:16 ~seed:5 p ~input:"" in
        match Profile.source prof with
        | Profile.Sampled { period = 16; seed = 5 } -> ()
        | _ -> Alcotest.fail "expected Sampled {16; 5}");
    Alcotest.test_case "period 1 reproduces the exact profile" `Quick (fun () ->
        let p = compile looping in
        let exact, _ = Profile.collect p ~input:"" in
        let sampled, _ =
          Profile.collect_sampled ~period:1 ~seed:42 p ~input:""
        in
        Alcotest.(check bool) "same entries" true
          (Profile.entries exact = Profile.entries sampled);
        Alcotest.(check int) "same total" (Profile.total_weight exact)
          (Profile.total_weight sampled));
    Alcotest.test_case "period < 1 is rejected" `Quick (fun () ->
        let p = compile looping in
        match Profile.collect_sampled ~period:0 ~seed:1 p ~input:"" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "period 0 should raise");
    Alcotest.test_case "sampler hits + skips = profiled instructions" `Quick
      (fun () ->
        let p = compile looping in
        let img = Layout.emit p in
        let vm =
          Vm.of_image ~profile:true
            ~sampler:{ Vm.period = 16; seed = 5 }
            img ~input:""
        in
        let outcome = Vm.run vm in
        Alcotest.(check int) "accounting"
          outcome.Vm.icount
          (Vm.sample_hits vm + Vm.sample_skips vm));
    Alcotest.test_case "sampled total approximates the exact total" `Quick
      (fun () ->
        let p = compile looping in
        let exact, _ = Profile.collect p ~input:"" in
        let sampled, _ =
          Profile.collect_sampled ~period:8 ~seed:3 p ~input:""
        in
        let e = float_of_int (Profile.total_weight exact) in
        let s = float_of_int (Profile.total_weight sampled) in
        let rel = abs_float (s -. e) /. e in
        if rel > 0.5 then
          Alcotest.failf "sampled total %g too far from exact %g (%.0f%%)" s e
            (100. *. rel));
  ]

let suite =
  [ ("profile", unit_tests);
    ("profile-serialisation", qcheck roundtrip_prop :: error_tests);
    ("profile-provenance", provenance_tests);
    ("profile-sampling", sampled_tests) ]
