(* The parallel experiment engine: scheduler crash isolation, the
   compute-once memo, the persistent content-addressed cache, digest-keyed
   Exp_data, and the grid determinism regression (engine at --jobs 1 /
   --jobs 4, cold vs warm cache, all byte-identical to the sequential
   path). *)

let qcheck = QCheck_alcotest.to_alcotest

let rm_rf dir =
  let rec go path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  go dir

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "results are in submission order" `Quick (fun () ->
        let thunks = List.init 20 (fun i () -> i * i) in
        let results, stats = Engine.run ~jobs:4 thunks in
        Alcotest.(check int) "submitted" 20 stats.Engine.submitted;
        Alcotest.(check int) "succeeded" 20 stats.Engine.succeeded;
        Array.iteri
          (fun i -> function
            | Ok v -> Alcotest.(check int) "value" (i * i) v
            | Error _ -> Alcotest.fail "unexpected failure")
          results);
    Alcotest.test_case "a crashing job fails alone" `Quick (fun () ->
        let thunks =
          List.init 8 (fun i () -> if i = 3 then failwith "boom" else i)
        in
        let results, stats =
          Engine.run ~jobs:4
            ~classify:(function
              | Failure m -> (`Failed, m)
              | e -> (`Exception, Printexc.to_string e))
            thunks
        in
        Alcotest.(check int) "one failure" 1 stats.Engine.failed;
        Alcotest.(check int) "seven successes" 7 stats.Engine.succeeded;
        (match results.(3) with
        | Error e ->
          Alcotest.(check string) "message" "boom" e.Engine.message;
          Alcotest.(check string) "kind" "failed"
            (Engine.kind_to_string e.Engine.kind)
        | Ok _ -> Alcotest.fail "job 3 should have failed");
        Array.iteri
          (fun i r -> if i <> 3 then Alcotest.(check bool) "ok" true (Result.is_ok r))
          results);
    Alcotest.test_case "jobs=1 runs inline and sequentially" `Quick (fun () ->
        let order = ref [] in
        let thunks = List.init 6 (fun i () -> order := i :: !order) in
        let _, stats = Engine.run ~jobs:1 thunks in
        Alcotest.(check int) "pool" 1 stats.Engine.pool;
        Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4; 5 ]
          (List.rev !order));
    Alcotest.test_case "JOBS env drives the default pool" `Quick (fun () ->
        let saved = Sys.getenv_opt "JOBS" in
        Unix.putenv "JOBS" "3";
        Alcotest.(check int) "JOBS=3" 3 (Engine.default_jobs ());
        Unix.putenv "JOBS" (Option.value ~default:"" saved));
    Alcotest.test_case "stats add up and render" `Quick (fun () ->
        let _, stats = Engine.run ~jobs:2 (List.init 5 (fun i () -> i)) in
        Alcotest.(check int) "jobs listed" 5
          (List.length stats.Engine.job_stats);
        Alcotest.(check bool) "busy >= 0" true (stats.Engine.busy_s >= 0.0);
        Alcotest.(check bool) "queue depth bounded" true
          (stats.Engine.max_queue_depth <= 5);
        let rendered = Engine.render_stats stats in
        Alcotest.(check bool) "render mentions pool" true
          (String.length rendered > 0);
        match Engine.stats_json stats with
        | Report.Json.Obj fields ->
          Alcotest.(check bool) "json has pool" true
            (List.mem_assoc "pool" fields)
        | _ -> Alcotest.fail "stats_json should be an object");
  ]

(* ------------------------------------------------------------------ *)

let memo_tests =
  [
    Alcotest.test_case "computes once under concurrency" `Quick (fun () ->
        let m : int Memo.t = Memo.create () in
        let count = Atomic.make 0 in
        let compute () =
          Memo.get m "key" (fun () ->
              Atomic.incr count;
              (* Dawdle so the other domains pile up on the same key. *)
              Unix.sleepf 0.02;
              42)
        in
        let domains = List.init 4 (fun _ -> Domain.spawn compute) in
        let results = List.map Domain.join domains in
        List.iter (fun v -> Alcotest.(check int) "value" 42 v) results;
        Alcotest.(check int) "computed once" 1 (Atomic.get count);
        Alcotest.(check int) "one settled entry" 1 (Memo.size m));
    Alcotest.test_case "a failed computation stays failed" `Quick (fun () ->
        let m : int Memo.t = Memo.create () in
        let count = ref 0 in
        let attempt () =
          match
            Memo.get m "bad" (fun () ->
                incr count;
                failwith "deterministic failure")
          with
          | _ -> Alcotest.fail "expected failure"
          | exception Failure msg ->
            Alcotest.(check string) "message" "deterministic failure" msg
        in
        attempt ();
        attempt ();
        Alcotest.(check int) "computed once" 1 !count);
    Alcotest.test_case "clear forgets" `Quick (fun () ->
        let m : int Memo.t = Memo.create () in
        let hits = ref 0 in
        let get () = Memo.get m "k" (fun () -> incr hits; 7) in
        ignore (get ());
        Memo.clear m;
        ignore (get ());
        Alcotest.(check int) "recomputed" 2 !hits);
  ]

(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    Alcotest.test_case "store/find round-trips" `Quick (fun () ->
        let c = Cache.create ~dir:(fresh_dir "pgcc-cache-rt") () in
        let key = Cache.digest [ "some"; "content" ] in
        Alcotest.(check bool) "cold miss" true
          (Cache.find c ~kind:"t" ~key = (None : (int * string) option));
        Cache.store c ~kind:"t" ~key (17, "hello");
        Alcotest.(check (option (pair int string))) "hit" (Some (17, "hello"))
          (Cache.find c ~kind:"t" ~key);
        let s = Cache.stats c in
        Alcotest.(check int) "hits" 1 s.Cache.hits;
        Alcotest.(check int) "misses" 1 s.Cache.misses;
        Alcotest.(check int) "stores" 1 s.Cache.stores);
    Alcotest.test_case "digest separates content, not concatenation" `Quick
      (fun () ->
        Alcotest.(check bool) "ab|c <> a|bc" true
          (Cache.digest [ "ab"; "c" ] <> Cache.digest [ "a"; "bc" ]);
        Alcotest.(check string) "deterministic"
          (Cache.digest [ "x" ]) (Cache.digest [ "x" ]));
    Alcotest.test_case "stale or corrupt entries read as misses" `Quick
      (fun () ->
        let dir = fresh_dir "pgcc-cache-stale" in
        let c = Cache.create ~dir () in
        let key = Cache.digest [ "k" ] in
        Cache.store c ~kind:"t" ~key 99;
        (* Overwrite every entry with an old-schema header + garbage. *)
        let vdir =
          Filename.concat dir (Printf.sprintf "v%d" Cache.schema_version)
        in
        Array.iter
          (fun f ->
            let oc = open_out_bin (Filename.concat vdir f) in
            output_string oc "pgcc-cache v0 ocaml-0.0 t\ngarbage";
            close_out oc)
          (Sys.readdir vdir);
        Alcotest.(check (option int)) "stale -> miss" None
          (Cache.find c ~kind:"t" ~key);
        Alcotest.(check bool) "error counted" true
          ((Cache.stats c).Cache.errors >= 1));
    Alcotest.test_case "memo computes on miss, reads on hit" `Quick (fun () ->
        let c = Cache.create ~dir:(fresh_dir "pgcc-cache-memo") () in
        let runs = ref 0 in
        let get () =
          Cache.memo (Some c) ~kind:"m" ~key:(Cache.digest [ "k" ]) (fun () ->
              incr runs;
              [ 1; 2; 3 ])
        in
        Alcotest.(check (list int)) "computed" [ 1; 2; 3 ] (get ());
        Alcotest.(check (list int)) "cached" [ 1; 2; 3 ] (get ());
        Alcotest.(check int) "one compute" 1 !runs;
        Alcotest.(check (list int)) "disabled cache still computes" [ 1; 2; 3 ]
          (Cache.memo None ~kind:"m" ~key:"k" (fun () -> incr runs; [ 1; 2; 3 ]));
        Alcotest.(check int) "two computes" 2 !runs);
  ]

(* ------------------------------------------------------------------ *)

let test_wl name source =
  {
    Workload.name;
    description = "engine test workload";
    source;
    profiling_input = lazy "";
    timing_input = lazy "";
    drift_input = lazy "";
  }

let exp_data_tests =
  [
    Alcotest.test_case "prepared is keyed by content, not name" `Quick
      (fun () ->
        (* Two different workloads sharing one name: the second must not be
           served the first one's prepared image (the pre-engine cache was
           keyed by name alone and did exactly that). *)
        let wl1 = test_wl "same-name" "int main() { return 3; }" in
        let wl2 =
          test_wl "same-name"
            {|
int pad(int x) { int i; for (i = 0; i < 3; i = i + 1) x = x + i; return x; }
int main() { return pad(4) & 255; }
|}
        in
        Alcotest.(check bool) "digests differ" true
          (Exp_data.workload_digest wl1 <> Exp_data.workload_digest wl2);
        let p1 = Exp_data.prepare wl1 in
        let p2 = Exp_data.prepare wl2 in
        Alcotest.(check bool) "fresh image for changed content" true
          (Prog.instr_count p1.Exp_data.squeezed
          <> Prog.instr_count p2.Exp_data.squeezed);
        Alcotest.(check int) "wl1 exits 3" 3
          p1.Exp_data.profile_outcome.Vm.exit_code);
    Alcotest.test_case "options_key covers every option field" `Quick
      (fun () ->
        let base = Squash.default_options in
        let variants =
          [ { base with Squash.theta = 0.5 };
            { base with Squash.k_bytes = 64 };
            { base with Squash.gamma = 0.5 };
            { base with Squash.pack = false };
            { base with Squash.use_buffer_safe = false };
            { base with Squash.sharp_buffer_safe = true };
            { base with Squash.unswitch = false };
            { base with Squash.decomp_words = 128 };
            { base with Squash.max_stubs = 4 };
            { base with Squash.coder = `Lzss };
            { base with Squash.regions_strategy = `Linear } ]
        in
        let keys = List.map Exp_data.options_key (base :: variants) in
        Alcotest.(check int) "all keys distinct"
          (List.length keys)
          (List.length (List.sort_uniq compare keys)));
  ]

(* ------------------------------------------------------------------ *)
(* The grid determinism regression (ISSUE 3): the full θ-grid through the
   engine at --jobs 1 and --jobs 4, cold cache and warm cache, must be
   byte-identical to the sequential Exp_data path.  Two workloads keep the
   wall clock tolerable; the θ axis is the full grid. *)

let grid_wls () =
  List.filter
    (fun (wl : Workload.t) -> List.mem wl.Workload.name [ "pgp"; "rasta" ])
    Workloads.all

let grid_cells () =
  let wls = grid_wls () in
  let size_cells =
    List.concat_map
      (fun theta ->
        List.map
          (fun wl ->
            Exp_grid.cell wl { Squash.default_options with Squash.theta })
          wls)
      Exp_data.theta_grid
  in
  let timing_cells =
    List.concat_map
      (fun theta ->
        List.map
          (fun wl ->
            Exp_grid.cell ~timing:true wl
              { Squash.default_options with Squash.theta })
          wls)
      [ 0.0; 1e-3 ]
  in
  size_cells @ timing_cells

let render_run ~jobs cells =
  Exp_data.reset ();
  let results, stats = Exp_grid.run ~jobs cells in
  Alcotest.(check int) "no cell failed" 0 stats.Engine.failed;
  Exp_grid.render_table results ^ Exp_grid.to_csv results

let determinism_tests =
  [
    Alcotest.test_case "θ-grid: jobs 1/4, cold/warm cache byte-identical"
      `Slow (fun () ->
        let saved_cache = Exp_data.current_cache () in
        let dir = fresh_dir "pgcc-grid-determinism" in
        Fun.protect
          ~finally:(fun () ->
            Exp_data.set_cache saved_cache;
            Exp_data.reset ();
            rm_rf dir)
          (fun () ->
            let cells = grid_cells () in
            (* The sequential Exp_data path: no engine pool (jobs=1 runs
               inline on the calling domain), no persistent cache. *)
            Exp_data.set_cache None;
            let sequential = render_run ~jobs:1 cells in
            (* Parallel, cold persistent cache. *)
            let cache = Cache.create ~dir () in
            Exp_data.set_cache (Some cache);
            let parallel_cold = render_run ~jobs:4 cells in
            Alcotest.(check bool) "cold run stored entries" true
              ((Cache.stats cache).Cache.stores > 0);
            (* Parallel and sequential, warm persistent cache. *)
            let parallel_warm = render_run ~jobs:4 cells in
            let sequential_warm = render_run ~jobs:1 cells in
            (* Default pool size (honours $JOBS — CI runs 1 and 4). *)
            let default_jobs = render_run ~jobs:(Engine.default_jobs ()) cells in
            Alcotest.(check string) "parallel cold = sequential" sequential
              parallel_cold;
            Alcotest.(check string) "parallel warm = sequential" sequential
              parallel_warm;
            Alcotest.(check string) "sequential warm = sequential" sequential
              sequential_warm;
            Alcotest.(check string) "default jobs = sequential" sequential
              default_jobs;
            let s = Cache.stats cache in
            Alcotest.(check bool) "warm runs hit the cache" true
              (s.Cache.hits > 0)));
    Alcotest.test_case "an injected trap fails that cell only" `Quick
      (fun () ->
        let cells =
          List.concat_map
            (fun theta ->
              List.map
                (fun wl ->
                  Exp_grid.cell wl { Squash.default_options with Squash.theta })
                (grid_wls ()))
            [ 0.0; 1e-3 ]
        in
        Exp_grid.set_injected_failure (Some ("rasta", 1e-3));
        Fun.protect
          ~finally:(fun () -> Exp_grid.set_injected_failure None)
          (fun () ->
            let results, stats = Exp_grid.run ~jobs:2 cells in
            Alcotest.(check int) "one failure" 1 stats.Engine.failed;
            Alcotest.(check int) "rest completed" (List.length cells - 1)
              stats.Engine.succeeded;
            let failed = Exp_grid.failures results in
            Alcotest.(check int) "one structured error" 1 (List.length failed);
            let e = List.hd failed in
            Alcotest.(check string) "kind" "trap"
              (Engine.kind_to_string e.Engine.kind);
            (* The failure is surfaced in the machine-readable report. *)
            let json = Report.Json.to_string (Exp_grid.to_json results) in
            let contains ~needle hay =
              let n = String.length needle and h = String.length hay in
              let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "json carries the failure" true
              (contains ~needle:"\"status\":\"failed\"" json);
            Alcotest.(check bool) "json carries successes" true
              (contains ~needle:"\"status\":\"ok\"" json)));
  ]

let suite =
  [ ("engine", engine_tests); ("engine-memo", memo_tests);
    ("engine-cache", cache_tests); ("engine-exp-data", exp_data_tests);
    ("engine-grid", determinism_tests) ]
