(* The LZSS comparator backend. *)

let qcheck = QCheck_alcotest.to_alcotest

let roundtrip s =
  let c = Lzss.compress s in
  let d, _ = Lzss.decompress c in
  d = s

let unit_tests =
  [
    Alcotest.test_case "empty input" `Quick (fun () ->
        Alcotest.(check bool) "roundtrip" true (roundtrip ""));
    Alcotest.test_case "short literals" `Quick (fun () ->
        Alcotest.(check bool) "roundtrip" true (roundtrip "ab"));
    Alcotest.test_case "repetitive input compresses" `Quick (fun () ->
        let s = String.concat "" (List.init 50 (fun _ -> "abcdefgh")) in
        let c = Lzss.compress s in
        Alcotest.(check bool) "roundtrip" true (roundtrip s);
        Alcotest.(check bool)
          (Printf.sprintf "smaller (%d -> %d)" (String.length s) (String.length c))
          true
          (String.length c < String.length s / 2));
    Alcotest.test_case "runs use self-overlapping copies" `Quick (fun () ->
        let s = String.make 1000 'x' in
        Alcotest.(check bool) "roundtrip" true (roundtrip s);
        Alcotest.(check bool) "tiny" true (String.length (Lzss.compress s) < 150));
    Alcotest.test_case "steps count the output bytes" `Quick (fun () ->
        let s = "hello hello hello hello" in
        let _, steps = Lzss.decompress (Lzss.compress s) in
        Alcotest.(check int) "steps" (String.length s) steps);
    Alcotest.test_case "corrupt stream fails cleanly" `Quick (fun () ->
        match Lzss.decompress "\xff\x00" with
        | exception Bitio.Corrupt_stream _ -> ()
        | _, _ -> ());
  ]

let arb_bytes =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      oneof
        [
          string_size (int_range 0 400);
          (* byte strings with lots of structure, the adversarial case for
             window/length boundaries *)
          ( int_range 1 8 >>= fun alpha ->
            map
              (fun l -> String.concat "" (List.map (String.make 1) l))
              (list_size (int_range 0 600)
                 (map (fun i -> Char.chr (97 + (i mod alpha))) (int_bound 1000))) );
        ])

let prop_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"lzss roundtrip" ~count:300 arb_bytes roundtrip);
    qcheck
      (QCheck.Test.make ~name:"lzss never grows pathologically" ~count:200
         arb_bytes (fun s ->
           String.length (Lzss.compress s) <= ((String.length s * 9) / 8) + 2));
  ]

let suite = [ ("lzss", unit_tests @ prop_tests) ]
