(* Observability: the trace ring buffer, the metrics registry, both
   exporters, the instrumented VM/runtime/pipeline/engine sites, and the
   zero-cost-when-off guarantee across the stock workloads. *)

let fuel = 500_000_000

(* ------------------------------------------------------------------ *)
(* Trace ring buffer. *)

let pass_ev i =
  { Obs.Event.ts = Obs.Event.Mono (float_of_int i);
    payload = Obs.Event.Pass_begin { name = Printf.sprintf "p%d" i } }

let pass_name (e : Obs.Event.t) =
  match e.Obs.Event.payload with
  | Obs.Event.Pass_begin { name } -> name
  | _ -> "?"

let ring_tests =
  [
    Alcotest.test_case "capacity must be positive" `Quick (fun () ->
        match Obs.Trace.create ~capacity:0 () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "no drops below capacity" `Quick (fun () ->
        let tr = Obs.Trace.create ~capacity:8 () in
        for i = 0 to 4 do
          Obs.Trace.emit tr (pass_ev i)
        done;
        Alcotest.(check int) "emitted" 5 (Obs.Trace.emitted tr);
        Alcotest.(check int) "dropped" 0 (Obs.Trace.dropped tr);
        Alcotest.(check int) "length" 5 (Obs.Trace.length tr);
        Alcotest.(check (list string))
          "oldest first"
          [ "p0"; "p1"; "p2"; "p3"; "p4" ]
          (List.map pass_name (Obs.Trace.events tr)));
    Alcotest.test_case "a wrapped ring keeps the newest events" `Quick
      (fun () ->
        let tr = Obs.Trace.create ~capacity:4 () in
        for i = 0 to 9 do
          Obs.Trace.emit tr (pass_ev i)
        done;
        Alcotest.(check int) "emitted" 10 (Obs.Trace.emitted tr);
        Alcotest.(check int) "dropped" 6 (Obs.Trace.dropped tr);
        Alcotest.(check int) "length" 4 (Obs.Trace.length tr);
        Alcotest.(check (list string))
          "tail retained"
          [ "p6"; "p7"; "p8"; "p9" ]
          (List.map pass_name (Obs.Trace.events tr)));
  ]

(* ------------------------------------------------------------------ *)
(* Sharded sinks: deterministic merge, per-shard accounting, tie-breaks. *)

let shard_tests =
  [
    Alcotest.test_case "merge is independent of emission interleaving" `Quick
      (fun () ->
        (* The same events land in the same shards under two different
           interleavings; the export must be byte-identical. *)
        let ev_for i =
          { Obs.Event.ts = Obs.Event.Mono (float_of_int (100 + i));
            payload = Obs.Event.Pass_begin { name = Printf.sprintf "p%d" i } }
        in
        let shard_of i = i mod 3 in
        let tr1 = Obs.Trace.create ~capacity:48 ~shards:3 () in
        for i = 0 to 11 do
          Obs.Trace.emit_into tr1 ~shard:(shard_of i) (ev_for i)
        done;
        let tr2 = Obs.Trace.create ~capacity:48 ~shards:3 () in
        (* Shard-major order: all of shard 0 first, then 1, then 2. *)
        List.iter
          (fun s ->
            for i = 0 to 11 do
              if shard_of i = s then
                Obs.Trace.emit_into tr2 ~shard:s (ev_for i)
            done)
          [ 2; 0; 1 ];
        Alcotest.(check string)
          "jsonl identical"
          (Obs.Trace.to_jsonl tr1)
          (Obs.Trace.to_jsonl tr2);
        Alcotest.(check string)
          "chrome identical"
          (Report.Json.to_string (Obs.Trace.to_chrome tr1))
          (Report.Json.to_string (Obs.Trace.to_chrome tr2));
        Alcotest.(check (list string))
          "merged order is clock order"
          (List.init 12 (Printf.sprintf "p%d"))
          (List.map pass_name (Obs.Trace.events tr1)));
    Alcotest.test_case "per-shard drop accounting" `Quick (fun () ->
        (* Total capacity 8 over 2 shards = 4 each.  Six events into shard
           0 drop two there; three into shard 1 drop none. *)
        let tr = Obs.Trace.create ~capacity:8 ~shards:2 () in
        for i = 0 to 5 do
          Obs.Trace.emit_into tr ~shard:0 (pass_ev i)
        done;
        for i = 10 to 12 do
          Obs.Trace.emit_into tr ~shard:1 (pass_ev i)
        done;
        Alcotest.(check (list (pair int int)))
          "per-shard (emitted, dropped)"
          [ (6, 2); (3, 0) ]
          (Array.to_list (Obs.Trace.shard_stats tr));
        Alcotest.(check int) "total emitted" 9 (Obs.Trace.emitted tr);
        Alcotest.(check int) "total dropped" 2 (Obs.Trace.dropped tr);
        Alcotest.(check int) "total length" 7 (Obs.Trace.length tr);
        (* The oldest two of shard 0 are gone; survivors still merge in
           clock order. *)
        Alcotest.(check (list string))
          "survivors in clock order"
          [ "p2"; "p3"; "p4"; "p5"; "p10"; "p11"; "p12" ]
          (List.map pass_name (Obs.Trace.events tr)));
    Alcotest.test_case "clock ties break by shard id then sequence" `Quick
      (fun () ->
        let at_five name =
          { Obs.Event.ts = Obs.Event.Mono 5.0;
            payload = Obs.Event.Pass_begin { name } }
        in
        let tr = Obs.Trace.create ~capacity:16 ~shards:2 () in
        (* Emit into shard 1 before shard 0: shard id must win over
           arrival order. *)
        Obs.Trace.emit_into tr ~shard:1 (at_five "s1a");
        Obs.Trace.emit_into tr ~shard:1 (at_five "s1b");
        Obs.Trace.emit_into tr ~shard:0 (at_five "s0a");
        Alcotest.(check (list string))
          "shard id, then per-shard sequence"
          [ "s0a"; "s1a"; "s1b" ]
          (List.map pass_name (Obs.Trace.events tr)));
    Alcotest.test_case "both clock tracks merge host-track first" `Quick
      (fun () ->
        let tr = Obs.Trace.create ~capacity:16 ~shards:2 () in
        Obs.Trace.emit_into tr ~shard:1
          { Obs.Event.ts = Obs.Event.Cycles 1;
            payload = Obs.Event.Decomp_begin { region = 7 } };
        Obs.Trace.emit_into tr ~shard:0 (pass_ev 3);
        (* Mono events (track 0) sort before Cycles events (track 1)
           whatever their numeric clock values. *)
        match List.map (fun (e : Obs.Event.t) -> e.Obs.Event.ts)
                (Obs.Trace.events tr)
        with
        | [ Obs.Event.Mono _; Obs.Event.Cycles 1 ] -> ()
        | _ -> Alcotest.fail "expected Mono track before Cycles track");
  ]

(* ------------------------------------------------------------------ *)
(* Exporters, validated through the test suite's own JSON reader. *)

let mixed_trace () =
  let tr = Obs.Trace.create ~capacity:64 () in
  let emit ts p = Obs.Trace.emit tr { Obs.Event.ts; payload = p } in
  emit (Obs.Event.Cycles 100) (Obs.Event.Decomp_begin { region = 0 });
  emit (Obs.Event.Cycles 140)
    (Obs.Event.Decomp_end { region = 0; bits = 33; words = 7; cycles = 40 });
  emit (Obs.Event.Cycles 141)
    (Obs.Event.Buffer_enter { region = 0; offset = 0; pc = 4096 });
  emit (Obs.Event.Cycles 150)
    (Obs.Event.Stub_create { region = 1; ret = 8; live = 1 });
  emit (Obs.Event.Cycles 190)
    (Obs.Event.Stub_free { region = 1; ret = 8; live = 0 });
  emit (Obs.Event.Mono 10.0) (Obs.Event.Pass_begin { name = "huffman" });
  emit (Obs.Event.Mono 10.25)
    (Obs.Event.Pass_end { name = "huffman"; elapsed_s = 0.25 });
  emit (Obs.Event.Mono 10.3) (Obs.Event.Job_submit { label = "cell" });
  emit (Obs.Event.Mono 10.4) (Obs.Event.Job_start { label = "cell"; worker = 2 });
  emit (Obs.Event.Mono 10.9)
    (Obs.Event.Job_finish { label = "cell"; worker = 2; ok = true; wall_s = 0.5 });
  tr

let num_exn j =
  match j with
  | Json_check.Num f -> f
  | _ -> Alcotest.fail "expected a number"

let str_exn j =
  match j with
  | Json_check.Str s -> s
  | _ -> Alcotest.fail "expected a string"

let exporter_tests =
  [
    Alcotest.test_case "chrome export is valid and span-balanced" `Quick
      (fun () ->
        let tr = mixed_trace () in
        let doc =
          Json_check.parse (Report.Json.to_string (Obs.Trace.to_chrome tr))
        in
        Alcotest.(check string)
          "schema" "pgcc-trace-v2"
          (str_exn (Json_check.member_exn "schema" doc));
        let other = Json_check.member_exn "otherData" doc in
        Alcotest.(check (float 0.0))
          "emitted" 10.0
          (num_exn (Json_check.member_exn "emitted" other));
        let rows =
          match Json_check.member_exn "traceEvents" doc with
          | Json_check.Arr rows -> rows
          | _ -> Alcotest.fail "traceEvents not a list"
        in
        let ph r = str_exn (Json_check.member_exn "ph" r) in
        let count p = List.length (List.filter (fun r -> ph r = p) rows) in
        (* Decomp_end, Pass_end, Job_finish become spans; Buffer_enter,
           Stub_create, Stub_free, Job_submit become instants; the begin/
           start markers are folded into their spans. *)
        Alcotest.(check int) "metadata rows" 2 (count "M");
        Alcotest.(check int) "spans" 3 (count "X");
        Alcotest.(check int) "instants" 4 (count "i");
        Alcotest.(check int) "total rows" 9 (List.length rows);
        (* The decompression span starts where its cycle charge began. *)
        let decomp =
          List.find
            (fun r -> str_exn (Json_check.member_exn "name" r) = "decompress r0")
            rows
        in
        Alcotest.(check (float 0.0))
          "span start" 100.0
          (num_exn (Json_check.member_exn "ts" decomp));
        Alcotest.(check (float 0.0))
          "span duration" 40.0
          (num_exn (Json_check.member_exn "dur" decomp));
        (* Wall-clock rows are rebased to the earliest wall event. *)
        let pass =
          List.find
            (fun r -> str_exn (Json_check.member_exn "name" r) = "pass huffman")
            rows
        in
        Alcotest.(check (float 1e-3))
          "rebased pass start" 0.0
          (num_exn (Json_check.member_exn "ts" pass));
        Alcotest.(check (float 1e-3))
          "pass duration us" 250_000.0
          (num_exn (Json_check.member_exn "dur" pass)));
    Alcotest.test_case "chrome export survives a wrapped ring" `Quick (fun () ->
        (* Capacity 2: the first begin is overwritten, and a trailing begin
           has no end yet.  The export must still be balanced — one span,
           nothing orphaned. *)
        let tr = Obs.Trace.create ~capacity:2 () in
        let emit ts p = Obs.Trace.emit tr { Obs.Event.ts; payload = p } in
        emit (Obs.Event.Cycles 10) (Obs.Event.Decomp_begin { region = 0 });
        emit (Obs.Event.Cycles 50)
          (Obs.Event.Decomp_end { region = 0; bits = 8; words = 2; cycles = 40 });
        emit (Obs.Event.Cycles 60) (Obs.Event.Decomp_begin { region = 1 });
        let doc =
          Json_check.parse (Report.Json.to_string (Obs.Trace.to_chrome tr))
        in
        let rows =
          match Json_check.member_exn "traceEvents" doc with
          | Json_check.Arr rows -> rows
          | _ -> Alcotest.fail "traceEvents not a list"
        in
        let ph r = str_exn (Json_check.member_exn "ph" r) in
        Alcotest.(check int) "one span" 1
          (List.length (List.filter (fun r -> ph r = "X") rows));
        Alcotest.(check int) "no instants" 0
          (List.length (List.filter (fun r -> ph r = "i") rows)));
    Alcotest.test_case "jsonl export parses line by line" `Quick (fun () ->
        let tr = mixed_trace () in
        let lines =
          Obs.Trace.to_jsonl tr |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
        in
        Alcotest.(check int) "header + events" 11 (List.length lines);
        let parsed = List.map Json_check.parse lines in
        let header = List.hd parsed in
        Alcotest.(check string)
          "schema" "pgcc-trace-v2"
          (str_exn (Json_check.member_exn "schema" header));
        Alcotest.(check (float 0.0))
          "dropped" 0.0
          (num_exn (Json_check.member_exn "dropped" header));
        let decomp_end =
          List.find
            (fun j ->
              match Json_check.member "ev" j with
              | Some (Json_check.Str "decomp_end") -> true
              | _ -> false)
            (List.tl parsed)
        in
        Alcotest.(check (float 0.0))
          "cycles charged" 40.0
          (num_exn (Json_check.member_exn "cycles" decomp_end));
        Alcotest.(check string)
          "clock domain" "cycles"
          (str_exn (Json_check.member_exn "clock" decomp_end)));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let metrics_tests =
  [
    Alcotest.test_case "counters accumulate" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "a";
        Obs.Metrics.incr m ~by:41 "a";
        Alcotest.(check int) "a" 42 (Obs.Metrics.counter_value m "a");
        Alcotest.(check int) "unknown" 0 (Obs.Metrics.counter_value m "b"));
    Alcotest.test_case "max_gauge keeps the maximum" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.max_gauge m "g" 5;
        Obs.Metrics.max_gauge m "g" 3;
        let doc = Json_check.parse (Report.Json.to_string (Obs.Metrics.to_json m)) in
        let gauges = Json_check.member_exn "gauges" doc in
        Alcotest.(check (float 0.0))
          "kept max" 5.0
          (num_exn (Json_check.member_exn "g" gauges));
        Obs.Metrics.max_gauge m "g" 9;
        let doc = Json_check.parse (Report.Json.to_string (Obs.Metrics.to_json m)) in
        Alcotest.(check (float 0.0))
          "raised" 9.0
          (num_exn (Json_check.member_exn "g" (Json_check.member_exn "gauges" doc))));
    Alcotest.test_case "histograms bucket by powers of two" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        List.iter (Obs.Metrics.observe m "h") [ 0; 1; 2; 3; 4 ];
        Alcotest.(check int) "count" 5 (Obs.Metrics.histogram_count m "h");
        Alcotest.(check int) "sum" 10 (Obs.Metrics.histogram_sum m "h");
        let doc = Json_check.parse (Report.Json.to_string (Obs.Metrics.to_json m)) in
        let h =
          Json_check.member_exn "h" (Json_check.member_exn "histograms" doc)
        in
        Alcotest.(check (float 0.0))
          "min" 0.0
          (num_exn (Json_check.member_exn "min" h));
        Alcotest.(check (float 0.0))
          "max" 4.0
          (num_exn (Json_check.member_exn "max" h));
        let buckets =
          match Json_check.member_exn "buckets" h with
          | Json_check.Arr bs ->
            List.map
              (fun b ->
                ( int_of_float (num_exn (Json_check.member_exn "lo" b)),
                  int_of_float (num_exn (Json_check.member_exn "hi" b)),
                  int_of_float (num_exn (Json_check.member_exn "count" b)) ))
              bs
          | _ -> Alcotest.fail "buckets not a list"
        in
        (* 0 and 1 share bucket 0; 2 and 3 fill [2,3]; 4 opens [4,7]. *)
        Alcotest.(check (list (triple int int int)))
          "buckets"
          [ (0, 1, 2); (2, 3, 2); (4, 7, 1) ]
          buckets);
    Alcotest.test_case "quantiles on a concentrated distribution" `Quick
      (fun () ->
        (* All mass on one value: every quantile is clamped to it. *)
        let m = Obs.Metrics.create () in
        for _ = 1 to 100 do
          Obs.Metrics.observe m "h" 5
        done;
        List.iter
          (fun q ->
            Alcotest.(check (option (float 0.0)))
              (Printf.sprintf "q=%.2f" q)
              (Some 5.0)
              (Obs.Metrics.histogram_quantile m "h" q))
          [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
        Alcotest.(check (option (float 0.0)))
          "empty histogram" None
          (Obs.Metrics.histogram_quantile m "missing" 0.5));
    Alcotest.test_case "quantiles on a skewed distribution" `Quick (fun () ->
        (* 90 fast observations at 1, 10 slow at 1000: the median sits in
           the fast bucket, the tail quantiles in the slow one. *)
        let m = Obs.Metrics.create () in
        for _ = 1 to 90 do
          Obs.Metrics.observe m "h" 1
        done;
        for _ = 1 to 10 do
          Obs.Metrics.observe m "h" 1000
        done;
        let q p = Option.get (Obs.Metrics.histogram_quantile m "h" p) in
        Alcotest.(check (float 0.0)) "p50 fast" 1.0 (q 0.5);
        Alcotest.(check bool) "p95 in the slow bucket" true (q 0.95 >= 512.0);
        Alcotest.(check bool) "p99 below the observed max" true
          (q 0.99 <= 1000.0);
        Alcotest.(check (float 0.0)) "p100 is the max" 1000.0 (q 1.0);
        (* The snapshot carries the estimates alongside the buckets. *)
        let doc =
          Json_check.parse (Report.Json.to_string (Obs.Metrics.to_json m))
        in
        let h =
          Json_check.member_exn "h" (Json_check.member_exn "histograms" doc)
        in
        Alcotest.(check (float 0.0))
          "p50 in snapshot" 1.0
          (num_exn (Json_check.member_exn "p50" h));
        Alcotest.(check bool) "p99 in snapshot" true
          (num_exn (Json_check.member_exn "p99" h) >= 512.0));
    Alcotest.test_case "quantile interpolates within a bucket" `Quick
      (fun () ->
        (* Four values spread across bucket [8,15]: interior quantiles stay
           inside the bucket and respect min/max clamps. *)
        let m = Obs.Metrics.create () in
        List.iter (Obs.Metrics.observe m "h") [ 8; 10; 12; 15 ];
        let q p = Option.get (Obs.Metrics.histogram_quantile m "h" p) in
        Alcotest.(check bool) "p50 inside bucket" true
          (q 0.5 >= 8.0 && q 0.5 <= 15.0);
        Alcotest.(check (float 0.0)) "p0 is the min" 8.0 (q 0.0);
        Alcotest.(check (float 0.0)) "p100 is the max" 15.0 (q 1.0));
    Alcotest.test_case "empty registry serialises cleanly" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let doc = Json_check.parse (Report.Json.to_string (Obs.Metrics.to_json m)) in
        Alcotest.(check bool) "empty counters" true
          (Json_check.member_exn "counters" doc = Json_check.Obj []));
    Alcotest.test_case "an empty sink is inert" `Quick (fun () ->
        let o = Obs.create () in
        Obs.event o (pass_ev 0);
        Obs.incr o "x";
        Obs.observe o "y" 3;
        let doc = Json_check.parse (Report.Json.to_string (Obs.snapshot_json o)) in
        Alcotest.(check bool) "metrics null" true
          (Json_check.member_exn "metrics" doc = Json_check.Null);
        Alcotest.(check bool) "trace null" true
          (Json_check.member_exn "trace" doc = Json_check.Null));
  ]

(* ------------------------------------------------------------------ *)
(* Instrumented sites: pipeline pass spans and engine job spans. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let fib_src =
  {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { putint(fib(14)); return 0; }
|}

let squash_fib ?obs () =
  let p, _ = Squeeze.run (compile fib_src) in
  let profile, _ = Profile.collect p ~input:"" in
  let options = { Squash.default_options with Squash.theta = 1.0 } in
  (Squash.run ~options ?obs p profile, profile)

let span_tests =
  [
    Alcotest.test_case "the pipeline emits balanced pass spans" `Quick
      (fun () ->
        let obs = Obs.full () in
        let _ = squash_fib ~obs () in
        let evs = Obs.Trace.events (Option.get obs.Obs.trace) in
        let begins =
          List.filter_map
            (fun (e : Obs.Event.t) ->
              match e.Obs.Event.payload with
              | Obs.Event.Pass_begin { name } -> Some name
              | _ -> None)
            evs
        in
        let ends =
          List.filter_map
            (fun (e : Obs.Event.t) ->
              match e.Obs.Event.payload with
              | Obs.Event.Pass_end { name; elapsed_s } ->
                Alcotest.(check bool)
                  (name ^ " elapsed non-negative")
                  true (elapsed_s >= 0.0);
                Some name
              | _ -> None)
            evs
        in
        Alcotest.(check bool) "some passes ran" true (begins <> []);
        Alcotest.(check (list string)) "begin/end pair up" begins ends;
        Alcotest.(check int)
          "counter matches" (List.length ends)
          (Obs.Metrics.counter_value
             (Option.get obs.Obs.metrics)
             "pipeline.passes_run"));
    Alcotest.test_case "the engine emits job submit/start/finish" `Quick
      (fun () ->
        let obs = Obs.full () in
        let results, stats =
          Engine.run ~jobs:2 ~obs
            ~label:(Printf.sprintf "j%d")
            [ (fun () -> 1); (fun () -> 2); (fun () -> failwith "boom") ]
        in
        Alcotest.(check int) "submitted" 3 stats.Engine.submitted;
        Alcotest.(check bool) "third failed" true
          (match results.(2) with Error _ -> true | Ok _ -> false);
        let m = Option.get obs.Obs.metrics in
        Alcotest.(check int) "submit counter" 3
          (Obs.Metrics.counter_value m "engine.jobs_submitted");
        Alcotest.(check int) "succeeded counter" 2
          (Obs.Metrics.counter_value m "engine.jobs_succeeded");
        Alcotest.(check int) "failed counter" 1
          (Obs.Metrics.counter_value m "engine.jobs_failed");
        let evs = Obs.Trace.events (Option.get obs.Obs.trace) in
        let count f = List.length (List.filter f evs) in
        Alcotest.(check int) "submits" 3
          (count (fun e ->
               match e.Obs.Event.payload with
               | Obs.Event.Job_submit _ -> true
               | _ -> false));
        Alcotest.(check int) "starts" 3
          (count (fun e ->
               match e.Obs.Event.payload with
               | Obs.Event.Job_start _ -> true
               | _ -> false));
        let finishes =
          List.filter_map
            (fun (e : Obs.Event.t) ->
              match e.Obs.Event.payload with
              | Obs.Event.Job_finish { label; ok; _ } -> Some (label, ok)
              | _ -> None)
            evs
        in
        Alcotest.(check int) "finishes" 3 (List.length finishes);
        Alcotest.(check (option bool)) "failure recorded" (Some false)
          (List.assoc_opt "j2" finishes));
    Alcotest.test_case "stats_to_json and observe_stats agree with a run"
      `Quick (fun () ->
        let r, _ = squash_fib () in
        let outcome, stats =
          Runtime.run ~fuel r.Squash.squashed ~input:""
        in
        Alcotest.(check string) "fib output" "377\n" outcome.Vm.output;
        let doc =
          Json_check.parse (Report.Json.to_string (Runtime.stats_to_json stats))
        in
        Alcotest.(check (float 0.0))
          "decompressions"
          (float_of_int stats.Runtime.decompressions)
          (num_exn (Json_check.member_exn "decompressions" doc));
        Alcotest.(check (float 0.0))
          "per_region length"
          (float_of_int (Array.length stats.Runtime.per_region))
          (match Json_check.member_exn "per_region" doc with
          | Json_check.Arr l -> float_of_int (List.length l)
          | _ -> -1.0);
        (* Replaying the aggregates must reproduce the live counters. *)
        let m = Obs.Metrics.create () in
        Runtime.observe_stats (Obs.create ~metrics:m ()) stats;
        Alcotest.(check int) "replayed decompressions"
          stats.Runtime.decompressions
          (Obs.Metrics.counter_value m "runtime.decompressions");
        Alcotest.(check int) "replayed stub creates" stats.Runtime.stub_creates
          (Obs.Metrics.counter_value m "runtime.stub_creates"));
  ]

(* ------------------------------------------------------------------ *)
(* The workload-wide checks.  One squeeze/profile/squash per workload at
   θ = 0.01, then a timing run with and without a sink attached; the
   batch is computed once (in parallel, honouring $JOBS) and shared by
   the regression tests below. *)

type wl_check = {
  wl_name : string;
  plain : Vm.outcome;  (* no sink attached *)
  traced : Vm.outcome;
  plain_stats : Runtime.stats;
  traced_stats : Runtime.stats;
  emitted : int;
  metrics_decomp : int;
  vm_hook_counter : int;
  attrib : Attrib.t;
  region_count : int;
}

let check_workload (wl : Workload.t) =
  let p, _ = Squeeze.run (Workload.compile wl) in
  let profile, _ =
    Profile.collect ~fuel p ~input:(Workload.profiling_input wl)
  in
  let options = { Squash.default_options with Squash.theta = 0.01 } in
  let r = Squash.run ~options p profile in
  let timing = Workload.timing_input wl in
  let plain, plain_stats = Runtime.run ~fuel r.Squash.squashed ~input:timing in
  let obs = Obs.full () in
  let traced, traced_stats =
    Runtime.run ~fuel ~obs r.Squash.squashed ~input:timing
  in
  let m = Option.get obs.Obs.metrics in
  {
    wl_name = wl.Workload.name;
    plain;
    traced;
    plain_stats;
    traced_stats;
    emitted = Obs.Trace.emitted (Option.get obs.Obs.trace);
    metrics_decomp = Obs.Metrics.counter_value m "runtime.decompressions";
    vm_hook_counter = Obs.Metrics.counter_value m "vm.hook_invocations";
    attrib = Attrib.compute ~profile r traced_stats;
    region_count = Array.length r.Squash.regions.Regions.regions;
  }

let batch =
  lazy
    (let results, _ =
       Engine.run
         ~label:(fun i -> (List.nth Workloads.all i).Workload.name)
         (List.map (fun wl () -> check_workload wl) Workloads.all)
     in
     Array.to_list results
     |> List.map (function
          | Ok r -> r
          | Error e ->
            Alcotest.failf "workload job failed: %s" (Engine.error_to_string e)))

let workload_tests =
  [
    Alcotest.test_case "tracing off is byte-identical across workloads" `Slow
      (fun () ->
        List.iter
          (fun c ->
            let n = c.wl_name in
            Alcotest.(check string) (n ^ " output") c.plain.Vm.output
              c.traced.Vm.output;
            Alcotest.(check int) (n ^ " exit") c.plain.Vm.exit_code
              c.traced.Vm.exit_code;
            Alcotest.(check int) (n ^ " icount") c.plain.Vm.icount
              c.traced.Vm.icount;
            Alcotest.(check int) (n ^ " cycles") c.plain.Vm.cycles
              c.traced.Vm.cycles;
            Alcotest.(check int)
              (n ^ " hook invocations")
              c.plain.Vm.hook_invocations c.traced.Vm.hook_invocations;
            Alcotest.(check bool)
              (n ^ " stats identical")
              true
              (c.plain_stats = c.traced_stats))
          (Lazy.force batch));
    Alcotest.test_case "max live stubs stay within bounds at theta=0.01" `Slow
      (fun () ->
        List.iter
          (fun c ->
            let v = c.traced_stats.Runtime.max_live_stubs in
            if v > 9 then
              Alcotest.failf "%s: max_live_stubs = %d exceeds the bound of 9"
                c.wl_name v)
          (Lazy.force batch));
    Alcotest.test_case "hook invocations equal runtime-driven invocations"
      `Slow (fun () ->
        List.iter
          (fun c ->
            let s = c.traced_stats in
            let expected =
              s.Runtime.decompressions + s.Runtime.cache_hits
              + s.Runtime.stub_creates + s.Runtime.stub_reuses
            in
            Alcotest.(check int)
              (c.wl_name ^ " outcome counter")
              expected c.traced.Vm.hook_invocations;
            Alcotest.(check int)
              (c.wl_name ^ " metrics counter")
              c.traced.Vm.hook_invocations c.vm_hook_counter;
            Alcotest.(check int)
              (c.wl_name ^ " decompression counter")
              s.Runtime.decompressions c.metrics_decomp;
            Alcotest.(check bool)
              (c.wl_name ^ " events were emitted")
              true (c.emitted > 0))
          (Lazy.force batch));
    Alcotest.test_case "attribution reconciles with runtime stats" `Slow
      (fun () ->
        List.iter
          (fun c ->
            let a = c.attrib in
            let n = c.wl_name in
            Alcotest.(check int)
              (n ^ " total decompressions")
              c.traced_stats.Runtime.decompressions a.Attrib.total_decompressions;
            Alcotest.(check int)
              (n ^ " total cycles")
              (Array.fold_left ( + ) 0 c.traced_stats.Runtime.per_region_cycles)
              a.Attrib.total_cycles;
            Alcotest.(check int)
              (n ^ " one row per region")
              c.region_count
              (List.length a.Attrib.rows);
            Alcotest.(check int)
              (n ^ " rows sum to the total")
              a.Attrib.total_decompressions
              (List.fold_left
                 (fun acc (r : Attrib.row) -> acc + r.Attrib.decompressions)
                 0 a.Attrib.rows);
            if a.Attrib.total_cycles > 0 then
              Alcotest.(check (float 1e-9))
                (n ^ " shares sum to 1")
                1.0
                (List.fold_left
                   (fun acc (r : Attrib.row) -> acc +. r.Attrib.share)
                   0.0 a.Attrib.rows))
          (Lazy.force batch));
  ]

(* ------------------------------------------------------------------ *)
(* The acceptance property for sharded sinks: a traced JOBS=8 grid is
   byte-identical in outcomes to an untraced one.  Memos and the
   persistent cache are disabled/reset so both runs really execute. *)

let grid_determinism_tests =
  [
    Alcotest.test_case "a traced JOBS=8 grid matches an untraced one" `Slow
      (fun () ->
        let cells () =
          List.map
            (fun wl ->
              Exp_grid.cell ~timing:true ~slots:1 wl
                { Squash.default_options with Squash.theta = 0.01 })
            [ List.hd Workloads.all ]
        in
        Exp_data.set_cache None;
        let run_with obs =
          Exp_data.reset ();
          Exp_grid.set_obs obs;
          Fun.protect
            ~finally:(fun () -> Exp_grid.set_obs None)
            (fun () ->
              let results, _ = Exp_grid.run ~jobs:8 (cells ()) in
              results)
        in
        let plain = run_with None in
        let obs = Obs.full ~shards:9 () in
        let traced = run_with (Some obs) in
        Alcotest.(check string)
          "cell outcomes byte-identical"
          (Exp_grid.to_csv plain) (Exp_grid.to_csv traced);
        Alcotest.(check string)
          "cell json byte-identical"
          (Report.Json.to_string (Exp_grid.to_json plain))
          (Report.Json.to_string (Exp_grid.to_json traced));
        let tr = Option.get obs.Obs.trace in
        Alcotest.(check int) "nine shards" 9 (Obs.Trace.shard_count tr);
        Alcotest.(check bool) "events recorded" true
          (Obs.Trace.emitted tr > 0);
        (* Aggregated accounting equals the per-shard sums. *)
        let se, sd =
          Array.fold_left
            (fun (ae, ad) (e, d) -> (ae + e, ad + d))
            (0, 0) (Obs.Trace.shard_stats tr)
        in
        Alcotest.(check int) "emitted sums" (Obs.Trace.emitted tr) se;
        Alcotest.(check int) "dropped sums" (Obs.Trace.dropped tr) sd);
  ]

let suite =
  [
    ("obs.trace", ring_tests);
    ("obs.shards", shard_tests);
    ("obs.export", exporter_tests);
    ("obs.metrics", metrics_tests);
    ("obs.spans", span_tests);
    ("obs.grid", grid_determinism_tests);
    ("obs.workloads", workload_tests);
  ]
