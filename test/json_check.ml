(* A tiny recursive-descent JSON reader used only by the test suite: just
   enough to round-trip what Report.Json emits and to validate the trace
   exporters' output.  Deliberately not a general parser — pulling in a
   JSON dependency for this would be overkill. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "truncated escape";
        let c = s.[!pos] in
        incr pos;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let v = hex4 () in
          if not (Uchar.is_valid v) then fail "surrogate \\u escape"
          else Buffer.add_utf_8_uchar b (Uchar.of_int v)
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | '{' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = '}' then begin
        incr pos;
        Obj []
      end
      else Obj (parse_fields [])
    | '[' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = ']' then begin
        incr pos;
        Arr []
      end
      else Arr (parse_items [])
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  and parse_fields acc =
    skip_ws ();
    let k = parse_string () in
    skip_ws ();
    expect ':';
    let v = parse_value () in
    skip_ws ();
    if !pos < n && s.[!pos] = ',' then begin
      incr pos;
      parse_fields ((k, v) :: acc)
    end
    else begin
      expect '}';
      List.rev ((k, v) :: acc)
    end
  and parse_items acc =
    let v = parse_value () in
    skip_ws ();
    if !pos < n && s.[!pos] = ',' then begin
      incr pos;
      parse_items (v :: acc)
    end
    else begin
      expect ']';
      List.rev (v :: acc)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* What [parse (Report.Json.to_string j)] must produce: integers widen to
   floats, non-finite floats collapse to null. *)
let rec of_report (j : Report.Json.t) =
  match j with
  | Report.Json.Null -> Null
  | Report.Json.Bool b -> Bool b
  | Report.Json.Int i -> Num (float_of_int i)
  | Report.Json.Float f -> if Float.is_finite f then Num f else Null
  | Report.Json.String s -> Str s
  | Report.Json.List items -> Arr (List.map of_report items)
  | Report.Json.Obj fields ->
    Obj (List.map (fun (k, v) -> (k, of_report v)) fields)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let member_exn k j =
  match member k j with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing member %S" k))
