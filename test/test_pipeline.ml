(* The instrumented pass pipeline: ordering, skipping, per-pass validation,
   stats invariants, and byte-identity of Squash.run with an explicit
   pipeline run. *)

let compile src =
  match Minic.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile error: %s" (Minic.error_to_string e)

let squeeze p = fst (Squeeze.run p)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let hot_cold_src =
  {|
int report(int code) {
  putint(1000 + code);
  return code;
}
int rare_fixup(int x) {
  int i; int acc;
  acc = x;
  for (i = 0; i < 3; i = i + 1) acc = acc * 5 + i;
  report(acc & 1023);
  return acc;
}
int rare_dispatch(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 21;
    case 2: return 32;
    case 3: return 43;
    case 4: return 54;
    default: return 99;
  }
}
int hot_step(int x) { return (x * 17 + 3) & 4095; }
int main() {
  int mode; int i; int acc;
  mode = getc();
  acc = 1;
  for (i = 0; i < 200; i = i + 1) acc = hot_step(acc + i);
  if (mode == 'x') acc = rare_fixup(acc);
  if (mode == 'd') acc = acc + rare_dispatch(mode & 7);
  putint(acc);
  return acc & 255;
}
|}

let prepared = lazy (
  let p = squeeze (compile hot_cold_src) in
  let prof, _ = Profile.collect p ~input:"n" in
  (p, prof))

let manual_squash ?(passes = None) options p prof =
  let passes =
    match passes with Some l -> l | None -> Pipeline.of_options options
  in
  let st, stats = Pipeline.execute ~passes (Pass.init ~options p prof) in
  (Pass.get_squashed ~who:"test" st, stats)

let check_identical name (a : Rewrite.t) (b : Rewrite.t) =
  Alcotest.(check string) (name ^ " blob") a.Rewrite.blob b.Rewrite.blob;
  Alcotest.(check (array int)) (name ^ " blob offsets") a.Rewrite.blob_offsets
    b.Rewrite.blob_offsets;
  Alcotest.(check (array int))
    (name ^ " text words")
    a.Rewrite.text.Easm.words b.Rewrite.text.Easm.words;
  Alcotest.(check int) (name ^ " total words") (Rewrite.total_words a)
    (Rewrite.total_words b);
  Alcotest.(check (list (pair (pair string int) int)))
    (name ^ " stub addrs") a.Rewrite.stub_addrs b.Rewrite.stub_addrs

(* A deliberately broken pass: leaks a compressed-stream marker into the
   IR, the kind of damage --check-each exists to localise. *)
let corrupting_pass =
  {
    Pass.name = "corrupt";
    descr = "inject a sentinel into the first block";
    paper = "-";
    requires = [];
    after = [];
    transform =
      (fun st ->
        let p = st.Pass.prog in
        let funcs =
          match p.Prog.funcs with
          | [] -> []
          | (f : Prog.Func.t) :: rest ->
            let blocks = Array.copy f.Prog.Func.blocks in
            let b = blocks.(0) in
            blocks.(0) <-
              { b with Prog.Block.items = Prog.Instr Instr.Sentinel :: b.Prog.Block.items };
            { f with Prog.Func.blocks = blocks } :: rest
        in
        { st with Pass.prog = { p with Prog.funcs } });
    note = (fun _ -> "corrupted");
  }

let ordering_tests =
  [
    Alcotest.test_case "standard order is accepted" `Quick (fun () ->
        let p, prof = Lazy.force prepared in
        let _, stats = manual_squash Squash.default_options p prof in
        Alcotest.(check (list string))
          "pass order"
          [ "resolve"; "cold"; "unswitch"; "exclude"; "regions"; "buffer-safe";
            "rewrite" ]
          (List.map (fun (s : Pass.stats) -> s.Pass.pass_name)
             stats.Pipeline.passes));
    Alcotest.test_case "missing prerequisite is rejected up front" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        Alcotest.check_raises "regions without cold"
          (Invalid_argument
             "Pipeline.execute: pass \"regions\" requires \"cold\" to run earlier")
          (fun () ->
            ignore
              (Pipeline.execute ~passes:[ Pipeline.regions_pass ]
                 (Pass.init p prof))));
    Alcotest.test_case "soft ordering: exclude may not precede unswitch" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let bad =
          [ Pipeline.cold_pass; Pipeline.exclude_pass; Pipeline.unswitch_pass;
            Pipeline.regions_pass; Pipeline.buffer_safe_pass;
            Pipeline.rewrite_pass ]
        in
        Alcotest.check_raises "exclude before unswitch"
          (Invalid_argument
             "Pipeline.execute: pass \"exclude\" must come after \"unswitch\"")
          (fun () -> ignore (Pipeline.execute ~passes:bad (Pass.init p prof))));
    Alcotest.test_case "duplicate pass is rejected" `Quick (fun () ->
        let p, prof = Lazy.force prepared in
        Alcotest.check_raises "cold twice"
          (Invalid_argument "Pipeline.execute: pass \"cold\" appears twice")
          (fun () ->
            ignore
              (Pipeline.execute
                 ~passes:[ Pipeline.cold_pass; Pipeline.cold_pass ]
                 (Pass.init p prof))));
    Alcotest.test_case "exclude without unswitch in the list is fine" `Quick
      (fun () ->
        (* The soft constraint only binds when unswitch is present. *)
        let p, prof = Lazy.force prepared in
        let passes = Pipeline.skip [ "unswitch" ] Pipeline.standard in
        let sq, _ = manual_squash ~passes:(Some passes) Squash.default_options p prof in
        Alcotest.(check bool) "produced an image" true
          (Rewrite.total_words sq > 0));
  ]

let skipping_tests =
  [
    Alcotest.test_case "skipping unswitch == options.unswitch = false" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let opts = { Squash.default_options with Squash.unswitch = false } in
        let via_options = Squash.run ~options:opts p prof in
        let via_skip, _ =
          manual_squash
            ~passes:(Some (Pipeline.skip [ "unswitch" ] Pipeline.standard))
            (* Keep the options identical so the image is byte-identical. *)
            opts p prof
        in
        check_identical "skip-vs-option" via_options.Squash.squashed via_skip);
    Alcotest.test_case "of_options drops unswitch exactly when disabled" `Quick
      (fun () ->
        let names o = Pipeline.names (Pipeline.of_options o) in
        Alcotest.(check bool) "on" true
          (List.mem "unswitch" (names Squash.default_options));
        Alcotest.(check bool) "off" false
          (List.mem "unswitch"
             (names { Squash.default_options with Squash.unswitch = false })));
    Alcotest.test_case "by_name finds every standard pass" `Quick (fun () ->
        List.iter
          (fun n ->
            match Pipeline.by_name n with
            | Some p -> Alcotest.(check string) "name" n p.Pass.name
            | None -> Alcotest.failf "pass %s not found" n)
          (Pipeline.names Pipeline.standard));
  ]

let check_each_tests =
  [
    Alcotest.test_case "healthy pipeline passes --check-each" `Quick (fun () ->
        let p, prof = Lazy.force prepared in
        let st, _ =
          Pipeline.execute ~check_each:true
            ~passes:(Pipeline.of_options Squash.default_options)
            (Pass.init p prof)
        in
        Alcotest.(check bool) "image built" true (st.Pass.squashed <> None));
    Alcotest.test_case "a corrupting pass is caught at that pass" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let passes =
          [ Pipeline.cold_pass; corrupting_pass; Pipeline.unswitch_pass;
            Pipeline.exclude_pass; Pipeline.regions_pass;
            Pipeline.buffer_safe_pass; Pipeline.rewrite_pass ]
        in
        (match
           Pipeline.execute ~check_each:true ~passes (Pass.init p prof)
         with
        | _ -> Alcotest.fail "corruption not detected"
        | exception Pipeline.Check_failed { pass; errors } ->
          Alcotest.(check string) "blamed pass" "corrupt" pass;
          Alcotest.(check bool) "mentions the sentinel" true
            (List.exists (fun e -> contains e "sentinel") errors));
        (* Without check_each the same list runs to completion — the
           corruption is only caught later, at the final image check. *)
        let st, _ = Pipeline.execute ~passes (Pass.init p prof) in
        Alcotest.(check bool) "image still built" true (st.Pass.squashed <> None));
    Alcotest.test_case "Squash.run ~check_each works end to end" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let r = Squash.run ~check_each:true p prof in
        Alcotest.(check bool) "image" true (Rewrite.total_words r.Squash.squashed > 0));
  ]

let stats_tests =
  [
    Alcotest.test_case "stats chain: sizes thread through the passes" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let r = Squash.run p prof in
        let stats = r.Squash.stats in
        let ss = stats.Pipeline.passes in
        Alcotest.(check bool) "non-empty" true (ss <> []);
        let first = List.hd ss and last = List.nth ss (List.length ss - 1) in
        Alcotest.(check int) "starts from the input program"
          (Prog.text_words p) first.Pass.words_before;
        Alcotest.(check int) "ends at the squashed footprint"
          (Rewrite.total_words r.Squash.squashed) last.Pass.words_after;
        Alcotest.(check int) "squashed_words agrees" r.Squash.squashed_words
          last.Pass.words_after;
        ignore
          (List.fold_left
             (fun prev (s : Pass.stats) ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s time non-negative" s.Pass.pass_name)
                 true (s.Pass.elapsed_s >= 0.0);
               (match prev with
               | None -> ()
               | Some (pw, pi) ->
                 Alcotest.(check int)
                   (Printf.sprintf "%s words chain" s.Pass.pass_name)
                   pw s.Pass.words_before;
                 Alcotest.(check int)
                   (Printf.sprintf "%s instrs chain" s.Pass.pass_name)
                   pi s.Pass.instrs_before);
               Some (s.Pass.words_after, s.Pass.instrs_after))
             None ss);
        let sum =
          List.fold_left (fun acc (s : Pass.stats) -> acc +. s.Pass.elapsed_s)
            0.0 ss
        in
        Alcotest.(check bool) "total is the sum of the passes" true
          (Float.abs (stats.Pipeline.total_s -. sum) < 1e-9));
    Alcotest.test_case "render_stats and stats_json name every pass" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let r = Squash.run p prof in
        let table = Pipeline.render_stats r.Squash.stats in
        let json =
          Report.Json.to_string (Pipeline.stats_json r.Squash.stats)
        in
        List.iter
          (fun name ->
            Alcotest.(check bool) ("table has " ^ name) true (contains table name);
            Alcotest.(check bool) ("json has " ^ name) true
              (contains json (Printf.sprintf "\"name\":%S" name)))
          (Pipeline.names (Pipeline.of_options Squash.default_options));
        Alcotest.(check bool) "json has total_s" true (contains json "\"total_s\""));
    Alcotest.test_case "trace emits one line per pass" `Quick (fun () ->
        let p, prof = Lazy.force prepared in
        let lines = ref [] in
        let _ = Squash.run ~trace:(fun l -> lines := l :: !lines) p prof in
        Alcotest.(check int) "line count"
          (List.length (Pipeline.of_options Squash.default_options))
          (List.length !lines));
  ]

let identity_tests =
  [
    Alcotest.test_case "Squash.run == explicit pipeline (byte-identical)" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        let r = Squash.run p prof in
        let sq, _ = manual_squash Squash.default_options p prof in
        check_identical "small" r.Squash.squashed sq);
    Alcotest.test_case
      "workloads: byte-identical images at default options" `Slow (fun () ->
        List.iter
          (fun wl ->
            let pre = Exp_data.prepare wl in
            let p = pre.Exp_data.squeezed and prof = pre.Exp_data.profile in
            let r = Squash.run p prof in
            let sq, _ = manual_squash Squash.default_options p prof in
            check_identical wl.Workload.name r.Squash.squashed sq;
            match Check.check r.Squash.squashed with
            | Ok () -> ()
            | Error es ->
              Alcotest.failf "%s: image check: %s" wl.Workload.name
                (String.concat "; " es))
          Workloads.all);
  ]

let prog_check_tests =
  [
    Alcotest.test_case "a healthy program and profile check clean" `Quick
      (fun () ->
        let p, prof = Lazy.force prepared in
        match Prog_check.check ~profile:prof p with
        | Ok () -> ()
        | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
    Alcotest.test_case "stray markers in a block body are all reported" `Quick
      (fun () ->
        let p, _ = Lazy.force prepared in
        let funcs =
          match p.Prog.funcs with
          | (f : Prog.Func.t) :: rest ->
            let blocks = Array.copy f.Prog.Func.blocks in
            let b = blocks.(0) in
            blocks.(0) <-
              {
                b with
                Prog.Block.items =
                  Prog.Instr Instr.Sentinel
                  :: Prog.Instr (Instr.Bsrx { ra = 0; disp = 2 })
                  :: Prog.Instr (Instr.Jsr { ra = 26; rb = 9; hint = 1 })
                  :: b.Prog.Block.items;
              };
            { f with Prog.Func.blocks = blocks } :: rest
          | [] -> []
        in
        match Prog_check.check { p with Prog.funcs } with
        | Ok () -> Alcotest.fail "markers not detected"
        | Error es ->
          (* One error per marker: the validator collects everything. *)
          Alcotest.(check bool)
            (Printf.sprintf "3 errors (got %d: %s)" (List.length es)
               (String.concat "; " es))
            true
            (List.length es = 3));
    Alcotest.test_case "stale profile indices are reported" `Quick (fun () ->
        let p, prof = Lazy.force prepared in
        let other =
          squeeze (compile "int main() { putint(1); return 0; }")
        in
        ignore p;
        match Prog_check.check ~profile:prof other with
        | Ok () -> Alcotest.fail "stale profile not detected"
        | Error es ->
          Alcotest.(check bool) "mentions the profile" true
            (List.exists (fun e -> contains e "profile") es));
    Alcotest.test_case "check_exn raises on a bad program" `Quick (fun () ->
        let bad =
          { Prog.funcs = []; entry = "main"; data_words = 0; data_init = [] }
        in
        match Prog_check.check_exn bad with
        | () -> Alcotest.fail "empty program accepted"
        | exception Failure _ -> ());
  ]

let suite =
  [ ("pipeline",
     ordering_tests @ skipping_tests @ check_each_tests @ stats_tests
     @ identity_tests @ prog_check_tests) ]
