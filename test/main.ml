let () =
  Alcotest.run "pgcc"
    (Test_word.suite @ Test_instr.suite @ Test_bitio.suite @ Test_huffman.suite
   @ Test_prog.suite @ Test_minic.suite @ Test_squeeze.suite @ Test_profile.suite @ Test_profile_ops.suite @ Test_squash.suite @ Test_cold.suite @ Test_workloads.suite @ Test_report.suite @ Test_lzss.suite @ Test_easm.suite @ Test_unswitch.suite @ Test_runtime.suite @ Test_interp.suite @ Test_props.suite @ Test_mclib.suite @ Test_more.suite @ Test_cfg.suite @ Test_asm.suite @ Test_vm.suite @ Test_pipeline.suite
   @ Test_regions.suite @ Test_engine.suite @ Test_obs.suite
   @ Test_analysis.suite @ Test_buffer_safe.suite @ Test_verify.suite
   @ Test_coder.suite @ Test_benchdiff.suite @ Test_equiv.suite)
