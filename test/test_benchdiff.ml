(* The run ledger and the differential analyses: benchdiff's statistical
   regression gate, the attrib save/diff round-trip, and tracediff's span
   profiles over both export formats. *)

let bench_doc ?(schema = "pgcc-bench-v2") ?(rev = "a") ?(counters = [])
    experiments =
  let open Report.Json in
  Obj
    [ ("schema", String schema);
      ("timestamp", String "2026-08-09T00:00:00Z");
      ("rev", String rev);
      ("jobs", Int 4);
      ("repeat", Int (List.length experiments));
      ( "experiments",
        List
          (List.map
             (fun (id, samples) ->
               Obj
                 [ ("id", String id);
                   ("seconds", Float (Report.Stats.mean samples));
                   ("samples", List (List.map (fun s -> Float s) samples)) ])
             experiments) );
      ( "runtime_sample",
        Obj
          [ ("workload", String "gsm");
            ("stats", Obj (List.map (fun (k, v) -> (k, Int v)) counters)) ]
      ) ]

let load_run doc =
  match Benchdiff.of_json doc with
  | Ok r -> r
  | Error msg -> Alcotest.failf "of_json failed: %s" msg

let benchdiff_tests =
  [
    Alcotest.test_case "a +25% regression is flagged, jitter is not" `Quick
      (fun () ->
        let a =
          load_run
            (bench_doc
               [ ("T1", [ 9.9; 10.0; 10.1 ]); ("F6", [ 4.9; 5.0; 5.1 ]) ])
        in
        let b =
          load_run
            (bench_doc
               [ ("T1", [ 12.4; 12.5; 12.6 ]); ("F6", [ 4.95; 5.05; 5.15 ]) ])
        in
        let r = Benchdiff.compare_runs ~wall_threshold:0.10 a b in
        Alcotest.(check bool) "regressed" true (Benchdiff.regressed r);
        let d id =
          List.find (fun (d : Benchdiff.delta) -> d.Benchdiff.id = id)
            r.Benchdiff.deltas
        in
        Alcotest.(check bool) "T1 flagged" true (d "T1").Benchdiff.regressed;
        Alcotest.(check bool) "T1 significant" true
          (d "T1").Benchdiff.significant;
        Alcotest.(check bool) "F6 passes" false (d "F6").Benchdiff.regressed;
        Alcotest.(check (float 1e-9)) "T1 delta" 0.25 (d "T1").Benchdiff.rel);
    Alcotest.test_case "a shift within noise is not significant" `Quick
      (fun () ->
        (* Means differ by 12% but the samples are so noisy that Welch
           cannot reject equal means — the gate must stay open. *)
        let a = load_run (bench_doc [ ("T1", [ 6.0; 10.0; 14.0 ]) ]) in
        let b = load_run (bench_doc [ ("T1", [ 7.2; 11.2; 15.2 ]) ]) in
        let r = Benchdiff.compare_runs ~wall_threshold:0.10 a b in
        let d = List.hd r.Benchdiff.deltas in
        Alcotest.(check bool) "above threshold" true
          (d.Benchdiff.rel > 0.10);
        Alcotest.(check bool) "not significant" false d.Benchdiff.significant;
        Alcotest.(check bool) "not regressed" false d.Benchdiff.regressed);
    Alcotest.test_case "single-sample runs regress conservatively" `Quick
      (fun () ->
        (* v1 records carry one scalar per experiment: no variance, so an
           above-threshold shift counts. *)
        let open Report.Json in
        let v1 id seconds =
          Obj
            [ ("schema", String "pgcc-bench-v1");
              ( "experiments",
                List [ Obj [ ("id", String id); ("seconds", Float seconds) ] ]
              ) ]
        in
        let a = load_run (v1 "T1" 10.0) and b = load_run (v1 "T1" 13.0) in
        Alcotest.(check int) "one sample" 1
          (List.length (List.hd a.Benchdiff.experiments).Benchdiff.samples);
        let r = Benchdiff.compare_runs ~wall_threshold:0.10 a b in
        Alcotest.(check bool) "regressed" true (Benchdiff.regressed r));
    Alcotest.test_case "a run never regresses against itself" `Quick (fun () ->
        let doc =
          bench_doc
            ~counters:[ ("decompressions", 4671); ("cache_hits", 760) ]
            [ ("T1", [ 10.0; 10.1 ]) ]
        in
        let a = load_run doc and b = load_run doc in
        let r = Benchdiff.compare_runs a b in
        Alcotest.(check bool) "clean" false (Benchdiff.regressed r);
        Alcotest.(check int) "counters compared" 2
          (List.length r.Benchdiff.counter_deltas));
    Alcotest.test_case "counter drift is a regression" `Quick (fun () ->
        let a =
          load_run
            (bench_doc ~counters:[ ("decompressions", 4671) ]
               [ ("T1", [ 10.0 ]) ])
        in
        let b =
          load_run
            (bench_doc ~counters:[ ("decompressions", 4700) ]
               [ ("T1", [ 10.0 ]) ])
        in
        let r = Benchdiff.compare_runs a b in
        Alcotest.(check bool) "drift flags" true (Benchdiff.regressed r);
        (* A loose counter threshold tolerates it. *)
        let r = Benchdiff.compare_runs ~counter_threshold:0.05 a b in
        Alcotest.(check bool) "tolerated" false (Benchdiff.regressed r));
    Alcotest.test_case "improvements never flag" `Quick (fun () ->
        let a = load_run (bench_doc [ ("T1", [ 10.0; 10.0 ]) ]) in
        let b = load_run (bench_doc [ ("T1", [ 5.0; 5.0 ]) ]) in
        let r = Benchdiff.compare_runs a b in
        Alcotest.(check bool) "faster is fine" false (Benchdiff.regressed r));
    Alcotest.test_case "unknown schemas are rejected" `Quick (fun () ->
        match Benchdiff.of_string "{\"schema\": \"pgcc-grid-v1\"}" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "write/parse round-trip through the renderer" `Quick
      (fun () ->
        let doc = bench_doc [ ("T1", [ 1.5; 2.5 ]); ("F6", [ 0.25 ]) ] in
        let r = load_run doc in
        let r' =
          match Benchdiff.of_string (Report.Json.to_string doc) with
          | Ok r -> r
          | Error msg -> Alcotest.failf "re-parse failed: %s" msg
        in
        Alcotest.(check bool) "round-trips" true (r = r');
        let rendered =
          Benchdiff.render r r' (Benchdiff.compare_runs r r')
        in
        Alcotest.(check bool) "renders a verdict" true
          (String.length rendered > 0));
  ]

(* ------------------------------------------------------------------ *)

let stats_tests =
  [
    Alcotest.test_case "mean, stddev and CI basics" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2.0
          (Report.Stats.mean [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 1e-9)) "sample stddev" 1.0
          (Report.Stats.stddev [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 1e-9)) "stddev of a singleton" 0.0
          (Report.Stats.stddev [ 7.0 ]);
        Alcotest.(check bool) "ci positive" true
          (Report.Stats.ci95 [ 1.0; 2.0; 3.0 ] > 0.0));
    Alcotest.test_case "welch separates distinct means" `Quick (fun () ->
        let xs = [ 10.0; 10.1; 9.9; 10.05 ] in
        let ys = [ 12.0; 12.1; 11.9; 12.05 ] in
        Alcotest.(check bool) "significant" true
          (Report.Stats.significant xs ys);
        Alcotest.(check bool) "same data insignificant" false
          (Report.Stats.significant xs xs));
    Alcotest.test_case "t table is monotone toward 1.96" `Quick (fun () ->
        Alcotest.(check bool) "df=1 largest" true
          (Report.Stats.t_crit95 1 > Report.Stats.t_crit95 5);
        Alcotest.(check bool) "df=5 above asymptote" true
          (Report.Stats.t_crit95 5 > 1.96);
        Alcotest.(check (float 1e-9)) "large df" 1.96
          (Report.Stats.t_crit95 1000));
  ]

(* ------------------------------------------------------------------ *)

let ledger_tests =
  [
    Alcotest.test_case "git_rev reads a 40-hex commit" `Quick (fun () ->
        (* The test binary runs from the build sandbox, but the repo root
           is the cwd's ancestor holding .git; dune runs tests in
           _build/default/test, so walk up. *)
        let rec find_root dir =
          if Sys.file_exists (Filename.concat dir ".git") then Some dir
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else find_root parent
        in
        match find_root (Sys.getcwd ()) with
        | None -> ()  (* Not a git checkout (e.g. a release tarball). *)
        | Some root -> (
          match Ledger.git_rev ~repo_root:root () with
          | None -> Alcotest.fail "expected a revision in a git checkout"
          | Some rev ->
            Alcotest.(check int) "length" 40 (String.length rev);
            Alcotest.(check bool) "hex" true
              (String.for_all
                 (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                 rev)));
    Alcotest.test_case "append creates and extends the history" `Quick
      (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "pgcc-ledger-%d" (Unix.getpid ()))
        in
        let doc = Report.Json.Obj [ ("schema", Report.Json.String "x") ] in
        (match Ledger.append ~dir doc with
        | Error msg -> Alcotest.failf "append failed: %s" msg
        | Ok path ->
          Alcotest.(check bool) "file exists" true (Sys.file_exists path));
        (match Ledger.append ~dir doc with
        | Error msg -> Alcotest.failf "second append failed: %s" msg
        | Ok path ->
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          let lines =
            String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
          in
          Alcotest.(check int) "two lines" 2 (List.length lines);
          List.iter
            (fun l ->
              match Report.Json.of_string l with
              | Ok _ -> ()
              | Error msg -> Alcotest.failf "unparseable line: %s" msg)
            lines);
        Sys.remove (Filename.concat dir Ledger.history_name);
        Unix.rmdir dir);
    Alcotest.test_case "timestamp is ISO-like UTC" `Quick (fun () ->
        let t = Ledger.timestamp () in
        Alcotest.(check int) "length" 20 (String.length t);
        Alcotest.(check char) "zulu" 'Z' t.[19];
        Alcotest.(check char) "date/time split" 'T' t.[10]);
  ]

(* ------------------------------------------------------------------ *)

let attrib_saved_of_rows rows ~total_cycles ~run_cycles =
  {
    Attrib.Saved.rows =
      List.map
        (fun (rid, decompressions, cycles, share) ->
          { Attrib.Saved.rid; decompressions; cycles; share })
        rows;
    total_decompressions =
      List.fold_left (fun acc (_, d, _, _) -> acc + d) 0 rows;
    total_cycles;
    run_cycles;
    params = [ ("workload", "synthetic") ];
  }

let attrib_diff_tests =
  [
    Alcotest.test_case "saved attributions round-trip through JSON" `Quick
      (fun () ->
        let a =
          attrib_saved_of_rows
            [ (0, 10, 4000, 0.8); (3, 2, 1000, 0.2) ]
            ~total_cycles:5000 ~run_cycles:(Some 20000)
        in
        let json =
          Report.Json.Obj
            [ ("schema", Report.Json.String "pgcc-attrib-v1");
              ( "params",
                Report.Json.Obj
                  [ ("workload", Report.Json.String "synthetic") ] );
              ("run_cycles", Report.Json.Int 20000);
              ("total_decompressions", Report.Json.Int 12);
              ("total_cycles", Report.Json.Int 5000);
              ( "regions",
                Report.Json.List
                  (List.map
                     (fun (r : Attrib.Saved.row) ->
                       Report.Json.Obj
                         [ ("rid", Report.Json.Int r.Attrib.Saved.rid);
                           ( "decompressions",
                             Report.Json.Int r.Attrib.Saved.decompressions );
                           ("cycles", Report.Json.Int r.Attrib.Saved.cycles);
                           ("share", Report.Json.Float r.Attrib.Saved.share)
                         ])
                     a.Attrib.Saved.rows) ) ]
        in
        match Attrib.Saved.of_json json with
        | Error msg -> Alcotest.failf "of_json: %s" msg
        | Ok b ->
          Alcotest.(check bool) "identical" true (a = b);
          Alcotest.(check (option (float 1e-9)))
            "overhead share" (Some 0.25)
            (Attrib.Saved.overhead_share b));
    Alcotest.test_case "the diff is signed and sorted by |delta|" `Quick
      (fun () ->
        let a =
          attrib_saved_of_rows
            [ (0, 10, 4000, 0.8); (1, 2, 1000, 0.2) ]
            ~total_cycles:5000 ~run_cycles:(Some 10000)
        in
        let b =
          attrib_saved_of_rows
            [ (0, 2, 500, 0.5); (2, 1, 500, 0.5) ]
            ~total_cycles:1000 ~run_cycles:(Some 10000)
        in
        let ds = Attrib.diff a b in
        Alcotest.(check (list int))
          "regions by |cycle delta|" [ 0; 1; 2 ]
          (List.map (fun d -> d.Attrib.drid) ds);
        let d0 = List.hd ds in
        Alcotest.(check int) "region 0 before" 4000 d0.Attrib.cycles_a;
        Alcotest.(check int) "region 0 after" 500 d0.Attrib.cycles_b;
        (* Region 1 only in A, region 2 only in B: zero-filled sides. *)
        let d1 = List.find (fun d -> d.Attrib.drid = 1) ds in
        Alcotest.(check int) "absent side" 0 d1.Attrib.cycles_b;
        let rendered = Attrib.render_diff a b in
        Alcotest.(check bool) "share shift rendered" true
          (String.length rendered > 0);
        (* 50% -> 10% overhead share must appear as a -40pp shift. *)
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "overall share line" true
          (contains rendered "50.0% -> 10.0% (-40.0pp)"));
  ]

(* ------------------------------------------------------------------ *)

let tracediff_tests =
  [
    Alcotest.test_case "chrome and jsonl exports profile identically" `Quick
      (fun () ->
        let tr = Obs.Trace.create ~capacity:64 () in
        let emit ts p = Obs.Trace.emit tr { Obs.Event.ts; payload = p } in
        emit (Obs.Event.Cycles 140)
          (Obs.Event.Decomp_end
             { region = 0; bits = 33; words = 7; cycles = 40 });
        emit (Obs.Event.Cycles 300)
          (Obs.Event.Decomp_end
             { region = 0; bits = 20; words = 7; cycles = 60 });
        emit (Obs.Event.Mono 10.25)
          (Obs.Event.Pass_end { name = "huffman"; elapsed_s = 0.25 });
        emit (Obs.Event.Cycles 400)
          (Obs.Event.Cache_evict { region = 0; slot = 0 });
        let of_ok = function
          | Ok p -> p
          | Error msg -> Alcotest.failf "parse failed: %s" msg
        in
        let from_chrome =
          of_ok
            (Tracediff.of_string
               (Report.Json.to_string (Obs.Trace.to_chrome tr)))
        in
        let from_jsonl =
          of_ok (Tracediff.of_string (Obs.Trace.to_jsonl tr))
        in
        Alcotest.(check bool) "same spans" true
          (from_chrome.Tracediff.spans = from_jsonl.Tracediff.spans);
        let decomp =
          List.assoc "decompress r0" from_chrome.Tracediff.spans
        in
        Alcotest.(check int) "decomp count" 2 decomp.Tracediff.count;
        Alcotest.(check (float 1e-6)) "decomp cycles-as-us" 100.0
          decomp.Tracediff.total_us;
        let pass = List.assoc "pass huffman" from_chrome.Tracediff.spans in
        Alcotest.(check (float 1e-3)) "pass us" 250_000.0
          pass.Tracediff.total_us;
        Alcotest.(check int) "headers agree" 4
          (Option.get from_jsonl.Tracediff.emitted);
        (* Self-diff is all zeros. *)
        List.iter
          (fun (d : Tracediff.delta) ->
            Alcotest.(check (float 0.0))
              (d.Tracediff.name ^ " zero delta")
              0.0
              (d.Tracediff.us_b -. d.Tracediff.us_a))
          (Tracediff.diff from_chrome from_jsonl));
    Alcotest.test_case "the diff surfaces the changed span" `Quick (fun () ->
        let mk cycles =
          let tr = Obs.Trace.create ~capacity:16 () in
          Obs.Trace.emit tr
            { Obs.Event.ts = Obs.Event.Cycles (100 + cycles);
              payload =
                Obs.Event.Decomp_end { region = 1; bits = 8; words = 2; cycles }
            };
          Obs.Trace.emit tr
            { Obs.Event.ts = Obs.Event.Mono 1.0;
              payload = Obs.Event.Pass_end { name = "cold"; elapsed_s = 0.1 }
            };
          match Tracediff.of_string (Obs.Trace.to_jsonl tr) with
          | Ok p -> p
          | Error msg -> Alcotest.failf "parse failed: %s" msg
        in
        let ds = Tracediff.diff (mk 40) (mk 90) in
        let top = List.hd ds in
        Alcotest.(check string) "biggest mover first" "decompress r1"
          top.Tracediff.name;
        Alcotest.(check (float 1e-6)) "signed delta" 50.0
          (top.Tracediff.us_b -. top.Tracediff.us_a);
        let rendered = Tracediff.render ~top:1 (mk 40) (mk 90) in
        Alcotest.(check bool) "truncation note" true
          (String.length rendered > 0));
  ]

let suite =
  [
    ("benchdiff", benchdiff_tests);
    ("benchdiff.stats", stats_tests);
    ("benchdiff.ledger", ledger_tests);
    ("benchdiff.attrib", attrib_diff_tests);
    ("benchdiff.tracediff", tracediff_tests);
  ]
