(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs bechamel
   microbenchmarks of the runtime-critical primitives.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- T1 F6         # selected experiments
     dune exec bench/main.exe -- micro         # microbenchmarks only
     dune exec bench/main.exe -- --json FILE   # also write machine-readable
                                               # wall-clock + key metrics
     dune exec bench/main.exe -- --jobs N      # engine pool size (default:
                                               # $JOBS, then domain count)
     dune exec bench/main.exe -- --no-cache    # skip the _cache/ store
     dune exec bench/main.exe -- --repeat N    # time each experiment N times
                                               # (for benchdiff significance)
     dune exec bench/main.exe -- --no-ledger   # skip the _bench/history.jsonl
                                               # run-ledger append           *)

let hr title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 78 '#')
    (Printf.sprintf "## %s" title)
    (String.make 78 '#')

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (bechamel): the primitives whose speed the paper's
   design section worries about — the canonical-Huffman DECODE loop, a
   whole-region decompression, and the simulator's dispatch rate. *)

let micro_tests () =
  let open Bechamel in
  (* A canonical code over a realistic opcode-like distribution. *)
  let freqs = List.init 48 (fun i -> (i, 1 + ((48 - i) * (48 - i)))) in
  let code = Canonical.of_freqs freqs in
  let symbols = List.init 512 (fun i -> i * 7 mod 48) in
  let encoded =
    let w = Bitio.Writer.create () in
    List.iter (Canonical.encode code w) symbols;
    Bitio.Writer.contents w
  in
  let decode_512 () =
    let r = Bitio.Reader.of_string encoded in
    for _ = 1 to 512 do
      ignore (Canonical.decode code r)
    done
  in
  (* The pre-table decoder (one bit per loop iteration), kept as the
     slow-path fallback — benched against the table-driven decode above. *)
  let decode_bitloop_512 () =
    let r = Bitio.Reader.of_string encoded in
    for _ = 1 to 512 do
      ignore (Canonical.decode_bitloop code r)
    done
  in
  (* A squashed workload for decompression and end-to-end timing. *)
  let prepared = Exp_data.prepare (List.hd Workloads.all) in
  let result =
    Exp_data.squash_result prepared
      { Squash.default_options with Squash.theta = 1.0 }
  in
  let sq = result.Squash.squashed in
  let biggest =
    Array.fold_left
      (fun best (img : Rewrite.region_image) ->
        match best with
        | Some (b : Rewrite.region_image) when b.Rewrite.buffer_words >= img.Rewrite.buffer_words ->
          best
        | _ -> Some img)
      None sq.Rewrite.images
    |> Option.get
  in
  let decompress_region () =
    ignore
      (Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
         ~bit_offset:sq.Rewrite.blob_offsets.(biggest.Rewrite.rid) ())
  in
  let huffman_build () = ignore (Canonical.of_freqs freqs) in
  [
    Test.make ~name:"canonical-decode-512sym" (Staged.stage decode_512);
    Test.make ~name:"canonical-bitloop-512sym" (Staged.stage decode_bitloop_512);
    Test.make ~name:"canonical-build-48sym" (Staged.stage huffman_build);
    Test.make
      ~name:(Printf.sprintf "decompress-region-%dw" biggest.Rewrite.buffer_words)
      (Staged.stage decompress_region);
  ]

(* The simulator's steady-state dispatch rate, measured over one long run
   (VM creation allocates the 16 MiB memory image, so per-run timing through
   bechamel would mostly measure allocation). *)
let vm_throughput () =
  let vm_prog =
    Minic.compile_exn
      "int main() { int i; int s; s = 0; for (i = 0; i < 2000000; i = i + 1) s = (s + i) ^ (s >> 3); return s & 255; }"
  in
  let vm_img = Layout.emit vm_prog in
  let vm = Vm.of_image ~fuel:100_000_000 vm_img ~input:"" in
  let t0 = Unix.gettimeofday () in
  let outcome = Vm.run vm in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-40s %8.1f M instr/s (%d instructions in %.2fs)\n"
    "vm dispatch rate" 
    (float_of_int outcome.Vm.icount /. dt /. 1e6)
    outcome.Vm.icount dt

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Printf.printf "%-40s %s\n" "benchmark" "time per run";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Printf.sprintf "%12.1f ns" est
        | Some [] | None -> "           n/a"
      in
      Printf.printf "%-40s %s\n" name ns)
    (List.sort compare rows);
  vm_throughput ();
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs = ref None and no_cache = ref false in
  let repeat = ref 1 and no_ledger = ref false in
  let json = ref None in
  let rec split_json acc = function
    | "--json" :: file :: rest ->
      json := Some file;
      split_json acc rest
    | "--json" :: [] ->
      prerr_endline "--json requires a file argument";
      exit 1
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := Some j;
        split_json acc rest
      | Some _ | None ->
        prerr_endline "--jobs requires a positive integer";
        exit 1)
    | "--jobs" :: [] ->
      prerr_endline "--jobs requires a positive integer";
      exit 1
    | "--repeat" :: n :: rest -> (
      match int_of_string_opt n with
      | Some r when r >= 1 ->
        repeat := r;
        split_json acc rest
      | Some _ | None ->
        prerr_endline "--repeat requires a positive integer";
        exit 1)
    | "--repeat" :: [] ->
      prerr_endline "--repeat requires a positive integer";
      exit 1
    | "--no-cache" :: rest ->
      no_cache := true;
      split_json acc rest
    | "--no-ledger" :: rest ->
      no_ledger := true;
      split_json acc rest
    | a :: rest -> split_json (a :: acc) rest
    | [] -> List.rev acc
  in
  let ids = split_json [] args in
  let json_file = !json in
  Exp_grid.set_jobs !jobs;
  (* One sink for the whole run: the engine emits job submit/start/finish
     spans into the trace from every worker domain, and each timing cell
     replays its runtime aggregates into the metrics registry. *)
  let obs = Obs.full () in
  Exp_grid.set_obs (Some obs);
  let cache = if !no_cache then None else Some (Cache.create ~obs ()) in
  Exp_data.set_cache cache;
  Printf.printf "engine: %d jobs; cache: %s\n%!" (Exp_grid.jobs ())
    (match cache with None -> "disabled" | Some c -> Cache.dir c);
  let requested =
    match ids with
    | _ :: _ -> ids
    | [] -> List.map fst Experiments.all @ [ "micro" ]
  in
  let t0 = Unix.gettimeofday () in
  let unknown = ref [] in
  let recorded = ref [] in
  let samples_by_id = ref [] in
  (* Metrics are drained once per experiment, after its last repetition,
     so with [--repeat n] each experiment's counters cover all n runs. *)
  let record id samples =
    samples_by_id := (id, samples) :: !samples_by_id;
    recorded :=
      Report.Json.Obj
        [ ("id", Report.Json.String id);
          ("seconds", Report.Json.Float (Report.Stats.mean samples));
          ( "samples",
            Report.Json.List
              (List.map (fun s -> Report.Json.Float s) samples) );
          ("metrics", Report.Json.Obj (Experiments.drain_metrics ())) ]
      :: !recorded
  in
  (* Time [f] [--repeat] times; only the first repetition's report is
     printed (later ones are warm re-measurements for the t-test). *)
  let timed_samples f =
    List.init !repeat (fun rep ->
        let start = Unix.gettimeofday () in
        let out = f () in
        let dt = Unix.gettimeofday () -. start in
        if rep = 0 then print_string out;
        dt)
  in
  List.iter
    (fun id ->
      match List.assoc_opt id Experiments.all with
      | Some f ->
        hr id;
        record id (timed_samples f);
        Printf.printf "[%s done at %.1fs]\n%!" id (Unix.gettimeofday () -. t0)
      | None ->
        if id = "micro" then begin
          hr "micro (bechamel)";
          record id
            (List.init !repeat (fun _ ->
                 let start = Unix.gettimeofday () in
                 run_micro ();
                 Unix.gettimeofday () -. start))
        end
        else unknown := id :: !unknown)
    requested;
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal time: %.1fs\n" total;
  (match cache with
  | None -> ()
  | Some c -> print_endline (Cache.render_stats c));
  (* A representative runtime-stats sample (first workload, θ=0.01),
     served from the memo/cache when warm.  Its scalar counters are
     deterministic at a fixed revision, which is what lets benchdiff
     treat any drift in them as a behaviour change. *)
  let runtime_sample =
    let wl = List.hd Workloads.all in
    let p = Exp_data.prepare wl in
    let r =
      Exp_data.squash_result p
        { Squash.default_options with Squash.theta = 0.01 }
    in
    let _, stats = Exp_data.timing_run p r in
    Report.Json.Obj
      [ ("workload", Report.Json.String wl.Workload.name);
        ("theta", Report.Json.Float 0.01);
        ("stats", Runtime.stats_to_json stats) ]
  in
  let provenance =
    [ ("schema", Report.Json.String "pgcc-bench-v2");
      ("timestamp", Report.Json.String (Ledger.timestamp ()));
      ( "rev",
        match Ledger.git_rev () with
        | Some r -> Report.Json.String r
        | None -> Report.Json.Null );
      ("jobs", Report.Json.Int (Exp_grid.jobs ()));
      ("repeat", Report.Json.Int !repeat);
      ("total_seconds", Report.Json.Float total) ]
  in
  let cache_field =
    match cache with
    | None -> []
    | Some c -> [ ("cache", Cache.stats_json c) ]
  in
  (match json_file with
  | None -> ()
  | Some file ->
    let doc =
      Report.Json.Obj
        (provenance @ cache_field
        @ [ ("experiments", Report.Json.List (List.rev !recorded));
            ( "metrics",
              match obs.Obs.metrics with
              | Some m -> Obs.Metrics.to_json m
              | None -> Report.Json.Null );
            ( "engine_spans",
              match obs.Obs.trace with
              | Some tr -> Obs.Trace.to_chrome tr
              | None -> Report.Json.Null );
            ("runtime_sample", runtime_sample) ])
    in
    let oc = open_out file in
    output_string oc (Report.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" file);
  (if not !no_ledger then
     (* The history line keeps only what benchdiff consumes — provenance,
        samples and the deterministic counters — so years of runs stay a
        few kilobytes. *)
     let slim =
       List.rev_map
         (fun (id, samples) ->
           Report.Json.Obj
             [ ("id", Report.Json.String id);
               ("seconds", Report.Json.Float (Report.Stats.mean samples));
               ( "samples",
                 Report.Json.List
                   (List.map (fun s -> Report.Json.Float s) samples) ) ])
         !samples_by_id
     in
     let entry =
       Report.Json.Obj
         (provenance @ cache_field
         @ [ ("experiments", Report.Json.List slim);
             ("runtime_sample", runtime_sample) ])
     in
     match Ledger.append entry with
     | Ok path -> Printf.printf "ledger: appended to %s\n" path
     | Error msg -> Printf.eprintf "ledger: append failed: %s\n" msg);
  match List.rev !unknown with
  | [] -> ()
  | ids ->
    Printf.eprintf "unknown experiment%s: %s\nvalid ids: %s micro\n"
      (if List.length ids > 1 then "s" else "")
      (String.concat ", " ids)
      (String.concat " " (List.map fst Experiments.all));
    exit 1
