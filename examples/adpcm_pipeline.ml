(* A domain walk-through on the speech-codec workload: compress the adpcm
   program, inspect what squash actually did — regions, entry stubs, the
   split-stream statistics — and watch a restore stub work when a cold call
   happens at run time.

     dune exec examples/adpcm_pipeline.exe                                   *)

let () =
  let wl = Option.get (Workloads.find "adpcm") in
  let prog, _ = Squeeze.run (Workload.compile wl) in
  let profile, outcome = Profile.collect prog ~input:(Workload.profiling_input wl) in
  Format.printf "profiled %s: %d dynamic instructions@." wl.Workload.name
    outcome.Vm.icount;

  let options = { Squash.default_options with Squash.theta = 1e-3 } in
  let r = Squash.run ~options prog profile in
  Format.printf "%a@.@." Squash.pp_summary r;

  (* Where did the space go? *)
  let b = Squash.breakdown r in
  Format.printf "breakdown (words): never-compressed %d, stubs %d, decompressor %d,@."
    b.Squash.never_compressed b.Squash.entry_stubs b.Squash.decompressor;
  Format.printf "  offset table %d, compressed %d, code tables %d, stub area %d, buffer %d@."
    b.Squash.offset_table b.Squash.compressed_code b.Squash.code_tables
    b.Squash.stub_area b.Squash.runtime_buffer;

  (* The split streams: how many distinct values each field type has. *)
  Format.printf "@.split streams (symbols / max codeword bits):@.";
  List.iter
    (fun (name, symbols, maxlen) ->
      Format.printf "  %-10s %4d symbols, %2.0f bits max@." name symbols maxlen)
    (Compress.stream_stats r.Squash.squashed.Rewrite.codes);

  (* The largest compressed region, disassembled from its own stream. *)
  let sq = r.Squash.squashed in
  let biggest =
    Array.fold_left
      (fun (best : Rewrite.region_image) (img : Rewrite.region_image) ->
        if img.Rewrite.buffer_words > best.Rewrite.buffer_words then img else best)
      sq.Rewrite.images.(0) sq.Rewrite.images
  in
  let instrs, { Compress.bits; _ } =
    Compress.decode_region sq.Rewrite.codes sq.Rewrite.blob
      ~bit_offset:sq.Rewrite.blob_offsets.(biggest.Rewrite.rid) ()
  in
  Format.printf "@.largest region: %d buffer words from %d compressed bits (%.2f bits/instr)@."
    biggest.Rewrite.buffer_words bits
    (float_of_int bits /. float_of_int (List.length instrs));
  Format.printf "first instructions of its decompressed image:@.";
  List.iteri
    (fun i ins -> if i < 6 then Format.printf "  %s@." (Instr.to_string ins))
    instrs;

  (* Run the timing input: different speech with loud bursts; the clipping
     paths were cold during training, so the decompressor fires. *)
  let timing = Workload.timing_input wl in
  let baseline = Vm.run (Vm.of_image (Layout.emit prog) ~input:timing) in
  let squashed_outcome, stats = Runtime.run sq ~input:timing in
  assert (squashed_outcome.Vm.output = baseline.Vm.output);
  assert (squashed_outcome.Vm.exit_code = baseline.Vm.exit_code);
  Format.printf
    "@.timing run verified: %d decompressions (%d bits decoded), %d restore \
     stubs created, %d reused, max %d live@."
    stats.Runtime.decompressions stats.Runtime.bits_decoded
    stats.Runtime.stub_creates stats.Runtime.stub_reuses
    stats.Runtime.max_live_stubs;
  Format.printf "cycles: %d vs baseline %d (%.3fx)@." squashed_outcome.Vm.cycles
    baseline.Vm.cycles
    (float_of_int squashed_outcome.Vm.cycles /. float_of_int baseline.Vm.cycles)
