(* Pass pipeline demo: drive the squash pipeline pass by pass instead of
   through Squash.run — trace every stage, validate the IR after each one,
   skip a pass, and emit the machine-readable stats.

     dune exec examples/pass_pipeline.exe *)

let source =
  {|
// Hot checksum loop; cold formatting and error paths.
int table[64];

int checksum(int n) {
  int i; int acc;
  acc = 7;
  for (i = 0; i < n; i = i + 1) acc = (acc * 31 + table[i & 63]) & 65535;
  return acc;
}

int format_report(int v) {
  putint(v / 1000);
  putint(v % 1000);
  return v;
}

int fail(int code) {
  putint(-code);
  exit(code);
  return 0;
}

int main() {
  int rounds; int i; int acc;
  rounds = getc();
  if (rounds < 0) fail(1);
  for (i = 0; i < 64; i = i + 1) table[i] = (i * 53) & 255;
  acc = 0;
  for (i = 0; i < rounds; i = i + 1) acc = acc + checksum(64);
  if (acc == 424242) format_report(acc);
  putint(acc);
  return 0;
}
|}

let () =
  let prog = fst (Squeeze.run (Minic.compile_exn source)) in
  let profile, _ = Profile.collect prog ~input:"\004" in

  (* 1. The standard pipeline, traced, with per-pass validation: exactly
     what `squashc squash --trace-passes --check-each` runs. *)
  print_endline "=== standard pipeline (traced, validated after every pass) ===";
  let state = Pass.init prog profile in
  let state, stats =
    Pipeline.execute ~check_each:true ~trace:print_endline
      ~passes:(Pipeline.of_options Pass.default_options) state
  in
  print_newline ();
  print_string (Pipeline.render_stats stats);

  (* 2. The same stats, machine-readable — what --stats-json writes. *)
  print_endline "\n=== stats as JSON ===";
  print_endline (Report.Json.to_string (Pipeline.stats_json stats));

  (* 3. Configurability: skip the unswitch pass by name.  The pipeline
     still validates ordering constraints, so reordering mistakes are
     caught up front rather than as corrupt images. *)
  print_endline "\n=== without the unswitch pass ===";
  let state2, _ =
    Pipeline.execute ~passes:(Pipeline.skip [ "unswitch" ] Pipeline.standard)
      (Pass.init prog profile)
  in
  let words st = Rewrite.total_words (Pass.get_squashed ~who:"demo" st) in
  Printf.printf "with unswitch: %d words; without: %d words\n" (words state)
    (words state2);
  (match
     Pipeline.execute ~passes:[ Pipeline.regions_pass ] (Pass.init prog profile)
   with
  | _ -> assert false
  | exception Invalid_argument msg ->
    Printf.printf "bad ordering rejected: %s\n" msg);

  (* 4. The squashed program still behaves identically. *)
  let sq = Pass.get_squashed ~who:"demo" state in
  let baseline = Vm.run (Vm.of_image (Layout.emit prog) ~input:"\004") in
  let outcome, rstats = Runtime.run sq ~input:"\004" in
  assert (outcome.Vm.output = baseline.Vm.output);
  Printf.printf "\nsquashed run: identical output, %d decompressions\n"
    rstats.Runtime.decompressions
