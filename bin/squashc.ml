(* squashc: the command-line front end to the whole pipeline.

     squashc compile prog.mc -o prog.s        MiniC -> SQ32 assembly
     squashc run prog.mc --input-file in.bin  execute on the simulator
     squashc profile prog.mc ... -o p.prof    collect a basic-block profile
                                              (repeat --input/--input-file to
                                              merge several training runs)
     squashc squash prog.mc --profile p.prof --theta 0.001
                                              compress; report sizes; verify
     squashc stats prog.mc                    static code statistics
     squashc workloads                        list the built-in benchmarks
     squashc grid gsm pgp --jobs 4            workload x theta x K sweep on
                                              the parallel engine (JSON/CSV)

   Programs may be MiniC (.mc) or SQ32 assembly (anything else); the name of
   a built-in workload (e.g. "gsm") may be used instead of a file, in which
   case its built-in profiling/timing inputs are the defaults. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Resolve a program argument: workload name, MiniC file, or assembly file. *)
let load_program arg =
  match Workloads.find arg with
  | Some wl -> Ok (Workload.compile wl, Some wl)
  | None ->
    if not (Sys.file_exists arg) then
      Error (Printf.sprintf "no such file or workload: %s" arg)
    else begin
      let text = read_file arg in
      if Filename.check_suffix arg ".mc" then
        match Minic.compile text with
        | Ok p -> Ok (p, None)
        | Error e ->
          Error (Printf.sprintf "%s:%s" arg (Minic.error_to_string e))
      else
        match Asm.parse_program text with
        | Ok p -> Ok (p, None)
        | Error e -> Error (Printf.sprintf "%s: %s" arg e)
    end

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("squashc: " ^ msg);
    exit 2

let prog_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROG" ~doc:"MiniC file (.mc), SQ32 assembly file, or built-in workload name.")

let input_args =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "input-file" ] ~docv:"FILE" ~doc:"Input byte stream for the program.")
  in
  let text =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ] ~docv:"TEXT" ~doc:"Literal input text for the program.")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing-input" ]
          ~doc:"For a built-in workload: use its timing input (default is the profiling input).")
  in
  Term.(
    const (fun file text timing -> (file, text, timing)) $ file $ text $ timing)

let resolve_input (file, text, timing) wl =
  match (file, text, wl) with
  | Some path, _, _ -> read_file path
  | None, Some t, _ -> t
  | None, None, Some wl ->
    if timing then Workload.timing_input wl else Workload.profiling_input wl
  | None, None, None -> ""

let squeeze_flag =
  Arg.(
    value & flag
    & info [ "no-squeeze" ] ~doc:"Skip the squeeze compaction pass.")

let prepare prog_name no_squeeze =
  let prog, wl = or_die (load_program prog_name) in
  let prog = if no_squeeze then prog else fst (Squeeze.run prog) in
  (prog, wl)

let cache_slots_arg =
  Arg.(
    value & opt int 1
    & info [ "cache-slots" ] ~docv:"N"
        ~doc:"Number of decompressed-region cache slots the runtime keeps \
              resident (default 1; each extra slot costs one buffer's worth \
              of RAM and saves re-inflations).")

(* --- compile -------------------------------------------------------- *)

let compile_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the assembly here (default stdout).")
  in
  let run prog_name no_squeeze out =
    let prog, _ = prepare prog_name no_squeeze in
    let text = Format.asprintf "%a" Asm.pp_program prog in
    match out with None -> print_string text | Some path -> write_file path text
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile MiniC to SQ32 assembly (squeezed by default).")
    Term.(const run $ prog_arg $ squeeze_flag $ out)

(* --- run ------------------------------------------------------------ *)

let run_cmd =
  let fuel =
    Arg.(
      value & opt int 2_000_000_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget before aborting.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Squash the program (collecting a profile first) and execute \
                the squashed image with tracing on, writing the event trace \
                here.  Pipeline pass spans, decompressions, buffer entries \
                and stub transitions are recorded; simulated-cycle and \
                wall-clock events land on separate tracks.")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:"Trace file format: $(b,chrome) (trace-event JSON, loadable \
                in Perfetto) or $(b,jsonl) (one event per line).")
  in
  let theta =
    Arg.(
      value & opt float 0.01
      & info [ "theta" ] ~docv:"T"
          ~doc:"Cold-code threshold for the $(b,--trace) squash (ignored \
                without $(b,--trace)).")
  in
  let k_bytes =
    Arg.(
      value & opt int 512
      & info [ "k" ] ~docv:"BYTES"
          ~doc:"Runtime-buffer bound for the $(b,--trace) squash.")
  in
  let run prog_name no_squeeze inputs fuel trace_out trace_format theta k_bytes
      cache_slots =
    let prog, wl = prepare prog_name no_squeeze in
    let input = resolve_input inputs wl in
    match trace_out with
    | None ->
      let outcome = Vm.run (Vm.of_image ~fuel (Layout.emit prog) ~input) in
      print_string outcome.Vm.output;
      Printf.eprintf "[exit %d, %d instructions, %d cycles]\n"
        outcome.Vm.exit_code outcome.Vm.icount outcome.Vm.cycles;
      exit outcome.Vm.exit_code
    | Some path ->
      let obs = Obs.full () in
      let profile_input =
        match wl with Some wl -> Workload.profiling_input wl | None -> input
      in
      let profile = fst (Profile.collect prog ~input:profile_input) in
      let options = { Squash.default_options with Squash.theta; k_bytes } in
      let result = Squash.run ~options ~obs prog profile in
      let outcome, stats =
        Runtime.run ~fuel ~slots:cache_slots ~obs result.Squash.squashed ~input
      in
      print_string outcome.Vm.output;
      let tr = Option.get obs.Obs.trace in
      (match trace_format with
      | `Chrome ->
        write_file path (Report.Json.to_string (Obs.Trace.to_chrome tr) ^ "\n")
      | `Jsonl -> write_file path (Obs.Trace.to_jsonl tr));
      Printf.eprintf
        "[exit %d, %d instructions, %d cycles, %d decompressions, %d cache \
         hits; %d events (%d dropped) -> %s]\n"
        outcome.Vm.exit_code outcome.Vm.icount outcome.Vm.cycles
        stats.Runtime.decompressions stats.Runtime.cache_hits
        (Obs.Trace.emitted tr) (Obs.Trace.dropped tr) path;
      exit outcome.Vm.exit_code
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a program on the SQ32 simulator (with $(b,--trace): \
             squash it and trace the squashed execution).")
    Term.(
      const run $ prog_arg $ squeeze_flag $ input_args $ fuel $ trace_out
      $ trace_format $ theta $ k_bytes $ cache_slots_arg)

(* --- profile --------------------------------------------------------- *)

let profile_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the profile here (default stdout).")
  in
  (* Unlike the other commands, profiling accepts repeated inputs: one
     profile is collected per training input and the results are merged
     (pointwise sum), the paper's multi-input training setup. *)
  let input_files =
    Arg.(
      value & opt_all string []
      & info [ "input-file" ] ~docv:"FILE"
          ~doc:"Input byte stream for a training run (repeatable; profiles \
                from all inputs are merged).")
  in
  let input_texts =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"TEXT"
          ~doc:"Literal input text for a training run (repeatable).")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing-input" ]
          ~doc:"For a built-in workload: use its timing input (default is \
                the profiling input).")
  in
  let sample_period =
    Arg.(
      value & opt int 0
      & info [ "sample-period" ] ~docv:"N"
          ~doc:"Collect a sampled profile: record about one in $(docv) \
                executed instructions and scale the estimate up (0, the \
                default, collects exact counts; 1 is exact via the sampler).")
  in
  let sample_seed =
    Arg.(
      value & opt int 1
      & info [ "sample-seed" ] ~docv:"S"
          ~doc:"Seed for the sampler's stride jitter; a fixed seed makes \
                sampled profiles byte-reproducible.")
  in
  let merge_files =
    Arg.(
      value & opt_all string []
      & info [ "merge" ] ~docv:"FILE"
          ~doc:"Merge a previously collected profile into the result \
                (repeatable), weighted by $(b,--merge-weight).")
  in
  let merge_weight =
    Arg.(
      value & opt float 1.0
      & info [ "merge-weight" ] ~docv:"W"
          ~doc:"Weight applied to each $(b,--merge) profile's counts.")
  in
  let decay_arg =
    Arg.(
      value & opt (some float) None
      & info [ "decay" ] ~docv:"F"
          ~doc:"Exponential aging factor in [0,1].  With $(b,--merge), it \
                ages each merged-in (old) profile before merging; without, \
                it ages the collected profile itself.")
  in
  let truncate_arg =
    Arg.(
      value & opt (some int) None
      & info [ "truncate" ] ~docv:"K"
          ~doc:"Keep only the $(docv) heaviest blocks of the final profile.")
  in
  let run prog_name no_squeeze input_files input_texts timing sample_period
      sample_seed merge_files merge_weight decay_arg truncate_arg out =
    let prog, wl = prepare prog_name no_squeeze in
    let inputs =
      match (List.map read_file input_files @ input_texts, wl) with
      | (_ :: _ as inputs), _ -> inputs
      | [], Some wl ->
        [ (if timing then Workload.timing_input wl
           else Workload.profiling_input wl) ]
      | [], None -> [ "" ]
    in
    let collect input =
      if sample_period > 0 then
        Profile.collect_sampled ~period:sample_period ~seed:sample_seed prog
          ~input
      else Profile.collect prog ~input
    in
    let profile =
      List.fold_left
        (fun acc input ->
          let profile, outcome = collect input in
          Printf.eprintf "[exit %d, %d instructions profiled]\n"
            outcome.Vm.exit_code outcome.Vm.icount;
          match acc with
          | None -> Some profile
          | Some acc -> Some (Profile.merge acc profile))
        None inputs
      |> Option.get
    in
    if List.length inputs > 1 then
      Format.eprintf "[merged %d training runs: %a]@." (List.length inputs)
        Profile.pp_summary profile;
    (* Lifecycle post-processing: age and fold in old profiles, then
       truncate — the order a production pipeline applies them. *)
    let old_profiles =
      List.map (fun path -> or_die (Profile.of_string (read_file path))) merge_files
    in
    let profile =
      match (old_profiles, decay_arg) with
      | [], None -> profile
      | [], Some f -> Profile_ops.decay profile ~factor:f
      | olds, _ ->
        List.fold_left
          (fun acc old ->
            let old =
              match decay_arg with
              | None -> old
              | Some f -> Profile_ops.decay old ~factor:f
            in
            Profile_ops.merge ~w:merge_weight acc old)
          profile olds
    in
    let profile =
      match truncate_arg with
      | None -> profile
      | Some keep -> Profile_ops.truncate_top profile ~keep
    in
    let text = Profile.to_string profile in
    match out with None -> print_string text | Some path -> write_file path text
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Collect a basic-block execution profile (merging the runs of \
             every given input), exactly or via periodic sampling, \
             optionally folding in and aging previously saved profiles.")
    Term.(
      const run $ prog_arg $ squeeze_flag $ input_files $ input_texts $ timing
      $ sample_period $ sample_seed $ merge_files $ merge_weight $ decay_arg
      $ truncate_arg $ out)

(* --- profdiff --------------------------------------------------------- *)

let profdiff_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A.prof" ~doc:"First profile file.")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B.prof" ~doc:"Second profile file.")
  in
  let max_distance =
    Arg.(
      value & opt (some float) None
      & info [ "max-distance" ] ~docv:"X"
          ~doc:"Exit with status 1 if the distance exceeds $(docv) (for CI \
                bounds).")
  in
  let movers =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Show the $(docv) blocks whose weight share moved the most.")
  in
  let run a_path b_path max_distance movers =
    let a = or_die (Profile.of_string (read_file a_path)) in
    let b = or_die (Profile.of_string (read_file b_path)) in
    let d = Profile_ops.distance a b in
    Format.printf "a: %a@.b: %a@." Profile.pp_summary a Profile.pp_summary b;
    Printf.printf "distance %.6f\noverlap %.6f\n" d (Profile_ops.overlap a b);
    (* Largest per-block movements of normalised weight share. *)
    let ta = float_of_int (max 1 (Profile.total_weight a)) in
    let tb = float_of_int (max 1 (Profile.total_weight b)) in
    let shares =
      let tbl = Hashtbl.create 512 in
      Profile.fold
        (fun key ~freq:_ ~weight () ->
          Hashtbl.replace tbl key (float_of_int weight /. ta, 0.0))
        a ();
      Profile.fold
        (fun key ~freq:_ ~weight () ->
          let sa, _ =
            Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl key)
          in
          Hashtbl.replace tbl key (sa, float_of_int weight /. tb))
        b ();
      Hashtbl.fold (fun key (sa, sb) acc -> (key, sa, sb) :: acc) tbl []
    in
    let sorted =
      List.sort
        (fun (ka, sa, sb) (kb, sa', sb') ->
          match compare (Float.abs (sb' -. sa')) (Float.abs (sb -. sa)) with
          | 0 -> compare ka kb
          | c -> c)
        shares
    in
    let t =
      Report.Table.create ~title:"Largest weight-share movements"
        [ ("Block", Report.Table.Left); ("share in A", Report.Table.Right);
          ("share in B", Report.Table.Right); ("Δ", Report.Table.Right) ]
    in
    List.iteri
      (fun i ((f, blk), sa, sb) ->
        if i < movers then
          Report.Table.add_row t
            [ Printf.sprintf "%s.%d" f blk;
              Report.Table.cell_percent ~decimals:2 sa;
              Report.Table.cell_percent ~decimals:2 sb;
              Printf.sprintf "%+.2f%%" (100.0 *. (sb -. sa)) ])
      sorted;
    print_string (Report.Table.render t);
    match max_distance with
    | Some bound when d > bound ->
      Printf.eprintf "squashc: distance %.6f exceeds bound %.6f\n" d bound;
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "profdiff"
       ~doc:"Compare two saved profiles: total-variation distance on \
             normalised block weights, plus the largest movers.")
    Term.(const run $ a_arg $ b_arg $ max_distance $ movers)

(* --- squash ----------------------------------------------------------- *)

let squash_cmd =
  let theta =
    Arg.(
      value & opt float 0.0
      & info [ "theta" ] ~docv:"T" ~doc:"Cold-code threshold in [0, 1].")
  in
  let k_bytes =
    Arg.(
      value & opt int 512
      & info [ "k" ] ~docv:"BYTES" ~doc:"Runtime buffer size bound.")
  in
  let profile_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Profile file (from $(b,squashc profile)); collected on the fly otherwise.")
  in
  let no_pack = Arg.(value & flag & info [ "no-pack" ] ~doc:"Disable region packing.") in
  let no_bsafe =
    Arg.(value & flag & info [ "no-buffer-safe" ] ~doc:"Disable the buffer-safe optimisation.")
  in
  let no_unswitch =
    Arg.(value & flag & info [ "no-unswitch" ] ~doc:"Disable jump-table unswitching.")
  in
  let sharp_bsafe =
    Arg.(
      value & flag
      & info [ "sharp-buffer-safe" ]
          ~doc:"Use the sharpened buffer-safe analysis: an indirect call \
                contributes its resolved candidate targets (constant \
                propagation, else the address-taken set) instead of \
                poisoning its whole call chain.")
  in
  let coder =
    let coder_conv =
      Arg.enum
        [ ("huffman", `Split_stream); ("mtf", `Split_stream_mtf);
          ("lzss", `Lzss); ("context", `Context) ]
    in
    Arg.(
      value & opt coder_conv `Split_stream
      & info [ "coder" ] ~docv:"CODER"
          ~doc:"Compression backend: $(b,huffman) (split-stream canonical \
                Huffman, the paper's scheme), $(b,mtf) (move-to-front \
                variant), $(b,lzss), or $(b,context) (order-1 \
                context-modeled split streams).")
  in
  let linear_regions =
    Arg.(
      value & flag
      & info [ "linear-regions" ]
          ~doc:"Use linear-scan region formation instead of depth-first growth.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Run the squashed program and check its behaviour against the original.")
  in
  let trace_passes =
    Arg.(
      value & flag
      & info [ "trace-passes" ]
          ~doc:"Print each pipeline pass as it runs (timing, size deltas, \
                summary), then the per-pass statistics table.")
  in
  let check_each =
    Arg.(
      value & flag
      & info [ "check-each" ]
          ~doc:"Validate the IR (and the squashed image, once built) after \
                every pipeline pass; a failure names the pass that broke an \
                invariant.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write per-pass timing and size statistics as JSON.")
  in
  let stream_bits =
    Arg.(
      value & flag
      & info [ "stream-bits" ]
          ~doc:"Print the per-stream compressed-bits breakdown \
                (bits/instruction over the compressed regions, code tables \
                included in the total).")
  in
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:"Run the whole-image static verifier over the finished image \
                (as pipeline pass $(b,lint)); exit 1 on any error-severity \
                diagnostic.")
  in
  let prove_flag =
    Arg.(
      value & flag
      & info [ "prove" ]
          ~doc:"Run the symbolic equivalence prover over the finished image \
                (as pipeline pass $(b,prove), two cache slots); exit 1 on \
                any unproved region.")
  in
  let run prog_name no_squeeze inputs theta k_bytes profile_file no_pack no_bsafe
      no_unswitch sharp_bsafe coder linear_regions verify cache_slots
      trace_passes check_each stats_json stream_bits lint prove =
    let prog, wl = prepare prog_name no_squeeze in
    let input = resolve_input inputs wl in
    let profile =
      match profile_file with
      | Some path -> or_die (Profile.of_string (read_file path))
      | None ->
        let p, _ = Profile.collect prog ~input in
        p
    in
    let options =
      {
        Squash.default_options with
        Squash.theta;
        k_bytes;
        pack = not no_pack;
        use_buffer_safe = not no_bsafe;
        sharp_buffer_safe = sharp_bsafe;
        unswitch = not no_unswitch;
        coder;
        regions_strategy = (if linear_regions then `Linear else `Dfs);
      }
    in
    let trace =
      if trace_passes then Some (fun line -> Printf.eprintf "squashc: %s\n%!" line)
      else None
    in
    let metrics = Obs.Metrics.create () in
    let obs = Obs.create ~metrics () in
    let result =
      try Squash.run ~options ~check_each ~lint ~prove ?trace ~obs prog profile
      with
      | Pipeline.Check_failed { pass; errors } ->
        Printf.eprintf "squashc: pass %S broke an invariant:\n" pass;
        List.iter (fun e -> Printf.eprintf "squashc:   %s\n" e) errors;
        exit 1
    in
    (match Check.check result.Squash.squashed with
    | Ok () -> ()
    | Error es ->
      List.iter (fun e -> Printf.eprintf "squashc: image check: %s\n" e) es;
      exit 1);
    Format.printf "%a@." Squash.pp_summary result;
    if trace_passes then print_string (Pipeline.render_stats result.Squash.stats);
    let region_streams () =
      Array.map
        (fun (img : Rewrite.region_image) -> img.Rewrite.stream)
        result.Squash.squashed.Rewrite.images
    in
    let coder_stream_bits () =
      Compress.stream_bits result.Squash.squashed.Rewrite.codes (region_streams ())
    in
    if stream_bits then begin
      let codes = result.Squash.squashed.Rewrite.codes in
      let per_stream = coder_stream_bits () in
      let instrs = Squash.compressed_instr_count result in
      let payload = List.fold_left (fun acc (_, b) -> acc + b) 0 per_stream in
      let tbl = Compress.table_bits codes in
      Format.printf "@.coder %s: per-stream bits over %d compressed instructions@."
        (Compress.coder_name codes) instrs;
      List.iter
        (fun (name, b) ->
          Format.printf "  %-10s %8d bits  %6.2f bits/instr@." name b
            (float_of_int b /. float_of_int (max 1 instrs)))
        per_stream;
      Format.printf "  %-10s %8d bits  %6.2f bits/instr@." "tables" tbl
        (float_of_int tbl /. float_of_int (max 1 instrs));
      Format.printf "  %-10s %8d bits  %6.2f bits/instr@." "total" (payload + tbl)
        (float_of_int (payload + tbl) /. float_of_int (max 1 instrs))
    end;
    let runtime_stats = ref None in
    if verify then begin
      let timing =
        match wl with Some wl -> Workload.timing_input wl | None -> input
      in
      let baseline = Vm.run (Vm.of_image (Layout.emit prog) ~input:timing) in
      let outcome, stats =
        Runtime.run ~slots:cache_slots ~obs result.Squash.squashed ~input:timing
      in
      runtime_stats := Some stats;
      if
        outcome.Vm.output = baseline.Vm.output
        && outcome.Vm.exit_code = baseline.Vm.exit_code
      then
        Format.printf
          "verified: identical behaviour; %d decompressions, %d cache hits, \
           %.2fx cycles@."
          stats.Runtime.decompressions stats.Runtime.cache_hits
          (float_of_int outcome.Vm.cycles /. float_of_int baseline.Vm.cycles)
      else begin
        Format.printf "VERIFICATION FAILED: behaviour diverged@.";
        exit 1
      end
    end;
    match stats_json with
    | None -> ()
    | Some path -> (
      let codes = result.Squash.squashed.Rewrite.codes in
      let doc =
        Report.Json.Obj
          ([ ("schema", Report.Json.String "pgcc-squash-stats-v4");
             ("coder", Report.Json.String (Compress.coder_name codes));
             ("table_bits", Report.Json.Int (Compress.table_bits codes));
             ("stream_bits",
              Report.Json.Obj
                (List.map
                   (fun (name, b) -> (name, Report.Json.Int b))
                   (coder_stream_bits ())));
             ("pipeline", Pipeline.stats_json result.Squash.stats);
             ("metrics", Obs.Metrics.to_json metrics) ]
          @
          match !runtime_stats with
          | None -> []
          | Some st -> [ ("runtime", Runtime.stats_to_json st) ])
      in
      try write_file path (Report.Json.to_string doc ^ "\n")
      with Sys_error msg ->
        Printf.eprintf "squashc: cannot write pass stats: %s\n" msg;
        exit 1)
  in
  Cmd.v
    (Cmd.info "squash" ~doc:"Profile-guided compression; report the footprint.")
    Term.(
      const run $ prog_arg $ squeeze_flag $ input_args $ theta $ k_bytes
      $ profile_file $ no_pack $ no_bsafe $ no_unswitch $ sharp_bsafe $ coder
      $ linear_regions $ verify $ cache_slots_arg $ trace_passes $ check_each
      $ stats_json $ stream_bits $ lint_flag $ prove_flag)

(* --- attrib ----------------------------------------------------------- *)

let attrib_cmd =
  let theta =
    Arg.(
      value & opt float 0.01
      & info [ "theta" ] ~docv:"T" ~doc:"Cold-code threshold in [0, 1].")
  in
  let k_bytes =
    Arg.(
      value & opt int 512
      & info [ "k" ] ~docv:"BYTES" ~doc:"Runtime buffer size bound.")
  in
  let profile_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Profile file (from $(b,squashc profile)); collected on the \
                fly otherwise.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the attribution rows and totals as JSON \
                (schema pgcc-attrib-v1, loadable by $(b,--compare)).")
  in
  let compare_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:"A saved attribution JSON (from a previous $(b,--json)) to \
                diff this run against: per-region signed cycle and share \
                deltas, with the saved run as side A.")
  in
  let run prog_name no_squeeze inputs theta k_bytes cache_slots profile_file
      json_out compare_file =
    let prog, wl = prepare prog_name no_squeeze in
    let input = resolve_input inputs wl in
    let profile =
      match profile_file with
      | Some path -> or_die (Profile.of_string (read_file path))
      | None ->
        let pinput =
          match wl with Some wl -> Workload.profiling_input wl | None -> input
        in
        fst (Profile.collect prog ~input:pinput)
    in
    let options = { Squash.default_options with Squash.theta; k_bytes } in
    let result = Squash.run ~options prog profile in
    let timing =
      match wl with Some wl -> Workload.timing_input wl | None -> input
    in
    let outcome, stats =
      Runtime.run ~slots:cache_slots result.Squash.squashed ~input:timing
    in
    let a = Attrib.compute ~profile result stats in
    print_string (Attrib.render a);
    Printf.printf
      "overhead: %d decompressions (%d cache hits), %d cycles (%.2f%% of %d \
       total cycles)\n"
      a.Attrib.total_decompressions stats.Runtime.cache_hits
      a.Attrib.total_cycles
      (if outcome.Vm.cycles > 0 then
         100.0 *. float_of_int a.Attrib.total_cycles
         /. float_of_int outcome.Vm.cycles
       else 0.0)
      outcome.Vm.cycles;
    let params =
      [ ("prog", Report.Json.String prog_name);
        ("theta", Report.Json.Float theta);
        ("k_bytes", Report.Json.Int k_bytes);
        ("slots", Report.Json.Int cache_slots) ]
    in
    (match json_out with
    | None -> ()
    | Some path ->
      write_file path
        (Report.Json.to_string
           (Attrib.to_json ~params ~run_cycles:outcome.Vm.cycles a)
        ^ "\n"));
    match compare_file with
    | None -> ()
    | Some path -> (
      match Attrib.Saved.load_file path with
      | Error msg ->
        Printf.eprintf "squashc: %s\n" msg;
        exit 1
      | Ok saved ->
        let here =
          Attrib.to_saved ~run_cycles:outcome.Vm.cycles
            ~params:
              [ ("prog", prog_name);
                ("theta", Printf.sprintf "%g" theta);
                ("k_bytes", string_of_int k_bytes);
                ("slots", string_of_int cache_slots) ]
            a
        in
        print_newline ();
        print_string (Attrib.render_diff saved here))
  in
  Cmd.v
    (Cmd.info "attrib"
       ~doc:"Per-region runtime-overhead attribution: squash, run the \
             timing input, and break the decompression cycles down by \
             region (optionally diffed against a saved run).")
    Term.(
      const run $ prog_arg $ squeeze_flag $ input_args $ theta $ k_bytes
      $ cache_slots_arg $ profile_file $ json_out $ compare_file)

(* --- stats ------------------------------------------------------------ *)

let stats_cmd =
  let run prog_name =
    let prog, _ = or_die (load_program prog_name) in
    let input = Squeeze.remove_unreachable prog in
    let squeezed, st = Squeeze.run prog in
    Printf.printf "functions:            %d\n" (List.length prog.Prog.funcs);
    Printf.printf "instructions (raw):   %d\n" (Prog.instr_count prog);
    Printf.printf "instructions (input): %d\n" (Prog.instr_count input);
    Printf.printf "instructions (squeezed): %d\n" (Prog.instr_count squeezed);
    Format.printf "%a@." Squeeze.pp_stats st
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Static code statistics before/after squeeze.")
    Term.(const run $ prog_arg)

(* --- grid ------------------------------------------------------------- *)

let grid_cmd =
  let workloads_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Built-in workloads to sweep (default: all).")
  in
  let thetas =
    Arg.(
      value
      & opt (list float) Exp_data.theta_grid
      & info [ "theta" ] ~docv:"T,T,..." ~doc:"Cold-code thresholds to sweep.")
  in
  let ks =
    Arg.(
      value
      & opt (list int) [ 512 ]
      & info [ "k" ] ~docv:"B,B,..." ~doc:"Runtime-buffer bounds to sweep.")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:"Also run each squashed cell on its timing input (cycles, \
                decompressions).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Engine pool size (default: \\$JOBS, then the recommended \
                domain count).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Do not read or write the persistent cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Persistent cache directory.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write per-cell results as JSON.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-cell results as CSV.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "engine-stats" ]
          ~doc:"Print the per-job wall-clock table after the grid.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Trace the grid run into sharded per-domain sinks (engine \
                job spans, pipeline pass spans, cache latencies) and write \
                the deterministic merged export here.")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:"Trace file format: $(b,chrome) or $(b,jsonl).")
  in
  let run names thetas ks timing cache_slots jobs no_cache cache_dir json_out
      csv_out stats_flag trace_out trace_format =
    let wls =
      match names with
      | [] -> Workloads.all
      | names ->
        List.map
          (fun n ->
            match Workloads.find n with
            | Some wl -> wl
            | None ->
              prerr_endline
                ("squashc: no such workload: " ^ n ^ " (see squashc workloads)");
              exit 2)
          names
    in
    let obs =
      match trace_out with
      | None -> None
      | Some _ ->
        (* One shard per worker domain plus the submitting main domain, so
           the sink's fast path stays uncontended whatever the host's core
           count says. *)
        let pool = (match jobs with Some j -> j | None -> Exp_grid.jobs ()) in
        Some (Obs.full ~shards:(pool + 1) ())
    in
    let cache =
      if no_cache then None else Some (Cache.create ~dir:cache_dir ?obs ())
    in
    Exp_data.set_cache cache;
    Exp_grid.set_obs obs;
    (* Workload-innermost order so the first [jobs] cells touch distinct
       workloads and the prepare stages parallelise. *)
    let cells =
      List.concat_map
        (fun k ->
          List.concat_map
            (fun theta ->
              List.map
                (fun wl ->
                  Exp_grid.cell ~timing ~slots:cache_slots wl
                    { Squash.default_options with Squash.theta; k_bytes = k })
                wls)
            thetas)
        ks
    in
    let results, stats = Exp_grid.run ?jobs cells in
    print_string (Exp_grid.render_table results);
    if stats_flag then print_string (Engine.render_stats stats)
    else
      Printf.printf
        "engine: %d cells on %d workers in %.2fs (busy %.2fs, %d failed)\n"
        stats.Engine.submitted stats.Engine.pool stats.Engine.wall_s
        stats.Engine.busy_s stats.Engine.failed;
    (match cache with
    | None -> ()
    | Some c -> print_endline (Cache.render_stats c));
    (match (trace_out, obs) with
    | Some path, Some o ->
      let tr = Option.get o.Obs.trace in
      (match trace_format with
      | `Chrome ->
        write_file path (Report.Json.to_string (Obs.Trace.to_chrome tr) ^ "\n")
      | `Jsonl -> write_file path (Obs.Trace.to_jsonl tr));
      let per_shard =
        Array.to_list (Obs.Trace.shard_stats tr)
        |> List.mapi (fun sid (e, d) -> Printf.sprintf "%d:%d/%d" sid e d)
      in
      Printf.printf "trace: %d events (%d dropped) on %d shards [%s] -> %s\n"
        (Obs.Trace.emitted tr) (Obs.Trace.dropped tr)
        (Obs.Trace.shard_count tr)
        (String.concat " " per_shard)
        path
    | _ -> ());
    let doc =
      Report.Json.Obj
        ([ ("schema", Report.Json.String "pgcc-grid-v1");
           ("engine", Engine.stats_json stats) ]
        @ (match cache with
          | None -> []
          | Some c -> [ ("cache", Cache.stats_json c) ])
        @ [ ("cells", Exp_grid.to_json results) ])
    in
    (match json_out with
    | None -> ()
    | Some path -> write_file path (Report.Json.to_string doc ^ "\n"));
    (match csv_out with
    | None -> ()
    | Some path -> write_file path (Exp_grid.to_csv results));
    match Exp_grid.failures results with
    | [] -> ()
    | fs ->
      List.iter
        (fun e -> prerr_endline ("squashc: " ^ Engine.error_to_string e))
        fs;
      exit 1
  in
  Cmd.v
    (Cmd.info "grid"
       ~doc:"Run a workload x theta x K sweep on the parallel experiment \
             engine.")
    Term.(
      const run $ workloads_arg $ thetas $ ks $ timing $ cache_slots_arg $ jobs
      $ no_cache $ cache_dir $ json_out $ csv_out $ stats_flag $ trace_out
      $ trace_format)

(* --- benchdiff -------------------------------------------------------- *)

let benchdiff_cmd =
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A.json" ~doc:"Baseline run (bench --json output).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B.json" ~doc:"Candidate run to compare against A.")
  in
  let threshold =
    Arg.(
      value & opt float 0.10
      & info [ "threshold" ] ~docv:"REL"
          ~doc:"Relative wall-clock slowdown above which an experiment is \
                flagged (0.10 = 10% slower); statistical significance is \
                still required when both runs carry repeated samples.")
  in
  let counter_threshold =
    Arg.(
      value & opt float 0.0
      & info [ "counter-threshold" ] ~docv:"REL"
          ~doc:"Relative drift tolerated in the deterministic runtime \
                counters (default 0: any drift flags).")
  in
  let run file_a file_b threshold counter_threshold =
    let load f =
      match Benchdiff.load_file f with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "squashc: %s\n" msg;
        exit 2
    in
    let a = load file_a and b = load file_b in
    let report =
      Benchdiff.compare_runs ~wall_threshold:threshold ~counter_threshold a b
    in
    print_string (Benchdiff.render a b report);
    if Benchdiff.regressed report then exit 1
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:"Compare two benchmark runs with repeated-sample statistics; \
             exit 1 on a significant regression (for CI gates).")
    Term.(const run $ file_a $ file_b $ threshold $ counter_threshold)

(* --- tracediff -------------------------------------------------------- *)

let tracediff_cmd =
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"Baseline trace (chrome or jsonl export).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Candidate trace to compare against A.")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N"
          ~doc:"Show only the N largest duration deltas (0 = all).")
  in
  let run file_a file_b top =
    let load f =
      match Tracediff.load_file f with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "squashc: %s\n" msg;
        exit 2
    in
    let a = load file_a and b = load file_b in
    let top = if top <= 0 then None else Some top in
    print_string (Tracediff.render ?top a b)
  in
  Cmd.v
    (Cmd.info "tracediff"
       ~doc:"Diff the span profiles of two exported traces: per span name, \
             signed count and duration deltas.")
    Term.(const run $ file_a $ file_b $ top)

(* --- lint ------------------------------------------------------------- *)

let lint_cmd =
  let workloads_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Built-in workloads to lint (default: all).")
  in
  let thetas =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.01 ]
      & info [ "theta" ] ~docv:"T,T,..."
          ~doc:"Cold-code thresholds to build and verify at.")
  in
  let k_bytes =
    Arg.(
      value & opt int 512
      & info [ "k" ] ~docv:"BYTES" ~doc:"Runtime buffer size bound.")
  in
  let sharp =
    Arg.(
      value & flag
      & info [ "sharp-buffer-safe" ]
          ~doc:"Build the images with the sharpened buffer-safe analysis \
                (the verifier always checks unchanged calls against it, so \
                both builds must lint clean).")
  in
  let coder =
    let coder_conv =
      Arg.enum
        [ ("huffman", `Split_stream); ("mtf", `Split_stream_mtf);
          ("lzss", `Lzss); ("context", `Context) ]
    in
    Arg.(
      value & opt coder_conv `Split_stream
      & info [ "coder" ] ~docv:"CODER"
          ~doc:"Compression backend to build (and stream-verify) the images \
                with: $(b,huffman), $(b,mtf), $(b,lzss), or $(b,context).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write per-image diagnostics and safe-call counts as JSON.")
  in
  let run names thetas k_bytes sharp coder json_out =
    let wls =
      match names with
      | [] -> Workloads.all
      | names ->
        List.map
          (fun n ->
            match Workloads.find n with
            | Some wl -> wl
            | None ->
              prerr_endline
                ("squashc: no such workload: " ^ n ^ " (see squashc workloads)");
              exit 2)
          names
    in
    let t =
      Report.Table.create ~title:"squashc lint"
        [ ("Program", Report.Table.Left); ("theta", Report.Table.Right);
          ("errors", Report.Table.Right); ("warnings", Report.Table.Right);
          ("safe calls (cons)", Report.Table.Right);
          ("safe calls (sharp)", Report.Table.Right);
          ("delta", Report.Table.Right) ]
    in
    let any_errors = ref false in
    let cells = ref [] in
    List.iter
      (fun (wl : Workload.t) ->
        let prog = fst (Squeeze.run (Workload.compile wl)) in
        let profile =
          fst (Profile.collect prog ~input:(Workload.profiling_input wl))
        in
        List.iter
          (fun theta ->
            let options =
              {
                Squash.default_options with
                Squash.theta;
                k_bytes;
                sharp_buffer_safe = sharp;
                coder;
              }
            in
            let result = Squash.run ~options prog profile in
            let sq = result.Squash.squashed in
            let diags = Verify.run sq in
            let nerrors = List.length (Verify.errors diags) in
            let nwarnings = List.length diags - nerrors in
            if nerrors > 0 then any_errors := true;
            (* What the sharpening buys on this image: Section 6.1 safe
               call sites under each analysis, over the same regions. *)
            let p = sq.Rewrite.prog in
            let regions = sq.Rewrite.regions in
            let has_compressed fname =
              match Prog.find_func p fname with
              | None -> false
              | Some f ->
                let any = ref false in
                Array.iteri
                  (fun i _ ->
                    if Regions.block_region regions fname i <> None then
                      any := true)
                  f.Prog.Func.blocks;
                !any
            in
            let in_region f b = Regions.block_region regions f b <> None in
            let safe_calls analysis =
              let `Safe_calls sc, `Direct_calls _, `Indirect_calls _ =
                Buffer_safe.stats p analysis ~in_region
              in
              sc
            in
            let c_cons = safe_calls (Buffer_safe.analyze p ~has_compressed) in
            let c_sharp =
              safe_calls (Buffer_safe.analyze_sharp p ~has_compressed)
            in
            Report.Table.add_row t
              [ wl.Workload.name; Printf.sprintf "%g" theta;
                string_of_int nerrors; string_of_int nwarnings;
                string_of_int c_cons; string_of_int c_sharp;
                Printf.sprintf "%+d" (c_sharp - c_cons) ];
            cells := (wl.Workload.name, theta, diags, c_cons, c_sharp) :: !cells)
          thetas)
      wls;
    print_string (Report.Table.render t);
    List.iter
      (fun (name, theta, diags, _, _) ->
        if diags <> [] then begin
          Printf.printf "%s @ theta=%g:\n" name theta;
          print_string (Verify.render diags)
        end)
      (List.rev !cells);
    (match json_out with
    | None -> ()
    | Some path ->
      let doc =
        Report.Json.Obj
          [ ("schema", Report.Json.String "pgcc-lint-v1");
            ( "cells",
              Report.Json.List
                (List.rev_map
                   (fun (name, theta, diags, c_cons, c_sharp) ->
                     Report.Json.Obj
                       [ ("workload", Report.Json.String name);
                         ("theta", Report.Json.Float theta);
                         ( "errors",
                           Report.Json.Int (List.length (Verify.errors diags))
                         );
                         ( "warnings",
                           Report.Json.Int
                             (List.length diags
                             - List.length (Verify.errors diags)) );
                         ("safe_calls_conservative", Report.Json.Int c_cons);
                         ("safe_calls_sharp", Report.Json.Int c_sharp);
                         ("diags", Verify.to_json diags) ])
                   !cells) ) ]
      in
      write_file path (Report.Json.to_string doc ^ "\n"));
    if !any_errors then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify squashed images: entry stubs, dangling \
             transfers into removed regions, stub-register liveness, and \
             buffer-safety of unchanged calls.  Exits 1 on any \
             error-severity diagnostic.")
    Term.(const run $ workloads_arg $ thetas $ k_bytes $ sharp $ coder $ json_out)

(* --- prove -------------------------------------------------------------- *)

let prove_cmd =
  let workloads_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Built-in workloads to prove (default: all).")
  in
  let thetas =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.001; 0.01; 1.0 ]
      & info [ "theta" ] ~docv:"T,T,..."
          ~doc:"Cold-code thresholds to build and prove at.")
  in
  let slots_list =
    Arg.(
      value
      & opt (list int) [ 1; 4 ]
      & info [ "slots" ] ~docv:"N,N,..."
          ~doc:"Cache-slot counts to prove each image for (every slot's \
                displacement rebias is checked).")
  in
  let k_bytes =
    Arg.(
      value & opt int 512
      & info [ "k" ] ~docv:"BYTES" ~doc:"Runtime buffer size bound.")
  in
  let coder =
    let coder_conv =
      Arg.enum
        [ ("huffman", `Split_stream); ("mtf", `Split_stream_mtf);
          ("lzss", `Lzss); ("context", `Context) ]
    in
    Arg.(
      value & opt coder_conv `Split_stream
      & info [ "coder" ] ~docv:"CODER"
          ~doc:"Compression backend to build (and decode through) the \
                images: $(b,huffman), $(b,mtf), $(b,lzss), or $(b,context).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write per-image proof reports as JSON.")
  in
  let run names thetas slots_list k_bytes coder json_out =
    let wls =
      match names with
      | [] -> Workloads.all
      | names ->
        List.map
          (fun n ->
            match Workloads.find n with
            | Some wl -> wl
            | None ->
              prerr_endline
                ("squashc: no such workload: " ^ n ^ " (see squashc workloads)");
              exit 2)
          names
    in
    let t =
      Report.Table.create ~title:"squashc prove"
        [ ("Program", Report.Table.Left); ("theta", Report.Table.Right);
          ("slots", Report.Table.Right); ("regions", Report.Table.Right);
          ("proved", Report.Table.Right); ("stubs", Report.Table.Right);
          ("conservative", Report.Table.Right);
          ("unproved", Report.Table.Right); ("time (s)", Report.Table.Right) ]
    in
    let any_failures = ref false in
    let cells = ref [] in
    List.iter
      (fun (wl : Workload.t) ->
        let prog = fst (Squeeze.run (Workload.compile wl)) in
        let profile =
          fst (Profile.collect prog ~input:(Workload.profiling_input wl))
        in
        List.iter
          (fun theta ->
            let options =
              { Squash.default_options with Squash.theta; k_bytes; coder }
            in
            let result = Squash.run ~options prog profile in
            let sq = result.Squash.squashed in
            List.iter
              (fun slots ->
                let t0 = Unix.gettimeofday () in
                let r = Prove.run ~slots sq in
                let dt = Unix.gettimeofday () -. t0 in
                if r.Prove.failures <> [] then any_failures := true;
                Report.Table.add_row t
                  [ wl.Workload.name; Printf.sprintf "%g" theta;
                    string_of_int slots; string_of_int r.Prove.regions;
                    Printf.sprintf "%d/%d" r.Prove.proved r.Prove.blocks;
                    string_of_int r.Prove.stubs;
                    string_of_int r.Prove.conservative;
                    string_of_int (List.length r.Prove.failures);
                    Printf.sprintf "%.3f" dt ];
                cells := (wl.Workload.name, theta, slots, r, dt) :: !cells)
              slots_list)
          thetas)
      wls;
    print_string (Report.Table.render t);
    List.iter
      (fun (name, theta, slots, r, _) ->
        if r.Prove.failures <> [] then begin
          Printf.printf "%s @ theta=%g, slots=%d:\n" name theta slots;
          print_endline (Prove.render r)
        end)
      (List.rev !cells);
    (match json_out with
    | None -> ()
    | Some path ->
      let doc =
        Report.Json.Obj
          [ ("schema", Report.Json.String "pgcc-prove-v1");
            ( "cells",
              Report.Json.List
                (List.rev_map
                   (fun (name, theta, slots, r, dt) ->
                     Report.Json.Obj
                       [ ("workload", Report.Json.String name);
                         ("theta", Report.Json.Float theta);
                         ("slots", Report.Json.Int slots);
                         ("seconds", Report.Json.Float dt);
                         ("report", Prove.report_json r) ])
                   !cells) ) ]
      in
      write_file path (Report.Json.to_string doc ^ "\n"));
    if !any_failures then exit 1
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Translation validation: symbolically execute every compressed \
             region block and its materialised counterpart (per cache slot) \
             and prove that registers, memory effects and exit targets \
             match.  Exits 1 on any unproved region, printing the \
             divergence trace.")
    Term.(
      const run $ workloads_arg $ thetas $ slots_list $ k_bytes $ coder
      $ json_out)

(* --- workloads ---------------------------------------------------------- *)

let workloads_cmd =
  let run () =
    List.iter
      (fun (wl : Workload.t) ->
        Printf.printf "%-10s %s\n" wl.Workload.name wl.Workload.description)
      Workloads.all
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in benchmark workloads.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "squashc" ~version:"1.0.0"
       ~doc:"Profile-guided code compression for the SQ32 embedded target.")
    [ compile_cmd; run_cmd; profile_cmd; profdiff_cmd; squash_cmd; attrib_cmd;
      stats_cmd;
      grid_cmd; benchdiff_cmd; tracediff_cmd; lint_cmd; prove_cmd;
      workloads_cmd ]

let () = exit (Cmd.eval main)
