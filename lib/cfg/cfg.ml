module Regset = struct
  type t = int

  let empty = 0
  let add r s = if r = Reg.zero then s else s lor (1 lsl r)
  let mem r s = s land (1 lsl r) <> 0
  let union a b = a lor b
  let diff a b = a land lnot b
  let of_list rs = List.fold_left (fun s r -> add r s) empty rs

  let elements s =
    List.filter (fun r -> mem r s) (List.init Reg.count Fun.id)

  let pp ppf s =
    Format.fprintf ppf "{%s}"
      (String.concat ", " (List.map Reg.name (elements s)))
end

let preds (f : Prog.Func.t) =
  let n = Array.length f.blocks in
  let p = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter
      (fun s -> if s >= 0 && s < n then p.(s) <- i :: p.(s))
      (Prog.successors f i)
  done;
  Array.map List.rev p

let reachable (f : Prog.Func.t) =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let rec go i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (Prog.successors f i)
    end
  in
  go 0;
  seen

let dfs_order (f : Prog.Func.t) =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      order := i :: !order;
      List.iter go (Prog.successors f i)
    end
  in
  go 0;
  List.rev !order

(* Caller-saved registers clobbered by any call. *)
let caller_saved =
  Regset.of_list
    (Reg.rv :: Reg.ra :: (Reg.temps @ Reg.args))
  |> Regset.add Reg.stub_scratch

let arg_regs = Regset.of_list Reg.args
let syscall_args = Regset.of_list [ 16; 17; 18 ]

let operand_uses = function
  | Instr.Reg r -> Regset.add r Regset.empty
  | Instr.Imm _ -> Regset.empty

let instr_defs_uses (ins : Instr.t) =
  let open Regset in
  match ins with
  | Instr.Sys _ -> (add Reg.rv empty, syscall_args)
  | Instr.Nop | Instr.Sentinel -> (empty, empty)
  | Instr.Lda { ra; rb; _ } | Instr.Ldah { ra; rb; _ } -> (add ra empty, add rb empty)
  | Instr.Opr { ra; rb; rc; _ } ->
    (add rc empty, union (add ra empty) (operand_uses rb))
  | Instr.Mem { op = Instr.Ldw | Instr.Ldb; ra; rb; _ } -> (add ra empty, add rb empty)
  | Instr.Mem { op = Instr.Stw | Instr.Stb; ra; rb; _ } ->
    (empty, union (add ra empty) (add rb empty))
  | Instr.Cbr { ra; _ } -> (empty, add ra empty)
  | Instr.Br { ra; _ } | Instr.Bsr { ra; _ } | Instr.Bsrx { ra; _ } -> (add ra empty, empty)
  | Instr.Jmp { ra; rb; _ } | Instr.Jsr { ra; rb; _ } | Instr.Ret { ra; rb; _ } ->
    (add ra empty, add rb empty)

let item_defs_uses = function
  | Prog.Instr ins -> instr_defs_uses ins
  | Prog.Load_addr (r, _) -> (Regset.add r Regset.empty, Regset.empty)

let return_uses =
  Regset.union
    (Regset.of_list (Reg.rv :: Reg.sp :: Reg.saved))
    Regset.empty

let term_defs_uses (t : Prog.term) =
  let open Regset in
  match t with
  | Prog.Fallthrough _ | Prog.Jump _ -> (empty, empty)
  | Prog.Branch (_, ra, _, _) -> (empty, add ra empty)
  | Prog.Call { ra; _ } -> (union caller_saved (add ra empty), arg_regs)
  | Prog.Call_indirect { ra; rb; _ } ->
    (union caller_saved (add ra empty), add rb arg_regs)
  | Prog.Jump_indirect { rb; _ } -> (empty, add rb empty)
  | Prog.Return { rb } -> (empty, add rb return_uses)
  | Prog.No_return -> (empty, syscall_args)

type liveness = { live_in : Regset.t array; live_out : Regset.t array }

let block_transfer (b : Prog.Block.t) live_out =
  let apply (defs, uses) live = Regset.union uses (Regset.diff live defs) in
  let after_items = apply (term_defs_uses b.term) live_out in
  List.fold_right (fun item live -> apply (item_defs_uses item) live) b.items after_items

let liveness (f : Prog.Func.t) =
  let n = Array.length f.blocks in
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let p = preds f in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Regset.union acc live_in.(s))
          Regset.empty (Prog.successors f i)
      in
      let inn = block_transfer f.blocks.(i) out in
      if out <> live_out.(i) || inn <> live_in.(i) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  ignore p;
  { live_in; live_out }

let free_regs_at_entry lv i =
  let live = lv.live_in.(i) in
  let candidates =
    Reg.stub_scratch
    :: List.filter
         (fun r -> r <> Reg.stub_scratch)
         (List.init Reg.count Fun.id)
  in
  List.filter
    (fun r ->
      r <> Reg.zero && r <> Reg.sp && not (Regset.mem r live))
    candidates

module Callgraph = struct
  type info = {
    callees : string list;
    mutable callers : string list;
    has_indirect : bool;
    mutable indirect_callees : string list;
        (* resolved indirect-call candidates, recorded by the analysis
           layer (Consts.annotate_callgraph); empty until then *)
  }

  type t = { info : (string, info) Hashtbl.t; taken : (string, unit) Hashtbl.t }

  let of_prog (p : Prog.t) =
    let info = Hashtbl.create 64 in
    let taken = Hashtbl.create 16 in
    List.iter
      (fun (f : Prog.Func.t) ->
        let callees = ref [] in
        let has_indirect = ref false in
        Array.iter
          (fun (b : Prog.Block.t) ->
            List.iter
              (function
                | Prog.Load_addr (_, Prog.Func_addr g) -> Hashtbl.replace taken g ()
                | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
              b.items;
            match b.term with
            | Prog.Call { callee; _ } -> callees := callee :: !callees
            | Prog.Call_indirect _ -> has_indirect := true
            | Prog.Fallthrough _ | Prog.Jump _ | Prog.Branch _ | Prog.Jump_indirect _
            | Prog.Return _ | Prog.No_return ->
              ())
          f.blocks;
        Hashtbl.replace info f.name
          {
            callees = List.sort_uniq String.compare !callees;
            callers = [];
            has_indirect = !has_indirect;
            indirect_callees = [];
          })
      p.funcs;
    Hashtbl.iter
      (fun caller i ->
        List.iter
          (fun callee ->
            match Hashtbl.find_opt info callee with
            | Some ci -> ci.callers <- caller :: ci.callers
            | None -> ())
          i.callees)
      info;
    { info; taken }

  let callees t f =
    match Hashtbl.find_opt t.info f with Some i -> i.callees | None -> []

  let callers t f =
    match Hashtbl.find_opt t.info f with
    | Some i -> List.sort_uniq String.compare i.callers
    | None -> []

  let has_indirect_call t f =
    match Hashtbl.find_opt t.info f with Some i -> i.has_indirect | None -> false

  let indirect_callees t f =
    match Hashtbl.find_opt t.info f with
    | Some i -> i.indirect_callees
    | None -> []

  let set_indirect_callees t f targets =
    match Hashtbl.find_opt t.info f with
    | None -> ()
    | Some i ->
      i.indirect_callees <- List.sort_uniq String.compare targets;
      List.iter
        (fun g ->
          match Hashtbl.find_opt t.info g with
          | Some gi -> if not (List.mem f gi.callers) then gi.callers <- f :: gi.callers
          | None -> ())
        i.indirect_callees

  let address_taken t f = Hashtbl.mem t.taken f

  let functions t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.info [] |> List.sort String.compare
end
