(** Control-flow-graph algorithms over {!Prog.Func.t}.

    Register sets are represented as 32-bit masks (bit [r] set means
    register [r] is in the set); {!Regset} provides the few operations
    needed.  The zero register never appears in any set. *)

module Regset : sig
  type t = int

  val empty : t
  val add : Reg.t -> t -> t
  val mem : Reg.t -> t -> bool
  val union : t -> t -> t
  val diff : t -> t -> t
  val of_list : Reg.t list -> t
  val elements : t -> Reg.t list
  val pp : Format.formatter -> t -> unit
end

val preds : Prog.Func.t -> int list array
(** Intra-function predecessors of each block (derived from
    {!Prog.successors}, so unknown indirect jumps make everything a
    successor). *)

val reachable : Prog.Func.t -> bool array
(** Blocks reachable from the entry block. *)

val dfs_order : Prog.Func.t -> int list
(** Reachable blocks in depth-first (preorder) from the entry. *)

(** {1 Def/use sets} *)

val item_defs_uses : Prog.item -> Regset.t * Regset.t
(** [(defs, uses)] of a straight-line item.  System calls conservatively use
    the three argument registers and define [v0]. *)

val term_defs_uses : Prog.term -> Regset.t * Regset.t
(** [(defs, uses)] of a terminator.  Calls define all caller-saved registers
    and use the argument registers; returns use the result register, the
    callee-saved registers and the stack pointer, keeping the analysis sound
    intraprocedurally. *)

(** {1 Liveness} *)

type liveness = { live_in : Regset.t array; live_out : Regset.t array }

val liveness : Prog.Func.t -> liveness
(** Backward may-analysis to a fixed point. *)

val free_regs_at_entry : liveness -> int -> Reg.t list
(** Registers not live at the entry of a block, excluding [sp] and [zero];
    {!Reg.stub_scratch} is listed first when available.  This is what squash
    uses to pick an entry stub's return-address register (paper,
    Section 2.3). *)

(** {1 Call graph} *)

module Callgraph : sig
  type t

  val of_prog : Prog.t -> t
  val callees : t -> string -> string list
  (** Direct callees, deduplicated. *)

  val callers : t -> string -> string list

  val has_indirect_call : t -> string -> bool
  (** Does the function contain any indirect call?  Its possible targets are
      unknown, which matters to the buffer-safe analysis. *)

  val indirect_callees : t -> string -> string list
  (** Resolved candidate targets of the function's indirect calls, as
      recorded by {!set_indirect_callees} (the analysis layer's
      [Consts.annotate_callgraph]); empty until then.  Sorted. *)

  val set_indirect_callees : t -> string -> string list -> unit
  (** Record the resolved indirect-call edges of a caller; also adds the
      reverse caller edges. *)

  val address_taken : t -> string -> bool
  (** Is the function's address materialised anywhere ([Load_addr] of
      [Func_addr])?  Such functions are possible targets of indirect
      calls. *)

  val functions : t -> string list
end
