(** Symbolic program representation.

    A program is a list of functions; a function is an array of basic blocks;
    a basic block is a straight-line sequence of non-control-flow items plus
    a single terminator.  Control flow is symbolic (block indices and
    function names), so passes can move code freely; {!Layout} later pins
    every block to an address and resolves displacements.

    This plays the role that relocation information plays for the paper's
    binary-rewriting implementation: it lets us rebuild a reliable CFG.
    Jump tables are first-class ({!field:Func.tables}) and are emitted into
    the text segment after their function's code, as on the paper's
    platform. *)

type sym =
  | Func_addr of string  (** Address of a function's entry point. *)
  | Table_addr of int  (** Address of one of this function's jump tables. *)

type item =
  | Instr of Instr.t
      (** Any non-control-transfer instruction.  It is a structural error
          ({!validate}) for this to be a branch, jump, call or return. *)
  | Load_addr of Reg.t * sym
      (** Materialise a code address into a register; emitted as an
          [lda]/[ldah] pair (2 instructions). *)

type dest = int
(** Index of a basic block within the same function. *)

type term =
  | Fallthrough of dest
      (** Emits nothing if [dest] is laid out next, else a [br]. *)
  | Jump of dest
  | Branch of Instr.cond * Reg.t * dest * dest
      (** [Branch (op, ra, taken, fallthrough)]. *)
  | Call of { ra : Reg.t; callee : string; return_to : dest }
  | Call_indirect of { ra : Reg.t; rb : Reg.t; return_to : dest }
  | Jump_indirect of { rb : Reg.t; table : int option }
      (** Indirect jump; [table = Some tid] when the possible targets are
          exactly the entries of jump table [tid] (the analysable case of
          the paper's Section 6.2), [None] when unknown. *)
  | Return of { rb : Reg.t }
  | No_return
      (** Control never reaches the end of this block (it ends in [exit] or
          [longjmp]).  Emits nothing. *)

module Block : sig
  type t = { items : item list; term : term }

  val size : next:dest option -> t -> int
  (** Number of emitted instructions when the block laid out immediately
      after this one is [next] ([None] at the end of a function).  A
      fallthrough edge to a non-adjacent block costs one extra [br]; so does
      the fallthrough side of a conditional branch. *)

  val instr_count : t -> int
  (** Size assuming the fallthrough successor is laid out next (the
      canonical [|b|] used in the paper's cost function). *)
end

module Func : sig
  type t = {
    name : string;
    blocks : Block.t array;  (** Block 0 is the entry. *)
    tables : dest array array;  (** Jump tables, indexed by table id. *)
  }

  val table_words : t -> int
  (** Total words occupied by this function's jump tables. *)
end

type t = {
  funcs : Func.t list;  (** In layout order. *)
  entry : string;  (** Name of the start function. *)
  data_words : int;  (** Size of the data segment in 32-bit words. *)
  data_init : (int * Word.t) list;
      (** Initial data contents as (word offset, value) pairs. *)
}

val find_func : t -> string -> Func.t option
val func_names : t -> string list

val text_words : t -> int
(** Total text-segment size in words under the canonical layout, including
    jump tables. *)

val func_instr_count : Func.t -> int
(** Emitted instructions of one function, excluding jump-table data
    words. *)

val instr_count : t -> int
(** Total emitted instructions, excluding jump-table data words. *)

val validate : t -> (unit, string) result
(** Check structural invariants: every [dest] and table id in range, every
    callee defined, the entry function defined, no control-transfer
    instruction hiding in [Instr], table entries in range, and — because the
    hardware return address is simply [pc + 4] — that every call's
    [return_to] is the lexically next block. *)

val successors : Func.t -> int -> dest list
(** Intra-function CFG successors of a block (call terminators fall through
    to [return_to]; indirect jumps through a known table yield its entries;
    unknown indirect jumps yield all blocks, conservatively). *)

val calls_of_block : Block.t -> string list
(** Direct callees of a block's terminator. *)

val block_calls_syscall : Block.t -> Syscall.t -> bool

val pp : Format.formatter -> t -> unit
val pp_func : Format.formatter -> Func.t -> unit
