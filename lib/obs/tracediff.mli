(** Differential span profiles over exported traces.

    Loads a trace in either export format — the Chrome trace-event JSON or
    the JSONL stream (both schema [pgcc-trace-v2], and the v1 forms of
    either) — and reduces it to a {e span profile}: per span name, how
    many times it fired and the total duration in microseconds (simulated
    cycles render as 1 cycle = 1 µs, matching the Chrome exporter).  Two
    profiles then diff name-by-name, which answers "where did the time
    go between these two runs" without opening a trace viewer.  Instant
    events appear with zero duration so count drifts are visible too. *)

type span = { count : int; total_us : float }

type profile = {
  schema : string option;
  emitted : int option;  (** From the export header, when present. *)
  dropped : int option;
  spans : (string * span) list;  (** Sorted by span name. *)
}

val of_string : string -> (profile, string) result
(** Accepts a Chrome trace document or JSONL text (auto-detected). *)

val load_file : string -> (profile, string) result

type delta = {
  name : string;
  count_a : int;
  count_b : int;
  us_a : float;
  us_b : float;
}

val diff : profile -> profile -> delta list
(** Union of both profiles' span names (absent side contributes zeros),
    sorted by absolute duration delta descending, then name. *)

val render : ?top:int -> profile -> profile -> string
(** Comparison table (optionally truncated to the [top] largest deltas)
    with per-side provenance and a warning when either trace dropped
    events. *)
