module Clock = struct
  (* Host-side timestamps come from the OS monotonic clock (via bechamel's
     noalloc binding), so spans can never go negative under NTP slew the
     way Unix.gettimeofday stamps could.  Values are seconds since an
     arbitrary origin; [epoch_offset] (sampled once, lazily) rebases them
     onto the Unix epoch for human consumption in export headers. *)
  let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

  let epoch_offset =
    let off = lazy (Unix.gettimeofday () -. now ()) in
    fun () -> Lazy.force off
end

module Event = struct
  type clock = Cycles of int | Mono of float

  type payload =
    | Decomp_begin of { region : int }
    | Decomp_end of { region : int; bits : int; words : int; cycles : int }
    | Buffer_enter of { region : int; offset : int; pc : int }
    | Stub_create of { region : int; ret : int; live : int }
    | Stub_reuse of { region : int; ret : int; live : int }
    | Stub_free of { region : int; ret : int; live : int }
    | Cache_evict of { region : int; slot : int }
    | Pass_begin of { name : string }
    | Pass_end of { name : string; elapsed_s : float }
    | Job_submit of { label : string }
    | Job_start of { label : string; worker : int }
    | Job_finish of { label : string; worker : int; ok : bool; wall_s : float }

  type t = { ts : clock; payload : payload }

  let name e =
    match e.payload with
    | Decomp_begin _ -> "decomp_begin"
    | Decomp_end _ -> "decomp_end"
    | Buffer_enter _ -> "buffer_enter"
    | Stub_create _ -> "stub_create"
    | Stub_reuse _ -> "stub_reuse"
    | Stub_free _ -> "stub_free"
    | Cache_evict _ -> "cache_evict"
    | Pass_begin _ -> "pass_begin"
    | Pass_end _ -> "pass_end"
    | Job_submit _ -> "job_submit"
    | Job_start _ -> "job_start"
    | Job_finish _ -> "job_finish"

  (* The payload fields as JSON key/value pairs (shared by the JSONL
     exporter, the Chrome "args" object and the sink snapshot). *)
  let fields e =
    let open Report.Json in
    match e.payload with
    | Decomp_begin { region } -> [ ("region", Int region) ]
    | Decomp_end { region; bits; words; cycles } ->
      [ ("region", Int region); ("bits", Int bits); ("words", Int words);
        ("cycles", Int cycles) ]
    | Buffer_enter { region; offset; pc } ->
      [ ("region", Int region); ("offset", Int offset); ("pc", Int pc) ]
    | Stub_create { region; ret; live }
    | Stub_reuse { region; ret; live }
    | Stub_free { region; ret; live } ->
      [ ("region", Int region); ("ret", Int ret); ("live", Int live) ]
    | Cache_evict { region; slot } ->
      [ ("region", Int region); ("slot", Int slot) ]
    | Pass_begin { name } -> [ ("pass", String name) ]
    | Pass_end { name; elapsed_s } ->
      [ ("pass", String name); ("elapsed_s", Float elapsed_s) ]
    | Job_submit { label } -> [ ("job", String label) ]
    | Job_start { label; worker } ->
      [ ("job", String label); ("worker", Int worker) ]
    | Job_finish { label; worker; ok; wall_s } ->
      [ ("job", String label); ("worker", Int worker); ("ok", Bool ok);
        ("wall_s", Float wall_s) ]

  let to_json e =
    let open Report.Json in
    let clock, ts =
      match e.ts with
      | Cycles c -> ("cycles", Int c)
      | Mono m -> ("mono", Float m)
    in
    Obj (("ev", String (name e)) :: ("clock", String clock) :: ("ts", ts)
        :: fields e)
end

module Trace = struct
  (* v2: sharded rings, the Mono clock (was Wall), per-shard accounting
     and the epoch offset in export headers. *)
  let schema_version = 2

  (* One bounded ring per shard.  [next] counts every emission the shard
     ever saw; slot [i mod capacity] holds emission [i], so once
     [next > capacity] the oldest [next - capacity] events have been
     overwritten (= dropped).  Emitting locks only the shard's own mutex:
     with one shard per domain the fast path is uncontended, which is what
     lets a JOBS=32 engine run trace without serialising on the sink. *)
  type shard = {
    buf : Event.t array;
    capacity : int;
    mutable next : int;
    m : Mutex.t;
  }

  type t = { shards : shard array }

  let dummy =
    { Event.ts = Event.Cycles 0; payload = Event.Decomp_begin { region = -1 } }

  let create ?(capacity = 65536) ?(shards = 1) () =
    if capacity < 1 then invalid_arg "Obs.Trace.create: capacity < 1";
    if shards < 1 then invalid_arg "Obs.Trace.create: shards < 1";
    (* [capacity] is the total event budget, split across the shards. *)
    let per_shard = max 1 (capacity / shards) in
    { shards =
        Array.init shards (fun _ ->
            { buf = Array.make per_shard dummy; capacity = per_shard; next = 0;
              m = Mutex.create () }) }

  let shard_count t = Array.length t.shards

  let emit_into t ~shard e =
    let s = t.shards.(shard mod Array.length t.shards) in
    Mutex.lock s.m;
    s.buf.(s.next mod s.capacity) <- e;
    s.next <- s.next + 1;
    Mutex.unlock s.m

  let emit t e = emit_into t ~shard:(Domain.self () :> int) e

  let shard_emitted s = s.next
  let shard_dropped s = max 0 (s.next - s.capacity)
  let shard_length s = min s.next s.capacity

  let shard_stats t =
    Array.map (fun s -> (shard_emitted s, shard_dropped s)) t.shards

  let emitted t =
    Array.fold_left (fun acc s -> acc + shard_emitted s) 0 t.shards

  let dropped t =
    Array.fold_left (fun acc s -> acc + shard_dropped s) 0 t.shards

  let length t =
    Array.fold_left (fun acc s -> acc + shard_length s) 0 t.shards

  (* The deterministic merge.  Each retained event is keyed by
     (track, clock value, shard id, per-shard sequence number) and the
     whole set is sorted by that key: the host (Mono) track first, then
     the simulated (Cycles) track, each ordered by clock, with ties
     broken by shard id and then emission order within the shard.  The
     result is a pure function of the shard contents — any interleaving
     of emissions that lands the same events in the same shards exports
     byte-identically. *)
  let keyed_events t =
    let all = ref [] in
    Array.iteri
      (fun sid s ->
        Mutex.lock s.m;
        let n = shard_length s in
        let first = s.next - n in
        for i = n - 1 downto 0 do
          let seq = first + i in
          let e = s.buf.(seq mod s.capacity) in
          let track, clock =
            match e.Event.ts with
            | Event.Mono m -> (0, m)
            | Event.Cycles c -> (1, float_of_int c)
          in
          all := ((track, clock, sid, seq), e) :: !all
        done;
        Mutex.unlock s.m)
      t.shards;
    List.sort (fun (ka, _) (kb, _) -> compare ka kb) !all

  let events t = List.map snd (keyed_events t)

  (* --- export headers ---------------------------------------------- *)

  let shards_json t =
    Report.Json.List
      (Array.to_list
         (Array.mapi
            (fun sid s ->
              Report.Json.Obj
                [ ("shard", Report.Json.Int sid);
                  ("emitted", Report.Json.Int (shard_emitted s));
                  ("dropped", Report.Json.Int (shard_dropped s)) ])
            t.shards))

  let header_fields t =
    [ ("emitted", Report.Json.Int (emitted t));
      ("dropped", Report.Json.Int (dropped t));
      ("shards", shards_json t);
      ("mono_epoch_offset", Report.Json.Float (Clock.epoch_offset ())) ]

  (* --- Chrome trace-event export ---------------------------------- *)

  (* Two clock domains become two Chrome "processes": pid 0 is the
     simulated machine (1 cycle rendered as 1 µs), pid 1 is the host
     (monotonic seconds rebased to the earliest host event; add the
     header's mono_epoch_offset to recover absolute wall time).  Spans
     are synthesised from end events only, so a wrapped ring can never
     emit a begin without its end. *)
  let sim_pid = 0
  let host_pid = 1

  let to_chrome t =
    let open Report.Json in
    let evs = events t in
    let mono_base =
      List.fold_left
        (fun acc (e : Event.t) ->
          match e.Event.ts with
          | Event.Mono m -> Float.min acc m
          | Event.Cycles _ -> acc)
        Float.infinity evs
    in
    let mono_us m = 1e6 *. (m -. mono_base) in
    let ts_us (e : Event.t) =
      match e.Event.ts with
      | Event.Cycles c -> Float (float_of_int c)
      | Event.Mono m -> Float (mono_us m)
    in
    let ev ~name ~cat ~ph ~ts ~pid ~tid ?(extra = []) args =
      Obj
        ([ ("name", String name); ("cat", String cat); ("ph", String ph);
           ("ts", ts); ("pid", Int pid); ("tid", Int tid) ]
        @ extra
        @ [ ("args", Obj args) ])
    in
    let instant ?(pid = sim_pid) ?(tid = 0) ~cat e =
      ev ~name:(Event.name e) ~cat ~ph:"i" ~ts:(ts_us e) ~pid ~tid
        ~extra:[ ("s", String "t") ]
        (Event.fields e)
    in
    let rows =
      List.filter_map
        (fun (e : Event.t) ->
          match e.Event.payload with
          | Event.Decomp_begin _ | Event.Pass_begin _ | Event.Job_start _ ->
            (* Spans come from the matching end events. *)
            None
          | Event.Decomp_end { region; cycles; _ } ->
            let start =
              match e.Event.ts with
              | Event.Cycles c -> float_of_int (c - cycles)
              | Event.Mono m -> mono_us m
            in
            Some
              (ev
                 ~name:(Printf.sprintf "decompress r%d" region)
                 ~cat:"runtime" ~ph:"X" ~ts:(Float start) ~pid:sim_pid ~tid:0
                 ~extra:[ ("dur", Float (float_of_int cycles)) ]
                 (Event.fields e))
          | Event.Buffer_enter _ | Event.Stub_create _ | Event.Stub_reuse _
          | Event.Stub_free _ | Event.Cache_evict _ ->
            Some (instant ~cat:"runtime" e)
          | Event.Pass_end { name; elapsed_s } ->
            let end_us =
              match e.Event.ts with
              | Event.Mono m -> mono_us m
              | Event.Cycles c -> float_of_int c
            in
            Some
              (ev ~name:("pass " ^ name) ~cat:"pipeline" ~ph:"X"
                 ~ts:(Float (end_us -. (1e6 *. elapsed_s)))
                 ~pid:host_pid ~tid:0
                 ~extra:[ ("dur", Float (1e6 *. elapsed_s)) ]
                 (Event.fields e))
          | Event.Job_submit _ -> Some (instant ~pid:host_pid ~cat:"engine" e)
          | Event.Job_finish { label; worker; wall_s; _ } ->
            let end_us =
              match e.Event.ts with
              | Event.Mono m -> mono_us m
              | Event.Cycles c -> float_of_int c
            in
            Some
              (ev ~name:("job " ^ label) ~cat:"engine" ~ph:"X"
                 ~ts:(Float (end_us -. (1e6 *. wall_s)))
                 ~pid:host_pid ~tid:(worker + 1)
                 ~extra:[ ("dur", Float (1e6 *. wall_s)) ]
                 (Event.fields e)))
        evs
    in
    let process_name pid name =
      ev ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:(Float 0.0) ~pid
        ~tid:0
        [ ("name", String name) ]
    in
    Obj
      [ ("schema", String (Printf.sprintf "pgcc-trace-v%d" schema_version));
        ("displayTimeUnit", String "ms");
        ("otherData", Obj (header_fields t));
        ( "traceEvents",
          List
            (process_name sim_pid "sq32 simulated cycles"
            :: process_name host_pid "host monotonic clock"
            :: rows) ) ]

  let to_jsonl t =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Report.Json.to_string
         (Report.Json.Obj
            (( "schema",
               Report.Json.String
                 (Printf.sprintf "pgcc-trace-v%d" schema_version) )
            :: header_fields t)));
    Buffer.add_char b '\n';
    List.iter
      (fun e ->
        Buffer.add_string b (Report.Json.to_string (Event.to_json e));
        Buffer.add_char b '\n')
      (events t);
    Buffer.contents b
end

module Metrics = struct
  type histogram = {
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
    buckets : int array;  (* log₂ buckets; index via [bucket_of]. *)
  }

  type t = {
    m : Mutex.t;
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, int ref) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
  }

  let nbuckets = 63

  let create () =
    { m = Mutex.create (); counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8; histograms = Hashtbl.create 8 }

  let with_lock t f =
    Mutex.lock t.m;
    let v = f () in
    Mutex.unlock t.m;
    v

  let find_ref tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace tbl name r;
      r

  let incr t ?(by = 1) name =
    with_lock t (fun () ->
        let r = find_ref t.counters name in
        r := !r + by)

  let set_gauge t name v =
    with_lock t (fun () -> find_ref t.gauges name := v)

  let max_gauge t name v =
    with_lock t (fun () ->
        let r = find_ref t.gauges name in
        if v > !r then r := v)

  let bucket_of v =
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    if v <= 0 then 0 else min (nbuckets - 1) (go v 0)

  let observe t name v =
    with_lock t (fun () ->
        let h =
          match Hashtbl.find_opt t.histograms name with
          | Some h -> h
          | None ->
            let h =
              { count = 0; sum = 0; min_v = max_int; max_v = min_int;
                buckets = Array.make nbuckets 0 }
            in
            Hashtbl.replace t.histograms name h;
            h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum + v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        let b = bucket_of v in
        h.buckets.(b) <- h.buckets.(b) + 1)

  let counter_value t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

  let histogram_count t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h.count
        | None -> 0)

  let histogram_sum t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h.sum
        | None -> 0)

  (* Quantile estimation from the log₂ buckets: walk the CDF to the
     bucket holding the target rank and interpolate linearly inside its
     [lo, hi] value range.  The estimate is exact when all samples in the
     target bucket share one value and within a factor of two otherwise —
     the usual latency-histogram contract — and is clamped to the
     observed min/max so tight distributions report tight quantiles. *)
  let quantile_of h q =
    if h.count = 0 then None
    else begin
      let rank = q *. float_of_int h.count in
      let rec go i cum =
        if i >= nbuckets then float_of_int h.max_v
        else
          let c = h.buckets.(i) in
          if c > 0 && float_of_int (cum + c) >= rank then begin
            let lo = if i = 0 then 0 else 1 lsl i in
            let hi = (1 lsl (i + 1)) - 1 in
            let frac =
              let f = (rank -. float_of_int cum) /. float_of_int c in
              Float.max 0.0 (Float.min 1.0 f)
            in
            float_of_int lo +. (frac *. float_of_int (hi - lo))
          end
          else go (i + 1) (cum + c)
      in
      let v = go 0 0 in
      Some (Float.max (float_of_int h.min_v) (Float.min (float_of_int h.max_v) v))
    end

  let histogram_quantile t name q =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> quantile_of h q
        | None -> None)

  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let histogram_json h =
    let open Report.Json in
    let buckets =
      List.filter_map
        (fun i ->
          if h.buckets.(i) = 0 then None
          else
            let lo = if i = 0 then 0 else 1 lsl i in
            let hi = (1 lsl (i + 1)) - 1 in
            Some
              (Obj [ ("lo", Int lo); ("hi", Int hi); ("count", Int h.buckets.(i)) ]))
        (List.init nbuckets Fun.id)
    in
    let quant q =
      match quantile_of h q with None -> Null | Some v -> Float v
    in
    Obj
      [ ("count", Int h.count); ("sum", Int h.sum);
        ("min", if h.count = 0 then Null else Int h.min_v);
        ("max", if h.count = 0 then Null else Int h.max_v);
        ("p50", quant 0.50); ("p95", quant 0.95); ("p99", quant 0.99);
        ("buckets", List buckets) ]

  let to_json t =
    let open Report.Json in
    with_lock t (fun () ->
        Obj
          [ ( "counters",
              Obj
                (List.map
                   (fun (k, r) -> (k, Int !r))
                   (sorted_bindings t.counters)) );
            ( "gauges",
              Obj
                (List.map (fun (k, r) -> (k, Int !r)) (sorted_bindings t.gauges)) );
            ( "histograms",
              Obj
                (List.map
                   (fun (k, h) -> (k, histogram_json h))
                   (sorted_bindings t.histograms)) ) ])
end

type t = { trace : Trace.t option; metrics : Metrics.t option }

let create ?trace ?metrics () = { trace; metrics }

let full ?capacity ?shards () =
  let shards =
    match shards with
    | Some s -> s
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  { trace = Some (Trace.create ?capacity ~shards ());
    metrics = Some (Metrics.create ()) }

let event t e = match t.trace with Some tr -> Trace.emit tr e | None -> ()

let incr t ?by name =
  match t.metrics with Some m -> Metrics.incr m ?by name | None -> ()

let max_gauge t name v =
  match t.metrics with Some m -> Metrics.max_gauge m name v | None -> ()

let observe t name v =
  match t.metrics with Some m -> Metrics.observe m name v | None -> ()

let snapshot_json t =
  let open Report.Json in
  Obj
    [ ( "metrics",
        match t.metrics with Some m -> Metrics.to_json m | None -> Null );
      ( "trace",
        match t.trace with
        | None -> Null
        | Some tr ->
          Obj
            [ ("emitted", Int (Trace.emitted tr));
              ("dropped", Int (Trace.dropped tr));
              ("shards", Trace.shards_json tr);
              ("events", List (List.map Event.to_json (Trace.events tr))) ] ) ]
