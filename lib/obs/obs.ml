module Event = struct
  type clock = Cycles of int | Wall of float

  type payload =
    | Decomp_begin of { region : int }
    | Decomp_end of { region : int; bits : int; words : int; cycles : int }
    | Buffer_enter of { region : int; offset : int; pc : int }
    | Stub_create of { region : int; ret : int; live : int }
    | Stub_reuse of { region : int; ret : int; live : int }
    | Stub_free of { region : int; ret : int; live : int }
    | Cache_evict of { region : int; slot : int }
    | Pass_begin of { name : string }
    | Pass_end of { name : string; elapsed_s : float }
    | Job_submit of { label : string }
    | Job_start of { label : string; worker : int }
    | Job_finish of { label : string; worker : int; ok : bool; wall_s : float }

  type t = { ts : clock; payload : payload }

  let name e =
    match e.payload with
    | Decomp_begin _ -> "decomp_begin"
    | Decomp_end _ -> "decomp_end"
    | Buffer_enter _ -> "buffer_enter"
    | Stub_create _ -> "stub_create"
    | Stub_reuse _ -> "stub_reuse"
    | Stub_free _ -> "stub_free"
    | Cache_evict _ -> "cache_evict"
    | Pass_begin _ -> "pass_begin"
    | Pass_end _ -> "pass_end"
    | Job_submit _ -> "job_submit"
    | Job_start _ -> "job_start"
    | Job_finish _ -> "job_finish"

  (* The payload fields as JSON key/value pairs (shared by the JSONL
     exporter, the Chrome "args" object and the sink snapshot). *)
  let fields e =
    let open Report.Json in
    match e.payload with
    | Decomp_begin { region } -> [ ("region", Int region) ]
    | Decomp_end { region; bits; words; cycles } ->
      [ ("region", Int region); ("bits", Int bits); ("words", Int words);
        ("cycles", Int cycles) ]
    | Buffer_enter { region; offset; pc } ->
      [ ("region", Int region); ("offset", Int offset); ("pc", Int pc) ]
    | Stub_create { region; ret; live }
    | Stub_reuse { region; ret; live }
    | Stub_free { region; ret; live } ->
      [ ("region", Int region); ("ret", Int ret); ("live", Int live) ]
    | Cache_evict { region; slot } ->
      [ ("region", Int region); ("slot", Int slot) ]
    | Pass_begin { name } -> [ ("pass", String name) ]
    | Pass_end { name; elapsed_s } ->
      [ ("pass", String name); ("elapsed_s", Float elapsed_s) ]
    | Job_submit { label } -> [ ("job", String label) ]
    | Job_start { label; worker } ->
      [ ("job", String label); ("worker", Int worker) ]
    | Job_finish { label; worker; ok; wall_s } ->
      [ ("job", String label); ("worker", Int worker); ("ok", Bool ok);
        ("wall_s", Float wall_s) ]

  let to_json e =
    let open Report.Json in
    let clock, ts =
      match e.ts with
      | Cycles c -> ("cycles", Int c)
      | Wall w -> ("wall", Float w)
    in
    Obj (("ev", String (name e)) :: ("clock", String clock) :: ("ts", ts)
        :: fields e)
end

module Trace = struct
  let schema_version = 1

  (* A bounded ring: [next] counts every emission ever made; slot
     [i mod capacity] holds emission [i], so once [next > capacity] the
     oldest [next - capacity] events have been overwritten (= dropped). *)
  type t = {
    buf : Event.t array;
    capacity : int;
    mutable next : int;
    m : Mutex.t;
  }

  let dummy =
    { Event.ts = Event.Cycles 0; payload = Event.Decomp_begin { region = -1 } }

  let create ?(capacity = 65536) () =
    if capacity < 1 then invalid_arg "Obs.Trace.create: capacity < 1";
    { buf = Array.make capacity dummy; capacity; next = 0; m = Mutex.create () }

  let emit t e =
    Mutex.lock t.m;
    t.buf.(t.next mod t.capacity) <- e;
    t.next <- t.next + 1;
    Mutex.unlock t.m

  let emitted t = t.next
  let dropped t = max 0 (t.next - t.capacity)
  let length t = min t.next t.capacity

  let events t =
    Mutex.lock t.m;
    let n = length t in
    let first = t.next - n in
    let evs = List.init n (fun i -> t.buf.((first + i) mod t.capacity)) in
    Mutex.unlock t.m;
    evs

  (* --- Chrome trace-event export ---------------------------------- *)

  (* Two clock domains become two Chrome "processes": pid 0 is the
     simulated machine (1 cycle rendered as 1 µs), pid 1 is the host
     (wall seconds rebased to the earliest wall event).  Spans are
     synthesised from end events only, so a wrapped ring can never emit
     a begin without its end. *)
  let sim_pid = 0
  let host_pid = 1

  let to_chrome t =
    let open Report.Json in
    let evs = events t in
    let wall_base =
      List.fold_left
        (fun acc (e : Event.t) ->
          match e.Event.ts with
          | Event.Wall w -> Float.min acc w
          | Event.Cycles _ -> acc)
        Float.infinity evs
    in
    let wall_us w = 1e6 *. (w -. wall_base) in
    let ts_us (e : Event.t) =
      match e.Event.ts with
      | Event.Cycles c -> Float (float_of_int c)
      | Event.Wall w -> Float (wall_us w)
    in
    let ev ~name ~cat ~ph ~ts ~pid ~tid ?(extra = []) args =
      Obj
        ([ ("name", String name); ("cat", String cat); ("ph", String ph);
           ("ts", ts); ("pid", Int pid); ("tid", Int tid) ]
        @ extra
        @ [ ("args", Obj args) ])
    in
    let instant ?(pid = sim_pid) ?(tid = 0) ~cat e =
      ev ~name:(Event.name e) ~cat ~ph:"i" ~ts:(ts_us e) ~pid ~tid
        ~extra:[ ("s", String "t") ]
        (Event.fields e)
    in
    let rows =
      List.filter_map
        (fun (e : Event.t) ->
          match e.Event.payload with
          | Event.Decomp_begin _ | Event.Pass_begin _ | Event.Job_start _ ->
            (* Spans come from the matching end events. *)
            None
          | Event.Decomp_end { region; cycles; _ } ->
            let start =
              match e.Event.ts with
              | Event.Cycles c -> float_of_int (c - cycles)
              | Event.Wall w -> wall_us w
            in
            Some
              (ev
                 ~name:(Printf.sprintf "decompress r%d" region)
                 ~cat:"runtime" ~ph:"X" ~ts:(Float start) ~pid:sim_pid ~tid:0
                 ~extra:[ ("dur", Float (float_of_int cycles)) ]
                 (Event.fields e))
          | Event.Buffer_enter _ | Event.Stub_create _ | Event.Stub_reuse _
          | Event.Stub_free _ | Event.Cache_evict _ ->
            Some (instant ~cat:"runtime" e)
          | Event.Pass_end { name; elapsed_s } ->
            let end_us =
              match e.Event.ts with
              | Event.Wall w -> wall_us w
              | Event.Cycles c -> float_of_int c
            in
            Some
              (ev ~name:("pass " ^ name) ~cat:"pipeline" ~ph:"X"
                 ~ts:(Float (end_us -. (1e6 *. elapsed_s)))
                 ~pid:host_pid ~tid:0
                 ~extra:[ ("dur", Float (1e6 *. elapsed_s)) ]
                 (Event.fields e))
          | Event.Job_submit _ -> Some (instant ~pid:host_pid ~cat:"engine" e)
          | Event.Job_finish { label; worker; wall_s; _ } ->
            let end_us =
              match e.Event.ts with
              | Event.Wall w -> wall_us w
              | Event.Cycles c -> float_of_int c
            in
            Some
              (ev ~name:("job " ^ label) ~cat:"engine" ~ph:"X"
                 ~ts:(Float (end_us -. (1e6 *. wall_s)))
                 ~pid:host_pid ~tid:(worker + 1)
                 ~extra:[ ("dur", Float (1e6 *. wall_s)) ]
                 (Event.fields e)))
        evs
    in
    let process_name pid name =
      ev ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:(Float 0.0) ~pid
        ~tid:0
        [ ("name", String name) ]
    in
    Obj
      [ ("schema", String (Printf.sprintf "pgcc-trace-v%d" schema_version));
        ("displayTimeUnit", String "ms");
        ( "otherData",
          Obj [ ("emitted", Int (emitted t)); ("dropped", Int (dropped t)) ] );
        ( "traceEvents",
          List
            (process_name sim_pid "sq32 simulated cycles"
            :: process_name host_pid "host wall clock"
            :: rows) ) ]

  let to_jsonl t =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Report.Json.to_string
         (Report.Json.Obj
            [ ( "schema",
                Report.Json.String
                  (Printf.sprintf "pgcc-trace-v%d" schema_version) );
              ("emitted", Report.Json.Int (emitted t));
              ("dropped", Report.Json.Int (dropped t)) ]));
    Buffer.add_char b '\n';
    List.iter
      (fun e ->
        Buffer.add_string b (Report.Json.to_string (Event.to_json e));
        Buffer.add_char b '\n')
      (events t);
    Buffer.contents b
end

module Metrics = struct
  type histogram = {
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
    buckets : int array;  (* log₂ buckets; index via [bucket_of]. *)
  }

  type t = {
    m : Mutex.t;
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, int ref) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
  }

  let nbuckets = 63

  let create () =
    { m = Mutex.create (); counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8; histograms = Hashtbl.create 8 }

  let with_lock t f =
    Mutex.lock t.m;
    let v = f () in
    Mutex.unlock t.m;
    v

  let find_ref tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace tbl name r;
      r

  let incr t ?(by = 1) name =
    with_lock t (fun () ->
        let r = find_ref t.counters name in
        r := !r + by)

  let set_gauge t name v =
    with_lock t (fun () -> find_ref t.gauges name := v)

  let max_gauge t name v =
    with_lock t (fun () ->
        let r = find_ref t.gauges name in
        if v > !r then r := v)

  let bucket_of v =
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    if v <= 0 then 0 else min (nbuckets - 1) (go v 0)

  let observe t name v =
    with_lock t (fun () ->
        let h =
          match Hashtbl.find_opt t.histograms name with
          | Some h -> h
          | None ->
            let h =
              { count = 0; sum = 0; min_v = max_int; max_v = min_int;
                buckets = Array.make nbuckets 0 }
            in
            Hashtbl.replace t.histograms name h;
            h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum + v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        let b = bucket_of v in
        h.buckets.(b) <- h.buckets.(b) + 1)

  let counter_value t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

  let histogram_count t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h.count
        | None -> 0)

  let histogram_sum t name =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h.sum
        | None -> 0)

  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let histogram_json h =
    let open Report.Json in
    let buckets =
      List.filter_map
        (fun i ->
          if h.buckets.(i) = 0 then None
          else
            let lo = if i = 0 then 0 else 1 lsl i in
            let hi = (1 lsl (i + 1)) - 1 in
            Some
              (Obj [ ("lo", Int lo); ("hi", Int hi); ("count", Int h.buckets.(i)) ]))
        (List.init nbuckets Fun.id)
    in
    Obj
      [ ("count", Int h.count); ("sum", Int h.sum);
        ("min", if h.count = 0 then Null else Int h.min_v);
        ("max", if h.count = 0 then Null else Int h.max_v);
        ("buckets", List buckets) ]

  let to_json t =
    let open Report.Json in
    with_lock t (fun () ->
        Obj
          [ ( "counters",
              Obj
                (List.map
                   (fun (k, r) -> (k, Int !r))
                   (sorted_bindings t.counters)) );
            ( "gauges",
              Obj
                (List.map (fun (k, r) -> (k, Int !r)) (sorted_bindings t.gauges)) );
            ( "histograms",
              Obj
                (List.map
                   (fun (k, h) -> (k, histogram_json h))
                   (sorted_bindings t.histograms)) ) ])
end

type t = { trace : Trace.t option; metrics : Metrics.t option }

let create ?trace ?metrics () = { trace; metrics }

let full ?capacity () =
  { trace = Some (Trace.create ?capacity ());
    metrics = Some (Metrics.create ()) }

let event t e = match t.trace with Some tr -> Trace.emit tr e | None -> ()

let incr t ?by name =
  match t.metrics with Some m -> Metrics.incr m ?by name | None -> ()

let max_gauge t name v =
  match t.metrics with Some m -> Metrics.max_gauge m name v | None -> ()

let observe t name v =
  match t.metrics with Some m -> Metrics.observe m name v | None -> ()

let snapshot_json t =
  let open Report.Json in
  Obj
    [ ( "metrics",
        match t.metrics with Some m -> Metrics.to_json m | None -> Null );
      ( "trace",
        match t.trace with
        | None -> Null
        | Some tr ->
          Obj
            [ ("emitted", Int (Trace.emitted tr));
              ("dropped", Int (Trace.dropped tr));
              ("events", List (List.map Event.to_json (Trace.events tr))) ] ) ]
