module J = Report.Json

type span = { count : int; total_us : float }

type profile = {
  schema : string option;
  emitted : int option;
  dropped : int option;
  spans : (string * span) list;  (* sorted by name *)
}

let float_of_json = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let to_string_opt = function Some (J.String s) -> Some s | _ -> None

let to_int_opt = function Some (J.Int i) -> Some i | _ -> None

(* Aggregation happens through a mutable table keyed by span name; the
   profile is the table sorted, so two traces of the same run always
   aggregate identically regardless of event order. *)
let finish tbl ~schema ~emitted ~dropped =
  let spans =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { schema; emitted; dropped; spans }

let add tbl name us =
  let prev =
    match Hashtbl.find_opt tbl name with
    | Some s -> s
    | None -> { count = 0; total_us = 0.0 }
  in
  Hashtbl.replace tbl name
    { count = prev.count + 1; total_us = prev.total_us +. us }

(* A Chrome trace document: ph="X" events contribute their [dur], ph="i"
   instants count with zero duration, metadata rows are skipped. *)
let of_chrome doc =
  match J.member "traceEvents" doc with
  | Some (J.List evs) ->
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match (to_string_opt (J.member "ph" e), to_string_opt (J.member "name" e)) with
        | Some "X", Some name ->
          let dur =
            match Option.bind (J.member "dur" e) (fun d -> float_of_json d) with
            | Some d -> d
            | None -> 0.0
          in
          add tbl name dur
        | Some "i", Some name -> add tbl name 0.0
        | _ -> ())
      evs;
    let header = J.member "otherData" doc in
    let get name =
      Option.bind header (fun h -> to_int_opt (J.member name h))
    in
    Ok
      (finish tbl
         ~schema:(to_string_opt (J.member "schema" doc))
         ~emitted:(get "emitted") ~dropped:(get "dropped"))
  | Some _ | None -> Error "chrome trace: missing \"traceEvents\" list"

(* A JSONL trace: the header line carries schema and drop accounting; end
   events are re-synthesised into the same span names the Chrome exporter
   uses (1 simulated cycle rendered as 1 µs), so the two formats diff
   interchangeably. *)
let of_jsonl text =
  let tbl = Hashtbl.create 64 in
  let schema = ref None and emitted = ref None and dropped = ref None in
  let bad = ref None in
  let line_no = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr line_no;
         let line = String.trim line in
         if line <> "" && !bad = None then
           match J.of_string line with
           | Error msg ->
             bad := Some (Printf.sprintf "line %d: %s" !line_no msg)
           | Ok doc -> (
             match to_string_opt (J.member "ev" doc) with
             | Some ev ->
               let str name = to_string_opt (J.member name doc) in
               let num name =
                 Option.bind (J.member name doc) (fun v -> float_of_json v)
               in
               (match (ev, str "pass", str "job", num "cycles", num "region")
                with
               | "decomp_end", _, _, Some cycles, Some region ->
                 add tbl
                   (Printf.sprintf "decompress r%d" (int_of_float region))
                   cycles
               | "pass_end", Some pass, _, _, _ ->
                 let us =
                   match num "elapsed_s" with
                   | Some s -> 1e6 *. s
                   | None -> 0.0
                 in
                 add tbl ("pass " ^ pass) us
               | "job_finish", _, Some job, _, _ ->
                 let us =
                   match num "wall_s" with Some s -> 1e6 *. s | None -> 0.0
                 in
                 add tbl ("job " ^ job) us
               | ("decomp_begin" | "pass_begin" | "job_start"), _, _, _, _ ->
                 (* Spans come from the end events. *)
                 ()
               | _ -> add tbl ev 0.0)
             | None ->
               (* The header line. *)
               schema := to_string_opt (J.member "schema" doc);
               emitted := to_int_opt (J.member "emitted" doc);
               dropped := to_int_opt (J.member "dropped" doc)));
  match !bad with
  | Some msg -> Error msg
  | None ->
    Ok (finish tbl ~schema:!schema ~emitted:!emitted ~dropped:!dropped)

let of_string text =
  (* A whole-text parse succeeding means a single JSON document (the
     Chrome format); JSONL fails that parse at line 2. *)
  match J.of_string text with
  | Ok doc -> of_chrome doc
  | Error _ -> of_jsonl text

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in_noerr ic;
    (match of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (path ^ ": " ^ msg))

type delta = {
  name : string;
  count_a : int;
  count_b : int;
  us_a : float;
  us_b : float;
}

let diff a b =
  let names =
    List.sort_uniq compare (List.map fst a.spans @ List.map fst b.spans)
  in
  List.map
    (fun name ->
      let get p =
        match List.assoc_opt name p.spans with
        | Some s -> (s.count, s.total_us)
        | None -> (0, 0.0)
      in
      let count_a, us_a = get a and count_b, us_b = get b in
      { name; count_a; count_b; us_a; us_b })
    names
  |> List.sort (fun x y ->
         match
           compare
             (Float.abs (y.us_b -. y.us_a))
             (Float.abs (x.us_b -. x.us_a))
         with
         | 0 -> compare x.name y.name
         | c -> c)

let render ?top a b =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let describe label p =
    pf "%s: %s; %d span names%s\n" label
      (match p.schema with Some s -> s | None -> "<no schema>")
      (List.length p.spans)
      (match (p.emitted, p.dropped) with
      | Some e, Some d -> Printf.sprintf "; %d events emitted, %d dropped" e d
      | _ -> "")
  in
  describe "A" a;
  describe "B" b;
  let ds = diff a b in
  let shown = match top with Some n -> List.filteri (fun i _ -> i < n) ds | None -> ds in
  let tbl =
    Report.Table.create ~title:"span profile diff (B - A)"
      [ ("span", Report.Table.Left); ("count A", Report.Table.Right);
        ("count B", Report.Table.Right); ("us A", Report.Table.Right);
        ("us B", Report.Table.Right); ("d us", Report.Table.Right) ]
  in
  List.iter
    (fun d ->
      Report.Table.add_row tbl
        [ d.name; string_of_int d.count_a; string_of_int d.count_b;
          Printf.sprintf "%.0f" d.us_a; Printf.sprintf "%.0f" d.us_b;
          Printf.sprintf "%+.0f" (d.us_b -. d.us_a) ])
    shown;
  Buffer.add_string buf (Report.Table.render tbl);
  (if List.length ds > List.length shown then
     pf "(%d more spans; raise --top to see them)\n"
       (List.length ds - List.length shown));
  (match (a.dropped, b.dropped) with
  | Some da, Some db when da > 0 || db > 0 ->
    pf
      "note: drops occurred (A: %d, B: %d) — span counts undercount the \
       dropped tail\n"
      da db
  | _ -> ());
  Buffer.contents buf
