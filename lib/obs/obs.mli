(** End-to-end observability: typed trace events and a metrics registry.

    The subsystem has two halves, both optional and both designed so that
    {e disabled means free}: every instrumented call site in the VM, the
    squash runtime, the pass pipeline and the experiment engine guards its
    emission behind a single branch on an optional {!t} sink.

    {b Trace} is a bounded ring buffer of {!Event.t} values.  When the ring
    wraps, the oldest events are overwritten and counted as dropped — a
    long run keeps its tail, which is what the runtime-overhead analysis
    wants, and memory stays bounded.  Timestamps are heterogeneous by
    design: the VM side stamps events in {e simulated cycles} (the clock
    the paper's overhead model runs on), the pipeline and engine stamp in
    host wall-clock seconds.  Exporters render to the Chrome trace-event
    JSON format (loadable in Perfetto / [chrome://tracing]; simulated and
    host clocks become separate process tracks) and to JSONL (one event
    per line, with a header line carrying the schema version and the drop
    count).

    {b Metrics} is a registry of named counters, gauges and log₂-bucketed
    histograms, snapshotting to {!Report.Json}.  All operations are
    thread-safe (the engine emits from multiple domains). *)

module Event : sig
  type clock =
    | Cycles of int  (** Simulated cycles (VM-side events). *)
    | Wall of float  (** Host wall clock, Unix epoch seconds. *)

  type payload =
    | Decomp_begin of { region : int }
    | Decomp_end of { region : int; bits : int; words : int; cycles : int }
        (** [cycles] is the simulated cost charged for this decompression. *)
    | Buffer_enter of { region : int; offset : int; pc : int }
        (** Control entered the runtime buffer at word [offset]. *)
    | Stub_create of { region : int; ret : int; live : int }
    | Stub_reuse of { region : int; ret : int; live : int }
    | Stub_free of { region : int; ret : int; live : int }
        (** [live] is the live-stub depth {e after} the transition. *)
    | Cache_evict of { region : int; slot : int }
        (** A resident region was evicted from a buffer cache slot to make
            room for another materialisation. *)
    | Pass_begin of { name : string }
    | Pass_end of { name : string; elapsed_s : float }
    | Job_submit of { label : string }
    | Job_start of { label : string; worker : int }
    | Job_finish of { label : string; worker : int; ok : bool; wall_s : float }

  type t = { ts : clock; payload : payload }

  val name : t -> string
  (** Short type tag, e.g. ["decomp_end"]. *)
end

module Trace : sig
  type t

  val schema_version : int

  val create : ?capacity:int -> unit -> t
  (** Bounded ring; default capacity 65536 events.  @raise Invalid_argument
      if [capacity < 1]. *)

  val emit : t -> Event.t -> unit
  (** Append, overwriting the oldest event once full.  Thread-safe. *)

  val emitted : t -> int
  (** Total events ever emitted (retained + dropped). *)

  val dropped : t -> int
  val length : t -> int

  val events : t -> Event.t list
  (** Retained events, oldest first. *)

  val to_chrome : t -> Report.Json.t
  (** Chrome trace-event JSON: spans ([ph:"X"]) for decompressions, passes
      and jobs, instants for stub transitions, buffer entries and job
      submissions.  Simulated-cycle events live on pid 0 (1 cycle = 1 µs
      tick); wall-clock events on pid 1, rebased to the earliest wall
      timestamp.  Begin/start markers are not exported separately — every
      span is synthesised from its end event, so a wrapped ring never
      produces unbalanced pairs. *)

  val to_jsonl : t -> string
  (** One JSON object per line; the first line is a header with the schema
      version and drop count. *)
end

module Metrics : sig
  type t

  val create : unit -> t

  val incr : t -> ?by:int -> string -> unit
  (** Bump a counter (created at 0 on first use). *)

  val set_gauge : t -> string -> int -> unit

  val max_gauge : t -> string -> int -> unit
  (** Gauge that keeps the maximum of all reported values. *)

  val observe : t -> string -> int -> unit
  (** Record a (non-negative) sample into a log₂-bucketed histogram:
      bucket [i ≥ 1] holds values in [[2^i, 2^(i+1))]; bucket 0 holds 0
      and 1. *)

  val counter_value : t -> string -> int
  (** 0 when the counter was never bumped. *)

  val histogram_count : t -> string -> int
  val histogram_sum : t -> string -> int

  val to_json : t -> Report.Json.t
  (** [{"counters": {...}, "gauges": {...}, "histograms": {name:
      {"count", "sum", "min", "max", "buckets": [{"lo","hi","count"}]}}}],
      keys sorted for deterministic output. *)
end

type t = { trace : Trace.t option; metrics : Metrics.t option }
(** A sink: either half may be absent.  Instrumented code holds a
    [t option] and does nothing — one branch — when it is [None]. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t

val full : ?capacity:int -> unit -> t
(** Both halves enabled. *)

val event : t -> Event.t -> unit
val incr : t -> ?by:int -> string -> unit
val max_gauge : t -> string -> int -> unit
val observe : t -> string -> int -> unit

val snapshot_json : t -> Report.Json.t
(** [{"metrics": ..., "trace": {"emitted", "dropped", "events": [...]}}]
    with absent halves rendered as [null]; trace events use the JSONL
    object shape. *)
