(** End-to-end observability: typed trace events and a metrics registry.

    The subsystem has two halves, both optional and both designed so that
    {e disabled means free}: every instrumented call site in the VM, the
    squash runtime, the pass pipeline and the experiment engine guards its
    emission behind a single branch on an optional {!t} sink.

    {b Trace} is a set of bounded per-shard ring buffers of {!Event.t}
    values.  Emission picks a shard by the emitting domain's id and locks
    only that shard's mutex, so worker domains tracing concurrently do
    not contend on one ring; a JOBS=32 engine run scales.  When a shard's
    ring wraps, its oldest events are overwritten and counted as dropped
    {e per shard} — a long run keeps its tail, which is what the
    runtime-overhead analysis wants, and memory stays bounded.  At export
    time the shards are merged deterministically: events sort by
    (clock track, timestamp, shard id, per-shard emission order), so the
    export is a pure function of the shard contents regardless of how
    emissions interleaved.  Timestamps are heterogeneous by design: the
    VM side stamps events in {e simulated cycles} (the clock the paper's
    overhead model runs on), the pipeline and engine stamp in host
    {e monotonic} seconds ({!Clock}).  Exporters render to the Chrome
    trace-event JSON format (loadable in Perfetto / [chrome://tracing];
    simulated and host clocks become separate process tracks) and to
    JSONL (one event per line, with a header line carrying the schema
    version, aggregate and per-shard drop accounting, and the monotonic
    clock's epoch offset).

    {b Metrics} is a registry of named counters, gauges and log₂-bucketed
    histograms with p50/p95/p99 quantile estimates, snapshotting to
    {!Report.Json}.  All operations are thread-safe (the engine emits
    from multiple domains). *)

module Clock : sig
  val now : unit -> float
  (** Monotonic host time in seconds since an arbitrary origin (the OS
      monotonic clock; never jumps backwards, unlike
      [Unix.gettimeofday]). *)

  val epoch_offset : unit -> float
  (** [wall - mono] sampled once per process: add it to a {!now} value to
      recover an approximate Unix-epoch timestamp.  Recorded in every
      export header. *)
end

module Event : sig
  type clock =
    | Cycles of int  (** Simulated cycles (VM-side events). *)
    | Mono of float  (** Host monotonic seconds ({!Clock.now}). *)

  type payload =
    | Decomp_begin of { region : int }
    | Decomp_end of { region : int; bits : int; words : int; cycles : int }
        (** [cycles] is the simulated cost charged for this decompression. *)
    | Buffer_enter of { region : int; offset : int; pc : int }
        (** Control entered the runtime buffer at word [offset]. *)
    | Stub_create of { region : int; ret : int; live : int }
    | Stub_reuse of { region : int; ret : int; live : int }
    | Stub_free of { region : int; ret : int; live : int }
        (** [live] is the live-stub depth {e after} the transition. *)
    | Cache_evict of { region : int; slot : int }
        (** A resident region was evicted from a buffer cache slot to make
            room for another materialisation. *)
    | Pass_begin of { name : string }
    | Pass_end of { name : string; elapsed_s : float }
    | Job_submit of { label : string }
    | Job_start of { label : string; worker : int }
    | Job_finish of { label : string; worker : int; ok : bool; wall_s : float }

  type t = { ts : clock; payload : payload }

  val name : t -> string
  (** Short type tag, e.g. ["decomp_end"]. *)

  val to_json : t -> Report.Json.t
  (** The JSONL object shape: [{"ev", "clock", "ts", ...fields}]. *)
end

module Trace : sig
  type t

  val schema_version : int
  (** 2: sharded rings, the monotonic host clock, per-shard drop
      accounting in export headers. *)

  val create : ?capacity:int -> ?shards:int -> unit -> t
  (** [capacity] (default 65536) is the {e total} event budget, split
      evenly across [shards] rings (default 1; each ring holds at least
      one event).  @raise Invalid_argument if either is [< 1]. *)

  val shard_count : t -> int

  val emit : t -> Event.t -> unit
  (** Append to the emitting domain's shard ([Domain.self () mod
      shard_count]), overwriting that shard's oldest event once full.
      Thread-safe; only the target shard's mutex is taken. *)

  val emit_into : t -> shard:int -> Event.t -> unit
  (** Append to an explicit shard (reduced mod [shard_count]).  Exists so
      determinism tests can control shard placement exactly; production
      call sites use {!emit}. *)

  val emitted : t -> int
  (** Total events ever emitted across all shards (retained + dropped). *)

  val dropped : t -> int
  val length : t -> int

  val shard_stats : t -> (int * int) array
  (** Per-shard [(emitted, dropped)], indexed by shard id. *)

  val events : t -> Event.t list
  (** The deterministic merge of every shard's retained events: sorted by
      clock track (host {!Event.Mono} first, then simulated
      {!Event.Cycles}), then timestamp, then shard id, then per-shard
      emission order.  A pure function of the shard contents. *)

  val to_chrome : t -> Report.Json.t
  (** Chrome trace-event JSON: spans ([ph:"X"]) for decompressions, passes
      and jobs, instants for stub transitions, buffer entries and job
      submissions.  Simulated-cycle events live on pid 0 (1 cycle = 1 µs
      tick); host events on pid 1, rebased to the earliest host timestamp.
      [otherData] carries aggregate and per-shard emitted/dropped counts
      and the monotonic clock's epoch offset.  Begin/start markers are not
      exported separately — every span is synthesised from its end event,
      so a wrapped ring never produces unbalanced pairs. *)

  val to_jsonl : t -> string
  (** One JSON object per line; the first line is a header with the schema
      version, aggregate and per-shard drop accounting, and the epoch
      offset. *)

  val shards_json : t -> Report.Json.t
  (** The per-shard accounting array as exported in both headers. *)
end

module Metrics : sig
  type t

  val create : unit -> t

  val incr : t -> ?by:int -> string -> unit
  (** Bump a counter (created at 0 on first use). *)

  val set_gauge : t -> string -> int -> unit

  val max_gauge : t -> string -> int -> unit
  (** Gauge that keeps the maximum of all reported values. *)

  val observe : t -> string -> int -> unit
  (** Record a (non-negative) sample into a log₂-bucketed histogram:
      bucket [i ≥ 1] holds values in [[2^i, 2^(i+1))]; bucket 0 holds 0
      and 1. *)

  val counter_value : t -> string -> int
  (** 0 when the counter was never bumped. *)

  val histogram_count : t -> string -> int
  val histogram_sum : t -> string -> int

  val histogram_quantile : t -> string -> float -> float option
  (** [histogram_quantile t name q] estimates the [q]-quantile (q ∈
      [0, 1]) by linear interpolation inside the log₂ bucket holding the
      target rank, clamped to the observed min/max; [None] for an empty
      or unknown histogram.  Every snapshot reports p50/p95/p99 through
      this estimator. *)

  val to_json : t -> Report.Json.t
  (** [{"counters": {...}, "gauges": {...}, "histograms": {name:
      {"count", "sum", "min", "max", "p50", "p95", "p99",
      "buckets": [{"lo","hi","count"}]}}}], keys sorted for deterministic
      output. *)
end

type t = { trace : Trace.t option; metrics : Metrics.t option }
(** A sink: either half may be absent.  Instrumented code holds a
    [t option] and does nothing — one branch — when it is [None]. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t

val full : ?capacity:int -> ?shards:int -> unit -> t
(** Both halves enabled.  [shards] defaults to
    [Domain.recommended_domain_count ()] so engine workers get
    domain-local rings out of the box; pass [~shards:1] for the
    single-ring behaviour. *)

val event : t -> Event.t -> unit
val incr : t -> ?by:int -> string -> unit
val max_gauge : t -> string -> int -> unit
val observe : t -> string -> int -> unit

val snapshot_json : t -> Report.Json.t
(** [{"metrics": ..., "trace": {"emitted", "dropped", "shards",
    "events": [...]}}] with absent halves rendered as [null]; trace
    events use the JSONL object shape. *)
