(** Profile lifecycle operations.

    A production profile pipeline rarely ships the exact counts of a
    single run: it merges profiles from many inputs (weighted by traffic
    share), ages out profiles from old releases (exponential decay),
    truncates or quantises before shipping, and needs a distance metric
    to decide when a deployed profile has drifted far enough to
    re-profile.  These operations all return {!Profile.t} values whose
    {!Profile.source} is [Derived] with a human-readable recipe, so
    downstream cache keys distinguish them from exact profiles. *)

val merge : ?w:float -> Profile.t -> Profile.t -> Profile.t
(** [merge ~w a b] is [a + w·b] pointwise (counts rounded to nearest;
    all-zero entries dropped).  [w] defaults to 1.0 — the plain sum, like
    {!Profile.merge} but with [Derived] provenance.
    @raise Invalid_argument if [w < 0]. *)

val decay : Profile.t -> factor:float -> Profile.t
(** Exponential aging: scale every frequency and weight by [factor]
    (rounded to nearest; entries decayed to zero are dropped).  Apply [n]
    times for a profile [n] releases stale.  [decay ~factor:1.0] is the
    identity on entries.  @raise Invalid_argument unless [0 ≤ factor ≤ 1]. *)

val truncate_top : Profile.t -> keep:int -> Profile.t
(** Keep only the [keep] heaviest blocks (ties broken by key order, so
    the result is deterministic); the total becomes the kept weight sum. *)

val quantize : Profile.t -> bits:int -> Profile.t
(** Keep only the top [bits] significant bits of every count (zeroing the
    rest) — the lossy compaction a profile pipeline applies before
    shipping.  @raise Invalid_argument if [bits < 1]. *)

val distance : Profile.t -> Profile.t -> float
(** Total-variation distance between the normalised block-weight
    distributions: [½ Σ |a_k/A − b_k/B|], in [0, 1] — 0 for identically
    distributed profiles (scaling-invariant), 1 for disjoint support.
    Two empty profiles are at distance 0; an empty vs. a non-empty
    profile is at distance 1. *)

val overlap : Profile.t -> Profile.t -> float
(** [1 − distance]. *)
