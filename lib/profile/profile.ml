type source = Exact | Sampled of { period : int; seed : int } | Derived of string

type entry = { mutable freq : int; mutable weight : int }

type t = {
  table : (string * int, entry) Hashtbl.t;
  mutable total : int;
  source : source;
}

let empty = { table = Hashtbl.create 1; total = 0; source = Exact }

let source t = t.source

let fresh ?(source = Exact) () = { table = Hashtbl.create 512; total = 0; source }

let entry_of t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = { freq = 0; weight = 0 } in
    Hashtbl.replace t.table key e;
    e

let collect ?fuel (p : Prog.t) ~input =
  let img = Layout.emit p in
  let vm = Vm.of_image ?fuel ~profile:true img ~input in
  let outcome = Vm.run vm in
  let counts = Option.get (Vm.counts vm) in
  let t = fresh () in
  (* Weight: every executed word counts toward its owner block. *)
  Array.iteri
    (fun i owner ->
      match owner with
      | None -> ()
      | Some key ->
        if counts.(i) > 0 then begin
          let e = entry_of t key in
          e.weight <- e.weight + counts.(i);
          t.total <- t.total + counts.(i)
        end)
    img.Layout.owners;
  (* Frequency: executions of the block's first word. *)
  Hashtbl.iter
    (fun key addr ->
      let idx = (addr - img.Layout.text_base) / 4 in
      if idx >= 0 && idx < Array.length counts && counts.(idx) > 0 then
        (entry_of t key).freq <- counts.(idx))
    img.Layout.block_addr;
  (t, outcome)

let collect_sampled ?fuel ~period ~seed (p : Prog.t) ~input =
  let img = Layout.emit p in
  let vm = Vm.of_image ?fuel ~profile:true ~sampler:{ Vm.period; seed } img ~input in
  let outcome = Vm.run vm in
  let counts = Option.get (Vm.counts vm) in
  (* Words per block, so sampled weights can be turned back into an
     estimated entry frequency. *)
  let block_words = Hashtbl.create 512 in
  Array.iter
    (fun owner ->
      match owner with
      | None -> ()
      | Some key ->
        Hashtbl.replace block_words key
          (1 + Option.value ~default:0 (Hashtbl.find_opt block_words key)))
    img.Layout.owners;
  let t = fresh ~source:(Sampled { period; seed }) () in
  (* Estimated weight: each sampled hit stands for [period] dynamic
     instructions.  With period 1 the sampler fires on every instruction
     and this reproduces the exact profile. *)
  Array.iteri
    (fun i owner ->
      match owner with
      | None -> ()
      | Some key ->
        if counts.(i) > 0 then begin
          let w = counts.(i) * period in
          let e = entry_of t key in
          e.weight <- e.weight + w;
          t.total <- t.total + w
        end)
    img.Layout.owners;
  (* Estimated frequency: scaled-up samples of the block's first word — the
     same estimator [collect] uses, so period 1 reproduces it exactly.  When
     the first word was never sampled (sparse periods), fall back to the
     weight spread evenly over the block's words; a sampled block executed
     at least once. *)
  Hashtbl.iter
    (fun key addr ->
      let idx = (addr - img.Layout.text_base) / 4 in
      if idx >= 0 && idx < Array.length counts && counts.(idx) > 0 then
        (entry_of t key).freq <- counts.(idx) * period)
    img.Layout.block_addr;
  Hashtbl.iter
    (fun key (e : entry) ->
      if e.freq = 0 && e.weight > 0 then begin
        let size = max 1 (Option.value ~default:1 (Hashtbl.find_opt block_words key)) in
        e.freq <-
          max 1 (int_of_float (Float.round (float_of_int e.weight /. float_of_int size)))
      end)
    t.table;
  (t, outcome)

let freq t f b = match Hashtbl.find_opt t.table (f, b) with Some e -> e.freq | None -> 0

let weight t f b =
  match Hashtbl.find_opt t.table (f, b) with Some e -> e.weight | None -> 0

let total_weight t = t.total

let merge a b =
  let source =
    match (a.source, b.source) with Exact, Exact -> Exact | _ -> Derived "merge"
  in
  let t =
    {
      table = Hashtbl.create (Hashtbl.length a.table);
      total = a.total + b.total;
      source;
    }
  in
  let add src =
    Hashtbl.iter
      (fun key (e : entry) ->
        let dst = entry_of t key in
        dst.freq <- dst.freq + e.freq;
        dst.weight <- dst.weight + e.weight)
      src.table
  in
  add a;
  add b;
  t

let fold f t init =
  Hashtbl.fold (fun key (e : entry) acc -> f key ~freq:e.freq ~weight:e.weight acc)
    t.table init

let entries t =
  Hashtbl.fold (fun key (e : entry) acc -> (key, e.freq, e.weight) :: acc) t.table []
  |> List.sort compare

let of_entries ?(source = Exact) es =
  let t = fresh ~source () in
  List.iter
    (fun ((f, b), freq, weight) ->
      if freq < 0 || weight < 0 then
        invalid_arg
          (Printf.sprintf "Profile.of_entries: negative count for %s %d" f b);
      if Hashtbl.mem t.table (f, b) then
        invalid_arg (Printf.sprintf "Profile.of_entries: duplicate entry %s %d" f b);
      Hashtbl.replace t.table (f, b) { freq; weight };
      t.total <- t.total + weight)
    es;
  t

let source_line = function
  | Exact -> None
  | Sampled { period; seed } -> Some (Printf.sprintf "source sampled %d %d" period seed)
  | Derived what ->
    let what = String.map (fun c -> if c = '\n' then ' ' else c) what in
    Some (Printf.sprintf "source derived %s" what)

let to_string t =
  let buf = Buffer.create 4096 in
  (match source_line t.source with
  | None -> ()
  | Some l ->
    Buffer.add_string buf l;
    Buffer.add_char buf '\n');
  Buffer.add_string buf (Printf.sprintf "total %d\n" t.total);
  List.iter
    (fun ((f, b), freq, weight) ->
      Buffer.add_string buf (Printf.sprintf "%s %d %d %d\n" f b freq weight))
    (entries t);
  Buffer.contents buf

(* The parser is strict where the producer is deterministic: one optional
   [source] line, exactly one [total] line, no duplicate (func, block)
   entries, no negative counts, and the total must equal the entry-weight
   sum.  Errors carry 1-based line positions. *)
let of_string s =
  let t = { table = Hashtbl.create 512; total = 0; source = Exact } in
  let src = ref None in
  let saw_total = ref None in
  let weight_sum = ref 0 in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_source lineno rest =
    if !src <> None then err lineno "duplicate source line"
    else if !saw_total <> None || Hashtbl.length t.table > 0 then
      err lineno "source line must come first"
    else
      match rest with
      | [ "sampled"; p; sd ] -> (
        match (int_of_string_opt p, int_of_string_opt sd) with
        | Some p, Some sd when p >= 1 ->
          src := Some (Sampled { period = p; seed = sd });
          Ok ()
        | _ -> err lineno "bad sampled source parameters")
      | "derived" :: rest when rest <> [] ->
        src := Some (Derived (String.concat " " rest));
        Ok ()
      | _ -> err lineno "bad source line"
  in
  let parse_line lineno line =
    match String.split_on_char ' ' line with
    | "source" :: rest -> parse_source lineno rest
    | [ "total"; n ] -> (
      match (!saw_total, int_of_string_opt n) with
      | Some _, _ -> err lineno "duplicate total line"
      | None, Some n when n >= 0 ->
        saw_total := Some n;
        Ok ()
      | None, Some _ -> err lineno "negative total"
      | None, None -> err lineno (Printf.sprintf "bad total %S" n))
    | [ f; b; fr; w ] -> (
      match (int_of_string_opt b, int_of_string_opt fr, int_of_string_opt w) with
      | Some b, Some fr, Some w ->
        if fr < 0 || w < 0 then
          err lineno (Printf.sprintf "negative count for %s %d" f b)
        else if Hashtbl.mem t.table (f, b) then
          err lineno (Printf.sprintf "duplicate entry %s %d" f b)
        else begin
          Hashtbl.replace t.table (f, b) { freq = fr; weight = w };
          weight_sum := !weight_sum + w;
          Ok ()
        end
      | _ -> err lineno (Printf.sprintf "bad profile line %S" line))
    | _ -> err lineno (Printf.sprintf "bad profile line %S" line)
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> (
      match !saw_total with
      | None -> Error "missing total line"
      | Some n when n <> !weight_sum ->
        Error
          (Printf.sprintf "total %d inconsistent with entry weight sum %d" n
             !weight_sum)
      | Some n ->
        Ok
          {
            t with
            total = n;
            source = Option.value ~default:Exact !src;
          })
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest -> (
      match parse_line lineno line with
      | Ok () -> go (lineno + 1) rest
      | Error e -> Error e)
  in
  go 1 lines

let pp_summary ppf t =
  let blocks = Hashtbl.length t.table in
  let executed =
    Hashtbl.fold (fun _ e acc -> if e.freq > 0 then acc + 1 else acc) t.table 0
  in
  let provenance =
    match t.source with
    | Exact -> ""
    | Sampled { period; seed } ->
      Printf.sprintf " (sampled, period %d, seed %d)" period seed
    | Derived what -> Printf.sprintf " (derived: %s)" what
  in
  Format.fprintf ppf
    "profile: %d blocks recorded, %d executed, %d dynamic instructions%s" blocks
    executed t.total provenance
