type entry = { mutable freq : int; mutable weight : int }

type t = { table : (string * int, entry) Hashtbl.t; mutable total : int }

let empty = { table = Hashtbl.create 1; total = 0 }

let entry_of t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    let e = { freq = 0; weight = 0 } in
    Hashtbl.replace t.table key e;
    e

let collect ?fuel (p : Prog.t) ~input =
  let img = Layout.emit p in
  let vm = Vm.of_image ?fuel ~profile:true img ~input in
  let outcome = Vm.run vm in
  let counts = Option.get (Vm.counts vm) in
  let t = { table = Hashtbl.create 512; total = 0 } in
  (* Weight: every executed word counts toward its owner block. *)
  Array.iteri
    (fun i owner ->
      match owner with
      | None -> ()
      | Some key ->
        if counts.(i) > 0 then begin
          let e = entry_of t key in
          e.weight <- e.weight + counts.(i);
          t.total <- t.total + counts.(i)
        end)
    img.Layout.owners;
  (* Frequency: executions of the block's first word. *)
  Hashtbl.iter
    (fun key addr ->
      let idx = (addr - img.Layout.text_base) / 4 in
      if idx >= 0 && idx < Array.length counts && counts.(idx) > 0 then
        (entry_of t key).freq <- counts.(idx))
    img.Layout.block_addr;
  (t, outcome)

let freq t f b = match Hashtbl.find_opt t.table (f, b) with Some e -> e.freq | None -> 0

let weight t f b =
  match Hashtbl.find_opt t.table (f, b) with Some e -> e.weight | None -> 0

let total_weight t = t.total

let merge a b =
  let t = { table = Hashtbl.create (Hashtbl.length a.table); total = a.total + b.total } in
  let add src =
    Hashtbl.iter
      (fun key (e : entry) ->
        let dst = entry_of t key in
        dst.freq <- dst.freq + e.freq;
        dst.weight <- dst.weight + e.weight)
      src.table
  in
  add a;
  add b;
  t

let fold f t init =
  Hashtbl.fold (fun key (e : entry) acc -> f key ~freq:e.freq ~weight:e.weight acc)
    t.table init

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "total %d\n" t.total);
  let entries =
    Hashtbl.fold (fun (f, b) e acc -> (f, b, e.freq, e.weight) :: acc) t.table []
    |> List.sort compare
  in
  List.iter
    (fun (f, b, freq, weight) ->
      Buffer.add_string buf (Printf.sprintf "%s %d %d %d\n" f b freq weight))
    entries;
  Buffer.contents buf

let of_string s =
  let t = { table = Hashtbl.create 512; total = 0 } in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ "total"; n ] -> (
      match int_of_string_opt n with
      | Some n ->
        t.total <- n;
        Ok ()
      | None -> Error (Printf.sprintf "bad total %S" n))
    | [ f; b; fr; w ] -> (
      match (int_of_string_opt b, int_of_string_opt fr, int_of_string_opt w) with
      | Some b, Some fr, Some w ->
        Hashtbl.replace t.table (f, b) { freq = fr; weight = w };
        Ok ()
      | _ -> Error (Printf.sprintf "bad profile line %S" line))
    | _ -> Error (Printf.sprintf "bad profile line %S" line)
  in
  let rec go = function
    | [] -> Ok t
    | line :: rest -> ( match parse_line line with Ok () -> go rest | Error e -> Error e)
  in
  go lines

let pp_summary ppf t =
  let blocks = Hashtbl.length t.table in
  let executed =
    Hashtbl.fold (fun _ e acc -> if e.freq > 0 then acc + 1 else acc) t.table 0
  in
  Format.fprintf ppf "profile: %d blocks recorded, %d executed, %d dynamic instructions"
    blocks executed t.total
