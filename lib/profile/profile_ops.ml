let describe p =
  match Profile.source p with
  | Profile.Exact -> "exact"
  | Profile.Sampled { period; seed } -> Printf.sprintf "sampled p=%d s=%d" period seed
  | Profile.Derived what -> what

let derived p op = Profile.Derived (describe p ^ " |> " ^ op)

let round_scale v factor = int_of_float (Float.round (float_of_int v *. factor))

(* Union of two entry lists as a (key -> (freq_a, weight_a, freq_b,
   weight_b)) association, in canonical key order. *)
let paired a b =
  let tbl = Hashtbl.create 512 in
  List.iter (fun (key, f, w) -> Hashtbl.replace tbl key (f, w, 0, 0)) (Profile.entries a);
  List.iter
    (fun (key, f, w) ->
      match Hashtbl.find_opt tbl key with
      | Some (fa, wa, _, _) -> Hashtbl.replace tbl key (fa, wa, f, w)
      | None -> Hashtbl.replace tbl key (0, 0, f, w))
    (Profile.entries b);
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) tbl [] |> List.sort compare

let nonzero (_, f, w) = f > 0 || w > 0

let merge ?(w = 1.0) a b =
  if w < 0.0 then invalid_arg "Profile_ops.merge: negative weight";
  let entries =
    paired a b
    |> List.map (fun (key, (fa, wa, fb, wb)) ->
           (key, fa + round_scale fb w, wa + round_scale wb w))
    |> List.filter nonzero
  in
  let op =
    if w = 1.0 then Printf.sprintf "merge (%s)" (describe b)
    else Printf.sprintf "merge w=%g (%s)" w (describe b)
  in
  Profile.of_entries ~source:(derived a op) entries

let decay p ~factor =
  if factor < 0.0 || factor > 1.0 then
    invalid_arg "Profile_ops.decay: factor must be in [0, 1]";
  let entries =
    Profile.entries p
    |> List.map (fun (key, f, w) -> (key, round_scale f factor, round_scale w factor))
    |> List.filter nonzero
  in
  Profile.of_entries
    ~source:(derived p (Printf.sprintf "decay %g" factor))
    entries

let truncate_top p ~keep =
  if keep < 0 then invalid_arg "Profile_ops.truncate_top: negative keep";
  let by_weight (ka, fa, wa) (kb, fb, wb) =
    (* Heaviest first; deterministic key order among equals. *)
    match compare (wb, fb) (wa, fa) with 0 -> compare ka kb | c -> c
  in
  let entries =
    Profile.entries p |> List.sort by_weight
    |> List.filteri (fun i _ -> i < keep)
    |> List.sort compare
  in
  Profile.of_entries
    ~source:(derived p (Printf.sprintf "truncate top %d" keep))
    entries

let quantize_value bits v =
  if v <= 0 then v
  else begin
    let n = ref 0 in
    while v lsr !n > 0 do
      incr n
    done;
    (* !n = significant bits of v; zero everything below the top [bits]. *)
    if !n <= bits then v else v land lnot ((1 lsl (!n - bits)) - 1)
  end

let quantize p ~bits =
  if bits < 1 then invalid_arg "Profile_ops.quantize: bits must be >= 1";
  let entries =
    Profile.entries p
    |> List.map (fun (key, f, w) -> (key, quantize_value bits f, quantize_value bits w))
    |> List.filter nonzero
  in
  Profile.of_entries
    ~source:(derived p (Printf.sprintf "quantize %db" bits))
    entries

let distance a b =
  let ta = float_of_int (Profile.total_weight a) in
  let tb = float_of_int (Profile.total_weight b) in
  if ta = 0.0 && tb = 0.0 then 0.0
  else if ta = 0.0 || tb = 0.0 then 1.0
  else
    let sum =
      List.fold_left
        (fun acc (_, (_, wa, _, wb)) ->
          acc +. Float.abs ((float_of_int wa /. ta) -. (float_of_int wb /. tb)))
        0.0 (paired a b)
    in
    (* Clamp: float summation can overshoot the mathematical [0, 1] range
       by an ulp on disjoint-support profiles. *)
    Float.min 1.0 (Float.max 0.0 (sum /. 2.0))

let overlap a b = 1.0 -. distance a b
