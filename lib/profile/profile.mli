(** Basic-block execution profiles (paper, Section 5).

    A profile records, for every basic block, its execution frequency and
    its {e weight} — the number of dynamic instructions it contributed
    (frequency × size, measured exactly from per-word execution counts).
    The total weight is the program's total dynamic instruction count,
    [tot_instr_ct] in the paper. *)

type t

val collect : ?fuel:int -> Prog.t -> input:string -> t * Vm.outcome
(** Run the program under the profiling VM and aggregate counts per block.
    @raise Vm.Trap if the program traps. *)

val empty : t
(** The all-zero profile ([freq] and [weight] are 0 everywhere): everything
    is cold, as with [θ = 1.0] in spirit. *)

val freq : t -> string -> int -> int
(** Execution count of (function, block); 0 if never executed. *)

val weight : t -> string -> int -> int
(** Dynamic instructions attributed to (function, block). *)

val total_weight : t -> int

val merge : t -> t -> t
(** Pointwise sum — combine profiles from several training inputs. *)

val fold :
  (string * int -> freq:int -> weight:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every recorded (function, block) entry, in unspecified
    order. *)

val to_string : t -> string
(** Serialise (one [func block freq weight] line per block, plus a total
    line). *)

val of_string : string -> (t, string) result

val pp_summary : Format.formatter -> t -> unit
