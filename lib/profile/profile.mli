(** Basic-block execution profiles (paper, Section 5).

    A profile records, for every basic block, its execution frequency and
    its {e weight} — the number of dynamic instructions it contributed
    (frequency × size, measured exactly from per-word execution counts).
    The total weight is the program's total dynamic instruction count,
    [tot_instr_ct] in the paper.

    Profiles carry {b provenance} ({!source}): exact counts, statistically
    sampled estimates (see {!Vm.sampler}), or values derived by lifecycle
    operations such as merge/decay/truncation (see {!Profile_ops}).
    Provenance is serialised with the profile and participates in cache
    keys downstream, so estimated and exact profiles never alias. *)

type t

type source =
  | Exact  (** Every executed word counted. *)
  | Sampled of { period : int; seed : int }
      (** Estimated from periodic samples, scaled up by [period]. *)
  | Derived of string
      (** Produced by a lifecycle operation; the payload is a short
          human-readable recipe (never contains a newline). *)

val source : t -> source

val collect : ?fuel:int -> Prog.t -> input:string -> t * Vm.outcome
(** Run the program under the profiling VM and aggregate counts per block.
    @raise Vm.Trap if the program traps. *)

val collect_sampled :
  ?fuel:int -> period:int -> seed:int -> Prog.t -> input:string -> t * Vm.outcome
(** Like {!collect}, but under a {!Vm.sampler} with the given period and
    seed: each sampled hit stands for [period] dynamic instructions.
    Block frequencies are estimated from the scaled-up samples of the
    block's first word (the estimator {!collect} uses), falling back to
    weight / block words when the first word was never sampled.  Fully
    deterministic for a fixed seed; [period = 1] reproduces {!collect}
    byte-for-byte.  @raise Invalid_argument if [period < 1]. *)

val empty : t
(** The all-zero profile ([freq] and [weight] are 0 everywhere): everything
    is cold, as with [θ = 1.0] in spirit. *)

val freq : t -> string -> int -> int
(** Execution count of (function, block); 0 if never executed. *)

val weight : t -> string -> int -> int
(** Dynamic instructions attributed to (function, block). *)

val total_weight : t -> int

val merge : t -> t -> t
(** Pointwise sum — combine profiles from several training inputs.  Exact
    inputs merge to an exact profile; anything else is [Derived "merge"].
    For the weighted variant see {!Profile_ops.merge}. *)

val fold :
  (string * int -> freq:int -> weight:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every recorded (function, block) entry, in unspecified
    order. *)

val entries : t -> ((string * int) * int * int) list
(** All [(key, freq, weight)] entries sorted by (function, block) — the
    canonical order used by {!to_string}. *)

val of_entries : ?source:source -> ((string * int) * int * int) list -> t
(** Build a profile from entries; the total is the entry-weight sum.
    @raise Invalid_argument on a duplicate key or negative count. *)

val to_string : t -> string
(** Serialise: an optional provenance line (omitted for [Exact], keeping
    the historical format stable), a total line, then one
    [func block freq weight] line per block in {!entries} order.  Output
    is deterministic — equal profiles serialise byte-identically. *)

val of_string : string -> (t, string) result
(** Parse {!to_string} output.  Rejects (with 1-based [line N:]
    positions): negative counts or totals, duplicate (func, block)
    entries, duplicate or missing [total] lines, a [total] inconsistent
    with the entry-weight sum, and malformed [source] lines. *)

val pp_summary : Format.formatter -> t -> unit
