exception Invalid_code of string

type t = {
  n : int array;  (* n.(i) = number of codewords of length i; n.(0) = 0 *)
  d : int array;  (* symbols in codeword order *)
  enc : (int, int * int) Hashtbl.t;
  max_len : int;
  tab_bits : int;  (* probe width of the decode table; 0 iff the code is empty *)
  tab_sym : int array;  (* 2^tab_bits entries: symbol for each probe value *)
  tab_len : int array;  (* codeword length; 0 = longer than tab_bits (slow path) *)
}

(* Codeword lengths must fit the Kraft arithmetic below and the shipped
   table format (16-bit N entries behind a 6-bit count). *)
let max_code_len = 48
let default_table_bits = 9

let of_lengths lengths =
  let sorted = List.sort (fun (s1, l1) (s2, l2) -> compare (l1, s1) (l2, s2)) lengths in
  let max_len = List.fold_left (fun acc (_, l) -> max acc l) 0 sorted in
  let n = Array.make (max_len + 1) 0 in
  List.iter
    (fun (_, l) ->
      if l < 1 || l > max_code_len then
        raise
          (Invalid_code (Printf.sprintf "Canonical.of_lengths: length %d out of range" l));
      n.(l) <- n.(l) + 1)
    sorted;
  (* Kraft inequality in units of 2^-max_code_len: an over-full length
     multiset would assign overlapping codewords and decode wrong symbols,
     so it must be rejected here, not discovered at decode time.  Under-full
     codes are legal — a single-symbol alphabet gets one length-1 codeword
     (sum 1/2) and the unused codeword space simply decodes as corrupt. *)
  let kraft = List.fold_left (fun acc (_, l) -> acc + (1 lsl (max_code_len - l))) 0 sorted in
  if kraft > 1 lsl max_code_len then
    raise (Invalid_code "Canonical.of_lengths: lengths violate the Kraft inequality");
  let d = Array.of_list (List.map fst sorted) in
  (* First codeword of each length: b.(1) = 0, b.(i) = 2 (b.(i-1) + n.(i-1)). *)
  let b = Array.make (max_len + 2) 0 in
  for i = 2 to max_len do
    b.(i) <- 2 * (b.(i - 1) + n.(i - 1))
  done;
  let enc = Hashtbl.create (Array.length d) in
  let next = Array.copy b in
  List.iter
    (fun (s, l) ->
      Hashtbl.replace enc s (next.(l), l);
      next.(l) <- next.(l) + 1)
    sorted;
  (* The code-length-limited decode table: every probe value whose first
     bits are a codeword of length ≤ tab_bits resolves in one lookup; the
     rest fall back to the bit loop.  Kraft validation above guarantees the
     fill never collides. *)
  let tab_bits = min max_len default_table_bits in
  let tab_sym = Array.make (1 lsl tab_bits) 0 in
  let tab_len = Array.make (1 lsl tab_bits) 0 in
  List.iter
    (fun (s, l) ->
      if l <= tab_bits then begin
        let code, _ = Hashtbl.find enc s in
        let base = code lsl (tab_bits - l) in
        for i = base to base + (1 lsl (tab_bits - l)) - 1 do
          tab_sym.(i) <- s;
          tab_len.(i) <- l
        done
      end)
    sorted;
  { n; d; enc; max_len; tab_bits; tab_sym; tab_len }

let of_freqs freqs = of_lengths (Huffman.code_lengths freqs)
let symbol_count t = Array.length t.d
let max_length t = t.max_len
let table_width t = t.tab_bits
let counts t = Array.copy t.n
let symbols t = Array.copy t.d
let codeword t s = Hashtbl.find_opt t.enc s

let encode t w s =
  match Hashtbl.find_opt t.enc s with
  | Some (code, len) -> Bitio.Writer.put w ~bits:len code
  | None -> invalid_arg (Printf.sprintf "Canonical.encode: symbol %d not in alphabet" s)

(* The paper's DECODE(), with N.(0) = 0:
     v <- 0, b <- 0, j <- 0, i <- 0
     do  v <- 2v + NEXTBIT(); b <- 2(b + N[i]); j <- j + N[i]; i <- i + 1
     while (v >= b + N[i])
     return D[j + v - b]                                                   *)
let decode_bitloop t r =
  if Array.length t.d = 0 then raise (Bitio.Corrupt_stream "Canonical.decode: empty code");
  let v = ref 0 and b = ref 0 and j = ref 0 and i = ref 0 in
  let continue = ref true in
  while !continue do
    v := (2 * !v) + Bitio.Reader.next_bit r;
    b := 2 * (!b + t.n.(!i));
    j := !j + t.n.(!i);
    incr i;
    if !v < !b + t.n.(!i) then continue := false
    else if !i >= t.max_len then
      raise (Bitio.Corrupt_stream "Canonical.decode: corrupt stream")
  done;
  (t.d.(!j + !v - !b), !i)

(* Table-driven decode: one probe resolves any codeword of length ≤
   tab_bits; longer codewords (and the codeword space an under-full code
   leaves unmapped) fall back to the bit loop.  Probes are reported so the
   cycle model can keep charging real decode work ([Cost.decomp_per_step]):
   a hit costs 1 step, a fallback costs the failed probe plus one step per
   bit the loop consumes. *)
let decode t r =
  if Array.length t.d = 0 then raise (Bitio.Corrupt_stream "Canonical.decode: empty code");
  let w = Bitio.Reader.peek r ~bits:t.tab_bits in
  let len = t.tab_len.(w) in
  if len > 0 then begin
    Bitio.Reader.advance r ~bits:len;
    (t.tab_sym.(w), len, 1)
  end
  else
    let sym, bits = decode_bitloop t r in
    (sym, bits, 1 + bits)

let table_bits ~value_bits t = 6 + (16 * t.max_len) + (value_bits * Array.length t.d)
