let min_match = 3
let max_match = 18
let window = 4096

(* Greedy parse with a 3-byte hash chain. *)
let compress input =
  let n = String.length input in
  let out = Buffer.create (n / 2) in
  let head = Hashtbl.create 1024 in  (* 3-byte key -> positions, newest first *)
  let key i =
    Char.code input.[i]
    lor (Char.code input.[i + 1] lsl 8)
    lor (Char.code input.[i + 2] lsl 16)
  in
  let record i =
    if i + 2 < n then
      Hashtbl.replace head (key i)
        (i :: Option.value ~default:[] (Hashtbl.find_opt head (key i)))
  in
  let find_match i =
    if i + min_match > n then None
    else
      let candidates = Option.value ~default:[] (Hashtbl.find_opt head (key i)) in
      let best = ref None in
      List.iteri
        (fun rank j ->
          if rank < 16 && j >= i - window then begin
            let len = ref 0 in
            while
              !len < max_match && i + !len < n && input.[j + !len] = input.[i + !len]
            do
              incr len
            done;
            match !best with
            | Some (_, blen) when blen >= !len -> ()
            | _ -> if !len >= min_match then best := Some (j, !len)
          end)
        candidates;
      !best
  in
  let items = Buffer.create 16 in
  let flags = ref 0 in
  let nitems = ref 0 in
  let flush () =
    if !nitems > 0 then begin
      Buffer.add_char out (Char.chr !flags);
      Buffer.add_buffer out items;
      Buffer.clear items;
      flags := 0;
      nitems := 0
    end
  in
  let add_literal c =
    Buffer.add_char items c;
    incr nitems;
    if !nitems = 8 then flush ()
  in
  let add_ref ~offset ~len =
    flags := !flags lor (1 lsl !nitems);
    let v = ((offset - 1) lsl 4) lor (len - min_match) in
    Buffer.add_char items (Char.chr (v land 0xFF));
    Buffer.add_char items (Char.chr ((v lsr 8) land 0xFF));
    incr nitems;
    if !nitems = 8 then flush ()
  in
  let i = ref 0 in
  while !i < n do
    (match find_match !i with
    | Some (j, len) ->
      add_ref ~offset:(!i - j) ~len;
      for k = !i to !i + len - 1 do
        record k
      done;
      i := !i + len
    | None ->
      add_literal input.[!i];
      record !i;
      incr i)
  done;
  flush ();
  Buffer.contents out

let decompress input =
  let n = String.length input in
  let out = Buffer.create (2 * n) in
  let steps = ref 0 in
  let i = ref 0 in
  (try
     while !i < n do
       let flags = Char.code input.[!i] in
       incr i;
       let item = ref 0 in
       while !item < 8 && !i < n do
         if flags land (1 lsl !item) = 0 then begin
           Buffer.add_char out input.[!i];
           incr i;
           incr steps
         end
         else begin
           if !i + 1 >= n then
             raise (Bitio.Corrupt_stream "Lzss.decompress: truncated reference");
           let v = Char.code input.[!i] lor (Char.code input.[!i + 1] lsl 8) in
           i := !i + 2;
           let offset = (v lsr 4) + 1 in
           let len = (v land 0xF) + min_match in
           let start = Buffer.length out - offset in
           if start < 0 then
             raise (Bitio.Corrupt_stream "Lzss.decompress: reference before start");
           for k = 0 to len - 1 do
             (* Self-overlapping copies are valid (runs). *)
             Buffer.add_char out (Buffer.nth out (start + k));
             incr steps
           done
         end;
         incr item
       done
     done
   with Invalid_argument _ ->
     raise (Bitio.Corrupt_stream "Lzss.decompress: corrupt stream"));
  (Buffer.contents out, !steps)
