exception Corrupt_stream of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt_stream s)) fmt

module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nacc : int; mutable bits : int }

  let create () = { buf = Buffer.create 256; acc = 0; nacc = 0; bits = 0 }

  let put_bit t b =
    t.acc <- (t.acc lsl 1) lor (b land 1);
    t.nacc <- t.nacc + 1;
    t.bits <- t.bits + 1;
    if t.nacc = 8 then begin
      Buffer.add_char t.buf (Char.chr t.acc);
      t.acc <- 0;
      t.nacc <- 0
    end

  let put t ~bits v =
    if bits < 0 || bits > 62 then invalid_arg "Bitio.Writer.put: bad width";
    for i = bits - 1 downto 0 do
      put_bit t ((v lsr i) land 1)
    done

  let length_bits t = t.bits

  let contents t =
    let s = Buffer.contents t.buf in
    if t.nacc = 0 then s
    else s ^ String.make 1 (Char.chr (t.acc lsl (8 - t.nacc)))
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string ?(start_bit = 0) data = { data; pos = start_bit }

  let next_bit t =
    let byte = t.pos lsr 3 in
    if byte >= String.length t.data then corrupt "Bitio.Reader: past end of stream";
    let bit = (Char.code t.data.[byte] lsr (7 - (t.pos land 7))) land 1 in
    t.pos <- t.pos + 1;
    bit

  let read t ~bits =
    let v = ref 0 in
    for _ = 1 to bits do
      v := (!v lsl 1) lor next_bit t
    done;
    !v

  (* The probe window of the table-driven decoder.  Bits past the end of
     the string read as zero so a probe near the end is always legal; only
     [advance] commits to consumption and enforces the bound. *)
  let peek t ~bits =
    if bits < 0 || bits > 56 then invalid_arg "Bitio.Reader.peek: bad width";
    let len = String.length t.data in
    let lead = t.pos land 7 in
    let nbytes = (lead + bits + 7) lsr 3 in
    let first = t.pos lsr 3 in
    let acc = ref 0 in
    for i = first to first + nbytes - 1 do
      acc := (!acc lsl 8) lor (if i < len then Char.code t.data.[i] else 0)
    done;
    (!acc lsr ((8 * nbytes) - lead - bits)) land ((1 lsl bits) - 1)

  let advance t ~bits =
    if bits < 0 then invalid_arg "Bitio.Reader.advance: bad width";
    if t.pos + bits > 8 * String.length t.data then
      corrupt "Bitio.Reader: past end of stream";
    t.pos <- t.pos + bits

  let pos t = t.pos
  let seek t p = t.pos <- p
  let remaining_bits t = (8 * String.length t.data) - t.pos
end
