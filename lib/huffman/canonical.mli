(** Canonical Huffman codes (paper, Section 3).

    A canonical code is fully determined by [N.(i)] — the number of
    codewords of each length [i] — plus the symbol array [D] ordered by
    codeword value.  Codewords of length [i] are the consecutive [i]-bit
    values [b_i, b_i + 1, ...] where [b_1 = 0] and
    [b_i = 2 (b_(i-1) + N.(i-1))].

    Decoding is table-driven: construction builds a first-[N]-bits lookup
    table (a code-length-limited canonical table, at most [2^9] entries)
    mapping every probe value that starts with a short codeword straight to
    its (symbol, length); codewords longer than the probe width fall back
    to the paper's DECODE loop, which consumes one bit per iteration and
    needs no pointer-based tree.  The table is plain data, so codes stay
    marshal-safe and the table ships with the model inside cached squash
    results. *)

type t

exception Invalid_code of string
(** Raised by {!of_lengths} on a length multiset no prefix code can have:
    a length outside [1, 48], or a Kraft sum above 1 (which would assign
    overlapping codewords that silently decode to wrong symbols).
    Under-full codes — e.g. the single length-1 codeword of a one-symbol
    alphabet — are legal; their unused codeword space decodes as a corrupt
    stream. *)

val of_lengths : (int * int) list -> t
(** Build from [(symbol, length)] pairs as returned by
    {!Huffman.code_lengths} (sorted by (length, symbol)), validating the
    Kraft inequality and building the decode table.
    @raise Invalid_code on an invalid length multiset. *)

val of_freqs : (int * int) list -> t
(** [of_lengths (Huffman.code_lengths freqs)]. *)

val symbol_count : t -> int
val max_length : t -> int

val table_width : t -> int
(** Probe width of the decode table in bits:
    [min (max_length t) 9]; 0 only for an empty code. *)

val counts : t -> int array
(** [N]: an array of [max_length t + 1] entries where index [i] holds the
    number of codewords of length [i] (index 0 is always 0). *)

val symbols : t -> int array
(** [D]: symbols in codeword order. *)

val codeword : t -> int -> (int * int) option
(** [(code, length)] for a symbol, if the symbol is in the alphabet. *)

val encode : t -> Bitio.Writer.t -> int -> unit
(** Append a symbol's codeword.
    @raise Invalid_argument on a symbol outside the alphabet. *)

val decode : t -> Bitio.Reader.t -> int * int * int
(** [decode t r] returns [(symbol, bits, probes)]: [bits] is the number of
    bits consumed (the codeword length) and [probes] the decode-table work
    — 1 for a table hit, [1 + bits] when the codeword was longer than the
    table and the bit loop ran.  [probes] feeds the coder's
    {!Coder.work.steps} so [Cost.decomp_per_step] keeps pricing real
    decoder effort.  @raise Bitio.Corrupt_stream on a corrupt or truncated
    stream. *)

val decode_bitloop : t -> Bitio.Reader.t -> int * int
(** The paper's DECODE loop, kept as the executable specification and the
    slow path of {!decode}: [(symbol, bits)] where [bits] equals the
    loop-iteration count.  @raise Bitio.Corrupt_stream on a corrupt or
    truncated stream. *)

val table_bits : value_bits:int -> t -> int
(** Size of the code representation that must ship with the compressed
    stream: the [N] array (16 bits per entry plus a 6-bit length count) and
    the [D] array at [value_bits] bits per symbol.  The decode table is
    rebuilt from those at load time, so it adds nothing here. *)
