(** Canonical Huffman codes (paper, Section 3).

    A canonical code is fully determined by [N.(i)] — the number of
    codewords of each length [i] — plus the symbol array [D] ordered by
    codeword value.  Codewords of length [i] are the consecutive [i]-bit
    values [b_i, b_i + 1, ...] where [b_1 = 0] and
    [b_i = 2 (b_(i-1) + N.(i-1))].  Decoding uses the paper's DECODE loop,
    which consumes one bit per iteration and needs no pointer-based tree. *)

type t

val of_lengths : (int * int) list -> t
(** Build from [(symbol, length)] pairs as returned by
    {!Huffman.code_lengths} (sorted by (length, symbol); lengths ≥ 1). *)

val of_freqs : (int * int) list -> t
(** [of_lengths (Huffman.code_lengths freqs)]. *)

val symbol_count : t -> int
val max_length : t -> int

val counts : t -> int array
(** [N]: an array of [max_length t + 1] entries where index [i] holds the
    number of codewords of length [i] (index 0 is always 0). *)

val symbols : t -> int array
(** [D]: symbols in codeword order. *)

val codeword : t -> int -> (int * int) option
(** [(code, length)] for a symbol, if the symbol is in the alphabet. *)

val encode : t -> Bitio.Writer.t -> int -> unit
(** Append a symbol's codeword.
    @raise Invalid_argument on a symbol outside the alphabet. *)

val decode : t -> Bitio.Reader.t -> int * int
(** [decode t r] returns [(symbol, bits)] where [bits] is the number of bits
    consumed (equal to the number of DECODE-loop iterations, used for cycle
    accounting).  @raise Failure on a corrupt stream. *)

val table_bits : value_bits:int -> t -> int
(** Size of the code representation that must ship with the compressed
    stream: the [N] array (16 bits per entry plus a 6-bit length count) and
    the [D] array at [value_bits] bits per symbol. *)
