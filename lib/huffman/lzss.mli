(** Byte-oriented LZSS, the "other compression algorithm" comparator the
    paper's future-work section calls for.

    Format: groups of eight items preceded by a flag byte (LSB first);
    a clear flag bit is a literal byte, a set bit is a 2-byte reference
    [(offset << 4) | (len - min_match)] into a 4096-byte window with match
    lengths 3..18.  Offsets count back from the current position
    (1-based). *)

val min_match : int
val max_match : int
val window : int

val compress : string -> string

val decompress : string -> string * int
(** Returns the original bytes and the number of decoder steps (one per
    literal plus one per copied byte), used for cycle accounting.
    @raise Bitio.Corrupt_stream on a corrupt stream. *)
