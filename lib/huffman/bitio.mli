(** Bit-level I/O.  Bits are written and read MSB-first within each byte,
    matching the order in which canonical Huffman codewords are compared in
    the DECODE loop. *)

exception Corrupt_stream of string
(** The one error every corrupt compressed stream surfaces as: a reader
    running past the end of its data, or a decoder ({!Canonical.decode},
    {!Lzss.decompress}) meeting bits that no codeword explains.  The VM and
    lint layers catch this single exception instead of pattern-matching on
    [Invalid_argument] / [Failure] strings. *)

module Writer : sig
  type t

  val create : unit -> t

  val put : t -> bits:int -> int -> unit
  (** Append the low [bits] bits of the value, most significant first.
      [bits] may be 0 (writes nothing). *)

  val put_bit : t -> int -> unit
  val length_bits : t -> int

  val contents : t -> string
  (** The bit string padded with zero bits to a whole number of bytes. *)
end

module Reader : sig
  type t

  val of_string : ?start_bit:int -> string -> t

  val next_bit : t -> int
  (** @raise Corrupt_stream when reading past the end. *)

  val read : t -> bits:int -> int

  val peek : t -> bits:int -> int
  (** The next [bits] bits without consuming them, MSB-first, assembled
      through a whole-byte accumulator (at most ⌈([bits]+7)/8⌉+1 byte
      loads).  Bits past the end of the data read as zero, so a probe near
      the end never raises — only {!advance} commits to consumption.
      [bits] ≤ 56 so the window fits an OCaml int. *)

  val advance : t -> bits:int -> unit
  (** Consume [bits] bits previously inspected with {!peek}.
      @raise Corrupt_stream when the move would pass the end. *)

  val pos : t -> int
  (** Current position in bits from the start of the string. *)

  val seek : t -> int -> unit
  val remaining_bits : t -> int
end
