type value =
  | Num of Word.t
  | Init of Reg.t
  | Code of string
  | Table of string * int
  | Load of Instr.mem_op * value * int
  | Sysres of int
  | Exp of Instr.alu_op * value * value

type effect =
  | Store of Instr.mem_op * value * value
  | Syscall of int * value array

type state = {
  regs : value array;
  mutable rev_effects : effect list;
  mutable seq : int;  (* bumped by every memory write and system call *)
}

let init_state () =
  {
    regs = Array.init Reg.count (fun r -> if r = Reg.zero then Num 0 else Init r);
    rev_effects = [];
    seq = 0;
  }

let reg st r = st.regs.(r)
let effects st = List.rev st.rev_effects

let set st r v = if r <> Reg.zero then st.regs.(r) <- v

(* [lda]/[ldah] fold over known constants — this is what turns the
   rewritten side's materialised address pairs into a [Num] — and stay
   symbolic otherwise.  ALU operations never fold, so both sides of a
   proof build structurally aligned expressions. *)
let offset v k = match v with Num n -> Num (Word.add n k) | v -> Exp (Instr.Add, v, Num k)

let step st ins =
  match ins with
  | Instr.Nop -> Ok ()
  | Instr.Sys code ->
    let a0, a1, a2 =
      match Reg.args with
      | a0 :: a1 :: a2 :: _ -> (a0, a1, a2)
      | _ -> assert false
    in
    st.rev_effects <-
      Syscall (code, [| reg st a0; reg st a1; reg st a2 |]) :: st.rev_effects;
    set st Reg.rv (Sysres st.seq);
    st.seq <- st.seq + 1;
    Ok ()
  | Instr.Lda { ra; rb; disp } ->
    set st ra (offset (reg st rb) (Word.of_int disp));
    Ok ()
  | Instr.Ldah { ra; rb; disp } ->
    set st ra (offset (reg st rb) (Word.of_int (disp lsl 16)));
    Ok ()
  | Instr.Opr { op; ra; rb; rc } ->
    let b = match rb with Instr.Reg r -> reg st r | Instr.Imm v -> Num v in
    set st rc (Exp (op, reg st ra, b));
    Ok ()
  | Instr.Mem { op = (Instr.Ldw | Instr.Ldb) as op; ra; rb; disp } ->
    set st ra (Load (op, offset (reg st rb) (Word.of_int disp), st.seq));
    Ok ()
  | Instr.Mem { op = (Instr.Stw | Instr.Stb) as op; ra; rb; disp } ->
    st.rev_effects <-
      Store (op, offset (reg st rb) (Word.of_int disp), reg st ra) :: st.rev_effects;
    st.seq <- st.seq + 1;
    Ok ()
  | Instr.Br _ | Instr.Bsr _ | Instr.Bsrx _ | Instr.Cbr _ | Instr.Jmp _
  | Instr.Jsr _ | Instr.Ret _ | Instr.Sentinel ->
    Error
      (Format.asprintf "control transfer in straight-line code: %a" Instr.pp ins)

type exit_desc =
  | Goto of int
  | Branch of Instr.cond * value * int * int
  | Call of { ra : Reg.t; callee : string; return_to : int }
  | Call_ind of { ra : Reg.t; target : value; return_to : int }
  | Jump_tab of { target : value; table : int option }
  | Return of value
  | Stop

let run_block ~fname (b : Prog.Block.t) =
  let st = init_state () in
  let rec items = function
    | [] -> Ok ()
    | Prog.Instr ins :: rest -> (
      match step st ins with Ok () -> items rest | Error _ as e -> e)
    | Prog.Load_addr (r, Prog.Func_addr g) :: rest ->
      set st r (Code g);
      items rest
    | Prog.Load_addr (r, Prog.Table_addr tid) :: rest ->
      set st r (Table (fname, tid));
      items rest
  in
  match items b.items with
  | Error _ as e -> e
  | Ok () ->
    let exit_d =
      match b.term with
      | Prog.Fallthrough d | Prog.Jump d -> Goto d
      | Prog.Branch (c, r, taken, fall) -> Branch (c, reg st r, taken, fall)
      | Prog.Call { ra; callee; return_to } -> Call { ra; callee; return_to }
      | Prog.Call_indirect { ra; rb; return_to } ->
        Call_ind { ra; target = reg st rb; return_to }
      | Prog.Jump_indirect { rb; table } -> Jump_tab { target = reg st rb; table }
      | Prog.Return { rb } -> Return (reg st rb)
      | Prog.No_return -> Stop
    in
    Ok (st, exit_d)

(* --- equivalence ---------------------------------------------------- *)

type oracle = {
  func_addr : string -> int option;
  table_addr : string * int -> int option;
}

(* Oriented: [a] was computed over the original program (and may contain
   abstract [Code]/[Table] addresses), [b] over the rewritten image
   (where those addresses are materialised numbers).  The [Exp (Add, …)]
   bridge undoes the asymmetric [lda]/[ldah] folding: the original side
   keeps address arithmetic symbolic because its base is abstract, while
   the rewritten side folds it into a constant. *)
let rec equal_value o a b =
  match (a, b) with
  | Num x, Num y -> x = y
  | Init r, Init s -> Reg.equal r s
  | Code g, Code h -> String.equal g h
  | Table (f, t), Table (f', t') -> String.equal f f' && t = t'
  | Sysres n, Sysres m -> n = m
  | Load (w, x, s), Load (w', y, s') -> w = w' && s = s' && equal_value o x y
  | Exp (op, x, y), Exp (op', x', y') ->
    op = op' && equal_value o x x' && equal_value o y y'
  | Code g, Num n -> o.func_addr g = Some n
  | Table (f, t), Num n -> o.table_addr (f, t) = Some n
  | Exp (Instr.Add, x, Num k), Num n -> equal_value o x (Num (Word.sub n k))
  | (Num _ | Init _ | Code _ | Table _ | Load _ | Sysres _ | Exp _), _ -> false

(* --- rendering ------------------------------------------------------ *)

let mem_name = function
  | Instr.Ldw -> "ldw"
  | Instr.Stw -> "stw"
  | Instr.Ldb -> "ldb"
  | Instr.Stb -> "stb"

let alu_name op =
  match op with
  | Instr.Add -> "add"
  | Instr.Sub -> "sub"
  | Instr.Mul -> "mul"
  | Instr.Div -> "div"
  | Instr.Rem -> "rem"
  | Instr.And -> "and"
  | Instr.Or -> "or"
  | Instr.Xor -> "xor"
  | Instr.Sll -> "sll"
  | Instr.Srl -> "srl"
  | Instr.Sra -> "sra"
  | Instr.Cmpeq -> "cmpeq"
  | Instr.Cmpne -> "cmpne"
  | Instr.Cmplt -> "cmplt"
  | Instr.Cmple -> "cmple"
  | Instr.Cmpult -> "cmpult"
  | Instr.Cmpule -> "cmpule"

let rec pp_value ppf = function
  | Num n -> Format.fprintf ppf "0x%x" n
  | Init r -> Format.fprintf ppf "%s@@entry" (Reg.name r)
  | Code g -> Format.fprintf ppf "&%s" g
  | Table (f, t) -> Format.fprintf ppf "&%s.table%d" f t
  | Load (op, a, s) -> Format.fprintf ppf "%s[%a]#%d" (mem_name op) pp_value a s
  | Sysres n -> Format.fprintf ppf "sysres#%d" n
  | Exp (op, a, b) ->
    Format.fprintf ppf "(%s %a %a)" (alu_name op) pp_value a pp_value b

let pp_effect ppf = function
  | Store (op, a, v) ->
    Format.fprintf ppf "%s[%a] := %a" (mem_name op) pp_value a pp_value v
  | Syscall (code, args) ->
    Format.fprintf ppf "sys %d(%a, %a, %a)" code pp_value args.(0) pp_value
      args.(1) pp_value args.(2)

let cond_name = function
  | Instr.Eq -> "eq"
  | Instr.Ne -> "ne"
  | Instr.Lt -> "lt"
  | Instr.Le -> "le"
  | Instr.Gt -> "gt"
  | Instr.Ge -> "ge"

let pp_exit ppf = function
  | Goto d -> Format.fprintf ppf "goto .%d" d
  | Branch (c, v, t, f) ->
    Format.fprintf ppf "if %s %a goto .%d else .%d" (cond_name c) pp_value v t f
  | Call { ra; callee; return_to } ->
    Format.fprintf ppf "call %s (ra=%s, resume .%d)" callee (Reg.name ra) return_to
  | Call_ind { ra; target; return_to } ->
    Format.fprintf ppf "calli %a (ra=%s, resume .%d)" pp_value target (Reg.name ra)
      return_to
  | Jump_tab { target; table } ->
    Format.fprintf ppf "tabjump %a%s" pp_value target
      (match table with None -> "" | Some t -> Printf.sprintf " (table %d)" t)
  | Return v -> Format.fprintf ppf "ret %a" pp_value v
  | Stop -> Format.fprintf ppf "no-return"

(* --- state comparison ----------------------------------------------- *)

let compare_states o ~orig ~rew =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec regs r =
    if r >= Reg.count then Ok ()
    else if r = Reg.zero then regs (r + 1)
    else if equal_value o orig.regs.(r) rew.regs.(r) then regs (r + 1)
    else
      err "register %s diverges:@,  original:  %a@,  rewritten: %a" (Reg.name r)
        pp_value orig.regs.(r) pp_value rew.regs.(r)
  in
  let effect_eq a b =
    match (a, b) with
    | Store (op, x, v), Store (op', y, w) ->
      op = op' && equal_value o x y && equal_value o v w
    | Syscall (c, args), Syscall (c', args') ->
      c = c'
      && Array.length args = Array.length args'
      && Array.for_all2 (equal_value o) args args'
    | (Store _ | Syscall _), _ -> false
  in
  let rec effs i a b =
    match (a, b) with
    | [], [] -> Ok ()
    | x :: a, y :: b when effect_eq x y -> effs (i + 1) a b
    | x :: _, y :: _ ->
      err "effect %d diverges:@,  original:  %a@,  rewritten: %a" i pp_effect x
        pp_effect y
    | x :: _, [] -> err "effect %d missing from the rewritten side: %a" i pp_effect x
    | [], y :: _ -> err "extra effect %d on the rewritten side: %a" i pp_effect y
  in
  match regs 0 with
  | Error _ as e -> e
  | Ok () -> effs 0 (effects orig) (effects rew)
