(** Intraprocedural constant and code-address propagation, and the
    indirect-target resolution built on it (paper, Sections 6.1–6.2).

    A forward {!Dataflow} client tracks, per register, a flat lattice of
    integer constants and code addresses: a [Load_addr] of a function
    yields {!Code}, a [Load_addr] of a jump table yields {!Table_base},
    address arithmetic on a table base stays within the table
    ({!Table_slot}), and a word loaded through it is one of the table's
    entries ({!Table_entry}).  Anything else collapses to {!Top}.

    Two consumers:

    - {b indirect calls}: a site whose target register holds [Code g]
      calls exactly [g]; otherwise the candidate set is the program's
      address-taken functions.  This is sound under the IR's closed-world
      assumption — indirectly callable code addresses only ever originate
      from [Load_addr (_, Func_addr _)] items, which is what
      {!Cfg.Callgraph.address_taken} records.
    - {b indirect jumps}: a [Jump_indirect { table = None; _ }] whose
      target register provably holds a word fetched from jump table [t]
      dispatches to exactly the entries of [t] — the same "analysable"
      shape the [table = Some _] annotation asserts — so the annotation
      can be reconstructed ({!resolve_tables}), tightening
      {!Prog.successors}/{!Cfg.preds} from "every block" to the table's
      entries. *)

type value =
  | Bot  (** Unreached. *)
  | Int of int  (** Known 32-bit constant. *)
  | Code of string  (** Entry address of the named function. *)
  | Table_base of int  (** Address of this function's jump table [tid]. *)
  | Table_slot of int  (** [Table_base tid] plus an unknown offset. *)
  | Table_entry of int  (** A word loaded from jump table [tid]. *)
  | Top  (** Unknown. *)

val pp_value : Format.formatter -> value -> unit

type t
(** Per-function analysis result: a register environment at every block
    entry. *)

val analyze : Prog.Func.t -> t

val entry_env : t -> int -> value array
(** Register environment at the entry of block [i] (indexed by register
    number; the zero register is always [Int 0]). *)

val term_env : t -> int -> value array
(** Register environment just before block [i]'s terminator. *)

val call_target : t -> int -> [ `Exact of string | `Unknown ]
(** Resolution of the indirect call terminating block [i]; [`Unknown] if
    the block does not end in [Call_indirect]. *)

val jump_table : t -> int -> int option
(** The jump table an un-annotated [Jump_indirect] terminating block [i]
    provably dispatches through, if the analysis can prove one. *)

(** {1 Whole-program consumers} *)

val address_taken : Prog.t -> string list
(** Functions whose address is materialised anywhere in the program
    (sorted) — the candidate set of any unresolved indirect call. *)

type call_site = {
  caller : string;
  block : int;
  resolution : [ `Exact of string | `Fallback of string list ];
      (** [`Exact g]: the site provably calls [g]; [`Fallback candidates]:
          any address-taken function ([candidates] is {!address_taken}). *)
}

val indirect_call_sites : Prog.t -> call_site list

val resolve_tables : Prog.t -> Prog.t * (string * int) list
(** Rewrite every provable [Jump_indirect { table = None; _ }] to carry
    its table id; returns the rewritten program and the [(function,
    block)] sites changed.  Sound tightening only: unprovable sites are
    left alone. *)

val annotate_callgraph : Prog.t -> Cfg.Callgraph.t -> unit
(** Record the resolved indirect-call edges
    ({!Cfg.Callgraph.indirect_callees}) on a callgraph of the same
    program: per caller, the union over its indirect sites of each site's
    candidate set. *)
