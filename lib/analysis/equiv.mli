(** Word-level symbolic execution for translation validation.

    This module is the target-independent half of the per-region
    equivalence prover ({!Prove} in the core library drives it over a
    squashed image).  It provides:

    - a symbolic value domain over 32-bit words: concrete constants,
      opaque block-entry register values, abstract code/table addresses
      (the original program's [Load_addr] results, which have {e no}
      numeric value until a layout pins them), loads stamped with a
      memory sequence number, and uninterpreted ALU expressions;
    - a straight-line evaluator with exactly the VM's semantics for
      non-control instructions ([lda]/[ldah] fold constants, everything
      else stays symbolic);
    - an equivalence relation between a value computed over the {e
      original} program and one computed over its {e rewritten}
      counterpart, parameterised by an address oracle that says what each
      abstract code/table address resolved to in the rewritten image;
    - symbolic execution of an original-program basic block into a final
      state plus a typed exit descriptor.

    Both sides of a proof start from the same state (every register holds
    its opaque [Init] value), so proving the final states equivalent
    establishes block-for-block preservation by induction over the
    rewritten program's runs, modulo the explicitly stated protocol
    axioms (see DESIGN.md §6c). *)

type value =
  | Num of Word.t  (** A known 32-bit constant. *)
  | Init of Reg.t  (** The register's (opaque) value at block entry. *)
  | Code of string  (** Address of the named function's entry. *)
  | Table of string * int  (** Address of jump table [tid] of a function. *)
  | Load of Instr.mem_op * value * int
      (** Value loaded (op, address, memory sequence number). *)
  | Sysres of int  (** Result of the [n]-th system call of the block. *)
  | Exp of Instr.alu_op * value * value  (** Uninterpreted ALU result. *)

type effect =
  | Store of Instr.mem_op * value * value  (** (op, address, stored value). *)
  | Syscall of int * value array
      (** Call code and the argument registers [a0..a2] at the call. *)

type state
(** Mutable: registers, observable effects, memory sequence counter. *)

val init_state : unit -> state
(** Every register holds [Init r] (the zero register holds [Num 0]). *)

val reg : state -> Reg.t -> value
val effects : state -> effect list
(** In program order. *)

val step : state -> Instr.t -> (unit, string) result
(** Execute one non-control-transfer instruction symbolically.  [Error]
    on a control transfer or marker — those must be handled by the
    caller's exit classification. *)

type exit_desc =
  | Goto of int  (** Fallthrough or jump to a block of the same function. *)
  | Branch of Instr.cond * value * int * int
      (** (condition, tested value, taken dest, fallthrough dest). *)
  | Call of { ra : Reg.t; callee : string; return_to : int }
  | Call_ind of { ra : Reg.t; target : value; return_to : int }
  | Jump_tab of { target : value; table : int option }
  | Return of value
  | Stop  (** [No_return]: control never reaches the block's end. *)

val run_block : fname:string -> Prog.Block.t -> (state * exit_desc, string) result
(** Symbolically execute an original-program block from [init_state].
    [Load_addr] items produce the abstract [Code]/[Table] values. *)

(** {1 Equivalence} *)

type oracle = {
  func_addr : string -> int option;
      (** Rewritten-image address of the function's entry label. *)
  table_addr : string * int -> int option;
      (** Rewritten-image address of a retained jump table. *)
}

val equal_value : oracle -> value -> value -> bool
(** [equal_value o orig rew]: do the two values denote the same word in
    every run?  Structural, plus the oracle bridges: [Code g] (abstract)
    matches the number the rewritten side materialised for [g] — also
    through one level of folded [lda]/[ldah] address arithmetic
    ([Exp (Add, x, Num k)] vs [Num n] reduces to [x] vs [Num (n - k)]). *)

val compare_states : oracle -> orig:state -> rew:state -> (unit, string) result
(** Registers (all but the zero register) and effect lists must match
    pointwise; the [Error] names the first divergence. *)

val pp_value : Format.formatter -> value -> unit
val pp_effect : Format.formatter -> effect -> unit
val pp_exit : Format.formatter -> exit_desc -> unit
