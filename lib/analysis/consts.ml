type value =
  | Bot
  | Int of int
  | Code of string
  | Table_base of int
  | Table_slot of int
  | Table_entry of int
  | Top

let pp_value ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Int v -> Format.fprintf ppf "%d" v
  | Code g -> Format.fprintf ppf "&%s" g
  | Table_base t -> Format.fprintf ppf "&table%d" t
  | Table_slot t -> Format.fprintf ppf "&table%d+?" t
  | Table_entry t -> Format.fprintf ppf "table%d[?]" t
  | Top -> Format.pp_print_string ppf "⊤"

let equal_value a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Int x, Int y -> x = y
  | Code f, Code g -> String.equal f g
  | Table_base s, Table_base t
  | Table_slot s, Table_slot t
  | Table_entry s, Table_entry t ->
    s = t
  | (Bot | Int _ | Code _ | Table_base _ | Table_slot _ | Table_entry _ | Top), _
    ->
    false

let join_value a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Table_base s, Table_slot t | Table_slot s, Table_base t when s = t ->
    Table_slot s
  | _ -> if equal_value a b then a else Top

(* Table addressing: adding any offset to a table address is assumed to stay
   within the table — exactly what the analysable-dispatch annotation
   ([Jump_indirect { table = Some _ }]) asserts about the index
   computation. *)
let add_value a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Int x, Int y -> Int (Word.of_int (x + y))
  | (Table_base t | Table_slot t), _ | _, (Table_base t | Table_slot t) ->
    Table_slot t
  | _ -> Top

let sub_value a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Int x, Int y -> Int (Word.of_int (x - y))
  | _ -> Top

(* --- register environments ----------------------------------------- *)

type env = value array (* indexed by register number *)

let get (env : env) r = if r = Reg.zero then Int 0 else env.(r)

let set (env : env) r v = if r <> Reg.zero then env.(r) <- v

let kill_regset (env : env) defs =
  List.iter (fun r -> set env r Top) (Cfg.Regset.elements defs)

let transfer_item (env : env) (item : Prog.item) =
  match item with
  | Prog.Load_addr (r, Prog.Func_addr g) -> set env r (Code g)
  | Prog.Load_addr (r, Prog.Table_addr tid) -> set env r (Table_base tid)
  | Prog.Instr ins -> (
    match ins with
    | Instr.Lda { ra; rb; disp } -> set env ra (add_value (get env rb) (Int disp))
    | Instr.Ldah { ra; rb; disp } ->
      set env ra (add_value (get env rb) (Int (disp lsl 16)))
    | Instr.Opr { op; ra; rb; rc } -> (
      let b = match rb with Instr.Reg r -> get env r | Instr.Imm i -> Int i in
      match op with
      | Instr.Add -> set env rc (add_value (get env ra) b)
      | Instr.Sub -> set env rc (sub_value (get env ra) b)
      | Instr.Mul | Instr.Div | Instr.Rem | Instr.And | Instr.Or | Instr.Xor
      | Instr.Sll | Instr.Srl | Instr.Sra | Instr.Cmpeq | Instr.Cmpne
      | Instr.Cmplt | Instr.Cmple | Instr.Cmpult | Instr.Cmpule ->
        set env rc Top)
    | Instr.Mem { op = Instr.Ldw; ra; rb; _ } -> (
      match get env rb with
      | Table_base t | Table_slot t -> set env ra (Table_entry t)
      | Bot | Int _ | Code _ | Table_entry _ | Top -> set env ra Top)
    | _ ->
      let defs, _ = Cfg.item_defs_uses item in
      kill_regset env defs)

let transfer_term (env : env) (t : Prog.term) =
  let defs, _ = Cfg.term_defs_uses t in
  kill_regset env defs

(* --- the dataflow client -------------------------------------------- *)

module Env_lattice = struct
  type t = env option
  (* [None] is bottom (block unreached); [Some env] a per-register map. *)

  let bottom = None

  let join a b =
    match (a, b) with
    | None, v | v, None -> v
    | Some x, Some y -> Some (Array.init (Array.length x) (fun i -> join_value x.(i) y.(i)))

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> Array.for_all2 equal_value x y
    | None, Some _ | Some _, None -> false
end

module Solver = Dataflow.Make (Env_lattice)

type t = { func : Prog.Func.t; before : env option array }

let analyze (f : Prog.Func.t) =
  let transfer i fact =
    match fact with
    | None -> None
    | Some env ->
      let env = Array.copy env in
      List.iter (transfer_item env) f.blocks.(i).Prog.Block.items;
      transfer_term env f.blocks.(i).Prog.Block.term;
      Some env
  in
  (* Nothing is known at function entry: arguments, saved registers and
     memory contents are arbitrary. *)
  let init = Some (Array.make Reg.count Top) in
  let r = Solver.solve ~direction:Dataflow.Forward ~init ~transfer f in
  { func = f; before = r.Solver.before }

let unreached = lazy (Array.make Reg.count Bot)

let entry_env t i =
  match t.before.(i) with
  | Some env -> Array.copy env
  | None -> Array.copy (Lazy.force unreached)

let term_env t i =
  let env = entry_env t i in
  List.iter (transfer_item env) t.func.Prog.Func.blocks.(i).Prog.Block.items;
  env

let call_target t i =
  match t.func.Prog.Func.blocks.(i).Prog.Block.term with
  | Prog.Call_indirect { rb; _ } -> (
    match get (term_env t i) rb with Code g -> `Exact g | _ -> `Unknown)
  | _ -> `Unknown

let jump_table t i =
  match t.func.Prog.Func.blocks.(i).Prog.Block.term with
  | Prog.Jump_indirect { rb; table = None } -> (
    match get (term_env t i) rb with
    | Table_entry tid when tid >= 0 && tid < Array.length t.func.Prog.Func.tables
      ->
      Some tid
    | _ -> None)
  | _ -> None

(* --- whole-program consumers ---------------------------------------- *)

let address_taken (p : Prog.t) =
  let taken = Hashtbl.create 16 in
  List.iter
    (fun (f : Prog.Func.t) ->
      Array.iter
        (fun (b : Prog.Block.t) ->
          List.iter
            (function
              | Prog.Load_addr (_, Prog.Func_addr g) -> Hashtbl.replace taken g ()
              | Prog.Load_addr (_, Prog.Table_addr _) | Prog.Instr _ -> ())
            b.items)
        f.blocks)
    p.funcs;
  Hashtbl.fold (fun g () acc -> g :: acc) taken [] |> List.sort String.compare

type call_site = {
  caller : string;
  block : int;
  resolution : [ `Exact of string | `Fallback of string list ];
}

let indirect_call_sites (p : Prog.t) =
  let taken = address_taken p in
  let defined = Hashtbl.create 64 in
  List.iter (fun (f : Prog.Func.t) -> Hashtbl.replace defined f.name ()) p.funcs;
  List.concat_map
    (fun (f : Prog.Func.t) ->
      let facts = lazy (analyze f) in
      Array.to_list f.blocks
      |> List.mapi (fun i (b : Prog.Block.t) -> (i, b))
      |> List.filter_map (fun (i, (b : Prog.Block.t)) ->
             match b.term with
             | Prog.Call_indirect _ ->
               let resolution =
                 match call_target (Lazy.force facts) i with
                 | `Exact g when Hashtbl.mem defined g -> `Exact g
                 | `Exact _ | `Unknown -> `Fallback taken
               in
               Some { caller = f.name; block = i; resolution }
             | _ -> None))
    p.funcs

let resolve_tables (p : Prog.t) =
  let resolved = ref [] in
  let funcs =
    List.map
      (fun (f : Prog.Func.t) ->
        let needs =
          Array.exists
            (fun (b : Prog.Block.t) ->
              match b.term with
              | Prog.Jump_indirect { table = None; _ } -> true
              | _ -> false)
            f.blocks
        in
        if not needs then f
        else begin
          let facts = analyze f in
          let blocks =
            Array.mapi
              (fun i (b : Prog.Block.t) ->
                match b.term with
                | Prog.Jump_indirect { rb; table = None } -> (
                  match jump_table facts i with
                  | Some tid ->
                    resolved := (f.name, i) :: !resolved;
                    { b with Prog.Block.term = Prog.Jump_indirect { rb; table = Some tid } }
                  | None -> b)
                | _ -> b)
              f.blocks
          in
          { f with Prog.Func.blocks }
        end)
      p.funcs
  in
  ({ p with Prog.funcs }, List.rev !resolved)

let annotate_callgraph (p : Prog.t) (cg : Cfg.Callgraph.t) =
  let by_caller = Hashtbl.create 16 in
  List.iter
    (fun site ->
      let targets =
        match site.resolution with `Exact g -> [ g ] | `Fallback gs -> gs
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_caller site.caller) in
      Hashtbl.replace by_caller site.caller (targets @ prev))
    (indirect_call_sites p);
  Hashtbl.iter
    (fun caller targets ->
      Cfg.Callgraph.set_indirect_callees cg caller
        (List.sort_uniq String.compare targets))
    by_caller
