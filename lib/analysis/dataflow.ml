module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  let solve ~direction ~init ~transfer (f : Prog.Func.t) =
    let n = Array.length f.blocks in
    let before = Array.make n L.bottom in
    let after = Array.make n L.bottom in
    let succs = Array.init n (Prog.successors f) in
    let preds = Cfg.preds f in
    (* Input edges of a block and where its output fact flows, under the
       chosen direction. *)
    let inputs, outputs =
      match direction with
      | Forward -> (preds, succs)
      | Backward -> (succs, preds)
    in
    let in_fact, out_fact =
      match direction with
      | Forward -> (before, after)
      | Backward -> (after, before)
    in
    (* The boundary fact enters at blocks with no input edges in the
       analysis direction: the entry block (forward) or exit blocks
       (backward). *)
    let boundary i =
      match direction with
      | Forward -> i = 0
      | Backward -> succs.(i) = []
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    (* Seed every block — unreachable ones too, matching the hand-rolled
       analyses — in a direction-appropriate order so typical (reducible)
       CFGs converge in few sweeps. *)
    let order = Cfg.dfs_order f in
    let rest =
      let on_order = Array.make n false in
      List.iter (fun i -> on_order.(i) <- true) order;
      List.filter (fun i -> not on_order.(i)) (List.init n Fun.id)
    in
    let order = order @ rest in
    List.iter push (match direction with Forward -> order | Backward -> List.rev order);
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let input =
        List.fold_left
          (fun acc j -> L.join acc out_fact.(j))
          (if boundary i then init else L.bottom)
          inputs.(i)
      in
      in_fact.(i) <- input;
      let output = transfer i input in
      if not (L.equal output out_fact.(i)) then begin
        out_fact.(i) <- output;
        List.iter push outputs.(i)
      end
    done;
    { before; after }
end

module Liveness = struct
  module Regs = struct
    type t = Cfg.Regset.t

    let bottom = Cfg.Regset.empty
    let join = Cfg.Regset.union
    let equal = Int.equal
  end

  module Solver = Make (Regs)

  let block_transfer (b : Prog.Block.t) live_out =
    let apply (defs, uses) live =
      Cfg.Regset.union uses (Cfg.Regset.diff live defs)
    in
    let after_items = apply (Cfg.term_defs_uses b.term) live_out in
    List.fold_right
      (fun item live -> apply (Cfg.item_defs_uses item) live)
      b.items after_items

  let solve (f : Prog.Func.t) =
    let r =
      Solver.solve ~direction:Backward ~init:Cfg.Regset.empty
        ~transfer:(fun i out -> block_transfer f.blocks.(i) out)
        f
    in
    { Cfg.live_in = r.Solver.before; live_out = r.Solver.after }
end
