(** A generic worklist fixpoint solver over the intra-function CFG.

    Clients supply a join-semilattice of facts and a per-block transfer
    function; the solver iterates to a fixed point over
    {!Prog.successors}/{!Cfg.preds} edges in either direction.  The
    existing hand-rolled analyses ({!Cfg.liveness}, the buffer-safe
    marking) are specific instances of this scheme; {!Liveness} re-derives
    the former as a client and is regression-tested against it.

    Facts are indexed by block in {e execution} order regardless of the
    analysis direction: [before.(i)] is the fact at the entry of block [i]
    and [after.(i)] the fact at its exit.  For a backward analysis the
    transfer function therefore maps [after] to [before]. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** The identity of [join]; the initial fact everywhere. *)

  val join : t -> t -> t
  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = { before : L.t array; after : L.t array }

  val solve :
    direction:direction ->
    init:L.t ->
    transfer:(int -> L.t -> L.t) ->
    Prog.Func.t ->
    result
  (** [solve ~direction ~init ~transfer f] runs the analysis to a fixed
      point.  [init] is the boundary fact: joined into the entry block's
      [before] fact (forward) or into the [after] fact of every exit block
      — one with no CFG successors — (backward).  [transfer i] maps block
      [i]'s input-edge fact to its output-edge fact: [before -> after]
      when forward, [after -> before] when backward. *)
end

(** Liveness re-derived as a {!Make} client (backward may-analysis over
    {!Cfg.Regset} with the same def/use sets as {!Cfg.liveness}).  Kept as
    an independent implementation so the verifier does not have to trust
    the solver the rewrite used. *)
module Liveness : sig
  val solve : Prog.Func.t -> Cfg.liveness
end
