(** A persistent, content-addressed, on-disk result cache.

    Entries live under [<dir>/v<schema_version>/<kind>-<key>.bin]; [key] is
    a content digest ({!digest}) of everything the cached value depends on,
    so a changed input can never serve a stale entry — it simply hashes to
    a different file.  Each entry starts with a one-line header naming the
    schema version, the OCaml version and the entry kind; a reader that
    finds anything unexpected (wrong header, truncated marshal, a file from
    an older schema) treats the entry as a miss, so stale-schema entries
    are ignored rather than misinterpreted.

    Writes are atomic (temp file + [Sys.rename]) and the store is safe to
    share between the domains of one process and between concurrent
    processes.  Values are serialised with [Marshal]: each [kind] must be
    used with exactly one OCaml type, and {!schema_version} must be bumped
    whenever one of those types (or the semantics of the cached
    computation) changes. *)

type t

val schema_version : int

val default_dir : string
(** ["_cache"]. *)

val create : ?dir:string -> ?obs:Obs.t -> unit -> t
(** The directory is created lazily on first {!store}.  When [obs] is
    given, every {!find} records its lookup latency into the
    [cache.hit_latency_us] / [cache.miss_latency_us] histograms. *)

val dir : t -> string

val digest : string list -> string
(** Hex content digest of the given strings (length-prefixed, so the
    partition into list elements matters). *)

val find : t -> kind:string -> key:string -> 'a option
(** [None] on a missing, stale or unreadable entry (counted as a miss). *)

val store : t -> kind:string -> key:string -> 'a -> unit
(** Atomically persist an entry; I/O errors are swallowed (and counted) —
    a cache that cannot write degrades to a miss, never to a crash. *)

val memo : t option -> kind:string -> key:string -> (unit -> 'a) -> 'a
(** [find]-or-compute-and-[store]; with [None] just runs the thunk. *)

type stats = { hits : int; misses : int; stores : int; errors : int }
(** [errors] counts unreadable entries and failed writes. *)

val stats : t -> stats
val stats_json : t -> Report.Json.t
val render_stats : t -> string
(** e.g. ["cache _cache: 42 hits, 3 misses, 3 stores"]. *)
