(* Bump whenever the Marshal layout of any cached payload changes
   (v2: hook_invocations in Vm.outcome, per-region cycles in
   Runtime.stats; v3: the coder variant in Compress.codes; v4: decode
   tables inside Canonical.t, cache counters in Runtime.stats; v6:
   alloc_words/major_collections in Pass.stats, marshalled inside every
   Squash.result's pipeline stats). *)
let schema_version = 6

let default_dir = "_cache"

type t = {
  root : string;
  m : Mutex.t;
  obs : Obs.t option;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
}

let create ?(dir = default_dir) ?obs () =
  { root = dir; m = Mutex.create (); obs; hits = 0; misses = 0; stores = 0;
    errors = 0 }

let dir t = t.root

let digest parts =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let version_dir t = Filename.concat t.root (Printf.sprintf "v%d" schema_version)

let entry_path t ~kind ~key =
  Filename.concat (version_dir t) (Printf.sprintf "%s-%s.bin" kind key)

let header ~kind =
  Printf.sprintf "pgcc-cache v%d ocaml-%s %s" schema_version Sys.ocaml_version kind

let count t f =
  Mutex.lock t.m;
  f t;
  Mutex.unlock t.m

(* Lookup latency lands in a hit or miss histogram: a hit's cost is
   dominated by unmarshalling the payload, a miss's by the failed open —
   the p95 gap between the two is what says whether _cache/ still pays. *)
let observe_lookup t ~hit dt_s =
  match t.obs with
  | None -> ()
  | Some o ->
    Obs.observe o
      (if hit then "cache.hit_latency_us" else "cache.miss_latency_us")
      (int_of_float (1e6 *. dt_s))

let find t ~kind ~key =
  let t0 = Obs.Clock.now () in
  match open_in_bin (entry_path t ~kind ~key) with
  | exception Sys_error _ ->
    count t (fun t -> t.misses <- t.misses + 1);
    observe_lookup t ~hit:false (Obs.Clock.now () -. t0);
    None
  | ic ->
    let v =
      try
        if input_line ic <> header ~kind then None
        else Some (Marshal.from_channel ic)
      with _ -> None
    in
    close_in_noerr ic;
    count t (fun t ->
        match v with
        | Some _ -> t.hits <- t.hits + 1
        | None ->
          (* A file was present but unreadable: stale schema or torn entry. *)
          t.misses <- t.misses + 1;
          t.errors <- t.errors + 1);
    observe_lookup t ~hit:(v <> None) (Obs.Clock.now () -. t0);
    v

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store t ~kind ~key v =
  let path = entry_path t ~kind ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    mkdir_p (version_dir t);
    let oc = open_out_bin tmp in
    output_string oc (header ~kind);
    output_char oc '\n';
    Marshal.to_channel oc v [];
    close_out oc;
    Sys.rename tmp path
  with
  | () -> count t (fun t -> t.stores <- t.stores + 1)
  | exception _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    count t (fun t -> t.errors <- t.errors + 1)

let memo t ~kind ~key f =
  match t with
  | None -> f ()
  | Some t -> (
    match find t ~kind ~key with
    | Some v -> v
    | None ->
      let v = f () in
      store t ~kind ~key v;
      v)

type stats = { hits : int; misses : int; stores : int; errors : int }

let stats t =
  Mutex.lock t.m;
  let s = { hits = t.hits; misses = t.misses; stores = t.stores; errors = t.errors } in
  Mutex.unlock t.m;
  s

let stats_json t =
  let s = stats t in
  Report.Json.Obj
    [ ("dir", Report.Json.String t.root);
      ("schema_version", Report.Json.Int schema_version);
      ("hits", Report.Json.Int s.hits);
      ("misses", Report.Json.Int s.misses);
      ("stores", Report.Json.Int s.stores);
      ("errors", Report.Json.Int s.errors) ]

let render_stats t =
  let s = stats t in
  Printf.sprintf "cache %s: %d hits, %d misses, %d stores%s" t.root s.hits
    s.misses s.stores
    (if s.errors > 0 then Printf.sprintf ", %d errors" s.errors else "")
