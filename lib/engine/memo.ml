type 'a cell = Running | Done of 'a | Failed of exn

type 'a t = {
  m : Mutex.t;
  settled : Condition.t;
  tbl : (string, 'a cell) Hashtbl.t;
}

let create () =
  { m = Mutex.create (); settled = Condition.create (); tbl = Hashtbl.create 64 }

let get t key f =
  Mutex.lock t.m;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done v) ->
      Mutex.unlock t.m;
      `Value v
    | Some (Failed e) ->
      Mutex.unlock t.m;
      `Raise e
    | Some Running ->
      (* Someone else is computing this key; wait for it to settle. *)
      Condition.wait t.settled t.m;
      claim ()
    | None ->
      Hashtbl.replace t.tbl key Running;
      Mutex.unlock t.m;
      `Compute
  in
  match claim () with
  | `Value v -> v
  | `Raise e -> raise e
  | `Compute ->
    let settle cell =
      Mutex.lock t.m;
      Hashtbl.replace t.tbl key cell;
      Condition.broadcast t.settled;
      Mutex.unlock t.m
    in
    (match f () with
    | v ->
      settle (Done v);
      v
    | exception e ->
      settle (Failed e);
      raise e)

let clear t =
  Mutex.lock t.m;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.m

let size t =
  Mutex.lock t.m;
  let n =
    Hashtbl.fold
      (fun _ cell acc -> match cell with Running -> acc | _ -> acc + 1)
      t.tbl 0
  in
  Mutex.unlock t.m;
  n
