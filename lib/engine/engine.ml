type error_kind = [ `Trap | `Fuel | `Invariant | `Failed | `Exception ]

type job_error = { label : string; kind : error_kind; message : string }

let kind_to_string = function
  | `Trap -> "trap"
  | `Fuel -> "fuel-exhausted"
  | `Invariant -> "invariant"
  | `Failed -> "failed"
  | `Exception -> "exception"

let error_to_string e =
  Printf.sprintf "%s: [%s] %s" e.label (kind_to_string e.kind) e.message

let error_json e =
  Report.Json.Obj
    [ ("job", Report.Json.String e.label);
      ("kind", Report.Json.String (kind_to_string e.kind));
      ("message", Report.Json.String e.message) ]

type job_stat = {
  label : string;
  wall_s : float;
  worker : int;
  alloc_words : int;
}

type stats = {
  pool : int;
  submitted : int;
  succeeded : int;
  failed : int;
  wall_s : float;
  busy_s : float;
  max_queue_depth : int;
  job_stats : job_stat list;
}

let stats_json s =
  Report.Json.Obj
    [ ("pool", Report.Json.Int s.pool);
      ("submitted", Report.Json.Int s.submitted);
      ("succeeded", Report.Json.Int s.succeeded);
      ("failed", Report.Json.Int s.failed);
      ("wall_seconds", Report.Json.Float s.wall_s);
      ("busy_seconds", Report.Json.Float s.busy_s);
      ("max_queue_depth", Report.Json.Int s.max_queue_depth);
      ("jobs",
       Report.Json.List
         (List.map
            (fun j ->
              Report.Json.Obj
                [ ("label", Report.Json.String j.label);
                  ("wall_seconds", Report.Json.Float j.wall_s);
                  ("worker", Report.Json.Int j.worker);
                  ("alloc_words", Report.Json.Int j.alloc_words) ])
            s.job_stats)) ]

let render_stats s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "engine: %d jobs on %d workers in %.2fs (busy %.2fs, %.1fx, %d failed, \
        queue depth %d)\n"
       s.submitted s.pool s.wall_s s.busy_s
       (if s.wall_s > 0.0 then s.busy_s /. s.wall_s else 1.0)
       s.failed s.max_queue_depth);
  let width =
    List.fold_left (fun acc j -> max acc (String.length j.label)) 3 s.job_stats
  in
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf "  %-*s %8.1f ms  worker %d\n" width j.label
           (1000.0 *. j.wall_s) j.worker))
    s.job_stats;
  Buffer.contents b

let default_jobs () =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* The work queue: all jobs are enqueued before the workers start, but the
   queue is written in the general producer/consumer form (close + condition)
   so a streaming submitter can reuse it later. *)
type queue = {
  q : int Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable max_depth : int;
}

let queue_create () =
  { q = Queue.create (); m = Mutex.create (); nonempty = Condition.create ();
    closed = false; max_depth = 0 }

let queue_push qu i =
  Mutex.lock qu.m;
  Queue.push i qu.q;
  qu.max_depth <- max qu.max_depth (Queue.length qu.q);
  Condition.signal qu.nonempty;
  Mutex.unlock qu.m

let queue_close qu =
  Mutex.lock qu.m;
  qu.closed <- true;
  Condition.broadcast qu.nonempty;
  Mutex.unlock qu.m

let queue_pop qu =
  Mutex.lock qu.m;
  let rec go () =
    match Queue.take_opt qu.q with
    | Some i ->
      Mutex.unlock qu.m;
      Some i
    | None ->
      if qu.closed then begin
        Mutex.unlock qu.m;
        None
      end
      else begin
        Condition.wait qu.nonempty qu.m;
        go ()
      end
  in
  go ()

let run ?jobs ?obs ?(classify = fun e -> (`Exception, Printexc.to_string e))
    ?(label = fun i -> Printf.sprintf "job-%d" i) thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs ()
  in
  let pool = max 1 (min jobs (max n 1)) in
  let results =
    Array.make n (Error { label = "unset"; kind = `Exception; message = "job never ran" })
  in
  let times = Array.make n 0.0 in
  let workers = Array.make n 0 in
  let allocs = Array.make n 0 in
  let submitted = Array.make n 0.0 in
  let t0 = Obs.Clock.now () in
  let run_one ~worker i =
    let start = Obs.Clock.now () in
    let g0 = Gc.quick_stat () in
    (match obs with
    | None -> ()
    | Some o ->
      Obs.event o
        { ts = Obs.Event.Mono start;
          payload = Obs.Event.Job_start { label = label i; worker } };
      (match submitted.(i) with
      | s when s > 0.0 ->
        Obs.observe o "engine.queue_wait_us"
          (int_of_float (1e6 *. Float.max 0.0 (start -. s)))
      | _ -> ()));
    (results.(i) <-
       (match thunks.(i) () with
       | v -> Ok v
       | exception e ->
         let kind, message = classify e in
         Error { label = label i; kind; message }));
    let stop = Obs.Clock.now () in
    let g1 = Gc.quick_stat () in
    (* Approximate words allocated by the job on this domain: minor plus
       promoted-free major allocation.  Other domains' major allocations
       can leak into the major counter, so this is attribution, not an
       exact account. *)
    let alloc_words =
      int_of_float
        (Float.max 0.0
           (g1.Gc.minor_words +. g1.Gc.major_words -. g1.Gc.promoted_words
           -. (g0.Gc.minor_words +. g0.Gc.major_words -. g0.Gc.promoted_words)))
    in
    times.(i) <- stop -. start;
    workers.(i) <- worker;
    allocs.(i) <- alloc_words;
    match obs with
    | None -> ()
    | Some o ->
      let ok = match results.(i) with Ok _ -> true | Error _ -> false in
      Obs.event o
        { ts = Obs.Event.Mono stop;
          payload =
            Obs.Event.Job_finish { label = label i; worker; ok; wall_s = times.(i) } };
      Obs.incr o (if ok then "engine.jobs_succeeded" else "engine.jobs_failed");
      Obs.observe o "engine.job_wall_us" (int_of_float (1e6 *. times.(i)));
      Obs.observe o "engine.job_alloc_words" alloc_words;
      Obs.max_gauge o "gc.top_heap_words" g1.Gc.top_heap_words
  in
  let submit i =
    submitted.(i) <- Obs.Clock.now ();
    match obs with
    | None -> ()
    | Some o ->
      Obs.event o
        { ts = Obs.Event.Mono submitted.(i);
          payload = Obs.Event.Job_submit { label = label i } };
      Obs.incr o "engine.jobs_submitted"
  in
  let qu = queue_create () in
  if pool = 1 then
    for i = 0 to n - 1 do
      submit i;
      run_one ~worker:0 i
    done
  else begin
    for i = 0 to n - 1 do
      submit i;
      queue_push qu i
    done;
    queue_close qu;
    let worker w =
      let rec loop () =
        match queue_pop qu with
        | None -> ()
        | Some i ->
          run_one ~worker:w i;
          loop ()
      in
      loop ()
    in
    let spawned =
      Array.init (pool - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned
  end;
  let wall_s = Obs.Clock.now () -. t0 in
  let busy_s = Array.fold_left ( +. ) 0.0 times in
  let failed =
    Array.fold_left
      (fun acc -> function Error _ -> acc + 1 | Ok _ -> acc)
      0 results
  in
  let job_stats =
    List.init n (fun i ->
        { label = label i; wall_s = times.(i); worker = workers.(i);
          alloc_words = allocs.(i) })
  in
  ( results,
    { pool; submitted = n; succeeded = n - failed; failed; wall_s; busy_s;
      max_queue_depth = qu.max_depth; job_stats } )
