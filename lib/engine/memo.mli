(** A domain-safe compute-once memo table.

    [get t key f] returns the cached value for [key], computing it with
    [f] exactly once even when several domains ask for the same key
    concurrently: the first caller computes while the others block on a
    condition variable until the result (or the exception [f] raised, which
    is cached and re-raised — a deterministic failure stays failed) is
    available.  The computation itself runs outside the table lock, so
    distinct keys are computed in parallel. *)

type 'a t

val create : unit -> 'a t

val get : 'a t -> string -> (unit -> 'a) -> 'a
(** Compute-once lookup.  Re-raises the cached exception if the first
    computation of [key] failed. *)

val clear : 'a t -> unit
(** Forget every binding (for tests; do not call concurrently with
    {!get}). *)

val size : 'a t -> int
(** Number of settled (computed or failed) bindings. *)
