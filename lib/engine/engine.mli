(** A Domain-pool job scheduler for embarrassingly-parallel experiment
    grids.

    A batch of independent jobs is pushed onto a [Mutex]/[Condition] work
    queue and drained by a pool of OCaml 5 [Domain]s ([--jobs N]; the
    default honours the [JOBS] environment variable, then
    [Domain.recommended_domain_count]).  Jobs are crash-isolated: an
    exception escaping a job marks {e that job} failed with a structured
    {!job_error} — classified by the caller-supplied [classify], so the
    engine itself stays ignorant of VM traps and pipeline invariants — and
    the rest of the batch completes.

    With [jobs = 1] (or a single job) everything runs inline on the calling
    domain, with no spawning: the sequential path the determinism
    regression compares against.

    Observability: per-job wall clock and worker assignment, queue-depth
    high-water mark, and success/failure counts, renderable as a table
    ({!render_stats}) or as JSON ({!stats_json}). *)

type error_kind =
  [ `Trap  (** The simulated machine trapped. *)
  | `Fuel  (** The instruction budget ran out. *)
  | `Invariant  (** A pipeline/image invariant check failed. *)
  | `Failed  (** An explicit [Failure] (e.g. behaviour divergence). *)
  | `Exception  (** Anything else. *) ]

type job_error = { label : string; kind : error_kind; message : string }

val kind_to_string : error_kind -> string
val error_to_string : job_error -> string
val error_json : job_error -> Report.Json.t

type job_stat = {
  label : string;
  wall_s : float;  (** Wall clock (monotonic) spent inside the job. *)
  worker : int;  (** Index of the pool worker that ran it (0 = caller). *)
  alloc_words : int;
      (** Approximate words allocated while the job ran on its domain
          ([Gc.quick_stat] delta: minor plus promoted-free major).
          Attribution, not an exact per-job account — concurrent domains
          share the major counters. *)
}

type stats = {
  pool : int;  (** Worker count actually used. *)
  submitted : int;
  succeeded : int;
  failed : int;
  wall_s : float;  (** Wall clock of the whole batch. *)
  busy_s : float;  (** Summed per-job wall clock (parallel speedup is
                       [busy_s /. wall_s]). *)
  max_queue_depth : int;  (** High-water mark of jobs waiting in the
                              queue. *)
  job_stats : job_stat list;  (** In submission order. *)
}

val stats_json : stats -> Report.Json.t
val render_stats : stats -> string
(** One summary line plus an aligned per-job table. *)

val default_jobs : unit -> int
(** [$JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?obs:Obs.t ->
  ?classify:(exn -> error_kind * string) ->
  ?label:(int -> string) ->
  (unit -> 'a) list ->
  ('a, job_error) result array * stats
(** Evaluate every thunk; the result array is in submission order.
    [classify] turns an escaped exception into a structured error (default:
    [`Exception] with [Printexc.to_string]); [label] names job [i] for
    error messages and per-job stats.  [obs] receives
    submit/start/finish job events (monotonic host clock; each worker
    domain emits into its own trace shard, so tracing does not serialise
    the pool), the [engine.jobs_*] counters, the [engine.job_wall_us] /
    [engine.job_alloc_words] / [engine.queue_wait_us] histograms and the
    [gc.top_heap_words] max-gauge. *)
