type model = {
  alu : int;
  mul : int;
  div : int;
  mem : int;
  branch : int;
  branch_taken : int;
  syscall : int;
  decomp_invoke : int;
  decomp_per_bit : int;
  decomp_per_step : int;
  decomp_per_instr : int;
  decomp_cache_hit : int;
  icache_flush : int;
  stub_invoke : int;
}

let default =
  {
    alu = 1;
    mul = 8;
    div = 24;
    mem = 2;
    branch = 1;
    branch_taken = 3;
    syscall = 30;
    decomp_invoke = 150;
    decomp_per_bit = 4;
    decomp_per_step = 4;
    decomp_per_instr = 12;
    decomp_cache_hit = 40;
    icache_flush = 200;
    stub_invoke = 20;
  }

let instr_cost m instr ~taken =
  match instr with
  | Instr.Sys _ -> m.syscall
  | Instr.Nop -> m.alu
  | Instr.Lda _ | Instr.Ldah _ -> m.alu
  | Instr.Opr { op = Instr.Mul; _ } -> m.mul
  | Instr.Opr { op = Instr.Div | Instr.Rem; _ } -> m.div
  | Instr.Opr _ -> m.alu
  | Instr.Mem _ -> m.mem
  | Instr.Cbr _ -> if taken then m.branch_taken else m.branch
  | Instr.Br _ | Instr.Bsr _ | Instr.Bsrx _ -> m.branch_taken
  | Instr.Jmp _ | Instr.Jsr _ | Instr.Ret _ -> m.branch_taken
  | Instr.Sentinel -> m.alu
