(** Cycle-cost model for SQ32.

    The model is deliberately simple — a per-class latency table in the style
    of an in-order embedded core — because the paper's Figure 7(b) only needs
    relative execution times.  The decompressor's dynamic cost is derived
    from the same table (see {!Pgcc.Runtime}). *)

type model = {
  alu : int;  (** add/sub/logical/compare/shift/lda/ldah *)
  mul : int;
  div : int;  (** div/rem *)
  mem : int;  (** load/store *)
  branch : int;  (** not-taken conditional branch *)
  branch_taken : int;  (** taken branches, jumps, calls, returns *)
  syscall : int;
  (* Decompressor cost parameters: *)
  decomp_invoke : int;
      (** Fixed overhead per decompressor call: register save/restore,
          argument unpacking, dispatch. *)
  decomp_per_bit : int;  (** Cycles per bit consumed by the DECODE loop. *)
  decomp_per_step : int;
      (** Cycles per model step beyond bit consumption: move-to-front
          recency-list walks, context-table selections, LZSS copy steps. *)
  decomp_per_instr : int;
      (** Cycles per instruction materialised into the runtime buffer
          (field reassembly + store). *)
  decomp_cache_hit : int;
      (** Flat cost of a decompressor entry that finds its region already
          resident in a buffer slot: dispatch, tag load, residency check
          and the jump back into the buffer — no decoding, no stores, no
          cache flush. *)
  icache_flush : int;  (** Flat cost of the post-decompression cache flush. *)
  stub_invoke : int;
      (** Flat cost of one CreateStub call (paper, Fig. 2): hash the
          (region, return address) key, bump or initialise a stub slot and
          redirect the return register.  Previously hard-coded at its
          default of 20 inside the runtime; a field so sweeps can vary
          it. *)
}

val default : model

val instr_cost : model -> Instr.t -> taken:bool -> int
(** Cycles charged for executing one instruction.  [taken] matters only for
    conditional branches. *)
