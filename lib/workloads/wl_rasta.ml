(* rasta: RASTA-PLP-style speech analysis: per 128-sample frame, a Hann
   window (table built once), a 12-channel Goertzel filterbank for band
   powers, log compression, RASTA band-pass filtering of the log-energy
   trajectories across frames, and delta features.  A calibration pass and
   a spectrogram dump exist on the verbose path, which profiling does not
   reach.

   Input words: [mode][nframes][128*nframes samples...].
   Mode 1: analyse, CRC the feature stream.
   Mode 2: analyse with calibration and the spectrogram dump.  *)

let source =
  {|
const FRAME = 128;
const NBANDS = 12;

int frame[128];
int window[128];
int window_ready;

int band_log[12];
int prev_log[12];
int rasta_state[12];
int delta_prev[12];

int ras_checksum;
int mix_hook;
int silent_frames; int active_frames;

// The checksum mixer is installed through a function pointer at start-up
// (real speech front ends swap feature post-processing the same way); the
// dispatch makes every mix an indirect call.
int ras_mix_xor(int v) {
  ras_checksum = ((ras_checksum * 157) ^ (v & 16777215)) & 1073741823;
  return ras_checksum;
}

int ras_mix(int v) {
  return mix_hook(v);
}

// --- tables ------------------------------------------------------------

// Hann-ish window in Q10 via the parabola approximation
// w(i) = 4096 * i * (FRAME-1-i) / (FRAME-1)^2, close enough in shape.
int build_window() {
  int i;
  for (i = 0; i < FRAME; i = i + 1)
    window[i] = 64 + (4032 * i * (FRAME - 1 - i)) / ((FRAME - 1) * (FRAME - 1));
  window_ready = 1;
  return 0;
}

// Goertzel coefficients 2*cos(2*pi*k/FRAME) in Q12 for the 12 band centre
// bins (k = 2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 43, 51).
int band_bin[12] = { 2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 43, 51 };
int goertzel_coef[12] = { 8152, 8052, 7887, 7517, 7027, 6270, 5420, 4240,
                          2959, 1598, -222, -1960 };

// --- per-frame analysis --------------------------------------------------

int apply_window() {
  int i;
  if (!window_ready) build_window();
  for (i = 0; i < FRAME; i = i + 1)
    frame[i] = (frame[i] * window[i]) >> 12;
  return 0;
}

// Goertzel power of band b over the current frame, scaled down to stay in
// 32-bit range.
int band_power(int b) {
  int coef; int s0; int s1; int s2; int i; int p;
  coef = goertzel_coef[b];
  s1 = 0; s2 = 0;
  for (i = 0; i < FRAME; i = i + 1) {
    s0 = ((coef * s1) >> 12) - s2 + frame[i];
    s2 = s1;
    s1 = s0;
  }
  p = ((s1 >> 6) * (s1 >> 6)) + ((s2 >> 6) * (s2 >> 6))
      - ((((coef * (s1 >> 6)) >> 12) * (s2 >> 6)));
  if (p < 0) p = -p;
  return p;
}

// log2 in Q4 using ilog2 plus a 4-bit mantissa refinement.
int log2_q4(int v) {
  int e; int frac;
  if (v < 1) return 0;
  e = ilog2(v);
  if (e >= 4) frac = (v >>> (e - 4)) & 15;
  else frac = (v << (4 - e)) & 15;
  return (e << 4) | frac;
}

// RASTA-style band-pass on the log-energy trajectory: difference with the
// previous frame plus a leaky integrator.
int rasta_filter(int b, int lg) {
  int d; int y;
  d = lg - prev_log[b];
  prev_log[b] = lg;
  y = rasta_state[b] + d - (rasta_state[b] >> 3);
  rasta_state[b] = y;
  return y;
}

int analyse_frame(int fno, int verbose) {
  int b; int p; int lg; int y; int dlt; int energy;
  apply_window();
  energy = 0;
  for (b = 0; b < NBANDS; b = b + 1) {
    p = band_power(b);
    energy = energy + (p >> 8);
    lg = log2_q4(p);
    band_log[b] = lg;
    y = rasta_filter(b, lg);
    dlt = y - delta_prev[b];
    delta_prev[b] = y;
    ras_mix((b << 20) | ((y & 1023) << 10) | (dlt & 1023));
  }
  if (energy < 16) {
    silent_frames = silent_frames + 1;
    if ((silent_frames & 15) == 1 && verbose) out_kv("silent-frame", fno);
  } else {
    active_frames = active_frames + 1;
  }
  if (verbose) {
    if ((fno & 3) == 0) plp_cepstrum(fno);
    if ((fno & 7) == 0) spectrogram_row(fno);
  }
  return 0;
}

// ------------------------------------------------------------------
// PLP-style cepstral coefficients: equal-loudness weighting, cube-root
// compression (via isqrt composition) and a small cosine transform of the
// band energies.  Only the verbose mode computes them every 4th frame.
// ------------------------------------------------------------------

int eq_loudness[12] = { 52, 70, 86, 100, 112, 120, 126, 128, 126, 120, 110, 96 };
int cepstrum[8];

// cos((2b+1) k pi / 24) in Q10 for k = 0..7, b = 0..11, flattened.
int plp_cos[96] = {
  1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024,
  1015, 946, 814, 626, 396, 134, -134, -396, -626, -814, -946, -1015,
  989, 724, 268, -268, -724, -989, -989, -724, -268, 268, 724, 989,
  946, 396, -396, -946, -946, -396, 396, 946, 946, 396, -396, -946,
  887, 0, -887, -887, 0, 887, 887, 0, -887, -887, 0, 887,
  814, -396, -1015, -134, 946, 626, -626, -946, 134, 1015, 396, -814,
  724, -724, -724, 724, 724, -724, -724, 724, 724, -724, -724, 724,
  626, -946, -134, 1015, -396, -814, 814, 396, -1015, 134, 946, -626 };

int cube_root_q(int v) {
  // A cheap monotone stand-in for the cube root on non-negative input.
  return isqrt(isqrt(v) * 16);
}

int plp_cepstrum(int fno) {
  int b; int k; int acc; int weighted[12];
  for (b = 0; b < NBANDS; b = b + 1) {
    weighted[b] = cube_root_q((band_log[b] * eq_loudness[b]) >> 7);
  }
  for (k = 0; k < 8; k = k + 1) {
    acc = 0;
    for (b = 0; b < NBANDS; b = b + 1)
      acc = acc + weighted[b] * plp_cos[k * 12 + b];
    cepstrum[k] = acc >> 10;
    ras_mix((k << 16) | (cepstrum[k] & 65535));
  }
  if ((fno & 31) == 0) {
    out_str("cep");
    for (k = 0; k < 8; k = k + 1) { out_char(' '); out_dec(cepstrum[k]); }
    out_nl();
  }
  return cepstrum[0];
}

// --- cold paths ------------------------------------------------------------

int spectrogram_row(int fno) {
  int b; int v; int c;
  out_dec_pad(fno, 4);
  out_char(' ');
  for (b = 0; b < NBANDS; b = b + 1) {
    v = band_log[b] >> 4;
    if (v > 25) c = '#';
    else if (v > 18) c = '+';
    else if (v > 12) c = '-';
    else c = '.';
    out_char(c);
  }
  out_nl();
  return 0;
}

int calibrate() {
  // Feed a known tone through the filterbank and check that its band wins;
  // runs once in verbose mode only.
  int i; int b; int best; int p;
  for (i = 0; i < FRAME; i = i + 1) {
    // a crude square tone at band 4's bin
    if (((i * band_bin[4]) / FRAME) & 1) frame[i] = 1000;
    else frame[i] = -1000;
  }
  apply_window();
  best = 0;
  for (b = 0; b < NBANDS; b = b + 1) {
    p = band_power(b);
    if (p > band_power(best)) best = b;
  }
  out_kv("calibration-band", best);
  lib_assert(iabs(best - 4) <= 2, "calibration way off");
  ras_mix((best << 8) | 77);
  return 0;
}

int validate(int mode, int nframes) {
  if (mode < 1 || mode > 2) lib_panic("rasta: bad mode", 11);
  if (nframes < 1 || nframes > 2048) lib_panic("rasta: bad frame count", 12);
  return 0;
}

int sext16r(int v) {
  v = v & 65535;
  if (v & 32768) return v - 65536;
  return v;
}

int main() {
  int mode; int nframes; int f; int i;
  ras_checksum = 23;
  mix_hook = &ras_mix_xor;
  mode = getw();
  nframes = getw();
  validate(mode, nframes);
  if (mode == 2) calibrate();
  wfill(prev_log, 0, NBANDS);
  wfill(rasta_state, 0, NBANDS);
  wfill(delta_prev, 0, NBANDS);
  for (f = 0; f < nframes; f = f + 1) {
    for (i = 0; i < FRAME; i = i + 1) frame[i] = sext16r(getw());
    analyse_frame(f, mode == 2);
  }
  out_kv("active", active_frames);
  out_kv("silent", silent_frames);
  out_kv("crc", ras_checksum);
  return ras_checksum & 255;
}
|}

let full_source = source ^ Wl_lib.source

let profiling_input =
  lazy
    (Wl_input.word_string
       (2 :: 12 :: Wl_input.speech ~seed:81 ~samples:(12 * 128)))

let timing_input =
  lazy
    (Wl_input.word_string
       (2 :: 64 :: Wl_input.speech ~seed:109 ~samples:(64 * 128)))

let drift_input =
  lazy
    (Wl_input.word_string (2 :: 40 :: Wl_input.speech ~seed:167 ~samples:(40 * 128)))

let workload =
  {
    Workload.name = "rasta";
    description = "RASTA-style filterbank speech analysis";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
