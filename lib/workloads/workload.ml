type t = {
  name : string;
  description : string;
  source : string;
  profiling_input : string Lazy.t;
  timing_input : string Lazy.t;
  drift_input : string Lazy.t;
}

let compile t =
  match Minic.compile t.source with
  | Ok p -> p
  | Error e ->
    failwith (Printf.sprintf "workload %s: %s" t.name (Minic.error_to_string e))

let profiling_input t = Lazy.force t.profiling_input
let timing_input t = Lazy.force t.timing_input
let drift_input t = Lazy.force t.drift_input
