(* g721_enc: the encoder half of the G.721-style voice codec.

   Input words: [mode][count][samples...].
   Mode 1: encode, print CRC of the packed code stream.
   Mode 2: encode and emit the packed codes with putw (this mode produces
           the g721_dec workload's inputs).
   Mode 3: encode with per-block state dumps (verbose; cold).  *)

let source =
  {|
int enc_checksum;

int enc_mix(int v) {
  enc_checksum = ((enc_checksum * 37) ^ (v & 1048575)) & 1073741823;
  return enc_checksum;
}

// Pack eight 4-bit codes per word, most recent in the low nibble.
int enc_stream(int count, int emit, int verbose) {
  int i; int x; int code; int packed; int n;
  packed = 0; n = 0;
  for (i = 0; i < count; i = i + 1) {
    x = g721_sext16(getw());
    code = g721_encode(x);
    packed = (packed << 4) | code;
    n = n + 1;
    if (n == 8) {
      enc_mix(packed);
      if (emit) putw(packed);
      packed = 0;
      n = 0;
    }
    if (verbose) {
      if ((i & 1023) == 0) g721_dump_state(i);
    }
  }
  if (n != 0) {
    packed = packed << (4 * (8 - n));
    enc_mix(packed);
    if (emit) putw(packed);
  }
  return 0;
}

// Encode at one of the other G.726 rates (16/24/40 kbps); cold unless a
// rate mode is requested.
int enc_stream_rate(int count, int bits) {
  int i; int x; int code;
  g72x_check_rate_tables();
  for (i = 0; i < count; i = i + 1) {
    x = g721_sext16(getw());
    code = g72x_encode_rate(x, bits);
    enc_mix((bits << 8) | code);
  }
  out_kv("rate-bits", bits);
  return 0;
}

int main() {
  int mode; int count;
  enc_checksum = 5381;
  mode = getw();
  count = getw();
  g721_validate(mode, count, 1, 6);
  g721_reset();
  if (mode == 1) enc_stream(count, 0, 0);
  if (mode == 2) { putw(count); enc_stream(count, 1, 0); }
  if (mode == 3) { enc_stream(count, 0, 1); g721_dump_state(-1); }
  if (mode == 4) enc_stream_rate(count, 2);
  if (mode == 5) enc_stream_rate(count, 3);
  if (mode == 6) enc_stream_rate(count, 5);
  if (mode != 2) {
    out_kv("codes-crc", enc_checksum);
    out_kv("clips", g_clips);
  }
  return enc_checksum & 255;
}
|}

let full_source = source ^ Wl_g721_common.codec ^ Wl_lib.source

let profiling_input =
  lazy (Wl_input.word_string (3 :: 1500 :: Wl_input.speech ~seed:21 ~samples:1500))

let timing_input =
  lazy (Wl_input.word_string (3 :: 8000 :: Wl_input.speech ~seed:91 ~samples:8000))

let drift_input =
  lazy (Wl_input.word_string (3 :: 5000 :: Wl_input.speech ~seed:139 ~samples:5000))

let workload =
  {
    Workload.name = "g721_enc";
    description = "G.721-style adaptive-predictor ADPCM encoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }

(* Encode a speech waveform through the VM to produce a real code stream
   (used by g721_dec's input generators). *)
let encoded_stream ~seed ~samples =
  let input = Wl_input.word_string (2 :: samples :: Wl_input.speech ~seed ~samples) in
  let prog = Workload.compile workload in
  let outcome = Vm.run (Vm.of_image ~fuel:200_000_000 (Layout.emit prog) ~input) in
  outcome.Vm.output
