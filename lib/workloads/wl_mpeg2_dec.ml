(* mpeg2dec: the decoder: parses the macroblock stream that mpeg2enc
   (mode 2) produced inside the VM — per macroblock an inter flag, a motion
   vector and four quantised 8x8 blocks — then dequantises, inverse
   transforms and motion-compensates.  Mode 2 also runs an error-resilience
   sweep (plausibility checks and concealment counters), cold at profiling
   time.

   Input words: [mode][width][height][frames][macroblock data...]. *)

let source =
  {|
const MAXW = 48;
const MAXH = 32;

int ref[1536];
int rec[1536];
int width; int height;

int mpd_checksum;
int conceal_count; int mv_out_of_range;

int mpd_mix(int v) {
  mpd_checksum = ((mpd_checksum * 149) ^ (v & 16777215)) & 1073741823;
  return mpd_checksum;
}

int decode_block8(int px, int py, int dx, int dy, int inter) {
  int i; int y; int x; int v;
  for (i = 0; i < 64; i = i + 1) blk[i] = getw();
  mpg_dequantize_block();
  dct_inverse();
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      v = blk[y * 8 + x];
      if (inter) v = v + ref[(py + y + dy) * MAXW + px + x + dx];
      else v = v + 128;
      rec[(py + y) * MAXW + px + x] = iclamp(v, 0, 255);
    }
  return 0;
}

// Concealment: when a motion vector is implausible, reuse the co-located
// reference block instead (cold: well-formed streams never trigger it).
int conceal_macroblock(int mx, int my) {
  int y; int x;
  conceal_count = conceal_count + 1;
  for (y = 0; y < MB; y = y + 1)
    for (x = 0; x < MB; x = x + 1)
      rec[(my * MB + y) * MAXW + mx * MB + x] = ref[(my * MB + y) * MAXW + mx * MB + x];
  return 0;
}

int mv_valid(int mx, int my, int dx, int dy) {
  if (mx * MB + dx < 0) return 0;
  if (my * MB + dy < 0) return 0;
  if (mx * MB + MB + dx > width) return 0;
  if (my * MB + MB + dy > height) return 0;
  return 1;
}

int decode_macroblock(int mx, int my, int check) {
  int inter; int dx; int dy; int bx; int by; int skip; int i;
  inter = getw();
  dx = getw() - 8;
  dy = getw() - 8;
  skip = 0;
  if (check) {
    if (inter < 0 || inter > 1) { mv_out_of_range = mv_out_of_range + 1; skip = 1; }
    else if (inter && !mv_valid(mx, my, dx, dy)) {
      mv_out_of_range = mv_out_of_range + 1;
      skip = 1;
    }
  }
  if (skip) {
    // Swallow the block data, then conceal.
    for (i = 0; i < 4 * 64; i = i + 1) getw();
    conceal_macroblock(mx, my);
    return 0;
  }
  mpd_mix((inter << 8) | ((dx + 8) << 4) | (dy + 8));
  for (by = 0; by < 2; by = by + 1)
    for (bx = 0; bx < 2; bx = bx + 1)
      decode_block8(mx * MB + bx * 8, my * MB + by * 8, dx, dy, inter);
  return 0;
}

int frame_checksum() {
  int i;
  for (i = 0; i < width * height; i = i + 1) mpd_mix(rec[i]);
  return 0;
}

// A simple horizontal+vertical deblocking filter across 8-pixel block
// boundaries (mode 3): smooth a boundary when the step across it is small
// (a real edge) and leave true edges alone.  Cold in the normal modes.
int deblock_pass() {
  int y; int x; int d; int smoothed;
  smoothed = 0;
  for (y = 0; y < height; y = y + 1)
    for (x = 8; x < width; x = x + 8) {
      d = rec[y * MAXW + x] - rec[y * MAXW + x - 1];
      if (iabs(d) <= 4 && d != 0) {
        rec[y * MAXW + x] = rec[y * MAXW + x] - d / 2;
        rec[y * MAXW + x - 1] = rec[y * MAXW + x - 1] + d / 2;
        smoothed = smoothed + 1;
      }
    }
  for (y = 8; y < height; y = y + 8)
    for (x = 0; x < width; x = x + 1) {
      d = rec[y * MAXW + x] - rec[(y - 1) * MAXW + x];
      if (iabs(d) <= 4 && d != 0) {
        rec[y * MAXW + x] = rec[y * MAXW + x] - d / 2;
        rec[(y - 1) * MAXW + x] = rec[(y - 1) * MAXW + x] + d / 2;
        smoothed = smoothed + 1;
      }
    }
  out_kv("deblock-smoothed", smoothed);
  mpd_mix(smoothed);
  return smoothed;
}

// --- cold analysis -----------------------------------------------------

int luminance_report(int f) {
  int i; int sum; int peak;
  sum = 0; peak = 0;
  for (i = 0; i < width * height; i = i + 1) {
    sum = sum + rec[i];
    peak = imax(peak, rec[i]);
  }
  out_str("frame ");
  out_dec(f);
  out_kv(" mean-luma-q8", (sum << 8) / (width * height));
  out_kv(" peak-luma", peak);
  return 0;
}

int validate(int mode, int w, int h, int frames) {
  if (mode < 1 || mode > 3) lib_panic("mpegd: bad mode", 11);
  if (w < MB || w > MAXW || (w & 15) != 0) lib_panic("mpegd: bad width", 12);
  if (h < MB || h > MAXH || (h & 15) != 0) lib_panic("mpegd: bad height", 13);
  if (frames < 1 || frames > 64) lib_panic("mpegd: bad frame count", 14);
  return 0;
}

int main() {
  int mode; int w; int h; int frames; int f; int mx; int my;
  mpd_checksum = 9;
  mode = getw();
  w = getw();
  h = getw();
  frames = getw();
  validate(mode, w, h, frames);
  width = w; height = h;
  for (f = 0; f < frames; f = f + 1) {
    for (my = 0; my < height / MB; my = my + 1)
      for (mx = 0; mx < width / MB; mx = mx + 1)
        decode_macroblock(mx, my, mode == 2);
    if (mode == 3) deblock_pass();
    frame_checksum();
    wcopy(ref, rec, width * height);
    if (mode >= 2) luminance_report(f);
  }
  out_kv("concealed", conceal_count);
  out_kv("bad-mv", mv_out_of_range);
  out_kv("crc", mpd_checksum);
  return mpd_checksum & 255;
}
|}

let full_source =
  source ^ Wl_mpeg2_common.tables ^ Wl_mpeg2_common.quant_code
  ^ Wl_mpeg2_common.transform_code ^ Wl_lib.source

let dec_input ~mode ~seed ~frames =
  let stream = Wl_mpeg2_enc.encoded_stream ~seed ~width:48 ~height:32 ~frames in
  Wl_input.word_string [ mode ] ^ stream

let profiling_input = lazy (dec_input ~mode:2 ~seed:63 ~frames:2)
let timing_input = lazy (dec_input ~mode:2 ~seed:105 ~frames:7)
let drift_input = lazy (dec_input ~mode:2 ~seed:173 ~frames:4)

let workload =
  {
    Workload.name = "mpeg2dec";
    description = "MPEG-2-style predictive video decoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
