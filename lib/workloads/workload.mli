(** The benchmark workload abstraction.

    Each workload mirrors one MediaBench program from the paper's evaluation
    (Figure 5 / Table 1): a MiniC source program, a smaller {e profiling}
    input used to collect the execution profile that guides compression, and
    a larger {e timing} input — with somewhat different characteristics —
    used to measure execution time.  The split matters: code that is cold
    during profiling may still run at timing time, which is what produces
    the paper's runtime overhead curve.

    A third {e drift} input exists for the profile-lifecycle experiments
    (P8): it is deliberately distribution-shifted relative to both the
    profiling and timing inputs (different generator seed and size), so
    "train on A, run on B" cells have a genuine A/B axis. *)

type t = {
  name : string;  (** Matches the paper's benchmark name, e.g. "adpcm". *)
  description : string;
  source : string;  (** MiniC source text. *)
  profiling_input : string Lazy.t;
  timing_input : string Lazy.t;
  drift_input : string Lazy.t;
}

val compile : t -> Prog.t
(** Compile the source (raises [Failure] on error — workload sources are
    part of the library and must compile). *)

val profiling_input : t -> string
val timing_input : t -> string
val drift_input : t -> string
