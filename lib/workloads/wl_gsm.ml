(* gsm: a full-rate-style speech transcoder in the spirit of GSM 06.10.

   Per 160-sample frame: preemphasis, autocorrelation, reflection
   coefficients by the Schur recursion (fixed point), LAR-style
   quantisation, a long-term-prediction pitch search against the previous
   frame's short-term residual, and grid selection for the RPE part.
   Frames classified as silence take a separate (rarely-executed) path, and
   a comfort-noise/DTX path exists that the profiling input never reaches.

   Input words: [mode][nframes][160*nframes samples...].
   Mode 1: transcode, CRC the parameters.
   Mode 2: transcode with the DTX/comfort-noise machinery enabled.  *)

let source =
  {|
const FRAME = 160;
const NCOEF = 8;

int frame[160];
int residual[160];
int prev_residual[160];
int autocorr[9];
int refl[8];
int lar[8];

int gsm_checksum;
int silent_frames; int voiced_frames; int dtx_blocks;
int pre_state;

int gsm_mix(int v) {
  gsm_checksum = ((gsm_checksum * 31) ^ (v & 2097151)) & 1073741823;
  return gsm_checksum;
}

int sext16w(int v) {
  v = v & 65535;
  if (v & 32768) return v - 65536;
  return v;
}

// Preemphasis filter s'[n] = s[n] - (28180/32768) s[n-1].
int preemphasis() {
  int i; int s; int t;
  for (i = 0; i < FRAME; i = i + 1) {
    s = frame[i];
    t = s - ((pre_state * 28180) >> 15);
    pre_state = s;
    frame[i] = iclamp(t, -32768, 32767);
  }
  return 0;
}

// Scale the frame so autocorrelation cannot overflow, then correlate.
int autocorrelate() {
  int i; int k; int peak; int shift; int acc;
  peak = 0;
  for (i = 0; i < FRAME; i = i + 1) peak = imax(peak, iabs(frame[i]));
  shift = 0;
  while (peak >= 1024) { peak = peak >> 1; shift = shift + 1; }
  for (k = 0; k <= NCOEF; k = k + 1) {
    acc = 0;
    for (i = k; i < FRAME; i = i + 1)
      acc = acc + ((frame[i] >> shift) * (frame[i - k] >> shift));
    autocorr[k] = acc;
  }
  return shift;
}

// Schur-style recursion for reflection coefficients in Q12.
int schur() {
  int p[9];
  int k[9];
  int i; int n; int r; int denom; int t;
  for (i = 0; i <= NCOEF; i = i + 1) { p[i] = autocorr[i]; k[i] = 0; }
  for (n = 0; n < NCOEF; n = n + 1) {
    denom = p[0];
    if (denom < 16) { refl[n] = 0; k[n] = 0; continue; }
    r = -(p[n + 1] << 12) / denom;
    r = iclamp(r, -4095, 4095);
    refl[n] = r;
    // Update the error terms (only what later iterations need).
    for (i = 0; i + n + 1 <= NCOEF; i = i + 1) {
      t = p[i + n + 1] + ((r * p[i]) >> 12);
      p[i + n + 1] = t;
    }
    p[0] = p[0] + ((r * p[n + 1]) >> 12);
  }
  return 0;
}

// LAR-ish companding of reflection coefficients.
int quantize_lars() {
  int i; int r; int a;
  for (i = 0; i < NCOEF; i = i + 1) {
    r = refl[i];
    a = iabs(r);
    if (a < 2048) lar[i] = r;
    else if (a < 3584) { if (r > 0) lar[i] = 2048 + (r - 2048) * 2; else lar[i] = -2048 + (r + 2048) * 2; }
    else { if (r > 0) lar[i] = 5120 + (r - 3584) * 4; else lar[i] = -5120 + (r + 3584) * 4; }
    lar[i] = lar[i] >> 6;
    gsm_mix(lar[i]);
  }
  return 0;
}

// Short-term analysis filtering through the reflection lattice.
int short_term_residual() {
  int u[9];
  int i; int n; int din; int dout; int t;
  for (i = 0; i <= NCOEF; i = i + 1) u[i] = 0;
  for (i = 0; i < FRAME; i = i + 1) {
    din = frame[i];
    for (n = 0; n < NCOEF; n = n + 1) {
      dout = din + ((refl[n] * u[n]) >> 12);
      t = u[n] + ((refl[n] * din) >> 12);
      u[n] = iclamp(t, -32768, 32767);
      din = iclamp(dout, -32768, 32767);
      t = u[n];
      u[n] = t;
    }
    residual[i] = din;
  }
  // Shift the lattice memory into natural order for the next frame.
  for (n = NCOEF; n > 0; n = n - 1) u[n] = u[n - 1];
  return 0;
}

// Long-term prediction: best lag in [40, 120] against the previous frame's
// residual, evaluated on 40-sample subframes.
int ltp_search(int sub) {
  int base; int lag; int best_lag; int best_score; int score; int i; int idx;
  base = sub * 40;
  best_lag = 40; best_score = -2147483647;
  for (lag = 40; lag <= 120; lag = lag + 1) {
    score = 0;
    for (i = 0; i < 40; i = i + 1) {
      idx = base + i - lag;
      if (idx < 0) score = score + ((residual[base + i] * prev_residual[160 + idx]) >> 8);
      else score = score + ((residual[base + i] * residual[idx]) >> 8);
    }
    if (score > best_score) { best_score = score; best_lag = lag; }
  }
  gsm_mix(best_lag);
  gsm_mix(best_score & 65535);
  return best_lag;
}

// RPE grid selection: pick the densest of 4 decimation phases.
int rpe_grid(int sub) {
  int base; int phase; int best; int best_e; int e; int i;
  base = sub * 40;
  best = 0; best_e = -1;
  for (phase = 0; phase < 4; phase = phase + 1) {
    e = 0;
    for (i = phase; i < 40; i = i + 4) e = e + ((residual[base + i] * residual[base + i]) >> 10);
    if (e > best_e) { best_e = e; best = phase; }
  }
  gsm_mix(best);
  return best;
}

int frame_energy() {
  int i; int e;
  e = 0;
  for (i = 0; i < FRAME; i = i + 1) e = e + ((frame[i] * frame[i]) >> 12);
  return e;
}

// ------------------------------------------------------------------
// the synthesis half (decoder): inverse lattice filter and deemphasis.
// Mode 3 re-synthesises each frame from its own analysis parameters and
// reports the reconstruction error — the codec self-check that ships in
// the reference sources.  Cold in the normal transcoding modes.
// ------------------------------------------------------------------

int synth[160];
int de_state;

// Inverse of the short-term lattice: rebuild the signal from residual.
int short_term_synthesis() {
  int v[9];
  int i; int n; int sri;
  for (i = 0; i <= NCOEF; i = i + 1) v[i] = 0;
  for (i = 0; i < FRAME; i = i + 1) {
    sri = residual[i];
    for (n = NCOEF - 1; n >= 0; n = n - 1) {
      sri = sri - ((refl[n] * v[n]) >> 12);
      sri = iclamp(sri, -65536, 65535);
      v[n + 1] = iclamp(v[n] + ((refl[n] * sri) >> 12), -32768, 32767);
    }
    v[0] = iclamp(sri, -32768, 32767);
    synth[i] = v[0];
  }
  return 0;
}

// Inverse of the preemphasis filter.
int deemphasis() {
  int i; int s;
  for (i = 0; i < FRAME; i = i + 1) {
    s = synth[i] + ((de_state * 28180) >> 15);
    s = iclamp(s, -32768, 32767);
    de_state = s;
    synth[i] = s;
  }
  return 0;
}

int synthesis_check(int fno) {
  int i; int err; int energy;
  short_term_synthesis();
  deemphasis();
  err = 0; energy = 1;
  for (i = 0; i < FRAME; i = i + 1) {
    err = err + (iabs(frame[i] - synth[i]) >> 2);
    energy = energy + (iabs(frame[i]) >> 2);
  }
  // Report a crude reconstruction SNR proxy once in a while.
  if ((fno & 7) == 0) out_fmt2("frame %d recon-err-ratio-q8 %d\n", fno,
                               (err << 8) / energy);
  gsm_mix(err & 65535);
  return err;
}

// --- cold paths -----------------------------------------------------

int comfort_noise(int level) {
  // DTX: synthesise a comfort-noise parameter set (cold: only mode 2 on
  // silent stretches).
  int i;
  dtx_blocks = dtx_blocks + 1;
  lib_srand(level + dtx_blocks);
  for (i = 0; i < NCOEF; i = i + 1) gsm_mix(lib_rand_range(16) - 8);
  return 0;
}

int dump_frame_params(int fno) {
  int i;
  out_str("frame ");
  out_dec(fno);
  out_str(" lars:");
  for (i = 0; i < NCOEF; i = i + 1) { out_char(' '); out_dec(lar[i]); }
  out_nl();
  return 0;
}

int report() {
  out_kv("voiced", voiced_frames);
  out_kv("silent", silent_frames);
  out_kv("dtx", dtx_blocks);
  out_kv("crc", gsm_checksum);
  return 0;
}

int validate(int mode, int nframes) {
  if (mode < 1 || mode > 3) lib_panic("gsm: bad mode", 11);
  if (nframes < 1 || nframes > 4096) lib_panic("gsm: bad frame count", 12);
  return 0;
}

// --- driver ----------------------------------------------------------

int encode_frame(int fno, int dtx, int check) {
  int i; int sub; int energy;
  for (i = 0; i < FRAME; i = i + 1) frame[i] = sext16w(getw());
  preemphasis();
  energy = frame_energy();
  if (energy < 40) {
    silent_frames = silent_frames + 1;
    if (dtx) { comfort_noise(energy); return 0; }
    if ((silent_frames & 31) == 1) dump_frame_params(fno);
  } else {
    voiced_frames = voiced_frames + 1;
  }
  autocorrelate();
  schur();
  quantize_lars();
  short_term_residual();
  for (sub = 0; sub < 4; sub = sub + 1) {
    ltp_search(sub);
    rpe_grid(sub);
  }
  if (check) synthesis_check(fno);
  wcopy(prev_residual, residual, FRAME);
  return 0;
}

int main() {
  int mode; int nframes; int f;
  gsm_checksum = 7; pre_state = 0;
  mode = getw();
  nframes = getw();
  validate(mode, nframes);
  wfill(prev_residual, 0, FRAME);
  for (f = 0; f < nframes; f = f + 1) encode_frame(f, mode == 2, mode == 3);
  report();
  return gsm_checksum & 255;
}
|}

let full_source = source ^ Wl_lib.source

let profiling_input =
  lazy (Wl_input.word_string (2 :: 8 :: Wl_input.speech ~seed:31 ~samples:(8 * 160)))

let timing_input =
  lazy (Wl_input.word_string (2 :: 32 :: Wl_input.speech ~seed:95 ~samples:(32 * 160)))

let drift_input =
  lazy (Wl_input.word_string (2 :: 20 :: Wl_input.speech ~seed:149 ~samples:(20 * 160)))

let workload =
  {
    Workload.name = "gsm";
    description = "GSM 06.10-style full-rate speech transcoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
