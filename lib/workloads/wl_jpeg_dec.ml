(* jpeg_dec: the decoder: reads zig-zagged quantised coefficient blocks (a
   real stream produced by running jpeg_enc mode 2 in the VM), dequantises,
   runs the inverse DCT, reassembles the image, and reports statistics.
   Mode 2 additionally runs a deblocking smoothness analysis — cold at
   profiling time.

   Input words: [mode][width][height][64-word blocks...]. *)

let source =
  {|
const MAXW = 96;
const MAXH = 96;

int image[9216];
int width; int height;

int jpd_checksum;
int blocks_done; int clipped_pixels;

int jpd_mix(int v) {
  jpd_checksum = ((jpd_checksum * 137) ^ (v & 16777215)) & 1073741823;
  return jpd_checksum;
}

int read_block() {
  int i; int scanned[64];
  for (i = 0; i < 64; i = i + 1) scanned[i] = getw();
  // De-zig-zag into natural order.
  for (i = 0; i < 64; i = i + 1) blk[zigzag[i]] = scanned[i];
  return 0;
}

int dequantize_block() {
  int i;
  for (i = 0; i < 64; i = i + 1) blk[i] = blk[i] * quant_tab[i];
  return 0;
}

int store_block(int bx, int by) {
  int y; int x; int v;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      v = blk[y * 8 + x] + 128;
      if (v < 0) { v = 0; clipped_pixels = clipped_pixels + 1; }
      if (v > 255) { v = 255; clipped_pixels = clipped_pixels + 1; }
      image[(by * 8 + y) * MAXW + bx * 8 + x] = v;
      jpd_mix(v);
    }
  return 0;
}

int decode_image() {
  int by; int bx;
  for (by = 0; by < height / 8; by = by + 1)
    for (bx = 0; bx < width / 8; bx = bx + 1) {
      read_block();
      dequantize_block();
      dct_inverse();
      store_block(bx, by);
      blocks_done = blocks_done + 1;
    }
  return 0;
}

// --- cold analysis ----------------------------------------------------

// Blockiness metric: average absolute step across 8-pixel boundaries
// compared with the average interior gradient.
int blockiness_report() {
  int y; int x; int edge; int interior; int ne; int ni; int d;
  edge = 0; interior = 0; ne = 0; ni = 0;
  for (y = 0; y < height; y = y + 1)
    for (x = 1; x < width; x = x + 1) {
      d = iabs(image[y * MAXW + x] - image[y * MAXW + x - 1]);
      if ((x & 7) == 0) { edge = edge + d; ne = ne + 1; }
      else { interior = interior + d; ni = ni + 1; }
    }
  out_kv("edge-grad-q8", (edge << 8) / (ne + (ne == 0)));
  out_kv("interior-grad-q8", (interior << 8) / (ni + (ni == 0)));
  hist_reset();
  for (y = 0; y < height; y = y + 8)
    for (x = 0; x < width; x = x + 8) hist_add(image[y * MAXW + x]);
  hist_dump("corner luminance");
  return 0;
}

// Colour conversion sweep (mode 3): treat the decoded plane as luma,
// synthesise flat chroma, and run the integer YCbCr->RGB conversion the
// reference decoder ships.  Only the conversion arithmetic matters here.
int color_convert_sweep() {
  int y; int x; int yy; int cb; int cr; int r; int g; int b; int acc;
  acc = 0;
  cb = 16; cr = -24;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) {
      yy = image[y * MAXW + x];
      r = yy + ((91881 * cr) >> 16);
      g = yy - ((22554 * cb + 46802 * cr) >> 16);
      b = yy + ((116130 * cb) >> 16);
      r = iclamp(r, 0, 255);
      g = iclamp(g, 0, 255);
      b = iclamp(b, 0, 255);
      acc = (acc + r + g * 2 + b * 3) & 16777215;
      jpd_mix((r << 16) | (g << 8) | b);
    }
  out_kv("rgb-acc", acc);
  return acc;
}

int validate(int mode, int w, int h) {
  if (mode < 1 || mode > 3) lib_panic("jpegd: bad mode", 11);
  if (w < 8 || w > MAXW || (w & 7) != 0) lib_panic("jpegd: bad width", 12);
  if (h < 8 || h > MAXH || (h & 7) != 0) lib_panic("jpegd: bad height", 13);
  return 0;
}

int main() {
  int mode; int w; int h;
  jpd_checksum = 55;
  mode = getw();
  w = getw();
  h = getw();
  validate(mode, w, h);
  width = w; height = h;
  decode_image();
  out_kv("blocks", blocks_done);
  out_kv("clipped", clipped_pixels);
  if (mode == 2) blockiness_report();
  if (mode == 3) { blockiness_report(); color_convert_sweep(); }
  out_kv("crc", jpd_checksum);
  return jpd_checksum & 255;
}
|}

let full_source =
  source ^ Wl_jpeg_common.tables ^ Wl_jpeg_common.transform_code ^ Wl_lib.source

(* jpeg_enc mode 2 emits [width][height][blocks...]; prepend our mode. *)
let dec_input ~mode ~seed ~width ~height =
  let stream = Wl_jpeg_enc.encoded_stream ~seed ~width ~height in
  Wl_input.word_string [ mode ] ^ stream

let profiling_input = lazy (dec_input ~mode:2 ~seed:53 ~width:48 ~height:48)
let timing_input = lazy (dec_input ~mode:2 ~seed:101 ~width:96 ~height:96)
let drift_input = lazy (dec_input ~mode:2 ~seed:155 ~width:64 ~height:64)

let workload =
  {
    Workload.name = "jpeg_dec";
    description = "baseline-JPEG-style image decoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
