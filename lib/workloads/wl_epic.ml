(* epic: an image-pyramid coder in the spirit of the EPIC (Efficient
   Pyramid Image Coder) benchmark: a two-level separable Haar pyramid,
   dead-zone quantisation of the subbands, and zero-run-length entropy
   statistics.  Mode 2 (timing) also reconstructs through the inverse
   transform and reports distortion, exercising the decode half that stays
   cold while profiling.

   Input words: [mode][width][height][pixels...] with 8-bit pixels. *)

let source =
  {|
const MAXW = 96;
const MAXH = 96;

int img[9216];         // MAXW * MAXH
int tmp[9216];
int recon[9216];
int width; int height;

int epic_checksum;
int zero_runs; int coded_coeffs; int clipped_coeffs;

int epic_mix(int v) {
  epic_checksum = ((epic_checksum * 131) ^ (v & 16777215)) & 1073741823;
  return epic_checksum;
}

// --- forward / inverse Haar steps -----------------------------------

// One level of the separable Haar transform on the w x h top-left
// sub-image: averages to the left/top, details to the right/bottom.
int haar_rows(int w, int h) {
  int y; int x; int a; int b;
  for (y = 0; y < h; y = y + 1) {
    for (x = 0; x < w / 2; x = x + 1) {
      a = img[y * MAXW + 2 * x];
      b = img[y * MAXW + 2 * x + 1];
      tmp[y * MAXW + x] = (a + b) >> 1;
      tmp[y * MAXW + w / 2 + x] = a - b;
    }
    for (x = 0; x < w; x = x + 1) img[y * MAXW + x] = tmp[y * MAXW + x];
  }
  return 0;
}

int haar_cols(int w, int h) {
  int y; int x; int a; int b;
  for (x = 0; x < w; x = x + 1) {
    for (y = 0; y < h / 2; y = y + 1) {
      a = img[(2 * y) * MAXW + x];
      b = img[(2 * y + 1) * MAXW + x];
      tmp[y * MAXW + x] = (a + b) >> 1;
      tmp[(h / 2 + y) * MAXW + x] = a - b;
    }
    for (y = 0; y < h; y = y + 1) img[y * MAXW + x] = tmp[y * MAXW + x];
  }
  return 0;
}

int inv_haar_cols(int w, int h) {
  int y; int x; int avg; int d;
  for (x = 0; x < w; x = x + 1) {
    for (y = 0; y < h / 2; y = y + 1) {
      avg = img[y * MAXW + x];
      d = img[(h / 2 + y) * MAXW + x];
      tmp[(2 * y) * MAXW + x] = avg + ((d + 1) >> 1);
      tmp[(2 * y + 1) * MAXW + x] = avg + ((d + 1) >> 1) - d;
    }
    for (y = 0; y < h; y = y + 1) img[y * MAXW + x] = tmp[y * MAXW + x];
  }
  return 0;
}

int inv_haar_rows(int w, int h) {
  int y; int x; int avg; int d;
  for (y = 0; y < h; y = y + 1) {
    for (x = 0; x < w / 2; x = x + 1) {
      avg = img[y * MAXW + x];
      d = img[y * MAXW + w / 2 + x];
      tmp[y * MAXW + 2 * x] = avg + ((d + 1) >> 1);
      tmp[y * MAXW + 2 * x + 1] = avg + ((d + 1) >> 1) - d;
    }
    for (x = 0; x < w; x = x + 1) img[y * MAXW + x] = tmp[y * MAXW + x];
  }
  return 0;
}

// --- quantisation and entropy statistics ----------------------------

// Dead-zone quantiser; detail bands use coarser steps at finer levels.
int quant_step_for(int x, int y) {
  if (x < width / 4 && y < height / 4) return 1;   // approximation band
  if (x < width / 2 && y < height / 2) return 6;   // level-2 details
  return 10;                                       // level-1 details
}

int quantize_bands() {
  int y; int x; int step; int v; int q;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) {
      step = quant_step_for(x, y);
      v = img[y * MAXW + x];
      q = v / step;
      if (q > 2047) { q = 2047; clipped_coeffs = clipped_coeffs + 1; }
      if (q < -2047) { q = -2047; clipped_coeffs = clipped_coeffs + 1; }
      img[y * MAXW + x] = q;
    }
  return 0;
}

int dequantize_bands() {
  int y; int x; int step;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) {
      step = quant_step_for(x, y);
      img[y * MAXW + x] = img[y * MAXW + x] * step;
    }
  return 0;
}

// Zero-run statistics over the zig-ordered detail coefficients: the
// entropy-coder front end (we CRC the run/level pairs instead of packing
// actual bits, which the original does with arithmetic coding).
int runlength_scan() {
  int y; int x; int v; int run;
  run = 0;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) {
      if (x < width / 4 && y < height / 4) continue;  // skip approximation
      v = img[y * MAXW + x];
      if (v == 0) { run = run + 1; }
      else {
        if (run > 0) { epic_mix(run); zero_runs = zero_runs + 1; }
        epic_mix(v & 4095);
        coded_coeffs = coded_coeffs + 1;
        run = 0;
      }
    }
  if (run > 0) { epic_mix(run); zero_runs = zero_runs + 1; }
  return 0;
}

// ------------------------------------------------------------------
// Golomb-Rice entropy coding of the detail coefficients (mode 3): a real
// bitstream is produced through the runtime library's bit writer, with a
// per-band adaptive Rice parameter.  The reference coder uses adaptive
// arithmetic coding here; Rice coding is the embedded-friendly stand-in.
// ------------------------------------------------------------------

int rice_bits[8192];

int zigzagmap(int v) {
  // Map signed to unsigned: 0,-1,1,-2,2 ... -> 0,1,2,3,4.
  if (v >= 0) return v * 2;
  return -v * 2 - 1;
}

int rice_encode_value(int v, int k) {
  int q;
  q = v >>> k;
  if (q > 24) {
    // Escape: 25 ones then the value verbatim.
    int i;
    for (i = 0; i < 25; i = i + 1) bio_put(1, 1);
    bio_put(v, 24);
    return 25 + 24;
  }
  bio_put((1 << (q + 1)) - 2, q + 1);   // q ones then a zero
  bio_put(v & ((1 << k) - 1), k);
  return q + 1 + k;
}

// Pick k per band from the mean magnitude, then encode the band.
int rice_encode_band(int x0, int y0, int w, int h) {
  int y; int x; int sum; int n; int k; int bits; int u;
  sum = 0; n = 0;
  for (y = y0; y < y0 + h; y = y + 1)
    for (x = x0; x < x0 + w; x = x + 1) {
      sum = sum + zigzagmap(img[y * MAXW + x]);
      n = n + 1;
    }
  k = 0;
  while ((n << (k + 1)) < sum && k < 15) k = k + 1;
  bits = 0;
  for (y = y0; y < y0 + h; y = y + 1)
    for (x = x0; x < x0 + w; x = x + 1) {
      u = zigzagmap(img[y * MAXW + x]);
      bits = bits + rice_encode_value(u, k);
    }
  out_fmt3("band %d+%d k=%d", x0, y0, k);
  out_fmt1(" bits=%d\n", bits);
  return bits;
}

int rice_encode_pyramid() {
  int total;
  bio_init(rice_bits, 8192);
  total = 0;
  // The three level-1 detail bands and three level-2 detail bands.
  total = total + rice_encode_band(width / 2, 0, width / 2, height / 2);
  total = total + rice_encode_band(0, height / 2, width / 2, height / 2);
  total = total + rice_encode_band(width / 2, height / 2, width / 2, height / 2);
  total = total + rice_encode_band(width / 4, 0, width / 4, height / 4);
  total = total + rice_encode_band(0, height / 4, width / 4, height / 4);
  total = total + rice_encode_band(width / 4, height / 4, width / 4, height / 4);
  bio_flush();
  epic_mix(crc_block(rice_bits, imin(bio_count, 8192)));
  out_kv("rice-bits", total);
  out_kv("rice-bpp-q8", (total << 8) / (width * height));
  return total;
}

// --- cold paths -----------------------------------------------------

int validate_header(int mode, int w, int h) {
  if (mode < 1 || mode > 3) lib_panic("epic: bad mode", 11);
  if (w < 8 || w > MAXW) lib_panic("epic: bad width", 12);
  if (h < 8 || h > MAXH) lib_panic("epic: bad height", 13);
  if ((w & 3) != 0 || (h & 3) != 0) lib_panic("epic: size not /4", 14);
  return 0;
}

int distortion_report() {
  int y; int x; int d; int sse; int peak; int n;
  sse = 0; peak = 0; n = 0;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) {
      d = recon[y * MAXW + x] - img[y * MAXW + x];
      d = iabs(d);
      if (d > peak) peak = d;
      sse = sse + imin(d * d, 65535);
      n = n + 1;
    }
  out_kv("mse-q8", (sse << 8) / (n + (n == 0)));
  out_kv("peak-err", peak);
  out_kv("rms-err", isqrt(sse / (n + (n == 0))));
  return 0;
}

int band_histogram() {
  int y; int x;
  hist_reset();
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1)
      if (!(x < width / 4 && y < height / 4)) hist_add(img[y * MAXW + x]);
  hist_dump("detail coefficient magnitudes");
  return 0;
}

// --- driver ----------------------------------------------------------

int read_image() {
  int y; int x;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) img[y * MAXW + x] = getw() & 255;
  return 0;
}

int main() {
  int mode; int w; int h;
  epic_checksum = 99;
  mode = getw();
  w = getw();
  h = getw();
  validate_header(mode, w, h);
  width = w; height = h;
  read_image();
  if (mode == 2) {
    // Keep the original for the distortion report.
    wcopy(recon, img, 9216);
  }
  // Two-level forward pyramid.
  haar_rows(width, height);
  haar_cols(width, height);
  haar_rows(width / 2, height / 2);
  haar_cols(width / 2, height / 2);
  quantize_bands();
  runlength_scan();
  out_kv("coded", coded_coeffs);
  out_kv("zero-runs", zero_runs);
  out_kv("clipped", clipped_coeffs);
  if (mode == 3) rice_encode_pyramid();
  if (mode == 2) {
    band_histogram();
    dequantize_bands();
    inv_haar_cols(width / 2, height / 2);
    inv_haar_rows(width / 2, height / 2);
    inv_haar_cols(width, height);
    inv_haar_rows(width, height);
    // img now holds the reconstruction; swap roles for the report.
    distortion_report();
  }
  out_kv("crc", epic_checksum);
  return epic_checksum & 255;
}
|}

let full_source = source ^ Wl_lib.source

let profiling_input =
  lazy
    (Wl_input.word_string
       ((2 :: 48 :: 48 :: Wl_input.image ~seed:41 ~width:48 ~height:48)))

let timing_input =
  lazy
    (Wl_input.word_string
       ((2 :: 96 :: 96 :: Wl_input.image ~seed:97 ~width:96 ~height:96)))

let drift_input =
  lazy
    (Wl_input.word_string
       ((2 :: 64 :: 64 :: Wl_input.image ~seed:137 ~width:64 ~height:64)))

let workload =
  {
    Workload.name = "epic";
    description = "EPIC-style pyramid image coder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
