(* adpcm: IMA ADPCM speech compression and decompression, mirroring the
   MediaBench program of the same name.

   Input words: [mode][count][samples or codes...].
   Mode 1 encodes, mode 2 decodes, mode 3 round-trips and verifies.
   The profiling input only encodes; the timing input round-trips (so the
   decoder is cold at compression time) and includes loud bursts that drive
   the clipping paths. *)

let source =
  {|
// IMA ADPCM codec.
int step_table[89] = {
  7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
  34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
  157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
  598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
  2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
  6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
  18500, 20350, 22385, 24623, 27086, 29794, 32767 };
int index_adjust[8] = { -1, -1, -1, -1, 2, 4, 6, 8 };

int enc_pred; int enc_index;
int dec_pred; int dec_index;
int clip_count; int mismatch_count; int worst_error;

int reset_codec() {
  enc_pred = 0; enc_index = 0;
  dec_pred = 0; dec_index = 0;
  return 0;
}

int clamp_pred(int v) {
  if (v > 32767) { clip_count = clip_count + 1; return 32767; }
  if (v < -32768) { clip_count = clip_count + 1; return -32768; }
  return v;
}

int clamp_index(int v) {
  if (v < 0) return 0;
  if (v > 88) return 88;
  return v;
}

int encode_sample(int sample) {
  int delta; int sign; int step; int code; int vpdiff;
  delta = sample - enc_pred;
  sign = 0;
  if (delta < 0) { sign = 8; delta = -delta; }
  step = step_table[enc_index];
  code = 0;
  vpdiff = step >> 3;
  if (delta >= step) { code = 4; delta = delta - step; vpdiff = vpdiff + step; }
  step = step >> 1;
  if (delta >= step) { code = code | 2; delta = delta - step; vpdiff = vpdiff + step; }
  step = step >> 1;
  if (delta >= step) { code = code | 1; vpdiff = vpdiff + step; }
  if (sign) enc_pred = clamp_pred(enc_pred - vpdiff);
  else enc_pred = clamp_pred(enc_pred + vpdiff);
  enc_index = clamp_index(enc_index + index_adjust[code]);
  return code | sign;
}

int decode_sample(int code) {
  int step; int vpdiff;
  step = step_table[dec_index];
  vpdiff = step >> 3;
  if (code & 4) vpdiff = vpdiff + step;
  if (code & 2) vpdiff = vpdiff + (step >> 1);
  if (code & 1) vpdiff = vpdiff + (step >> 2);
  if (code & 8) dec_pred = clamp_pred(dec_pred - vpdiff);
  else dec_pred = clamp_pred(dec_pred + vpdiff);
  dec_index = clamp_index(dec_index + index_adjust[code & 7]);
  return dec_pred;
}

// Sign-extend a 16-bit sample read from an input word.
int sext16(int v) {
  v = v & 65535;
  if (v & 32768) return v - 65536;
  return v;
}

// ------------------------------------------------------------------
// G.711 companding (the "other" speech codecs the tool ships with;
// modes 4 and 5 use them, so they are linked but cold by default)
// ------------------------------------------------------------------

const ULAW_BIAS = 132;

int ulaw_compress(int pcm) {
  int sign; int exponent; int mantissa; int mag;
  sign = 0;
  if (pcm < 0) { sign = 128; pcm = -pcm; }
  if (pcm > 32635) pcm = 32635;
  mag = pcm + ULAW_BIAS;
  exponent = 7;
  while (exponent > 0 && (mag & (128 << exponent)) == 0) exponent = exponent - 1;
  mantissa = (mag >> (exponent + 3)) & 15;
  return (sign | (exponent << 4) | mantissa) ^ 255;
}

int ulaw_expand(int code) {
  int sign; int exponent; int mantissa; int mag;
  code = code ^ 255;
  sign = code & 128;
  exponent = (code >> 4) & 7;
  mantissa = code & 15;
  mag = ((mantissa << 3) + ULAW_BIAS) << exponent;
  mag = mag - ULAW_BIAS;
  if (sign) return -mag;
  return mag;
}

int alaw_compress(int pcm) {
  int sign; int exponent; int mantissa; int code;
  sign = 128;
  if (pcm < 0) { sign = 0; pcm = -pcm - 1; if (pcm < 0) pcm = 0; }
  if (pcm > 32767) pcm = 32767;
  if (pcm < 256) code = sign | (pcm >> 4);
  else {
    exponent = 7;
    while (exponent > 0 && (pcm & (256 << exponent)) == 0 && exponent > 1)
      exponent = exponent - 1;
    if ((pcm & (256 << exponent)) == 0) exponent = 1;
    mantissa = (pcm >> (exponent + 3)) & 15;
    code = sign | (exponent << 4) | mantissa;
  }
  return code ^ 85;   // 0x55
}

int alaw_expand(int code) {
  int sign; int exponent; int mantissa; int mag;
  code = code ^ 85;
  sign = code & 128;
  exponent = (code >> 4) & 7;
  mantissa = code & 15;
  if (exponent == 0) mag = (mantissa << 4) + 8;
  else mag = ((mantissa << 4) + 264) << (exponent - 1);
  if (sign) return mag;
  return -mag;
}

// Transcode PCM through a companding law and then ADPCM; the law's
// round-trip error adds to the codec's.
int run_transcode(int count, int use_alaw) {
  int i; int s; int byte; int lin; int c; int worst;
  worst = 0;
  for (i = 0; i < count; i = i + 1) {
    s = sext16(getw());
    if (use_alaw) { byte = alaw_compress(s); lin = alaw_expand(byte); }
    else { byte = ulaw_compress(s); lin = ulaw_expand(byte); }
    worst = imax(worst, iabs(s - lin));
    c = encode_sample(lin);
    mix((byte << 8) | c);
  }
  out_kv("companding-worst-error", worst);
  return 0;
}

int companding_self_test() {
  int v; int e;
  // Round-trip error of mu-law must stay within the segment step.
  for (v = -32000; v <= 32000; v = v + 997) {
    e = iabs(ulaw_expand(ulaw_compress(v)) - v);
    lib_assert(e <= 1024, "ulaw error too large");
  }
  out_str("companding ok");
  out_nl();
  return 0;
}

int checksum;
int mix(int v) {
  checksum = ((checksum * 33) ^ (v & 65535)) & 1073741823;
  return checksum;
}

// --- cold paths -----------------------------------------------------

int validate_header(int mode, int count) {
  if (mode < 1) lib_panic("bad mode (too small)", 11);
  if (mode > 5) lib_panic("bad mode (too large)", 12);
  if (count < 1) lib_panic("empty input", 13);
  if (count > 1048576) lib_panic("input too large", 14);
  return 0;
}

int report_stats(int n) {
  out_kv("samples", n);
  out_kv("clips", clip_count);
  out_kv("mismatches", mismatch_count);
  out_kv("worst-error", worst_error);
  out_kv("enc-index", enc_index);
  out_kv("dec-index", dec_index);
  hist_dump("error histogram");
  return 0;
}

int self_test() {
  // Verify the step table is monotone; executed only on a corrupt-header
  // recovery path.
  int i;
  for (i = 1; i < 89; i = i + 1)
    lib_assert(step_table[i] > step_table[i - 1], "step table not monotone");
  for (i = 0; i < 4; i = i + 1)
    lib_assert(index_adjust[i] == -1, "index table corrupt");
  out_str("self-test ok");
  out_nl();
  return 0;
}

int note_mismatch(int want, int got) {
  int e;
  mismatch_count = mismatch_count + 1;
  e = iabs(want - got);
  if (e > worst_error) worst_error = e;
  hist_add(e);
  if (mismatch_count > 100000) lib_panic("too many mismatches", 31);
  return e;
}

// --- main processing ------------------------------------------------

int run_encode(int count) {
  int i; int s; int c; int packed; int nibbles;
  packed = 0; nibbles = 0;
  for (i = 0; i < count; i = i + 1) {
    s = sext16(getw());
    c = encode_sample(s);
    packed = (packed << 4) | c;
    nibbles = nibbles + 1;
    if (nibbles == 8) { mix(packed); mix(packed >>> 16); packed = 0; nibbles = 0; }
  }
  if (nibbles != 0) mix(packed);
  return 0;
}

int run_decode(int count) {
  int i; int c; int s;
  for (i = 0; i < count; i = i + 1) {
    c = getw() & 15;
    s = decode_sample(c);
    mix(s);
  }
  return 0;
}

int run_roundtrip(int count) {
  int buf; int i; int s; int c; int out; int e;
  buf = sbrk(count * 8);
  hist_reset();
  for (i = 0; i < count; i = i + 1) {
    s = sext16(getw());
    buf[i] = s;
    c = encode_sample(s);
    buf[count + i] = c;
  }
  reset_codec();
  for (i = 0; i < count; i = i + 1) {
    out = decode_sample(buf[count + i]);
    mix(out);
    e = iabs(buf[i] - out);
    if (e > 2000) note_mismatch(buf[i], out);
  }
  mix(crc_block(buf, count));
  report_stats(count);
  return 0;
}

int main() {
  int mode; int count;
  checksum = 17;
  mode = getw();
  count = getw();
  if (mode == -99) { self_test(); mode = getw(); }
  validate_header(mode, count);
  reset_codec();
  if (mode == 1) run_encode(count);
  if (mode == 2) run_decode(count);
  if (mode == 3) run_roundtrip(count);
  if (mode == 4) run_transcode(count, 0);
  if (mode == 5) { companding_self_test(); run_transcode(count, 1); }
  putint(checksum);
  return checksum & 255;
}
|}
  ^ Wl_lib.source

(* Both runs round-trip (the paper's inputs differ in data, not feature
   set); the encode-only and decode-only modes stay cold.  The timing
   waveform is longer and contains loud bursts the training data lacks, so
   the clipping paths are exercised cold. *)
let profiling_input =
  lazy
    (Wl_input.word_string
       ((3 :: 1200 :: Wl_input.speech ~seed:11 ~samples:1200)))

let timing_input =
  lazy
    (Wl_input.word_string
       ((3 :: 6000 :: Wl_input.speech ~seed:77 ~samples:6000)))

let drift_input =
  lazy
    (Wl_input.word_string ((3 :: 4000 :: Wl_input.speech ~seed:131 ~samples:4000)))

let workload =
  {
    Workload.name = "adpcm";
    description = "IMA ADPCM speech compression/decompression";
    source;
    profiling_input;
    timing_input;
    drift_input;
  }
