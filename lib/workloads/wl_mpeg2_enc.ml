(* mpeg2enc: an MPEG-2-flavoured video encoder: the first frame is coded
   intra (8x8 DCT blocks); subsequent frames are coded predictively with a
   full-search ±4 motion estimation per 16x16 macroblock against the
   previous reconstructed frame, followed by transform coding of the
   residual.  Macroblocks whose best match is still poor fall back to intra
   coding — a path that barely runs on the low-motion profiling sequence.

   Input words: [mode][width][height][frames][pixels...].
   Mode 1: encode, CRC motion vectors and coefficients.
   Mode 2: encode and emit the coded stream with putw (feeds mpeg2dec).
   Mode 3: encode with rate/distortion statistics (verbose; cold paths). *)

let source =
  {|
const MAXW = 48;
const MAXH = 32;

int cur[1536];             // MAXW * MAXH
int ref[1536];
int rec[1536];
int width; int height;

int mpg_checksum;
int intra_blocks; int inter_blocks; int sad_total; int bits_est;
int halfpel_enabled;

int mpg_mix(int v) {
  mpg_checksum = ((mpg_checksum * 139) ^ (v & 16777215)) & 1073741823;
  return mpg_checksum;
}

// --- motion estimation ------------------------------------------------

int sad16(int mx, int my, int dx, int dy) {
  int y; int x; int acc; int cx; int cy; int rx; int ry;
  acc = 0;
  for (y = 0; y < MB; y = y + 1)
    for (x = 0; x < MB; x = x + 1) {
      cx = mx * MB + x;
      cy = my * MB + y;
      rx = cx + dx;
      ry = cy + dy;
      acc = acc + iabs(cur[cy * MAXW + cx] - ref[ry * MAXW + rx]);
    }
  return acc;
}

// Full search over ±4, clamped to the frame; returns (dy+8)*16 + (dx+8).
int motion_search(int mx, int my) {
  int dx; int dy; int best; int best_code; int s;
  int lo_x; int hi_x; int lo_y; int hi_y;
  lo_x = imax(-4, -(mx * MB));
  hi_x = imin(4, width - MB - mx * MB);
  lo_y = imax(-4, -(my * MB));
  hi_y = imin(4, height - MB - my * MB);
  best = 2147483647;
  best_code = 8 * 16 + 8;
  for (dy = lo_y; dy <= hi_y; dy = dy + 1)
    for (dx = lo_x; dx <= hi_x; dx = dx + 1) {
      s = sad16(mx, my, dx, dy);
      if (s < best) { best = s; best_code = (dy + 8) * 16 + (dx + 8); }
    }
  sad_total = sad_total + best;
  return best_code * 65536 + imin(best, 65535);
}

// Half-pel refinement (mode 4 only): test the 8 half-sample positions
// around the integer winner with bilinear interpolation, as real MPEG-2
// encoders do.  Cold in the standard modes.
int sad16_halfpel(int mx, int my, int dx2, int dy2) {
  int y; int x; int acc; int cx; int cy; int fx; int fy; int hx; int hy;
  int p00; int p10; int p01; int p11; int interp;
  acc = 0;
  fx = dx2 >> 1; hx = dx2 & 1;
  fy = dy2 >> 1; hy = dy2 & 1;
  for (y = 0; y < MB; y = y + 1)
    for (x = 0; x < MB; x = x + 1) {
      cx = mx * MB + x;
      cy = my * MB + y;
      p00 = ref[(cy + fy) * MAXW + cx + fx];
      p10 = ref[(cy + fy) * MAXW + imin(cx + fx + hx, width - 1)];
      p01 = ref[imin(cy + fy + hy, height - 1) * MAXW + cx + fx];
      p11 = ref[imin(cy + fy + hy, height - 1) * MAXW + imin(cx + fx + hx, width - 1)];
      interp = (p00 + p10 + p01 + p11 + 2) / 4;
      acc = acc + iabs(cur[cy * MAXW + cx] - interp);
    }
  return acc;
}

int refine_halfpel(int mx, int my, int dx, int dy, int best) {
  int ddx; int ddy; int s; int improved;
  improved = 0;
  for (ddy = -1; ddy <= 1; ddy = ddy + 1)
    for (ddx = -1; ddx <= 1; ddx = ddx + 1) {
      if (ddx == 0 && ddy == 0) continue;
      if (mx * MB + dx + ((ddx - 1) >> 1) < 0) continue;
      if (my * MB + dy + ((ddy - 1) >> 1) < 0) continue;
      s = sad16_halfpel(mx, my, dx * 2 + ddx, dy * 2 + ddy);
      if (s < best) { best = s; improved = improved + 1; }
    }
  mpg_mix(improved);
  return best;
}

// Rate control: when the running bit estimate exceeds the budget, coarsen
// the quantiser for the rest of the frame (cold on easy content).
int rc_budget; int rc_overruns;

int rate_control_check() {
  if (rc_budget > 0 && bits_est > rc_budget) {
    rc_overruns = rc_overruns + 1;
    out_kv("rate-overrun-at", bits_est);
    rc_budget = rc_budget * 2;
  }
  return rc_overruns;
}

// --- block coding ------------------------------------------------------

// Load an 8x8 residual (or intra) block into blk.
int load_block8(int px, int py, int dx, int dy, int inter) {
  int y; int x; int c;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      c = cur[(py + y) * MAXW + px + x];
      if (inter) c = c - ref[(py + y + dy) * MAXW + px + x + dx];
      else c = c - 128;
      blk[y * 8 + x] = c;
    }
  return 0;
}

// Reconstruct into rec from the dequantised block.
int store_block8(int px, int py, int dx, int dy, int inter) {
  int y; int x; int v;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      v = blk[y * 8 + x];
      if (inter) v = v + ref[(py + y + dy) * MAXW + px + x + dx];
      else v = v + 128;
      rec[(py + y) * MAXW + px + x] = iclamp(v, 0, 255);
    }
  return 0;
}

int code_block8(int px, int py, int dx, int dy, int inter, int emit) {
  int i; int nz;
  load_block8(px, py, dx, dy, inter);
  dct_forward();
  mpg_quantize_block();
  nz = 0;
  for (i = 0; i < 64; i = i + 1) {
    if (blk[i] != 0) { nz = nz + 1; mpg_mix((i << 16) | (blk[i] & 65535)); }
    if (emit) putw(blk[i]);
  }
  bits_est = bits_est + 4 + nz * 12;
  mpg_dequantize_block();
  dct_inverse();
  store_block8(px, py, dx, dy, inter);
  return nz;
}

int code_macroblock(int mx, int my, int intra_frame, int emit) {
  int mv; int code; int best_sad; int dx; int dy; int inter; int bx; int by;
  inter = 0; dx = 0; dy = 0;
  if (!intra_frame) {
    mv = motion_search(mx, my);
    code = mv >>> 16;
    best_sad = mv & 65535;
    // Poor matches fall back to intra coding (rare on smooth content).
    if (best_sad < 3000) {
      inter = 1;
      dx = (code & 15) - 8;
      dy = (code >> 4) - 8;
      if (halfpel_enabled) best_sad = refine_halfpel(mx, my, dx, dy, best_sad);
    }
  }
  rate_control_check();
  if (emit) { putw(inter); putw(dx + 8); putw(dy + 8); }
  mpg_mix((inter << 8) | ((dx + 8) << 4) | (dy + 8));
  if (inter) inter_blocks = inter_blocks + 1;
  else intra_blocks = intra_blocks + 1;
  for (by = 0; by < 2; by = by + 1)
    for (bx = 0; bx < 2; bx = bx + 1)
      code_block8(mx * MB + bx * 8, my * MB + by * 8, dx, dy, inter, emit);
  return 0;
}

// --- cold paths --------------------------------------------------------

int frame_psnr_proxy() {
  int i; int d; int sse;
  sse = 0;
  for (i = 0; i < width * height; i = i + 1) {
    d = cur[i] - rec[i];
    sse = sse + imin(d * d, 65535);
  }
  out_kv("sse-per-256px", (sse << 8) / (width * height));
  return 0;
}

int rate_report(int f) {
  out_str("frame ");
  out_dec(f);
  out_nl();
  out_kv("  intra-mb", intra_blocks);
  out_kv("  inter-mb", inter_blocks);
  out_kv("  sad", sad_total);
  out_kv("  bits-est", bits_est);
  frame_psnr_proxy();
  return 0;
}

int validate(int mode, int w, int h, int frames) {
  if (mode < 1 || mode > 4) lib_panic("mpeg: bad mode", 11);
  if (w < MB || w > MAXW || (w & 15) != 0) lib_panic("mpeg: bad width", 12);
  if (h < MB || h > MAXH || (h & 15) != 0) lib_panic("mpeg: bad height", 13);
  if (frames < 1 || frames > 64) lib_panic("mpeg: bad frame count", 14);
  return 0;
}

// --- driver --------------------------------------------------------------

int main() {
  int mode; int w; int h; int frames; int f; int i; int mx; int my; int emit;
  mpg_checksum = 3;
  mode = getw();
  w = getw();
  h = getw();
  frames = getw();
  validate(mode, w, h, frames);
  width = w; height = h;
  emit = (mode == 2);
  halfpel_enabled = (mode == 4);
  rc_budget = width * height * frames / 2;
  if (emit) { putw(width); putw(height); putw(frames); }
  for (f = 0; f < frames; f = f + 1) {
    for (i = 0; i < width * height; i = i + 1) cur[i] = getw() & 255;
    for (my = 0; my < height / MB; my = my + 1)
      for (mx = 0; mx < width / MB; mx = mx + 1)
        code_macroblock(mx, my, f == 0, emit);
    wcopy(ref, rec, width * height);
    if (mode == 3 || mode == 4) rate_report(f);
  }
  out_kv("crc", mpg_checksum);
  return mpg_checksum & 255;
}
|}

let full_source =
  source ^ Wl_mpeg2_common.tables ^ Wl_mpeg2_common.quant_code
  ^ Wl_mpeg2_common.transform_code ^ Wl_lib.source

let profiling_input =
  lazy
    (Wl_input.word_string
       (3 :: 48 :: 32 :: 2 :: Wl_input.video ~seed:61 ~width:48 ~height:32 ~frames:2))

let timing_input =
  lazy
    (Wl_input.word_string
       (3 :: 48 :: 32 :: 7 :: Wl_input.video ~seed:103 ~width:48 ~height:32 ~frames:7))

let drift_input =
  lazy
    (Wl_input.word_string
       (3 :: 48 :: 32 :: 5 :: Wl_input.video ~seed:157 ~width:48 ~height:32 ~frames:5))

let workload =
  {
    Workload.name = "mpeg2enc";
    description = "MPEG-2-style predictive video encoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }

let encoded_stream ~seed ~width ~height ~frames =
  let input =
    Wl_input.word_string
      (2 :: width :: height :: frames
      :: Wl_input.video ~seed ~width ~height ~frames)
  in
  let prog = Workload.compile workload in
  let outcome = Vm.run (Vm.of_image ~fuel:600_000_000 (Layout.emit prog) ~input) in
  outcome.Vm.output
