(* jpeg_enc: baseline-JPEG-style image compression — 8x8 blocks, level
   shift, integer DCT, quantisation (with quality scaling on a cold path),
   zig-zag, and run/category entropy statistics.

   Input words: [mode][quality][width][height][pixels...].
   Mode 1: encode at the default quality (quality word present but 50).
   Mode 2: encode and emit quantised coefficient blocks with putw (feeds
           jpeg_dec).
   Mode 3: encode with a non-default quality — the quant-table rescaling
           path is cold during profiling — and dump rate statistics. *)

let source =
  {|
const MAXW = 96;
const MAXH = 96;

int image[9216];
int qtab_active[64];
int width; int height;

int jpg_checksum;
int total_bits; int nonzero_coeffs; int blocks_done; int dc_prev;

// Per-category base code lengths, a stand-in for the Huffman AC table.
int cat_bits[12] = { 2, 3, 4, 6, 7, 8, 10, 12, 14, 16, 18, 20 };

int jpg_mix(int v) {
  jpg_checksum = ((jpg_checksum * 131) ^ (v & 16777215)) & 1073741823;
  return jpg_checksum;
}

// --- quality scaling (cold unless mode 3) ----------------------------

int scale_quality(int quality) {
  int i; int s; int v;
  if (quality < 1 || quality > 100) lib_panic("jpeg: bad quality", 21);
  if (quality < 50) s = 5000 / quality;
  else s = 200 - quality * 2;
  for (i = 0; i < 64; i = i + 1) {
    v = (quant_tab[i] * s + 50) / 100;
    qtab_active[i] = iclamp(v, 1, 255);
  }
  return 0;
}

// --- block pipeline ---------------------------------------------------

int load_block(int bx, int by) {
  int y; int x; int px; int py;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1) {
      px = bx * 8 + x;
      py = by * 8 + y;
      blk[y * 8 + x] = image[py * MAXW + px] - 128;   // level shift
    }
  return 0;
}

int quantize_block() {
  int i; int v; int q;
  for (i = 0; i < 64; i = i + 1) {
    v = blk[i];
    q = qtab_active[i];
    if (v >= 0) blk[i] = (v + q / 2) / q;
    else blk[i] = -((-v + q / 2) / q);
  }
  return 0;
}

int category_of(int v) {
  int c;
  v = iabs(v);
  c = 0;
  while (v != 0) { v = v >> 1; c = c + 1; }
  if (c > 11) lib_panic("jpeg: coefficient too large", 22);
  return c;
}

// Entropy statistics over the zig-zag scan: (run, category) pairs as in
// baseline JPEG, with DC coded differentially.
int entropy_block(int emit) {
  int i; int v; int run; int cat; int dc;
  dc = blk[0];
  cat = category_of(dc - dc_prev);
  total_bits = total_bits + cat_bits[cat] + cat;
  jpg_mix(dc - dc_prev);
  dc_prev = dc;
  run = 0;
  for (i = 1; i < 64; i = i + 1) {
    v = blk[zigzag[i]];
    if (v == 0) { run = run + 1; continue; }
    while (run >= 16) { total_bits = total_bits + 11; run = run - 16; }  // ZRL
    cat = category_of(v);
    hist_add(cat);
    total_bits = total_bits + cat_bits[cat] + cat + (run & 15);
    jpg_mix((run << 16) | (v & 65535));
    nonzero_coeffs = nonzero_coeffs + 1;
    run = 0;
  }
  if (run > 0) total_bits = total_bits + 4;  // EOB
  if (emit) {
    for (i = 0; i < 64; i = i + 1) putw(blk[zigzag[i]]);
  }
  return 0;
}

int encode_image(int emit) {
  int by; int bx;
  dc_prev = 0;
  for (by = 0; by < height / 8; by = by + 1)
    for (bx = 0; bx < width / 8; bx = bx + 1) {
      load_block(bx, by);
      dct_forward();
      quantize_block();
      entropy_block(emit);
      blocks_done = blocks_done + 1;
    }
  return 0;
}

// ------------------------------------------------------------------
// colour path (mode 4): synthesise Cb/Cr planes from the luma (the test
// tool's stand-in for real colour input), subsample 4:2:0, and encode the
// chroma planes against the standard chroma quantisation table.
// ------------------------------------------------------------------

int chroma_tab[64] = {
  17, 18, 24, 47, 99, 99, 99, 99,
  18, 21, 26, 66, 99, 99, 99, 99,
  24, 26, 56, 99, 99, 99, 99, 99,
  47, 66, 99, 99, 99, 99, 99, 99,
  99, 99, 99, 99, 99, 99, 99, 99,
  99, 99, 99, 99, 99, 99, 99, 99,
  99, 99, 99, 99, 99, 99, 99, 99,
  99, 99, 99, 99, 99, 99, 99, 99 };

int chroma[2304];     // (MAXW/2) * (MAXH/2)

// Derive one chroma plane: a phase-shifted, smoothed copy of the luma,
// downsampled 2x2.
int make_chroma_plane(int phase) {
  int y; int x; int cw; int a; int b; int c; int d;
  cw = width / 2;
  for (y = 0; y < height / 2; y = y + 1)
    for (x = 0; x < cw; x = x + 1) {
      a = image[(2 * y) * MAXW + 2 * x];
      b = image[(2 * y) * MAXW + imin(2 * x + phase, width - 1)];
      c = image[imin(2 * y + 1, height - 1) * MAXW + 2 * x];
      d = image[imin(2 * y + phase, height - 1) * MAXW + 2 * x];
      chroma[y * 48 + x] = ((a + b + c + d) / 4) ^ (phase * 85);
    }
  return 0;
}

int load_chroma_block(int bx, int by) {
  int y; int x;
  for (y = 0; y < 8; y = y + 1)
    for (x = 0; x < 8; x = x + 1)
      blk[y * 8 + x] = (chroma[(by * 8 + y) * 48 + bx * 8 + x] & 255) - 128;
  return 0;
}

int quantize_chroma_block() {
  int i; int v; int q;
  for (i = 0; i < 64; i = i + 1) {
    v = blk[i];
    q = chroma_tab[i];
    if (v >= 0) blk[i] = (v + q / 2) / q;
    else blk[i] = -((-v + q / 2) / q);
  }
  return 0;
}

int encode_chroma(int phase) {
  int by; int bx;
  make_chroma_plane(phase);
  dc_prev = 0;
  for (by = 0; by < height / 16; by = by + 1)
    for (bx = 0; bx < width / 16; bx = bx + 1) {
      load_chroma_block(bx, by);
      dct_forward();
      quantize_chroma_block();
      entropy_block(0);
      blocks_done = blocks_done + 1;
    }
  return 0;
}

// --- cold reporting ---------------------------------------------------

int rate_report() {
  int pixels;
  pixels = width * height;
  out_kv("blocks", blocks_done);
  out_kv("nonzero", nonzero_coeffs);
  out_kv("bits", total_bits);
  out_kv("bpp-q8", (total_bits << 8) / (pixels + (pixels == 0)));
  hist_dump("coefficient categories");
  return 0;
}

int validate(int mode, int quality, int w, int h) {
  if (mode < 1 || mode > 4) lib_panic("jpeg: bad mode", 11);
  if (w < 8 || w > MAXW || (w & 7) != 0) lib_panic("jpeg: bad width", 12);
  if (h < 8 || h > MAXH || (h & 7) != 0) lib_panic("jpeg: bad height", 13);
  if (quality != 50) {
    if (mode != 3 && mode != 4) lib_panic("jpeg: quality needs mode 3", 14);
  }
  return 0;
}

int main() {
  int mode; int quality; int w; int h; int y; int x;
  jpg_checksum = 77;
  mode = getw();
  quality = getw();
  w = getw();
  h = getw();
  validate(mode, quality, w, h);
  width = w; height = h;
  for (y = 0; y < height; y = y + 1)
    for (x = 0; x < width; x = x + 1) image[y * MAXW + x] = getw() & 255;
  if (quality == 50) wcopy(qtab_active, quant_tab, 64);
  else scale_quality(quality);
  if (mode == 2) {
    putw(width); putw(height);
    encode_image(1);
  } else {
    encode_image(0);
  }
  if (mode == 4) {
    encode_chroma(1);
    encode_chroma(3);
    out_kv("chroma-blocks", blocks_done);
  }
  if (mode == 3) rate_report();
  out_kv("crc", jpg_checksum);
  return jpg_checksum & 255;
}
|}

let full_source =
  source ^ Wl_jpeg_common.tables ^ Wl_jpeg_common.transform_code ^ Wl_lib.source

let profiling_input =
  lazy
    (Wl_input.word_string
       ((3 :: 75 :: 48 :: 48 :: Wl_input.image ~seed:51 ~width:48 ~height:48)))

let timing_input =
  lazy
    (Wl_input.word_string
       ((3 :: 75 :: 96 :: 96 :: Wl_input.image ~seed:99 ~width:96 ~height:96)))

let drift_input =
  lazy
    (Wl_input.word_string
       ((3 :: 85 :: 64 :: 64 :: Wl_input.image ~seed:151 ~width:64 ~height:64)))

let workload =
  {
    Workload.name = "jpeg_enc";
    description = "baseline-JPEG-style image encoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }

(* Produce a coefficient stream for jpeg_dec by running mode 2 in the VM. *)
let encoded_stream ~seed ~width ~height =
  let input =
    Wl_input.word_string
      ((2 :: 50 :: width :: height :: Wl_input.image ~seed ~width ~height))
  in
  let prog = Workload.compile workload in
  let outcome = Vm.run (Vm.of_image ~fuel:400_000_000 (Layout.emit prog) ~input) in
  outcome.Vm.output
