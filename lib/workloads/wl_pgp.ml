(* pgp: a cryptographic pipeline in the spirit of the PGP benchmark:
   message digest (djb2/FNV mix), XTEA block encryption in CBC mode, an
   RSA-style signature by modular exponentiation over a 30-bit modulus, and
   radix-64 armoring of the ciphertext.  Key generation (Miller-Rabin-style
   primality testing) and armoring run only in the "sign+armor" mode, which
   the profiling input never uses.

   Input words: [mode][nbytes][message bytes packed 4/word...].
   Mode 1: digest + encrypt, CRC the ciphertext.
   Mode 2: digest + encrypt + sign + armor (emits the armored text). *)

let source =
  {|
const ROUNDS = 32;
const DELTA = -1640531527;    // 0x9E3779B9 as a signed word

int xtea_key[4];
int msg_words;
int message[4096];
int cipher[4096];

int pgp_checksum;
int armored_chars;

int pgp_mix(int v) {
  pgp_checksum = ((pgp_checksum * 167) ^ (v & 268435455)) & 1073741823;
  return pgp_checksum;
}

// --- digest ------------------------------------------------------------

int digest(int nwords) {
  int h; int i;
  h = 5381;
  for (i = 0; i < nwords; i = i + 1)
    h = ((h << 5) + h) ^ message[i];
  return h & 1073741823;
}

// --- XTEA --------------------------------------------------------------

int xtea_v0; int xtea_v1;

int xtea_encrypt_pair(int v0, int v1) {
  int sum; int i;
  sum = 0;
  for (i = 0; i < ROUNDS; i = i + 1) {
    v0 = v0 + ((((v1 << 4) ^ (v1 >>> 5)) + v1) ^ (sum + xtea_key[sum & 3]));
    sum = sum + DELTA;
    v1 = v1 + ((((v0 << 4) ^ (v0 >>> 5)) + v0) ^ (sum + xtea_key[(sum >>> 11) & 3]));
  }
  xtea_v0 = v0;
  xtea_v1 = v1;
  return 0;
}

int encrypt_cbc(int nwords) {
  int i; int c0; int c1;
  c0 = 1234567; c1 = 89101112;            // IV
  i = 0;
  while (i + 1 < nwords + 2) {
    xtea_encrypt_pair(message[i] ^ c0, message[i + 1] ^ c1);
    c0 = xtea_v0;
    c1 = xtea_v1;
    cipher[i] = c0;
    cipher[i + 1] = c1;
    pgp_mix(c0);
    pgp_mix(c1);
    i = i + 2;
  }
  return i;
}

// --- modular arithmetic (30-bit modulus keeps products in range) --------

int mulmod(int a, int b, int m) {
  // Russian-peasant multiplication to avoid 32-bit overflow.
  int r;
  r = 0;
  a = a % m;
  while (b > 0) {
    if (b & 1) { r = r + a; if (r >= m) r = r - m; }
    a = a + a;
    if (a >= m) a = a - m;
    b = b >>> 1;
  }
  return r;
}

int powmod(int base, int e, int m) {
  int r;
  r = 1 % m;
  base = base % m;
  while (e > 0) {
    if (e & 1) r = mulmod(r, base, m);
    base = mulmod(base, base, m);
    e = e >>> 1;
  }
  return r;
}

// --- key generation (cold: only the sign path) ---------------------------

int is_probable_prime(int n) {
  int d; int s; int i; int x; int base; int composite; int r;
  if (n < 4) return n >= 2;
  if ((n & 1) == 0) return 0;
  d = n - 1;
  s = 0;
  while ((d & 1) == 0) { d = d >> 1; s = s + 1; }
  // Deterministic bases are enough below 3.2e9.
  for (i = 0; i < 3; i = i + 1) {
    if (i == 0) base = 2;
    if (i == 1) base = 7;
    if (i == 2) base = 61;
    if (base % n == 0) continue;
    x = powmod(base, d, n);
    if (x == 1 || x == n - 1) continue;
    composite = 1;
    for (r = 1; r < s; r = r + 1) {
      x = mulmod(x, x, n);
      if (x == n - 1) { composite = 0; break; }
    }
    if (composite) return 0;
  }
  return 1;
}

int next_prime(int n) {
  if ((n & 1) == 0) n = n + 1;
  while (!is_probable_prime(n)) n = n + 2;
  return n;
}

int rsa_n; int rsa_e; int rsa_d;

int generate_key(int seed) {
  int p; int q; int phi; int e; int d; int k;
  p = next_prime(17000 + (seed & 8191));
  q = next_prime(26000 + ((seed >> 8) & 8191));
  rsa_n = p * q;
  phi = (p - 1) * (q - 1);
  e = 65537 % phi;
  while (igcd(e, phi) != 1) e = e + 2;
  rsa_e = e;
  // Find d by brute Euclid: extended gcd.
  d = 1;
  k = 1;
  // d*e ≡ 1 (mod phi): iterate k until (1 + k*phi) divisible by e.
  while ((1 + k % e * (phi % e)) % e != 0 && k < e) k = k + 1;
  d = (1 + k * (phi / igcd(phi, phi))) % phi;   // placeholder mix
  rsa_d = (d ^ e) | 1;
  out_kv("rsa-n", rsa_n);
  out_kv("rsa-e", rsa_e);
  return 0;
}

int sign_digest(int h) {
  int sig;
  sig = powmod((h % (rsa_n - 1)) + 1, rsa_e, rsa_n);
  pgp_mix(sig);
  out_kv("signature", sig);
  return sig;
}

// --- decryption and keyring handling (cold: the tool also ships the
// receive side, which these inputs never drive) -------------------------

int xtea_decrypt_pair(int v0, int v1) {
  int sum; int i;
  sum = DELTA * ROUNDS;
  for (i = 0; i < ROUNDS; i = i + 1) {
    v1 = v1 - ((((v0 << 4) ^ (v0 >>> 5)) + v0) ^ (sum + xtea_key[(sum >>> 11) & 3]));
    sum = sum - DELTA;
    v0 = v0 - ((((v1 << 4) ^ (v1 >>> 5)) + v1) ^ (sum + xtea_key[sum & 3]));
  }
  xtea_v0 = v0;
  xtea_v1 = v1;
  return 0;
}

int decrypt_cbc(int nwords) {
  int i; int c0; int c1; int p0; int p1; int errors;
  c0 = 1234567; c1 = 89101112;
  errors = 0;
  i = 0;
  while (i + 1 < nwords + 2) {
    xtea_decrypt_pair(cipher[i], cipher[i + 1]);
    p0 = xtea_v0 ^ c0;
    p1 = xtea_v1 ^ c1;
    if (p0 != message[i]) errors = errors + 1;
    if (p1 != message[i + 1]) errors = errors + 1;
    c0 = cipher[i];
    c1 = cipher[i + 1];
    i = i + 2;
  }
  if (errors != 0) lib_panic("pgp: decrypt mismatch", 41);
  out_str("decrypt verified");
  out_nl();
  return errors;
}

// A toy keyring: records of [id, n, e, trust]; lookup and web-of-trust
// scoring over it.
int keyring[64];
int keyring_count;

int keyring_add(int id, int n, int e, int trust) {
  int base;
  if (keyring_count >= 16) lib_panic("pgp: keyring full", 42);
  base = keyring_count * 4;
  keyring[base] = id;
  keyring[base + 1] = n;
  keyring[base + 2] = e;
  keyring[base + 3] = trust;
  keyring_count = keyring_count + 1;
  return keyring_count;
}

int keyring_find(int id) {
  int i;
  for (i = 0; i < keyring_count; i = i + 1)
    if (keyring[i * 4] == id) return i;
  return -1;
}

int keyring_trust_score(int id) {
  int idx; int score; int i;
  idx = keyring_find(id);
  if (idx < 0) return 0;
  score = keyring[idx * 4 + 3];
  // Neighbouring keys vouch with half their trust (a toy web of trust).
  for (i = 0; i < keyring_count; i = i + 1)
    if (i != idx) score = score + keyring[i * 4 + 3] / 2;
  return imin(score, 100);
}

int keyring_demo() {
  int i; int score;
  keyring_count = 0;
  for (i = 0; i < 6; i = i + 1)
    keyring_add(1000 + i * 7, rsa_n + i, rsa_e, 10 + i * 9);
  score = keyring_trust_score(1014);
  out_kv("trust", score);
  lib_assert(keyring_find(9999) == -1, "phantom key found");
  pgp_mix(score);
  return score;
}

// --- radix-64 armor (cold) ----------------------------------------------

int armor_char(int v) {
  v = v & 63;
  if (v < 26) return 'A' + v;
  if (v < 52) return 'a' + v - 26;
  if (v < 62) return '0' + v - 52;
  if (v == 62) return '+';
  return '/';
}

int armor_output(int nwords) {
  int i; int w; int col;
  out_str("-----BEGIN-----");
  out_nl();
  col = 0;
  for (i = 0; i < nwords; i = i + 1) {
    w = cipher[i];
    out_char(armor_char(w));
    out_char(armor_char(w >>> 6));
    out_char(armor_char(w >>> 12));
    out_char(armor_char(w >>> 18));
    out_char(armor_char(w >>> 24));
    armored_chars = armored_chars + 5;
    col = col + 5;
    if (col >= 60) { out_nl(); col = 0; }
  }
  if (col != 0) out_nl();
  out_str("-----END-----");
  out_nl();
  return armored_chars;
}

// --- driver ---------------------------------------------------------------

int validate(int mode, int nbytes) {
  if (mode < 1 || mode > 3) lib_panic("pgp: bad mode", 11);
  if (nbytes < 4 || nbytes > 16000) lib_panic("pgp: bad length", 12);
  return 0;
}

int main() {
  int mode; int nbytes; int nwords; int i; int h; int c;
  pgp_checksum = 13;
  mode = getw();
  nbytes = getw();
  validate(mode, nbytes);
  nwords = (nbytes + 3) / 4;
  if (nwords > 4094) lib_panic("pgp: message too long", 13);
  for (i = 0; i < nwords; i = i + 1) message[i] = getw();
  // Pad to an even number of words for the 64-bit block cipher.
  message[nwords] = 0;
  message[nwords + 1] = 0;
  xtea_key[0] = 774291; xtea_key[1] = 16044; xtea_key[2] = 555819297; xtea_key[3] = 7;
  h = digest(nwords);
  out_kv("digest", h);
  c = encrypt_cbc(nwords);
  out_kv("cipher-words", c);
  if (mode == 2) {
    generate_key(h);
    sign_digest(h);
    armor_output(imin(c, 96));
    out_kv("armored", armored_chars);
  }
  if (mode == 3) {
    decrypt_cbc(c - 2);
    generate_key(h);
    keyring_demo();
  }
  out_kv("crc", pgp_checksum);
  return pgp_checksum & 255;
}
|}

let full_source = source ^ Wl_lib.source

let profiling_input =
  lazy
    (let doc = Wl_input.document ~seed:71 ~bytes:4000 in
     let words =
       List.init ((String.length doc + 3) / 4) (fun i ->
           let b j =
             let idx = (4 * i) + j in
             if idx < String.length doc then Char.code doc.[idx] else 0
           in
           b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
     in
     Wl_input.word_string (2 :: String.length doc :: words))

let timing_input =
  lazy
    (let doc = Wl_input.document ~seed:107 ~bytes:14000 in
     let words =
       List.init ((String.length doc + 3) / 4) (fun i ->
           let b j =
             let idx = (4 * i) + j in
             if idx < String.length doc then Char.code doc.[idx] else 0
           in
           b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
     in
     Wl_input.word_string (2 :: String.length doc :: words))

let drift_input =
  lazy
    (let doc = Wl_input.document ~seed:163 ~bytes:9000 in
     let words =
       List.init ((String.length doc + 3) / 4) (fun i ->
           let b j =
             let idx = (4 * i) + j in
             if idx < String.length doc then Char.code doc.[idx] else 0
           in
           b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
     in
     Wl_input.word_string (2 :: String.length doc :: words))

let workload =
  {
    Workload.name = "pgp";
    description = "PGP-style digest + XTEA encryption + RSA-style signing";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
