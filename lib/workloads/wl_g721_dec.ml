(* g721_dec: the decoder half of the G.721-style voice codec.

   Its inputs are genuine encoded streams, produced by running the
   g721_enc program (mode 2) inside the VM — the analogue of MediaBench's
   clinton.g721 file, which is itself the encoder's output.

   Input words: [mode][count][packed codes...].
   Mode 1: decode and CRC the samples.
   Mode 2: decode with waveform statistics (energy, zero crossings, peak)
           and a state dump — the verbose path is cold during profiling. *)

let source =
  {|
int dec_checksum;
int dec_energy; int dec_crossings; int dec_peak; int dec_prev;

int dec_mix(int v) {
  dec_checksum = ((dec_checksum * 41) ^ (v & 1048575)) & 1073741823;
  return dec_checksum;
}

int dec_note_sample(int s) {
  dec_energy = (dec_energy + ((s * s) >> 8)) & 1073741823;
  if (s > dec_peak) dec_peak = s;
  if (-s > dec_peak) dec_peak = -s;
  if (s > 0 && dec_prev <= 0) dec_crossings = dec_crossings + 1;
  if (s < 0 && dec_prev >= 0) dec_crossings = dec_crossings + 1;
  dec_prev = s;
  return 0;
}

int dec_stream(int count, int stats) {
  int words; int i; int j; int packed; int code; int s; int done;
  words = (count + 7) / 8;
  done = 0;
  for (i = 0; i < words; i = i + 1) {
    packed = getw();
    for (j = 7; j >= 0; j = j - 1) {
      if (done < count) {
        code = (packed >>> (j * 4)) & 15;
        s = g721_decode(code);
        dec_mix(s);
        if (stats) dec_note_sample(s);
        done = done + 1;
      }
    }
  }
  return 0;
}

int dec_report() {
  out_kv("energy", dec_energy);
  out_kv("crossings", dec_crossings);
  out_kv("peak", dec_peak);
  g721_dump_state(-2);
  return 0;
}

// Decode a stream at one of the other rates (codes arrive one per word).
int dec_stream_rate(int count, int bits) {
  int i; int code; int s;
  g72x_check_rate_tables();
  for (i = 0; i < count; i = i + 1) {
    code = getw() & ((1 << bits) - 1);
    s = g72x_decode_rate(code, bits);
    dec_mix(s);
  }
  out_kv("rate-bits", bits);
  return 0;
}

int main() {
  int mode; int count;
  dec_checksum = 2166136261;
  mode = getw();
  count = getw();
  g721_validate(mode, count, 1, 5);
  g721_reset();
  if (mode == 1) dec_stream(count, 0);
  if (mode == 2) { dec_stream(count, 1); dec_report(); }
  if (mode == 3) dec_stream_rate(count, 2);
  if (mode == 4) dec_stream_rate(count, 3);
  if (mode == 5) dec_stream_rate(count, 5);
  out_kv("samples-crc", dec_checksum);
  return dec_checksum & 255;
}
|}

let full_source = source ^ Wl_g721_common.codec ^ Wl_lib.source

(* The encoder's mode-2 output starts with a count word followed by the
   packed code words; prepend our mode word. *)
let dec_input ~mode ~seed ~samples =
  let stream = Wl_g721_enc.encoded_stream ~seed ~samples in
  Wl_input.word_string [ mode ] ^ stream

let profiling_input = lazy (dec_input ~mode:2 ~seed:23 ~samples:1500)
let timing_input = lazy (dec_input ~mode:2 ~seed:93 ~samples:9000)
let drift_input = lazy (dec_input ~mode:2 ~seed:143 ~samples:5000)

let workload =
  {
    Workload.name = "g721_dec";
    description = "G.721-style adaptive-predictor ADPCM decoder";
    source = full_source;
    profiling_input;
    timing_input;
    drift_input;
  }
