(** One driver per table/figure of the paper's evaluation (see DESIGN.md's
    experiment index).  Each function runs the necessary pipeline stages
    (memoized in {!Exp_data}) and returns a rendered report.  Timing
    experiments also verify that every squashed run produces byte-identical
    output to its baseline. *)

val table1 : unit -> string
(** Table 1: code size (instructions) per benchmark, before ("Input") and
    after squeeze. *)

val fig3 : unit -> string
(** Figure 3: overall squashed size (normalised to squeezed) as the buffer
    bound K sweeps 64..4096 bytes, at three thresholds plus their mean. *)

val fig4 : unit -> string
(** Figure 4: normalised amount of cold and compressible code vs θ
    (geometric mean over the workloads). *)

val fig5 : unit -> string
(** Figure 5: the profiling and timing inputs (name, kind, size). *)

val fig6 : unit -> string
(** Figure 6: code-size reduction vs θ for every benchmark, plus the
    mean. *)

val fig7 : unit -> string
(** Figure 7: code size and execution time at the paper's three reporting
    thresholds, relative to squeezed code, with geometric means.  Runs the
    timing inputs through the squash runtime. *)

val gamma : unit -> string
(** Section 3's claim: the compressed representation is ≈ 66% of the
    original size of the compressed code. *)

val stubs : unit -> string
(** Section 2.2's claims: what compile-time restore stubs would cost, and
    the maximum number of live runtime stubs at an aggressive threshold. *)

val bsafe : unit -> string
(** Section 6.1: buffer-safe functions and the share of compressed-region
    call sites they cover. *)

val ablation : unit -> string
(** Each design feature toggled off at a mid threshold: packing,
    buffer-safety, unswitching; plus the move-to-front variant's effect on
    the compressed size. *)

val passes : unit -> string
(** Where squash time goes: per-pass wall-clock timing of the pipeline
    across the workload suite, with each pass's share of the total; plus a
    before/after of region formation at θ=1.0 (per-round rescan reference
    vs the incremental packer, identical partitions checked). *)

val slots_surface : unit -> string
(** The region-cache surface: slowdown vs squeezed for slot counts
    1/2/4/8 at two aggressive thresholds, with decompression and
    cache-hit counts and the extra RAM cost of the added slots. *)

val lifecycle : unit -> string
(** P8: robustness of profile-guided compression across the profile
    lifecycle.  Every workload is compressed under exact (cross-input),
    oracle, sampled (periods 1/16/64/256), decayed (0.5ⁿ staleness chain)
    and top-K-truncated profiles, then run on the distribution-shifted
    drift input with behaviour verified against the unsquashed baseline;
    reports footprint, slowdown and profile distance to the oracle, the
    degradation surfaces vs sampling period and staleness, and an
    iterative-stability pass (squash → re-profile the squashed image →
    re-squash, asserting footprint convergence). *)

val drain_metrics : unit -> (string * Report.Json.t) list
(** Key metrics recorded by the experiments run since the last drain
    (e.g. geo-mean size reduction, region-formation seconds), for the
    bench driver's [--json] output. *)

val all : (string * (unit -> string)) list
(** Every experiment, keyed by the id used in DESIGN.md. *)
