(** The bench run-ledger: an append-only JSONL history of benchmark runs.

    Each [bench] invocation appends one self-describing JSON record to
    [_bench/history.jsonl] carrying provenance (git revision, UTC
    timestamp, engine pool size, repeat count) alongside the per-experiment
    wall-clock samples, so any two runs — across revisions or across
    machines — can later be compared with [squashc benchdiff].  The file is
    plain line-delimited JSON: greppable, mergeable, and safe to truncate. *)

val default_dir : string
(** ["_bench"]. *)

val history_name : string
(** ["history.jsonl"] — the ledger file inside {!default_dir}. *)

val git_rev : ?repo_root:string -> unit -> string option
(** The current HEAD commit hash, read directly from [.git] (HEAD,
    loose refs, then [packed-refs]) without spawning a subprocess.
    [None] outside a git checkout or on an unparseable ref. *)

val timestamp : unit -> string
(** Current UTC time as [YYYY-MM-DDTHH:MM:SSZ]. *)

val append : ?dir:string -> Report.Json.t -> (string, string) result
(** Append one record as a single line to [<dir>/history.jsonl], creating
    the directory as needed.  Returns the path written, or an error
    message — ledger failures must never fail the benchmark run itself. *)
