(** Experiment cells and their parallel evaluation.

    A {e cell} is one point of the paper's evaluation grid — a workload
    under one full squash configuration, optionally including the timing
    run.  {!run} evaluates a batch of cells on the {!Engine} domain pool,
    backed by the thread-safe {!Exp_data} memos (and the persistent cache
    when one is installed).  Cells are crash-isolated: a VM trap, fuel
    exhaustion or invariant failure marks that cell failed with a
    structured {!Engine.job_error} and the rest of the grid completes.

    The fig/table drivers in {!Experiments} submit their cell sets here
    before rendering; [squashc grid] and the determinism regression drive
    {!run} directly. *)

type cell = {
  wl : Workload.t;
  options : Squash.options;
  timing : bool;
  slots : int;  (** Runtime region-cache slots for the timing run. *)
  pspec : Exp_data.profile_spec;  (** Which profile guides compression. *)
  run_on : Exp_data.run_input;  (** Input for the timing run/baseline. *)
}

val cell :
  ?timing:bool ->
  ?slots:int ->
  ?pspec:Exp_data.profile_spec ->
  ?run_on:Exp_data.run_input ->
  Workload.t ->
  Squash.options ->
  cell
(** [pspec] defaults to [Pexact] and [run_on] to [`Timing] — the
    historical grid cell.  The P8 lifecycle cells vary both. *)


val cell_label : cell -> string

type metrics = {
  original_words : int;
  squashed_words : int;
  size_ratio : float;  (** squashed / original (squeezed) words. *)
  size_reduction : float;
  coder : string;  (** Backend name ({!Compress.coder_name}). *)
  table_bits : int;  (** Shipped code-table footprint in bits. *)
  cycles : int option;  (** Timing-run cycles (when [timing]). *)
  baseline_cycles : int option;
  time_ratio : float option;
  decompressions : int option;
  runtime : Runtime.stats option;  (** Full runtime stats (when [timing]). *)
}

type outcome = (metrics, Engine.job_error) result
type results = (cell * outcome) list

val set_jobs : int option -> unit
(** Fix the pool size used when [run]'s [?jobs] is omitted ([None] returns
    to {!Engine.default_jobs}). *)

val set_obs : Obs.t option -> unit
(** Install an observability sink for subsequent {!run} calls: the engine
    emits job submit/start/finish spans into it, and each timing cell
    replays its runtime aggregates into the metrics registry (via
    {!Runtime.observe_stats}, so cached and live evaluations produce the
    same snapshot). *)

val jobs : unit -> int

val set_injected_failure : (string * float) option ->  unit
(** Fault injection for crash-isolation tests: the cell of this (workload
    name, θ) raises a trap instead of evaluating.  Initialised from
    [PGCC_INJECT_TRAP] ("name@theta"). *)

val eval_cell : cell -> metrics
(** Evaluate one cell on the calling domain (raises on failure). *)

val classify : exn -> Engine.error_kind * string
(** Map [Vm.Trap] (fuel vs machine trap), [Pipeline.Check_failed],
    [Bitio.Corrupt_stream] and [Failure] to structured error kinds. *)

val run : ?jobs:int -> cell list -> results * Engine.stats
(** Evaluate every cell; results are in submission order. *)

val failures : results -> Engine.job_error list

val render_table : results -> string
(** One row per cell: θ, K, sizes, ratios, cycles, status. *)

val to_json : results -> Report.Json.t
(** Per-cell status and metrics (machine-readable; failed cells carry
    their structured error). *)

val to_csv : results -> string
