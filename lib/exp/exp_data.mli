(** Memoized per-workload pipeline artifacts shared by the experiment
    harness: each workload is compiled, compacted and profiled once, and
    each distinct squash configuration is built once.

    Every memo table here is domain-safe and compute-once ({!Memo}), so
    the {!Engine} can evaluate experiment cells concurrently, and every
    entry is keyed by a {e content digest} of the workload (source text,
    profiling input, timing input — {!workload_digest}) plus the full
    option record ({!options_key}), never by workload name alone: a
    changed workload hashes to a different key and can never serve a stale
    artifact.  When a persistent {!Cache.t} is installed ({!set_cache}),
    the same keys address the on-disk store, so a warm rerun in a fresh
    process skips compilation, profiling, squashing and timing entirely.

    The θ scale: the paper's thresholds are fractions of the {e profiled}
    dynamic instruction count, and its profiling runs execute billions of
    instructions, so interesting thresholds sit at 1e-5..5e-5.  Our
    profiling inputs run 0.3–15 million instructions, so the same
    "a block executed a handful of times is still cold" cutoff corresponds
    to θ about two orders of magnitude larger.  {!theta_grid} spans both
    regimes; {!fig7_thetas} are the three paper points mapped to our
    scale. *)

type prepared = {
  wl : Workload.t;
  digest : string;  (** {!workload_digest} of [wl]; the cache key root. *)
  input_prog : Prog.t;
      (** After unreachable-code and no-op elimination only — the paper's
          Table 1 "Input" column. *)
  squeezed : Prog.t;
  squeeze_stats : Squeeze.stats;
  profile : Profile.t;
  profile_outcome : Vm.outcome;
}

val set_cache : Cache.t option -> unit
(** Install (or remove) the persistent result cache backing every memo
    below.  Default: disabled. *)

val current_cache : unit -> Cache.t option

val workload_digest : Workload.t -> string
(** Content digest of source text + profiling input + timing input. *)

val options_key : Squash.options -> string
(** Canonical fingerprint of the full option record (every field). *)

val reset : unit -> unit
(** Clear the in-process memo tables (the persistent cache is untouched).
    For tests — e.g. forcing recomputation to compare cold/warm runs. *)

val prepare : Workload.t -> prepared
(** Memoized by workload name + content digest. *)

val baseline_timing : prepared -> Vm.outcome
(** The squeezed program on the timing input; memoized per workload. *)

val squash_result : prepared -> Squash.options -> Squash.result
(** Memoized by (content digest, full option record). *)

val timing_run :
  ?slots:int -> prepared -> Squash.result -> Vm.outcome * Runtime.stats
(** Run the squashed program on the timing input, checking that its output
    matches the baseline exactly.  [slots] (default 1) is the runtime's
    region-cache slot count; it is part of the memo and persistent-cache
    key, since it changes cycle counts without changing the image.
    Memoized like {!squash_result}; a persisted entry was verified before
    it was stored.  @raise Failure on a behaviour mismatch. *)

val theta_grid : float list
(** [0.0; 1e-5; 5e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0] *)

val theta_rescale : float
(** Multiplier taking a paper θ to our profiling regime (DESIGN.md §4,
    "θ scale"). *)

val fig7_thetas : (string * float) list
(** Paper label → our θ, derived as
    [snap-to-grid (paper · theta_rescale)]:
    [("0.0", 0.0); ("1e-5", 1e-4); ("5e-5", 1e-3)]. *)

val theta_label : float -> string
