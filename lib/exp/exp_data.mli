(** Memoized per-workload pipeline artifacts shared by the experiment
    harness: each workload is compiled, compacted and profiled once, and
    each distinct squash configuration is built once.

    Every memo table here is domain-safe and compute-once ({!Memo}), so
    the {!Engine} can evaluate experiment cells concurrently, and every
    entry is keyed by a {e content digest} of the workload (source text,
    profiling input, timing input — {!workload_digest}) plus the full
    option record ({!options_key}), never by workload name alone: a
    changed workload hashes to a different key and can never serve a stale
    artifact.  When a persistent {!Cache.t} is installed ({!set_cache}),
    the same keys address the on-disk store, so a warm rerun in a fresh
    process skips compilation, profiling, squashing and timing entirely.

    The θ scale: the paper's thresholds are fractions of the {e profiled}
    dynamic instruction count, and its profiling runs execute billions of
    instructions, so interesting thresholds sit at 1e-5..5e-5.  Our
    profiling inputs run 0.3–15 million instructions, so the same
    "a block executed a handful of times is still cold" cutoff corresponds
    to θ about two orders of magnitude larger.  {!theta_grid} spans both
    regimes; {!fig7_thetas} are the three paper points mapped to our
    scale. *)

type prepared = {
  wl : Workload.t;
  digest : string;  (** {!workload_digest} of [wl]; the cache key root. *)
  input_prog : Prog.t;
      (** After unreachable-code and no-op elimination only — the paper's
          Table 1 "Input" column. *)
  squeezed : Prog.t;
  squeeze_stats : Squeeze.stats;
  profile : Profile.t;
  profile_outcome : Vm.outcome;
}

val set_cache : Cache.t option -> unit
(** Install (or remove) the persistent result cache backing every memo
    below.  Default: disabled. *)

val current_cache : unit -> Cache.t option

val workload_digest : Workload.t -> string
(** Content digest of source text + profiling, timing and drift inputs. *)

val options_key : Squash.options -> string
(** Canonical fingerprint of the full option record (every field). *)

(** Which profile guides compression (the P8 lifecycle axis).  The spec's
    {!spec_label} is folded into every downstream memo and persistent-cache
    key, so results built from estimated profiles never alias exact ones. *)
type profile_spec =
  | Pexact  (** The exact profile from the profiling input (status quo). *)
  | Poracle
      (** Exact profile collected on the {e drift} input — the best case
          for a drift-input run, upper-bounding every other spec. *)
  | Psampled of { period : int; seed : int }
      (** {!Profile.collect_sampled} on the profiling input. *)
  | Pdecayed of { factor : float; steps : int }
      (** The exact profile aged by [steps] applications of
          {!Profile_ops.decay}. *)
  | Ptruncated of { keep : int }  (** {!Profile_ops.truncate_top}. *)

val spec_label : profile_spec -> string
(** Canonical key fragment, e.g. ["sampled;p=64;s=7"]. *)

type run_input = [ `Timing | `Drift ]
(** Which canonical input a timing/baseline run executes. *)

val run_label : run_input -> string

val profile_for : prepared -> profile_spec -> Profile.t
(** Materialise the spec'd profile (memoized; persisted under kind
    ["profile"] keyed by workload digest + spec label). *)

val reset : unit -> unit
(** Clear the in-process memo tables (the persistent cache is untouched).
    For tests — e.g. forcing recomputation to compare cold/warm runs. *)

val prepare : Workload.t -> prepared
(** Memoized by workload name + content digest. *)

val baseline_timing : ?on:run_input -> prepared -> Vm.outcome
(** The squeezed program on the selected run input (default [`Timing]);
    memoized per workload and input. *)

val squash_result :
  ?pspec:profile_spec -> prepared -> Squash.options -> Squash.result
(** Memoized by (content digest, full option record, profile spec).
    [pspec] (default [Pexact]) selects the guiding profile via
    {!profile_for}. *)

val squash_with_profile :
  prepared -> Squash.options -> Profile.t -> Squash.result
(** Unmemoized squash under an arbitrary caller-supplied profile — for
    iterative re-profiling loops whose profiles are not spec-addressable. *)

val timing_run :
  ?slots:int ->
  ?pspec:profile_spec ->
  ?on:run_input ->
  prepared ->
  Squash.result ->
  Vm.outcome * Runtime.stats
(** Run the squashed program on the selected run input (default
    [`Timing]), checking that its output matches the matching baseline
    exactly.  [slots] (default 1) is the runtime's region-cache slot
    count; it, the profile spec and the run input are all part of the memo
    and persistent-cache key, since they change cycle counts (or the
    image) without changing the workload.  [pspec] must name the profile
    the squash result was built from.  Memoized like {!squash_result}; a
    persisted entry was verified before it was stored.
    @raise Failure on a behaviour mismatch. *)

val reprofile_squashed : Squash.result -> input:string -> Profile.t * Vm.outcome
(** Re-profile an already-squashed image: run it with per-word counting
    and map counts back to source blocks through the rewrite's owner
    array.  Code executed inside the decompression buffer is unattributed
    (it lies outside the owned words), mirroring a PC sampler that cannot
    see scratch addresses.  The profile's source is [Derived "reprofile"];
    the outcome is the squashed run's, for behaviour verification. *)

val theta_grid : float list
(** [0.0; 1e-5; 5e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0] *)

val theta_rescale : float
(** Multiplier taking a paper θ to our profiling regime (DESIGN.md §4,
    "θ scale"). *)

val fig7_thetas : (string * float) list
(** Paper label → our θ, derived as
    [snap-to-grid (paper · theta_rescale)]:
    [("0.0", 0.0); ("1e-5", 1e-4); ("5e-5", 1e-3)]. *)

val theta_label : float -> string
