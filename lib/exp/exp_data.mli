(** Memoized per-workload pipeline artifacts shared by the experiment
    harness: each workload is compiled, compacted and profiled once, and
    each distinct squash configuration is built once.

    The θ scale: the paper's thresholds are fractions of the {e profiled}
    dynamic instruction count, and its profiling runs execute billions of
    instructions, so interesting thresholds sit at 1e-5..5e-5.  Our
    profiling inputs run 0.3–15 million instructions, so the same
    "a block executed a handful of times is still cold" cutoff corresponds
    to θ about two orders of magnitude larger.  {!theta_grid} spans both
    regimes; {!fig7_thetas} are the three paper points mapped to our
    scale. *)

type prepared = {
  wl : Workload.t;
  input_prog : Prog.t;
      (** After unreachable-code and no-op elimination only — the paper's
          Table 1 "Input" column. *)
  squeezed : Prog.t;
  squeeze_stats : Squeeze.stats;
  profile : Profile.t;
  profile_outcome : Vm.outcome;
  baseline_timing : Vm.outcome Lazy.t;
      (** The squeezed program on the timing input. *)
}

val prepare : Workload.t -> prepared
(** Memoized by workload name. *)

val squash_result : prepared -> Squash.options -> Squash.result
(** Memoized by (workload, options). *)

val timing_run : prepared -> Squash.result -> Vm.outcome * Runtime.stats
(** Run the squashed program on the timing input, checking that its output
    matches the baseline exactly.  @raise Failure on a behaviour
    mismatch. *)

val theta_grid : float list
(** [0.0; 1e-5; 5e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0] *)

val theta_rescale : float
(** Multiplier taking a paper θ to our profiling regime (DESIGN.md §4,
    "θ scale"). *)

val fig7_thetas : (string * float) list
(** Paper label → our θ, derived as
    [snap-to-grid (paper · theta_rescale)]:
    [("0.0", 0.0); ("1e-5", 1e-4); ("5e-5", 1e-3)]. *)

val theta_label : float -> string
