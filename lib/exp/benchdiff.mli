(** Statistical comparison of two benchmark runs.

    Loads the JSON written by [bench --json] (schemas [pgcc-bench-v1] and
    [pgcc-bench-v2]) or a line of the {!Ledger} history, and compares runs
    experiment-by-experiment.  Wall-clock times are treated as noisy
    repeated samples: a run is flagged as regressed only when the mean
    shift exceeds the threshold {e and} a Welch two-sample t-test at 95%
    rejects "same distribution" (single-sample runs have no variance
    estimate, so any above-threshold shift counts — the conservative
    choice for a CI gate).  Runtime counters from the representative
    sample are deterministic at a fixed revision, so any relative drift
    beyond the (default zero) counter threshold is flagged. *)

type exp = { id : string; samples : float list }

type run = {
  schema : string;
  rev : string option;
  timestamp : string option;
  jobs : int option;
  repeat : int option;
  experiments : exp list;
  counters : (string * float) list;
      (** Scalar fields of [runtime_sample.stats]. *)
}

val of_json : Report.Json.t -> (run, string) result
val of_string : string -> (run, string) result
val load_file : string -> (run, string) result

type delta = {
  id : string;
  n_a : int;
  n_b : int;
  mean_a : float;
  mean_b : float;
  ci_a : float;  (** 95% CI half-widths; 0 for single samples. *)
  ci_b : float;
  rel : float;  (** (mean_b - mean_a) / mean_a. *)
  significant : bool;
  regressed : bool;
}

type counter_delta = {
  name : string;
  value_a : float;
  value_b : float;
  crel : float;
  drifted : bool;
}

type report = {
  wall_threshold : float;
  counter_threshold : float;
  deltas : delta list;
  counter_deltas : counter_delta list;
  only_a : string list;  (** Experiment ids present only in run A. *)
  only_b : string list;
}

val compare_runs :
  ?wall_threshold:float -> ?counter_threshold:float -> run -> run -> report
(** Defaults: [wall_threshold = 0.10] (10% slower means regressed,
    improvements never flag), [counter_threshold = 0.0] (any counter
    drift flags). *)

val regressed : report -> bool
(** True when any experiment regressed or any counter drifted — the
    condition under which [squashc benchdiff] exits non-zero. *)

val render : run -> run -> report -> string
(** Human-readable comparison table with provenance, per-experiment means,
    CIs and verdicts. *)
