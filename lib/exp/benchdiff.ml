module J = Report.Json
module Stats = Report.Stats

type exp = { id : string; samples : float list }

type run = {
  schema : string;
  rev : string option;
  timestamp : string option;
  jobs : int option;
  repeat : int option;
  experiments : exp list;
  counters : (string * float) list;
}

let to_string_opt = function Some (J.String s) -> Some s | _ -> None

let to_int_opt = function Some (J.Int i) -> Some i | _ -> None

let float_of_json = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

(* Scalar counters of the run's representative runtime sample
   (decompressions, cache hits, ...).  The simulator is deterministic, so
   at a fixed revision these must match exactly; a drift is a behaviour
   change, not noise. *)
let counters_of doc =
  match J.member "runtime_sample" doc with
  | Some sample -> (
    match J.member "stats" sample with
    | Some (J.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match float_of_json v with Some f -> Some (k, f) | None -> None)
        fields
    | Some _ | None -> [])
  | None -> []

let experiments_of doc =
  match J.member "experiments" doc with
  | Some (J.List exps) ->
    List.filter_map
      (fun e ->
        match to_string_opt (J.member "id" e) with
        | None -> None
        | Some id ->
          let samples =
            match J.member "samples" e with
            | Some (J.List l) -> List.filter_map float_of_json l
            | Some _ | None -> (
              (* v1 records carry a single wall-clock scalar. *)
              match Option.bind (J.member "seconds" e) float_of_json with
              | Some s -> [ s ]
              | None -> [])
          in
          if samples = [] then None else Some { id; samples })
      exps
  | Some _ | None -> []

let of_json doc =
  match to_string_opt (J.member "schema" doc) with
  | None -> Error "missing \"schema\" field"
  | Some schema ->
    let known = [ "pgcc-bench-v1"; "pgcc-bench-v2" ] in
    if not (List.mem schema known) then
      Error
        (Printf.sprintf "unsupported schema %S (expected %s)" schema
           (String.concat " or " known))
    else
      Ok
        {
          schema;
          rev = to_string_opt (J.member "rev" doc);
          timestamp = to_string_opt (J.member "timestamp" doc);
          jobs = to_int_opt (J.member "jobs" doc);
          repeat = to_int_opt (J.member "repeat" doc);
          experiments = experiments_of doc;
          counters = counters_of doc;
        }

let of_string s =
  match J.of_string s with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok doc -> of_json doc

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in_noerr ic;
    (match of_string s with
    | Ok r -> Ok r
    | Error msg -> Error (path ^ ": " ^ msg))

(* --- comparison -------------------------------------------------------- *)

type delta = {
  id : string;
  n_a : int;
  n_b : int;
  mean_a : float;
  mean_b : float;
  ci_a : float;  (** 95% CI half-widths; 0 for single samples. *)
  ci_b : float;
  rel : float;  (** (mean_b - mean_a) / mean_a. *)
  significant : bool;
  regressed : bool;
}

type counter_delta = {
  name : string;
  value_a : float;
  value_b : float;
  crel : float;
  drifted : bool;
}

type report = {
  wall_threshold : float;
  counter_threshold : float;
  deltas : delta list;
  counter_deltas : counter_delta list;
  only_a : string list;  (** Experiment ids present only in run A. *)
  only_b : string list;
}

let rel_delta a b =
  if a = 0.0 then (if b = 0.0 then 0.0 else infinity)
  else (b -. a) /. a

let compare_runs ?(wall_threshold = 0.10) ?(counter_threshold = 0.0) a b =
  let deltas =
    List.filter_map
      (fun (ea : exp) ->
        match
          List.find_opt (fun (eb : exp) -> eb.id = ea.id) b.experiments
        with
        | None -> None
        | Some eb ->
          let mean_a = Stats.mean ea.samples
          and mean_b = Stats.mean eb.samples in
          let rel = rel_delta mean_a mean_b in
          (* A shift below threshold is accepted outright; above it, the
             Welch test filters out what repeat-sample noise explains.
             With single samples on either side there is nothing to
             estimate variance from, so a large shift counts — the
             conservative choice for a CI gate. *)
          let significant = Stats.significant ea.samples eb.samples in
          Some
            {
              id = ea.id;
              n_a = List.length ea.samples;
              n_b = List.length eb.samples;
              mean_a;
              mean_b;
              ci_a = Stats.ci95 ea.samples;
              ci_b = Stats.ci95 eb.samples;
              rel;
              significant;
              regressed = rel > wall_threshold && significant;
            })
      a.experiments
  in
  let counter_deltas =
    List.filter_map
      (fun (name, va) ->
        match List.assoc_opt name b.counters with
        | None -> None
        | Some vb ->
          let crel = rel_delta va vb in
          Some
            {
              name;
              value_a = va;
              value_b = vb;
              crel;
              drifted = Float.abs crel > counter_threshold;
            })
      a.counters
  in
  let ids l = List.map (fun (e : exp) -> e.id) l in
  let only xs ys = List.filter (fun i -> not (List.mem i ys)) xs in
  {
    wall_threshold;
    counter_threshold;
    deltas;
    counter_deltas;
    only_a = only (ids a.experiments) (ids b.experiments);
    only_b = only (ids b.experiments) (ids a.experiments);
  }

let regressed r =
  List.exists (fun d -> d.regressed) r.deltas
  || List.exists (fun c -> c.drifted) r.counter_deltas

let describe_run label (r : run) =
  Printf.sprintf "%s: %s%s%s" label
    (match r.rev with
    | Some rev -> String.sub rev 0 (min 12 (String.length rev))
    | None -> "<no rev>")
    (match r.timestamp with Some t -> " " ^ t | None -> "")
    (match r.jobs with
    | Some j -> Printf.sprintf " jobs=%d" j
    | None -> "")

let pp_rel rel =
  if rel = infinity then "   +inf"
  else Printf.sprintf "%+6.1f%%" (100.0 *. rel)

let render (a : run) (b : run) r =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s\n%s\n" (describe_run "A" a) (describe_run "B" b);
  pf "wall-clock threshold %+.0f%%; counter threshold %.0f%%\n\n"
    (100.0 *. r.wall_threshold)
    (100.0 *. r.counter_threshold);
  pf "%-10s %12s %12s %8s  %-22s %s\n" "experiment" "mean A (s)" "mean B (s)"
    "delta" "95% CI (A / B)" "verdict";
  pf "%s\n" (String.make 78 '-');
  List.iter
    (fun d ->
      pf "%-10s %12.3f %12.3f %s  %8.3f / %-8.3f    %s\n" d.id d.mean_a
        d.mean_b (pp_rel d.rel) d.ci_a d.ci_b
        (if d.regressed then "REGRESSED"
         else if d.rel > r.wall_threshold then "within noise"
         else "ok"))
    r.deltas;
  if r.counter_deltas <> [] then begin
    pf "\n%-24s %14s %14s %8s  %s\n" "runtime counter" "A" "B" "delta"
      "verdict";
    pf "%s\n" (String.make 78 '-');
    List.iter
      (fun c ->
        pf "%-24s %14.0f %14.0f %s  %s\n" c.name c.value_a c.value_b
          (pp_rel c.crel)
          (if c.drifted then "DRIFT" else "ok"))
      r.counter_deltas
  end;
  if r.only_a <> [] then
    pf "\nonly in A: %s\n" (String.concat ", " r.only_a);
  if r.only_b <> [] then
    pf "only in B: %s\n" (String.concat ", " r.only_b);
  pf "\n%s\n"
    (if regressed r then "RESULT: regression detected"
     else "RESULT: no significant regression");
  Buffer.contents buf
